/// No-pause partial reconfiguration (paper Sections 4.1 and A.8): while
/// 200 Gbps of traffic flows, one RPU at a time is drained, its
/// accelerator and firmware are swapped from plain forwarding to the
/// blacklist firewall, and traffic resumes — the middlebox changes
/// function with zero downtime.
///
///   $ ./examples/live_reconfigure

#include <cstdio>
#include <memory>

#include "accel/firewall.h"
#include "core/system.h"
#include "firmware/programs.h"
#include "net/tracegen.h"

using namespace rosebud;

int
main() {
    SystemConfig cfg;
    cfg.rpu_count = 8;
    System sys(cfg);
    auto fwd = fwlib::forwarder();
    sys.host().load_firmware_all(fwd.image, fwd.entry);
    sys.host().boot_all();
    sys.run_us(2.0);

    sim::Rng bl_rng(1);
    auto blacklist = net::Blacklist::synthesize(1050, bl_rng);
    auto fw_prog = fwlib::firewall();

    // Continuous traffic with 1% blacklisted sources.
    net::TrafficSpec spec;
    spec.packet_size = 512;
    spec.attack_fraction = 0.01;
    spec.seed = 5;
    for (unsigned port = 0; port < 2; ++port) {
        net::TrafficSpec s = spec;
        s.seed += port;
        auto gen = std::make_shared<net::TraceGenerator>(s, nullptr, &blacklist);
        sys.add_source({.port = port, .line_gbps = 100.0, .load = 0.8},
                       [gen] { return gen->next(); });
    }
    sys.run_us(50.0);

    auto blocked = [&] {
        uint64_t total = 0;
        for (unsigned i = 0; i < sys.rpu_count(); ++i) {
            total += sys.host().counter("rpu" + std::to_string(i) + ".dropped_packets");
        }
        return total;
    };

    std::printf("phase 1 (plain forwarder): %llu packets out, %llu blocked\n",
                (unsigned long long)(sys.sink(0).frames() + sys.sink(1).frames()),
                (unsigned long long)blocked());

    // Roll the firewall out one RPU at a time, traffic still flowing.
    sim::Rng rng(42);
    double total_ms = 0;
    for (unsigned i = 0; i < sys.rpu_count(); ++i) {
        uint64_t before = sys.sink(0).frames() + sys.sink(1).frames();
        auto t = sys.host().reconfigure(
            i, [&] { return std::make_unique<accel::FirewallMatcher>(blacklist); },
            fw_prog.image, fw_prog.entry, rng);
        uint64_t during = sys.sink(0).frames() + sys.sink(1).frames() - before;
        total_ms += t.total_ms;
        std::printf(
            "  rpu%u: drain %.2f us, bitstream %.0f ms, boot %.2f us "
            "(%llu packets forwarded by the other RPUs during the drain)\n",
            i, t.drain_us, t.bitstream_ms, t.boot_us, (unsigned long long)during);
        sys.run_us(20.0);
    }
    std::printf("rolled out the firewall to all %u RPUs in %.1f s of wall time "
                "with zero downtime\n",
                sys.rpu_count(), total_ms / 1e3);

    uint64_t blocked_before = blocked();
    sys.run_us(100.0);
    std::printf("phase 2 (firewall everywhere): %llu newly blocked packets\n",
                (unsigned long long)(blocked() - blocked_before));
    return blocked() > 0 ? 0 : 1;
}
