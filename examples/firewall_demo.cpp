/// The Section 7.2 case study as a user would run it: compile an
/// emerging-threats-style blacklist into the IP-matcher accelerator, load
/// the firewall firmware, blast mixed safe/attack traffic at 200 Gbps,
/// and report what was blocked.
///
///   $ ./examples/firewall_demo

#include <cstdio>
#include <memory>

#include "accel/firewall.h"
#include "core/system.h"
#include "firmware/programs.h"
#include "net/tracegen.h"

using namespace rosebud;

int
main() {
    // A hand-written slice of blacklist (the full experiment synthesizes
    // the paper's 1050 entries; see bench_table4_firewall).
    auto blacklist = net::Blacklist::parse(
        "# emerging-threats style rules\n"
        "block drop from 203.0.113.7 to any\n"
        "block drop from 198.51.100.0/24 to any\n"
        "192.0.2.66\n");
    std::printf("blacklist compiled: %zu entries\n", blacklist.size());

    SystemConfig cfg;
    cfg.rpu_count = 16;
    System sys(cfg);
    sys.attach_accelerators(
        [&] { return std::make_unique<accel::FirewallMatcher>(blacklist); });
    auto fw = fwlib::firewall();
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();
    sys.run_us(2.0);

    // Tester side: 2 x 100G of 512 B traffic, 2% from blacklisted sources.
    net::TrafficSpec spec;
    spec.packet_size = 512;
    spec.attack_fraction = 0.02;
    auto attacks = std::make_shared<uint64_t>(0);
    for (unsigned port = 0; port < 2; ++port) {
        net::TrafficSpec s = spec;
        s.seed = port + 1;
        auto gen = std::make_shared<net::TraceGenerator>(s, nullptr, &blacklist);
        sys.add_source({.port = port, .line_gbps = 100.0, .load = 1.0},
                       [gen, attacks] {
                           auto p = gen->next();
                           *attacks += p->is_attack;
                           return p;
                       });
    }

    sys.run_us(400.0);

    uint64_t blocked = 0;
    for (unsigned i = 0; i < sys.rpu_count(); ++i) {
        blocked += sys.host().counter("rpu" + std::to_string(i) + ".dropped_packets");
    }
    uint64_t forwarded = sys.sink(0).frames() + sys.sink(1).frames();
    double secs = 400e-6;
    double gbps = double(sys.sink(0).bytes() + sys.sink(1).bytes()) * 8 / secs / 1e9;

    std::printf("offered attacks : %llu\n", (unsigned long long)*attacks);
    std::printf("blocked         : %llu\n", (unsigned long long)blocked);
    std::printf("forwarded       : %llu packets (%.1f Gbps goodput)\n",
                (unsigned long long)forwarded, gbps);
    std::printf("firewall %s\n",
                blocked > 0 && blocked <= *attacks ? "OK" : "MISBEHAVED");
    return 0;
}
