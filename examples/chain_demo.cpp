/// A heterogeneous middlebox chain (paper Section 4.4): the first four
/// RPUs run the firewall accelerator and relay surviving packets over the
/// loopback channel to the second four, which run the Pigasus matcher —
/// two different accelerators and two different firmwares cooperating in
/// one Rosebud instance:
///
///   wire -> [firewall RPUs] -> loopback -> [IDS RPUs] -> wire / host
///
///   $ ./examples/chain_demo

#include <cstdio>
#include <cstring>
#include <memory>

#include "accel/firewall.h"
#include "accel/pigasus.h"
#include "core/system.h"
#include "firmware/programs.h"
#include "net/headers.h"

using namespace rosebud;

int
main() {
    auto blacklist = net::Blacklist::parse("203.0.113.0/24\n");
    auto rules = net::IdsRuleSet::parse(
        "alert tcp any any -> any any (msg:\"worm\"; content:\"wormbody42\"; "
        "sid:9001;)\n");

    SystemConfig cfg;
    cfg.rpu_count = 8;
    System sys(cfg);

    // Heterogeneous provisioning: two accelerator types, two firmwares.
    auto chain_fw = fwlib::chained_firewall(8);
    auto ids_fw = fwlib::pigasus_hw_reorder();
    for (unsigned i = 0; i < 4; ++i) {
        sys.rpu(i).attach_accelerator(std::make_unique<accel::FirewallMatcher>(blacklist));
        sys.host().load_firmware(i, chain_fw.image, chain_fw.entry);
    }
    for (unsigned i = 4; i < 8; ++i) {
        sys.rpu(i).attach_accelerator(std::make_unique<accel::PigasusMatcher>(rules));
        sys.host().load_firmware(i, ids_fw.image, ids_fw.entry);
    }
    sys.host().boot_all();
    sys.run_us(2.0);
    sys.host().set_recv_mask(0x0f);  // the wire feeds only the firewall stage

    sys.host().set_rx_handler([&](net::PacketPtr p) {
        uint32_t sid = 0;
        std::memcpy(&sid, &p->data[p->data.size() - 4], 4);
        std::printf("  IDS ALERT sid=%u (packet survived the firewall, "
                    "flagged in stage 2)\n",
                    sid);
    });

    auto send = [&](net::PacketPtr p, const char* what) {
        std::printf("sending %s\n", what);
        sys.fabric().mac_rx(0, p);
        sys.run_us(8.0);
    };

    net::PacketBuilder clean;
    clean.ipv4(net::parse_ipv4_addr("10.0.0.1"), net::parse_ipv4_addr("10.0.0.2"))
        .tcp(1, 2)
        .payload_str("perfectly normal")
        .frame_size(256);
    send(clean.build(), "clean packet          (expect: forwarded)");

    net::PacketBuilder blocked;
    blocked.ipv4(net::parse_ipv4_addr("203.0.113.9"), net::parse_ipv4_addr("10.0.0.2"))
        .tcp(1, 2)
        .payload_str("wormbody42")  // would match the IDS, but never gets there
        .frame_size(256);
    send(blocked.build(), "blacklisted source    (expect: dropped in stage 1)");

    net::PacketBuilder wormy;
    wormy.ipv4(net::parse_ipv4_addr("10.9.9.9"), net::parse_ipv4_addr("10.0.0.2"))
        .tcp(1, 2)
        .payload_str("xx wormbody42 xx")
        .frame_size(256);
    send(wormy.build(), "clean IP, worm payload (expect: IDS alert)");

    uint64_t forwarded = sys.sink(0).frames() + sys.sink(1).frames();
    uint64_t chained = sys.host().counter("loopback.frames");
    uint64_t dropped = 0;
    for (unsigned i = 0; i < 4; ++i) {
        dropped += sys.host().counter("rpu" + std::to_string(i) + ".dropped_packets");
    }
    std::printf("\nchain statistics: %llu relayed over loopback, %llu dropped by the "
                "firewall stage, %llu forwarded to the wire\n",
                (unsigned long long)chained, (unsigned long long)dropped,
                (unsigned long long)forwarded);
    bool ok = chained == 2 && dropped == 1 && forwarded == 1;
    std::printf("chain demo %s\n", ok ? "OK" : "MISBEHAVED");
    return ok ? 0 : 1;
}
