/// Quickstart: bring up a 4-RPU Rosebud instance, load the forwarder
/// firmware on every RISC-V core, push a few packets through the 100G
/// ports, and read the status counters — the whole paper Section 3.2
/// workflow in ~50 lines.
///
///   $ ./examples/quickstart

#include <cstdio>

#include "core/system.h"
#include "firmware/programs.h"
#include "net/headers.h"

using namespace rosebud;

int
main() {
    // 1. Build the system: RPUs, load balancer, distribution fabric, host.
    SystemConfig cfg;
    cfg.rpu_count = 4;
    System sys(cfg);

    // 2. Load and boot firmware (the paper's `make do TEST=basic_fw`).
    fwlib::Program fw = fwlib::forwarder();
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();
    sys.run_us(2.0);  // let firmware announce its packet slots to the LB

    for (unsigned i = 0; i < sys.rpu_count(); ++i) {
        std::printf("rpu%u: booted, %u packet slots of %u B\n", i,
                    sys.rpu(i).slot_config().count, sys.rpu(i).slot_config().size);
    }

    // 3. Send traffic into port 0; the forwarder swaps it to port 1.
    for (int i = 0; i < 10; ++i) {
        net::PacketBuilder b;
        b.ipv4(net::parse_ipv4_addr("10.0.0.1"), net::parse_ipv4_addr("10.0.0.2"))
            .udp(1000, 2000)
            .payload_str("hello rosebud #" + std::to_string(i))
            .frame_size(128);
        sys.fabric().mac_rx(0, b.build());
        sys.run_us(1.0);
    }
    sys.run_us(10.0);

    // 4. Read the host-visible counters (paper Section 4.3).
    std::printf("\ncounters:\n");
    for (const char* name : {"port0.rx_frames", "port1.tx_frames", "lb.assigned"}) {
        std::printf("  %-18s %llu\n", name,
                    (unsigned long long)sys.host().counter(name));
    }
    std::printf("  round-trip latency: %.2f us mean\n",
                sys.sink(1).latency().mean() / 1e3);
    std::printf("\nforwarded %llu/%u packets out of port 1 — quickstart OK\n",
                (unsigned long long)sys.sink(1).frames(), 10);
    return sys.sink(1).frames() == 10 ? 0 : 1;
}
