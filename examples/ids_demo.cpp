/// The Section 7.1 case study: Pigasus-style IDS/IPS on Rosebud. Rules
/// are written in the simplified Snort syntax, compiled into the
/// string/port-matcher accelerator, and the firmware delivers matched
/// packets (rule id appended) to the host while safe traffic is forwarded
/// at line rate.
///
///   $ ./examples/ids_demo

#include <cstdio>
#include <cstring>
#include <memory>

#include "accel/pigasus.h"
#include "core/system.h"
#include "firmware/programs.h"
#include "net/headers.h"

using namespace rosebud;

int
main() {
    auto rules = net::IdsRuleSet::parse(
        "alert tcp any any -> any 80 (msg:\"fake exploit kit\"; "
        "content:\"GET /dropper.exe\"; sid:2001;)\n"
        "alert tcp any any -> any any (msg:\"shellcode marker\"; "
        "content:\"|DE AD BE EF|sled\"; sid:2002;)\n"
        "alert udp any any -> any 53 (msg:\"dns tunnel\"; "
        "content:\"exfil.bad.example\"; sid:2003;)\n");
    std::printf("ruleset: %zu rules compiled into the fast-pattern matcher\n",
                rules.size());

    SystemConfig cfg;
    cfg.rpu_count = 8;
    cfg.lb_policy = lb::Policy::kRoundRobin;
    cfg.hw_reassembler = true;  // the HW-reorder configuration (pigasus2)
    System sys(cfg);
    sys.attach_accelerators([&] { return std::make_unique<accel::PigasusMatcher>(rules); });
    auto fw = fwlib::pigasus_hw_reorder();
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();
    sys.run_us(2.0);

    // Alerts arrive at the host with the matched rule id appended.
    sys.host().set_rx_handler([&](net::PacketPtr p) {
        uint32_t sid = 0;
        if (p->data.size() >= 4) std::memcpy(&sid, &p->data[p->data.size() - 4], 4);
        const net::IdsRule* rule = rules.find_sid(sid);
        std::printf("  ALERT sid=%u (%s) — %u-byte packet flagged\n", sid,
                    rule ? rule->msg.c_str() : "?", p->size());
    });

    auto send = [&](net::PacketPtr p, const char* what) {
        std::printf("sending %s...\n", what);
        sys.fabric().mac_rx(0, p);
        sys.run_us(5.0);
    };

    net::PacketBuilder benign;
    benign.ipv4(net::parse_ipv4_addr("10.1.1.1"), net::parse_ipv4_addr("10.2.2.2"))
        .tcp(40000, 80)
        .payload_str("GET /index.html HTTP/1.1")
        .frame_size(512);
    send(benign.build(), "benign HTTP request");

    net::PacketBuilder dropper;
    dropper.ipv4(net::parse_ipv4_addr("10.6.6.6"), net::parse_ipv4_addr("10.2.2.2"))
        .tcp(40001, 80)
        .payload_str("GET /dropper.exe HTTP/1.1")
        .frame_size(512);
    send(dropper.build(), "exploit-kit download");

    net::PacketBuilder shell;
    shell.ipv4(net::parse_ipv4_addr("10.6.6.7"), net::parse_ipv4_addr("10.2.2.2"))
        .tcp(40002, 9999)
        .payload({0xde, 0xad, 0xbe, 0xef, 's', 'l', 'e', 'd'})
        .frame_size(256);
    send(shell.build(), "shellcode marker on a random port");

    net::PacketBuilder dns;
    dns.ipv4(net::parse_ipv4_addr("10.6.6.8"), net::parse_ipv4_addr("10.2.2.2"))
        .udp(5353, 53)
        .payload_str("query exfil.bad.example")
        .frame_size(128);
    send(dns.build(), "DNS tunnel beacon");

    std::printf("\nsafe traffic forwarded to the wire: %llu packet(s)\n",
                (unsigned long long)(sys.sink(0).frames() + sys.sink(1).frames()));

    // Runtime ruleset update — the capability Rosebud adds over the
    // original Pigasus (Section 7.1.2): swap the tables without reloading
    // the FPGA image.
    std::printf("\nupdating the ruleset at runtime (no FPGA reload)...\n");
    auto rules_v2 = net::IdsRuleSet::parse(
        "alert tcp any any -> any any (msg:\"new campaign\"; "
        "content:\"totally-new-pattern\"; sid:3001;)\n");
    for (unsigned i = 0; i < sys.rpu_count(); ++i) {
        static_cast<accel::PigasusMatcher*>(sys.rpu(i).accelerator())
            ->load_rules(rules_v2);
    }
    net::PacketBuilder fresh;
    fresh.ipv4(net::parse_ipv4_addr("10.6.6.9"), net::parse_ipv4_addr("10.2.2.2"))
        .tcp(40003, 1234)
        .payload_str("xx totally-new-pattern yy")
        .frame_size(256);
    // Rebind the alert printer against the new ruleset.
    sys.host().set_rx_handler([&](net::PacketPtr p) {
        uint32_t sid = 0;
        if (p->data.size() >= 4) std::memcpy(&sid, &p->data[p->data.size() - 4], 4);
        std::printf("  ALERT sid=%u (new ruleset live)\n", sid);
    });
    send(fresh.build(), "packet matching only the new ruleset");
    return 0;
}
