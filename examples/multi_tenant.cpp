/// FPGA sharing in the cloud (the paper's Conclusion: "Rosebud can also
/// be used for sharing FPGAs in cloud services, such as Amazon AWS-F1,
/// where the cloud provider controls the LB and users can load their
/// logic into the RPUs"). Two tenants own disjoint RPU subsets with their
/// own accelerators and firmware; the provider's custom LB policy steers
/// traffic by destination port.
///
///   $ ./examples/multi_tenant

#include <cstdio>
#include <memory>

#include "accel/firewall.h"
#include "accel/pigasus.h"
#include "core/system.h"
#include "firmware/programs.h"
#include "net/headers.h"

using namespace rosebud;

int
main() {
    // Provider policy: tenant A (firewall) owns RPUs 0-3 and serves ports
    // < 10000; tenant B (IDS) owns RPUs 4-7 and serves the rest.
    SystemConfig cfg;
    cfg.rpu_count = 8;
    cfg.lb_policy = lb::Policy::kCustom;
    cfg.lb_custom_steer = [](const net::Packet& pkt) -> uint32_t {
        auto parsed = net::parse_packet(pkt);
        if (!parsed || (!parsed->has_tcp && !parsed->has_udp)) return 0x0f;
        uint16_t dport = parsed->has_tcp ? parsed->tcp.dst_port : parsed->udp.dst_port;
        return dport < 10000 ? 0x0f : 0xf0;
    };
    System sys(cfg);

    auto blacklist = net::Blacklist::parse("203.0.113.0/24\n");
    auto rules = net::IdsRuleSet::parse(
        "alert tcp any any -> any any (msg:\"tenant-b rule\"; "
        "content:\"tenantBbad!\"; sid:42;)\n");

    auto fw_prog = fwlib::firewall();
    auto ids_prog = fwlib::pigasus_hw_reorder();
    for (unsigned i = 0; i < 4; ++i) {
        sys.rpu(i).attach_accelerator(std::make_unique<accel::FirewallMatcher>(blacklist));
        sys.host().load_firmware(i, fw_prog.image, fw_prog.entry);
    }
    for (unsigned i = 4; i < 8; ++i) {
        sys.rpu(i).attach_accelerator(std::make_unique<accel::PigasusMatcher>(rules));
        sys.host().load_firmware(i, ids_prog.image, ids_prog.entry);
    }
    sys.host().boot_all();
    sys.run_us(2.0);
    sys.host().set_rx_handler(
        [](net::PacketPtr) { std::printf("  tenant B raised an IDS alert\n"); });

    auto send = [&](uint16_t dport, const char* src, const char* payload,
                    const char* what) {
        net::PacketBuilder b;
        b.ipv4(net::parse_ipv4_addr(src), net::parse_ipv4_addr("10.0.0.2"))
            .tcp(40000, dport)
            .payload_str(payload)
            .frame_size(200);
        std::printf("sending %s\n", what);
        sys.fabric().mac_rx(0, b.build());
        sys.run_us(6.0);
    };

    send(80, "10.1.1.1", "normal web", "tenant A traffic, clean     (forwarded)");
    send(80, "203.0.113.5", "normal web", "tenant A traffic, blacklisted (dropped)");
    send(20000, "10.1.1.1", "nothing to see", "tenant B traffic, clean     (forwarded)");
    send(20000, "10.1.1.1", "xx tenantBbad! xx", "tenant B traffic, malicious (alert)");

    uint64_t tenant_a = 0, tenant_b = 0;
    for (unsigned i = 0; i < 4; ++i) {
        tenant_a += sys.host().counter("lb.assigned.rpu" + std::to_string(i));
    }
    for (unsigned i = 4; i < 8; ++i) {
        tenant_b += sys.host().counter("lb.assigned.rpu" + std::to_string(i));
    }
    std::printf("\nprovider view: tenant A handled %llu packets, tenant B %llu — "
                "isolation held\n",
                (unsigned long long)tenant_a, (unsigned long long)tenant_b);
    std::printf("forwarded to the wire: %llu\n",
                (unsigned long long)(sys.sink(0).frames() + sys.sink(1).frames()));
    return (tenant_a == 2 && tenant_b == 2) ? 0 : 1;
}
