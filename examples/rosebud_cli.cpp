/// Command-line driver for the experiment harnesses — the equivalent of
/// the artifact's `make do TEST=... RECV=... PKT_SIZE=...` workflow, for
/// users who want single data points without writing C++.
///
///   $ ./examples/rosebud_cli forward --rpus 16 --size 64 --ports 2
///   $ ./examples/rosebud_cli latency --size 1500 --load 0.05
///   $ ./examples/rosebud_cli ips --mode sw --size 800
///   $ ./examples/rosebud_cli firewall --size 256
///   $ ./examples/rosebud_cli loopback --size 65
///   $ ./examples/rosebud_cli broadcast --rpus 16
///   $ ./examples/rosebud_cli resources --rpus 8
///   $ ./examples/rosebud_cli oracle --pipeline nat --seed 3 --packets 500
///   $ ./examples/rosebud_cli verify --program firewall --dot fw.dot
///   $ ./examples/rosebud_cli lint --rpus 16 --dot netlist.dot

#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "core/cluster.h"
#include "core/experiments.h"
#include "firmware/programs.h"
#include "fuzz/corpus.h"
#include "fuzz/driver.h"
#include "lint/netlist.h"
#include "lint/shard.h"
#include "obs/harness.h"
#include "obs/health.h"
#include "obs/profile.h"
#include "obs/report.h"
#include "oracle/harness.h"
#include "verify/verifier.h"

using namespace rosebud;

namespace {

struct Args {
    std::string experiment;
    std::map<std::string, std::string> kv;

    bool has(const std::string& k) const { return kv.count(k) > 0; }
    uint32_t u32(const std::string& k, uint32_t dflt) const {
        auto it = kv.find(k);
        return it == kv.end() ? dflt : uint32_t(std::stoul(it->second));
    }
    double f64(const std::string& k, double dflt) const {
        auto it = kv.find(k);
        return it == kv.end() ? dflt : std::stod(it->second);
    }
    std::string str(const std::string& k, const std::string& dflt) const {
        auto it = kv.find(k);
        return it == kv.end() ? dflt : it->second;
    }
};

int
usage() {
    std::fprintf(stderr,
                 "usage: rosebud_cli <experiment> [--key value]...\n"
                 "global simulation-speed flags (any experiment):\n"
                 "  --parallel-ticks N   tick components on N threads (results are\n"
                 "                       fingerprint-identical to the serial schedule)\n"
                 "  --no-idle-skip       disable quiescence skipping\n"
                 "  --no-predecode       disable the RV32 decoded-instruction cache\n"
                 "experiments:\n"
                 "  forward    --rpus N --size N --ports 1|2 --load F\n"
                 "  latency    --size N --load F\n"
                 "  ips        --mode hw|sw --size N --rpus N --attack F\n"
                 "  firewall   --size N --rpus N --attack F\n"
                 "  loopback   --rpus N --size N\n"
                 "  broadcast  --rpus N\n"
                 "  reconfig   --rpus N --loads N\n"
                 "  resources  --rpus N\n"
                 "  cluster    --boards N --rpus N --shards N --ports 1|2\n"
                 "             --size N --load F --cycles N --seed N\n"
                 "             (multi-board cluster sweep: each board is an\n"
                 "              independent shard group fed by a flow-consistent\n"
                 "              ECMP front end over modeled 100G links, run\n"
                 "              time-decoupled over its certified ShardPlan;\n"
                 "              every board is fingerprint-gated against a\n"
                 "              single-board serial run of the same flow subset;\n"
                 "              exits 1 on any divergence)\n"
                 "  oracle     --pipeline forwarder|firewall|ids-hw|ids-sw|nat\n"
                 "             --policy rr|hash|ll --rpus N --seed N --packets N\n"
                 "             --size N --attack F --reorder F\n"
                 "             (differential run against the golden oracle;\n"
                 "              exits 1 on any divergence)\n"
                 "  verify     --program all|forwarder|two-step|firewall|ids-hw|ids-sw|nat\n"
                 "             --dot FILE (write the CFG as Graphviz DOT, annotated\n"
                 "              with block costs, loop bounds and the WCET path)\n"
                 "             --wcet (print the line-rate certificate: per-root\n"
                 "              WCET, loop bounds, stack bound, text-write proof)\n"
                 "             --json FILE (write the certificates as JSON)\n"
                 "             (static firmware verification; exits 1 on any error)\n"
                 "  lint       --rpus N (omit to sweep 4/8/16) --dot FILE\n"
                 "             --shards [N] (certify a partition of the paper\n"
                 "              configuration for the time-decoupled kernel; bare\n"
                 "              --shards sweeps 2/4/8-way plans; with --dot the\n"
                 "              dump is annotated with shard clusters + cut edges)\n"
                 "             --json FILE (netlist summary, violations and every\n"
                 "              certified shard plan as JSON)\n"
                 "             (elaborate every shipped config and run the static\n"
                 "              netlist checks; exits 1 on any violation or on an\n"
                 "              internally inconsistent shard plan)\n"
                 "  fuzz       --seed N --budget-ms N --cases N (per-generator cap)\n"
                 "             --gen fw|pkt|cfg|all --corpus DIR --no-minimize\n"
                 "             --verbose\n"
                 "             (conformance fuzzing campaign: firmware lockstep vs\n"
                 "              the golden ISA model, malformed packets under the\n"
                 "              differential scoreboard, randomized configs through\n"
                 "              linter + oracle + shuffled-tick fingerprint; the\n"
                 "              case sequence is a pure function of --seed, the\n"
                 "              budget only truncates it; exits 1 on any failure)\n"
                 "  fuzz       --replay FILE|DIR\n"
                 "             (replay corpus case(s); exits 1 unless all green)\n"
                 "  profile    --pipeline forwarder|firewall|ids-hw|ids-sw|nat\n"
                 "             --rpus N --size N --load F --cycles N --seed N\n"
                 "             --epoch N --top N --vcd FILE --trace FILE --json FILE\n"
                 "             (full-stack telemetry run: stall attribution report,\n"
                 "              GTKWave waveforms, Perfetto trace, firmware hot spots;\n"
                 "              default outputs rosebud_profile.vcd,\n"
                 "              rosebud_trace.json, rosebud_profile.json)\n"
                 "  health     --pipeline forwarder|firewall|ids-hw|ids-sw|nat\n"
                 "             --policy rr|hash|ll --rpus N --seed N\n"
                 "             --sizes 64,256,...|--size N --load F --cycles N\n"
                 "             --slo \"latency_p99 <= 200us, drop_rate <= 0.05\"\n"
                 "             --epoch N --deep --inject-stall --stall-rpu N\n"
                 "             --stall-at N --json FILE --dump FILE --prom FILE\n"
                 "             (production health sweep: per-size SLO verdicts from\n"
                 "              the always-on monitor, metrics-registry snapshot,\n"
                 "              flight-recorder dump; --inject-stall wedges one RPU\n"
                 "              with a busy-loop image to exercise the watchdog.\n"
                 "              exits 1 on SLO violation, on an unexpected watchdog\n"
                 "              trip, or when an injected stall goes undetected)\n");
    return 2;
}

/// Run the static verifier over one named program; print per-check
/// verdicts (plus the line-rate certificate under `wcet`); optionally dump
/// the CFG. Returns the report for error counting / JSON serialization.
verify::Report
verify_one(const char* name, const fwlib::Program& prog, const std::string& dot_path,
           bool wcet) {
    verify::Options opts;
    opts.entry = prog.entry;
    verify::Report r = verify::verify_image(prog.image, opts);
    std::printf("%-18s %4u insns, %3zu blocks, %zu root(s)%s\n", name, r.instructions,
                r.blocks.size(), r.roots.size(),
                r.interrupts_possible ? ", interrupts" : "");
    static const verify::Check kChecks[] = {
        verify::Check::kDecode, verify::Check::kCfg,    verify::Check::kMemory,
        verify::Check::kMmio,   verify::Check::kCsr,    verify::Check::kUninit,
        verify::Check::kUnreachable, verify::Check::kLoop, verify::Check::kSlots,
    };
    for (verify::Check c : kChecks) {
        std::printf("  %-12s %s\n", verify::check_name(c),
                    r.check_passed(c) ? "pass" : "FAIL");
    }
    if (wcet) {
        const verify::Certificate& cert = r.cert;
        if (cert.wcet_bounded) {
            std::printf("  wcet         %llu insns / %llu cycles per activation\n",
                        (unsigned long long)cert.wcet_instructions,
                        (unsigned long long)cert.wcet_cycles);
        } else {
            std::printf("  wcet         UNBOUNDED\n");
        }
        std::printf("  stack        %s (%u bytes)\n",
                    cert.stack_bounded ? "bounded" : "UNBOUNDED", cert.stack_bytes);
        std::printf("  text-write   %s (%u unproven stores)\n",
                    cert.text_write_separation ? "separated" : "UNPROVEN",
                    cert.unproven_stores);
        for (const auto& lb : cert.loops) {
            if (lb.bounded) {
                std::printf("  loop 0x%04x  <= %llu trips (%u blocks)\n", lb.header,
                            (unsigned long long)lb.max_trips, lb.blocks);
            } else {
                std::printf("  loop 0x%04x  %s (%u blocks)\n", lb.header,
                            lb.observable ? "service loop" : "UNBOUNDED", lb.blocks);
            }
        }
    }
    if (!r.diags.empty()) std::printf("%s", r.summary().c_str());
    if (!dot_path.empty()) {
        std::string dot = verify::cfg_dot(prog.image, r, name);
        if (FILE* f = std::fopen(dot_path.c_str(), "w")) {
            std::fwrite(dot.data(), 1, dot.size(), f);
            std::fclose(f);
            std::printf("  CFG written to %s\n", dot_path.c_str());
        } else {
            std::fprintf(stderr, "cannot write %s\n", dot_path.c_str());
        }
    }
    return r;
}

}  // namespace

int
main(int argc, char** argv) {
    if (argc < 2) return usage();
    Args args;
    args.experiment = argv[1];
    for (int i = 2; i < argc; ++i) {
        if (std::strncmp(argv[i], "--", 2) != 0) return usage();
        // Value-less boolean flags.
        if (std::strcmp(argv[i], "--no-idle-skip") == 0 ||
            std::strcmp(argv[i], "--no-predecode") == 0 ||
            std::strcmp(argv[i], "--wcet") == 0 ||
            std::strcmp(argv[i], "--deep") == 0 ||
            std::strcmp(argv[i], "--inject-stall") == 0) {
            args.kv[argv[i] + 2] = "1";
            continue;
        }
        // `--shards [N]` takes an optional count: bare --shards sweeps the
        // default 2/4/8-way plans (value 0 is the sweep sentinel).
        if (std::strcmp(argv[i], "--shards") == 0) {
            if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
                args.kv["shards"] = argv[++i];
            } else {
                args.kv["shards"] = "0";
            }
            continue;
        }
        if (i + 1 >= argc) return usage();
        args.kv[argv[i] + 2] = argv[i + 1];
        ++i;
    }

    exp::SimTuning tuning;
    tuning.idle_skip = !args.has("no-idle-skip");
    tuning.predecode = !args.has("no-predecode");
    tuning.parallel_ticks = args.u32("parallel-ticks", 0);
    exp::set_sim_tuning(tuning);
    auto host_t0 = std::chrono::steady_clock::now();

    if (args.experiment == "forward") {
        exp::ForwardingParams p;
        p.rpu_count = args.u32("rpus", 16);
        p.size = args.u32("size", 1024);
        p.ports = args.u32("ports", 2);
        p.load = args.f64("load", 1.0);
        auto r = exp::run_forwarding(p);
        std::printf("size=%u rpus=%u: %.2f Gbps (%.2f Mpps), line %.2f Gbps "
                    "(%.1f%% of line)\n",
                    r.size, r.rpu_count, r.achieved_gbps, r.achieved_mpps, r.line_gbps,
                    100.0 * r.achieved_gbps / r.line_gbps);
    } else if (args.experiment == "latency") {
        exp::LatencyParams p;
        p.size = args.u32("size", 64);
        p.load = args.f64("load", 0.05);
        if (p.load > 0.5) p.warmup = 130000;
        auto r = exp::run_latency(p);
        std::printf("size=%u load=%.2f: mean %.3f us (min %.3f, max %.3f, p99 %.3f); "
                    "Eq.1 predicts %.3f us\n",
                    r.size, p.load, r.mean_us, r.min_us, r.max_us, r.p99_us, r.eq1_us);
    } else if (args.experiment == "ips") {
        exp::IpsParams p;
        p.mode = args.str("mode", "hw") == "sw" ? exp::IpsMode::kSwReorder
                                                : exp::IpsMode::kHwReorder;
        p.size = args.u32("size", 1024);
        p.rpu_count = args.u32("rpus", 8);
        p.attack_fraction = args.f64("attack", 0.01);
        auto r = exp::run_ips(p);
        std::printf("%s reorder, size=%u: %.1f Gbps (%.2f Mpps), %.1f cycles/packet, "
                    "%llu/%llu attacks to host\n",
                    p.mode == exp::IpsMode::kHwReorder ? "HW" : "SW", r.size,
                    r.achieved_gbps, r.achieved_mpps, r.cycles_per_packet,
                    (unsigned long long)r.matched_to_host,
                    (unsigned long long)r.expected_attacks);
    } else if (args.experiment == "firewall") {
        exp::FirewallParams p;
        p.size = args.u32("size", 1024);
        p.rpu_count = args.u32("rpus", 16);
        p.attack_fraction = args.f64("attack", 0.01);
        auto r = exp::run_firewall(p);
        std::printf("size=%u: absorbed %.1f Gbps (%.1f%% of line), blocked %llu "
                    "(expected %llu), forwarded %llu\n",
                    r.size, r.achieved_gbps, 100.0 * r.achieved_gbps / r.line_gbps,
                    (unsigned long long)r.blocked,
                    (unsigned long long)r.expected_blocked,
                    (unsigned long long)r.forwarded);
    } else if (args.experiment == "loopback") {
        auto r = exp::run_loopback(args.u32("rpus", 16), args.u32("size", 64));
        std::printf("size=%u: %.2f Gbps through the loopback chain (%.1f%% of line)\n",
                    r.size, r.achieved_gbps, 100.0 * r.fraction_of_line);
    } else if (args.experiment == "broadcast") {
        auto r = exp::run_broadcast(args.u32("rpus", 16));
        std::printf("sparse %.0f..%.0f ns, saturated %.0f..%.0f ns over %llu messages\n",
                    r.sparse_min_ns, r.sparse_max_ns, r.saturated_min_ns,
                    r.saturated_max_ns, (unsigned long long)r.messages);
    } else if (args.experiment == "reconfig") {
        SystemConfig cfg;
        cfg.rpu_count = args.u32("rpus", 16);
        System sys(cfg);
        auto fw = fwlib::forwarder();
        sys.host().load_firmware_all(fw.image, fw.entry);
        sys.host().boot_all();
        sys.run_cycles(500);
        sim::Rng rng(args.u32("seed", 1));
        unsigned loads = args.u32("loads", 10);
        double total = 0;
        for (unsigned i = 0; i < loads; ++i) {
            total += sys.host()
                         .reconfigure(i % cfg.rpu_count, nullptr, fw.image, fw.entry, rng)
                         .total_ms;
        }
        std::printf("%u loads: %.1f ms average pause+load+boot\n", loads, total / loads);
    } else if (args.experiment == "oracle") {
        oracle::RunSpec s;
        s.pipeline = oracle::parse_pipeline(args.str("pipeline", "forwarder"));
        std::string pol = args.str(
            "policy", s.pipeline == oracle::Pipeline::kPigasusSwReorder ? "hash" : "rr");
        s.policy = pol == "hash" ? lb::Policy::kHash
                   : pol == "ll" ? lb::Policy::kLeastLoaded
                                 : lb::Policy::kRoundRobin;
        s.rpu_count = args.u32("rpus", 8);
        s.seed = args.u32("seed", 1);
        s.max_packets = args.u32("packets", 250);
        s.packet_size = args.u32("size", 256);
        s.load = args.f64("load", 0.5);
        s.attack_fraction = args.f64("attack", 0.2);
        s.reorder_fraction = args.f64("reorder", 0.0);
        auto r = oracle::run_differential(s);
        std::printf("pipeline=%s policy=%s rpus=%u seed=%llu: offered %llu, "
                    "forwarded %llu, to host %llu (%llu punts), dropped %llu, "
                    "congestion %llu -> %llu divergence(s)\n",
                    oracle::pipeline_name(s.pipeline), pol.c_str(), s.rpu_count,
                    (unsigned long long)s.seed, (unsigned long long)r.counts.offered,
                    (unsigned long long)r.counts.forwarded_wire,
                    (unsigned long long)r.counts.host_delivered,
                    (unsigned long long)r.counts.punted,
                    (unsigned long long)r.counts.fw_dropped,
                    (unsigned long long)r.counts.congestion_dropped,
                    (unsigned long long)r.counts.divergences);
        if (!r.report.empty()) std::printf("%s\n", r.report.c_str());
        if (!r.ok) return 1;
    } else if (args.experiment == "verify") {
        std::string which = args.str("program", "all");
        std::string dot = args.str("dot", "");
        struct Entry { const char* name; fwlib::Program prog; };
        std::vector<Entry> entries;
        if (which == "all" || which == "forwarder") {
            entries.push_back({"forwarder", fwlib::forwarder()});
        }
        if (which == "all" || which == "two-step") {
            entries.push_back({"two-step", fwlib::two_step_forwarder(args.u32("rpus", 16))});
        }
        if (which == "all" || which == "firewall") {
            entries.push_back({"firewall", fwlib::firewall()});
        }
        if (which == "all" || which == "ids-hw") {
            entries.push_back({"ids-hw", fwlib::pigasus_hw_reorder()});
        }
        if (which == "all" || which == "ids-sw") {
            entries.push_back({"ids-sw", fwlib::pigasus_sw_reorder()});
        }
        if (which == "all" || which == "nat") {
            entries.push_back({"nat", fwlib::nat()});
        }
        if (entries.empty()) return usage();
        const bool wcet = args.has("wcet");
        const std::string json_path = args.str("json", "");
        size_t errors = 0;
        std::string json = "[";
        for (const auto& e : entries) {
            // With --dot and multiple programs, suffix the file per program.
            std::string path = dot;
            if (!dot.empty() && entries.size() > 1) path = dot + "." + e.name;
            verify::Report r = verify_one(e.name, e.prog, path, wcet);
            errors += r.errors();
            if (json.size() > 1) json += ",";
            json += verify::certificate_json(r, e.name);
        }
        json += "]\n";
        if (!json_path.empty()) {
            if (FILE* f = std::fopen(json_path.c_str(), "w")) {
                std::fwrite(json.data(), 1, json.size(), f);
                std::fclose(f);
                std::printf("certificate report written to %s\n", json_path.c_str());
            } else {
                std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
                return 1;
            }
        }
        if (errors != 0) {
            std::printf("%zu verifier error(s)\n", errors);
            return 1;
        }
    } else if (args.experiment == "lint") {
        // Elaborate every shipped LB-policy / reassembler combination and run
        // the static netlist checks on each. This is the same gate System
        // arms before cycle 0; running it standalone gives CI (and humans) a
        // pass/fail without executing a single cycle.
        std::string dot = args.str("dot", "");
        std::vector<unsigned> rpu_counts;
        if (args.has("rpus")) {
            rpu_counts.push_back(args.u32("rpus", 16));
        } else {
            rpu_counts = {4, 8, 16};
        }
        struct Combo { const char* name; lb::Policy policy; bool reassembler; };
        static const Combo kCombos[] = {
            {"rr", lb::Policy::kRoundRobin, false},
            {"hash", lb::Policy::kHash, false},
            {"ll", lb::Policy::kLeastLoaded, false},
            {"hash+reassembler", lb::Policy::kHash, true},
        };
        size_t total = 0;
        for (unsigned n : rpu_counts) {
            for (const Combo& c : kCombos) {
                SystemConfig cfg;
                cfg.rpu_count = n;
                cfg.lb_policy = c.policy;
                cfg.hw_reassembler = c.reassembler;
                System sys(cfg);
                auto violations = sys.lint_check();
                std::printf("rpus=%-2u %-18s %zu net(s), %zu port(s): %s\n", n,
                            c.name, sys.kernel().nets().size(),
                            sys.kernel().ports().size(),
                            violations.empty()
                                ? "clean"
                                : ("FAIL\n" + lint::report(violations)).c_str());
                total += violations.size();
            }
        }
        // Paper-configuration instance for the JSON export, the DOT dump
        // and the shard-cut certifier. Two inert traffic sources attach
        // the MAC boundary components the certified plans cut along (no
        // cycle ever runs, so the generators are never called).
        SystemConfig cfg;
        cfg.rpu_count = rpu_counts.back();
        System sys(cfg);
        for (unsigned port = 0; port < 2; ++port) {
            dist::TrafficSource::Config src;
            src.port = port;
            sys.add_source(src, [] { return net::PacketPtr(); });
        }
        auto paper_violations = sys.lint_check();
        total += paper_violations.size();

        std::vector<unsigned> shard_counts;
        if (args.has("shards")) {
            unsigned n = args.u32("shards", 0);
            if (n == 0) shard_counts = {2, 4, 8};
            else shard_counts.push_back(n);
        }
        std::vector<lint::ShardPlan> plans;
        size_t bad_plans = 0;
        for (unsigned n : shard_counts) {
            lint::ShardPlan plan = sys.shard_plan(n);
            std::string why;
            bool consistent = lint::validate_plan(sys.kernel(), plan, &why);
            std::printf("%s", lint::plan_report(plan).c_str());
            if (!consistent) {
                std::printf("INCONSISTENT %u-shard plan: %s\n", n, why.c_str());
                ++bad_plans;
            }
            plans.push_back(std::move(plan));
        }

        std::string json_path = args.str("json", "");
        if (!json_path.empty()) {
            std::string json =
                "{\"lint\":" + lint::lint_json(sys.kernel(), paper_violations) +
                ",\"plans\":[";
            for (size_t i = 0; i < plans.size(); ++i) {
                if (i) json += ",";
                json += lint::plan_json(plans[i]);
            }
            json += "]}\n";
            if (FILE* f = std::fopen(json_path.c_str(), "w")) {
                std::fwrite(json.data(), 1, json.size(), f);
                std::fclose(f);
                std::printf("lint report written to %s\n", json_path.c_str());
            } else {
                std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
                return 1;
            }
        }
        if (!dot.empty()) {
            // With certified plans, dump the annotated partition view of
            // the first (finest-grained sound intent is the 2-way plan);
            // otherwise the plain netlist graph.
            std::string graph = plans.empty() ? lint::to_dot(sys.kernel())
                                              : lint::plan_dot(sys.kernel(), plans.front());
            if (FILE* f = std::fopen(dot.c_str(), "w")) {
                std::fwrite(graph.data(), 1, graph.size(), f);
                std::fclose(f);
                std::printf("netlist written to %s\n", dot.c_str());
            } else {
                std::fprintf(stderr, "cannot write %s\n", dot.c_str());
            }
        }
        if (total != 0) {
            std::printf("%zu lint violation(s)\n", total);
            return 1;
        }
        if (bad_plans != 0) {
            std::printf("%zu inconsistent shard plan(s)\n", bad_plans);
            return 1;
        }
    } else if (args.experiment == "fuzz") {
        if (args.has("replay")) {
            // Replay one corpus file, or every *.case under a directory.
            std::string target = args.str("replay", "");
            std::vector<std::string> paths = fuzz::corpus_list(target);
            if (paths.empty()) paths.push_back(target);
            size_t red = 0;
            for (const std::string& path : paths) {
                fuzz::CorpusCase c = fuzz::corpus_load(path);
                std::string detail;
                bool green = fuzz::corpus_replay(c, &detail);
                std::printf("%-5s %s: %s%s%s\n", green ? "green" : "RED",
                            path.c_str(), fuzz::corpus_kind_name(c.kind),
                            detail.empty() ? "" : " — ", detail.c_str());
                if (!green) ++red;
            }
            std::printf("replayed %zu case(s), %zu red\n", paths.size(), red);
            if (red != 0) return 1;
        } else {
            fuzz::FuzzPlan plan;
            plan.seed = std::strtoull(args.str("seed", "1").c_str(), nullptr, 0);
            plan.budget_ms = args.u32("budget-ms", 60'000);
            plan.max_cases = args.u32("cases", 0);
            std::string gen = args.str("gen", "all");
            plan.firmware = gen == "all" || gen == "fw";
            plan.packets = gen == "all" || gen == "pkt";
            plan.configs = gen == "all" || gen == "cfg";
            if (!plan.firmware && !plan.packets && !plan.configs) return usage();
            plan.minimize = !args.has("no-minimize");
            plan.corpus_dir = args.str("corpus", "");
            plan.verbose = args.has("verbose");
            fuzz::FuzzReport rep = fuzz::run_campaign(plan);
            std::printf("%s\n", rep.summary().c_str());
            for (const auto& f : rep.failures) {
                std::printf("FAILURE [%s seed %llu]%s%s\n  %s\n",
                            fuzz::corpus_kind_name(f.minimized.kind),
                            (unsigned long long)f.minimized.seed,
                            f.path.empty() ? "" : " -> ", f.path.c_str(),
                            f.detail.substr(0, 500).c_str());
            }
            if (!rep.ok()) return 1;
        }
    } else if (args.experiment == "profile") {
        obs::ProfileSpec s;
        s.pipeline = oracle::parse_pipeline(args.str("pipeline", "forwarder"));
        std::string pol = args.str(
            "policy", s.pipeline == oracle::Pipeline::kPigasusSwReorder ? "hash" : "rr");
        s.policy = pol == "hash" ? lb::Policy::kHash
                   : pol == "ll" ? lb::Policy::kLeastLoaded
                                 : lb::Policy::kRoundRobin;
        s.rpu_count = args.u32("rpus", 8);
        s.seed = args.u32("seed", 1);
        s.packet_size = args.u32("size", 256);
        s.load = args.f64("load", 0.7);
        s.attack_fraction = args.f64("attack", 0.1);
        s.run_cycles = args.u32("cycles", 50'000);
        s.epoch_cycles = args.u32("epoch", 2048);
        auto r = obs::run_profile(s);

        std::printf("pipeline=%s policy=%s rpus=%u: %llu cycles, %llu frames out "
                    "(%llu bytes)\n\n",
                    oracle::pipeline_name(s.pipeline), pol.c_str(), s.rpu_count,
                    (unsigned long long)r.cycles, (unsigned long long)r.rx_frames,
                    (unsigned long long)r.rx_bytes);
        std::printf("%s\n", obs::format_stall_report(r.stalls, args.u32("top", 12)).c_str());
        std::printf("%s", obs::annotate(r.firmware.image, r.aggregate).c_str());

        auto write_file = [](const std::string& path, const std::string& data) {
            if (path.empty()) return;
            if (FILE* f = std::fopen(path.c_str(), "w")) {
                std::fwrite(data.data(), 1, data.size(), f);
                std::fclose(f);
                std::printf("wrote %s (%zu bytes)\n", path.c_str(), data.size());
            } else {
                std::fprintf(stderr, "cannot write %s\n", path.c_str());
            }
        };
        write_file(args.str("vcd", "rosebud_profile.vcd"), r.vcd);
        write_file(args.str("trace", "rosebud_trace.json"), r.trace);
        std::string json = "{\"pipeline\":\"" +
                           std::string(oracle::pipeline_name(s.pipeline)) +
                           "\",\"rpus\":" + std::to_string(s.rpu_count) +
                           ",\"cycles\":" + std::to_string(r.cycles) +
                           ",\"rx_frames\":" + std::to_string(r.rx_frames) +
                           ",\"stalls\":" + obs::stall_report_json(r.stalls) +
                           ",\"firmware\":" + obs::profile_json(r.aggregate) + "}";
        write_file(args.str("json", "rosebud_profile.json"), json);
    } else if (args.experiment == "health") {
        obs::HealthSpec s;
        s.pipeline = oracle::parse_pipeline(args.str("pipeline", "forwarder"));
        std::string pol = args.str(
            "policy", s.pipeline == oracle::Pipeline::kPigasusSwReorder ? "hash" : "rr");
        s.policy = pol == "hash" ? lb::Policy::kHash
                   : pol == "ll" ? lb::Policy::kLeastLoaded
                                 : lb::Policy::kRoundRobin;
        s.rpu_count = args.u32("rpus", 8);
        s.seed = args.u32("seed", 1);
        s.load = args.f64("load", 0.9);
        s.run_cycles = args.u32("cycles", 40'000);
        s.slo = args.str("slo", s.slo);
        s.health.epoch_cycles = args.u32("epoch", 16'384);
        s.deep = args.has("deep");
        s.inject_stall = args.has("inject-stall");
        s.stall_rpu = args.u32("stall-rpu", 0);
        s.stall_at = args.u32("stall-at", 10'000);
        if (args.has("size")) {
            s.packet_sizes = {args.u32("size", 256)};
        } else if (args.has("sizes")) {
            s.packet_sizes.clear();
            std::string list = args.str("sizes", "");
            size_t start = 0;
            while (start <= list.size()) {
                size_t comma = list.find(',', start);
                if (comma == std::string::npos) comma = list.size();
                if (comma > start)
                    s.packet_sizes.push_back(
                        uint32_t(std::stoul(list.substr(start, comma - start))));
                start = comma + 1;
            }
            if (s.packet_sizes.empty()) return usage();
        }
        auto r = obs::run_health(s);

        std::printf("pipeline=%s policy=%s rpus=%u load=%.2f slo=\"%s\"%s\n\n",
                    oracle::pipeline_name(s.pipeline), pol.c_str(), s.rpu_count,
                    s.load, r.slo.text.c_str(),
                    s.inject_stall ? " [stall injected]" : "");
        std::printf("  size   cycles   ingress    egress     drops    Gbps  "
                    "p50_us   p99_us  p999_us  drop%%  epochs  slo  watchdog\n");
        for (const auto& row : r.rows) {
            std::printf("  %4u %8llu %9llu %9llu %9llu %7.2f %7.2f %8.2f %8.2f "
                        "%6.2f %7llu  %-4s %s\n",
                        row.packet_size, (unsigned long long)row.cycles,
                        (unsigned long long)row.ingress,
                        (unsigned long long)row.egress,
                        (unsigned long long)row.drops, row.gbps, row.p50_us,
                        row.p99_us, row.p999_us, 100.0 * row.drop_rate,
                        (unsigned long long)row.epochs,
                        row.slo_pass ? "ok" : "FAIL",
                        row.tripped ? "TRIPPED" : "-");
        }
        if (r.watchdog_tripped)
            std::printf("\nwatchdog: %s\n", r.trip_summary.c_str());
        auto write_file = [](const std::string& path, const std::string& data) {
            if (path.empty()) return;
            if (FILE* f = std::fopen(path.c_str(), "w")) {
                std::fwrite(data.data(), 1, data.size(), f);
                std::fclose(f);
                std::printf("wrote %s (%zu bytes)\n", path.c_str(), data.size());
            } else {
                std::fprintf(stderr, "cannot write %s\n", path.c_str());
            }
        };
        write_file(args.str("json", "rosebud_health.json"), r.flight_json);
        write_file(args.str("dump", "rosebud_health.txt"), r.flight_text);
        write_file(args.str("prom", "rosebud_metrics.prom"), r.metrics_prom);

        // An injected stall is *supposed* to trip the watchdog (SLO misses
        // are expected collateral); everything else expects a quiet run
        // that meets its SLO.
        bool fail;
        if (s.inject_stall) {
            fail = !r.watchdog_tripped;
            if (fail) std::printf("FAIL: injected stall was not detected\n");
        } else {
            fail = !r.slo_ok || r.watchdog_tripped;
        }
        if (fail) return 1;
    } else if (args.experiment == "cluster") {
        exp::ClusterParams p;
        p.boards = args.u32("boards", 2);
        p.rpu_count = args.u32("rpus", 16);
        p.decouple_shards = args.u32("shards", 4);
        p.ports = args.u32("ports", 2);
        p.packet_size = args.u32("size", 256);
        p.load = args.f64("load", 0.005);
        p.seed = args.u32("seed", 1);
        p.window = args.u32("cycles", 60'000);
        p.exec = sim::ShardSpec::Exec::kCoop;
        auto r = exp::run_cluster(p);

        std::printf("cluster: %u board(s), %u RPUs/board, %u shards/board, "
                    "%u port(s) x %uB @ load %.3f\n",
                    p.boards, p.rpu_count, p.decouple_shards, p.ports,
                    p.packet_size, p.load);
        std::printf("  board  frames      Gbps  host_s  ref_s  link_util  "
                    "link_worst  fingerprint\n");
        for (size_t b = 0; b < r.boards.size(); ++b) {
            const auto& br = r.boards[b];
            std::printf("  %5zu %7llu %9.3f %7.2f %6.2f %9.4f %11llu  %s\n", b,
                        (unsigned long long)br.frames, br.gbps, br.host_s,
                        br.reference_host_s, br.link_utilization,
                        (unsigned long long)br.link_worst_latency,
                        br.fingerprint_match ? "match" : "MISMATCH");
        }
        std::printf("  aggregate %.3f Gbps, sharder imbalance %.3f, "
                    "decoupled %s\n",
                    r.aggregate_gbps, r.sharder_imbalance,
                    r.decoupled_active ? "active" : "INACTIVE");
        std::printf("  host time: serial %.2f s, cluster %.2f s -> "
                    "speedup %.2fx\n",
                    r.serial_host_s, r.cluster_host_s, r.speedup);
        if (!r.fingerprints_match) {
            std::printf("FAIL: per-board fingerprint diverged from the "
                        "single-board reference\n");
            return 1;
        }
    } else if (args.experiment == "resources") {
        SystemConfig cfg;
        cfg.rpu_count = args.u32("rpus", 16);
        System sys(cfg);
        for (const auto& row : sys.resource_report()) {
            std::printf("%s\n",
                        sim::format_footprint_row(row.name, row.fp, sim::kXcvu9p).c_str());
        }
    } else {
        return usage();
    }

    // Host-time summary for every experiment that ran simulated cycles
    // (static analyses — verify, lint, resources — print nothing extra).
    static const char* kTimed[] = {"forward",  "latency",   "ips",    "firewall",
                                   "loopback", "broadcast", "reconfig", "oracle",
                                   "profile",  "health",    "cluster"};
    for (const char* name : kTimed) {
        if (args.experiment != name) continue;
        double host_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - host_t0)
                            .count();
        std::printf("[host] %s: %.2f s host time (predecode=%s, idle-skip=%s, "
                    "ticks=%s)\n",
                    args.experiment.c_str(), host_s,
                    tuning.predecode ? "on" : "off",
                    tuning.idle_skip ? "on" : "off",
                    tuning.parallel_ticks > 1
                        ? std::to_string(tuning.parallel_ticks).c_str()
                        : "serial");
        break;
    }
    return 0;
}
