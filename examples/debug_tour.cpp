/// A tour of Rosebud's software-like debugging features (paper Section
/// 3.4): write custom firmware with the assembler eDSL, disassemble what
/// is loaded, spin-wait on a breakpoint-style condition, poke the core
/// from the host, dump RPU memory, and read the 64-bit debug channel.
///
///   $ ./examples/debug_tour

#include <cstdio>

#include "core/system.h"
#include "core/tracer.h"
#include "firmware/programs.h"
#include "net/headers.h"
#include "rpu/descriptor.h"
#include "rv/assembler.h"
#include "rv/disasm.h"

using namespace rosebud;
using namespace rosebud::rv;

int
main() {
    SystemConfig cfg;
    cfg.rpu_count = 4;
    System sys(cfg);

    // Custom firmware, written inline with the assembler eDSL: compute a
    // checksum over a table in packet memory, publish it on the debug
    // channel, then spin-wait for a host poke ("breakpoint").
    Assembler a;
    a.lui(gp, 0x2000);       // interconnect registers
    a.li(t0, 0x30);
    a.sw(t0, rpu::kRegIrqMask, gp);
    a.lui(s2, 0x1000);       // packet memory base
    a.li(t1, 0);             // accumulator
    a.li(t2, 16);            // words to sum
    a.label("sum");
    a.lw(t3, 0, s2);
    a.add(t1, t1, t3);
    a.addi(s2, s2, 4);
    a.addi(t2, t2, -1);
    a.bnez(t2, "sum");
    a.sw(t1, rpu::kRegDebugLow, gp);   // publish the checksum
    a.rdcycle(t4);
    a.sw(t4, rpu::kRegDebugHigh, gp);  // and when it finished
    a.label("breakpoint");             // spin-wait for the host
    a.lw(t5, rpu::kRegIrqStatus, gp);
    a.beqz(t5, "breakpoint");
    a.ebreak();
    auto image = a.assemble();

    std::printf("--- disassembly of the loaded firmware ---\n%s\n",
                disassemble_image(image).c_str());

    // Host pre-loads a table into the RPU's packet memory (the same path
    // that fills Pigasus's URAM rule tables at runtime).
    std::vector<uint8_t> table;
    uint32_t expected = 0;
    for (uint32_t i = 0; i < 16; ++i) {
        uint32_t v = 0x1000 + i * 3;
        expected += v;
        for (int b = 0; b < 4; ++b) table.push_back(uint8_t(v >> (8 * b)));
    }
    sys.host().write_memory(0, rpu::kPmemBase, table);

    sys.host().load_firmware(0, image);
    sys.host().boot(0);
    sys.run_us(1.0);

    std::printf("firmware checksum on debug channel: 0x%x (expected 0x%x) %s\n",
                sys.host().debug_low(0), expected,
                sys.host().debug_low(0) == expected ? "OK" : "BAD");
    std::printf("computed at core cycle %u; core is now spin-waiting (pc=0x%x)\n",
                sys.host().debug_high(0), sys.rpu(0).core().pc());

    // Dump the RPU's memory from the host, like the paper's state dumps.
    auto dump = sys.host().read_memory(0, rpu::kPmemBase, 16);
    std::printf("memory dump of PMEM[0..16): ");
    for (uint8_t b : dump) std::printf("%02x ", b);
    std::printf("\n");

    // Release the "breakpoint" with a poke interrupt.
    std::printf("poking the core...\n");
    sys.host().poke(0);
    sys.run_us(1.0);
    std::printf("core halted cleanly: %s (executed %llu instructions)\n",
                sys.rpu(0).core_halted() ? "yes" : "no",
                (unsigned long long)sys.rpu(0).core().instret());

    // Finally: per-packet lifecycle tracing — the simulator's waveform
    // replacement. Trace one packet through a fresh forwarding system.
    std::printf("\n--- packet lifecycle trace ---\n");
    SystemConfig cfg2;
    cfg2.rpu_count = 4;
    System fwd(cfg2);
    auto fw_img = fwlib::forwarder();
    fwd.host().load_firmware_all(fw_img.image, fw_img.entry);
    fwd.host().boot_all();
    fwd.run_us(2.0);
    PacketTracer tracer;
    tracer.attach(fwd);
    net::PacketBuilder pb;
    pb.ipv4(net::parse_ipv4_addr("10.0.0.1"), net::parse_ipv4_addr("10.0.0.2"))
        .udp(1, 2)
        .frame_size(512);
    auto traced = pb.build();
    traced->id = 1;
    fwd.fabric().mac_rx(0, traced);
    fwd.run_us(5.0);
    std::printf("%s", tracer.format_timeline(1).c_str());

    return sys.rpu(0).core_halted() ? 0 : 1;
}
