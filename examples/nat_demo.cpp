/// A source-NAT middlebox built from scratch on the RPU abstraction — a
/// third application beyond the paper's case studies, written the same
/// way: an accelerator with a small MMIO register map plus ~40
/// instructions of orchestration firmware.
///
///   $ ./examples/nat_demo

#include <cstdio>
#include <memory>

#include "accel/nat.h"
#include "core/system.h"
#include "firmware/programs.h"
#include "net/headers.h"

using namespace rosebud;

int
main() {
    // NAT state is per-RPU, so the provider programs a custom LB policy
    // (paper Section 4.2): outbound flows steer by flow hash; inbound
    // replies steer by external-port slice, landing on the RPU that owns
    // the mapping. Each RPU's engine allocates ports from its own slice.
    const unsigned kRpus = 4;
    accel::NatEngine::Params nat_params;
    SystemConfig cfg;
    cfg.rpu_count = kRpus;
    cfg.lb_policy = lb::Policy::kCustom;
    cfg.lb_custom_steer = [nat_params](const net::Packet& pkt) -> uint32_t {
        auto parsed = net::parse_packet(pkt);
        if (!parsed || !parsed->has_ipv4) return ~0u;
        if (parsed->ipv4.dst_ip == nat_params.external_ip) {
            uint16_t dport =
                parsed->has_tcp ? parsed->tcp.dst_port : parsed->udp.dst_port;
            return 1u << ((dport - nat_params.port_base) % kRpus);
        }
        return 1u << (net::packet_flow_hash(pkt) % kRpus);
    };
    System sys(cfg);
    for (unsigned i = 0; i < kRpus; ++i) {
        accel::NatEngine::Params p = nat_params;
        p.port_stride = uint16_t(kRpus);
        p.port_offset = uint16_t(i);
        sys.rpu(i).attach_accelerator(std::make_unique<accel::NatEngine>(p));
    }
    auto fw = fwlib::nat();
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();
    sys.run_us(2.0);

    net::PacketPtr last_out;
    sys.fabric().set_mac_tx_sink(1, [&](net::PacketPtr p) { last_out = p; });
    net::PacketPtr last_in;
    sys.fabric().set_mac_tx_sink(0, [&](net::PacketPtr p) { last_in = p; });

    // Outbound: internal client 10.1.2.3:5555 -> 93.184.216.34:443.
    net::PacketBuilder out;
    out.ipv4(net::parse_ipv4_addr("10.1.2.3"), net::parse_ipv4_addr("93.184.216.34"))
        .tcp(5555, 443)
        .payload_str("GET / HTTP/1.1")
        .frame_size(128);
    // NAT state lives per-RPU; remember where the hash LB sent the flow.
    sys.fabric().mac_rx(0, out.build());
    sys.run_us(10.0);

    if (!last_out) {
        std::printf("no packet came out!\n");
        return 1;
    }
    auto parsed = net::parse_packet(*last_out);
    std::printf("outbound:  10.1.2.3:5555 -> translated to %s:%u (checksum %s)\n",
                net::format_ipv4_addr(parsed->ipv4.src_ip).c_str(),
                parsed->tcp.src_port,
                net::internet_checksum(last_out->data.data() + 14, 20) == 0 ? "valid"
                                                                            : "BROKEN");
    uint16_t ext_port = parsed->tcp.src_port;

    // Inbound reply to the allocated external port — enters the same port
    // so the hash LB (symmetric flow hash) steers it to the same RPU.
    net::PacketBuilder in;
    in.ipv4(net::parse_ipv4_addr("93.184.216.34"), nat_params.external_ip)
        .tcp(443, ext_port)
        .payload_str("HTTP/1.1 200 OK")
        .frame_size(128);
    sys.fabric().mac_rx(1, in.build());
    sys.run_us(10.0);

    if (!last_in) {
        std::printf("no reply came back through the NAT!\n");
        return 1;
    }
    auto rparsed = net::parse_packet(*last_in);
    std::printf("inbound :  reply to :%u -> translated back to %s:%u\n", ext_port,
                net::format_ipv4_addr(rparsed->ipv4.dst_ip).c_str(),
                rparsed->tcp.dst_port);

    // Unsolicited inbound traffic has no mapping and is dropped.
    net::PacketBuilder stray;
    stray.ipv4(net::parse_ipv4_addr("198.18.0.1"), nat_params.external_ip)
        .tcp(1234, 12345)
        .frame_size(128);
    uint64_t before = sys.sink(0).frames() + sys.sink(1).frames();
    sys.fabric().mac_rx(1, stray.build());
    sys.run_us(10.0);
    std::printf("stray   :  unsolicited inbound %s\n",
                sys.sink(0).frames() + sys.sink(1).frames() == before ? "dropped"
                                                                      : "LEAKED");

    bool ok = rparsed->ipv4.dst_ip == net::parse_ipv4_addr("10.1.2.3") &&
              rparsed->tcp.dst_port == 5555;
    std::printf("nat demo %s\n", ok ? "OK" : "MISBEHAVED");
    return ok ? 0 : 1;
}
