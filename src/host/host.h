/// \file
/// Host-side control of a Rosebud instance (paper Sections 3.2, 4.1,
/// Appendix A.6-A.8): the C-library/driver surface a middlebox operator
/// uses. It can load firmware and memories, configure the LB over its
/// 30-bit channel, read status counters, raise poke/evict interrupts, use
/// the 64-bit debug channel, inject/receive packets over the virtual
/// Ethernet interface, and drive the partial-reconfiguration flow.
///
/// PR timing: the drain phase runs in simulation; the MCAP bitstream write
/// is modeled analytically (partial bitstream sized from the PR region's
/// share of the device at the measured ~3.3 MB/s MCAP rate), reproducing
/// the paper's 756 ms average over repeated loads.

#ifndef ROSEBUD_HOST_HOST_H
#define ROSEBUD_HOST_HOST_H

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "dist/fabric.h"
#include "lb/load_balancer.h"
#include "rpu/rpu.h"
#include "sim/kernel.h"
#include "sim/random.h"
#include "sim/stats.h"

namespace rosebud::host {

/// Policy for the static firmware verifier gate (verify::verify_image) that
/// runs on every firmware load. Mirrors the paper's safety story: hardware
/// memory protection catches bad RPUs at runtime, the verifier refuses to
/// load provably bad images in the first place.
enum class FirmwareCheck {
    kEnforce,  ///< verifier errors abort the load (default)
    kWarn,     ///< verifier errors are logged, load proceeds
    kOff,      ///< no static verification
};

/// Snapshot format for the health layer's metrics query. Mirrors
/// obs::MetricsFormat — the host layer sits below obs and cannot include
/// it; the provider closure installed by obs::HealthMonitor bridges the
/// two enums.
enum class MetricsFormat : uint8_t { kPrometheus, kJson };

/// Breakdown of one partial-reconfiguration cycle.
struct PrTiming {
    double drain_us = 0;      ///< waiting for in-flight packets (simulated)
    double bitstream_ms = 0;  ///< MCAP partial-bitstream write (modeled)
    double boot_us = 0;       ///< memory load + core boot (simulated)
    double total_ms = 0;
};

class HostContext {
 public:
    HostContext(sim::Kernel& kernel, sim::Stats& stats, lb::LoadBalancer& lb,
                dist::Fabric& fabric, std::vector<rpu::Rpu*> rpus);

    // --- firmware / memory ---------------------------------------------------

    void load_firmware(unsigned rpu, const std::vector<uint32_t>& image, uint32_t entry = 0);
    void load_firmware_all(const std::vector<uint32_t>& image, uint32_t entry = 0);

    /// Set the verifier-gate policy for subsequent firmware loads.
    void set_firmware_check(FirmwareCheck mode) { firmware_check_ = mode; }
    FirmwareCheck firmware_check() const { return firmware_check_; }

    /// Line-rate admission gate: when not kOff, firmware must certify with
    /// a finite per-activation WCET, a finite stack bound, and a clean
    /// text-segment write-separation proof; with a non-zero budget the
    /// certified worst-case cycles must also fit it. This is the per-RPU /
    /// per-tenant cycle-budget contract the multi-tenant control plane
    /// admits against.
    void set_wcet_check(FirmwareCheck mode) { wcet_check_ = mode; }
    FirmwareCheck wcet_check() const { return wcet_check_; }
    void set_wcet_budget_cycles(uint64_t cycles) { wcet_budget_cycles_ = cycles; }
    uint64_t wcet_budget_cycles() const { return wcet_budget_cycles_; }
    void boot(unsigned rpu);
    void boot_all();

    /// Write into an RPU's address space (DMEM/PMEM/AMEM regions), e.g.
    /// to preload lookup tables before boot — the capability that let the
    /// Pigasus port fill its URAM tables at runtime (Section 7.1.2).
    void write_memory(unsigned rpu, uint32_t addr, const std::vector<uint8_t>& bytes);

    /// Read back an RPU memory range (state dumps for debugging).
    std::vector<uint8_t> read_memory(unsigned rpu, uint32_t addr, uint32_t len) const;

    // --- LB configuration channel --------------------------------------------

    void lb_write(uint32_t addr, uint32_t value) { lb_.host_write(addr, value); }
    uint32_t lb_read(uint32_t addr) const { return lb_.host_read(addr); }
    void set_recv_mask(uint32_t mask) { lb_.host_write(lb::kLbRegRecvMask, mask); }
    void set_enable_mask(uint32_t mask) { lb_.host_write(lb::kLbRegEnableMask, mask); }

    // --- status & debugging ----------------------------------------------------

    uint64_t counter(const std::string& name) const { return stats_.get(name); }
    void poke(unsigned rpu) { rpus_.at(rpu)->raise_poke(); }
    void evict(unsigned rpu) { rpus_.at(rpu)->raise_evict(); }
    uint32_t debug_low(unsigned rpu) const { return rpus_.at(rpu)->debug_low(); }
    uint32_t debug_high(unsigned rpu) const { return rpus_.at(rpu)->debug_high(); }

    // --- virtual Ethernet -------------------------------------------------------

    /// Inject a packet as if sent through the Corundum NIC interface.
    bool inject(net::PacketPtr pkt) { return fabric_.host_inject(std::move(pkt)); }

    /// Register the receive callback for host-bound packets.
    void set_rx_handler(dist::Fabric::SinkFn fn) { fabric_.set_host_sink(std::move(fn)); }

    // --- partial reconfiguration --------------------------------------------------

    /// Full no-pause reconfiguration flow for one RPU (Appendix A.8):
    /// stop traffic to it, drain, evict+halt, write the new "bitstream"
    /// (accelerator swap), reload firmware, boot, resume traffic.
    PrTiming reconfigure(unsigned rpu,
                         std::function<std::unique_ptr<rpu::Accelerator>()> accel_factory,
                         const std::vector<uint32_t>& image, uint32_t entry, sim::Rng& rng);

    rpu::Rpu& rpu(unsigned idx) { return *rpus_.at(idx); }
    unsigned rpu_count() const { return unsigned(rpus_.size()); }

    // --- production health -----------------------------------------------------

    /// Observer of the reconfigure() flow's phase transitions (phase name,
    /// target RPU). The health layer installs this so the flight recorder
    /// can correlate drop bursts and latency spikes with PR phases.
    using ReconfigObserver = std::function<void(const char* phase, unsigned rpu)>;
    void set_reconfig_observer(ReconfigObserver fn) {
        reconfig_observer_ = std::move(fn);
    }

    /// Provider of metrics snapshots, installed by obs::HealthMonitor on
    /// attach. A closure keeps the dependency direction intact: the host
    /// layer never links against obs.
    using MetricsProvider = std::function<std::string(MetricsFormat)>;
    void set_metrics_provider(MetricsProvider fn) {
        metrics_provider_ = std::move(fn);
    }
    bool has_metrics_provider() const { return bool(metrics_provider_); }

    /// Point-in-time metrics snapshot from the attached health layer
    /// (paper §4.3's "status counters", grown into a full registry);
    /// empty when no health layer is attached.
    std::string metrics_snapshot(
        MetricsFormat fmt = MetricsFormat::kPrometheus) const {
        return metrics_provider_ ? metrics_provider_(fmt) : std::string();
    }

 private:
    /// Run the static verifier over `image` per the current policy;
    /// sim::fatal on errors when enforcing.
    void gate_firmware(const std::vector<uint32_t>& image, uint32_t entry) const;

    FirmwareCheck firmware_check_ = FirmwareCheck::kEnforce;
    FirmwareCheck wcet_check_ = FirmwareCheck::kOff;
    ReconfigObserver reconfig_observer_;
    MetricsProvider metrics_provider_;
    uint64_t wcet_budget_cycles_ = 0;  ///< 0 = no budget comparison
    sim::Kernel& kernel_;
    sim::Stats& stats_;
    lb::LoadBalancer& lb_;
    dist::Fabric& fabric_;
    std::vector<rpu::Rpu*> rpus_;
};

}  // namespace rosebud::host

#endif  // ROSEBUD_HOST_HOST_H
