#include "host/host.h"

#include "rpu/descriptor.h"
#include "sim/log.h"
#include "sim/resources.h"
#include "verify/verifier.h"

namespace rosebud::host {

HostContext::HostContext(sim::Kernel& kernel, sim::Stats& stats, lb::LoadBalancer& lb,
                         dist::Fabric& fabric, std::vector<rpu::Rpu*> rpus)
    : kernel_(kernel), stats_(stats), lb_(lb), fabric_(fabric), rpus_(std::move(rpus)) {}

void
HostContext::gate_firmware(const std::vector<uint32_t>& image, uint32_t entry) const {
    if (firmware_check_ == FirmwareCheck::kOff && wcet_check_ == FirmwareCheck::kOff) {
        return;
    }
    verify::Options opts;
    opts.entry = entry;
    verify::Report report = verify::verify_image(image, opts);
    if (firmware_check_ != FirmwareCheck::kOff && !report.ok()) {
        std::string msg = "firmware rejected by static verifier (" +
                          std::to_string(report.errors()) + " error(s)):\n" +
                          report.summary();
        if (firmware_check_ == FirmwareCheck::kEnforce) {
            sim::fatal(msg);
        } else {
            sim::warn(msg);
        }
    }
    if (wcet_check_ == FirmwareCheck::kOff) return;

    // Line-rate admission: the certificate must prove the image can keep up
    // (finite per-activation WCET within any configured budget), cannot
    // overflow its stack, and never rewrites its own text segment.
    const verify::Certificate& cert = report.cert;
    std::string why;
    if (!cert.wcet_bounded) {
        why += "  per-activation WCET is unbounded (non-terminating compute loop "
               "or indirect jump)\n";
    } else if (wcet_budget_cycles_ != 0 && cert.wcet_cycles > wcet_budget_cycles_) {
        why += "  certified WCET " + std::to_string(cert.wcet_cycles) +
               " cycles exceeds the admission budget of " +
               std::to_string(wcet_budget_cycles_) + " cycles\n";
    }
    if (!cert.stack_bounded) why += "  stack depth is unbounded\n";
    if (!cert.text_write_separation) {
        why += "  text-segment write separation unproven (" +
               std::to_string(cert.unproven_stores) + " unbounded store(s))\n";
    }
    if (why.empty()) return;
    std::string msg = "firmware rejected by line-rate admission gate:\n" + why;
    if (wcet_check_ == FirmwareCheck::kEnforce) {
        sim::fatal(msg);
    } else {
        sim::warn(msg);
    }
}

void
HostContext::load_firmware(unsigned rpu, const std::vector<uint32_t>& image, uint32_t entry) {
    gate_firmware(image, entry);
    rpus_.at(rpu)->load_firmware(image, entry);
}

void
HostContext::load_firmware_all(const std::vector<uint32_t>& image, uint32_t entry) {
    gate_firmware(image, entry);  // verify once, not once per RPU
    for (unsigned i = 0; i < rpus_.size(); ++i) rpus_.at(i)->load_firmware(image, entry);
}

void
HostContext::boot(unsigned rpu) {
    rpus_.at(rpu)->boot();
}

void
HostContext::boot_all() {
    for (auto* r : rpus_) r->boot();
}

void
HostContext::write_memory(unsigned rpu, uint32_t addr, const std::vector<uint8_t>& bytes) {
    rpu::Rpu& r = *rpus_.at(rpu);
    using namespace rosebud::rpu;
    if (addr >= kDmemBase && addr + bytes.size() <= kDmemBase + kDmemSize) {
        r.dmem().write_block(addr - kDmemBase, bytes.data(), uint32_t(bytes.size()));
    } else if (addr >= kPmemBase && addr + bytes.size() <= kPmemBase + kPmemSize) {
        r.pmem().write_block(addr - kPmemBase, bytes.data(), uint32_t(bytes.size()));
    } else if (addr >= kAmemBase && addr + bytes.size() <= kAmemBase + kAmemSize) {
        r.amem().write_block(addr - kAmemBase, bytes.data(), uint32_t(bytes.size()));
    } else {
        sim::fatal("host write_memory: address range not mapped");
    }
}

std::vector<uint8_t>
HostContext::read_memory(unsigned rpu, uint32_t addr, uint32_t len) const {
    rpu::Rpu& r = *rpus_.at(rpu);
    using namespace rosebud::rpu;
    std::vector<uint8_t> out(len);
    if (addr >= kDmemBase && addr + len <= kDmemBase + kDmemSize) {
        r.dmem().read_block(addr - kDmemBase, out.data(), len);
    } else if (addr >= kPmemBase && addr + len <= kPmemBase + kPmemSize) {
        r.pmem().read_block(addr - kPmemBase, out.data(), len);
    } else if (addr >= kAmemBase && addr + len <= kAmemBase + kAmemSize) {
        r.amem().read_block(addr - kAmemBase, out.data(), len);
    } else {
        sim::fatal("host read_memory: address range not mapped");
    }
    return out;
}

PrTiming
HostContext::reconfigure(unsigned rpu_idx,
                         std::function<std::unique_ptr<rpu::Accelerator>()> accel_factory,
                         const std::vector<uint32_t>& image, uint32_t entry, sim::Rng& rng) {
    PrTiming t;
    rpu::Rpu& target = *rpus_.at(rpu_idx);
    auto phase = [&](const char* name) {
        if (reconfig_observer_) reconfig_observer_(name, rpu_idx);
    };

    // 0. Verify the replacement image up front so a bad one fails the
    //    reconfiguration before traffic is stopped or the RPU drained.
    gate_firmware(image, entry);

    // 1. Tell the LB to stop sending traffic to this RPU.
    uint32_t mask = lb_.recv_mask();
    lb_.host_write(lb::kLbRegRecvMask, mask & ~(1u << rpu_idx));
    phase("stop_traffic");

    // 2. Drain: wait until no packets remain inside the RPU.
    sim::Cycle drain_start = kernel_.now();
    bool drained = kernel_.run_until([&] { return target.occupancy() == 0; }, 2'000'000);
    if (!drained) sim::warn("reconfigure: RPU did not drain; proceeding anyway");
    t.drain_us = sim::cycles_to_us(kernel_.now() - drain_start);
    phase(drained ? "drain_done" : "drain_timeout");

    // 3. Evict interrupt, then halt the core.
    target.raise_evict();
    kernel_.run(64);
    target.halt();

    // 4. Write the partial bitstream over MCAP. The region's bitstream
    //    size scales with its share of the device; MCAP sustains ~3.3
    //    MB/s (it moves configuration frames through PCIe config space).
    constexpr double kDeviceBitstreamBytes = 107e6;  // XCVU9P full image
    double region_share =
        double(target.base_resources().luts + 23298) / double(sim::kXcvu9p.luts);
    double bitstream_bytes = kDeviceBitstreamBytes * region_share;
    double mcap_rate = 3.35e6 * (1.0 + (rng.uniform() - 0.5) * 0.06);
    t.bitstream_ms = bitstream_bytes / mcap_rate * 1e3;
    phase("bitstream_write");

    // 5. Swap the accelerator, reload firmware, boot, let it settle.
    if (accel_factory) target.attach_accelerator(accel_factory());
    target.load_firmware(image, entry);
    sim::Cycle boot_start = kernel_.now();
    target.boot();
    kernel_.run_until([&] { return target.slot_config().count != 0 || target.core_halted(); },
                      50'000);
    t.boot_us = sim::cycles_to_us(kernel_.now() - boot_start);
    phase("boot_done");

    // 6. Resume traffic.
    lb_.host_write(lb::kLbRegRecvMask, mask);
    phase("resume");

    t.total_ms = t.drain_us / 1e3 + t.bitstream_ms + t.boot_us / 1e3;
    stats_.counter("host.pr_loads").add();
    return t;
}

}  // namespace rosebud::host
