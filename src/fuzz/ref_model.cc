#include "fuzz/ref_model.h"

namespace rosebud::fuzz {

namespace {

// Local field extraction, transcribed from the spec's encoding diagrams.
// (Deliberately not the rv/isa.h helpers beyond what a human would re-derive;
// keeping these separate is what makes an encoder/decoder bug visible.)
inline uint32_t opc(uint32_t i) { return i & 0x7f; }
inline uint32_t rd_of(uint32_t i) { return (i >> 7) & 31; }
inline uint32_t f3(uint32_t i) { return (i >> 12) & 7; }
inline uint32_t rs1_of(uint32_t i) { return (i >> 15) & 31; }
inline uint32_t rs2_of(uint32_t i) { return (i >> 20) & 31; }
inline uint32_t f7(uint32_t i) { return i >> 25; }

inline int32_t imm_i(uint32_t i) { return int32_t(i) >> 20; }
inline int32_t imm_s(uint32_t i) {
    return (int32_t(i) >> 25 << 5) | int32_t((i >> 7) & 31);
}
inline int32_t imm_b(uint32_t i) {
    int32_t v = int32_t((i >> 31) & 1) << 12 | int32_t((i >> 7) & 1) << 11 |
                int32_t((i >> 25) & 0x3f) << 5 | int32_t((i >> 8) & 0xf) << 1;
    return v << 19 >> 19;
}
inline int32_t imm_u(uint32_t i) { return int32_t(i & 0xfffff000); }
inline int32_t imm_j(uint32_t i) {
    int32_t v = int32_t((i >> 31) & 1) << 20 | int32_t((i >> 12) & 0xff) << 12 |
                int32_t((i >> 20) & 1) << 11 | int32_t((i >> 21) & 0x3ff) << 1;
    return v << 11 >> 11;
}

constexpr uint32_t kCsrMstatus = 0x300;
constexpr uint32_t kCsrMtvec = 0x305;
constexpr uint32_t kCsrMepc = 0x341;
constexpr uint32_t kCsrMcause = 0x342;
constexpr uint32_t kCsrCycle = 0xc00;
constexpr uint32_t kCsrTime = 0xc01;
constexpr uint32_t kCsrInstret = 0xc02;
constexpr uint32_t kCsrCycleH = 0xc80;
constexpr uint32_t kCsrTimeH = 0xc81;
constexpr uint32_t kCsrInstretH = 0xc82;

}  // namespace

void
RefModel::reset(uint32_t pc) {
    x_.fill(0);
    csrs_ = RefCsrs{};
    pc_ = pc;
    instret_ = 0;
    state_ = Step::kOk;
}

bool
RefModel::external_interrupt() {
    if (state_ != Step::kOk || !(csrs_.mstatus & 0x8)) return false;
    csrs_.mepc = pc_;
    csrs_.mcause = 0x8000000b;  // machine external interrupt
    csrs_.mstatus = (csrs_.mstatus & ~0x88u) | ((csrs_.mstatus & 0x8) << 4);
    pc_ = csrs_.mtvec & ~3u;
    return true;
}

RefModel::Step
RefModel::step() {
    if (state_ != Step::kOk) return state_;
    if (pc_ & 3) {  // instruction-address-misaligned
        state_ = Step::kTrap;
        return state_;
    }
    Step s = exec(mem_.fetch(pc_));
    if (s == Step::kOk) ++instret_;
    state_ = s;
    return s;
}

RefModel::Step
RefModel::exec(uint32_t insn) {
    const uint32_t rd = rd_of(insn);
    const uint32_t a = x_[rs1_of(insn)];
    const uint32_t b = x_[rs2_of(insn)];
    uint32_t next = pc_ + 4;

    auto wr = [&](uint32_t v) {
        if (rd) x_[rd] = v;
    };
    // Control transfers to misaligned addresses raise the misaligned-fetch
    // trap at the transfer, like the core.
    auto jump = [&](uint32_t target) -> bool {
        if (target & 3) return false;
        next = target;
        return true;
    };

    switch (opc(insn)) {
    case 0x37:  // lui
        wr(uint32_t(imm_u(insn)));
        break;
    case 0x17:  // auipc
        wr(pc_ + uint32_t(imm_u(insn)));
        break;
    case 0x6f:  // jal
        wr(pc_ + 4);
        if (!jump(pc_ + uint32_t(imm_j(insn)))) return Step::kTrap;
        break;
    case 0x67: {  // jalr (funct3 must be 0)
        if (f3(insn) != 0) return Step::kTrap;
        uint32_t target = (a + uint32_t(imm_i(insn))) & ~1u;
        wr(pc_ + 4);
        if (!jump(target)) return Step::kTrap;
        break;
    }
    case 0x63: {  // branches
        bool taken;
        switch (f3(insn)) {
        case 0: taken = a == b; break;
        case 1: taken = a != b; break;
        case 4: taken = int32_t(a) < int32_t(b); break;
        case 5: taken = int32_t(a) >= int32_t(b); break;
        case 6: taken = a < b; break;
        case 7: taken = a >= b; break;
        default: return Step::kTrap;
        }
        if (taken && !jump(pc_ + uint32_t(imm_b(insn)))) return Step::kTrap;
        break;
    }
    case 0x03: {  // loads
        uint32_t size;
        switch (f3(insn)) {
        case 0: case 4: size = 1; break;
        case 1: case 5: size = 2; break;
        case 2: size = 4; break;
        default: return Step::kTrap;
        }
        uint32_t addr = a + uint32_t(imm_i(insn));
        if (addr % size) return Step::kTrap;  // misaligned load
        RefMem::Access acc = mem_.load(addr, size);
        if (acc.fault) return Step::kTrap;
        uint32_t v = acc.value;
        switch (f3(insn)) {
        case 0: v = uint32_t(int32_t(int8_t(v))); break;
        case 1: v = uint32_t(int32_t(int16_t(v))); break;
        case 4: v &= 0xff; break;
        case 5: v &= 0xffff; break;
        default: break;
        }
        wr(v);
        break;
    }
    case 0x23: {  // stores
        uint32_t size;
        switch (f3(insn)) {
        case 0: size = 1; break;
        case 1: size = 2; break;
        case 2: size = 4; break;
        default: return Step::kTrap;
        }
        uint32_t addr = a + uint32_t(imm_s(insn));
        if (addr % size) return Step::kTrap;  // misaligned store
        RefMem::Access acc = mem_.store(addr, size, b & (size == 4 ? 0xffffffffu
                                                         : size == 2 ? 0xffffu
                                                                     : 0xffu));
        if (acc.fault) return Step::kTrap;
        break;
    }
    case 0x13: {  // OP-IMM
        int32_t imm = imm_i(insn);
        switch (f3(insn)) {
        case 0: wr(a + uint32_t(imm)); break;
        case 1: wr(a << (imm & 31)); break;
        case 2: wr(int32_t(a) < imm ? 1 : 0); break;
        case 3: wr(a < uint32_t(imm) ? 1 : 0); break;
        case 4: wr(a ^ uint32_t(imm)); break;
        case 5:
            if (insn & (1u << 30)) {
                wr(uint32_t(int32_t(a) >> (imm & 31)));
            } else {
                wr(a >> (imm & 31));
            }
            break;
        case 6: wr(a | uint32_t(imm)); break;
        case 7: wr(a & uint32_t(imm)); break;
        }
        break;
    }
    case 0x33:  // OP
        if (f7(insn) == 1) {  // M extension
            switch (f3(insn)) {
            case 0: wr(a * b); break;
            case 1: wr(uint32_t((int64_t(int32_t(a)) * int64_t(int32_t(b))) >> 32)); break;
            case 2: wr(uint32_t((int64_t(int32_t(a)) * int64_t(uint64_t(b))) >> 32)); break;
            case 3: wr(uint32_t((uint64_t(a) * uint64_t(b)) >> 32)); break;
            case 4:  // div: x/0 = -1; INT_MIN/-1 = INT_MIN
                if (b == 0) {
                    wr(0xffffffffu);
                } else if (a == 0x80000000u && b == 0xffffffffu) {
                    wr(0x80000000u);
                } else {
                    wr(uint32_t(int32_t(a) / int32_t(b)));
                }
                break;
            case 5: wr(b == 0 ? 0xffffffffu : a / b); break;
            case 6:  // rem: x%0 = x; INT_MIN%-1 = 0
                if (b == 0) {
                    wr(a);
                } else if (a == 0x80000000u && b == 0xffffffffu) {
                    wr(0);
                } else {
                    wr(uint32_t(int32_t(a) % int32_t(b)));
                }
                break;
            case 7: wr(b == 0 ? a : a % b); break;
            }
        } else {
            switch (f3(insn)) {
            case 0: wr(f7(insn) == 0x20 ? a - b : a + b); break;
            case 1: wr(a << (b & 31)); break;
            case 2: wr(int32_t(a) < int32_t(b) ? 1 : 0); break;
            case 3: wr(a < b ? 1 : 0); break;
            case 4: wr(a ^ b); break;
            case 5:
                if (f7(insn) == 0x20) {
                    wr(uint32_t(int32_t(a) >> (b & 31)));
                } else {
                    wr(a >> (b & 31));
                }
                break;
            case 6: wr(a | b); break;
            case 7: wr(a & b); break;
            }
        }
        break;
    case 0x0f:  // fence / fence.i: architectural no-ops here
        break;
    case 0x73:  // SYSTEM
        if (f3(insn) == 0) {
            if (insn == 0x30200073) {  // mret
                uint32_t target = csrs_.mepc;
                csrs_.mstatus =
                    (csrs_.mstatus & ~0x8u) | ((csrs_.mstatus >> 4) & 0x8) | 0x80;
                if (!jump(target)) return Step::kTrap;
            } else {
                return Step::kHalt;  // ecall / ebreak
            }
        } else {
            // Zicsr. Counter CSRs read the instruction count (the model is
            // untimed); trap CSRs are read/write.
            const uint32_t csr = insn >> 20;
            uint32_t value = 0;
            uint32_t* writable = nullptr;
            switch (csr) {
            case kCsrCycle:
            case kCsrTime:
            case kCsrInstret: value = uint32_t(instret_); break;
            case kCsrCycleH:
            case kCsrTimeH:
            case kCsrInstretH: value = uint32_t(instret_ >> 32); break;
            case kCsrMstatus: writable = &csrs_.mstatus; break;
            case kCsrMtvec: writable = &csrs_.mtvec; break;
            case kCsrMepc: writable = &csrs_.mepc; break;
            case kCsrMcause: writable = &csrs_.mcause; break;
            default: value = 0; break;
            }
            if (writable) value = *writable;
            // csrrw always writes; csrrs/csrrc skip the write when rs1=x0.
            // (Immediate forms fall through with no write — see header.)
            if (writable && !(f3(insn) != 1 && rs1_of(insn) == 0)) {
                switch (f3(insn)) {
                case 1: *writable = a; break;
                case 2: *writable = value | a; break;
                case 3: *writable = value & ~a; break;
                default: break;
                }
            }
            wr(value);
        }
        break;
    default:
        return Step::kTrap;  // undecodable major opcode
    }

    pc_ = next;
    return Step::kOk;
}

}  // namespace rosebud::fuzz
