#include "fuzz/driver.h"

#include <chrono>
#include <cstdio>
#include <sstream>

#include "sim/log.h"

namespace rosebud::fuzz {

namespace {

uint64_t
now_ms() {
    using namespace std::chrono;
    return uint64_t(
        duration_cast<milliseconds>(steady_clock::now().time_since_epoch())
            .count());
}

std::string
failure_path(const FuzzPlan& plan, const char* gen, uint64_t index) {
    std::ostringstream os;
    os << plan.corpus_dir << "/" << gen << "-s" << plan.seed << "-c" << index
       << ".case";
    return os.str();
}

void
record_failure(const FuzzPlan& plan, FuzzReport& rep, CorpusCase minimized,
               std::string detail, const char* gen, uint64_t index) {
    FuzzFailure f;
    f.minimized = std::move(minimized);
    f.detail = std::move(detail);
    if (!plan.corpus_dir.empty()) {
        f.path = failure_path(plan, gen, index);
        corpus_save(f.minimized, f.path);
    }
    rep.failures.push_back(std::move(f));
}

void
progress(const FuzzPlan& plan, const char* gen, uint64_t index,
         const char* verdict) {
    if (!plan.verbose) return;
    std::printf("  [%s %6llu] %s\n", gen, (unsigned long long)index, verdict);
    std::fflush(stdout);
}

}  // namespace

uint64_t
campaign_case_seed(uint64_t campaign_seed, uint64_t index) {
    // splitmix64 of (seed, index): each case's seed depends only on the
    // campaign seed and its index, never on how earlier cases went.
    uint64_t z = campaign_seed + (index + 1) * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::string
FuzzReport::summary() const {
    std::ostringstream os;
    os << "fuzz: " << total_cases() << " cases in " << elapsed_ms << " ms | fw "
       << fw_pass << "/" << fw_cases;
    if (fw_inadmissible) os << " (" << fw_inadmissible << " inadmissible)";
    os << " | pkt " << pkt_pass << "/" << pkt_cases << " | cfg " << cfg_pass
       << " pass + " << cfg_rejected << " rejected / " << cfg_cases << " | "
       << failures.size() << " failure(s)";
    return os.str();
}

FuzzReport
run_campaign(const FuzzPlan& plan) {
    FuzzReport rep;
    const uint64_t start = now_ms();
    auto out_of_budget = [&] { return now_ms() - start >= plan.budget_ms; };
    auto hit_cap = [&](uint64_t count) {
        return plan.max_cases != 0 && count >= plan.max_cases;
    };

    // Round-robin across the enabled generators so a short budget still
    // samples all three.
    for (uint64_t i = 0;; ++i) {
        bool any = false;
        const uint64_t cs = campaign_case_seed(plan.seed, i);

        if (plan.firmware && !hit_cap(rep.fw_cases) && !out_of_budget()) {
            any = true;
            ++rep.fw_cases;
            FwCase c = generate_firmware(cs, plan.fw_opts);
            FwVerdict v = run_firmware_lockstep(c, plan.fw_opts);
            progress(plan, "fw", i, fw_kind_name(v.kind));
            if (v.kind == FwKind::kInadmissible) {
                ++rep.fw_inadmissible;
            } else if (v.ok()) {
                ++rep.fw_pass;
            } else {
                if (plan.minimize) c = minimize_firmware(c, plan.fw_opts);
                CorpusCase cc;
                cc.kind = CorpusCase::Kind::kFirmware;
                cc.seed = c.seed;
                cc.note = v.detail;
                cc.image = c.image;
                record_failure(plan, rep, std::move(cc), v.detail, "fw", i);
            }
        }

        if (plan.packets && !hit_cap(rep.pkt_cases) && !out_of_budget()) {
            any = true;
            ++rep.pkt_cases;
            PktCase c = generate_packet_case(cs, plan.pkt_opts);
            PktVerdict v = run_packet_case(c, plan.pkt_opts);
            progress(plan, "pkt", i, v.ok() ? "pass" : "diverge");
            if (v.ok()) {
                ++rep.pkt_pass;
            } else {
                auto frames = v.frames;
                if (plan.minimize) {
                    frames = minimize_packets(c, plan.pkt_opts, frames);
                }
                CorpusCase cc;
                cc.kind = CorpusCase::Kind::kPacket;
                cc.seed = c.seed;
                cc.note = "divergence under replay";
                cc.pkt = c;
                cc.frames = std::move(frames);
                record_failure(plan, rep, std::move(cc), v.detail, "pkt", i);
            }
        }

        if (plan.configs && !hit_cap(rep.cfg_cases) && !out_of_budget()) {
            any = true;
            ++rep.cfg_cases;
            CfgCase c = generate_config_case(cs, plan.cfg_opts);
            CfgVerdict v = run_config_case(c, plan.cfg_opts);
            progress(plan, "cfg", i, cfg_kind_name(v.kind));
            if (v.kind == CfgKind::kPass) {
                ++rep.cfg_pass;
            } else if (v.ok()) {
                ++rep.cfg_rejected;
            } else {
                auto deltas = c.deltas;
                if (plan.minimize) deltas = minimize_config(c, plan.cfg_opts);
                CorpusCase cc;
                cc.kind = CorpusCase::Kind::kConfig;
                cc.seed = c.seed;
                cc.note = cfg_kind_name(v.kind);
                cc.deltas = std::move(deltas);
                record_failure(plan, rep, std::move(cc), v.detail, "cfg", i);
            }
        }

        // Every enabled generator hit its cap or the clock ran out.
        if (!any) break;
    }

    rep.elapsed_ms = now_ms() - start;
    return rep;
}

}  // namespace rosebud::fuzz
