/// \file
/// Golden RV32IM reference executor for conformance fuzzing.
///
/// This is the promoted and completed form of the naive RefModel that used
/// to live inside tests/test_rv_fuzz.cc: a deliberately straight-line
/// transcription of the RISC-V unprivileged spec (v2.2) plus the machine-
/// mode trap subset rv::Core implements. It shares *no* decode or execute
/// code with the interpreter — only the bit-extraction helpers of
/// rv/isa.h — so a disagreement between the two is a real divergence, not
/// a mirrored bug (the FERIVer lockstep methodology).
///
/// Deviations-by-contract, chosen to match the simulated hardware:
///
///  * Misaligned data accesses trap (the RPU buses fault them; the spec
///    permits either behavior).
///  * Misaligned *control transfers* (target & 3 != 0) trap at the edge,
///    the spec's instruction-address-misaligned exception.
///  * ecall/ebreak halt the model (the core's firmware-exit convention).
///  * CSR immediate forms (csrrwi/csrrsi/csrrci) read the register file
///    like the register forms do — matching rv::Core, which does not
///    implement the zimm encoding. The static verifier rejects them, so
///    admissible firmware never reaches this corner; targeted lockstep
///    tests pin the shared behavior anyway.
///
/// Timing is deliberately absent: the model retires exactly one
/// instruction per step(). The cycle/time CSRs therefore read as the
/// *instruction* count and must not be compared against a timed core —
/// the firmware fuzzer's admissibility templates never emit them.

#ifndef ROSEBUD_FUZZ_REF_MODEL_H
#define ROSEBUD_FUZZ_REF_MODEL_H

#include <array>
#include <cstdint>

namespace rosebud::fuzz {

/// Memory system seen by the reference model. Implementations define the
/// address map (legal windows, MMIO device semantics); the model defines
/// only the ISA. Natural alignment is enforced by the *model* before the
/// access reaches RefMem.
class RefMem {
 public:
    virtual ~RefMem() = default;

    struct Access {
        uint32_t value = 0;  ///< loaded value (zero-extended raw bytes)
        bool fault = false;  ///< unmapped access -> model traps
    };

    virtual Access load(uint32_t addr, uint32_t size) = 0;
    virtual Access store(uint32_t addr, uint32_t size, uint32_t value) = 0;

    /// Instruction fetch (always a 32-bit aligned word).
    virtual uint32_t fetch(uint32_t addr) = 0;
};

/// Architectural trap CSRs (mirrors the subset rv::Core implements).
struct RefCsrs {
    uint32_t mstatus = 0;
    uint32_t mtvec = 0;
    uint32_t mepc = 0;
    uint32_t mcause = 0;
};

class RefModel {
 public:
    /// Outcome of one retired instruction.
    enum class Step : uint8_t {
        kOk,    ///< retired normally
        kHalt,  ///< ecall/ebreak
        kTrap,  ///< bus fault, misaligned access/target, illegal opcode
    };

    explicit RefModel(RefMem& mem) : mem_(mem) {}

    void reset(uint32_t pc);

    /// Fetch, decode and execute one instruction. After kHalt/kTrap the
    /// model is stopped: further calls return the same verdict.
    Step step();

    /// Take a machine external interrupt (only when mstatus.MIE is set);
    /// returns true if the vector was entered. Exposed so a lockstep
    /// harness that injects interrupts can mirror the core's trap entry.
    bool external_interrupt();

    bool halted() const { return state_ != Step::kOk; }
    bool trapped() const { return state_ == Step::kTrap; }

    uint32_t pc() const { return pc_; }
    uint32_t reg(unsigned r) const { return x_[r & 31]; }
    void set_reg(unsigned r, uint32_t v) {
        if ((r & 31) != 0) x_[r & 31] = v;
    }
    const RefCsrs& csrs() const { return csrs_; }
    uint64_t instret() const { return instret_; }

 private:
    Step exec(uint32_t insn);

    RefMem& mem_;
    std::array<uint32_t, 32> x_{};
    uint32_t pc_ = 0;
    uint64_t instret_ = 0;
    RefCsrs csrs_;
    Step state_ = Step::kOk;
};

}  // namespace rosebud::fuzz

#endif  // ROSEBUD_FUZZ_REF_MODEL_H
