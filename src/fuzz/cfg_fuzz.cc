#include "fuzz/cfg_fuzz.h"

#include "oracle/harness.h"
#include "sim/log.h"
#include "sim/random.h"

namespace rosebud::fuzz {

namespace {

void
set_field(SystemConfig& cfg, CfgField f, uint32_t v) {
    switch (f) {
    case CfgField::kRpuCount: cfg.rpu_count = v; break;
    case CfgField::kStage1Width: cfg.fabric.stage1_bytes_per_cycle = v; break;
    case CfgField::kLinkWidth: cfg.rpu_template.link_bytes_per_cycle = v; break;
    case CfgField::kVoqDepth: cfg.fabric.voq_depth = v; break;
    case CfgField::kEgressDepth: cfg.fabric.egress_queue_depth = v; break;
    case CfgField::kRxFifoDepth: cfg.rpu_template.rx_fifo_depth = v; break;
    case CfgField::kTxCmdDepth: cfg.rpu_template.tx_cmd_depth = v; break;
    case CfgField::kBcastNotifyDepth: cfg.rpu_template.bcast_notify_depth = v; break;
    case CfgField::kBcastTxDepth: cfg.broadcast.tx_fifo_depth = v; break;
    }
}

uint32_t
sample_value(sim::Rng& rng, CfgField f) {
    switch (f) {
    case CfgField::kRpuCount: {
        // Mostly hostile: non-multiples of 4, zero, and beyond the cap.
        static constexpr uint32_t kCounts[] = {0, 1, 2, 3, 4, 6, 8, 12,
                                               16, 20, 24, 30, 32, 36, 40};
        return kCounts[rng.below(sizeof(kCounts) / sizeof(kCounts[0]))];
    }
    case CfgField::kStage1Width: {
        static constexpr uint32_t kWidths[] = {16, 32, 48, 64, 128};
        return kWidths[rng.below(5)];
    }
    case CfgField::kLinkWidth: {
        static constexpr uint32_t kWidths[] = {4, 8, 16, 32};
        return kWidths[rng.below(4)];
    }
    default:
        // Depths: 0 (lint bait) through oversized.
        return uint32_t(rng.below(33));
    }
}

bool
injected_bug_bites(const SystemConfig& cfg) {
    return cfg.fabric.voq_depth < 4 && cfg.rpu_template.tx_cmd_depth < 4 &&
           cfg.fabric.egress_queue_depth < 4;
}

}  // namespace

const char*
cfg_field_name(CfgField f) {
    switch (f) {
    case CfgField::kRpuCount: return "rpu_count";
    case CfgField::kStage1Width: return "stage1_bytes_per_cycle";
    case CfgField::kLinkWidth: return "link_bytes_per_cycle";
    case CfgField::kVoqDepth: return "voq_depth";
    case CfgField::kEgressDepth: return "egress_queue_depth";
    case CfgField::kRxFifoDepth: return "rx_fifo_depth";
    case CfgField::kTxCmdDepth: return "tx_cmd_depth";
    case CfgField::kBcastNotifyDepth: return "bcast_notify_depth";
    case CfgField::kBcastTxDepth: return "bcast_tx_fifo_depth";
    }
    return "?";
}

const char*
cfg_kind_name(CfgKind k) {
    switch (k) {
    case CfgKind::kPass: return "pass";
    case CfgKind::kRejectedConstruct: return "rejected-construct";
    case CfgKind::kRejectedLint: return "rejected-lint";
    case CfgKind::kRejectedRuntime: return "rejected-runtime";
    case CfgKind::kDiverge: return "diverge";
    case CfgKind::kFingerprint: return "fingerprint-mismatch";
    case CfgKind::kShardPlan: return "shard-plan";
    }
    return "?";
}

SystemConfig
apply_deltas(const std::vector<CfgDelta>& deltas) {
    SystemConfig cfg;
    for (const auto& d : deltas) set_field(cfg, d.field, d.value);
    return cfg;
}

CfgCase
generate_config_case(uint64_t seed, const CfgOptions& opts) {
    sim::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0xcf6);
    CfgCase c;
    c.seed = seed;
    if (opts.inject_cfg_bug) {
        // The three coupled fields the predicate fires on, hidden among
        // benign depth tweaks the minimizer must discard.
        c.deltas.push_back({CfgField::kVoqDepth, uint32_t(rng.range(1, 3))});
        c.deltas.push_back({CfgField::kTxCmdDepth, uint32_t(rng.range(1, 3))});
        c.deltas.push_back({CfgField::kEgressDepth, uint32_t(rng.range(1, 3))});
        static constexpr CfgField kBenign[] = {CfgField::kRxFifoDepth,
                                               CfgField::kBcastNotifyDepth,
                                               CfgField::kBcastTxDepth};
        for (const CfgField f : kBenign) {
            c.deltas.push_back({f, uint32_t(rng.range(4, 32))});
        }
        return c;
    }
    static constexpr CfgField kAll[] = {
        CfgField::kRpuCount,    CfgField::kStage1Width,      CfgField::kLinkWidth,
        CfgField::kVoqDepth,    CfgField::kEgressDepth,      CfgField::kRxFifoDepth,
        CfgField::kTxCmdDepth,  CfgField::kBcastNotifyDepth, CfgField::kBcastTxDepth,
    };
    for (uint64_t n = rng.range(1, 3); n--;) {
        CfgField f = kAll[rng.below(sizeof(kAll) / sizeof(kAll[0]))];
        c.deltas.push_back({f, sample_value(rng, f)});
    }
    return c;
}

CfgVerdict
run_config_case(const CfgCase& c, const CfgOptions& opts) {
    CfgVerdict v;
    SystemConfig cfg = apply_deltas(c.deltas);

    // Gate 1: constructor parameter validation.
    cfg.lint = LintMode::kOff;
    try {
        System sys(cfg);
        // Gate 2: the elaboration-time netlist linter.
        auto violations = sys.lint_check();
        if (!violations.empty()) {
            v.kind = CfgKind::kRejectedLint;
            v.detail = lint::report(violations);
            return v;
        }
        // Shard-plan oracle: every netlist that survives the linter must
        // yield an internally consistent certifier verdict — a sound plan
        // whose every cut edge carries lookahead >= 1, or a proven
        // no-safe-cut explanation. Anything else is a certifier bug.
        lint::ShardPlan plan = lint::certify_partition(sys.kernel(), 2);
        std::string why;
        if (!lint::validate_plan(sys.kernel(), plan, &why)) {
            v.kind = CfgKind::kShardPlan;
            v.detail = "shard-plan oracle: " + why;
            return v;
        }
    } catch (const sim::FatalError& e) {
        v.kind = CfgKind::kRejectedConstruct;
        v.detail = e.what();
        return v;
    }

    if (opts.inject_cfg_bug && injected_bug_bites(cfg)) {
        v.kind = CfgKind::kDiverge;
        v.detail = "injected config bug predicate";
        return v;
    }

    // Accepted: the config must survive a differential probe and produce
    // a tick-order-independent fingerprint.
    oracle::RunSpec spec;
    spec.pipeline = oracle::Pipeline::kForwarder;
    spec.policy = lb::Policy::kRoundRobin;
    spec.rpu_count = cfg.rpu_count;
    spec.seed = c.seed;
    spec.max_packets = opts.max_packets;
    spec.packet_size = 128;
    spec.load = 1.0;
    spec.run_cycles = opts.run_cycles;
    spec.drain_cycles = 2000;
    auto deltas = c.deltas;
    spec.tweak_config = [deltas](SystemConfig& s) {
        for (const auto& d : deltas) set_field(s, d.field, d.value);
    };

    try {
        oracle::RunResult serial = oracle::run_differential(spec);
        if (opts.with_oracle && !serial.ok) {
            v.kind = CfgKind::kDiverge;
            v.detail = serial.report.substr(0, 2000);
            return v;
        }
        spec.shuffle_tick_order = true;
        oracle::RunResult shuffled = oracle::run_differential(spec);
        if (opts.with_oracle && !shuffled.ok) {
            v.kind = CfgKind::kDiverge;
            v.detail = shuffled.report.substr(0, 2000);
            return v;
        }
        if (serial.fingerprint != shuffled.fingerprint) {
            v.kind = CfgKind::kFingerprint;
            v.detail = "serial/shuffled state fingerprints differ";
            return v;
        }
        v.fingerprint = serial.fingerprint;
    } catch (const sim::FatalError& e) {
        v.kind = CfgKind::kRejectedRuntime;
        v.detail = e.what();
        return v;
    }
    return v;
}

std::vector<CfgDelta>
minimize_config(const CfgCase& c, const CfgOptions& opts) {
    const CfgKind want = run_config_case(c, opts).kind;
    std::vector<CfgDelta> best = c.deltas;
    // Greedy single-field revert to the default, to fixpoint.
    bool shrunk = true;
    while (shrunk) {
        shrunk = false;
        for (size_t i = 0; i < best.size(); ++i) {
            CfgCase trial{c.seed, best};
            trial.deltas.erase(trial.deltas.begin() + long(i));
            if (run_config_case(trial, opts).kind != want) continue;
            best = std::move(trial.deltas);
            shrunk = true;
            break;
        }
    }
    return best;
}

}  // namespace rosebud::fuzz
