/// \file
/// Campaign driver: the single entry point behind `rosebud_cli fuzz`.
///
/// A campaign walks a seed-indexed case sequence round-robin across the
/// three generators (firmware, packet, config). Case i of each generator
/// is derived from mix(campaign_seed, i) alone, so the sequence is a pure
/// function of the campaign seed: the wall-clock budget (and max_cases)
/// only decide how much of that fixed sequence gets run — a prefix, never
/// a different sequence. `--seed N --budget-ms M` is therefore
/// reproducible: rerunning with the same seed revisits exactly the same
/// cases in the same order.
///
/// Failures are minimized with the matching delta-debugging reducer and,
/// when a corpus directory is configured, serialized as
/// `<dir>/<gen><seed>-<case>.case` for replay by the regression suite.

#ifndef ROSEBUD_FUZZ_DRIVER_H
#define ROSEBUD_FUZZ_DRIVER_H

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/cfg_fuzz.h"
#include "fuzz/corpus.h"
#include "fuzz/fw_fuzz.h"
#include "fuzz/pkt_fuzz.h"

namespace rosebud::fuzz {

struct FuzzPlan {
    uint64_t seed = 1;           ///< campaign seed (names the case sequence)
    uint64_t budget_ms = 60'000; ///< wall-clock bound; truncates, never reorders
    uint64_t max_cases = 0;      ///< per-generator cap; 0 = budget-bound only
    bool firmware = true;
    bool packets = true;
    bool configs = true;
    bool minimize = true;        ///< ddmin failures before reporting
    std::string corpus_dir;      ///< save minimized failures here ("" = don't)
    bool verbose = false;        ///< per-case progress on stdout
    FwOptions fw_opts;
    PktOptions pkt_opts;
    CfgOptions cfg_opts;
};

struct FuzzFailure {
    CorpusCase minimized;  ///< replayable reproduction (post-ddmin)
    std::string detail;    ///< verdict description
    std::string path;      ///< corpus file ("" if no corpus_dir)
};

struct FuzzReport {
    // Per-generator case counts (attempted / clean).
    uint64_t fw_cases = 0, fw_pass = 0, fw_inadmissible = 0;
    uint64_t pkt_cases = 0, pkt_pass = 0;
    uint64_t cfg_cases = 0, cfg_pass = 0, cfg_rejected = 0;
    uint64_t elapsed_ms = 0;
    std::vector<FuzzFailure> failures;

    uint64_t total_cases() const { return fw_cases + pkt_cases + cfg_cases; }
    bool ok() const { return failures.empty(); }
    std::string summary() const;
};

/// Run a campaign. Deterministic per plan.seed (see file comment).
FuzzReport run_campaign(const FuzzPlan& plan);

/// The per-case seed for generator case index i under a campaign seed.
uint64_t campaign_case_seed(uint64_t campaign_seed, uint64_t index);

}  // namespace rosebud::fuzz

#endif  // ROSEBUD_FUZZ_DRIVER_H
