/// \file
/// Packet conformance fuzzer: random flows plus adversarially malformed
/// frames driven through every accelerator pipeline under the golden-model
/// differential scoreboard (src/oracle).
///
/// Each seed deterministically selects one valid pipeline×policy
/// combination, a traffic shape, and a mutation plan. Mutations run in the
/// harness's mutate_frame hook — after generation, before the frame is
/// offered — so the oracle's ingress prediction and the device always score
/// the same bytes; what the fuzzer probes is whether the *device* handles
/// those bytes the way the reference dataplane says it must.
///
/// The mutation grammar is pipeline-aware. Truncation floors keep each
/// sample inside the envelope the firmware contracts to parse (the
/// fixed-offset firewall/IDS firmwares read header bytes unconditionally,
/// so a frame shorter than the parsed region would compare stale packet
/// memory — a known sharp edge documented in docs/FUZZING.md):
///
///   * forwarder: any length >= 14 and arbitrary byte corruption — it
///     echoes bytes without parsing them;
///   * firewall:  truncation >= 34; ethertype/src-IP/payload corruption;
///   * pigasus:   TCP frames keep their flow identity, protocol and
///     segment length (the reorder engines wait forever on a sequence
///     hole, wedging the flow) — only the IP total-length field and
///     payload bytes are malformed; UDP frames get the full grammar
///     including truncation >= 42;
///   * nat:       direction flips (src/dst IP+port swaps) to collide
///     translation state, payload corruption; the version/IHL byte is
///     left alone (the engine trusts it).
///
/// Every case also exercises bogus IP total-length values and (outside
/// NAT) oversized IHL/IP options — fields no stage parses, which is
/// exactly the claim the scoreboard then re-proves.

#ifndef ROSEBUD_FUZZ_PKT_FUZZ_H
#define ROSEBUD_FUZZ_PKT_FUZZ_H

#include <cstdint>
#include <string>
#include <vector>

#include "oracle/harness.h"

namespace rosebud::fuzz {

/// One deterministic packet-fuzz sample.
struct PktCase {
    uint64_t seed = 0;
    oracle::Pipeline pipeline = oracle::Pipeline::kForwarder;
    lb::Policy policy = lb::Policy::kRoundRobin;
    unsigned rpu_count = 8;
    uint32_t packet_size = 128;
    uint64_t max_packets = 100;
    double attack_fraction = 0.25;
    double reorder_fraction = 0.0;
    double udp_fraction = 0.2;
    double mutate_prob = 0.4;  ///< per-frame probability of malformation
};

struct PktOptions {
    uint64_t max_packets = 100;       ///< traffic volume per case
    sim::Cycle run_cycles = 40'000;   ///< main run length before drain
    /// Synthetic failure: corrupt the firewall oracle's blacklist (the
    /// harness's oracle_blacklist hook) so the run must diverge — the
    /// injection path for minimizer and corpus tests. Forces the case
    /// onto the firewall pipeline.
    bool inject_oracle_bug = false;
};

enum class PktKind : uint8_t { kPass, kDiverge };

struct PktVerdict {
    PktKind kind = PktKind::kPass;
    uint64_t divergences = 0;
    uint64_t offered = 0;
    std::string detail;  ///< scoreboard report head ("" if pass)
    /// The frames actually offered (post-mutation), in order — the replay
    /// unit for the corpus and the minimizer.
    std::vector<std::vector<uint8_t>> frames;

    bool ok() const { return kind == PktKind::kPass; }
};

/// Derive case parameters from `seed` (deterministic).
PktCase generate_packet_case(uint64_t seed, const PktOptions& opts = {});

/// Run one case under the differential scoreboard.
PktVerdict run_packet_case(const PktCase& c, const PktOptions& opts = {});

/// Replay explicit frames through the case's configuration (corpus replay
/// and the minimizer's probe). No generator, no mutation.
PktVerdict replay_packet_case(const PktCase& c, const PktOptions& opts,
                              const std::vector<std::vector<uint8_t>>& frames);

/// ddmin over the recorded frames: the smallest subsequence that still
/// reproduces a divergence under replay.
std::vector<std::vector<uint8_t>> minimize_packets(
    const PktCase& c, const PktOptions& opts,
    const std::vector<std::vector<uint8_t>>& frames);

}  // namespace rosebud::fuzz

#endif  // ROSEBUD_FUZZ_PKT_FUZZ_H
