#include "fuzz/corpus.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "sim/log.h"

namespace rosebud::fuzz {

namespace {

const char*
pipeline_tag(oracle::Pipeline p) {
    switch (p) {
    case oracle::Pipeline::kForwarder: return "forwarder";
    case oracle::Pipeline::kFirewall: return "firewall";
    case oracle::Pipeline::kPigasusHwReorder: return "ids-hw";
    case oracle::Pipeline::kPigasusSwReorder: return "ids-sw";
    case oracle::Pipeline::kNat: return "nat";
    }
    return "forwarder";
}

oracle::Pipeline
pipeline_from_tag(const std::string& tag) {
    if (tag == "forwarder") return oracle::Pipeline::kForwarder;
    if (tag == "firewall") return oracle::Pipeline::kFirewall;
    if (tag == "ids-hw") return oracle::Pipeline::kPigasusHwReorder;
    if (tag == "ids-sw") return oracle::Pipeline::kPigasusSwReorder;
    if (tag == "nat") return oracle::Pipeline::kNat;
    sim::fatal("corpus: unknown pipeline '" + tag + "'");
}

const char*
policy_tag(lb::Policy p) {
    switch (p) {
    case lb::Policy::kRoundRobin: return "rr";
    case lb::Policy::kHash: return "hash";
    case lb::Policy::kLeastLoaded: return "ll";
    default: break;
    }
    return "rr";
}

lb::Policy
policy_from_tag(const std::string& tag) {
    if (tag == "rr") return lb::Policy::kRoundRobin;
    if (tag == "hash") return lb::Policy::kHash;
    if (tag == "ll") return lb::Policy::kLeastLoaded;
    sim::fatal("corpus: unknown policy '" + tag + "'");
}

CfgField
cfg_field_from_tag(const std::string& tag) {
    static constexpr CfgField kAll[] = {
        CfgField::kRpuCount,    CfgField::kStage1Width,      CfgField::kLinkWidth,
        CfgField::kVoqDepth,    CfgField::kEgressDepth,      CfgField::kRxFifoDepth,
        CfgField::kTxCmdDepth,  CfgField::kBcastNotifyDepth, CfgField::kBcastTxDepth,
    };
    for (const CfgField f : kAll) {
        if (tag == cfg_field_name(f)) return f;
    }
    sim::fatal("corpus: unknown config field '" + tag + "'");
}

int
hex_nibble(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
}

std::vector<uint8_t>
parse_hex_bytes(const std::string& hex) {
    if (hex.size() % 2 != 0) sim::fatal("corpus: odd-length hex payload");
    std::vector<uint8_t> out;
    out.reserve(hex.size() / 2);
    for (size_t i = 0; i < hex.size(); i += 2) {
        int hi = hex_nibble(hex[i]);
        int lo = hex_nibble(hex[i + 1]);
        if (hi < 0 || lo < 0) sim::fatal("corpus: bad hex digit in payload");
        out.push_back(uint8_t(hi << 4 | lo));
    }
    return out;
}

}  // namespace

const char*
corpus_kind_name(CorpusCase::Kind k) {
    switch (k) {
    case CorpusCase::Kind::kFirmware: return "fw";
    case CorpusCase::Kind::kPacket: return "pkt";
    case CorpusCase::Kind::kConfig: return "cfg";
    }
    return "?";
}

std::string
corpus_to_text(const CorpusCase& c) {
    std::ostringstream os;
    os << "rosebud-fuzz-case v1\n";
    os << "kind " << corpus_kind_name(c.kind) << "\n";
    os << "seed " << c.seed << "\n";
    if (!c.note.empty()) os << "note " << c.note << "\n";
    switch (c.kind) {
    case CorpusCase::Kind::kFirmware:
        for (const uint32_t w : c.image) {
            char buf[16];
            std::snprintf(buf, sizeof(buf), "%08" PRIx32, w);
            os << "word " << buf << "\n";
        }
        break;
    case CorpusCase::Kind::kPacket:
        os << "pipeline " << pipeline_tag(c.pkt.pipeline) << "\n";
        os << "policy " << policy_tag(c.pkt.policy) << "\n";
        os << "rpu_count " << c.pkt.rpu_count << "\n";
        os << "packet_size " << c.pkt.packet_size << "\n";
        for (const auto& frame : c.frames) {
            os << "frame ";
            for (const uint8_t b : frame) {
                char buf[4];
                std::snprintf(buf, sizeof(buf), "%02x", b);
                os << buf;
            }
            os << "\n";
        }
        break;
    case CorpusCase::Kind::kConfig:
        for (const auto& d : c.deltas) {
            os << "delta " << cfg_field_name(d.field) << " " << d.value << "\n";
        }
        break;
    }
    return os.str();
}

CorpusCase
corpus_from_text(const std::string& text) {
    std::istringstream is(text);
    std::string line;
    if (!std::getline(is, line) || line != "rosebud-fuzz-case v1") {
        sim::fatal("corpus: missing 'rosebud-fuzz-case v1' header");
    }
    CorpusCase c;
    bool have_kind = false;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#') continue;
        std::istringstream ls(line);
        std::string key;
        ls >> key;
        if (key == "kind") {
            std::string tag;
            ls >> tag;
            if (tag == "fw") c.kind = CorpusCase::Kind::kFirmware;
            else if (tag == "pkt") c.kind = CorpusCase::Kind::kPacket;
            else if (tag == "cfg") c.kind = CorpusCase::Kind::kConfig;
            else sim::fatal("corpus: unknown kind '" + tag + "'");
            have_kind = true;
        } else if (key == "seed") {
            ls >> c.seed;
            c.pkt.seed = c.seed;
        } else if (key == "note") {
            std::getline(ls, c.note);
            if (!c.note.empty() && c.note[0] == ' ') c.note.erase(0, 1);
        } else if (key == "word") {
            std::string hex;
            ls >> hex;
            char* end = nullptr;
            unsigned long w = std::strtoul(hex.c_str(), &end, 16);
            if (hex.empty() || end != hex.c_str() + hex.size() || w > 0xffffffffUL) {
                sim::fatal("corpus: bad instruction word '" + hex + "'");
            }
            c.image.push_back(uint32_t(w));
        } else if (key == "pipeline") {
            std::string tag;
            ls >> tag;
            c.pkt.pipeline = pipeline_from_tag(tag);
        } else if (key == "policy") {
            std::string tag;
            ls >> tag;
            c.pkt.policy = policy_from_tag(tag);
        } else if (key == "rpu_count") {
            ls >> c.pkt.rpu_count;
        } else if (key == "packet_size") {
            ls >> c.pkt.packet_size;
        } else if (key == "frame") {
            std::string hex;
            ls >> hex;
            c.frames.push_back(parse_hex_bytes(hex));
        } else if (key == "delta") {
            std::string tag;
            uint32_t value = 0;
            ls >> tag >> value;
            c.deltas.push_back({cfg_field_from_tag(tag), value});
        } else {
            sim::fatal("corpus: unknown key '" + key + "'");
        }
    }
    if (!have_kind) sim::fatal("corpus: case has no 'kind' line");
    return c;
}

CorpusCase
corpus_load(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) sim::fatal("corpus: cannot open '" + path + "'");
    std::ostringstream os;
    os << in.rdbuf();
    try {
        return corpus_from_text(os.str());
    } catch (const sim::FatalError& e) {
        sim::fatal(std::string(e.what()) + " (in " + path + ")");
    }
}

void
corpus_save(const CorpusCase& c, const std::string& path) {
    std::filesystem::path p(path);
    if (p.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(p.parent_path(), ec);
    }
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) sim::fatal("corpus: cannot write '" + path + "'");
    out << corpus_to_text(c);
}

std::vector<std::string>
corpus_list(const std::string& dir) {
    std::vector<std::string> out;
    std::error_code ec;
    std::filesystem::directory_iterator it(dir, ec);
    if (ec) return out;
    for (const auto& entry : it) {
        if (entry.path().extension() == ".case") {
            out.push_back(entry.path().string());
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

bool
corpus_replay(const CorpusCase& c, std::string* detail) {
    switch (c.kind) {
    case CorpusCase::Kind::kFirmware: {
        FwCase fc{c.seed, c.image};
        FwVerdict v = run_firmware_lockstep(fc);
        if (detail) {
            *detail = fw_kind_name(v.kind);
            if (!v.detail.empty()) *detail += ": " + v.detail;
        }
        return v.ok();
    }
    case CorpusCase::Kind::kPacket: {
        PktVerdict v = replay_packet_case(c.pkt, {}, c.frames);
        if (detail) {
            *detail = v.ok() ? "pass" : "diverge: " + v.detail;
        }
        return v.ok();
    }
    case CorpusCase::Kind::kConfig: {
        CfgCase cc{c.seed, c.deltas};
        CfgVerdict v = run_config_case(cc);
        if (detail) {
            *detail = cfg_kind_name(v.kind);
            if (!v.detail.empty()) *detail += ": " + v.detail;
        }
        return v.ok();
    }
    }
    return false;
}

}  // namespace rosebud::fuzz
