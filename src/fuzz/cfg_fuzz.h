/// \file
/// Configuration conformance fuzzer: randomized RPU counts, FIFO depths
/// and bus widths, each sample classified against the system's own gates.
///
/// Every sample must land in exactly one bucket:
///
///   * rejected at construction — System's parameter validation throws
///     (e.g. an rpu_count that is not a positive multiple of 4 <= 32);
///   * rejected by the elaboration-time netlist linter (src/lint) — zero
///     FIFO depths, bus widths off the paper's table;
///   * accepted — in which case the configuration must run a clean
///     differential sweep under the golden-model scoreboard AND produce
///     an identical state_fingerprint when re-run with the kernel's
///     component tick order shuffled.
///
/// A configuration that slips past both gates and then diverges (or whose
/// fingerprint depends on tick order) is the bug class this fuzzer hunts:
/// a config-dependent race or an unvalidated parameter.

#ifndef ROSEBUD_FUZZ_CFG_FUZZ_H
#define ROSEBUD_FUZZ_CFG_FUZZ_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/system.h"

namespace rosebud::fuzz {

/// A fuzzable configuration knob.
enum class CfgField : uint8_t {
    kRpuCount,          ///< SystemConfig::rpu_count (invalid values included)
    kStage1Width,       ///< fabric.stage1_bytes_per_cycle (paper: 64)
    kLinkWidth,         ///< rpu_template.link_bytes_per_cycle (paper: 16)
    kVoqDepth,          ///< fabric.voq_depth
    kEgressDepth,       ///< fabric.egress_queue_depth
    kRxFifoDepth,       ///< rpu_template.rx_fifo_depth
    kTxCmdDepth,        ///< rpu_template.tx_cmd_depth
    kBcastNotifyDepth,  ///< rpu_template.bcast_notify_depth
    kBcastTxDepth,      ///< broadcast.tx_fifo_depth
};

const char* cfg_field_name(CfgField f);

struct CfgDelta {
    CfgField field = CfgField::kRpuCount;
    uint32_t value = 0;
};

/// One sample: the default SystemConfig plus these field overrides.
struct CfgCase {
    uint64_t seed = 0;
    std::vector<CfgDelta> deltas;
};

struct CfgOptions {
    uint64_t max_packets = 20;      ///< traffic per differential probe
    sim::Cycle run_cycles = 6000;   ///< probe length
    bool with_oracle = true;        ///< false: fingerprint-only probe (fast)
    /// Synthetic config bug for the minimizer demo: a sample whose applied
    /// config has voq_depth < 4 AND tx_cmd_depth < 4 AND egress depth < 4
    /// is declared divergent without running (three coupled fields the
    /// greedy minimizer must isolate).
    bool inject_cfg_bug = false;
};

enum class CfgKind : uint8_t {
    kPass,
    kRejectedConstruct,  ///< System constructor threw
    kRejectedLint,       ///< netlist linter flagged it
    kRejectedRuntime,    ///< a runtime fatal during the probe
    kDiverge,            ///< scoreboard divergence on an accepted config
    kFingerprint,        ///< shuffled-tick-order fingerprint mismatch
    kShardPlan,          ///< shard-cut certifier emitted an inconsistent plan
};

const char* cfg_kind_name(CfgKind k);

struct CfgVerdict {
    CfgKind kind = CfgKind::kPass;
    std::string detail;
    uint64_t fingerprint = 0;  ///< serial-order fingerprint (pass buckets)

    bool ok() const {
        return kind == CfgKind::kPass || kind == CfgKind::kRejectedConstruct ||
               kind == CfgKind::kRejectedLint;
    }
};

/// Apply the deltas on top of a default SystemConfig.
SystemConfig apply_deltas(const std::vector<CfgDelta>& deltas);

/// Derive one sample from `seed` (deterministic).
CfgCase generate_config_case(uint64_t seed, const CfgOptions& opts = {});

/// Classify one sample (see the bucket list in the file comment).
CfgVerdict run_config_case(const CfgCase& c, const CfgOptions& opts = {});

/// Greedy field minimizer: drop deltas while the verdict kind is
/// preserved. Returns the reduced delta list.
std::vector<CfgDelta> minimize_config(const CfgCase& c, const CfgOptions& opts = {});

}  // namespace rosebud::fuzz

#endif  // ROSEBUD_FUZZ_CFG_FUZZ_H
