#include "fuzz/pkt_fuzz.h"

#include <algorithm>
#include <memory>

#include "net/rules.h"
#include "sim/random.h"

namespace rosebud::fuzz {

namespace {

using oracle::Pipeline;

/// The valid pipeline×policy matrix (DataplaneOracle's constructor gate).
struct Combo {
    Pipeline pipeline;
    lb::Policy policy;
};

constexpr Combo kCombos[] = {
    {Pipeline::kForwarder, lb::Policy::kRoundRobin},
    {Pipeline::kForwarder, lb::Policy::kHash},
    {Pipeline::kForwarder, lb::Policy::kLeastLoaded},
    {Pipeline::kFirewall, lb::Policy::kRoundRobin},
    {Pipeline::kFirewall, lb::Policy::kLeastLoaded},
    {Pipeline::kPigasusHwReorder, lb::Policy::kRoundRobin},
    {Pipeline::kPigasusHwReorder, lb::Policy::kLeastLoaded},
    {Pipeline::kPigasusSwReorder, lb::Policy::kHash},
    {Pipeline::kNat, lb::Policy::kRoundRobin},
    {Pipeline::kNat, lb::Policy::kHash},
    {Pipeline::kNat, lb::Policy::kLeastLoaded},
};

/// Shortest frame the pipeline's firmware contracts to parse without
/// touching bytes beyond the frame (see the file comment in pkt_fuzz.h).
size_t
truncation_floor(Pipeline p, const std::vector<uint8_t>& frame) {
    switch (p) {
    case Pipeline::kForwarder: return 14;
    case Pipeline::kFirewall: return 34;
    case Pipeline::kPigasusHwReorder:
    case Pipeline::kPigasusSwReorder:
        if (frame.size() > 23 && frame[23] != 6 && frame[23] != 17) return 38;
        return frame.size() > 23 && frame[23] == 17 ? 42 : 54;
    case Pipeline::kNat: return 54;
    }
    return 54;
}

void
mutate_one(net::Packet& pkt, Pipeline pipeline, sim::Rng& rng) {
    auto& d = pkt.data;
    bool nat = pipeline == Pipeline::kNat;
    bool forwarder = pipeline == Pipeline::kForwarder;
    bool pigasus = pipeline == Pipeline::kPigasusHwReorder ||
                   pipeline == Pipeline::kPigasusSwReorder;

    // TCP under a reorder engine is special: a mutation that changes one
    // segment's length, flow identity or protocol leaves a sequence hole
    // the engine waits on forever, wedging the rest of the flow (the
    // scoreboard then reports the held segments as stuck). Keep those
    // invariants and malform only what nothing sequences on: the IP
    // total-length field and the payload bytes. UDP frames on the same
    // pipelines get the full grammar — the engine does not track them.
    if (pigasus && d.size() > 23 && d[23] == 6) {
        if (rng.chance(0.5) && d.size() >= 18) {
            d[16] = uint8_t(rng.next());
            d[17] = uint8_t(rng.next());
        } else if (d.size() > 54) {
            for (uint64_t n = rng.range(1, 8); n--;) {
                d[54 + rng.below(d.size() - 54)] = uint8_t(rng.next());
            }
        }
        return;
    }

    switch (rng.below(6)) {
    case 0: {  // truncate toward the pipeline's parse floor
        size_t floor = truncation_floor(pipeline, d);
        if (d.size() > floor) d.resize(rng.range(floor, d.size() - 1));
        break;
    }
    case 1: {  // extend with garbage payload bytes
        size_t extra = size_t(rng.range(1, 64));
        for (size_t i = 0; i < extra; ++i) d.push_back(uint8_t(rng.next()));
        break;
    }
    case 2:  // bogus IP total length — no stage parses it
        if (d.size() >= 18) {
            d[16] = uint8_t(rng.next());
            d[17] = uint8_t(rng.next());
        }
        break;
    case 3:  // oversized IHL / IP options (engine-trusted byte: skip on NAT)
        if (!nat && d.size() >= 15) {
            d[14] = uint8_t(0x40 | rng.range(5, 15));
        }
        break;
    case 4:  // direction flip: swap src/dst IPs and ports (state collisions)
        if (d.size() >= 38) {
            for (size_t i = 0; i < 4; ++i) std::swap(d[26 + i], d[30 + i]);
            for (size_t i = 0; i < 2; ++i) std::swap(d[34 + i], d[36 + i]);
        }
        break;
    default:  // scattered byte corruption
        if (!d.empty()) {
            for (uint64_t n = rng.range(1, 8); n--;) {
                size_t off = size_t(rng.below(d.size()));
                // The NAT engine trusts version/IHL; stay off that byte.
                if (nat && off == 14) continue;
                // Corrupting L2/L3 headers is only fully modeled on the
                // forwarder (it echoes); elsewhere restrict corruption to
                // fields the oracle provably mirrors: ethertype, proto,
                // IPs, ports, payload.
                if (!forwarder && off < 54 && !(off == 12 || off == 13 || off == 23 ||
                                                (off >= 26 && off <= 37) || off >= 42)) {
                    continue;
                }
                d[off] = uint8_t(rng.next());
            }
        }
        break;
    }
    if (d.empty()) d.push_back(0);
}

oracle::RunSpec
base_spec(const PktCase& c, const PktOptions& opts) {
    oracle::RunSpec spec;
    spec.pipeline = c.pipeline;
    spec.policy = c.policy;
    spec.rpu_count = c.rpu_count;
    spec.hw_reassembler = c.pipeline == Pipeline::kPigasusHwReorder;
    spec.seed = c.seed;
    spec.packet_size = c.packet_size;
    spec.max_packets = c.max_packets;
    spec.attack_fraction = c.attack_fraction;
    spec.reorder_fraction = c.reorder_fraction;
    spec.udp_fraction = c.udp_fraction;
    spec.run_cycles = opts.run_cycles;
    return spec;
}

PktVerdict
verdict_from(const oracle::RunResult& res) {
    PktVerdict v;
    v.divergences = res.counts.divergences;
    v.offered = res.counts.offered;
    if (!res.ok) {
        v.kind = PktKind::kDiverge;
        v.detail = res.report.substr(0, 2000);
    }
    return v;
}

/// Reproduce the harness's blacklist synthesis for this seed and corrupt
/// it: the oracle forgets half the entries, so the device's (correct)
/// drops become divergences. Validates the failure path end to end.
net::Blacklist
corrupted_blacklist(const oracle::RunSpec& spec) {
    sim::Rng rng(spec.seed);
    net::Blacklist full = net::Blacklist::synthesize(spec.blacklist_count, rng);
    net::Blacklist half;
    const auto& entries = full.entries();
    for (size_t i = 0; i < entries.size(); i += 2) {
        half.add(entries[i].prefix, entries[i].length);
    }
    return half;
}

}  // namespace

PktCase
generate_packet_case(uint64_t seed, const PktOptions& opts) {
    sim::Rng rng(seed * 0x9e3779b97f4a7c15ULL + 0xfe0f);
    PktCase c;
    c.seed = seed;
    const Combo& combo = kCombos[rng.below(sizeof(kCombos) / sizeof(kCombos[0]))];
    c.pipeline = combo.pipeline;
    c.policy = combo.policy;
    if (opts.inject_oracle_bug) {
        // The corrupted-oracle hook exists only on the firewall pipeline.
        c.pipeline = Pipeline::kFirewall;
        c.policy = lb::Policy::kRoundRobin;
    }
    c.rpu_count = 4u * unsigned(rng.range(1, 4));
    c.packet_size = uint32_t(rng.range(64, 512));
    c.max_packets = opts.max_packets;
    c.attack_fraction = rng.chance(0.5) ? 0.25 : 0.05;
    c.reorder_fraction = c.pipeline == Pipeline::kPigasusSwReorder ? 0.1 : 0.0;
    c.udp_fraction = rng.chance(0.3) ? 0.5 : 0.2;
    c.mutate_prob = 0.2 + 0.4 * rng.uniform();
    return c;
}

PktVerdict
run_packet_case(const PktCase& c, const PktOptions& opts) {
    oracle::RunSpec spec = base_spec(c, opts);

    net::Blacklist corrupt;
    if (opts.inject_oracle_bug) {
        corrupt = corrupted_blacklist(spec);
        spec.oracle_blacklist = &corrupt;
        // Every frame must carry a blacklisted source for the corruption
        // to bite quickly.
        spec.attack_fraction = 1.0;
    }

    // Captured post-mutation frames become the replayable failure unit.
    auto captured = std::make_shared<std::vector<std::vector<uint8_t>>>();
    auto mut_rng = std::make_shared<sim::Rng>(c.seed ^ 0x6d75746174ULL);
    double prob = c.mutate_prob;
    Pipeline pipeline = c.pipeline;
    spec.mutate_frame = [captured, mut_rng, prob, pipeline](net::Packet& pkt) {
        if (mut_rng->chance(prob)) mutate_one(pkt, pipeline, *mut_rng);
        captured->push_back(pkt.data);
    };

    PktVerdict v = verdict_from(oracle::run_differential(spec));
    v.frames = std::move(*captured);
    return v;
}

PktVerdict
replay_packet_case(const PktCase& c, const PktOptions& opts,
                   const std::vector<std::vector<uint8_t>>& frames) {
    oracle::RunSpec spec = base_spec(c, opts);

    net::Blacklist corrupt;
    if (opts.inject_oracle_bug) {
        corrupt = corrupted_blacklist(spec);
        spec.oracle_blacklist = &corrupt;
    }

    spec.replay_frames = frames;
    spec.max_packets = frames.size();
    PktVerdict v = verdict_from(oracle::run_differential(spec));
    v.frames = frames;
    return v;
}

std::vector<std::vector<uint8_t>>
minimize_packets(const PktCase& c, const PktOptions& opts,
                 const std::vector<std::vector<uint8_t>>& frames) {
    auto diverges = [&](const std::vector<std::vector<uint8_t>>& fs) {
        return !fs.empty() && !replay_packet_case(c, opts, fs).ok();
    };
    if (!diverges(frames)) return frames;

    // ddmin over the frame sequence: drop chunks while the replay still
    // diverges.
    std::vector<std::vector<uint8_t>> best = frames;
    size_t chunks = 2;
    while (best.size() > 1) {
        bool removed = false;
        size_t per = (best.size() + chunks - 1) / chunks;
        for (size_t i = 0; i * per < best.size(); ++i) {
            std::vector<std::vector<uint8_t>> trial;
            trial.reserve(best.size());
            for (size_t j = 0; j < best.size(); ++j) {
                if (j < i * per || j >= std::min((i + 1) * per, best.size())) {
                    trial.push_back(best[j]);
                }
            }
            if (!diverges(trial)) continue;
            best = std::move(trial);
            removed = true;
            break;
        }
        if (!removed) {
            if (chunks >= best.size()) break;
            chunks = std::min(chunks * 2, best.size());
        }
    }
    return best;
}

}  // namespace rosebud::fuzz
