/// \file
/// Firmware conformance fuzzer: random-but-verifier-admissible RV32IM
/// programs run in lockstep against the golden reference executor.
///
/// The generator composes programs from *verified basic-block templates*
/// (the admissibility grammar):
///
///   * a prologue that initializes every general register (so the static
///     verifier's uninit pass holds) and pins x5/x6 to the legal DMEM and
///     MMIO windows;
///   * ALU/shift chains over the scratch-register pool;
///   * M-extension chains, with the spec's edge operands (0, INT_MIN, -1)
///     seeded deliberately;
///   * load/store bursts of every width into the DMEM window, naturally
///     aligned;
///   * bounded counted loops (trip counts 2..9, counter untouched by the
///     body) and forward conditional branches;
///   * MMIO send/receive blocks against the interconnect's debug/recv
///     registers (word-sized, per the map in rpu/descriptor.h);
///   * trap-CSR read/modify/write blocks (mstatus/mtvec/mepc/mcause);
///   * an ebreak epilogue.
///
/// Every generated image must pass verify::verify_image — the same gate
/// the host applies to real firmware — so the fuzzer tortures exactly the
/// programs the system promises to run. The lockstep runner executes the
/// image on rv::Core (timed, predecoded) and on fuzz::RefModel (untimed,
/// spec-transcribed) against two *independent* instances of the same
/// deterministic memory/device model, comparing pc and all 32 registers
/// after every retired instruction and RAM + MMIO digests at the end.

#ifndef ROSEBUD_FUZZ_FW_FUZZ_H
#define ROSEBUD_FUZZ_FW_FUZZ_H

#include <cstdint>
#include <string>
#include <vector>

namespace rosebud::fuzz {

/// One generated firmware case (entry pc is always 0).
struct FwCase {
    uint64_t seed = 0;
    std::vector<uint32_t> image;
};

struct FwOptions {
    uint32_t blocks = 12;        ///< template blocks per program
    uint64_t max_steps = 50000;  ///< lockstep instruction bound
    /// Synthetic ref-model bug (div-by-zero result corrupted) used to
    /// demonstrate the failure path and the minimizer; the generator also
    /// guarantees one div-by-zero block so the bug always fires.
    bool inject_div_bug = false;
};

/// What a lockstep run concluded.
enum class FwKind : uint8_t {
    kPass,          ///< ran to ebreak (or a matching trap) with no mismatch
    kDiverge,       ///< core and reference disagreed
    kTimeout,       ///< max_steps exceeded (generator bug: unbounded loop)
    kInadmissible,  ///< the static verifier rejected the generated image
    kWcetExceeded,  ///< retired more instructions than the certified WCET
                    ///< bound (the certifier is unsound for this image)
};

const char* fw_kind_name(FwKind k);

struct FwVerdict {
    FwKind kind = FwKind::kPass;
    uint64_t steps = 0;   ///< instructions compared
    std::string detail;   ///< divergence/rejection description ("" if pass)

    bool ok() const { return kind == FwKind::kPass; }
};

/// Generate one admissible program from `seed` (deterministic).
FwCase generate_firmware(uint64_t seed, const FwOptions& opts = {});

/// Run one case in lockstep. Checks admissibility first.
FwVerdict run_firmware_lockstep(const FwCase& c, const FwOptions& opts = {});

/// Delta-debugging minimizer: nop out instructions while the verdict kind
/// is preserved (layout — and therefore branch targets — is kept intact).
/// Returns the minimized case; `live_insns` (if non-null) receives the
/// number of non-nop instructions left, the ebreak epilogue excluded.
FwCase minimize_firmware(const FwCase& failing, const FwOptions& opts = {},
                         uint32_t* live_insns = nullptr);

}  // namespace rosebud::fuzz

#endif  // ROSEBUD_FUZZ_FW_FUZZ_H
