/// \file
/// Replayable failure corpus (tests/corpus/*.case).
///
/// Every failure the campaign driver minimizes is serialized as one small
/// line-oriented text file, checked into tests/corpus/ once the underlying
/// bug is fixed. The regression suite replays every file and asserts
/// green, so a fixed bug stays fixed. The format is deliberately dumb —
/// `key value` lines, hex payloads — so a failing case can be read, edited
/// and bisected by hand:
///
///   rosebud-fuzz-case v1
///   kind fw|pkt|cfg
///   seed <decimal>
///   note <free text>            (optional)
///   word <8-hex>                (fw: one instruction per line)
///   pipeline/policy/... <val>   (pkt: case parameters)
///   frame <hex bytes>           (pkt: one offered frame per line)
///   delta <field> <decimal>     (cfg: one override per line)

#ifndef ROSEBUD_FUZZ_CORPUS_H
#define ROSEBUD_FUZZ_CORPUS_H

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/cfg_fuzz.h"
#include "fuzz/fw_fuzz.h"
#include "fuzz/pkt_fuzz.h"

namespace rosebud::fuzz {

struct CorpusCase {
    enum class Kind : uint8_t { kFirmware, kPacket, kConfig };

    Kind kind = Kind::kFirmware;
    uint64_t seed = 0;
    std::string note;

    std::vector<uint32_t> image;              ///< fw: the program
    PktCase pkt;                              ///< pkt: case parameters
    std::vector<std::vector<uint8_t>> frames; ///< pkt: offered frames
    std::vector<CfgDelta> deltas;             ///< cfg: config overrides
};

const char* corpus_kind_name(CorpusCase::Kind k);

std::string corpus_to_text(const CorpusCase& c);

/// Parse; fatals (sim::FatalError) on malformed input.
CorpusCase corpus_from_text(const std::string& text);

CorpusCase corpus_load(const std::string& path);
void corpus_save(const CorpusCase& c, const std::string& path);

/// All *.case files under `dir`, sorted by name ([] if no such directory).
std::vector<std::string> corpus_list(const std::string& dir);

/// Replay one case through the matching fuzzer. Green means the recorded
/// failure no longer reproduces: a fw case runs lockstep-clean, a pkt case
/// replays with zero divergences, a cfg case classifies into an ok bucket.
/// `detail` (optional) receives the verdict description.
bool corpus_replay(const CorpusCase& c, std::string* detail = nullptr);

}  // namespace rosebud::fuzz

#endif  // ROSEBUD_FUZZ_CORPUS_H
