#include "fuzz/fw_fuzz.h"

#include <algorithm>
#include <cstdio>

#include "fuzz/ref_model.h"
#include "rpu/descriptor.h"
#include "rv/core.h"
#include "rv/isa.h"
#include "sim/random.h"
#include "verify/verifier.h"

namespace rosebud::fuzz {

namespace {

using rv::Reg;

constexpr uint32_t kNop = 0x00000013;     // addi x0, x0, 0
constexpr uint32_t kEbreak = 0x00100073;

/// Register roles. x5/x6 are pinned window bases so every generated
/// load/store has a verifier-provable constant base; x7 is the loop
/// counter, which no template body may write.
constexpr Reg kDmemReg = rv::x5;
constexpr Reg kIoReg = rv::x6;
constexpr Reg kLoopReg = rv::x7;

Reg
pool_reg(sim::Rng& rng) {
    // Everything except x0 and the three pinned roles.
    static constexpr Reg kPool[] = {
        rv::x1,  rv::x2,  rv::x3,  rv::x4,  rv::x8,  rv::x9,  rv::x10, rv::x11,
        rv::x12, rv::x13, rv::x14, rv::x15, rv::x16, rv::x17, rv::x18, rv::x19,
        rv::x20, rv::x21, rv::x22, rv::x23, rv::x24, rv::x25, rv::x26, rv::x27,
        rv::x28, rv::x29, rv::x30, rv::x31,
    };
    return kPool[rng.below(sizeof(kPool) / sizeof(kPool[0]))];
}

// --- shared deterministic memory/device model ------------------------------
//
// Two independent instances (one per lockstep side) of the same model: a
// DMEM RAM window, the firmware image as IMEM, and a tiny interconnect
// device whose receive registers pop values from a seeded LCG and whose
// send/debug registers fold every write into a digest. Identical programs
// issue identical access sequences, so the device state of the two sides
// must match — the ISA implementations are the only differential variable.
class FuzzMem final : public RefMem {
 public:
    FuzzMem(const std::vector<uint32_t>& image, uint64_t device_seed)
        : image_(image), dmem_(rpu::kDmemSize, 0), lcg_(device_seed | 1) {}

    Access load(uint32_t addr, uint32_t size) override {
        Access acc;
        if (size != 1 && size != 2 && size != 4) {
            acc.fault = true;
            return acc;
        }
        if (addr % size) {  // natural alignment, like the RPU buses
            acc.fault = true;
            return acc;
        }
        if (addr >= rpu::kDmemBase && addr + size <= rpu::kDmemBase + rpu::kDmemSize) {
            uint32_t off = addr - rpu::kDmemBase;
            for (uint32_t i = 0; i < size; ++i)
                acc.value |= uint32_t(dmem_[off + i]) << (8 * i);
            return acc;
        }
        if (addr >= rpu::kIoBase && addr < rpu::kIoBase + rpu::kIoSize) {
            if (size != 4) {
                acc.fault = true;
                return acc;
            }
            switch (addr - rpu::kIoBase) {
            case rpu::kRegRecvLow:
            case rpu::kRegRecvHigh: acc.value = lcg_next(); break;
            case rpu::kRegRxReady: acc.value = 1; break;
            case rpu::kRegDebugLow: acc.value = debug_lo_; break;
            case rpu::kRegDebugHigh: acc.value = debug_hi_; break;
            default: acc.fault = true; break;
            }
            return acc;
        }
        acc.fault = true;
        return acc;
    }

    Access store(uint32_t addr, uint32_t size, uint32_t value) override {
        Access acc;
        if (size != 1 && size != 2 && size != 4) {
            acc.fault = true;
            return acc;
        }
        if (addr % size) {
            acc.fault = true;
            return acc;
        }
        if (size < 4) value &= (1u << (8 * size)) - 1;
        if (addr >= rpu::kDmemBase && addr + size <= rpu::kDmemBase + rpu::kDmemSize) {
            uint32_t off = addr - rpu::kDmemBase;
            for (uint32_t i = 0; i < size; ++i)
                dmem_[off + i] = uint8_t(value >> (8 * i));
            return acc;
        }
        if (addr >= rpu::kIoBase && addr < rpu::kIoBase + rpu::kIoSize) {
            if (size != 4) {
                acc.fault = true;
                return acc;
            }
            switch (addr - rpu::kIoBase) {
            case rpu::kRegDebugLow: debug_lo_ = value; break;
            case rpu::kRegDebugHigh: debug_hi_ = value; break;
            case rpu::kRegSendLow:
            case rpu::kRegSendHigh:
            case rpu::kRegRecvRelease: break;  // digest-only sinks
            default: acc.fault = true; return acc;
            }
            digest_ = (digest_ ^ (uint64_t(addr) << 32 | value)) * 0x100000001b3ULL;
            return acc;
        }
        acc.fault = true;
        return acc;
    }

    uint32_t fetch(uint32_t addr) override {
        uint32_t idx = addr >> 2;
        return idx < image_.size() ? image_[idx] : kEbreak;
    }

    uint64_t device_digest() const { return digest_; }
    const std::vector<uint8_t>& dmem() const { return dmem_; }

 private:
    uint32_t lcg_next() {
        lcg_ = lcg_ * 6364136223846793005ULL + 1442695040888963407ULL;
        return uint32_t(lcg_ >> 32);
    }

    const std::vector<uint32_t>& image_;
    std::vector<uint8_t> dmem_;
    uint64_t lcg_;
    uint64_t digest_ = 0;
    uint32_t debug_lo_ = 0;
    uint32_t debug_hi_ = 0;
};

/// rv::Bus adapter over FuzzMem (flat 1-cycle timing, no retries — the
/// lockstep compares architecture, not time).
class CoreBus final : public rv::Bus {
 public:
    explicit CoreBus(FuzzMem& m) : m_(m) {}

    rv::Bus::Access load(uint32_t addr, uint32_t size) override {
        auto a = m_.load(addr, size);
        return {a.value, 1, false, a.fault};
    }
    rv::Bus::Access store(uint32_t addr, uint32_t size, uint32_t value) override {
        auto a = m_.store(addr, size, value);
        return {a.value, 1, false, a.fault};
    }
    uint32_t fetch(uint32_t addr) override { return m_.fetch(addr); }

 private:
    FuzzMem& m_;
};

// --- admissible program generator ------------------------------------------

void
emit_reg_init(std::vector<uint32_t>& code, sim::Rng& rng, Reg r) {
    using namespace rv;
    switch (rng.below(5)) {
    case 0:  // INT_MIN — the div/rem edge operand
        code.push_back(encode_u(0x80000, r, kOpLui));
        break;
    case 1:  // -1 — the other div/rem edge operand
        code.push_back(encode_i(-1, zero, 0, r, kOpImm));
        break;
    case 2:  // INT_MAX
        code.push_back(encode_u(0x80000, r, kOpLui));
        code.push_back(encode_i(-1, r, 0, r, kOpImm));
        break;
    default:  // a small signed constant (0 is reachable)
        code.push_back(encode_i(int32_t(rng.range(0, 4095)) - 2048, zero, 0, r, kOpImm));
        break;
    }
}

void
emit_alu(std::vector<uint32_t>& code, sim::Rng& rng) {
    using namespace rv;
    Reg rd = pool_reg(rng), rs1 = pool_reg(rng), rs2 = pool_reg(rng);
    if (rng.chance(0.5)) {  // OP-IMM
        uint32_t f3 = uint32_t(rng.below(8));
        int32_t imm = int32_t(rng.range(0, 4095)) - 2048;
        if (f3 == 1) imm = int32_t(rng.below(32));                  // slli
        if (f3 == 5) imm = int32_t(rng.below(32)) | (rng.chance(0.5) ? 0x400 : 0);
        code.push_back(encode_i(imm, rs1, f3, rd, kOpImm));
    } else {  // OP
        uint32_t f3 = uint32_t(rng.below(8));
        uint32_t f7 = (f3 == 0 || f3 == 5) && rng.chance(0.5) ? 0x20 : 0;  // sub/sra
        code.push_back(encode_r(f7, rs2, rs1, f3, rd, kOpReg));
    }
}

void
emit_muldiv(std::vector<uint32_t>& code, sim::Rng& rng) {
    using namespace rv;
    Reg rd = pool_reg(rng), rs1 = pool_reg(rng), rs2 = pool_reg(rng);
    // Half the time, pin an operand at a spec edge case first.
    if (rng.chance(0.5)) {
        Reg pin = rng.chance(0.5) ? rs1 : rs2;
        switch (rng.below(3)) {
        case 0: code.push_back(encode_i(0, zero, 0, pin, kOpImm)); break;   // 0
        case 1: code.push_back(encode_i(-1, zero, 0, pin, kOpImm)); break;  // -1
        case 2: code.push_back(encode_u(0x80000, pin, kOpLui)); break;      // INT_MIN
        }
    }
    code.push_back(encode_r(1, rs2, rs1, uint32_t(rng.below(8)), rd, kOpReg));
}

void
emit_mem(std::vector<uint32_t>& code, sim::Rng& rng) {
    using namespace rv;
    for (uint32_t n = uint32_t(rng.range(2, 4)); n--;) {
        uint32_t f3 = uint32_t(rng.below(3));  // byte / half / word
        uint32_t size = 1u << f3;
        int32_t off = int32_t(rng.below(2040 / size)) * int32_t(size);
        if (rng.chance(0.5)) {
            code.push_back(encode_s(off, pool_reg(rng), kDmemReg, f3));
        } else {
            uint32_t lf3 = f3 < 2 && rng.chance(0.5) ? f3 + 4 : f3;  // lbu/lhu
            code.push_back(encode_i(off, kDmemReg, lf3, pool_reg(rng), kOpLoad));
        }
    }
}

void
emit_mmio(std::vector<uint32_t>& code, sim::Rng& rng) {
    using namespace rv;
    for (uint32_t n = uint32_t(rng.range(1, 3)); n--;) {
        switch (rng.below(8)) {
        case 0:
            code.push_back(encode_i(rpu::kRegRecvLow, kIoReg, 2, pool_reg(rng), kOpLoad));
            break;
        case 1:
            code.push_back(encode_i(rpu::kRegRecvHigh, kIoReg, 2, pool_reg(rng), kOpLoad));
            break;
        case 2:
            code.push_back(encode_i(rpu::kRegRxReady, kIoReg, 2, pool_reg(rng), kOpLoad));
            break;
        case 3:
            code.push_back(encode_i(rpu::kRegDebugLow, kIoReg, 2, pool_reg(rng), kOpLoad));
            break;
        case 4:
            code.push_back(encode_s(rpu::kRegDebugLow, pool_reg(rng), kIoReg, 2));
            break;
        case 5:
            code.push_back(encode_s(rpu::kRegDebugHigh, pool_reg(rng), kIoReg, 2));
            break;
        case 6:
            code.push_back(encode_s(rpu::kRegSendLow, pool_reg(rng), kIoReg, 2));
            code.push_back(encode_s(rpu::kRegSendHigh, pool_reg(rng), kIoReg, 2));
            break;
        default:
            code.push_back(encode_s(rpu::kRegRecvRelease, pool_reg(rng), kIoReg, 2));
            break;
        }
    }
}

void
emit_branch(std::vector<uint32_t>& code, sim::Rng& rng) {
    using namespace rv;
    static constexpr uint32_t kCond[] = {0, 1, 4, 5, 6, 7};  // beq..bgeu
    uint32_t k = uint32_t(rng.range(1, 4));  // instructions under the branch
    code.push_back(encode_b(int32_t(4 * (k + 1)), pool_reg(rng), pool_reg(rng),
                            kCond[rng.below(6)]));
    // The guarded run stays reachable via fall-through, so the verifier's
    // unreachable-code pass holds on both branch outcomes.
    while (k--) emit_alu(code, rng);
}

void
emit_loop(std::vector<uint32_t>& code, sim::Rng& rng) {
    using namespace rv;
    code.push_back(encode_i(int32_t(rng.range(2, 9)), zero, 0, kLoopReg, kOpImm));
    size_t top = code.size();
    for (uint32_t n = uint32_t(rng.range(1, 3)); n--;) emit_alu(code, rng);
    code.push_back(encode_i(-1, kLoopReg, 0, kLoopReg, kOpImm));
    int32_t back = -4 * int32_t(code.size() - top);
    code.push_back(encode_b(back, zero, kLoopReg, 1));  // bne x7, x0, top
}

void
emit_csr(std::vector<uint32_t>& code, sim::Rng& rng) {
    using namespace rv;
    if (rng.chance(0.5)) {
        // Read-only: csrrs rd, csr, x0 on any implemented trap CSR.
        static constexpr uint32_t kReadable[] = {kCsrMstatus, kCsrMtvec, kCsrMepc,
                                                 kCsrMcause};
        code.push_back(encode_i(int32_t(kReadable[rng.below(4)]), zero, 2,
                                pool_reg(rng), kOpSystem));
    } else {
        // Read/modify/write on mepc/mcause (arbitrary values there are
        // inert while nothing traps; mtvec/mstatus writes would arm the
        // interrupt machinery the lockstep deliberately leaves cold).
        uint32_t csr = rng.chance(0.5) ? kCsrMepc : kCsrMcause;
        code.push_back(encode_i(int32_t(csr), pool_reg(rng),
                                uint32_t(rng.range(1, 3)), pool_reg(rng), kOpSystem));
    }
}

std::vector<uint32_t>
generate_image(sim::Rng& rng, const FwOptions& opts) {
    using namespace rv;
    std::vector<uint32_t> code;

    // Prologue: pin the window bases, then initialize every other register
    // (the verifier's uninit pass requires it; the edge constants seed the
    // M-extension corner cases).
    code.push_back(encode_u(int32_t(rpu::kDmemBase >> 12), kDmemReg, kOpLui));
    code.push_back(encode_u(int32_t(rpu::kIoBase >> 12), kIoReg, kOpLui));
    code.push_back(encode_i(0, zero, 0, kLoopReg, kOpImm));
    for (uint32_t r = 1; r < 32; ++r) {
        if (r == kDmemReg || r == kIoReg || r == kLoopReg) continue;
        emit_reg_init(code, rng, Reg(r));
    }

    if (opts.inject_div_bug) {
        // Guarantee one div-by-zero so the synthetic ref-model bug fires.
        code.push_back(encode_i(37, zero, 0, x8, kOpImm));
        code.push_back(encode_i(0, zero, 0, x9, kOpImm));
        code.push_back(encode_r(1, x9, x8, 4, x10, kOpReg));  // div x10, x8, x9
    }

    for (uint32_t b = 0; b < opts.blocks; ++b) {
        switch (rng.below(7)) {
        case 0: emit_alu(code, rng); emit_alu(code, rng); emit_alu(code, rng); break;
        case 1: emit_muldiv(code, rng); break;
        case 2: emit_mem(code, rng); break;
        case 3: emit_mmio(code, rng); break;
        case 4: emit_branch(code, rng); break;
        case 5: emit_loop(code, rng); break;
        default: emit_csr(code, rng); break;
        }
    }

    code.push_back(kEbreak);
    return code;
}

std::string
hex32(uint32_t v) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "0x%08x", v);
    return buf;
}

}  // namespace

const char*
fw_kind_name(FwKind k) {
    switch (k) {
    case FwKind::kPass: return "pass";
    case FwKind::kDiverge: return "diverge";
    case FwKind::kTimeout: return "timeout";
    case FwKind::kInadmissible: return "inadmissible";
    case FwKind::kWcetExceeded: return "wcet-exceeded";
    }
    return "?";
}

FwCase
generate_firmware(uint64_t seed, const FwOptions& opts) {
    // The templates are admissible by construction; the retry loop is a
    // belt-and-braces guard so a generator regression degrades to skipped
    // seeds instead of a wall of kInadmissible verdicts.
    for (uint64_t attempt = 0;; ++attempt) {
        sim::Rng rng(seed ^ (attempt * 0x9e3779b97f4a7c15ULL));
        FwCase c;
        c.seed = seed;
        c.image = generate_image(rng, opts);
        if (attempt >= 8 || verify::verify_image(c.image, {}).ok()) return c;
    }
}

FwVerdict
run_firmware_lockstep(const FwCase& c, const FwOptions& opts) {
    FwVerdict v;

    auto report = verify::verify_image(c.image, {});
    if (!report.ok()) {
        v.kind = FwKind::kInadmissible;
        v.detail = report.summary();
        return v;
    }

    FuzzMem dut_mem(c.image, c.seed);
    FuzzMem ref_mem(c.image, c.seed);
    CoreBus bus(dut_mem);
    rv::Core core("fuzz-dut", bus);
    core.reset(0);
    RefModel ref(ref_mem);
    ref.reset(0);

    auto diverge = [&](const std::string& what) {
        v.kind = FwKind::kDiverge;
        v.detail = what;
        return v;
    };

    while (v.steps < opts.max_steps) {
        if (core.halted() && ref.halted()) break;

        // Advance the core by exactly one retired instruction (or to a
        // halt); the flat 1-cycle bus means a handful of ticks at most.
        uint64_t retired = core.instret();
        uint64_t guard = 0;
        while (!core.halted() && core.instret() == retired) {
            core.tick();
            if (++guard > 1000) {
                v.kind = FwKind::kTimeout;
                v.detail = "core made no progress at pc " + hex32(core.pc());
                return v;
            }
        }

        // Mirror one reference step. The injected synthetic bug corrupts
        // the reference's div-by-zero result (spec: -1) to exercise the
        // divergence path and the minimizer on demand.
        uint32_t ref_pc = ref.pc();
        uint32_t insn = (ref_pc & 3) ? 0 : ref_mem.fetch(ref_pc);
        bool tamper = opts.inject_div_bug && (insn & 0x7f) == 0x33 &&
                      (insn >> 25) == 1 && ((insn >> 12) & 7) == 4 &&
                      ref.reg((insn >> 20) & 31) == 0;
        RefModel::Step rs = ref.step();
        if (tamper && rs == RefModel::Step::kOk) ref.set_reg((insn >> 7) & 31, 0);
        ++v.steps;

        if (core.halted() && core.instret() == retired) {
            // The core stopped without retiring: ebreak/ecall or a trap.
            if (rs == RefModel::Step::kOk)
                return diverge("core stopped at pc " + hex32(core.pc()) +
                               " but reference retired " + hex32(insn));
            bool ref_trap = rs == RefModel::Step::kTrap;
            if (core.faulted() != ref_trap)
                return diverge(std::string("halt-kind mismatch at pc ") +
                               hex32(ref_pc) + ": core " +
                               (core.faulted() ? "trap" : "ebreak") + ", reference " +
                               (ref_trap ? "trap" : "ebreak"));
            break;
        }

        // The core retired one instruction; so must the reference.
        if (rs != RefModel::Step::kOk)
            return diverge("reference stopped at pc " + hex32(ref_pc) +
                           " but core retired and sits at pc " + hex32(core.pc()));
        if (core.pc() != ref.pc())
            return diverge("pc mismatch after " + hex32(insn) + " at " + hex32(ref_pc) +
                           ": core " + hex32(core.pc()) + ", reference " +
                           hex32(ref.pc()));
        for (unsigned r = 0; r < 32; ++r) {
            if (core.reg(Reg(r)) == ref.reg(r)) continue;
            return diverge("x" + std::to_string(r) + " mismatch after " + hex32(insn) +
                           " at " + hex32(ref_pc) + ": core " +
                           hex32(core.reg(Reg(r))) + ", reference " + hex32(ref.reg(r)));
        }
    }

    if (!(core.halted() && ref.halted())) {
        v.kind = FwKind::kTimeout;
        v.detail = "still running after " + std::to_string(v.steps) + " steps";
        return v;
    }

    // Terminal-state audit. Skipped after a matching trap: the core's
    // bad-funct3 load path issues its bus access before trapping, so device
    // state may legitimately differ by one popped value there.
    if (!core.faulted()) {
        if (dut_mem.dmem() != ref_mem.dmem())
            return diverge("DMEM contents differ at halt");
        if (dut_mem.device_digest() != ref_mem.device_digest())
            return diverge("MMIO device digests differ at halt");
        const auto& cc = core.csrs();
        const auto& rc = ref.csrs();
        if (cc.mstatus != rc.mstatus || cc.mtvec != rc.mtvec || cc.mepc != rc.mepc ||
            cc.mcause != rc.mcause)
            return diverge("trap CSRs differ at halt");
    }

    // WCET soundness oracle: a single-root program that ran to completion
    // must retire no more instructions than its certified static bound.
    // Multi-root images are excluded — handler roots make the per-root
    // bounds non-composable into a whole-run bound.
    const verify::Certificate& cert = report.cert;
    if (report.roots.size() == 1 && cert.wcet_bounded &&
        v.steps > cert.wcet_instructions) {
        v.kind = FwKind::kWcetExceeded;
        v.detail = "retired " + std::to_string(v.steps) +
                   " instructions, certified WCET bound is " +
                   std::to_string(cert.wcet_instructions);
        return v;
    }
    return v;
}

FwCase
minimize_firmware(const FwCase& failing, const FwOptions& opts, uint32_t* live_insns) {
    FwCase best = failing;
    const FwKind want = run_firmware_lockstep(best, opts).kind;

    auto live_count = [](const FwCase& c) {
        uint32_t n = 0;
        for (uint32_t w : c.image)
            if (w != kNop && w != kEbreak) ++n;
        return n;
    };

    if (want != FwKind::kPass) {
        // ddmin by nop substitution: layout (and so every branch target)
        // is preserved; a chunk stays nop'd only if the verdict *kind*
        // survives, so minimization cannot drift a divergence into a
        // timeout or an inadmissible image.
        std::vector<size_t> candidates;
        for (size_t i = 0; i < best.image.size(); ++i)
            if (best.image[i] != kNop && best.image[i] != kEbreak)
                candidates.push_back(i);

        size_t chunks = 2;
        while (!candidates.empty()) {
            bool removed_any = false;
            size_t per = (candidates.size() + chunks - 1) / chunks;
            for (size_t c = 0; c * per < candidates.size(); ++c) {
                size_t lo = c * per;
                size_t hi = std::min(lo + per, candidates.size());
                FwCase trial = best;
                for (size_t i = lo; i < hi; ++i) trial.image[candidates[i]] = kNop;
                if (run_firmware_lockstep(trial, opts).kind != want) continue;
                best = trial;
                candidates.erase(candidates.begin() + long(lo),
                                 candidates.begin() + long(hi));
                removed_any = true;
                break;  // chunk boundaries moved; rescan at this granularity
            }
            if (!removed_any) {
                if (chunks >= candidates.size()) break;
                chunks = std::min(chunks * 2, candidates.size());
            }
        }
    }

    if (live_insns) *live_insns = live_count(best);
    return best;
}

}  // namespace rosebud::fuzz
