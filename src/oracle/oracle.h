/// \file
/// Golden dataplane oracle: an untimed, purely functional reference model
/// of the end-to-end Rosebud pipeline. Given an input frame and the
/// middlebox configuration, it predicts the packet's disposition —
/// forwarded out the other port, delivered to the host, or dropped (and
/// why) — plus the exact (or structurally constrained) output bytes.
///
/// The oracle deliberately re-implements every stage from the packet
/// bytes up: prefix matching for the firewall, brute-force content
/// scanning for the Pigasus ruleset, a bit-serial CRC32C for the flow
/// hash, RFC 1624 checksum arithmetic for NAT. None of it shares code
/// with the timed model, so a bug in an accelerator or in firmware shows
/// up as a divergence instead of being faithfully mirrored. The
/// scoreboard (oracle/scoreboard.h) diffs these predictions against the
/// simulated system online.

#ifndef ROSEBUD_ORACLE_ORACLE_H
#define ROSEBUD_ORACLE_ORACLE_H

#include <cstdint>
#include <string>
#include <vector>

#include "accel/nat.h"
#include "lb/load_balancer.h"
#include "net/packet.h"
#include "net/rules.h"

namespace rosebud::oracle {

/// The end-to-end dataplane being modeled: LB policy + firmware +
/// accelerator as wired by the standard examples/benchmarks.
enum class Pipeline {
    kForwarder,         ///< fwlib::forwarder, no accelerator
    kFirewall,          ///< fwlib::firewall + accel::FirewallMatcher
    kPigasusHwReorder,  ///< fwlib::pigasus_hw_reorder + accel::PigasusMatcher
    kPigasusSwReorder,  ///< fwlib::pigasus_sw_reorder + matcher, hash LB
    kNat,               ///< fwlib::nat + accel::NatEngine
};

const char* pipeline_name(Pipeline p);

/// Everything the oracle needs to know about the device under test.
/// Pointers are borrowed and must outlive the oracle.
struct OracleConfig {
    Pipeline pipeline = Pipeline::kForwarder;
    lb::Policy lb_policy = lb::Policy::kRoundRobin;
    unsigned rpu_count = 8;
    const net::Blacklist* blacklist = nullptr;  ///< kFirewall
    const net::IdsRuleSet* rules = nullptr;     ///< kPigasus*
    accel::NatEngine::Params nat{};             ///< kNat
};

/// The oracle's verdict for one input frame.
struct Prediction {
    enum class Outcome : uint8_t {
        kForwardWire,  ///< out the other physical port
        kDeliverHost,  ///< up the virtual Ethernet interface
        kDrop,         ///< firmware drop (slot freed, nothing emitted)
    };
    enum class DropReason : uint8_t {
        kNone,
        kNonIp,          ///< firewall/IDS firmware drops non-IPv4/-TCP/UDP
        kBlacklistedSrc, ///< firewall blacklist hit
        kNatUnmappable,  ///< NAT table full / inbound with no mapping
    };

    Outcome outcome = Outcome::kForwardWire;
    DropReason drop_reason = DropReason::kNone;
    net::Iface out_iface = net::Iface::kPort0;  ///< valid for kForwardWire

    /// Exact expected output bytes when `exact_bytes`; otherwise the
    /// output is validated structurally by DataplaneOracle::check_output
    /// (Pigasus host records carry alignment padding of unspecified
    /// bytes; NAT allocates ports dynamically).
    std::vector<uint8_t> out_bytes;
    bool exact_bytes = true;

    /// Half-open [offset, offset+len) byte ranges of out_bytes exempt
    /// from exact comparison (e.g. the NAT-allocated source port).
    struct Wildcard {
        uint32_t offset = 0;
        uint32_t len = 0;
    };
    std::vector<Wildcard> wildcards;

    /// Rule sids the IDS must report, ascending (kDeliverHost only).
    std::vector<uint32_t> matched_sids;

    /// Software-reorder TCP packets may legitimately be punted to the
    /// host unscanned (flow-table collision / resync / overflow); a host
    /// delivery in hash+frame punt format is then acceptable even when
    /// the primary prediction is kForwardWire.
    bool may_punt_to_host = false;

    uint32_t lb_hash = 0;         ///< expected Packet::lb_hash (hash LB)
    bool hash_prepended = false;  ///< expected Packet::hash_prepended

    bool nat_outbound = false;  ///< output checked with port wildcard + map rules
    bool nat_inbound = false;   ///< drop OR structurally-valid reverse rewrite
};

/// The untimed reference model. Construction validates that the
/// (pipeline, lb_policy) combination is one the firmware actually
/// supports — e.g. the firewall firmware parses at fixed offsets and is
/// incompatible with the hash LB's prepended word — and fatals otherwise.
class DataplaneOracle {
 public:
    explicit DataplaneOracle(const OracleConfig& cfg);

    /// Predict the disposition of one frame arriving on `in_iface`.
    Prediction predict(const std::vector<uint8_t>& frame, net::Iface in_iface) const;

    /// Validate actual output bytes against a prediction. `in_frame` is
    /// the original input frame (needed for structural checks), `to_host`
    /// selects wire vs host framing rules. On mismatch returns false and
    /// explains in `why`.
    bool check_output(const Prediction& pred, const std::vector<uint8_t>& in_frame,
                      const std::vector<uint8_t>& out, bool to_host,
                      std::string* why) const;

    const OracleConfig& config() const { return cfg_; }

    // --- reference stages (independent implementations, unit-testable) ------

    /// Linear scan of the blacklist prefixes (vs the device's two-stage
    /// 9+15-bit split).
    static bool ref_prefix_match(const net::Blacklist& bl, uint32_t ip);

    /// Brute-force rule evaluation: proto + dst-port constraints and
    /// every content present (case-folded when nocase), no fast-pattern
    /// pre-filter. Returns matching sids ascending.
    static std::vector<uint32_t> ref_rule_match(const net::IdsRuleSet& rules,
                                                const uint8_t* payload, size_t len,
                                                uint16_t dst_port, bool is_tcp);

    /// Bit-serial CRC32C (vs the device's table-driven implementation).
    static uint32_t ref_crc32c(const uint8_t* data, size_t len);

    /// Symmetric five-tuple flow hash over the canonical 13-byte buffer;
    /// must equal net::packet_flow_hash for any frame.
    static uint32_t ref_flow_hash(const std::vector<uint8_t>& frame);

    /// Hash-policy steering: index hash % popcount(eligible) into the set
    /// bits of `eligible_mask` (recv & enable, restricted to rpu_count).
    /// Returns 0xff when no RPU is eligible.
    static unsigned ref_hash_steer(uint32_t hash, uint32_t eligible_mask,
                                   unsigned rpu_count);

 private:
    Prediction predict_pigasus(const std::vector<uint8_t>& frame,
                               net::Iface other) const;
    Prediction predict_nat(const std::vector<uint8_t>& frame, net::Iface other) const;

    OracleConfig cfg_;
};

}  // namespace rosebud::oracle

#endif  // ROSEBUD_ORACLE_ORACLE_H
