#include "oracle/scoreboard.h"

#include <cstdio>
#include <cstring>

namespace rosebud::oracle {

namespace {

std::string
hex_dump(const std::vector<uint8_t>& d, size_t limit = 96) {
    std::string out;
    char buf[16];
    size_t n = std::min(d.size(), limit);
    for (size_t i = 0; i < n; ++i) {
        if (i % 32 == 0) {
            std::snprintf(buf, sizeof(buf), "\n  %04zx ", i);
            out += buf;
        }
        std::snprintf(buf, sizeof(buf), "%02x", d[i]);
        out += buf;
    }
    if (d.size() > limit) out += " ...(" + std::to_string(d.size()) + " bytes)";
    out += "\n";
    return out;
}

const char*
outcome_name(Prediction::Outcome o) {
    switch (o) {
    case Prediction::Outcome::kForwardWire: return "forward-wire";
    case Prediction::Outcome::kDeliverHost: return "deliver-host";
    case Prediction::Outcome::kDrop: return "drop";
    }
    return "?";
}

const char*
drop_reason_name(Prediction::DropReason r) {
    switch (r) {
    case Prediction::DropReason::kNone: return "none";
    case Prediction::DropReason::kNonIp: return "non-ip";
    case Prediction::DropReason::kBlacklistedSrc: return "blacklisted-src";
    case Prediction::DropReason::kNatUnmappable: return "nat-unmappable";
    }
    return "?";
}

}  // namespace

Scoreboard::Scoreboard(System& sys, const DataplaneOracle& oracle, Options opts)
    : sys_(sys), oracle_(oracle), opts_(opts) {
    observer_handle_ = sys_.add_packet_observer(
        [this](const char* stage, const net::Packet& pkt, sim::Cycle now) {
            on_event(stage, pkt, now);
        });
}

Scoreboard::~Scoreboard() {
    sys_.remove_packet_observer(observer_handle_);
}

void
Scoreboard::fold_output(char kind, uint64_t id, const std::vector<uint8_t>& bytes) {
    // Per-packet FNV-1a digest, XOR-combined so the aggregate is
    // independent of completion order (which varies with drain timing
    // but not with packet content).
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](uint8_t b) {
        h ^= b;
        h *= 1099511628211ull;
    };
    mix(uint8_t(kind));
    for (int i = 0; i < 8; ++i) mix(uint8_t(id >> (8 * i)));
    for (uint8_t b : bytes) mix(b);
    counts_.output_byte_hash ^= h;
}

void
Scoreboard::diverge(const char* kind, uint64_t id, const Entry* e, const char* stage,
                    const net::Packet* actual, sim::Cycle now,
                    const std::string& detail) {
    ++counts_.divergences;
    if (reports_.size() >= opts_.max_reports) return;

    std::string r = "divergence #" + std::to_string(counts_.divergences) + " [" + kind +
                    "] packet " + std::to_string(id) + " at stage " + stage + ", cycle " +
                    std::to_string(now) + "\n";
    if (!detail.empty()) r += "  " + detail + "\n";
    if (e) {
        r += "  predicted: " + std::string(outcome_name(e->pred.outcome));
        if (e->pred.outcome == Prediction::Outcome::kDrop) {
            r += " (" + std::string(drop_reason_name(e->pred.drop_reason)) + ")";
        }
        if (e->pred.outcome == Prediction::Outcome::kForwardWire) {
            r += " via port " + std::to_string(unsigned(e->pred.out_iface));
        }
        if (!e->pred.matched_sids.empty()) {
            r += ", sids {";
            for (size_t i = 0; i < e->pred.matched_sids.size(); ++i) {
                if (i) r += ",";
                r += std::to_string(e->pred.matched_sids[i]);
            }
            r += "}";
        }
        if (e->pred.hash_prepended) {
            r += ", lb_hash 0x";
            char b[16];
            std::snprintf(b, sizeof(b), "%08x", e->pred.lb_hash);
            r += b;
        }
        if (e->pred.may_punt_to_host) r += ", punt-ok";
        r += "\n  input frame (" + std::to_string(e->input.size()) + " B, in port " +
             std::to_string(unsigned(e->in_iface)) + "):" + hex_dump(e->input);
        if (e->pred.exact_bytes) {
            r += "  expected output (" + std::to_string(e->pred.out_bytes.size()) +
                 " B):" + hex_dump(e->pred.out_bytes);
        }
        if (e->assigned_rpu != 0xff && e->assigned_rpu < sys_.rpu_count()) {
            unsigned rpu = e->assigned_rpu;
            r += "  rpu " + std::to_string(rpu) +
                 ": debug=" + std::to_string(sys_.host().debug_low(rpu)) + "/" +
                 std::to_string(sys_.host().debug_high(rpu)) + ", free slots " +
                 std::to_string(sys_.lb().host_read(lb::kLbRegFreeSlotsBase + 4 * rpu)) +
                 ", fw drops " +
                 std::to_string(
                     sys_.stats().get("rpu" + std::to_string(rpu) + ".dropped_packets")) +
                 "\n";
        }
    }
    if (actual) {
        r += "  actual packet (" + std::to_string(actual->data.size()) + " B, out " +
             std::to_string(unsigned(actual->out_iface)) +
             "):" + hex_dump(actual->data);
    }
    reports_.push_back(std::move(r));
}

void
Scoreboard::on_event(const char* stage, const net::Packet& pkt, sim::Cycle now) {
    bool is_mac_rx = std::strcmp(stage, "mac_rx") == 0;
    if (is_mac_rx || std::strcmp(stage, "mac_rx_fifo_drop") == 0) {
        bool dropped = !is_mac_rx;
        auto [it, fresh] = entries_.try_emplace(pkt.id);
        if (!fresh) {
            diverge("duplicate-ingress", pkt.id, &it->second, stage, &pkt, now,
                    "packet id registered at ingress twice");
            return;
        }
        Entry& e = it->second;
        e.input = pkt.data;
        e.in_iface = pkt.in_iface;
        e.pred = oracle_.predict(e.input, e.in_iface);
        ++counts_.offered;
        if (dropped) {
            // Architectural loss at the MAC FIFO: resolved, not a bug.
            e.congestion = true;
            e.terminals = 1;
            ++counts_.congestion_dropped;
        } else {
            ++outstanding_;
        }
        return;
    }

    if (std::strcmp(stage, "lb_assign") == 0) {
        auto it = entries_.find(pkt.id);
        if (it == entries_.end()) return;  // host-injected / loopback traffic
        Entry& e = it->second;
        e.assigned_rpu = pkt.dest_rpu;
        if (pkt.hash_prepended != e.pred.hash_prepended) {
            diverge("hash-prepend-mismatch", pkt.id, &e, stage, &pkt, now,
                    std::string("hash_prepended = ") +
                        (pkt.hash_prepended ? "true" : "false") + ", predicted " +
                        (e.pred.hash_prepended ? "true" : "false"));
        } else if (e.pred.hash_prepended) {
            if (pkt.lb_hash != e.pred.lb_hash) {
                char b[64];
                std::snprintf(b, sizeof(b), "lb_hash 0x%08x, predicted 0x%08x",
                              pkt.lb_hash, e.pred.lb_hash);
                diverge("lb-hash-mismatch", pkt.id, &e, stage, &pkt, now, b);
            } else if (opts_.check_steering) {
                uint32_t eligible = sys_.lb().recv_mask() &
                                    sys_.lb().host_read(lb::kLbRegEnableMask);
                unsigned want = DataplaneOracle::ref_hash_steer(e.pred.lb_hash, eligible,
                                                                sys_.rpu_count());
                if (want != 0xff && pkt.dest_rpu != want) {
                    diverge("steering-mismatch", pkt.id, &e, stage, &pkt, now,
                            "assigned rpu " + std::to_string(pkt.dest_rpu) +
                                ", hash steering predicts rpu " + std::to_string(want));
                }
            }
        }
        return;
    }

    if (std::strcmp(stage, "fw_drop") == 0 || std::strcmp(stage, "mac_tx") == 0 ||
        std::strcmp(stage, "host_deliver") == 0) {
        auto it = entries_.find(pkt.id);
        if (it == entries_.end()) {
            diverge("unknown-packet", pkt.id, nullptr, stage, &pkt, now,
                    "terminal event for a packet never seen at ingress");
            return;
        }
        terminal(pkt.id, it->second, stage, pkt, now);
        return;
    }
    // rpu_link_dispatch, rpu_rx_complete, fw_send, rpu_egress,
    // loopback_reenter: intermediate stages, nothing to check yet.
}

void
Scoreboard::terminal(uint64_t id, Entry& e, const char* stage, const net::Packet& pkt,
                     sim::Cycle now) {
    ++e.terminals;
    if (e.terminals > 1) {
        diverge(e.congestion ? "output-after-congestion-drop" : "duplicate-terminal", id,
                &e, stage, &pkt, now,
                "packet already reached a terminal state " +
                    std::to_string(e.terminals - 1) + " time(s)");
        return;
    }
    if (outstanding_ > 0) --outstanding_;

    using O = Prediction::Outcome;
    if (std::strcmp(stage, "fw_drop") == 0) {
        ++counts_.fw_dropped;
        // NAT inbound legitimately drops when no mapping exists.
        if (e.pred.outcome != O::kDrop && !e.pred.nat_inbound) {
            diverge("unexpected-drop", id, &e, stage, &pkt, now,
                    "firmware dropped a packet the oracle expects to survive");
        }
        return;
    }

    if (std::strcmp(stage, "mac_tx") == 0) {
        ++counts_.forwarded_wire;
        fold_output('t', id, pkt.data);
        if (e.pred.outcome != O::kForwardWire) {
            diverge("unexpected-wire-forward", id, &e, stage, &pkt, now,
                    std::string("oracle predicts ") + outcome_name(e.pred.outcome));
            return;
        }
        if (pkt.out_iface != e.pred.out_iface) {
            diverge("egress-port-mismatch", id, &e, stage, &pkt, now,
                    "egress port " + std::to_string(unsigned(pkt.out_iface)) +
                        ", predicted " + std::to_string(unsigned(e.pred.out_iface)));
            return;
        }
        if (opts_.check_bytes) {
            std::string why;
            if (!oracle_.check_output(e.pred, e.input, pkt.data, false, &why)) {
                diverge("wire-byte-mismatch", id, &e, stage, &pkt, now, why);
                return;
            }
        }
        if (opts_.track_nat_mappings && e.pred.nat_outbound && e.input.size() >= 36 &&
            pkt.data.size() >= 36) {
            uint32_t int_ip = uint32_t(e.input[26]) << 24 | uint32_t(e.input[27]) << 16 |
                              uint32_t(e.input[28]) << 8 | e.input[29];
            uint16_t int_port = uint16_t(e.input[34] << 8 | e.input[35]);
            uint16_t ext_port = uint16_t(pkt.data[34] << 8 | pkt.data[35]);
            auto fwd_key = std::make_tuple(e.assigned_rpu, int_ip, int_port);
            auto [fit, ffresh] = nat_forward_.try_emplace(fwd_key, ext_port);
            if (!ffresh && fit->second != ext_port) {
                diverge("nat-mapping-instability", id, &e, stage, &pkt, now,
                        "flow previously mapped to external port " +
                            std::to_string(fit->second) + ", now " +
                            std::to_string(ext_port));
                return;
            }
            auto rev_key = std::make_pair(e.assigned_rpu, ext_port);
            auto want = std::make_tuple(int_ip, int_port);
            auto [rit, rfresh] = nat_reverse_.try_emplace(rev_key, want);
            if (!rfresh && rit->second != want) {
                diverge("nat-port-collision", id, &e, stage, &pkt, now,
                        "external port " + std::to_string(ext_port) +
                            " already maps to a different internal flow on rpu " +
                            std::to_string(e.assigned_rpu));
            }
        }
        return;
    }

    // host_deliver
    ++counts_.host_delivered;
    fold_output('h', id, pkt.data);
    if (e.pred.outcome != O::kDeliverHost && !e.pred.may_punt_to_host) {
        diverge("unexpected-host-delivery", id, &e, stage, &pkt, now,
                std::string("oracle predicts ") + outcome_name(e.pred.outcome));
        return;
    }
    if (e.pred.outcome != O::kDeliverHost) ++counts_.punted;
    if (opts_.check_bytes) {
        std::string why;
        if (!oracle_.check_output(e.pred, e.input, pkt.data, true, &why)) {
            diverge("host-byte-mismatch", id, &e, stage, &pkt, now, why);
        }
    }
}

Scoreboard::Counts
Scoreboard::finish() {
    if (!finished_) {
        finished_ = true;
        for (auto& [id, e] : entries_) {
            if (e.terminals == 0) {
                diverge("stuck-packet", id, &e, "finish", nullptr,
                        sys_.kernel().now(),
                        "packet never reached a terminal state (assigned rpu " +
                            (e.assigned_rpu == 0xff ? std::string("none")
                                                    : std::to_string(e.assigned_rpu)) +
                            ")");
            }
        }
    }
    return counts_;
}

std::string
Scoreboard::report() const {
    if (counts_.divergences == 0) return "";
    std::string out;
    for (const auto& r : reports_) out += r;
    if (counts_.divergences > reports_.size()) {
        out += "... and " + std::to_string(counts_.divergences - reports_.size()) +
               " more divergence(s)\n";
    }
    return out;
}

}  // namespace rosebud::oracle
