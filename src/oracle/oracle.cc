#include "oracle/oracle.h"

#include <algorithm>

#include "net/headers.h"
#include "sim/log.h"

namespace rosebud::oracle {

namespace {

uint16_t
be16(const std::vector<uint8_t>& d, size_t off) {
    return uint16_t(d[off] << 8 | d[off + 1]);
}

uint32_t
be32(const std::vector<uint8_t>& d, size_t off) {
    return uint32_t(d[off]) << 24 | uint32_t(d[off + 1]) << 16 |
           uint32_t(d[off + 2]) << 8 | uint32_t(d[off + 3]);
}

void
append_hash_le(std::vector<uint8_t>& out, uint32_t hash) {
    size_t off = out.size();
    out.resize(off + 4);
    out[off] = uint8_t(hash);
    out[off + 1] = uint8_t(hash >> 8);
    out[off + 2] = uint8_t(hash >> 16);
    out[off + 3] = uint8_t(hash >> 24);
}

uint8_t
fold_case(uint8_t b) {
    return b >= 'A' && b <= 'Z' ? uint8_t(b + 32) : b;
}

bool
payload_contains(const uint8_t* hay, size_t hay_len, const std::vector<uint8_t>& needle,
                 bool nocase) {
    if (needle.empty()) return true;
    if (needle.size() > hay_len) return false;
    for (size_t i = 0; i + needle.size() <= hay_len; ++i) {
        size_t j = 0;
        while (j < needle.size()) {
            uint8_t h = hay[i + j];
            uint8_t n = needle[j];
            if (nocase ? fold_case(h) != fold_case(n) : h != n) break;
            ++j;
        }
        if (j == needle.size()) return true;
    }
    return false;
}

}  // namespace

const char*
pipeline_name(Pipeline p) {
    switch (p) {
    case Pipeline::kForwarder: return "forwarder";
    case Pipeline::kFirewall: return "firewall";
    case Pipeline::kPigasusHwReorder: return "pigasus_hw_reorder";
    case Pipeline::kPigasusSwReorder: return "pigasus_sw_reorder";
    case Pipeline::kNat: return "nat";
    }
    return "?";
}

DataplaneOracle::DataplaneOracle(const OracleConfig& cfg) : cfg_(cfg) {
    using P = Pipeline;
    using L = lb::Policy;
    bool ok = false;
    switch (cfg_.pipeline) {
    case P::kForwarder:
        // The forwarder echoes whatever the LB stored, so any policy works.
        ok = cfg_.lb_policy == L::kRoundRobin || cfg_.lb_policy == L::kHash ||
             cfg_.lb_policy == L::kLeastLoaded;
        break;
    case P::kFirewall:
        // The firewall firmware parses at fixed frame offsets; the hash
        // policy's prepended word would shift every header field.
        ok = cfg_.lb_policy == L::kRoundRobin || cfg_.lb_policy == L::kLeastLoaded;
        if (!cfg_.blacklist) sim::fatal("oracle: firewall pipeline needs a blacklist");
        break;
    case P::kPigasusHwReorder:
        ok = cfg_.lb_policy == L::kRoundRobin || cfg_.lb_policy == L::kLeastLoaded;
        if (!cfg_.rules) sim::fatal("oracle: pigasus pipeline needs a ruleset");
        break;
    case P::kPigasusSwReorder:
        // Software reordering keys its flow table on the LB-prepended
        // hash; it only functions under the hash policy.
        ok = cfg_.lb_policy == L::kHash;
        if (!cfg_.rules) sim::fatal("oracle: pigasus pipeline needs a ruleset");
        break;
    case P::kNat:
        // The NAT firmware takes hash_prepended as an assembly parameter,
        // so both plain and hash layouts are supported.
        ok = cfg_.lb_policy == L::kRoundRobin || cfg_.lb_policy == L::kHash ||
             cfg_.lb_policy == L::kLeastLoaded;
        break;
    }
    if (!ok) {
        sim::fatal(std::string("oracle: unsupported pipeline/policy combination: ") +
                   pipeline_name(cfg_.pipeline));
    }
}

// --- reference stages -------------------------------------------------------

bool
DataplaneOracle::ref_prefix_match(const net::Blacklist& bl, uint32_t ip) {
    for (const auto& e : bl.entries()) {
        uint32_t mask = e.length == 0 ? 0 : ~uint32_t(0) << (32 - e.length);
        if ((ip & mask) == (e.prefix & mask)) return true;
    }
    return false;
}

std::vector<uint32_t>
DataplaneOracle::ref_rule_match(const net::IdsRuleSet& rules, const uint8_t* payload,
                                size_t len, uint16_t dst_port, bool is_tcp) {
    // Brute force, no fast-pattern pre-filter: a rule matches iff its
    // protocol and destination-port constraints hold and every content is
    // present. Equivalent to the device because the fast pattern is
    // itself one of the contents the device re-verifies.
    std::vector<uint32_t> sids;
    for (const auto& r : rules.rules()) {
        if (r.proto == net::RuleProto::kTcp && !is_tcp) continue;
        if (r.proto == net::RuleProto::kUdp && is_tcp) continue;
        if (r.dst_port && *r.dst_port != dst_port) continue;
        bool all = true;
        for (const auto& c : r.contents) {
            if (!payload_contains(payload, len, c.bytes, c.nocase)) {
                all = false;
                break;
            }
        }
        if (all) sids.push_back(r.sid);
    }
    std::sort(sids.begin(), sids.end());
    return sids;
}

uint32_t
DataplaneOracle::ref_crc32c(const uint8_t* data, size_t len) {
    // Bit-serial, no lookup table (the device model is table-driven).
    uint32_t crc = ~uint32_t(0);
    for (size_t i = 0; i < len; ++i) {
        crc ^= data[i];
        for (int b = 0; b < 8; ++b) {
            crc = (crc >> 1) ^ (0x82f63b78u & (0u - (crc & 1)));
        }
    }
    return ~crc;
}

uint32_t
DataplaneOracle::ref_flow_hash(const std::vector<uint8_t>& frame) {
    // Mirrors net::packet_flow_hash's reject conditions bit for bit, but
    // extracts fields and hashes with independent code.
    if (frame.size() < 14) return 0;
    if (be16(frame, 12) != 0x0800) return 0;
    if (frame.size() < 34) return 0;
    uint32_t ihl = (frame[14] & 0x0f) * 4u;
    if (ihl < 20) return 0;
    size_t l4 = 14 + ihl;
    uint8_t proto = frame[23];
    uint32_t src_ip = be32(frame, 26);
    uint32_t dst_ip = be32(frame, 30);
    uint16_t src_port = 0;
    uint16_t dst_port = 0;
    if (proto == 6) {  // TCP
        if (frame.size() < l4 + 20) return 0;
        src_port = be16(frame, l4);
        dst_port = be16(frame, l4 + 2);
    } else if (proto == 17) {  // UDP
        if (frame.size() < l4 + 8) return 0;
        src_port = be16(frame, l4);
        dst_port = be16(frame, l4 + 2);
    }

    // Canonicalize direction: (a->b) and (b->a) must hash identically.
    uint32_t ip_lo = std::min(src_ip, dst_ip);
    uint32_t ip_hi = std::max(src_ip, dst_ip);
    bool fwd = src_ip < dst_ip || (src_ip == dst_ip && src_port <= dst_port);
    uint16_t port_lo = fwd ? src_port : dst_port;
    uint16_t port_hi = fwd ? dst_port : src_port;

    uint8_t buf[13] = {
        uint8_t(ip_lo >> 24), uint8_t(ip_lo >> 16), uint8_t(ip_lo >> 8), uint8_t(ip_lo),
        uint8_t(ip_hi >> 24), uint8_t(ip_hi >> 16), uint8_t(ip_hi >> 8), uint8_t(ip_hi),
        uint8_t(port_lo >> 8), uint8_t(port_lo),
        uint8_t(port_hi >> 8), uint8_t(port_hi),
        proto,
    };
    return ref_crc32c(buf, sizeof(buf));
}

unsigned
DataplaneOracle::ref_hash_steer(uint32_t hash, uint32_t eligible_mask,
                                unsigned rpu_count) {
    std::vector<unsigned> eligible;
    for (unsigned i = 0; i < rpu_count && i < 32; ++i) {
        if (eligible_mask & (1u << i)) eligible.push_back(i);
    }
    if (eligible.empty()) return 0xff;
    return eligible[hash % eligible.size()];
}

// --- prediction -------------------------------------------------------------

Prediction
DataplaneOracle::predict(const std::vector<uint8_t>& frame, net::Iface in_iface) const {
    net::Iface other =
        in_iface == net::Iface::kPort0 ? net::Iface::kPort1 : net::Iface::kPort0;
    bool hashed = cfg_.lb_policy == lb::Policy::kHash;

    Prediction p;
    if (hashed) {
        p.lb_hash = ref_flow_hash(frame);
        p.hash_prepended = true;
    }

    switch (cfg_.pipeline) {
    case Pipeline::kForwarder:
        p.outcome = Prediction::Outcome::kForwardWire;
        p.out_iface = other;
        // The forwarder echoes the stored bytes verbatim; under the hash
        // policy that includes the LB-prepended little-endian hash word.
        p.out_bytes.reserve(frame.size() + 4);
        if (hashed) append_hash_le(p.out_bytes, p.lb_hash);
        p.out_bytes.insert(p.out_bytes.end(), frame.begin(), frame.end());
        break;

    case Pipeline::kFirewall:
        if (frame.size() < 34 || be16(frame, 12) != 0x0800) {
            p.outcome = Prediction::Outcome::kDrop;
            p.drop_reason = Prediction::DropReason::kNonIp;
        } else if (ref_prefix_match(*cfg_.blacklist, be32(frame, 26))) {
            p.outcome = Prediction::Outcome::kDrop;
            p.drop_reason = Prediction::DropReason::kBlacklistedSrc;
        } else {
            p.outcome = Prediction::Outcome::kForwardWire;
            p.out_iface = other;
            p.out_bytes = frame;
        }
        break;

    case Pipeline::kPigasusHwReorder:
    case Pipeline::kPigasusSwReorder: {
        Prediction q = predict_pigasus(frame, other);
        q.lb_hash = p.lb_hash;
        q.hash_prepended = p.hash_prepended;
        p = q;
        break;
    }

    case Pipeline::kNat: {
        Prediction q = predict_nat(frame, other);
        q.lb_hash = p.lb_hash;
        q.hash_prepended = p.hash_prepended;
        p = q;
        break;
    }
    }
    return p;
}

Prediction
DataplaneOracle::predict_pigasus(const std::vector<uint8_t>& frame,
                                 net::Iface other) const {
    Prediction p;
    bool sw = cfg_.pipeline == Pipeline::kPigasusSwReorder;

    // Both firmwares drop anything that is not IPv4 TCP/UDP.
    if (frame.size() < 38 || be16(frame, 12) != 0x0800 ||
        (frame[23] != 6 && frame[23] != 17)) {
        p.outcome = Prediction::Outcome::kDrop;
        p.drop_reason = Prediction::DropReason::kNonIp;
        return p;
    }
    bool tcp = frame[23] == 6;
    // Fixed firmware offsets (IHL is assumed 5, as the generator emits):
    // TCP payload at 54, UDP payload at 42, in raw-frame terms.
    size_t payload_off = tcp ? 54 : 42;
    size_t payload_len = frame.size() > payload_off ? frame.size() - payload_off : 0;
    uint16_t dst_port = be16(frame, 36);

    std::vector<uint32_t> sids = ref_rule_match(
        *cfg_.rules, frame.data() + payload_off, payload_len, dst_port, tcp);

    if (sw && tcp) {
        // Flow-table collisions, resyncs, and reorder-buffer overflow all
        // legally punt the packet to the host unscanned.
        p.may_punt_to_host = true;
    }
    if (!sids.empty()) {
        p.outcome = Prediction::Outcome::kDeliverHost;
        p.matched_sids = std::move(sids);
        p.exact_bytes = false;  // host record carries alignment padding
    } else {
        p.outcome = Prediction::Outcome::kForwardWire;
        p.out_iface = other;
        p.out_bytes = frame;  // both firmwares strip the hash before forwarding
    }
    return p;
}

Prediction
DataplaneOracle::predict_nat(const std::vector<uint8_t>& frame, net::Iface other) const {
    Prediction p;
    p.outcome = Prediction::Outcome::kForwardWire;
    p.out_iface = other;

    // Engine pass-through conditions (nat.cc translate()).
    if (frame.size() < 34 || be16(frame, 12) != 0x0800 ||
        (frame[23] != 6 && frame[23] != 17)) {
        p.out_bytes = frame;
        return p;
    }

    uint32_t src_ip = be32(frame, 26);
    uint32_t dst_ip = be32(frame, 30);
    const auto& nat = cfg_.nat;
    uint32_t mask = nat.internal_prefix_len == 0
                        ? 0
                        : ~uint32_t(0) << (32 - nat.internal_prefix_len);
    bool internal_src = (src_ip & mask) == (nat.internal_prefix & mask);

    if (internal_src) {
        // Outbound: src ip -> external_ip, checksum fixed incrementally,
        // src port -> an allocated port (dynamic; checked structurally).
        p.nat_outbound = true;
        p.out_bytes = frame;
        uint16_t old_check = be16(frame, 24);
        uint16_t new_check = net::checksum_fixup32(old_check, src_ip, nat.external_ip);
        p.out_bytes[24] = uint8_t(new_check >> 8);
        p.out_bytes[25] = uint8_t(new_check);
        p.out_bytes[26] = uint8_t(nat.external_ip >> 24);
        p.out_bytes[27] = uint8_t(nat.external_ip >> 16);
        p.out_bytes[28] = uint8_t(nat.external_ip >> 8);
        p.out_bytes[29] = uint8_t(nat.external_ip);
        p.wildcards.push_back({34, 2});
        return p;
    }

    if (dst_ip == nat.external_ip) {
        // Inbound: either a reverse mapping exists (rewrite) or it does
        // not (drop) — mapping state is dynamic, so both are acceptable
        // and validated structurally.
        p.nat_inbound = true;
        p.exact_bytes = false;
        return p;
    }

    p.out_bytes = frame;  // external-to-external pass-through
    return p;
}

// --- output validation ------------------------------------------------------

namespace {

std::string
size_err(const char* what, size_t want, size_t got) {
    return std::string(what) + ": expected " + std::to_string(want) + " bytes, got " +
           std::to_string(got);
}

bool
in_wildcard(const std::vector<Prediction::Wildcard>& ws, size_t off) {
    for (const auto& w : ws) {
        if (off >= w.offset && off < size_t(w.offset) + w.len) return true;
    }
    return false;
}

}  // namespace

bool
DataplaneOracle::check_output(const Prediction& pred,
                              const std::vector<uint8_t>& in_frame,
                              const std::vector<uint8_t>& out, bool to_host,
                              std::string* why) const {
    auto fail = [&](std::string msg) {
        if (why) *why = std::move(msg);
        return false;
    };
    size_t f = in_frame.size();

    if (to_host) {
        bool sw = cfg_.pipeline == Pipeline::kPigasusSwReorder;

        // Punt framing: the LB hash word followed by the untouched frame.
        auto check_punt = [&](std::string* err) {
            if (out.size() != f + 4) {
                *err = size_err("punt record", f + 4, out.size());
                return false;
            }
            uint32_t hash_word = uint32_t(out[0]) | uint32_t(out[1]) << 8 |
                                 uint32_t(out[2]) << 16 | uint32_t(out[3]) << 24;
            if (hash_word != pred.lb_hash) {
                *err = "punt record hash word mismatch";
                return false;
            }
            if (!std::equal(in_frame.begin(), in_frame.end(), out.begin() + 4)) {
                *err = "punt record frame bytes differ from input";
                return false;
            }
            return true;
        };

        // Match framing: frame ++ pad-to-4 ++ ascending little-endian sids.
        // The hardware path pads the frame length F; the software path
        // pads the hashed length F+4 and then strips the hash word.
        auto check_match = [&](std::string* err) {
            size_t padded = sw ? ((f + 4 + 3) & ~size_t(3)) - 4 : (f + 3) & ~size_t(3);
            size_t want = padded + 4 * pred.matched_sids.size();
            if (out.size() != want) {
                *err = size_err("match record", want, out.size());
                return false;
            }
            if (!std::equal(in_frame.begin(), in_frame.end(), out.begin())) {
                *err = "match record frame bytes differ from input";
                return false;
            }
            // Padding bytes between f and padded are unspecified (stale
            // packet memory); only the sid words are checked.
            for (size_t i = 0; i < pred.matched_sids.size(); ++i) {
                size_t off = padded + 4 * i;
                uint32_t sid = uint32_t(out[off]) | uint32_t(out[off + 1]) << 8 |
                               uint32_t(out[off + 2]) << 16 | uint32_t(out[off + 3]) << 24;
                if (sid != pred.matched_sids[i]) {
                    *err = "match record sid[" + std::to_string(i) + "] = " +
                           std::to_string(sid) + ", expected " +
                           std::to_string(pred.matched_sids[i]);
                    return false;
                }
            }
            return true;
        };

        if (pred.outcome == Prediction::Outcome::kDeliverHost) {
            std::string match_err;
            if (check_match(&match_err)) return true;
            // A matched TCP packet can still have been punted unscanned.
            if (pred.may_punt_to_host) {
                std::string punt_err;
                if (check_punt(&punt_err)) return true;
                return fail("host record is neither a match record (" + match_err +
                            ") nor a punt record (" + punt_err + ")");
            }
            return fail(match_err);
        }
        if (pred.may_punt_to_host) {
            std::string punt_err;
            if (check_punt(&punt_err)) return true;
            return fail("bad punt record: " + punt_err);
        }
        return fail("unexpected host delivery");
    }

    // --- wire output --------------------------------------------------------

    if (pred.nat_inbound) {
        // Reverse translation: [30..33] dst ip, [36..37] dst port, and
        // [24..25] checksum rewritten; everything else byte-identical.
        if (out.size() != f) return fail(size_err("NAT inbound frame", f, out.size()));
        for (size_t i = 0; i < f; ++i) {
            bool rewritable = (i >= 30 && i <= 33) || i == 36 || i == 37 ||
                              i == 24 || i == 25;
            if (!rewritable && out[i] != in_frame[i]) {
                return fail("NAT inbound rewrote unexpected byte " + std::to_string(i));
            }
        }
        uint32_t old_dst = be32(in_frame, 30);
        uint32_t new_dst = be32(out, 30);
        uint32_t pmask = cfg_.nat.internal_prefix_len == 0
                             ? 0
                             : ~uint32_t(0) << (32 - cfg_.nat.internal_prefix_len);
        if ((new_dst & pmask) != (cfg_.nat.internal_prefix & pmask)) {
            return fail("NAT inbound rewrote dst to a non-internal address");
        }
        uint16_t want_check = net::checksum_fixup32(be16(in_frame, 24), old_dst, new_dst);
        if (be16(out, 24) != want_check) {
            return fail("NAT inbound checksum not the RFC 1624 incremental update");
        }
        return true;
    }

    if (!pred.exact_bytes) return fail("no byte-level prediction for wire output");
    if (out.size() != pred.out_bytes.size()) {
        return fail(size_err("wire frame", pred.out_bytes.size(), out.size()));
    }
    for (size_t i = 0; i < out.size(); ++i) {
        if (in_wildcard(pred.wildcards, i)) continue;
        if (out[i] != pred.out_bytes[i]) {
            return fail("wire frame byte " + std::to_string(i) + " = " +
                        std::to_string(out[i]) + ", expected " +
                        std::to_string(pred.out_bytes[i]));
        }
    }
    if (pred.nat_outbound) {
        // The allocated source port must come from this engine's slice of
        // the port space: base + offset + k*stride, k in [0, count).
        const auto& nat = cfg_.nat;
        uint16_t port = uint16_t(out[34] << 8 | out[35]);
        uint32_t lo = uint32_t(nat.port_base) + nat.port_offset;
        uint32_t stride = nat.port_stride == 0 ? 1 : nat.port_stride;
        if (port < lo || (port - lo) % stride != 0 ||
            (port - lo) / stride >= nat.port_count) {
            return fail("NAT allocated port " + std::to_string(port) +
                        " outside this engine's slice");
        }
    }
    return true;
}

}  // namespace rosebud::oracle
