/// \file
/// One-call differential test harness: build a full System for a named
/// pipeline, attach the matching accelerators/firmware, construct the
/// golden oracle from the same rules, run seeded random traffic with the
/// scoreboard attached, drain, and report. This is the engine behind
/// tests/test_oracle_differential.cc, the `--oracle` CLI mode, and the
/// bench self-check (bench/bench_common.h check_with_oracle()).

#ifndef ROSEBUD_ORACLE_HARNESS_H
#define ROSEBUD_ORACLE_HARNESS_H

#include <functional>
#include <string>

#include "core/system.h"
#include "oracle/oracle.h"
#include "oracle/scoreboard.h"

namespace rosebud::oracle {

/// Parameters of one differential run.
struct RunSpec {
    Pipeline pipeline = Pipeline::kForwarder;
    unsigned rpu_count = 8;
    lb::Policy policy = lb::Policy::kRoundRobin;
    bool hw_reassembler = false;
    uint64_t seed = 1;

    // Traffic shape.
    uint32_t packet_size = 256;
    double load = 0.5;             ///< fraction of line rate
    uint64_t max_packets = 250;    ///< source stops after this many
    double attack_fraction = 0.0;  ///< rule/blacklist-matching packets
    double reorder_fraction = 0.0;
    double udp_fraction = 0.2;
    size_t flow_count = 64;

    // Rule synthesis (seeded from `seed`).
    size_t rule_count = 24;
    size_t blacklist_count = 48;

    // Simulation length: main run, then drain rounds until the
    // scoreboard's outstanding count reaches zero.
    sim::Cycle run_cycles = 60'000;
    unsigned drain_rounds = 30;
    sim::Cycle drain_cycles = 10'000;

    Scoreboard::Options scoreboard{};

    /// Testing hooks. `oracle_blacklist` replaces the firewall oracle's
    /// blacklist (deliberate corruption => divergences). `mid_run` is
    /// called once, halfway through run_cycles (fault injection,
    /// reconfiguration, ...).
    const net::Blacklist* oracle_blacklist = nullptr;
    std::function<void(System&)> mid_run;

    // --- fuzzing hooks (src/fuzz) -------------------------------------------
    //
    /// Rewrites each frame after generation but before it is offered, so
    /// the oracle and the device score the same (possibly malformed)
    /// bytes. Adversarial truncation/corruption lives here.
    std::function<void(net::Packet&)> mutate_frame;
    /// When non-empty, the source replays exactly these raw frames in
    /// order instead of synthesizing traffic (corpus replay, minimized
    /// cases); max_packets is clamped to the list length. mutate_frame
    /// still applies.
    std::vector<std::vector<uint8_t>> replay_frames;
    /// Applied to the derived SystemConfig just before construction
    /// (FIFO-depth / bus-width overrides for the config fuzzer). The
    /// automatic pre-cycle-0 lint gate is downgraded to warn when this is
    /// set — the harness already folds lint_check() into the result, and
    /// the config fuzzer must observe violations, not die on them.
    std::function<void(SystemConfig&)> tweak_config;
    /// Permute the kernel's component tick order under the run seed (the
    /// fingerprint-stability checks run each sample both ways).
    bool shuffle_tick_order = false;
};

/// Outcome of one differential run.
struct RunResult {
    Scoreboard::Counts counts;
    bool ok = false;     ///< zero divergences and everything accounted for
    std::string report;  ///< first divergences, human-readable ("" if ok)
    /// System::state_fingerprint() after the drain — the tick-order
    /// determinism witness the config fuzzer compares across runs.
    uint64_t fingerprint = 0;
    size_t lint_violations = 0;  ///< pre-run netlist lint findings
};

/// Build, run, and score one configuration. Fatals on unsupported
/// pipeline/policy combinations (see DataplaneOracle).
RunResult run_differential(const RunSpec& spec);

/// Parse a pipeline name ("forwarder", "firewall", "ids-hw", "ids-sw",
/// "nat"); fatals on unknown names.
Pipeline parse_pipeline(const std::string& name);

}  // namespace rosebud::oracle

#endif  // ROSEBUD_ORACLE_HARNESS_H
