/// \file
/// Online differential scoreboard: taps a System's packet-lifecycle
/// observer stream (System::add_packet_observer), predicts every ingress
/// packet's fate with the DataplaneOracle, and diffs the simulated
/// outcome — egress interface, output bytes, LB hash and steering, drop
/// decisions, duplicate/lost packets — against the prediction as events
/// arrive. The first divergences are captured with full packet and
/// firmware context for post-mortem (Scoreboard::report()).
///
/// Congestion losses (MAC FIFO overflow) are architectural, not
/// functional: they are tallied separately and never flagged.

#ifndef ROSEBUD_ORACLE_SCOREBOARD_H
#define ROSEBUD_ORACLE_SCOREBOARD_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/system.h"
#include "oracle/oracle.h"

namespace rosebud::oracle {

class Scoreboard {
 public:
    struct Options {
        bool check_bytes = true;     ///< diff output bytes, not just outcomes
        bool check_steering = true;  ///< hash policy: predicted RPU vs actual
        bool track_nat_mappings = true;
        size_t max_reports = 4;  ///< detailed divergence dumps kept
    };

    struct Counts {
        uint64_t offered = 0;  ///< packets registered at ingress
        uint64_t forwarded_wire = 0;
        uint64_t host_delivered = 0;
        uint64_t punted = 0;  ///< host deliveries of unscanned (punt) records
        uint64_t fw_dropped = 0;
        uint64_t congestion_dropped = 0;
        uint64_t divergences = 0;
        /// Order-insensitive digest of all terminal outputs (egress kind,
        /// packet id, bytes); equal digests on two runs mean identical
        /// per-packet output bytes. Used by the determinism tests.
        uint64_t output_byte_hash = 0;
    };

    /// Attaches to `sys` immediately. The scoreboard must be destroyed
    /// (or no further cycles run) before the System dies; the destructor
    /// deregisters the observer.
    Scoreboard(System& sys, const DataplaneOracle& oracle, Options opts);
    Scoreboard(System& sys, const DataplaneOracle& oracle)
        : Scoreboard(sys, oracle, Options{}) {}
    ~Scoreboard();

    Scoreboard(const Scoreboard&) = delete;
    Scoreboard& operator=(const Scoreboard&) = delete;

    /// Packets registered at ingress whose fate is still unresolved.
    /// Drive the drain loop with this: run extra cycles until it is 0 or
    /// stops shrinking.
    size_t outstanding() const { return outstanding_; }

    uint64_t divergence_count() const { return counts_.divergences; }

    const Counts& counts() const { return counts_; }

    /// Close the books: every still-unresolved packet becomes a
    /// stuck-packet divergence. Returns the final counts. Call once,
    /// after the drain loop.
    Counts finish();

    /// Human-readable dump of the first captured divergences (empty
    /// string if none): kind, cycle, packet bytes, prediction vs actual,
    /// and the assigned RPU's debug state.
    std::string report() const;

 private:
    struct Entry {
        std::vector<uint8_t> input;  ///< frame as it arrived on the wire
        Prediction pred;
        net::Iface in_iface = net::Iface::kPort0;
        uint8_t assigned_rpu = 0xff;
        uint8_t terminals = 0;  ///< terminal events seen (must end at 1)
        bool congestion = false;
    };

    void on_event(const char* stage, const net::Packet& pkt, sim::Cycle now);
    void terminal(uint64_t id, Entry& e, const char* stage, const net::Packet& pkt,
                  sim::Cycle now);
    void diverge(const char* kind, uint64_t id, const Entry* e, const char* stage,
                 const net::Packet* actual, sim::Cycle now, const std::string& detail);
    void fold_output(char kind, uint64_t id, const std::vector<uint8_t>& bytes);

    System& sys_;
    const DataplaneOracle& oracle_;
    Options opts_;
    uint64_t observer_handle_ = 0;

    std::map<uint64_t, Entry> entries_;
    size_t outstanding_ = 0;
    Counts counts_;
    std::vector<std::string> reports_;
    bool finished_ = false;

    /// NAT mapping stability: (rpu, internal ip, internal port) -> external
    /// port must be stable, and per-RPU external ports injective.
    std::map<std::tuple<uint8_t, uint32_t, uint16_t>, uint16_t> nat_forward_;
    std::map<std::pair<uint8_t, uint16_t>, std::tuple<uint32_t, uint16_t>> nat_reverse_;
};

}  // namespace rosebud::oracle

#endif  // ROSEBUD_ORACLE_SCOREBOARD_H
