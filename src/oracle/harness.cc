#include "oracle/harness.h"

#include <algorithm>
#include <memory>

#include "accel/firewall.h"
#include "accel/nat.h"
#include "accel/pigasus.h"
#include "firmware/programs.h"
#include "net/tracegen.h"
#include "sim/log.h"

namespace rosebud::oracle {

Pipeline
parse_pipeline(const std::string& name) {
    if (name == "forwarder") return Pipeline::kForwarder;
    if (name == "firewall") return Pipeline::kFirewall;
    if (name == "ids-hw" || name == "pigasus-hw") return Pipeline::kPigasusHwReorder;
    if (name == "ids-sw" || name == "pigasus-sw") return Pipeline::kPigasusSwReorder;
    if (name == "nat") return Pipeline::kNat;
    sim::fatal("unknown pipeline: " + name +
               " (want forwarder|firewall|ids-hw|ids-sw|nat)");
    return Pipeline::kForwarder;
}

RunResult
run_differential(const RunSpec& spec) {
    // Unlimited traffic never drains, so packets genuinely in flight at the
    // cutoff would be misreported as stuck.
    if (spec.max_packets == 0) {
        sim::fatal("oracle harness: max_packets must be finite "
                   "(the run must drain to empty for the scoreboard to close)");
    }
    SystemConfig scfg;
    scfg.rpu_count = spec.rpu_count;
    scfg.lb_policy = spec.policy;
    scfg.hw_reassembler = spec.hw_reassembler;
    if (spec.tweak_config) {
        spec.tweak_config(scfg);
        // Fuzzed configurations must reach the explicit lint_check() below
        // instead of dying at the automatic pre-cycle-0 gate.
        if (scfg.lint == LintMode::kEnforce) scfg.lint = LintMode::kWarn;
    }
    System sys(scfg);
    if (spec.shuffle_tick_order) sys.kernel().shuffle_tick_order(spec.seed);

    // Rules are synthesized from the run seed; the oracle and the device
    // accelerators are built from the *same* objects, so divergences mean
    // behavioral disagreement, not configuration skew.
    sim::Rng rng(spec.seed);
    net::IdsRuleSet rules;
    net::Blacklist blacklist;
    accel::NatEngine::Params nat_params{};

    fwlib::Program fw;
    OracleConfig ocfg;
    ocfg.pipeline = spec.pipeline;
    ocfg.lb_policy = spec.policy;
    ocfg.rpu_count = spec.rpu_count;

    const net::IdsRuleSet* gen_rules = nullptr;
    const net::Blacklist* gen_blacklist = nullptr;

    switch (spec.pipeline) {
    case Pipeline::kForwarder:
        fw = fwlib::forwarder();
        break;
    case Pipeline::kFirewall:
        blacklist = net::Blacklist::synthesize(spec.blacklist_count, rng);
        sys.attach_accelerators(
            [&] { return std::make_unique<accel::FirewallMatcher>(blacklist); });
        fw = fwlib::firewall();
        ocfg.blacklist = &blacklist;
        gen_blacklist = &blacklist;
        break;
    case Pipeline::kPigasusHwReorder:
    case Pipeline::kPigasusSwReorder:
        rules = net::IdsRuleSet::synthesize(spec.rule_count, rng);
        sys.attach_accelerators(
            [&] { return std::make_unique<accel::PigasusMatcher>(rules); });
        fw = spec.pipeline == Pipeline::kPigasusHwReorder
                 ? fwlib::pigasus_hw_reorder()
                 : fwlib::pigasus_sw_reorder();
        ocfg.rules = &rules;
        gen_rules = &rules;
        break;
    case Pipeline::kNat:
        // A blacklist steers the attack fraction to external source IPs,
        // exercising the engine's pass-through path alongside outbound
        // translation (the oracle's NAT model doesn't use it).
        blacklist = net::Blacklist::synthesize(spec.blacklist_count, rng);
        sys.attach_accelerators(
            [&] { return std::make_unique<accel::NatEngine>(nat_params); });
        fw = fwlib::nat(fwlib::SlotParams{16, 16 * 1024},
                        spec.policy == lb::Policy::kHash);
        ocfg.nat = nat_params;
        gen_blacklist = &blacklist;
        break;
    }

    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();

    // Corrupted-oracle hook: validates the divergence reporting path.
    if (spec.oracle_blacklist) ocfg.blacklist = spec.oracle_blacklist;

    DataplaneOracle oracle(ocfg);
    Scoreboard scoreboard(sys, oracle, spec.scoreboard);

    net::TrafficSpec tspec;
    tspec.packet_size = spec.packet_size;
    tspec.attack_fraction = spec.attack_fraction;
    tspec.reorder_fraction = spec.reorder_fraction;
    tspec.flow_count = spec.flow_count;
    tspec.udp_fraction = spec.udp_fraction;
    tspec.seed = spec.seed * 2654435761u + 1;  // decouple from rule synthesis

    dist::TrafficSource::Config src;
    src.port = 0;
    src.load = spec.load;
    src.max_packets = spec.max_packets;

    dist::TrafficSource::GenFn gen_fn;
    if (!spec.replay_frames.empty()) {
        // Corpus replay: hand the recorded frames to the source verbatim.
        auto frames =
            std::make_shared<std::vector<std::vector<uint8_t>>>(spec.replay_frames);
        auto next = std::make_shared<size_t>(0);
        gen_fn = [frames, next]() -> net::PacketPtr {
            if (*next >= frames->size()) return nullptr;
            auto pkt = std::make_shared<net::Packet>();
            pkt->data = (*frames)[*next];
            pkt->id = ++*next;
            return pkt;
        };
        src.max_packets = std::min<uint64_t>(spec.max_packets, frames->size());
    } else {
        auto gen = std::make_shared<net::TraceGenerator>(tspec, gen_rules, gen_blacklist);
        gen_fn = [gen] { return gen->next(); };
    }
    if (spec.mutate_frame) {
        // Applied before the source offers the frame, so the oracle's
        // ingress prediction and the device see identical bytes.
        gen_fn = [inner = std::move(gen_fn),
                  mutate = spec.mutate_frame]() -> net::PacketPtr {
            net::PacketPtr pkt = inner();
            if (pkt) mutate(*pkt);
            return pkt;
        };
    }
    sys.add_source(src, std::move(gen_fn));

    // Elaboration lint: running it across the sweep doubles as coverage
    // that every pipeline/policy/rpu-count combination builds a clean
    // netlist (the in-System pre-cycle-0 gate would also catch this, but
    // here the findings land in the differential report).
    auto lint_violations = sys.lint_check();

    if (spec.mid_run) {
        sys.run_cycles(spec.run_cycles / 2);
        spec.mid_run(sys);
        sys.run_cycles(spec.run_cycles - spec.run_cycles / 2);
    } else {
        sys.run_cycles(spec.run_cycles);
    }
    for (unsigned i = 0; i < spec.drain_rounds && scoreboard.outstanding() > 0; ++i) {
        sys.run_cycles(spec.drain_cycles);
    }

    RunResult res;
    res.counts = scoreboard.finish();
    res.report = scoreboard.report();
    res.fingerprint = sys.state_fingerprint();
    res.lint_violations = lint_violations.size();
    res.ok = res.counts.divergences == 0 && res.counts.offered > 0 &&
             lint_violations.empty();
    if (!lint_violations.empty()) {
        res.report = "netlist lint violations:\n" + lint::report(lint_violations) +
                     res.report;
    }
    return res;
}

}  // namespace rosebud::oracle
