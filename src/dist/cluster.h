/// \file
/// Multi-board cluster building blocks: the flow-consistent ECMP
/// front-end sharder and the modeled 100G inter-board link.
///
/// A Rosebud cluster (ROADMAP item 1) is N boards, each a full System,
/// joined by a front-end packet sharder — the deployment the paper
/// sketches for scaling one middlebox past a single FPGA. Two properties
/// make the cluster simulable as N *independent* shard groups:
///
///  * the front-end assigns packets to boards by a pure function of the
///    flow 5-tuple (ECMP-style), so every flow's packets — and therefore
///    every reassembly / reorder / NAT-binding decision — land on exactly
///    one board, in order;
///  * the shipped dataplanes never originate board-to-board traffic
///    (each board forwards to its own egress MAC), so the only
///    inter-board influence is the front-end fan-out itself.
///
/// Given that, a board's architectural evolution is bit-identical to a
/// standalone single-board run fed the same flow subset — which is the
/// cluster equivalence gate bench_cluster enforces — and the inter-board
/// links only shape *when* bytes arrive, which the InterBoardLink model
/// accounts for without coupling the boards' cycle loops.

#ifndef ROSEBUD_DIST_CLUSTER_H
#define ROSEBUD_DIST_CLUSTER_H

#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "sim/kernel.h"

namespace rosebud::dist {

/// Flow-consistent ECMP front-end: board = flow_hash(5-tuple) mod boards.
/// Deterministic and stateless per packet, so the same packet stream
/// always shards identically — the property the per-board fingerprint
/// equivalence gate rests on. Non-IP frames hash over their first bytes
/// (packet_flow_hash's fallback), still a pure function of content.
class EcmpSharder {
 public:
    explicit EcmpSharder(unsigned boards);

    /// Board index for one frame; records per-board byte/frame counts.
    unsigned route(const net::Packet& pkt);

    /// Pure routing decision with no accounting (for filters that ask
    /// "is this frame mine?" without owning the sharder's stats).
    unsigned board_for(const net::Packet& pkt) const;

    unsigned boards() const { return boards_; }
    uint64_t frames(unsigned board) const { return frames_.at(board); }
    uint64_t bytes(unsigned board) const { return bytes_.at(board); }
    uint64_t total_frames() const;

    /// Largest/smallest per-board frame share (balance diagnostic).
    double imbalance() const;

 private:
    unsigned boards_;
    std::vector<uint64_t> frames_;
    std::vector<uint64_t> bytes_;
};

/// Offline token-bucket model of one 100G front-end-to-board link with a
/// fixed propagation/SerDes latency. `transfer` answers "when does a
/// frame offered at cycle T finish arriving board-side?" — serialization
/// at line rate behind any queued predecessors, plus the base latency.
/// The model never back-pressures the simulation (the front end is
/// provisioned at line rate); instead it reports utilization and the
/// worst queueing excursion so bench_cluster can show whether the
/// modeled links would have been the bottleneck.
class InterBoardLink {
 public:
    struct Config {
        double gbps = 100.0;          ///< link rate
        sim::Cycle base_latency = 175;  ///< SerDes + cable + MAC, in cycles
    };

    InterBoardLink();
    explicit InterBoardLink(const Config& cfg);

    /// Model one frame handoff: returns the board-side arrival cycle.
    sim::Cycle transfer(sim::Cycle now, uint32_t bytes);

    uint64_t frames() const { return frames_; }
    uint64_t bytes_carried() const { return bytes_; }
    /// Worst (arrival - offered) across all frames, in cycles.
    sim::Cycle worst_latency() const { return worst_latency_; }
    /// Fraction of [0, now] the link spent serializing, given the last
    /// observed offer cycle.
    double utilization(sim::Cycle now) const;

 private:
    Config cfg_;
    double bytes_per_cycle_;
    sim::Cycle next_free_ = 0;  ///< cycle the serializer next goes idle
    uint64_t frames_ = 0;
    uint64_t bytes_ = 0;
    sim::Cycle busy_cycles_ = 0;
    sim::Cycle worst_latency_ = 0;
};

}  // namespace rosebud::dist

#endif  // ROSEBUD_DIST_CLUSTER_H
