#include "dist/cluster.h"

#include <algorithm>
#include <cmath>

#include "net/flow.h"
#include "sim/log.h"

namespace rosebud::dist {

EcmpSharder::EcmpSharder(unsigned boards)
    : boards_(boards), frames_(boards, 0), bytes_(boards, 0) {
    if (boards == 0) sim::fatal("EcmpSharder needs at least one board");
}

unsigned
EcmpSharder::board_for(const net::Packet& pkt) const {
    // flow_hash is symmetric in direction, so both halves of a TCP
    // conversation land on the same board — the property reassembly and
    // NAT state placement need. Non-IP frames hash to 0 and go to board
    // 0 (they carry no flow state to split).
    return net::packet_flow_hash(pkt) % boards_;
}

unsigned
EcmpSharder::route(const net::Packet& pkt) {
    unsigned b = board_for(pkt);
    frames_[b] += 1;
    bytes_[b] += pkt.size();
    return b;
}

uint64_t
EcmpSharder::total_frames() const {
    uint64_t t = 0;
    for (uint64_t f : frames_) t += f;
    return t;
}

double
EcmpSharder::imbalance() const {
    uint64_t total = total_frames();
    if (total == 0 || boards_ == 0) return 0.0;
    uint64_t hi = *std::max_element(frames_.begin(), frames_.end());
    double fair = double(total) / boards_;
    return fair > 0 ? double(hi) / fair - 1.0 : 0.0;
}

InterBoardLink::InterBoardLink() : InterBoardLink(Config{}) {}

InterBoardLink::InterBoardLink(const Config& cfg)
    : cfg_(cfg), bytes_per_cycle_(cfg.gbps * 1e9 / 8.0 / sim::kClockHz) {
    if (bytes_per_cycle_ <= 0.0)
        sim::fatal("InterBoardLink needs a positive line rate");
}

sim::Cycle
InterBoardLink::transfer(sim::Cycle now, uint32_t bytes) {
    const sim::Cycle start = std::max(now, next_free_);
    const sim::Cycle ser =
        sim::Cycle(std::ceil(double(bytes) / bytes_per_cycle_));
    next_free_ = start + ser;
    busy_cycles_ += ser;
    frames_ += 1;
    bytes_ += bytes;
    const sim::Cycle arrival = start + ser + cfg_.base_latency;
    if (arrival - now > worst_latency_) worst_latency_ = arrival - now;
    return arrival;
}

double
InterBoardLink::utilization(sim::Cycle now) const {
    return now > 0 ? double(busy_cycles_) / double(now) : 0.0;
}

}  // namespace rosebud::dist
