#include "dist/traffic.h"

namespace rosebud::dist {

TrafficSource::TrafficSource(sim::Kernel& kernel, sim::Stats& stats, const Config& config,
                             Fabric& fabric, GenFn gen)
    : sim::Component(kernel, "source.port" + std::to_string(config.port)),
      config_(config),
      stats_(stats),
      fabric_(fabric),
      gen_(std::move(gen)),
      bytes_per_cycle_(config.line_gbps * 1e9 / 8.0 / sim::kClockHz * config.load),
      pps_per_cycle_(config.max_pps > 0 ? config.max_pps / sim::kClockHz : 0.0) {
    // We are the wire side of this port's MAC RX FIFO.
    kernel.declare_port({name(), "fabric.mac_rx.p" + std::to_string(config.port),
                         sim::PortRecord::kWrite, 512, 0});
}

void
TrafficSource::tick() {
    if (config_.max_packets && offered_ >= config_.max_packets) return;

    tokens_ += bytes_per_cycle_;
    if (pps_per_cycle_ > 0) pps_tokens_ += pps_per_cycle_;

    if (!staged_) staged_ = gen_();
    if (!staged_) return;

    while (staged_ && tokens_ >= double(staged_->wire_size()) &&
           (pps_per_cycle_ == 0 || pps_tokens_ >= 1.0)) {
        tokens_ -= double(staged_->wire_size());
        if (pps_per_cycle_ > 0) pps_tokens_ -= 1.0;
        // Timestamp at the start of serialization (the frame has been on
        // the wire for wire_size/line_rate by the time it is delivered).
        staged_->tx_ns =
            kernel().now_ns() - double(staged_->wire_size()) / 50.0 * sim::kNsPerCycle;
        ++offered_;
        if (!fabric_.mac_rx(config_.port, staged_)) ++dropped_;
        staged_.reset();
        if (config_.max_packets && offered_ >= config_.max_packets) break;
        staged_ = gen_();
    }
    // Bound burst accumulation to one frame's worth of credit.
    if (staged_ && tokens_ > 2.0 * double(staged_->wire_size())) {
        tokens_ = 2.0 * double(staged_->wire_size());
    }
}

TrafficSink::TrafficSink(sim::Kernel& kernel, sim::Stats& stats, std::string name)
    : kernel_(kernel),
      stats_(stats),
      name_(std::move(name)),
      ctr_frames_(&stats.counter(name_ + ".frames")),
      ctr_bytes_(&stats.counter(name_ + ".bytes")) {}

void
TrafficSink::deliver(const net::PacketPtr& pkt) {
    ++frames_;
    bytes_ += pkt->size();
    ++window_frames_;
    window_bytes_ += pkt->size();
    latency_.add(kernel_.now_ns() - pkt->tx_ns);
    if (kernel_.commit_compat()) {
        stats_.counter(name_ + ".frames").add();
        stats_.counter(name_ + ".bytes").add(pkt->size());
    } else {
        ctr_frames_->add();
        ctr_bytes_->add(pkt->size());
    }
}

void
TrafficSink::start_window() {
    window_frames_ = 0;
    window_bytes_ = 0;
    window_start_ = kernel_.now();
    latency_.reset();
}

double
TrafficSink::gbps_since(sim::Cycle from_cycle) const {
    sim::Cycle start = from_cycle ? from_cycle : window_start_;
    sim::Cycle elapsed = kernel_.now() - start;
    if (elapsed == 0) return 0.0;
    return double(window_bytes_) * 8.0 / (double(elapsed) / sim::kClockHz) / 1e9;
}

}  // namespace rosebud::dist
