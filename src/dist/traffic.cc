#include "dist/traffic.h"

namespace rosebud::dist {

TrafficSource::TrafficSource(sim::Kernel& kernel, sim::Stats& stats, const Config& config,
                             Fabric& fabric, GenFn gen)
    : sim::Component(kernel, "source.port" + std::to_string(config.port)),
      config_(config),
      stats_(stats),
      fabric_(fabric),
      gen_(std::move(gen)),
      bytes_per_cycle_(config.line_gbps * 1e9 / 8.0 / sim::kClockHz * config.load),
      pps_per_cycle_(config.max_pps > 0 ? config.max_pps / sim::kClockHz : 0.0) {
    // We are the wire side of this port's MAC RX FIFO.
    kernel.declare_port({name(), "fabric.mac_rx.p" + std::to_string(config.port),
                         sim::PortRecord::kWrite, 512, 0});
}

void
TrafficSource::tick() {
    if (config_.max_packets && offered_ >= config_.max_packets) return;

    tokens_ += bytes_per_cycle_;
    if (pps_per_cycle_ > 0) pps_tokens_ += pps_per_cycle_;

    if (!staged_) staged_ = gen_();
    if (!staged_) return;

    while (staged_ && tokens_ >= double(staged_->wire_size()) &&
           (pps_per_cycle_ == 0 || pps_tokens_ >= 1.0)) {
        tokens_ -= double(staged_->wire_size());
        if (pps_per_cycle_ > 0) pps_tokens_ -= 1.0;
        // Timestamp at the start of serialization (the frame has been on
        // the wire for wire_size/line_rate by the time it is delivered).
        staged_->tx_ns =
            kernel().now_ns() - double(staged_->wire_size()) / 50.0 * sim::kNsPerCycle;
        ++offered_;
        const bool ok = (cut_ && kernel().decoupled_running())
                            ? cut_push(staged_)
                            : fabric_.mac_rx(config_.port, staged_);
        if (!ok) ++dropped_;
        staged_.reset();
        if (config_.max_packets && offered_ >= config_.max_packets) break;
        staged_ = gen_();
    }
    // Bound burst accumulation to one frame's worth of credit.
    if (staged_ && tokens_ > 2.0 * double(staged_->wire_size())) {
        tokens_ = 2.0 * double(staged_->wire_size());
    }
}

bool
TrafficSource::decoupled_runnable(sim::Cycle t) const {
    if (!cut_) return true;
    if (cut_->consumer_done() >= t) return true;  // lockstep: exact credit
    // Free-run: the consumer only gains occupancy through this channel and
    // otherwise drains, so snapshot + our undrained pushes upper-bounds the
    // occupancy any admission check this tick could face.
    const sim::CutCredit c = cut_->credit_snapshot();
    const uint64_t outstanding = cut_pushed_bytes_ - c.drained_bytes;
    return c.bytes + outstanding + kFreeRunSlackBytes <= cut_fifo_bytes_;
}

sim::Cycle
TrafficSource::decoupled_lookahead() const {
    constexpr sim::Cycle kForever = ~sim::Cycle(0) >> 1;
    if (config_.max_packets && offered_ >= config_.max_packets) return kForever;
    if (!staged_) return 0;  // next tick must call gen_() — run it live
    double n = 0.0;
    const double need = double(staged_->wire_size()) - tokens_;
    if (need > 0.0) {
        if (bytes_per_cycle_ <= 0.0) return kForever;  // load 0: never emits
        n = need / bytes_per_cycle_ - 2.0;
    }
    if (pps_per_cycle_ > 0 && pps_tokens_ < 1.0) {
        // Emission needs BOTH buckets full; the later one dominates.
        const double n2 = (1.0 - pps_tokens_) / pps_per_cycle_ - 2.0;
        if (n2 > n) n = n2;
    }
    if (n <= 0.0) return 0;
    return sim::Cycle(n);
}

void
TrafficSource::decoupled_advance(sim::Cycle n) {
    if (config_.max_packets && offered_ >= config_.max_packets) return;
    // Exact replay of tick()'s non-emitting path (the lookahead contract
    // guarantees no emission threshold is reached inside this window).
    for (sim::Cycle i = 0; i < n; ++i) {
        tokens_ += bytes_per_cycle_;
        if (pps_per_cycle_ > 0) pps_tokens_ += pps_per_cycle_;
        if (staged_ && tokens_ > 2.0 * double(staged_->wire_size())) {
            tokens_ = 2.0 * double(staged_->wire_size());
        }
    }
}

void
TrafficSource::set_cut_channel(sim::CutChannel<net::PacketPtr>* ch,
                               uint64_t mac_rx_fifo_bytes) {
    cut_ = ch;
    cut_fifo_bytes_ = mac_rx_fifo_bytes;
    decoupled_gated_ = true;
    if (ch && ctr_rx_frames_ == nullptr) {
        // Same counters Fabric::mac_rx increments (Stats handles are
        // node-stable; Fabric resolved these names at construction).
        std::string pn = "port" + std::to_string(config_.port);
        ctr_rx_frames_ = &stats_.counter(pn + ".rx_frames");
        ctr_rx_bytes_ = &stats_.counter(pn + ".rx_bytes");
        ctr_rx_drops_ = &stats_.counter(pn + ".rx_fifo_drops");
    }
}

bool
TrafficSource::cut_push(const net::PacketPtr& p) {
    // Mirror of Fabric::mac_rx for the reassembler-free configuration the
    // decoupled install path enforces (reassemble() is then the identity).
    // Counters first — mac_rx counts every frame before admission.
    ctr_rx_frames_->add();
    ctr_rx_bytes_->add(p->size());
    p->in_iface = net::Iface(config_.port);
    const sim::Cycle t = now();
    // If the consumer has finished cycle t-1 (and is parked on our `done`
    // counter until we finish t), the snapshot is its exact committed
    // end-of-previous-cycle occupancy; adding our own undrained pushes
    // reproduces mac_rx's committed+staged admission byte-for-byte. When
    // free-running the same sum is a conservative upper bound, and
    // decoupled_runnable only opened this cycle with kFreeRunSlackBytes of
    // headroom under that bound, so the check can only pass — a drop here
    // would be a guess the barrier kernel might not have made.
    const bool synced = cut_->consumer_done() >= t;
    const sim::CutCredit c = cut_->credit_snapshot();
    const uint64_t outstanding = cut_pushed_bytes_ - c.drained_bytes;
    if (c.bytes + outstanding + p->size() > cut_fifo_bytes_) {
        if (!synced) {
            sim::panic("decoupled source " + name() +
                       " overran its free-run credit slack (bound " +
                       std::to_string(c.bytes + outstanding) + " + frame " +
                       std::to_string(p->size()) + " > cap " +
                       std::to_string(cut_fifo_bytes_) + ")");
        }
        ctr_rx_drops_->add();
        return false;
    }
    cut_pushed_bytes_ += p->size();
    cut_->push(t, p);
    return true;
}

TrafficSink::TrafficSink(sim::Kernel& kernel, sim::Stats& stats, std::string name)
    : kernel_(kernel),
      stats_(stats),
      name_(std::move(name)),
      ctr_frames_(&stats.counter(name_ + ".frames")),
      ctr_bytes_(&stats.counter(name_ + ".bytes")) {}

void
TrafficSink::deliver(const net::PacketPtr& pkt) {
    ++frames_;
    bytes_ += pkt->size();
    ++window_frames_;
    window_bytes_ += pkt->size();
    latency_.add(kernel_.now_ns() - pkt->tx_ns);
    if (kernel_.commit_compat()) {
        stats_.counter(name_ + ".frames").add();
        stats_.counter(name_ + ".bytes").add(pkt->size());
    } else {
        ctr_frames_->add();
        ctr_bytes_->add(pkt->size());
    }
}

void
TrafficSink::start_window() {
    window_frames_ = 0;
    window_bytes_ = 0;
    window_start_ = kernel_.now();
    latency_.reset();
}

double
TrafficSink::gbps_since(sim::Cycle from_cycle) const {
    sim::Cycle start = from_cycle ? from_cycle : window_start_;
    sim::Cycle elapsed = kernel_.now() - start;
    if (elapsed == 0) return 0.0;
    return double(window_bytes_) * 8.0 / (double(elapsed) / sim::kClockHz) / 1e9;
}

}  // namespace rosebud::dist
