#include "dist/fabric.h"

#include "sim/log.h"

namespace rosebud::dist {

namespace {

uint32_t
div_ceil(uint32_t a, uint32_t b) {
    return (a + b - 1) / b;
}

}  // namespace

Fabric::Fabric(sim::Kernel& kernel, sim::Stats& stats, const FabricConfig& config,
               lb::LoadBalancer& lb, std::vector<rpu::Rpu*> rpus)
    : sim::Component(kernel, "fabric"),
      config_(config),
      stats_(stats),
      lb_(lb),
      rpus_(std::move(rpus)),
      rpus_per_cluster_((config.rpu_count + config.clusters - 1) / config.clusters),
      voqs_(config.rpu_count * kSourceCount),
      rpu_rr_(config.rpu_count, 0),
      voq_pkts_rpu_(config.rpu_count, 0),
      egress_queues_(config.rpu_count),
      egress_staged_(config.rpu_count),
      egress_committed_(config.rpu_count, 0) {
    if (rpus_.size() != config.rpu_count) sim::fatal("Fabric: rpu vector size mismatch");
    for (unsigned p = 0; p < 2; ++p) {
        std::string pn = "port" + std::to_string(p);
        ctr_rx_frames_[p] = &stats.counter(pn + ".rx_frames");
        ctr_rx_bytes_[p] = &stats.counter(pn + ".rx_bytes");
        ctr_rx_drops_[p] = &stats.counter(pn + ".rx_fifo_drops");
        ctr_tx_frames_[p] = &stats.counter(pn + ".tx_frames");
        ctr_tx_bytes_[p] = &stats.counter(pn + ".tx_bytes");
    }
    ctr_voq_stall_ = &stats.counter("fabric.voq_stall");
    ctr_host_tx_frames_ = &stats.counter("host.tx_frames");
    ctr_host_rx_frames_ = &stats.counter("host.rx_frames");
    ctr_host_rx_bytes_ = &stats.counter("host.rx_bytes");
    ctr_host_tag_stall_ = &stats.counter("host.tag_stall");
    ctr_loopback_frames_ = &stats.counter("loopback.frames");
    ctr_loopback_bytes_ = &stats.counter("loopback.bytes");
    declare_netlist(kernel);
    // Occupancy probes on the abstract (non-sim::Fifo) queues, so the
    // health layer's backlog census and metrics gauges can read committed
    // occupancy on demand without a TelemetrySink attached. Same names as
    // report_occupancies() emits.
    for (unsigned s = 0; s < kSourceCount; ++s) {
        kernel.register_occupancy_probe(
            source_net(s), 0, this,
            [this, s] { return sources_[s].queue.size(); });
    }
    for (unsigned r = 0; r < config_.rpu_count; ++r) {
        for (unsigned s = 0; s < kSourceCount; ++s) {
            kernel.register_occupancy_probe(
                voq_net(uint8_t(r), s), config_.voq_depth, this,
                [this, r, s] { return voqs_[r * kSourceCount + s].size(); });
        }
        kernel.register_occupancy_probe(
            "fabric.egress.r" + std::to_string(r), config_.egress_queue_depth,
            this, [this, r] { return egress_queues_[r].size(); });
    }
    for (unsigned p = 0; p < 2; ++p) {
        kernel.register_occupancy_probe(
            "fabric.mac_tx.p" + std::to_string(p), 0, this,
            [this, p] { return mac_tx_[p].fifo.size(); });
    }
    kernel.register_occupancy_probe(
        "fabric.host_out", config_.pcie_tags, this,
        [this] { return size_t(pcie_tags_in_use_); });
}

void
Fabric::declare_netlist(sim::Kernel& kernel) {
    using sim::NetRecord;
    using sim::PortRecord;
    const unsigned kSw = 512;  // stage-1 switch datapath (64 B/cycle)

    // MAC-side FIFOs: depth in 512-bit words. The wire side is external.
    // mac_rx admission works on a committed+staged snapshot (see
    // IngressSource: admission cannot observe same-cycle pops), so its
    // credit return is registered — one cycle of provable lookahead on the
    // source->fabric feedback edge. mac_tx drains self-paced onto the line
    // (the sink never returns credit), so no feedback edge exists at all.
    for (unsigned p = 0; p < 2; ++p) {
        std::string rx = "fabric.mac_rx.p" + std::to_string(p);
        kernel.declare_net({rx, NetRecord::kFifo, kSw, config_.mac_rx_fifo_bytes / 64,
                            sim::kNetExternalSource, NetRecord::kCreditRegistered});
        kernel.declare_port({name(), rx, PortRecord::kRead, kSw, 0});
        std::string tx = "fabric.mac_tx.p" + std::to_string(p);
        kernel.declare_net({tx, NetRecord::kFifo, kSw, config_.mac_tx_fifo_bytes / 64,
                            sim::kNetExternalSink, NetRecord::kCreditNone});
        kernel.declare_port({name(), tx, PortRecord::kWrite, kSw,
                             config_.mac_tx_fifo_bytes / 64});
    }

    // Host (PCIe virtual Ethernet) and loopback share the ingress plane.
    // host_q shares the registered ingress admission; host_out is drained
    // by the PCIe DMA engine inside our own tick (tag credit is fabric-
    // internal accounting, not a reader-side return).
    kernel.declare_net({"fabric.host_q", NetRecord::kFifo, kSw, config_.host_queue_packets,
                        sim::kNetExternalSource, NetRecord::kCreditRegistered});
    kernel.declare_port({name(), "fabric.host_q", PortRecord::kRead, kSw, 0});
    kernel.declare_net({"fabric.host_out", NetRecord::kFifo, kSw, config_.pcie_tags,
                        sim::kNetExternalSink, NetRecord::kCreditNone});
    kernel.declare_port(
        {name(), "fabric.host_out", PortRecord::kWrite, kSw, config_.pcie_tags});
    kernel.declare_net(
        {"fabric.loopback_q", NetRecord::kFifo, kSw, config_.loopback_queue_packets, 0});
    kernel.declare_port({name(), "fabric.loopback_q", PortRecord::kWrite, kSw,
                         config_.loopback_queue_packets});
    kernel.declare_port({name(), "fabric.loopback_q", PortRecord::kRead, kSw, 0});

    for (unsigned r = 0; r < config_.rpu_count; ++r) {
        std::string rn = std::to_string(r);
        // Per-(RPU, source) virtual output queues inside the RX switches.
        for (unsigned s = 0; s < kSourceCount; ++s) {
            std::string v = "fabric.voq.r" + rn + ".s" + std::to_string(s);
            kernel.declare_net({v, NetRecord::kFifo, kSw, config_.voq_depth, 0});
            kernel.declare_port({name(), v, PortRecord::kWrite, kSw, config_.voq_depth});
            kernel.declare_port({name(), v, PortRecord::kRead, kSw, 0});
        }
        // Per-RPU egress queues: the RPU's TX engine writes, we arbitrate.
        // Admission checks committed+staged occupancy (never same-cycle
        // pops), so the RPU-facing credit return is registered.
        std::string e = "fabric.egress.r" + rn;
        kernel.declare_net({e, NetRecord::kFifo, 128, config_.egress_queue_depth, 0,
                            NetRecord::kCreditRegistered});
        kernel.declare_port(
            {rpus_[r]->name(), e, PortRecord::kWrite, 128, config_.egress_queue_depth});
        kernel.declare_port({name(), e, PortRecord::kRead, 128, 0});
        // We drive the 128-bit per-RPU ingress link the Rpu declared.
        kernel.declare_port({name(), rpus_[r]->name() + ".link_in", PortRecord::kWrite, 0, 0});
    }

    // The LB assignment interface (declared by LoadBalancer::attach).
    kernel.declare_port({name(), "lb.assign", PortRecord::kWrite, 64, 1});
}

bool
Fabric::mac_rx(unsigned port, net::PacketPtr pkt) {
    if (port > 1) sim::fatal("mac_rx: bad port");
    bool in_tick = kernel().in_tick();
    // Host-phase arrivals mutate sleeper-visible queues: settle the skipped
    // window first. (Tick-phase arrivals are staged; wake() accounts them.)
    if (!in_tick) flush_skipped();
    if (kernel().commit_compat()) {
        // Seed parity: the pre-fast-path code looked these counters up by a
        // freshly built string key on every frame (same at the other
        // per-packet counter sites below and in Rpu/TrafficSink).
        std::string pn = "port" + std::to_string(port);
        stats_.counter(pn + ".rx_frames").add();
        stats_.counter(pn + ".rx_bytes").add(pkt->size());
    } else {
        ctr_rx_frames_[port]->add();
        ctr_rx_bytes_[port]->add(pkt->size());
    }
    pkt->in_iface = net::Iface(port);

    // The hardware reassembler (when configured into the LB) sits before
    // the MAC FIFO logically: it may hold the packet or release several.
    std::vector<net::PacketPtr> released = lb_.reassemble(std::move(pkt));

    IngressSource& src = sources_[port];
    bool all_ok = true;
    bool admitted = false;
    for (auto& p : released) {
        uint64_t occupied = in_tick ? src.admit_bytes + src.staged_bytes : src.queue_bytes;
        if (occupied + p->size() > config_.mac_rx_fifo_bytes) {
            ctr_rx_drops_[port]->add();
            trace("mac_rx_fifo_drop", *p);
            if (kernel().telemetry())
                tel(source_net(port), sim::TelemetrySink::NetEvent::kPushBlocked);
            all_ok = false;
            continue;
        }
        trace("mac_rx", *p);
        if (kernel().telemetry())
            tel(source_net(port), sim::TelemetrySink::NetEvent::kPushOk);
        admitted = true;
        if (in_tick) {
            src.staged_bytes += p->size();
            src.staged.push_back(std::move(p));
        } else {
            src.queue_bytes += p->size();
            src.queue.push_back(std::move(p));
            src.admit_bytes = src.queue_bytes;
            src.admit_count = src.queue.size();
        }
    }
    if (admitted) {
        commit_dirty_.store(true, std::memory_order_relaxed);
        wake();
    }
    return all_ok;
}

bool
Fabric::host_inject(net::PacketPtr pkt) {
    IngressSource& src = sources_[kSrcHost];
    bool in_tick = kernel().in_tick();
    if (!in_tick) flush_skipped();
    size_t occupied = in_tick ? src.admit_count + src.staged.size() : src.queue.size();
    if (occupied >= config_.host_queue_packets) {
        tel("fabric.host_q", sim::TelemetrySink::NetEvent::kPushBlocked);
        return false;
    }
    tel("fabric.host_q", sim::TelemetrySink::NetEvent::kPushOk);
    pkt->in_iface = net::Iface::kHost;
    if (in_tick) {
        src.staged_bytes += pkt->size();
        src.staged.push_back(std::move(pkt));
    } else {
        src.queue_bytes += pkt->size();
        src.queue.push_back(std::move(pkt));
        src.admit_bytes = src.queue_bytes;
        src.admit_count = src.queue.size();
    }
    ctr_host_tx_frames_->add();
    commit_dirty_.store(true, std::memory_order_relaxed);
    wake();
    return true;
}

bool
Fabric::rpu_egress(uint8_t rpu, net::PacketPtr pkt) {
    // Name construction only when a sink is attached (tel() re-checks, but
    // the string argument would otherwise be built on every packet).
    const std::string enet = kernel().telemetry()
                                 ? "fabric.egress.r" + std::to_string(rpu)
                                 : std::string();
    if (!kernel().in_tick()) flush_skipped();
    if (kernel().in_tick()) {
        if (egress_committed_[rpu] + egress_staged_[rpu].size() >= config_.egress_queue_depth) {
            tel(enet, sim::TelemetrySink::NetEvent::kPushBlocked);
            return false;
        }
        trace("rpu_egress", *pkt);
        tel(enet, sim::TelemetrySink::NetEvent::kPushOk);
        egress_staged_[rpu].push_back({std::move(pkt), now() + 1});
        commit_dirty_.store(true, std::memory_order_relaxed);
        wake();
        return true;
    }
    auto& q = egress_queues_[rpu];
    if (q.size() >= config_.egress_queue_depth) {
        tel(enet, sim::TelemetrySink::NetEvent::kPushBlocked);
        return false;
    }
    tel(enet, sim::TelemetrySink::NetEvent::kPushOk);
    trace("rpu_egress", *pkt);
    q.push_back({std::move(pkt), now() + 1});
    ++egress_pkts_;
    unsigned dd = unsigned(q.back().pkt->out_iface);
    if (dd < kSourceCount) ++egress_pkts_dest_[dd];
    egress_committed_[rpu] = q.size();
    commit_dirty_.store(true, std::memory_order_relaxed);
    wake();
    return true;
}

bool
Fabric::quiescent() const {
    for (const IngressSource& src : sources_) {
        if (!src.queue.empty() || !src.staged.empty() || src.active ||
            src.stalled || src.issue_cd != 0) {
            return false;
        }
    }
    for (const auto& q : voqs_)
        if (!q.empty()) return false;
    for (const auto& q : egress_queues_)
        if (!q.empty()) return false;
    for (const auto& v : egress_staged_)
        if (!v.empty()) return false;
    for (const EgressDest& d : egress_)
        if (d.active || d.done) return false;
    for (const MacTx& m : mac_tx_)
        if (m.active || !m.fifo.empty()) return false;
    if (!host_out_.empty() || pcie_tags_in_use_ != 0 || loopback_.active)
        return false;
    // The PCIe byte credit is the only state that still evolves on an idle
    // tick; std::min clamps it to exactly 16 KiB, after which every tick
    // is the identity and sleeping is exact.
    return pcie_credit_ >= 16.0 * 1024;
}

void
Fabric::commit() {
    // Every path that stages a packet or mutates a committed queue (pop,
    // push, loopback re-entry) raises commit_dirty_; on untouched cycles
    // both integration loops below are identity refreshes and are skipped.
    if (!commit_dirty_.load(std::memory_order_relaxed) &&
        !kernel().commit_compat()) {
        if (kernel().telemetry()) report_occupancies();
        return;
    }
    commit_dirty_.store(false, std::memory_order_relaxed);
    for (unsigned s = 0; s < kSourceCount; ++s) {
        IngressSource& src = sources_[s];
        if (!src.staged.empty()) {
            for (auto& p : src.staged) {
                src.queue_bytes += p->size();
                src.queue.push_back(std::move(p));
            }
            src.staged.clear();
            src.staged_bytes = 0;
        }
        src.admit_bytes = src.queue_bytes;
        src.admit_count = src.queue.size();
    }
    for (unsigned r = 0; r < config_.rpu_count; ++r) {
        if (!egress_staged_[r].empty()) {
            egress_pkts_ += egress_staged_[r].size();
            for (auto& tp : egress_staged_[r]) {
                unsigned dd = unsigned(tp.pkt->out_iface);
                if (dd < kSourceCount) ++egress_pkts_dest_[dd];
                egress_queues_[r].push_back(std::move(tp));
            }
            egress_staged_[r].clear();
        }
        egress_committed_[r] = egress_queues_[r].size();
    }
    if (kernel().telemetry()) report_occupancies();
}

void
Fabric::report_occupancies() const {
    sim::TelemetrySink* t = kernel().telemetry();
    for (unsigned s = 0; s < kSourceCount; ++s) {
        t->net_occupancy(source_net(s), sources_[s].queue.size(), 0);
    }
    for (unsigned r = 0; r < config_.rpu_count; ++r) {
        for (unsigned s = 0; s < kSourceCount; ++s) {
            t->net_occupancy(voq_net(uint8_t(r), s),
                             voqs_[r * kSourceCount + s].size(), config_.voq_depth);
        }
        t->net_occupancy("fabric.egress.r" + std::to_string(r),
                         egress_queues_[r].size(), config_.egress_queue_depth);
    }
    for (unsigned p = 0; p < 2; ++p) {
        t->net_occupancy("fabric.mac_tx.p" + std::to_string(p), mac_tx_[p].fifo.size(), 0);
    }
    t->net_occupancy("fabric.host_out", pcie_tags_in_use_, config_.pcie_tags);
}

void
Fabric::set_mac_tx_sink(unsigned port, SinkFn fn) {
    mac_tx_[port].sink = std::move(fn);
}

void
Fabric::set_cut_rx_channel(unsigned port, sim::CutChannel<net::PacketPtr>* ch) {
    if (port > 1) sim::fatal("set_cut_rx_channel: bad port");
    cut_rx_[port] = ch;
}

void
Fabric::decoupled_begin_run() {
    for (unsigned p = 0; p < 2; ++p) {
        if (!cut_rx_[p]) continue;
        const IngressSource& src = sources_[p];
        cut_rx_[p]->publish_credit(src.queue_bytes, src.queue.size());
        cut_pub_bytes_[p] = src.queue_bytes;
        cut_pub_count_[p] = src.queue.size();
    }
}

void
Fabric::decoupled_end_cycle(sim::Cycle t) {
    // Mirror of mac_rx's host-phase arrival path: deliveries mutate
    // sleeper-visible queues, so settle the skipped window before the first
    // one, and wake afterwards so the next executed cycle ticks us.
    bool delivered = false;
    for (unsigned p = 0; p < 2; ++p) {
        sim::CutChannel<net::PacketPtr>* ch = cut_rx_[p];
        if (!ch) continue;
        IngressSource& src = sources_[p];
        sim::Cycle tag = 0;
        if (ch->earliest_pending(&tag) && tag <= t) {
            ch->drain_upto(t, [&](sim::Cycle, net::PacketPtr pkt) {
                if (!delivered) {
                    flush_skipped();
                    delivered = true;
                }
                src.queue_bytes += pkt->size();
                src.queue.push_back(std::move(pkt));
            });
        }
        // Refresh the registered admission snapshot when occupancy moved
        // (a drain above, or our own tick popping this cycle); the
        // producer reads this snapshot next cycle. Unchanged occupancy
        // republished would be byte-identical, so skipping the lock is
        // invisible.
        if (src.queue_bytes != cut_pub_bytes_[p] ||
            src.queue.size() != cut_pub_count_[p]) {
            src.admit_bytes = src.queue_bytes;
            src.admit_count = src.queue.size();
            ch->publish_credit(src.queue_bytes, src.queue.size());
            cut_pub_bytes_[p] = src.queue_bytes;
            cut_pub_count_[p] = src.queue.size();
        }
    }
    if (delivered) wake();
}

void
Fabric::set_host_sink(SinkFn fn) {
    host_sink_ = std::move(fn);
}

void
Fabric::tick() {
    const bool compat = kernel().commit_compat();
    for (unsigned s = 0; s < kSourceCount; ++s) {
        const IngressSource& src = sources_[s];
        if (!compat && src.issue_cd == 0 && !src.active && !src.stalled &&
            src.queue.empty()) {
            continue;
        }
        tick_ingress_source(s);
    }
    tick_rpu_links();
    tick_egress();
    tick_loopback();
    tick_mac_tx();

    // Host-bound packets: PCIe DMA with bounded bandwidth (byte credit
    // accrues at the link rate, saturating at 16 KiB) and a fixed latency
    // per transfer.
    if (pcie_credit_ < 16.0 * 1024) {
        pcie_credit_ = std::min(
            pcie_credit_ + config_.pcie_gbps * 1e9 / 8.0 / sim::kClockHz, 16.0 * 1024);
    }
    while (!host_out_.empty() && host_out_.front().ready <= now() &&
           pcie_credit_ >= double(host_out_.front().pkt->size())) {
        pcie_credit_ -= double(host_out_.front().pkt->size());
        --pcie_tags_in_use_;
        trace("host_deliver", *host_out_.front().pkt);
        if (host_sink_) host_sink_(host_out_.front().pkt);
        ctr_host_rx_frames_->add();
        ctr_host_rx_bytes_->add(host_out_.front().pkt->size());
        host_out_.pop_front();
    }
}

void
Fabric::tick_ingress_source(unsigned s) {
    IngressSource& src = sources_[s];

    if (src.issue_cd > 0) --src.issue_cd;

    // Retry a cut-through push that found its VOQ full.
    if (src.stalled) {
        auto& q = voq(src.stalled->dest_rpu, s);
        if (q.size() < config_.voq_depth) {
            if (kernel().telemetry())
                tel(voq_net(src.stalled->dest_rpu, s),
                    sim::TelemetrySink::NetEvent::kPushOk);
            q.push_back({src.stalled, now() + config_.ingress_pipe_cycles});
            ++voq_pkts_;
            ++voq_pkts_rpu_[src.stalled->dest_rpu];
            src.stalled.reset();
        } else {
            ctr_voq_stall_->add();
            if (kernel().telemetry())
                tel(voq_net(src.stalled->dest_rpu, s),
                    sim::TelemetrySink::NetEvent::kPushBlocked);
        }
    }

    // Advance the active stage-1 transfer (bandwidth accounting only: the
    // switch is cut-through, the packet was pushed downstream at start).
    if (src.active) {
        if (src.cycles_left > 0) --src.cycles_left;
        if (src.cycles_left > 0) return;
        src.active.reset();
    }

    if (src.issue_cd > 0 || src.stalled || src.queue.empty()) return;

    net::PacketPtr head = src.queue.front();
    // Loopback packets carry their destination already (the sending RPU
    // asked the LB for a remote slot); everything else goes to the LB.
    if (s != kSrcLoopback) {
        if (!lb_.try_assign(head)) return;  // wait: no eligible slot
        trace("lb_assign", *head);
    }
    src.queue.pop_front();
    src.queue_bytes -= head->size();
    commit_dirty_.store(true, std::memory_order_relaxed);
    if (kernel().telemetry())
        tel(source_net(s), sim::TelemetrySink::NetEvent::kPop);
    src.active = head;
    uint32_t bytes = head->size() + (head->hash_prepended ? 4 : 0);
    src.cycles_left = div_ceil(bytes, config_.stage1_bytes_per_cycle);
    src.issue_cd = config_.issue_interval_cycles;

    // Cut-through: hand the packet to the cluster VOQ now; it becomes
    // visible to the per-RPU link after the fixed distribution pipe.
    auto& q = voq(head->dest_rpu, s);
    if (q.size() < config_.voq_depth) {
        if (kernel().telemetry())
            tel(voq_net(head->dest_rpu, s), sim::TelemetrySink::NetEvent::kPushOk);
        q.push_back({head, now() + config_.ingress_pipe_cycles});
        ++voq_pkts_;
        ++voq_pkts_rpu_[head->dest_rpu];
    } else {
        if (kernel().telemetry())
            tel(voq_net(head->dest_rpu, s), sim::TelemetrySink::NetEvent::kPushBlocked);
        src.stalled = head;
    }
}

void
Fabric::tick_rpu_links() {
    const bool compat = kernel().commit_compat();
    if (voq_pkts_ == 0 && !compat) return;
    for (unsigned r = 0; r < config_.rpu_count; ++r) {
        if (voq_pkts_rpu_[r] == 0 && !compat) continue;
        rpu::Rpu* rpu = rpus_[r];
        if (!rpu->rx_ready()) continue;
        for (unsigned i = 0; i < kSourceCount; ++i) {
            unsigned s = (rpu_rr_[r] + i) % kSourceCount;
            auto& q = voq(uint8_t(r), s);
            if (q.empty() || q.front().ready > now()) continue;
            trace("rpu_link_dispatch", *q.front().pkt);
            if (kernel().telemetry()) {
                tel(voq_net(uint8_t(r), s), sim::TelemetrySink::NetEvent::kPop);
                tel(rpu->name() + ".link_in", sim::TelemetrySink::NetEvent::kPushOk);
            }
            rpu->begin_rx(q.front().pkt);
            q.pop_front();
            --voq_pkts_;
            --voq_pkts_rpu_[r];
            rpu_rr_[r] = (s + 1) % kSourceCount;
            break;
        }
    }
}

void
Fabric::tick_egress() {
    const bool compat = kernel().commit_compat();
    if (egress_pkts_ == 0 && !compat) {
        bool busy = false;
        for (const EgressDest& d : egress_)
            if (d.active || d.done) { busy = true; break; }
        if (!busy) return;
    }
    for (unsigned d = 0; d < kSourceCount; ++d) {
        EgressDest& dest = egress_[d];
        // Nothing queued for this destination and its serializer is idle:
        // the per-RPU scan below cannot pick anything, skip it.
        if (!compat && !dest.active && !dest.done && egress_pkts_dest_[d] == 0)
            continue;

        // Retry a cut-through handoff that found no downstream space.
        if (dest.done && try_egress_handoff(d, dest.done)) dest.done.reset();

        // Advance the active egress serialization (bandwidth accounting;
        // the switch is cut-through, the handoff happened at pick time).
        if (dest.active) {
            if (dest.cycles_left > 0) --dest.cycles_left;
            if (dest.cycles_left > 0) continue;
            dest.active.reset();
        }
        if (dest.done) continue;

        // Pick the next RPU egress queue with a packet for this destination.
        for (unsigned i = 0; i < config_.rpu_count; ++i) {
            unsigned r = (dest.rr + i) % config_.rpu_count;
            auto& q = egress_queues_[r];
            if (q.empty() || q.front().ready > now()) continue;
            if (unsigned(q.front().pkt->out_iface) != d) continue;
            dest.active = q.front().pkt;
            dest.cycles_left = div_ceil(dest.active->size(), config_.stage1_bytes_per_cycle);
            q.pop_front();
            --egress_pkts_;
            --egress_pkts_dest_[d];
            commit_dirty_.store(true, std::memory_order_relaxed);
            if (kernel().telemetry()) {
                tel("fabric.egress.r" + std::to_string(r),
                    sim::TelemetrySink::NetEvent::kPop);
            }
            dest.rr = (r + 1) % config_.rpu_count;
            if (!try_egress_handoff(d, dest.active)) dest.done = dest.active;
            break;
        }
    }
}

bool
Fabric::try_egress_handoff(unsigned d, const net::PacketPtr& p) {
    if (d <= 1) {
        MacTx& mac = mac_tx_[d];
        const std::string mnet =
            kernel().telemetry() ? "fabric.mac_tx.p" + std::to_string(d) : std::string();
        if (mac.fifo_bytes + p->size() > config_.mac_tx_fifo_bytes) {
            tel(mnet, sim::TelemetrySink::NetEvent::kPushBlocked);
            return false;
        }
        tel(mnet, sim::TelemetrySink::NetEvent::kPushOk);
        mac.fifo_bytes += p->size();
        mac.fifo.push_back({p, now() + config_.egress_pipe_cycles});
        return true;
    }
    if (d == kSrcHost) {
        // DMA-tag admission: each in-flight host transfer holds a tag.
        if (pcie_tags_in_use_ >= config_.pcie_tags) {
            ctr_host_tag_stall_->add();
            tel("fabric.host_out", sim::TelemetrySink::NetEvent::kPushBlocked);
            return false;
        }
        tel("fabric.host_out", sim::TelemetrySink::NetEvent::kPushOk);
        ++pcie_tags_in_use_;
        host_out_.push_back({p, now() + config_.pcie_latency_cycles});
        return true;
    }
    // Loopback: the single 100G channel with a per-packet routing header.
    IngressSource& lp = sources_[kSrcLoopback];
    if (loopback_.active || lp.queue.size() >= config_.loopback_queue_packets) {
        tel("fabric.loopback_q", sim::TelemetrySink::NetEvent::kPushBlocked);
        return false;
    }
    tel("fabric.loopback_q", sim::TelemetrySink::NetEvent::kPushOk);
    loopback_.active = p;
    uint32_t wire = p->size() + config_.loopback_header_bytes;
    uint32_t need = wire > loopback_.line_credit ? wire - loopback_.line_credit : 0;
    loopback_.cycles_left = std::max(1u, div_ceil(need, config_.line_bytes_per_cycle));
    loopback_.line_credit =
        loopback_.cycles_left * config_.line_bytes_per_cycle + loopback_.line_credit - wire;
    if (loopback_.line_credit > config_.line_bytes_per_cycle) {
        loopback_.line_credit = config_.line_bytes_per_cycle;
    }
    return true;
}

void
Fabric::tick_loopback() {
    if (!loopback_.active) return;
    if (loopback_.cycles_left > 0) --loopback_.cycles_left;
    if (loopback_.cycles_left == 0) {
        IngressSource& lp = sources_[kSrcLoopback];
        lp.queue_bytes += loopback_.active->size();
        lp.queue.push_back(loopback_.active);
        commit_dirty_.store(true, std::memory_order_relaxed);
        trace("loopback_reenter", *loopback_.active);
        ctr_loopback_frames_->add();
        ctr_loopback_bytes_->add(loopback_.active->size());
        loopback_.active.reset();
    }
}

void
Fabric::tick_mac_tx() {
    const bool compat = kernel().commit_compat();
    for (unsigned port = 0; port < 2; ++port) {
        MacTx& mac = mac_tx_[port];
        if (!compat && !mac.active && mac.fifo.empty()) continue;
        if (mac.active) {
            if (mac.cycles_left > 0) --mac.cycles_left;
            if (mac.cycles_left > 0) continue;
            if (compat) {
                std::string pn = "port" + std::to_string(port);
                stats_.counter(pn + ".tx_frames").add();
                stats_.counter(pn + ".tx_bytes").add(mac.active->size());
            } else {
                ctr_tx_frames_[port]->add();
                ctr_tx_bytes_[port]->add(mac.active->size());
            }
            trace("mac_tx", *mac.active);
            if (mac.sink) mac.sink(mac.active);
            mac.active.reset();
            // Fall through: the line is back-to-back at full rate.
        }
        if (!mac.fifo.empty() && mac.fifo.front().ready <= now()) {
            mac.active = mac.fifo.front().pkt;
            mac.fifo_bytes -= mac.active->size();
            mac.fifo.pop_front();
            if (kernel().telemetry()) {
                tel("fabric.mac_tx.p" + std::to_string(port),
                    sim::TelemetrySink::NetEvent::kPop);
            }
            // Bit-serial line: carry the fractional-cycle remainder so the
            // long-run rate is exactly line_bytes_per_cycle.
            uint32_t wire = mac.active->wire_size();
            uint32_t need = wire > mac.line_credit ? wire - mac.line_credit : 0;
            mac.cycles_left = std::max(1u, div_ceil(need, config_.line_bytes_per_cycle));
            mac.line_credit =
                mac.cycles_left * config_.line_bytes_per_cycle + mac.line_credit - wire;
            if (mac.line_credit > config_.line_bytes_per_cycle) {
                mac.line_credit = config_.line_bytes_per_cycle;
            }
        }
    }
}

sim::ResourceFootprint
Fabric::switching_resources() const {
    // Calibrated to the "Switching" rows of Tables 1-2: both unidirectional
    // planes scale with RPU count on top of a fixed port-side stage.
    uint64_t n = config_.rpu_count;
    return {.luts = 10570 + 4729 * n,
            .regs = 14126 + 6845 * n,
            .bram = 24 + 3 * n / 2,
            .uram = 4 * n};
}

sim::ResourceFootprint
Fabric::interconnect_resources() const {
    // "Single Interconnect" row: mildly larger per instance in smaller
    // configurations (wider per-RPU arbitration share).
    uint64_t n = config_.rpu_count;
    return {.luts = 3135 - 21 * n, .regs = 3147 - 12 * n};
}

}  // namespace rosebud::dist
