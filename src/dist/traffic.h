/// \file
/// Traffic endpoints standing in for the paper's tester FPGA.
///
/// TrafficSource paces frames onto one 100 Gbps wire (token bucket in line
/// bytes, including preamble/IFG/FCS overhead) and timestamps them at the
/// start of serialization, exactly like the paper's packet generator.
/// TrafficSink records delivered frames, bytes, and round-trip latency.
/// The source can optionally be capped at a packet rate to mirror the
/// tester's own generation limit below 128-byte frames (Section 6.1).

#ifndef ROSEBUD_DIST_TRAFFIC_H
#define ROSEBUD_DIST_TRAFFIC_H

#include <functional>
#include <memory>

#include "dist/fabric.h"
#include "net/packet.h"
#include "sim/kernel.h"
#include "sim/shard.h"
#include "sim/stats.h"

namespace rosebud::dist {

class TrafficSource : public sim::Component {
 public:
    struct Config {
        unsigned port = 0;
        double line_gbps = 100.0;
        double load = 1.0;          ///< fraction of line rate to offer
        double max_pps = 0.0;       ///< 0 = unlimited (tester generation cap)
        uint64_t max_packets = 0;   ///< 0 = unlimited
    };

    /// `gen` produces the next frame each time the wire frees up.
    using GenFn = std::function<net::PacketPtr()>;

    TrafficSource(sim::Kernel& kernel, sim::Stats& stats, const Config& config,
                  Fabric& fabric, GenFn gen);

    void tick() override;

    /// A capped source that has offered its last packet never acts again
    /// (tick is a no-op), so it can sleep for the rest of the run.
    bool quiescent() const override {
        return config_.max_packets != 0 && offered_ >= config_.max_packets;
    }

    /// Decoupled free-run gate: this shard may execute local cycle `t`
    /// without a rendezvous as long as the worst-case occupancy bound
    /// (consumer's committed snapshot + our not-yet-drained pushes) leaves
    /// at least one tick's worth of slack below the MAC RX FIFO capacity.
    /// When the consumer has already completed cycle t-1 the snapshot is
    /// exact and lockstep admission applies, so the gate is always open.
    bool decoupled_runnable(sim::Cycle t) const override;

    /// Cycles this source can provably spend accumulating tokens without
    /// emitting (conservative: two cycles under the analytic first-emission
    /// point, so float replay can never cross the threshold early).
    sim::Cycle decoupled_lookahead() const override;

    /// Bit-exact replay of `n` non-emitting ticks (the token additions the
    /// barrier kernel would have performed, in the same order — never
    /// summarized as tokens + n*rate, which differs in floating point).
    void decoupled_advance(sim::Cycle n) override;

    uint64_t offered() const { return offered_; }
    uint64_t dropped_at_mac() const { return dropped_; }

    /// Decoupled-mode endpoint (DESIGN.md §16): while a decoupled run is
    /// in flight, frames go through this latency-tagged channel instead of
    /// the direct mac_rx call. The admission mirror is exact: the
    /// channel's credit snapshot is the fabric's committed end-of-
    /// previous-cycle occupancy, and this source is the port's only
    /// writer, so adding its own same-cycle pushes reproduces mac_rx's
    /// committed+staged check byte-for-byte. Requires the hardware
    /// reassembler to be off (the System install path enforces this).
    /// Null detaches; barrier runs always use the direct call.
    void set_cut_channel(sim::CutChannel<net::PacketPtr>* ch,
                         uint64_t mac_rx_fifo_bytes);

 private:
    bool cut_push(const net::PacketPtr& p);

    Config config_;
    sim::Stats& stats_;
    Fabric& fabric_;
    GenFn gen_;
    double tokens_ = 0.0;
    double bytes_per_cycle_;
    double pps_tokens_ = 0.0;
    double pps_per_cycle_;
    net::PacketPtr staged_;
    uint64_t offered_ = 0;
    uint64_t dropped_ = 0;

    /// Free-run admission slack: decoupled_runnable only opens a cycle when
    /// the worst-case bound leaves this much FIFO headroom, and one tick can
    /// push at most 2 wire-sizes + one cycle's tokens (~19 KB at jumbo), so
    /// the in-tick admission check can never be forced to guess.
    static constexpr uint64_t kFreeRunSlackBytes = 32 * 1024;

    sim::CutChannel<net::PacketPtr>* cut_ = nullptr;
    uint64_t cut_fifo_bytes_ = 0;
    uint64_t cut_pushed_bytes_ = 0;  ///< cumulative bytes pushed into the cut
    sim::Counter* ctr_rx_frames_ = nullptr;
    sim::Counter* ctr_rx_bytes_ = nullptr;
    sim::Counter* ctr_rx_drops_ = nullptr;
};

/// Records what comes back to the tester.
class TrafficSink {
 public:
    TrafficSink(sim::Kernel& kernel, sim::Stats& stats, std::string name);

    /// Wire as a Fabric MAC TX sink.
    void deliver(const net::PacketPtr& pkt);

    uint64_t frames() const { return frames_; }
    uint64_t bytes() const { return bytes_; }
    uint64_t window_frames() const { return window_frames_; }
    uint64_t window_bytes() const { return window_bytes_; }

    /// Average delivered goodput over [from_cycle, now].
    double gbps_since(sim::Cycle from_cycle) const;

    /// Mark the start of the measurement window (drops warm-up counts).
    void start_window();

    sim::Sampler& latency() { return latency_; }

 private:
    sim::Kernel& kernel_;
    sim::Stats& stats_;
    std::string name_;
    sim::Counter* ctr_frames_;
    sim::Counter* ctr_bytes_;
    uint64_t frames_ = 0;
    uint64_t bytes_ = 0;
    uint64_t window_frames_ = 0;
    uint64_t window_bytes_ = 0;
    sim::Cycle window_start_ = 0;
    sim::Sampler latency_;
};

}  // namespace rosebud::dist

#endif  // ROSEBUD_DIST_TRAFFIC_H
