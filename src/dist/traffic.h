/// \file
/// Traffic endpoints standing in for the paper's tester FPGA.
///
/// TrafficSource paces frames onto one 100 Gbps wire (token bucket in line
/// bytes, including preamble/IFG/FCS overhead) and timestamps them at the
/// start of serialization, exactly like the paper's packet generator.
/// TrafficSink records delivered frames, bytes, and round-trip latency.
/// The source can optionally be capped at a packet rate to mirror the
/// tester's own generation limit below 128-byte frames (Section 6.1).

#ifndef ROSEBUD_DIST_TRAFFIC_H
#define ROSEBUD_DIST_TRAFFIC_H

#include <functional>
#include <memory>

#include "dist/fabric.h"
#include "net/packet.h"
#include "sim/kernel.h"
#include "sim/stats.h"

namespace rosebud::dist {

class TrafficSource : public sim::Component {
 public:
    struct Config {
        unsigned port = 0;
        double line_gbps = 100.0;
        double load = 1.0;          ///< fraction of line rate to offer
        double max_pps = 0.0;       ///< 0 = unlimited (tester generation cap)
        uint64_t max_packets = 0;   ///< 0 = unlimited
    };

    /// `gen` produces the next frame each time the wire frees up.
    using GenFn = std::function<net::PacketPtr()>;

    TrafficSource(sim::Kernel& kernel, sim::Stats& stats, const Config& config,
                  Fabric& fabric, GenFn gen);

    void tick() override;

    /// A capped source that has offered its last packet never acts again
    /// (tick is a no-op), so it can sleep for the rest of the run.
    bool quiescent() const override {
        return config_.max_packets != 0 && offered_ >= config_.max_packets;
    }

    uint64_t offered() const { return offered_; }
    uint64_t dropped_at_mac() const { return dropped_; }

 private:
    Config config_;
    sim::Stats& stats_;
    Fabric& fabric_;
    GenFn gen_;
    double tokens_ = 0.0;
    double bytes_per_cycle_;
    double pps_tokens_ = 0.0;
    double pps_per_cycle_;
    net::PacketPtr staged_;
    uint64_t offered_ = 0;
    uint64_t dropped_ = 0;
};

/// Records what comes back to the tester.
class TrafficSink {
 public:
    TrafficSink(sim::Kernel& kernel, sim::Stats& stats, std::string name);

    /// Wire as a Fabric MAC TX sink.
    void deliver(const net::PacketPtr& pkt);

    uint64_t frames() const { return frames_; }
    uint64_t bytes() const { return bytes_; }
    uint64_t window_frames() const { return window_frames_; }
    uint64_t window_bytes() const { return window_bytes_; }

    /// Average delivered goodput over [from_cycle, now].
    double gbps_since(sim::Cycle from_cycle) const;

    /// Mark the start of the measurement window (drops warm-up counts).
    void start_window();

    sim::Sampler& latency() { return latency_; }

 private:
    sim::Kernel& kernel_;
    sim::Stats& stats_;
    std::string name_;
    sim::Counter* ctr_frames_;
    sim::Counter* ctr_bytes_;
    uint64_t frames_ = 0;
    uint64_t bytes_ = 0;
    uint64_t window_frames_ = 0;
    uint64_t window_bytes_ = 0;
    sim::Cycle window_start_ = 0;
    sim::Sampler latency_;
};

}  // namespace rosebud::dist

#endif  // ROSEBUD_DIST_TRAFFIC_H
