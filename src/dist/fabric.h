/// \file
/// The packet-distribution subsystem (paper Section 4.3, Figure 4a).
///
/// One Fabric instance models everything between the wire and the RPUs:
///
///   MAC RX FIFOs -> LB assignment -> stage-1 512-bit switches (one per
///   RPU cluster, per-input virtual output queues, round-robin output
///   arbitration) -> 128-bit per-RPU links (serialized inside the Rpu) ...
///   ... RPU egress queues -> egress cluster switches -> per-destination
///   512-bit serializers -> MAC TX FIFOs -> the wire,
///
/// plus the two low-rate interfaces that share this infrastructure: host
/// DRAM (PCIe virtual Ethernet) and the single-100G loopback channel used
/// for RPU-to-RPU packet messaging (Section 4.4). RX and TX are separate
/// unidirectional switch planes, as in the paper.
///
/// Widths at 250 MHz: MAC line 50 B/cycle (100 Gbps), stage-1 switches
/// 64 B/cycle (512 bit = 128 Gbps), per-RPU links 16 B/cycle (32 Gbps).
/// The per-source issue interval (2 cycles) models the paper's 125 MPPS
/// per-incoming-port distribution limit.

#ifndef ROSEBUD_DIST_FABRIC_H
#define ROSEBUD_DIST_FABRIC_H

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "lb/load_balancer.h"
#include "net/packet.h"
#include "rpu/rpu.h"
#include "sim/kernel.h"
#include "sim/resources.h"
#include "sim/shard.h"
#include "sim/stats.h"

namespace rosebud::dist {

/// Ingress/egress endpoints sharing the distribution infrastructure.
enum Source : unsigned {
    kSrcPort0 = 0,
    kSrcPort1 = 1,
    kSrcHost = 2,
    kSrcLoopback = 3,
    kSourceCount = 4,
};

struct FabricConfig {
    unsigned rpu_count = 16;
    unsigned clusters = 4;
    uint32_t line_bytes_per_cycle = 50;    ///< 100 Gbps MAC at 250 MHz
    uint32_t stage1_bytes_per_cycle = 64;  ///< 512-bit cluster switches
    uint32_t mac_rx_fifo_bytes = 256 * 1024;
    uint32_t mac_tx_fifo_bytes = 64 * 1024;
    unsigned voq_depth = 8;          ///< packets per (source, RPU) virtual queue
    unsigned egress_queue_depth = 4; ///< packets buffered per RPU on egress
    unsigned issue_interval_cycles = 2;  ///< per-source LB issue pacing
    unsigned ingress_pipe_cycles = 86;   ///< fixed pipe: MAC+LB+switch hops
    unsigned egress_pipe_cycles = 85;    ///< fixed pipe on the way out
    uint32_t loopback_header_bytes = 8;  ///< per-packet destination header
    unsigned host_queue_packets = 1024;
    unsigned loopback_queue_packets = 64;
    /// Host-DRAM channel over PCIe Gen3 x16 (paper Section 4.2: host
    /// transfers are packetized with DRAM tags): effective bandwidth and
    /// the number of outstanding-transfer tags.
    double pcie_gbps = 100.0;
    unsigned pcie_tags = 64;
    unsigned pcie_latency_cycles = 250;  ///< ~1 us each way
};

class Fabric : public sim::Component {
 public:
    using SinkFn = std::function<void(net::PacketPtr)>;

    Fabric(sim::Kernel& kernel, sim::Stats& stats, const FabricConfig& config,
           lb::LoadBalancer& lb, std::vector<rpu::Rpu*> rpus);

    /// A frame finished arriving on `port`'s wire. Returns false when the
    /// MAC RX FIFO overflowed (frame dropped and counted). Calls arriving
    /// during another component's tick are staged and integrated at the
    /// clock edge; admission then uses registered credit (the queue's
    /// end-of-previous-cycle occupancy plus what was staged this cycle),
    /// so the outcome is independent of component tick order.
    bool mac_rx(unsigned port, net::PacketPtr pkt);

    /// Host-originated packet (virtual Ethernet over PCIe).
    bool host_inject(net::PacketPtr pkt);

    /// Egress from RPU `rpu` (wired as the Rpu's egress handler).
    /// Returns false to backpressure the RPU's TX engine. Tick-phase
    /// calls are staged like mac_rx (see above).
    bool rpu_egress(uint8_t rpu, net::PacketPtr pkt);

    /// Frames leaving on a physical port arrive here (tester side).
    void set_mac_tx_sink(unsigned port, SinkFn fn);

    // --- time-decoupled execution (DESIGN.md §16) ---------------------------

    /// Attach the latency-tagged channel replacing direct mac_rx calls on
    /// `port` while a decoupled run is in flight (the certified
    /// fabric.mac_rx.pN cut). The producer (TrafficSource) pushes into the
    /// channel; our end-of-cycle hook integrates and returns credit.
    void set_cut_rx_channel(unsigned port, sim::CutChannel<net::PacketPtr>* ch);

    /// Seed each attached channel's credit snapshot from the committed
    /// queues; wired as the fabric shard's begin hook (runs serially
    /// before the shard threads start).
    void decoupled_begin_run();

    /// Fabric-shard end-of-cycle hook for local cycle `t`: runs after our
    /// commit and after every producer shard has finished cycle `t`.
    /// Integrates channel entries pushed at or before `t` directly into
    /// the committed MAC RX queues (exactly what the barrier kernel's
    /// commit would have integrated from tick-phase staging this cycle)
    /// and publishes the registered-credit snapshot the producers read
    /// from cycle `t + 1` on.
    void decoupled_end_cycle(sim::Cycle t);

    /// Packets addressed to the host (port 2).
    void set_host_sink(SinkFn fn);

    void tick() override;

    /// Clock edge: integrate tick-phase arrivals (mac_rx / host_inject /
    /// rpu_egress staged by other components) into the ingress and egress
    /// queues and refresh the registered admission credit.
    void commit() override;

    /// The fabric can sleep when every queue, serializer and staged buffer
    /// on both planes is empty and the PCIe byte credit has saturated (the
    /// only time-varying state left). External arrivals (mac_rx /
    /// host_inject / rpu_egress) wake it.
    bool quiescent() const override;

    /// Optional per-packet observation hook for the debugging tooling
    /// (core/tracer.h): fired at every stage boundary a packet crosses.
    using TraceFn = std::function<void(const char* event, const net::Packet& pkt)>;
    void set_trace(TraceFn fn) { trace_ = std::move(fn); }

    /// The "Switching" row of Tables 1-2 (both switch planes + FIFOs).
    sim::ResourceFootprint switching_resources() const;

    /// Per-RPU interconnect footprint ("Single Interconnect" row).
    sim::ResourceFootprint interconnect_resources() const;

    const FabricConfig& config() const { return config_; }

 private:
    struct TimedPkt {
        net::PacketPtr pkt;
        sim::Cycle ready = 0;
    };

    struct IngressSource {
        std::deque<net::PacketPtr> queue;
        uint64_t queue_bytes = 0;
        unsigned issue_cd = 0;
        // Stage-1 serializer state.
        net::PacketPtr active;
        uint32_t cycles_left = 0;
        // Completed transfer waiting for VOQ space.
        net::PacketPtr stalled;
        // Registered-credit admission: occupancy snapshot taken at the last
        // clock edge plus packets staged during the current tick. Tick-phase
        // producers admit against these, never against the live queue, so
        // admission cannot observe same-cycle pops (order independence).
        uint64_t admit_bytes = 0;
        size_t admit_count = 0;
        std::vector<net::PacketPtr> staged;
        uint64_t staged_bytes = 0;
    };

    struct EgressDest {
        net::PacketPtr active;
        uint32_t cycles_left = 0;
        net::PacketPtr done;  ///< waiting for downstream space
        unsigned rr = 0;
    };

    struct MacTx {
        std::deque<TimedPkt> fifo;
        uint64_t fifo_bytes = 0;
        net::PacketPtr active;
        uint32_t cycles_left = 0;
        uint32_t line_credit = 0;  ///< fractional-cycle carry (bit-serial line)
        SinkFn sink;
    };

    unsigned cluster_of(uint8_t rpu) const { return rpu / rpus_per_cluster_; }
    std::deque<TimedPkt>& voq(uint8_t rpu, unsigned source) {
        return voqs_[rpu * kSourceCount + source];
    }
    // Telemetry taps on the abstract (non-sim::Fifo) links; one pointer
    // compare when no sink is attached.
    void tel(const std::string& net, sim::TelemetrySink::NetEvent ev) const {
        if (sim::TelemetrySink* t = kernel().telemetry()) t->net_event(net, ev);
    }
    static std::string voq_net(uint8_t rpu, unsigned source) {
        return "fabric.voq.r" + std::to_string(rpu) + ".s" + std::to_string(source);
    }
    static std::string source_net(unsigned s) {
        if (s == kSrcHost) return "fabric.host_q";
        if (s == kSrcLoopback) return "fabric.loopback_q";
        return "fabric.mac_rx.p" + std::to_string(s);
    }
    void report_occupancies() const;
    void tick_ingress_source(unsigned s);
    void tick_rpu_links();
    void tick_egress();
    bool try_egress_handoff(unsigned d, const net::PacketPtr& p);
    void tick_mac_tx();
    void tick_loopback();
    void declare_netlist(sim::Kernel& kernel);

    FabricConfig config_;
    sim::Stats& stats_;
    lb::LoadBalancer& lb_;
    std::vector<rpu::Rpu*> rpus_;
    unsigned rpus_per_cluster_;

    // Per-packet counters resolved once at construction (Stats handles are
    // node-stable); the tick path must not do string-keyed map lookups.
    sim::Counter* ctr_rx_frames_[2];
    sim::Counter* ctr_rx_bytes_[2];
    sim::Counter* ctr_rx_drops_[2];
    sim::Counter* ctr_tx_frames_[2];
    sim::Counter* ctr_tx_bytes_[2];
    sim::Counter* ctr_voq_stall_;
    sim::Counter* ctr_host_tx_frames_;
    sim::Counter* ctr_host_rx_frames_;
    sim::Counter* ctr_host_rx_bytes_;
    sim::Counter* ctr_host_tag_stall_;
    sim::Counter* ctr_loopback_frames_;
    sim::Counter* ctr_loopback_bytes_;

    IngressSource sources_[kSourceCount];
    std::vector<std::deque<TimedPkt>> voqs_;  ///< [rpu][source]
    std::vector<unsigned> rpu_rr_;            ///< per-RPU source arbitration
    size_t voq_pkts_ = 0;     ///< total packets across all VOQs (scan guard)
    std::vector<uint32_t> voq_pkts_rpu_;  ///< per-RPU VOQ packets (scan guard)
    size_t egress_pkts_ = 0;  ///< total packets across egress queues
    uint32_t egress_pkts_dest_[kSourceCount] = {0, 0, 0, 0};  ///< per destination
    /// Set by any queue mutation whose effect commit() must integrate or
    /// re-snapshot; atomic because producers (traffic sources, RPU TX
    /// engines) may run on pool threads under the parallel executor.
    std::atomic<bool> commit_dirty_{false};

    std::vector<std::deque<TimedPkt>> egress_queues_;  ///< per RPU
    EgressDest egress_[kSourceCount];                  ///< per destination
    /// Registered egress credit, mirroring IngressSource's admission state.
    std::vector<std::vector<TimedPkt>> egress_staged_;  ///< per RPU
    std::vector<size_t> egress_committed_;              ///< per RPU

    /// Decoupled-mode ingress channels (null outside decoupled runs).
    sim::CutChannel<net::PacketPtr>* cut_rx_[2] = {nullptr, nullptr};
    /// Last credit snapshot published per port — lets the end-of-cycle hook
    /// skip the channel lock entirely when occupancy did not change.
    uint64_t cut_pub_bytes_[2] = {0, 0};
    uint64_t cut_pub_count_[2] = {0, 0};

    MacTx mac_tx_[2];
    std::deque<TimedPkt> host_out_;
    SinkFn host_sink_;
    double pcie_credit_ = 0.0;      ///< byte credit for the host channel
    unsigned pcie_tags_in_use_ = 0; ///< outstanding DMA transfers

    // Loopback channel drain (single 100G port with per-packet header).
    struct {
        net::PacketPtr active;
        uint32_t cycles_left = 0;
        uint32_t line_credit = 0;
    } loopback_;

    TraceFn trace_;
    void trace(const char* event, const net::Packet& pkt) {
        if (trace_) trace_(event, pkt);
    }
};

}  // namespace rosebud::dist

#endif  // ROSEBUD_DIST_FABRIC_H
