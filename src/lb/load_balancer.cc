#include "lb/load_balancer.h"

#include <algorithm>

#include "sim/log.h"

namespace rosebud::lb {

LoadBalancer::LoadBalancer(sim::Stats& stats, const Config& config)
    : stats_(stats),
      config_(config),
      free_slots_(config.rpu_count),
      recv_mask_(config.rpu_count >= 32 ? ~0u : (1u << config.rpu_count) - 1),
      enable_mask_(config.rpu_count >= 32 ? ~0u : (1u << config.rpu_count) - 1) {
    if (config.rpu_count == 0 || config.rpu_count > 32) {
        sim::fatal("LoadBalancer: rpu_count must be in [1,32]");
    }
    ctr_assign_stall_ = &stats.counter("lb.assign_stall");
    ctr_assigned_ = &stats.counter("lb.assigned");
    ctr_assigned_rpu_.reserve(config.rpu_count);
    for (unsigned r = 0; r < config.rpu_count; ++r) {
        ctr_assigned_rpu_.push_back(
            &stats.counter("lb.assigned.rpu" + std::to_string(r)));
    }
    ctr_reasm_held_ = &stats.counter("lb.reassembler.held");
    ctr_reasm_overflow_ = &stats.counter("lb.reassembler.overflow");
    ctr_reasm_stale_ = &stats.counter("lb.reassembler.stale");
}

void
LoadBalancer::attach(sim::Kernel& kernel) {
    kernel_ = &kernel;
    adapter_ = std::make_unique<CommitAdapter>(*this);
    kernel.add_clocked(adapter_.get());

    // Elaborate the LB's control channels: a 64-bit request lane per RPU
    // (slot frees / configs / remote-slot requests), a response lane back,
    // and the assignment interface the fabric queries.
    using sim::NetRecord;
    using sim::PortRecord;
    for (unsigned r = 0; r < config_.rpu_count; ++r) {
        std::string rpu = "rpu" + std::to_string(r);
        std::string ctrl = "lb.ctrl.r" + std::to_string(r);
        std::string resp = "lb.resp.r" + std::to_string(r);
        kernel.declare_net({ctrl, NetRecord::kLink, 64, 1, 0});
        kernel.declare_port({"lb", ctrl, PortRecord::kRead, 64, 1});
        kernel.declare_net({resp, NetRecord::kLink, 64, 1, 0});
        kernel.declare_port({"lb", resp, PortRecord::kWrite, 64, 1});
    }
    kernel.declare_net({"lb.assign", NetRecord::kLink, 64, 1, 0});
    kernel.declare_port({"lb", "lb.assign", PortRecord::kRead, 64, 1});
}

void
LoadBalancer::on_slot_config(uint8_t rpu, const rpu::SlotConfig& cfg) {
    if (rpu >= config_.rpu_count) return;
    if (staging()) {
        std::lock_guard<std::mutex> lock(mu_);
        staged_configs_.emplace_back(rpu, cfg);
        return;
    }
    free_slots_[rpu].clear();
    for (uint32_t s = 1; s <= cfg.count; ++s) free_slots_[rpu].push_back(uint8_t(s));
}

void
LoadBalancer::on_slot_free(uint8_t rpu, uint8_t slot) {
    if (rpu >= config_.rpu_count) return;
    if (staging()) {
        std::lock_guard<std::mutex> lock(mu_);
        staged_frees_.emplace_back(rpu, slot);
        return;
    }
    free_slots_[rpu].push_back(slot);
}

std::optional<uint8_t>
LoadBalancer::request_slot(uint8_t dst_rpu) {
    if (dst_rpu >= config_.rpu_count || free_slots_[dst_rpu].empty()) return std::nullopt;
    uint8_t s = free_slots_[dst_rpu].front();
    free_slots_[dst_rpu].pop_front();
    return s;
}

void
LoadBalancer::request_slot_routed(uint8_t requester, uint8_t dst_rpu) {
    if (staging()) {
        std::lock_guard<std::mutex> lock(mu_);
        staged_requests_.emplace_back(requester, dst_rpu);
        return;
    }
    if (slot_response_) slot_response_(requester, dst_rpu, request_slot(dst_rpu));
}

void
LoadBalancer::commit_staged() {
    std::lock_guard<std::mutex> lock(mu_);
    if (staged_configs_.empty() && staged_frees_.empty() && staged_requests_.empty()) {
        return;
    }
    // Deterministic application order regardless of which component ticked
    // first (or on which pool thread): configs by RPU, then frees sorted by
    // (RPU, slot), then requests by requester id. Sorting makes the applied
    // order a function of the staged *set*, never of arrival order.
    std::stable_sort(staged_configs_.begin(), staged_configs_.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [rpu, cfg] : staged_configs_) {
        free_slots_[rpu].clear();
        for (uint32_t s = 1; s <= cfg.count; ++s) free_slots_[rpu].push_back(uint8_t(s));
    }
    staged_configs_.clear();
    std::stable_sort(staged_frees_.begin(), staged_frees_.end());
    for (const auto& [rpu, slot] : staged_frees_) free_slots_[rpu].push_back(slot);
    staged_frees_.clear();
    std::stable_sort(staged_requests_.begin(), staged_requests_.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [requester, dst] : staged_requests_) {
        if (slot_response_) slot_response_(requester, dst, request_slot(dst));
    }
    staged_requests_.clear();
}

uint8_t
LoadBalancer::pick_rr(uint32_t eligible) {
    for (unsigned i = 0; i < config_.rpu_count; ++i) {
        unsigned r = (rr_next_ + i) % config_.rpu_count;
        if ((eligible >> r & 1) && (recv_mask_ >> r & 1) && (enable_mask_ >> r & 1) &&
            !free_slots_[r].empty()) {
            rr_next_ = (r + 1) % config_.rpu_count;
            return uint8_t(r);
        }
    }
    return 0xff;
}

std::optional<uint8_t>
LoadBalancer::pick_for(const net::PacketPtr& pkt, uint32_t hash) {
    switch (config_.policy) {
    case Policy::kRoundRobin: {
        uint8_t r = pick_rr(~0u);
        if (r == 0xff) return std::nullopt;
        return r;
    }
    case Policy::kCustom: {
        if (!config_.custom_steer) return std::nullopt;
        uint8_t r = pick_rr(config_.custom_steer(*pkt));
        if (r == 0xff) return std::nullopt;
        return r;
    }
    case Policy::kHash: {
        // Steer by the low bits of the flow hash among *receiving* RPUs.
        std::vector<uint8_t> eligible;
        for (unsigned r = 0; r < config_.rpu_count; ++r) {
            if ((recv_mask_ >> r & 1) && (enable_mask_ >> r & 1)) eligible.push_back(uint8_t(r));
        }
        if (eligible.empty()) return std::nullopt;
        uint8_t r = eligible[hash % eligible.size()];
        // Flow affinity is strict: if the flow's RPU has no free slot the
        // packet must wait (it cannot spill to another RPU).
        if (free_slots_[r].empty()) return std::nullopt;
        return r;
    }
    case Policy::kLeastLoaded: {
        int best = -1;
        size_t best_free = 0;
        for (unsigned r = 0; r < config_.rpu_count; ++r) {
            if (!(recv_mask_ >> r & 1) || !(enable_mask_ >> r & 1)) continue;
            if (free_slots_[r].size() > best_free) {
                best_free = free_slots_[r].size();
                best = int(r);
            }
        }
        if (best < 0) return std::nullopt;
        (void)pkt;
        return uint8_t(best);
    }
    }
    return std::nullopt;
}

bool
LoadBalancer::try_assign(const net::PacketPtr& pkt) {
    uint32_t hash = 0;
    if (config_.policy == Policy::kHash) hash = net::packet_flow_hash(*pkt);

    auto rpu = pick_for(pkt, hash);
    if (!rpu) {
        ctr_assign_stall_->add();
        if (kernel_) {
            if (sim::TelemetrySink* t = kernel_->telemetry()) {
                t->net_event("lb.assign", sim::TelemetrySink::NetEvent::kPushBlocked);
            }
        }
        return false;
    }
    if (kernel_) {
        if (sim::TelemetrySink* t = kernel_->telemetry()) {
            t->net_event("lb.assign", sim::TelemetrySink::NetEvent::kPushOk);
        }
    }

    uint8_t slot = free_slots_[*rpu].front();
    free_slots_[*rpu].pop_front();
    pkt->dest_rpu = *rpu;
    pkt->dest_slot = slot;
    if (config_.policy == Policy::kHash) {
        pkt->lb_hash = hash;
        pkt->hash_prepended = true;
    }
    ctr_assigned_->add();
    ctr_assigned_rpu_[*rpu]->add();
    return true;
}

std::vector<net::PacketPtr>
LoadBalancer::reassemble(net::PacketPtr pkt) {
    if (!config_.reassembler) return {std::move(pkt)};

    auto parsed = net::parse_packet(*pkt);
    if (!parsed || !parsed->has_tcp) return {std::move(pkt)};

    // Traffic sources on different ports may reach this from different
    // pool threads; the flow table is shared. Per-flow behavior does not
    // depend on cross-flow arrival order, so the lock is determinism-safe.
    std::lock_guard<std::mutex> lock(mu_);
    net::FiveTuple key = net::extract_five_tuple(*parsed);
    FlowRecord& rec = flows_[key];
    uint64_t seq = parsed->tcp.seq;
    uint64_t advance = parsed->payload_len;

    if (!rec.seen) {
        rec.seen = true;
        rec.next_seq = seq + advance;
        return {std::move(pkt)};
    }

    std::vector<net::PacketPtr> out;
    if (seq == rec.next_seq) {
        rec.next_seq = seq + advance;
        out.push_back(std::move(pkt));
        // Drain any held packets that are now in order.
        bool progressed = true;
        while (progressed) {
            progressed = false;
            for (size_t i = 0; i < rec.held.size(); ++i) {
                auto held_parsed = net::parse_packet(*rec.held[i]);
                if (held_parsed && held_parsed->tcp.seq == rec.next_seq) {
                    rec.next_seq += held_parsed->payload_len;
                    out.push_back(std::move(rec.held[i]));
                    rec.held.erase(rec.held.begin() + long(i));
                    progressed = true;
                    break;
                }
            }
        }
        return out;
    }

    if (seq > rec.next_seq) {
        if (rec.held.size() < config_.reorder_buffer) {
            ctr_reasm_held_->add();
            rec.held.push_back(std::move(pkt));
            return {};
        }
        // Buffer exhausted: give up on ordering, flush everything.
        ctr_reasm_overflow_->add();
        out = std::move(rec.held);
        rec.held.clear();
        out.push_back(std::move(pkt));
        rec.next_seq = seq + advance;
        return out;
    }

    // Old/duplicate segment: pass through unchanged.
    ctr_reasm_stale_->add();
    return {std::move(pkt)};
}

void
LoadBalancer::host_write(uint32_t addr, uint32_t value) {
    switch (addr) {
    case kLbRegRecvMask: recv_mask_ = value; break;
    case kLbRegEnableMask: enable_mask_ = value; break;
    case kLbRegFlushRpu:
        if (value < config_.rpu_count) free_slots_[value].clear();
        break;
    default:
        break;
    }
}

uint32_t
LoadBalancer::host_read(uint32_t addr) const {
    if (addr == kLbRegRecvMask) return recv_mask_;
    if (addr == kLbRegEnableMask) return enable_mask_;
    if (addr == kLbRegPolicy) return uint32_t(config_.policy);
    if (addr >= kLbRegFreeSlotsBase) {
        uint32_t idx = (addr - kLbRegFreeSlotsBase) / 4;
        if (idx < config_.rpu_count) return uint32_t(free_slots_[idx].size());
    }
    return 0;
}

uint32_t
LoadBalancer::free_slots(uint8_t rpu) const {
    return rpu < config_.rpu_count ? uint32_t(free_slots_[rpu].size()) : 0;
}

sim::ResourceFootprint
LoadBalancer::resources() const {
    // Calibrated to Tables 1-3: RR LB is 8221/22503 at 16 RPUs and
    // 7580/22076 at 8; the hash LB (Table 3) adds the inline CRC engine
    // and packet prepend datapath, the reassembler a flow-state BRAM.
    uint64_t n = config_.rpu_count;
    sim::ResourceFootprint fp{.luts = 6939 + 80 * n, .regs = 21649 + 53 * n};
    if (config_.policy == Policy::kHash) {
        fp += sim::ResourceFootprint{.luts = 2887, .regs = 2796, .bram = 26};
    }
    if (config_.reassembler) {
        fp += sim::ResourceFootprint{.luts = 3900, .regs = 5200, .bram = 24};
    }
    return fp;
}

}  // namespace rosebud::lb
