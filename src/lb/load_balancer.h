/// \file
/// The customizable packet load balancer (paper Section 4.2).
///
/// The LB owns the only global state of the data plane: which packet slots
/// are free in which RPU. Firmware announces its slot layout at boot
/// (init_slots), the LB hands out (RPU, slot) labels to arriving packets
/// according to a policy, and RPU interconnects return freed slots after
/// transmission — the "central part / distributed part" control split the
/// paper describes.
///
/// Three policies are provided (the paper's examples):
///  * round-robin       — rotate over enabled RPUs with a free slot;
///  * hash              — CRC32C flow hash, steered by its low bits, with
///                        the 4-byte hash prepended to the packet (the
///                        Pigasus SW-reorder case study);
///  * least-loaded      — pick the enabled RPU with most free slots.
///
/// The hash LB can optionally include the inline *reassembler* accelerator
/// (the paper's HW-reorder configuration models it inside the LB): it
/// restores TCP flow order before packets reach the RPUs, so firmware
/// keeps no flow state.
///
/// A 30-bit host read/write channel configures the LB at runtime: receive
/// and enable masks, slot flushing before reconfiguration, and status
/// counters (free slots per RPU) for freeze/starvation detection.

#ifndef ROSEBUD_LB_LOAD_BALANCER_H
#define ROSEBUD_LB_LOAD_BALANCER_H

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/flow.h"
#include "net/packet.h"
#include "rpu/rpu.h"
#include "sim/kernel.h"
#include "sim/resources.h"
#include "sim/stats.h"

namespace rosebud::lb {

enum class Policy {
    kRoundRobin,
    kHash,
    kLeastLoaded,
    /// User-supplied steering (paper Section 4.2: "a policy designed
    /// specifically for their target middlebox application", and the
    /// Conclusion's cloud-sharing scenario where the provider's LB pins
    /// tenants to RPU subsets). The custom function returns a mask of
    /// eligible RPUs per packet; round-robin applies within the mask.
    kCustom,
};

/// Host-channel register addresses (30-bit space, paper Section 4.2).
enum LbReg : uint32_t {
    kLbRegRecvMask = 0x0,    ///< RW: RPUs eligible for incoming traffic
    kLbRegEnableMask = 0x4,  ///< RW: RPUs enabled at all
    kLbRegFlushRpu = 0x8,    ///< W: drop the free-slot list of RPU <value>
    kLbRegPolicy = 0xc,      ///< R: active policy id
    /// R: free-slot count of RPU i at kLbRegFreeSlotsBase + 4*i.
    kLbRegFreeSlotsBase = 0x100,
};

class LoadBalancer {
 public:
    struct Config {
        unsigned rpu_count = 16;
        Policy policy = Policy::kRoundRobin;
        /// Per-ingress-source minimum packet interval in cycles; 2 cycles
        /// at 250 MHz is the paper's 125 MPPS per-port distribution limit.
        unsigned issue_interval_cycles = 2;
        /// Inline hardware reassembler (flow reordering fixed in the LB).
        bool reassembler = false;
        /// Reassembler: max buffered out-of-order packets per flow.
        unsigned reorder_buffer = 32;
        /// Steering function for Policy::kCustom: packet -> eligible-RPU
        /// mask (0 = defer; the packet waits at the head of its FIFO).
        std::function<uint32_t(const net::Packet&)> custom_steer;
    };

    LoadBalancer(sim::Stats& stats, const Config& config);

    /// Clock the LB's control channels: RPU-side slot frees, slot configs
    /// and remote-slot requests arriving during a tick are staged and
    /// applied at the clock edge in a deterministic order (configs, then
    /// frees, then requests sorted by requester), so the free-slot state
    /// does not depend on component tick order. Unattached (standalone
    /// tests), every call applies immediately. Also declares the LB's
    /// control nets in the elaboration netlist.
    void attach(sim::Kernel& kernel);

    // --- data-plane interface (called by the distribution fabric) -----------

    /// Try to label `pkt` with a destination RPU and slot. Returns false
    /// when no eligible RPU has a free slot (the packet waits at the head
    /// of its ingress FIFO). On success the packet may also get the flow
    /// hash prepended (hash policy).
    bool try_assign(const net::PacketPtr& pkt);

    /// Reassembler stage in front of assignment. Returns the packets
    /// releasable *now* in flow order (usually {pkt}; possibly empty if
    /// pkt is buffered; possibly several if pkt filled a gap).
    std::vector<net::PacketPtr> reassemble(net::PacketPtr pkt);

    // --- RPU control-channel callbacks --------------------------------------

    void on_slot_config(uint8_t rpu, const rpu::SlotConfig& cfg);
    void on_slot_free(uint8_t rpu, uint8_t slot);

    /// Loopback support: an RPU asks for a slot in a specific other RPU.
    /// Immediate form, used standalone and by the host tooling.
    std::optional<uint8_t> request_slot(uint8_t dst_rpu);

    /// Routed form used by the System wiring: the answer is delivered via
    /// the slot-response handler (at this LB's commit when attached).
    void request_slot_routed(uint8_t requester, uint8_t dst_rpu);

    /// Response channel back to the requesting RPU.
    using SlotResponseFn =
        std::function<void(uint8_t requester, uint8_t dst_rpu, std::optional<uint8_t> slot)>;
    void set_slot_response_handler(SlotResponseFn fn) { slot_response_ = std::move(fn); }

    // --- host configuration channel ------------------------------------------

    void host_write(uint32_t addr, uint32_t value);
    uint32_t host_read(uint32_t addr) const;

    // --- introspection ---------------------------------------------------------

    uint32_t free_slots(uint8_t rpu) const;
    uint32_t recv_mask() const { return recv_mask_; }
    const Config& config() const { return config_; }

    /// Footprint calibrated to the paper's LB rows (Tables 1-3); the hash
    /// policy adds the inline hash engine, the reassembler its flow table.
    sim::ResourceFootprint resources() const;

 private:
    uint8_t pick_rr(uint32_t eligible);
    std::optional<uint8_t> pick_for(const net::PacketPtr& pkt, uint32_t hash);
    bool staging() const { return kernel_ && kernel_->in_tick(); }
    void commit_staged();

    /// Clock-edge adapter registering the LB with the kernel on attach().
    struct CommitAdapter : sim::Clocked {
        explicit CommitAdapter(LoadBalancer& lb) : lb(lb) {}
        void commit() override { lb.commit_staged(); }
        LoadBalancer& lb;
    };

    sim::Stats& stats_;
    Config config_;
    sim::Kernel* kernel_ = nullptr;
    std::unique_ptr<CommitAdapter> adapter_;
    SlotResponseFn slot_response_;

    // Hot-path counters resolved once at construction.
    sim::Counter* ctr_assign_stall_;
    sim::Counter* ctr_assigned_;
    std::vector<sim::Counter*> ctr_assigned_rpu_;
    sim::Counter* ctr_reasm_held_;
    sim::Counter* ctr_reasm_overflow_;
    sim::Counter* ctr_reasm_stale_;

    /// Serializes tick-phase staging (RPU control callbacks) and the
    /// reassembler flow table (mac_rx runs from multiple traffic sources
    /// under the parallel tick executor). The staged vectors are applied
    /// in a sorted, arrival-order-independent order at the clock edge, so
    /// the lock only guards memory, not determinism.
    mutable std::mutex mu_;

    // Control-channel traffic staged during the tick phase.
    std::vector<std::pair<uint8_t, rpu::SlotConfig>> staged_configs_;
    std::vector<std::pair<uint8_t, uint8_t>> staged_frees_;     ///< (rpu, slot)
    std::vector<std::pair<uint8_t, uint8_t>> staged_requests_;  ///< (requester, dst)
    std::vector<std::deque<uint8_t>> free_slots_;
    uint32_t recv_mask_;
    uint32_t enable_mask_;
    unsigned rr_next_ = 0;

    // Reassembler state (per flow): next expected TCP sequence + held
    // out-of-order packets.
    struct FlowRecord {
        bool seen = false;
        uint64_t next_seq = 0;  ///< ground-truth flow_seq ordering
        std::vector<net::PacketPtr> held;
    };
    std::unordered_map<net::FiveTuple, FlowRecord> flows_;
};

}  // namespace rosebud::lb

#endif  // ROSEBUD_LB_LOAD_BALANCER_H
