/// \file
/// Synchronous, two-phase simulation kernel.
///
/// Rosebud's hardware is a fully synchronous 250 MHz design; the kernel
/// mirrors RTL semantics: every cycle, each registered Component runs its
/// combinational/compute phase (`tick`) against the *previous* cycle's
/// visible state, then every Clocked element commits its staged updates
/// (`commit`). Inter-component communication happens exclusively through
/// registered primitives (sim::Fifo, sim::Reg), which makes results
/// independent of component iteration order.

#ifndef ROSEBUD_SIM_KERNEL_H
#define ROSEBUD_SIM_KERNEL_H

#include <cstdint>
#include <string>
#include <vector>

namespace rosebud::sim {

/// Simulation time in clock cycles.
using Cycle = uint64_t;

/// Fabric clock of the reference implementation (paper Section 5).
inline constexpr double kClockHz = 250e6;

/// Nanoseconds per fabric clock cycle (4 ns at 250 MHz).
inline constexpr double kNsPerCycle = 1e9 / kClockHz;

/// Convert a cycle count to nanoseconds of simulated time.
inline constexpr double cycles_to_ns(Cycle c) { return double(c) * kNsPerCycle; }

/// Convert a cycle count to microseconds of simulated time.
inline constexpr double cycles_to_us(Cycle c) { return double(c) * kNsPerCycle / 1e3; }

/// Convert a cycle count to seconds of simulated time.
inline constexpr double cycles_to_s(Cycle c) { return double(c) / kClockHz; }

/// Anything with per-cycle staged state that must become visible at the
/// clock edge. Fifos, registers, and components all implement this.
class Clocked {
 public:
    virtual ~Clocked() = default;

    /// Make updates staged during the current cycle visible to readers.
    virtual void commit() = 0;
};

class Kernel;

/// A hardware block with per-cycle behaviour.
///
/// Components register themselves with a Kernel at construction and are
/// ticked once per simulated cycle. All outputs must go through registered
/// primitives so that `tick` order does not matter.
class Component : public Clocked {
 public:
    Component(Kernel& kernel, std::string name);
    ~Component() override = default;

    Component(const Component&) = delete;
    Component& operator=(const Component&) = delete;

    /// Compute phase: observe committed state, stage updates.
    virtual void tick() = 0;

    /// Commit phase. Most components keep all state in registered
    /// primitives and need no custom commit.
    void commit() override {}

    /// Hierarchical instance name, e.g. "dut.rpu3.interconnect".
    const std::string& name() const { return name_; }

    /// The kernel this component is clocked by.
    Kernel& kernel() const { return kernel_; }

 protected:
    /// Current simulation time, for convenience in subclasses.
    Cycle now() const;

 private:
    Kernel& kernel_;
    std::string name_;
};

/// The clock driver: owns the component/clocked registries and advances
/// simulated time. Not thread safe; one kernel per simulated system.
class Kernel {
 public:
    Kernel() = default;
    Kernel(const Kernel&) = delete;
    Kernel& operator=(const Kernel&) = delete;

    /// Register a component (called from Component's constructor).
    void add_component(Component* c) { components_.push_back(c); }

    /// Register a non-component clocked element (Fifo, Reg, ...).
    void add_clocked(Clocked* c) { clocked_.push_back(c); }

    /// Advance the simulation by exactly one clock cycle.
    void step();

    /// Advance the simulation by `cycles` clock cycles.
    void run(Cycle cycles);

    /// Run until `pred()` returns true or `max_cycles` elapse.
    /// Returns true if the predicate fired.
    template <typename Pred>
    bool run_until(Pred&& pred, Cycle max_cycles) {
        for (Cycle i = 0; i < max_cycles; ++i) {
            if (pred()) return true;
            step();
        }
        return pred();
    }

    /// Current simulation time in cycles since reset.
    Cycle now() const { return now_; }

    /// Current simulation time in nanoseconds.
    double now_ns() const { return cycles_to_ns(now_); }

    /// Number of registered components.
    size_t component_count() const { return components_.size(); }

 private:
    std::vector<Component*> components_;
    std::vector<Clocked*> clocked_;
    Cycle now_ = 0;
};

inline Cycle Component::now() const { return kernel_.now(); }

}  // namespace rosebud::sim

#endif  // ROSEBUD_SIM_KERNEL_H
