/// \file
/// Synchronous, two-phase simulation kernel.
///
/// Rosebud's hardware is a fully synchronous 250 MHz design; the kernel
/// mirrors RTL semantics: every cycle, each registered Component runs its
/// combinational/compute phase (`tick`) against the *previous* cycle's
/// visible state, then every Clocked element commits its staged updates
/// (`commit`). Inter-component communication happens exclusively through
/// registered primitives (sim::Fifo, sim::Reg), which makes results
/// independent of component iteration order.
///
/// That independence is machine-checked rather than assumed:
///  * the kernel tracks which component is ticking and whether the clock is
///    in the tick or commit phase, so the primitives can fault when two
///    components stage into the same element in one cycle (the dynamic
///    race detector, see sim/fifo.h);
///  * `shuffle_tick_order` permutes the component iteration order under a
///    seed, so a test can assert bit-identical runs across orders;
///  * every primitive and abstract inter-component link is recorded in a
///    netlist (nets + directed ports) that the static checker in
///    src/lint/ validates before cycle 0.

#ifndef ROSEBUD_SIM_KERNEL_H
#define ROSEBUD_SIM_KERNEL_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/telemetry.h"

namespace rosebud::sim {

/// Simulation time in clock cycles.
using Cycle = uint64_t;

/// Fabric clock of the reference implementation (paper Section 5).
inline constexpr double kClockHz = 250e6;

/// Nanoseconds per fabric clock cycle (4 ns at 250 MHz).
inline constexpr double kNsPerCycle = 1e9 / kClockHz;

/// Convert a cycle count to nanoseconds of simulated time.
inline constexpr double cycles_to_ns(Cycle c) { return double(c) * kNsPerCycle; }

/// Convert a cycle count to microseconds of simulated time.
inline constexpr double cycles_to_us(Cycle c) { return double(c) * kNsPerCycle / 1e3; }

/// Convert a cycle count to seconds of simulated time.
inline constexpr double cycles_to_s(Cycle c) { return double(c) / kClockHz; }

/// Anything with per-cycle staged state that must become visible at the
/// clock edge. Fifos, registers, and components all implement this.
class Clocked {
 public:
    virtual ~Clocked() = default;

    /// Make updates staged during the current cycle visible to readers.
    virtual void commit() = 0;
};

class Kernel;

// --- elaboration netlist -----------------------------------------------------

/// Behaviour flags on a net (see lint::check_netlist for how each check
/// consumes them).
enum NetFlag : unsigned {
    /// Written by the outside world (e.g. the MAC RX wire): a missing
    /// writer port is not a violation.
    kNetExternalSource = 1u << 0,
    /// Drained by the outside world (the wire, the host): a missing reader
    /// port is not a violation.
    kNetExternalSink = 1u << 1,
    /// Fan-in with declared arbitration is allowed (> 1 writer component).
    kNetMultiWriter = 1u << 2,
    /// Fan-out is allowed (> 1 reader component, e.g. broadcast delivery).
    kNetMultiReader = 1u << 3,
};

/// One registered communication element: a Fifo/Reg primitive or an
/// abstract credit-based link (a callback boundary that behaves like a
/// 1-deep registered channel). Primitives self-declare at construction;
/// abstract links are declared by the component or wiring code that owns
/// them.
struct NetRecord {
    enum Kind : uint8_t { kFifo, kReg, kLink };

    std::string name;        ///< unique instance name, e.g. "rpu3.rx_fifo"
    Kind kind = kFifo;
    unsigned width_bits = 0; ///< datapath width (0 = unspecified)
    size_t depth = 0;        ///< entries (fifo capacity; 1 for reg/link)
    unsigned flags = 0;      ///< NetFlag bits
};

/// A directed endpoint: `component` writes to / reads from `net`.
/// `width_bits`/`depth` are the producer/consumer-side expectations; when
/// nonzero they must match the net (credit counters sized against a
/// different FIFO depth are exactly the class of RTL bug this catches).
struct PortRecord {
    enum Dir : uint8_t { kWrite, kRead };

    std::string component;
    std::string net;
    Dir dir = kWrite;
    unsigned width_bits = 0;  ///< 0 = unspecified (inherits the net's)
    size_t depth = 0;         ///< 0 = unspecified
};

/// A hardware block with per-cycle behaviour.
///
/// Components register themselves with a Kernel at construction and are
/// ticked once per simulated cycle. All outputs must go through registered
/// primitives so that `tick` order does not matter.
class Component : public Clocked {
 public:
    Component(Kernel& kernel, std::string name);
    ~Component() override = default;

    Component(const Component&) = delete;
    Component& operator=(const Component&) = delete;

    /// Compute phase: observe committed state, stage updates.
    virtual void tick() = 0;

    /// Commit phase. Most components keep all state in registered
    /// primitives and need no custom commit.
    void commit() override {}

    /// Hierarchical instance name, e.g. "dut.rpu3.interconnect".
    const std::string& name() const { return name_; }

    /// The kernel this component is clocked by.
    Kernel& kernel() const { return kernel_; }

 protected:
    /// Current simulation time, for convenience in subclasses.
    Cycle now() const;

 private:
    Kernel& kernel_;
    std::string name_;
};

/// The clock driver: owns the component/clocked registries and advances
/// simulated time. Not thread safe; one kernel per simulated system.
class Kernel {
 public:
    /// Where the clock currently stands within Kernel::step().
    enum class Phase : uint8_t { kIdle, kTick, kCommit };

    Kernel() = default;
    Kernel(const Kernel&) = delete;
    Kernel& operator=(const Kernel&) = delete;

    /// Register a component (called from Component's constructor).
    void add_component(Component* c) { components_.push_back(c); }

    /// Register a non-component clocked element (Fifo, Reg, ...).
    void add_clocked(Clocked* c) { clocked_.push_back(c); }

    /// Advance the simulation by exactly one clock cycle.
    void step();

    /// Advance the simulation by `cycles` clock cycles.
    void run(Cycle cycles);

    /// Run until `pred()` returns true or `max_cycles` elapse.
    /// Returns true if the predicate fired.
    template <typename Pred>
    bool run_until(Pred&& pred, Cycle max_cycles) {
        for (Cycle i = 0; i < max_cycles; ++i) {
            if (pred()) return true;
            step();
        }
        return pred();
    }

    /// Current simulation time in cycles since reset.
    Cycle now() const { return now_; }

    /// Current simulation time in nanoseconds.
    double now_ns() const { return cycles_to_ns(now_); }

    /// Number of registered components.
    size_t component_count() const { return components_.size(); }

    // --- phase/actor tracking (race detector substrate) ---------------------

    /// Where the clock stands right now.
    Phase phase() const { return phase_; }

    /// True while some component's tick() is on the stack.
    bool in_tick() const { return phase_ == Phase::kTick; }

    /// The component whose tick()/commit() is currently running (null
    /// between steps, i.e. for host/test code).
    const Component* active_component() const { return active_; }

    /// Enable/disable the dynamic same-cycle race checks in Fifo/Reg.
    /// On by default: the checks are a handful of integer compares.
    void set_race_check(bool on) { race_check_ = on; }
    bool race_check() const { return race_check_; }

    // --- telemetry ------------------------------------------------------------

    /// Attach/detach the observability sink (obs::Telemetry). Null (the
    /// default) disables all event emission; the caller owns the sink and
    /// must detach (or outlive the kernel) before it dies. Events flow from
    /// the registered primitives and instrumented components; end_cycle
    /// fires once per step after all commits.
    void set_telemetry(TelemetrySink* sink) { telemetry_ = sink; }
    TelemetrySink* telemetry() const { return telemetry_; }

    // --- tick-order shuffling -------------------------------------------------

    /// Deterministically permute the component tick order under `seed`.
    /// Because all inter-component state flows through registered
    /// primitives, any permutation must produce a bit-identical run; the
    /// determinism tests assert exactly that. Components registered after
    /// the shuffle are appended in registration order. Commit order is
    /// left untouched (commits are mutually independent by construction).
    void shuffle_tick_order(uint64_t seed);

    /// Current tick order, for diagnostics.
    std::vector<std::string> tick_order() const;

    // --- elaboration netlist ---------------------------------------------------

    /// Record a net. Re-declaring the same name replaces the record (a
    /// reconfigured accelerator re-elaborates its nets).
    void declare_net(NetRecord net);

    /// Record a directed port. Exact duplicates are dropped.
    void declare_port(PortRecord port);

    const std::vector<NetRecord>& nets() const { return nets_; }
    const std::vector<PortRecord>& ports() const { return ports_; }

    /// Hook run once, immediately before the first step(). System installs
    /// the static lint pass here so that everything constructed up front —
    /// including traffic sources added after the System — is elaborated
    /// and checked before cycle 0.
    void set_prestep_hook(std::function<void(Kernel&)> fn) {
        prestep_hook_ = std::move(fn);
    }

 private:
    std::vector<Component*> components_;
    std::vector<Clocked*> clocked_;
    Cycle now_ = 0;

    Phase phase_ = Phase::kIdle;
    const Component* active_ = nullptr;
    bool race_check_ = true;
    TelemetrySink* telemetry_ = nullptr;

    std::vector<NetRecord> nets_;
    std::vector<PortRecord> ports_;
    std::function<void(Kernel&)> prestep_hook_;
    bool prestep_done_ = false;
};

inline Cycle Component::now() const { return kernel_.now(); }

}  // namespace rosebud::sim

#endif  // ROSEBUD_SIM_KERNEL_H
