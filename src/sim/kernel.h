/// \file
/// Synchronous, two-phase simulation kernel.
///
/// Rosebud's hardware is a fully synchronous 250 MHz design; the kernel
/// mirrors RTL semantics: every cycle, each registered Component runs its
/// combinational/compute phase (`tick`) against the *previous* cycle's
/// visible state, then every Clocked element commits its staged updates
/// (`commit`). Inter-component communication happens exclusively through
/// registered primitives (sim::Fifo, sim::Reg), which makes results
/// independent of component iteration order.
///
/// That independence is machine-checked rather than assumed:
///  * the kernel tracks which component is ticking and whether the clock is
///    in the tick or commit phase, so the primitives can fault when two
///    components stage into the same element in one cycle (the dynamic
///    race detector, see sim/fifo.h);
///  * `shuffle_tick_order` permutes the component iteration order under a
///    seed, so a test can assert bit-identical runs across orders;
///  * every primitive and abstract inter-component link is recorded in a
///    netlist (nets + directed ports) that the static checker in
///    src/lint/ validates before cycle 0.
///
/// Host-speed machinery (DESIGN.md §11):
///  * **Quiescence skipping** — a component may override `quiescent()` to
///    report that, absent new input, its tick()/commit() have no observable
///    effect. The kernel keeps an active set; sleeping components are not
///    ticked. Wake edges derived from the elaboration netlist (plus
///    explicit `wake()` calls on direct-call boundaries) re-activate a
///    consumer the moment a producer stages input for it. When *every*
///    component is asleep the run loop fast-forwards the cycle counter in
///    one step. Skipping is exact by construction and is automatically
///    disabled while a TelemetrySink is attached (per-cycle event streams
///    must see every cycle).
///  * **Parallel tick execution** — `set_parallel_ticks(N)` partitions the
///    tick phase across a small persistent thread pool; commits stay
///    serial. Legal because the race detector enforces that ticks only
///    read registered (committed) state, so tick order — and therefore
///    tick concurrency — cannot be observed. Automatically falls back to
///    serial while race checking is enabled (the detector needs a single
///    attributable actor) or a TelemetrySink is attached (deterministic
///    event order).

#ifndef ROSEBUD_SIM_KERNEL_H
#define ROSEBUD_SIM_KERNEL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sim/telemetry.h"

namespace rosebud::sim {

/// Simulation time in clock cycles.
using Cycle = uint64_t;

/// Fabric clock of the reference implementation (paper Section 5).
inline constexpr double kClockHz = 250e6;

/// Nanoseconds per fabric clock cycle (4 ns at 250 MHz).
inline constexpr double kNsPerCycle = 1e9 / kClockHz;

/// Convert a cycle count to nanoseconds of simulated time.
inline constexpr double cycles_to_ns(Cycle c) { return double(c) * kNsPerCycle; }

/// Convert a cycle count to microseconds of simulated time.
inline constexpr double cycles_to_us(Cycle c) { return double(c) * kNsPerCycle / 1e3; }

/// Convert a cycle count to seconds of simulated time.
inline constexpr double cycles_to_s(Cycle c) { return double(c) / kClockHz; }

/// Anything with per-cycle staged state that must become visible at the
/// clock edge. Fifos, registers, and components all implement this.
class Clocked {
 public:
    virtual ~Clocked() = default;

    /// Make updates staged during the current cycle visible to readers.
    virtual void commit() = 0;

 private:
    friend class Kernel;
    /// Set while this element sits in the kernel's lazy-commit queue
    /// (see Kernel::add_clocked / request_commit).
    std::atomic<bool> commit_queued_{false};
};

class Kernel;
struct ShardSpec;  // sim/shard.h: time-decoupled execution (DESIGN.md §16)

// --- elaboration netlist -----------------------------------------------------

/// Behaviour flags on a net (see lint::check_netlist for how each check
/// consumes them).
enum NetFlag : unsigned {
    /// Written by the outside world (e.g. the MAC RX wire): a missing
    /// writer port is not a violation.
    kNetExternalSource = 1u << 0,
    /// Drained by the outside world (the wire, the host): a missing reader
    /// port is not a violation.
    kNetExternalSink = 1u << 1,
    /// Fan-in with declared arbitration is allowed (> 1 writer component).
    kNetMultiWriter = 1u << 2,
    /// Fan-out is allowed (> 1 reader component, e.g. broadcast delivery).
    kNetMultiReader = 1u << 3,
};

/// One registered communication element: a Fifo/Reg primitive or an
/// abstract credit-based link (a callback boundary that behaves like a
/// 1-deep registered channel). Primitives self-declare at construction;
/// abstract links are declared by the component or wiring code that owns
/// them.
struct NetRecord {
    enum Kind : uint8_t { kFifo, kReg, kLink };

    /// Credit-return discipline the writer observes, declared so the
    /// shard-cut certifier (lint/shard.h) can prove reverse-edge latency:
    /// a registered credit return means a reader-side pop at cycle N is
    /// first visible to the writer's admission check at N+1 (one cycle of
    /// lookahead on the reader->writer feedback edge), while a skid-buffer
    /// credit is combinational (zero latency). kCreditNone states the
    /// writer never observes reader-side credit at all (self-paced drains
    /// such as the MAC TX line), so no feedback edge exists.
    enum CreditKind : uint8_t { kCreditNone, kCreditSkid, kCreditRegistered };

    std::string name;        ///< unique instance name, e.g. "rpu3.rx_fifo"
    Kind kind = kFifo;
    unsigned width_bits = 0; ///< datapath width (0 = unspecified)
    size_t depth = 0;        ///< entries (fifo capacity; 1 for reg/link)
    unsigned flags = 0;      ///< NetFlag bits
    /// Conservative default: an unspecified credit path is assumed
    /// combinational, which can only under-state lookahead, never claim it.
    CreditKind credit = kCreditSkid;
};

/// A directed endpoint: `component` writes to / reads from `net`.
/// `width_bits`/`depth` are the producer/consumer-side expectations; when
/// nonzero they must match the net (credit counters sized against a
/// different FIFO depth are exactly the class of RTL bug this catches).
struct PortRecord {
    enum Dir : uint8_t { kWrite, kRead };

    std::string component;
    std::string net;
    Dir dir = kWrite;
    unsigned width_bits = 0;  ///< 0 = unspecified (inherits the net's)
    size_t depth = 0;         ///< 0 = unspecified
};

/// A hardware block with per-cycle behaviour.
///
/// Components register themselves with a Kernel at construction and are
/// ticked once per simulated cycle. All outputs must go through registered
/// primitives so that `tick` order does not matter.
class Component : public Clocked {
 public:
    Component(Kernel& kernel, std::string name);
    ~Component() override = default;

    Component(const Component&) = delete;
    Component& operator=(const Component&) = delete;

    /// Compute phase: observe committed state, stage updates.
    virtual void tick() = 0;

    /// Commit phase. Most components keep all state in registered
    /// primitives and need no custom commit.
    void commit() override {}

    /// Conservative idle report, polled by the kernel after each commit
    /// when idle skipping is enabled. Return true only if — given no new
    /// input — this component's tick() and commit() can have no observable
    /// effect on any cycle until an input arrives. Inputs of a sleeping
    /// component must be sim::Fifo pushes (which wake it through the
    /// netlist wake edges) or direct calls instrumented with wake().
    /// The default keeps the component permanently active.
    virtual bool quiescent() const { return false; }

    /// Re-activate this component. Idempotent and thread safe (callable
    /// from a concurrent tick partition). A wake issued during the tick
    /// phase takes effect on the *next* cycle — registered semantics: the
    /// sleeper could not have observed the producer's staged output this
    /// cycle anyway — which keeps serial, shuffled, and parallel schedules
    /// bit-identical. Its commit() still runs this cycle, so staged input
    /// handed over by a direct call (e.g. begin_rx) is integrated on time.
    void wake();

    /// False while the kernel has this component in the skipped set.
    bool awake() const { return awake_.load(std::memory_order_relaxed); }

    /// Hierarchical instance name, e.g. "dut.rpu3.interconnect".
    const std::string& name() const { return name_; }

    /// The kernel this component is clocked by.
    Kernel& kernel() const { return kernel_; }

 protected:
    /// Current simulation time, for convenience in subclasses.
    Cycle now() const;

    /// Called (from the owning tick partition or a host-boundary sync)
    /// with the number of consecutive tick() calls that were skipped while
    /// asleep, before the next tick runs. Override to keep purely
    /// time-derived internal state (e.g. a halted core's cycle CSR) exact.
    virtual void on_wake(Cycle skipped_cycles) { (void)skipped_cycles; }

    /// Flush this component's skipped-cycle accounting *now*. Host-facing
    /// mutators must call this before changing any state that a sleeper's
    /// catch-up replay could observe (e.g. an IRQ status register the
    /// firmware polls), so the replayed cycles see pre-mutation state.
    void flush_skipped();

    // --- time-decoupled self-advance contract (DESIGN.md §16) ---------------
    //
    // These hooks are consulted only by the decoupled shard runner, and
    // only for components that opted in by setting decoupled_gated_ (so
    // the common case pays one flag test, not a virtual call, per cycle).

    /// May local cycle `t` be decided right now? Return false when this
    /// component's tick at `t` depends on peer-shard state that is not
    /// yet conservatively bounded (e.g. a cut-FIFO admission too close to
    /// capacity while the consumer shard is behind). The runner then
    /// parks this shard until the peer advances.
    virtual bool decoupled_runnable(Cycle t) const {
        (void)t;
        return true;
    }

    /// How many upcoming ticks (starting at the shard's current cycle)
    /// are pure internal time advance — no output, no staged state, no
    /// cross-component effect. The runner may batch them through
    /// decoupled_advance() instead of calling tick(). Conservative: 0 is
    /// always correct.
    virtual Cycle decoupled_lookahead() const { return 0; }

    /// Replay `n` ticks previously promised by decoupled_lookahead().
    /// Must reproduce bit-identical internal state to `n` live tick()
    /// calls (replay the arithmetic; never summarize floating point).
    virtual void decoupled_advance(Cycle n) { (void)n; }

 protected:
    /// Subclasses overriding the hooks above must set this so the shard
    /// runner knows to consult them.
    bool decoupled_gated_ = false;

 private:
    friend class Kernel;

    Kernel& kernel_;
    std::string name_;

    std::atomic<bool> awake_{true};
    std::atomic<Cycle> wake_at_{0};  ///< first cycle allowed to tick again
    Cycle sleep_since_ = 0;          ///< first skipped cycle (if unaccounted_)
    bool unaccounted_ = false;       ///< skipped cycles not yet reported
};

/// The clock driver: owns the component/clocked registries and advances
/// simulated time. Host-side calls are not thread safe; one kernel per
/// simulated system.
class Kernel {
 public:
    /// Where the clock currently stands within Kernel::step().
    enum class Phase : uint8_t { kIdle, kTick, kCommit };

    Kernel();  // out of line: members reference the incomplete ShardRun
    ~Kernel();
    Kernel(const Kernel&) = delete;
    Kernel& operator=(const Kernel&) = delete;

    /// Register a component (called from Component's constructor).
    void add_component(Component* c) {
        components_.push_back(c);
        awake_count_.fetch_add(1, std::memory_order_relaxed);
    }

    /// Register a non-component clocked element. A `lazy` element promises
    /// that commit() is the identity on cycles where it staged nothing and
    /// popped nothing; it is committed only when it called request_commit()
    /// that cycle (Fifo and Reg qualify). Non-lazy elements commit every
    /// cycle. While a telemetry sink is attached, lazy elements are swept
    /// every cycle too, so per-cycle occupancy reporting stays complete.
    void add_clocked(Clocked* c, bool lazy = false) {
        if (lazy)
            lazy_clocked_.push_back(c);
        else
            clocked_.push_back(c);
    }

    /// Queue a lazy clocked element for this cycle's clock edge. Idempotent
    /// per cycle; thread safe (tick partitions may race to queue distinct
    /// elements — the per-element flag makes the queue duplicate-free and
    /// fifo/reg commits are mutually independent, so queue order is
    /// unobservable).
    void request_commit(Clocked* c) {
        if (c->commit_queued_.exchange(true, std::memory_order_relaxed)) return;
        if (decoupled_live_.load(std::memory_order_relaxed)) {
            decoupled_request_commit(c);
            return;
        }
        if (phase_ == Phase::kTick && parallel_effective()) {
            std::lock_guard<std::mutex> lock(commit_queue_mu_);
            commit_queue_.push_back(c);
        } else {
            commit_queue_.push_back(c);
        }
    }

    /// Advance the simulation by exactly one clock cycle.
    void step();

    /// Advance the simulation by `cycles` clock cycles. When the whole
    /// system is quiescent (idle skipping on, every component asleep) the
    /// remaining cycles are fast-forwarded in one jump: nothing can wake
    /// without a host-side call, which cannot happen inside this loop.
    void run(Cycle cycles);

    /// Run until `pred()` returns true or `max_cycles` elapse.
    /// Returns true if the predicate fired. While the whole system is
    /// quiescent, cycles advance without tick/commit work but `pred` is
    /// still evaluated each cycle (it may be time-dependent).
    template <typename Pred>
    bool run_until(Pred&& pred, Cycle max_cycles) {
        bool hit = false;
        for (Cycle i = 0; i < max_cycles; ++i) {
            if (pred()) {
                hit = true;
                break;
            }
            if (prestep_done_ && idle_skip_effective() &&
                awake_count_.load(std::memory_order_relaxed) == 0) {
                ++now_;  // quiescent: the cycle is empty by construction
            } else {
                step();
            }
        }
        if (!hit) hit = pred();
        sync_sleepers();
        return hit;
    }

    /// Current simulation time in cycles since reset. During a decoupled
    /// run (DESIGN.md §16) every shard thread sees its *local* clock here;
    /// between runs all clocks agree and this is the single global time.
    Cycle now() const {
        if (decoupled_live_.load(std::memory_order_relaxed)) return decoupled_now();
        return now_;
    }

    /// Current simulation time in nanoseconds.
    double now_ns() const { return cycles_to_ns(now()); }

    /// Number of registered components.
    size_t component_count() const { return components_.size(); }

    /// Registered components in current tick order (shard-spec builders
    /// map certified plan shards onto these).
    const std::vector<Component*>& components() const { return components_; }

    // --- phase/actor tracking (race detector substrate) ---------------------

    /// Where the clock stands right now (the calling shard's local phase
    /// during a decoupled run).
    Phase phase() const {
        if (decoupled_live_.load(std::memory_order_relaxed)) return decoupled_phase();
        return phase_;
    }

    /// True while some component's tick() is on the stack.
    bool in_tick() const { return phase() == Phase::kTick; }

    /// The component whose tick()/commit() is currently running (null
    /// between steps, i.e. for host/test code, and null during a parallel
    /// tick phase — which only happens with race checking off).
    const Component* active_component() const { return active_; }

    /// Enable/disable the dynamic same-cycle race checks in Fifo/Reg.
    /// On by default: the checks are a handful of integer compares.
    void set_race_check(bool on) { race_check_ = on; }
    bool race_check() const { return race_check_; }

    // --- telemetry ------------------------------------------------------------

    /// Attach/detach the observability sink (obs::Telemetry). Null (the
    /// default) disables all event emission; the caller owns the sink and
    /// must detach (or outlive the kernel) before it dies. Events flow from
    /// the registered primitives and instrumented components; end_cycle
    /// fires once per step after all commits. Attaching a sink disables
    /// idle skipping and parallel ticking (both accessors below report the
    /// effective state) so per-cycle accounting stays exact and event
    /// order deterministic.
    void set_telemetry(TelemetrySink* sink) {
        if (sink) wake_all();
        telemetry_ = sink;
    }
    TelemetrySink* telemetry() const { return telemetry_; }

    // --- health probe ---------------------------------------------------------

    /// Attach/detach the always-on health heartbeat (obs::HealthMonitor).
    /// Null (the default) costs one pointer compare per stepped cycle.
    /// Deliberately does NOT wake anything and does NOT disable idle
    /// skipping or parallel ticking — the probe contract (sim/telemetry.h)
    /// tolerates fast-forward gaps, which is what keeps the health layer
    /// within its production overhead budget. The caller owns the probe
    /// and must detach (or outlive the kernel) before it dies.
    void set_health_probe(HealthProbe* probe) { health_probe_ = probe; }
    HealthProbe* health_probe() const { return health_probe_; }

    // --- occupancy probes -----------------------------------------------------

    /// A registered on-demand reader of one net's committed occupancy.
    /// Primitives (sim::Fifo) and components owning abstract buffered links
    /// (fabric VOQs, RPU packet slots) register a getter at construction so
    /// host-side diagnostics — the watchdog's deepest-backlog census, the
    /// metrics registry's gauges — can take a full occupancy snapshot at
    /// any host-phase point without a TelemetrySink attached. Getters read
    /// committed state only and are never called during tick/commit.
    struct OccupancyProbe {
        std::string net;        ///< netlist name, e.g. "rpu3.rx_fifo"
        size_t capacity = 0;    ///< same unit as the getter (entries)
        const void* owner = nullptr;  ///< registrant, for matched removal
        std::function<size_t()> fn;   ///< committed occupancy right now
    };

    /// Register (or, for the same net name, replace) an occupancy probe.
    /// Re-registration mirrors declare_net: a reconfigured accelerator's
    /// fresh primitive takes over its predecessor's net name.
    void register_occupancy_probe(std::string net, size_t capacity,
                                  const void* owner, std::function<size_t()> fn);

    /// Remove the probe for `net` iff `owner` still owns it. Owner-matched
    /// so that destroying a replaced (stale) registrant cannot drop its
    /// successor's probe during reconfiguration handover.
    void unregister_occupancy_probe(const std::string& net, const void* owner);

    /// All live occupancy probes, in registration order (deterministic).
    const std::vector<OccupancyProbe>& occupancy_probes() const {
        return occupancy_probes_;
    }

    // --- quiescence skipping --------------------------------------------------

    /// Master switch for the active set / fast-forward machinery (on by
    /// default; exact by construction). Turning it off wakes everything.
    void set_idle_skip(bool on);
    bool idle_skip() const { return idle_skip_; }

    /// True when skipping is actually applied this step.
    bool idle_skip_effective() const { return idle_skip_ && telemetry_ == nullptr; }

    /// Components currently in the active set.
    size_t awake_count() const { return awake_count_.load(std::memory_order_relaxed); }

    /// Wake every component (and report skipped cycles to each sleeper).
    void wake_all();

    /// Report pending skipped cycles to every sleeper without waking it,
    /// so host code can observe exact time-derived state (core cycle
    /// counters) between runs. Called automatically at run()/run_until()
    /// boundaries.
    void sync_sleepers();

    /// Cumulative cycles whose tick/commit work was skipped by whole-
    /// system fast-forward (diagnostics for bench_simspeed).
    Cycle fast_forwarded_cycles() const { return fast_forwarded_; }

    // --- parallel tick execution ----------------------------------------------

    /// Partition the tick phase over `n` threads (0 or 1 = serial). The
    /// pool is persistent; commits and the sleep sweep stay serial.
    void set_parallel_ticks(unsigned n);
    unsigned parallel_ticks() const { return parallel_ticks_; }

    /// True when the tick phase actually runs partitioned this step: a
    /// pool is configured and neither the race detector nor a telemetry
    /// sink demands single-threaded attribution.
    bool parallel_effective() const {
        return parallel_ticks_ > 1 && !race_check_ && telemetry_ == nullptr;
    }

    // --- time-decoupled execution (DESIGN.md §16) -----------------------------

    /// Install an executable shard specification (derived from a certified
    /// lint::ShardPlan — System::set_decouple_shards is the production
    /// path). Every registered component must appear in exactly one shard.
    /// Returns an empty string on success; otherwise a reason and nothing
    /// is installed. While installed and effective, run() executes each
    /// shard on its own worker thread under a local cycle counter with
    /// conservative lookahead synchronization; this supersedes
    /// set_parallel_ticks at the top level (per-shard tick_workers recover
    /// intra-shard tick parallelism).
    std::string set_shard_spec(ShardSpec spec);

    /// Drop the installed spec; run() returns to the barrier executor.
    void clear_shard_spec();

    bool shard_spec_installed() const { return spec_ != nullptr; }

    /// True while a decoupled run() is in flight — i.e. the calling thread
    /// is on a shard-local clock. Cheap enough to poll per frame.
    bool decoupled_running() const {
        return decoupled_live_.load(std::memory_order_relaxed);
    }

    /// True when the next run() will use the decoupled executor: a spec is
    /// installed and nothing demanding a single global clock is attached
    /// (the race detector, a telemetry sink, a health probe, and
    /// commit-compat mode all require the barrier regime).
    bool decoupled_effective() const;

    /// Progress counter ("done" cursor) of an installed shard: the number
    /// of cycles that shard has completed in the current (or last) run.
    /// Stable for the lifetime of the spec — System binds these into the
    /// cut channels so endpoints can reason about peer progress.
    const std::atomic<Cycle>* shard_done_ptr(unsigned shard) const;

    /// Cumulative per-shard execution accounting while decoupled: how many
    /// local cycles ran through tick+commit vs were collapsed by time-skip
    /// jumps. Diagnostics only (bench_cluster reports it); empty unless a
    /// spec is installed. Read between runs, not during one.
    struct ShardProgress {
        uint64_t executed = 0;
        uint64_t skipped = 0;
        uint64_t jumps = 0;
    };
    std::vector<ShardProgress> decoupled_progress() const;

    // --- baseline-compat (A/B benchmarking) -----------------------------------

    /// Emulate the pre-fast-path kernel's per-cycle regime: every clocked
    /// primitive commits every cycle (no lazy commit queue, no identity
    /// early-outs) and the datapath components drop their occupancy-count
    /// scan guards. Results are bit-identical either way — this exists so
    /// bench_simspeed can measure the fast path against an honest
    /// reference inside one binary. Off by default; never enable outside
    /// benchmarking.
    void set_commit_compat(bool on) { commit_compat_ = on; }
    bool commit_compat() const { return commit_compat_; }

    // --- tick-order shuffling -------------------------------------------------

    /// Deterministically permute the component tick order under `seed`.
    /// Because all inter-component state flows through registered
    /// primitives, any permutation must produce a bit-identical run; the
    /// determinism tests assert exactly that. Components registered after
    /// the shuffle are appended in registration order. Commit order is
    /// left untouched (commits are mutually independent by construction).
    void shuffle_tick_order(uint64_t seed);

    /// Current tick order, for diagnostics.
    std::vector<std::string> tick_order() const;

    // --- elaboration netlist ---------------------------------------------------

    /// Record a net. Re-declaring the same name replaces the record (a
    /// reconfigured accelerator re-elaborates its nets).
    void declare_net(NetRecord net);

    /// Record a directed port. Exact duplicates are dropped.
    void declare_port(PortRecord port);

    const std::vector<NetRecord>& nets() const { return nets_; }
    const std::vector<PortRecord>& ports() const { return ports_; }

    // --- wake edges (net name -> reader components) ----------------------------

    /// True once the wake-edge map reflects the current netlist. The map
    /// is (re)built lazily before the first sleep sweep and after any
    /// netlist change; a Fifo caches its resolved reader list against
    /// wake_epoch().
    bool wake_map_built() const { return wake_map_built_; }
    uint64_t wake_epoch() const { return wake_epoch_; }

    /// Components woken by activity on `net` per the elaboration netlist
    /// (its readers, plus its writers when the net returns registered
    /// credit), or null if none are registered. Valid until the next
    /// netlist change.
    const std::vector<Component*>* wake_list(const std::string& net) const;

    /// Hook run once, immediately before the first step(). System installs
    /// the static lint pass here so that everything constructed up front —
    /// including traffic sources added after the System — is elaborated
    /// and checked before cycle 0.
    void set_prestep_hook(std::function<void(Kernel&)> fn) {
        prestep_hook_ = std::move(fn);
    }

 private:
    friend class Component;

    struct ShardRun;

    void note_wake(Component& c);
    void flush_wake_accounting(Component* c);
    void sleep_sweep();
    void build_wake_map();
    void tick_partition(unsigned part, unsigned nparts);
    void stop_pool();
    void decoupled_request_commit(Clocked* c);
    Cycle decoupled_now() const;
    Phase decoupled_phase() const;
    void run_decoupled(Cycle cycles);
    bool advance_shard(ShardRun& sr, Cycle budget);
    void run_shard_threaded(ShardRun& sr);
    void shard_sleep_sweep(ShardRun& sr, Cycle next);

    std::vector<Component*> components_;
    std::vector<Clocked*> clocked_;
    std::vector<Clocked*> lazy_clocked_;
    std::vector<Clocked*> commit_queue_;
    std::mutex commit_queue_mu_;
    Cycle now_ = 0;

    Phase phase_ = Phase::kIdle;
    const Component* active_ = nullptr;
    bool race_check_ = true;
    TelemetrySink* telemetry_ = nullptr;
    HealthProbe* health_probe_ = nullptr;
    std::vector<OccupancyProbe> occupancy_probes_;

    bool idle_skip_ = true;
    bool commit_compat_ = false;
    std::atomic<size_t> awake_count_{0};
    Cycle fast_forwarded_ = 0;

    bool wake_map_built_ = false;
    uint64_t wake_epoch_ = 0;
    std::unordered_map<std::string, std::vector<Component*>> wake_readers_;

    unsigned parallel_ticks_ = 0;
    std::vector<std::thread> workers_;
    std::mutex pool_mu_;
    std::condition_variable pool_start_cv_;
    std::condition_variable pool_done_cv_;
    uint64_t pool_gen_ = 0;
    unsigned pool_pending_ = 0;
    bool pool_stop_ = false;

    std::unique_ptr<ShardSpec> spec_;
    std::vector<std::unique_ptr<ShardRun>> shard_runs_;
    std::atomic<bool> decoupled_live_{false};
    /// The shard the calling thread executes during a decoupled run (null
    /// on host threads and between runs). Static: shard identity is a
    /// property of the thread, and one thread never serves two kernels at
    /// once (each board's kernel runs on its own thread in a cluster).
    static thread_local ShardRun* t_shard_;

    std::vector<NetRecord> nets_;
    std::vector<PortRecord> ports_;
    std::function<void(Kernel&)> prestep_hook_;
    bool prestep_done_ = false;
};

inline Cycle Component::now() const { return kernel_.now(); }

inline void
Component::wake() {
    if (!awake_.exchange(true, std::memory_order_relaxed)) kernel_.note_wake(*this);
}

}  // namespace rosebud::sim

#endif  // ROSEBUD_SIM_KERNEL_H
