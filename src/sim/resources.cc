#include "sim/resources.h"

#include <cstdio>

namespace rosebud::sim {

namespace {

void
append_cell(std::string& out, uint64_t value, uint64_t total) {
    char buf[64];
    if (total == 0) {
        std::snprintf(buf, sizeof(buf), "%10llu", (unsigned long long)value);
    } else {
        std::snprintf(buf, sizeof(buf), "%8llu (%4.1f%%)", (unsigned long long)value,
                      100.0 * double(value) / double(total));
    }
    out += buf;
}

}  // namespace

std::string
format_footprint_row(const std::string& name, const ResourceFootprint& fp,
                     const ResourceFootprint& device) {
    char head[64];
    std::snprintf(head, sizeof(head), "%-22s", name.c_str());
    std::string out = head;
    append_cell(out, fp.luts, device.luts);
    append_cell(out, fp.regs, device.regs);
    append_cell(out, fp.bram, device.bram);
    append_cell(out, fp.uram, device.uram);
    append_cell(out, fp.dsp, device.dsp);
    return out;
}

}  // namespace rosebud::sim
