/// \file
/// Telemetry sink interface — the substrate of the observability layer.
///
/// The paper's host control plane exposes "status counters ... transferred
/// bytes, frames, drops, or stalled cycles" (Section 4.3); this interface is
/// how the simulator grows that into full stall *attribution*. A TelemetrySink
/// registered with the Kernel receives a low-level event stream from every
/// registered primitive (sim::Fifo) and from components that own abstract
/// links (the fabric's VOQs, the LB assignment interface, the per-RPU ingress
/// links): push accepted, push blocked on credit, pop, consumer-poll-found-
/// empty, and end-of-cycle occupancy. The obs:: layer turns that stream into
/// per-cycle idle/busy/stalled/starved classification, VCD waveforms and
/// Perfetto traces.
///
/// The hooks cost one pointer compare per operation when no sink is attached
/// (the default), so production sweeps pay nothing; no sim::Stats counters
/// are created either way, which keeps System::state_fingerprint bit-identical
/// with telemetry on or off.

#ifndef ROSEBUD_SIM_TELEMETRY_H
#define ROSEBUD_SIM_TELEMETRY_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace rosebud::sim {

/// Receives the raw per-cycle event stream. Implementations classify and
/// aggregate; emitters never interpret.
class TelemetrySink {
 public:
    /// One micro-event on a net (a Fifo primitive or an abstract link).
    enum class NetEvent : uint8_t {
        kPushOk,       ///< a value was accepted this cycle (data moved in)
        kPushBlocked,  ///< a producer saw no credit (stalled-on-credit)
        kPop,          ///< a value was consumed this cycle (data moved out)
        kPollEmpty,    ///< a consumer polled and found nothing (starved)
    };

    virtual ~TelemetrySink() = default;

    /// An event on net `net` during the current cycle. Multiple events per
    /// net per cycle are expected; sinks classify on booleans, so emitters
    /// need not dedupe.
    virtual void net_event(const std::string& net, NetEvent ev) = 0;

    /// Committed occupancy of `net` after this cycle's clock edge.
    /// `capacity` is in the same unit as `occupancy` (entries or bytes).
    virtual void net_occupancy(const std::string& net, size_t occupancy,
                               size_t capacity) = 0;

    /// The clock edge: cycle `completed` has fully committed. Sinks close
    /// the per-cycle classification window here.
    virtual void end_cycle(uint64_t completed) = 0;
};

}  // namespace rosebud::sim

#endif  // ROSEBUD_SIM_TELEMETRY_H
