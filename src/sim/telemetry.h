/// \file
/// Telemetry sink interface — the substrate of the observability layer.
///
/// The paper's host control plane exposes "status counters ... transferred
/// bytes, frames, drops, or stalled cycles" (Section 4.3); this interface is
/// how the simulator grows that into full stall *attribution*. A TelemetrySink
/// registered with the Kernel receives a low-level event stream from every
/// registered primitive (sim::Fifo) and from components that own abstract
/// links (the fabric's VOQs, the LB assignment interface, the per-RPU ingress
/// links): push accepted, push blocked on credit, pop, consumer-poll-found-
/// empty, and end-of-cycle occupancy. The obs:: layer turns that stream into
/// per-cycle idle/busy/stalled/starved classification, VCD waveforms and
/// Perfetto traces.
///
/// The hooks cost one pointer compare per operation when no sink is attached
/// (the default), so production sweeps pay nothing; no sim::Stats counters
/// are created either way, which keeps System::state_fingerprint bit-identical
/// with telemetry on or off.
///
/// HealthProbe is the *production* counterpart: where a TelemetrySink wants
/// the complete per-primitive event stream (and therefore disables idle
/// skipping and parallel ticking), a HealthProbe only needs a periodic
/// heartbeat plus on-demand reads of committed state. Attaching one costs a
/// single pointer compare per stepped cycle and leaves every kernel fast
/// path enabled — that is what lets the always-on health layer (obs::
/// HealthMonitor) ride along production sweeps within its overhead budget.

#ifndef ROSEBUD_SIM_TELEMETRY_H
#define ROSEBUD_SIM_TELEMETRY_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace rosebud::sim {

/// Receives the raw per-cycle event stream. Implementations classify and
/// aggregate; emitters never interpret.
class TelemetrySink {
 public:
    /// One micro-event on a net (a Fifo primitive or an abstract link).
    enum class NetEvent : uint8_t {
        kPushOk,       ///< a value was accepted this cycle (data moved in)
        kPushBlocked,  ///< a producer saw no credit (stalled-on-credit)
        kPop,          ///< a value was consumed this cycle (data moved out)
        kPollEmpty,    ///< a consumer polled and found nothing (starved)
    };

    virtual ~TelemetrySink() = default;

    /// An event on net `net` during the current cycle. Multiple events per
    /// net per cycle are expected; sinks classify on booleans, so emitters
    /// need not dedupe.
    virtual void net_event(const std::string& net, NetEvent ev) = 0;

    /// Committed occupancy of `net` after this cycle's clock edge.
    /// `capacity` is in the same unit as `occupancy` (entries or bytes).
    virtual void net_occupancy(const std::string& net, size_t occupancy,
                               size_t capacity) = 0;

    /// The clock edge: cycle `completed` has fully committed. Sinks close
    /// the per-cycle classification window here.
    virtual void end_cycle(uint64_t completed) = 0;
};

/// A lightweight per-cycle heartbeat for always-on health monitoring.
///
/// Called once at the end of every *stepped* cycle, after all commits (and
/// after any TelemetrySink's end_cycle). Cycles elided by whole-system
/// fast-forward are NOT reported individually: by construction nothing can
/// change during them (every component is asleep and no host call can occur
/// inside the run loop), so implementations must tolerate gaps in
/// `completed` and may treat a gap as proof of system-wide idleness.
///
/// Unlike TelemetrySink, attaching a HealthProbe does not disable idle
/// skipping or parallel ticking, creates no sim::Stats counters, and must
/// not mutate simulation state — the fingerprint-invariance tests hold with
/// a probe attached.
class HealthProbe {
 public:
    virtual ~HealthProbe() = default;

    /// Cycle `completed` has fully committed. Runs in the host phase
    /// (Kernel::phase() == kIdle), so committed primitive state may be
    /// read freely.
    virtual void on_cycle(uint64_t completed) = 0;
};

}  // namespace rosebud::sim

#endif  // ROSEBUD_SIM_TELEMETRY_H
