/// \file
/// Registered FIFO and register primitives.
///
/// These are the only legal communication channels between Components: a
/// value pushed (or written) during cycle N becomes visible to consumers at
/// cycle N+1, after the kernel's commit phase — exactly like a clocked FIFO
/// or flop in the Verilog original. Capacity checks (`can_push`) observe
/// committed occupancy minus committed pops plus staged pushes, so a
/// producer can never overfill a FIFO within a cycle.

#ifndef ROSEBUD_SIM_FIFO_H
#define ROSEBUD_SIM_FIFO_H

#include <cassert>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "sim/kernel.h"

namespace rosebud::sim {

/// A clocked FIFO with bounded capacity.
///
/// Push/pop in the same cycle on a 1-deep FIFO behaves like a skid buffer:
/// the pop frees the slot for the commit of the push (pops commit before
/// pushes within this element's commit).
template <typename T>
class Fifo : public Clocked {
 public:
    /// \param kernel   Clock domain to register with.
    /// \param name     Instance name (for debugging/stats).
    /// \param capacity Maximum committed occupancy, must be >= 1.
    Fifo(Kernel& kernel, std::string name, size_t capacity)
        : name_(std::move(name)), capacity_(capacity) {
        assert(capacity >= 1);
        kernel.add_clocked(this);
    }

    /// True if a push this cycle will be accepted.
    bool can_push() const {
        return stable_.size() - popped_ + staged_.size() < capacity_;
    }

    /// Stage a push; visible to `front`/`pop` from the next cycle.
    /// Returns false (and drops nothing — caller keeps the value) if full.
    [[nodiscard]] bool push(T v) {
        if (!can_push()) return false;
        staged_.push_back(std::move(v));
        return true;
    }

    /// True if nothing is poppable this cycle.
    bool empty() const { return popped_ >= stable_.size(); }

    /// Committed occupancy visible this cycle (ignores staged pushes).
    size_t size() const { return stable_.size() - popped_; }

    size_t capacity() const { return capacity_; }

    /// Free slots as seen by a producer this cycle.
    size_t free_slots() const {
        return capacity_ - (stable_.size() - popped_ + staged_.size());
    }

    /// Oldest committed element. Precondition: !empty().
    const T& front() const {
        assert(!empty());
        return stable_[popped_];
    }

    /// Pop the oldest committed element.
    T pop() {
        assert(!empty());
        return std::move(stable_[popped_++]);
    }

    void commit() override {
        stable_.erase(stable_.begin(), stable_.begin() + popped_);
        popped_ = 0;
        for (auto& v : staged_) stable_.push_back(std::move(v));
        staged_.clear();
    }

    /// Drop all contents immediately (used on RPU reset/reconfiguration).
    void clear() {
        stable_.clear();
        staged_.clear();
        popped_ = 0;
    }

    const std::string& name() const { return name_; }

 private:
    std::string name_;
    size_t capacity_;
    std::deque<T> stable_;
    std::vector<T> staged_;
    size_t popped_ = 0;
};

/// A single clocked register: writes become visible next cycle.
template <typename T>
class Reg : public Clocked {
 public:
    Reg(Kernel& kernel, T reset = T{}) : value_(std::move(reset)) {
        kernel.add_clocked(this);
    }

    /// Committed value as of this cycle.
    const T& get() const { return value_; }

    /// Stage a new value; last write in a cycle wins.
    void set(T v) {
        staged_ = std::move(v);
        dirty_ = true;
    }

    void commit() override {
        if (dirty_) {
            value_ = std::move(staged_);
            dirty_ = false;
        }
    }

 private:
    T value_;
    T staged_{};
    bool dirty_ = false;
};

}  // namespace rosebud::sim

#endif  // ROSEBUD_SIM_FIFO_H
