/// \file
/// Registered FIFO and register primitives.
///
/// These are the only legal communication channels between Components: a
/// value pushed (or written) during cycle N becomes visible to consumers at
/// cycle N+1, after the kernel's commit phase — exactly like a clocked FIFO
/// or flop in the Verilog original.
///
/// Two credit policies govern what a producer sees as free space:
///  * kSkidBuffer — `can_push` observes committed occupancy minus committed
///    pops plus staged pushes; a same-cycle pop frees the slot (combinational
///    ready, like a skid buffer). Only safe when pusher and popper are the
///    same component — otherwise the answer depends on tick order.
///  * kRegistered — `can_push` ignores same-cycle pops (registered ready, one
///    cycle of credit-return latency). Safe across components.
///
/// Both primitives participate in the dynamic race detector: every stage
/// and pop records the acting component and cycle, and a same-cycle access
/// from a *different* component that could observe tick-order-dependent
/// state faults via sim::fatal (catchable in tests). They also self-declare
/// into the kernel's elaboration netlist so the static linter in src/lint/
/// can check widths, depths and port discipline before cycle 0.

#ifndef ROSEBUD_SIM_FIFO_H
#define ROSEBUD_SIM_FIFO_H

#include <cassert>
#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "sim/kernel.h"
#include "sim/log.h"

namespace rosebud::sim {

/// How a FIFO reports free space to producers (see file comment).
enum class CreditPolicy : uint8_t { kSkidBuffer, kRegistered };

/// A clocked FIFO with bounded capacity.
template <typename T>
class Fifo : public Clocked {
 public:
    /// \param kernel     Clock domain to register with.
    /// \param name       Instance name; becomes the netlist net name.
    /// \param capacity   Maximum committed occupancy, must be >= 1.
    /// \param width_bits Datapath width recorded in the netlist (0 = unspecified).
    /// \param net_flags  NetFlag bits recorded in the netlist.
    /// \param credit     Free-space policy (see file comment).
    Fifo(Kernel& kernel, std::string name, size_t capacity,
         unsigned width_bits = 0, unsigned net_flags = 0,
         CreditPolicy credit = CreditPolicy::kSkidBuffer)
        : kernel_(kernel), name_(std::move(name)), capacity_(capacity),
          credit_(credit) {
        assert(capacity >= 1);
        kernel.add_clocked(this, /*lazy=*/true);
        kernel.declare_net({name_, NetRecord::kFifo, width_bits, capacity_,
                            net_flags,
                            credit == CreditPolicy::kRegistered
                                ? NetRecord::kCreditRegistered
                                : NetRecord::kCreditSkid});
        // Raw-field read (not size()): probes run in the host phase where
        // the race checks are moot, and must not emit telemetry events.
        kernel.register_occupancy_probe(
            name_, capacity_, this,
            [this] { return stable_.size() - popped_; });
    }

    ~Fifo() override { kernel_.unregister_occupancy_probe(name_, this); }

    /// True if a push this cycle will be accepted. A false answer counts
    /// as a stalled-on-credit observation for the telemetry sink.
    bool can_push() const {
        check_credit_read();
        bool ok = credit_ == CreditPolicy::kRegistered
                      ? stable_.size() + staged_.size() < capacity_
                      : stable_.size() - popped_ + staged_.size() < capacity_;
        if (!ok) telemetry(TelemetrySink::NetEvent::kPushBlocked);
        return ok;
    }

    /// Stage a push; visible to `front`/`pop` from the next cycle.
    /// Returns false (and drops nothing — caller keeps the value) if full.
    /// A successful push wakes the net's reader components (the kernel's
    /// quiescence wake edges), so a sleeping consumer ticks again from the
    /// cycle this value becomes visible.
    [[nodiscard]] bool push(T v) {
        check_stage("push");
        if (!can_push()) return false;
        staged_.push_back(std::move(v));
        kernel_.request_commit(this);
        telemetry(TelemetrySink::NetEvent::kPushOk);
        wake_readers();
        return true;
    }

    /// True if nothing is poppable this cycle. An empty answer counts as a
    /// starvation observation (a consumer polled and found nothing).
    bool empty() const {
        check_pop_read("empty");
        bool e = popped_ >= stable_.size();
        if (e) telemetry(TelemetrySink::NetEvent::kPollEmpty);
        return e;
    }

    /// Committed occupancy visible this cycle (ignores staged pushes).
    size_t size() const {
        check_pop_read("size");
        return stable_.size() - popped_;
    }

    size_t capacity() const { return capacity_; }

    CreditPolicy credit_policy() const { return credit_; }

    /// Free slots as seen by a producer this cycle.
    size_t free_slots() const {
        check_credit_read();
        if (credit_ == CreditPolicy::kRegistered)
            return capacity_ - (stable_.size() + staged_.size());
        return capacity_ - (stable_.size() - popped_ + staged_.size());
    }

    /// Oldest committed element. Precondition: !empty().
    const T& front() const {
        check_pop_read("front");
        assert(popped_ < stable_.size());
        return stable_[popped_];
    }

    /// Pop the oldest committed element.
    T pop() {
        check_pop_write();
        assert(popped_ < stable_.size());
        telemetry(TelemetrySink::NetEvent::kPop);
        kernel_.request_commit(this);
        // Registered credit returns with one cycle of latency, so this pop
        // is an observable event for the producer: wake it (the net's wake
        // list includes registered-credit writers) so a component sleeping
        // on a full FIFO sees the freed slot.
        if (credit_ == CreditPolicy::kRegistered) wake_readers();
        return std::move(stable_[popped_++]);
    }

    void commit() override {
        // Early-out when the cycle neither popped nor pushed: commit runs
        // for every FIFO every cycle, so idle FIFOs must cost one branch.
        // (commit_compat forces the full deque work for benchmarking.)
        if (popped_ != 0 || !staged_.empty() || kernel_.commit_compat()) {
            stable_.erase(stable_.begin(), stable_.begin() + long(popped_));
            popped_ = 0;
            for (auto& v : staged_) stable_.push_back(std::move(v));
            staged_.clear();
        }
        if (TelemetrySink* t = kernel_.telemetry())
            t->net_occupancy(name_, stable_.size(), capacity_);
    }

    /// Drop all contents immediately (used on RPU reset/reconfiguration).
    /// Counts as both a stage and a pop for the race detector.
    void clear() {
        check_stage("clear");
        check_pop_write();
        stable_.clear();
        staged_.clear();
        popped_ = 0;
    }

    const std::string& name() const { return name_; }

 private:
    // --- dynamic two-phase race detector -------------------------------------
    //
    // Each check compares the acting component against the component that
    // already touched this FIFO in the same cycle. Accesses from outside
    // the tick phase (host/test code, commit handlers) are exempt: they
    // run at a well-defined point relative to the clock.

    const Component* actor() const {
        if (!kernel_.race_check() || !kernel_.in_tick()) return nullptr;
        return kernel_.active_component();
    }

    void race(const std::string& what) const {
        fatal("race on fifo '" + name_ + "': " + what + " @cycle " +
              std::to_string(kernel_.now()));
    }

    void telemetry(TelemetrySink::NetEvent ev) const {
        if (TelemetrySink* t = kernel_.telemetry()) t->net_event(name_, ev);
    }

    /// Wake this net's reader components. The resolved reader list is
    /// cached against the kernel's wake epoch so the hot path is one
    /// compare; before the wake map exists nothing has slept yet, so
    /// there is nothing to wake.
    void wake_readers() {
        if (!kernel_.wake_map_built()) return;
        if (wake_list_epoch_ != kernel_.wake_epoch()) {
            wake_list_ = kernel_.wake_list(name_);
            wake_list_epoch_ = kernel_.wake_epoch();
        }
        if (wake_list_)
            for (Component* c : *wake_list_) c->wake();
    }

    /// Staging (push/clear): two different components staging into the same
    /// FIFO in one cycle makes the queue order depend on tick order.
    void check_stage(const char* op) {
        const Component* a = actor();
        if (!a) return;
        if (stage_cycle_ == kernel_.now() && stager_ && stager_ != a) {
            race(std::string(op) + " by '" + a->name() +
                 "' after same-cycle stage by '" + stager_->name() + "'");
        }
        stager_ = a;
        stage_cycle_ = kernel_.now();
    }

    /// Popping (pop/clear): two different components consuming in one cycle.
    void check_pop_write() {
        const Component* a = actor();
        // Host-phase pops happen before every tick of the cycle — all
        // in-tick readers see them uniformly, so they are not recorded.
        if (!a) return;
        if (pop_cycle_ == kernel_.now() && popper_ && popper_ != a) {
            race("pop by '" + a->name() + "' after same-cycle pop by '" +
                 popper_->name() + "'");
        }
        popper_ = a;
        pop_cycle_ = kernel_.now();
    }

    /// Reads that observe `popped_` (empty/size/front): order-dependent if
    /// a *different* component already popped this cycle.
    void check_pop_read(const char* op) const {
        const Component* a = actor();
        if (!a) return;
        if (pop_cycle_ == kernel_.now() && popper_ && popper_ != a) {
            race(std::string(op) + " by '" + a->name() +
                 "' after same-cycle pop by '" + popper_->name() + "'");
        }
    }

    /// Credit reads (can_push/free_slots): under kSkidBuffer these observe
    /// `popped_` too; under kRegistered they are pop-independent and safe.
    void check_credit_read() const {
        if (credit_ == CreditPolicy::kRegistered) return;
        check_pop_read("credit check");
    }

    Kernel& kernel_;
    std::string name_;
    size_t capacity_;
    CreditPolicy credit_;
    std::deque<T> stable_;
    std::vector<T> staged_;
    size_t popped_ = 0;

    const Component* stager_ = nullptr;
    const Component* popper_ = nullptr;
    Cycle stage_cycle_ = ~Cycle(0);
    Cycle pop_cycle_ = ~Cycle(0);

    const std::vector<Component*>* wake_list_ = nullptr;
    uint64_t wake_list_epoch_ = 0;  ///< 0 never matches a built map's epoch
};

/// A single clocked register: writes become visible next cycle.
template <typename T>
class Reg : public Clocked {
 public:
    /// Anonymous register (not recorded in the netlist).
    explicit Reg(Kernel& kernel, T reset = T{})
        : kernel_(kernel), value_(std::move(reset)) {
        kernel.add_clocked(this, /*lazy=*/true);
    }

    /// Named register, recorded in the elaboration netlist.
    Reg(Kernel& kernel, std::string name, T reset, unsigned width_bits,
        unsigned net_flags = 0)
        : kernel_(kernel), name_(std::move(name)), value_(std::move(reset)) {
        kernel.add_clocked(this, /*lazy=*/true);
        kernel.declare_net({name_, NetRecord::kReg, width_bits, 1, net_flags});
    }

    /// Committed value as of this cycle. Faults if a *different* component
    /// staged a write earlier in the same cycle: the reader would see
    /// this-cycle or last-cycle data depending on tick order. (The staged
    /// value is not returned either way; the fault flags the dependence.)
    const T& get() const {
        const Component* a = actor();
        if (a && set_cycle_ == kernel_.now() && setter_ && setter_ != a) {
            race("get by '" + a->name() + "' after same-cycle set by '" +
                 setter_->name() + "'");
        }
        return value_;
    }

    /// Stage a new value; last write in a cycle wins — which is only
    /// deterministic for a single writer, so cross-component double-sets
    /// fault.
    void set(T v) {
        const Component* a = actor();
        if (a && set_cycle_ == kernel_.now() && setter_ && setter_ != a) {
            race("set by '" + a->name() + "' after same-cycle set by '" +
                 setter_->name() + "'");
        }
        setter_ = a;
        set_cycle_ = kernel_.now();
        staged_ = std::move(v);
        dirty_ = true;
        kernel_.request_commit(this);
    }

    void commit() override {
        if (dirty_) {
            value_ = std::move(staged_);
            dirty_ = false;
        }
    }

    const std::string& name() const { return name_; }

 private:
    const Component* actor() const {
        if (!kernel_.race_check() || !kernel_.in_tick()) return nullptr;
        return kernel_.active_component();
    }

    void race(const std::string& what) const {
        fatal("race on reg '" + (name_.empty() ? "<anon>" : name_) + "': " +
              what + " @cycle " + std::to_string(kernel_.now()));
    }

    Kernel& kernel_;
    std::string name_;
    T value_;
    T staged_{};
    bool dirty_ = false;

    const Component* setter_ = nullptr;
    Cycle set_cycle_ = ~Cycle(0);
};

}  // namespace rosebud::sim

#endif  // ROSEBUD_SIM_FIFO_H
