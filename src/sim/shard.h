/// \file
/// Time-decoupled execution primitives (DESIGN.md §16).
///
/// A certified lint::ShardPlan proves that every edge crossing a shard
/// boundary has at least one cycle of forwarding latency. The runtime side
/// of that proof lives here: a ShardSpec tells the kernel which components
/// advance together under a *local* cycle counter, and a CutChannel
/// replaces the direct call across each cut data edge with a
/// latency-tagged queue — a push at producer-local cycle P becomes visible
/// to the consumer exactly when its local clock reaches P + latency, which
/// is the same cycle the barrier-synchronous kernel would have made it
/// visible through the two-phase commit.
///
/// The reverse (credit) direction is mirrored rather than queued: the
/// consumer publishes its committed end-of-cycle occupancy into the
/// channel, and the producer's admission check reads that snapshot plus
/// its own not-yet-drained pushes. Because the consumer only ever *adds*
/// occupancy from this channel and otherwise drains it, the snapshot plus
/// in-flight bytes is a monotone upper bound on the occupancy the
/// barrier kernel would see — so a producer may run arbitrarily far ahead
/// of the consumer while that worst-case bound still admits its frames,
/// and only has to fall back to cycle-accurate lockstep (consumer caught
/// up, snapshot exact) when the bound gets close to the FIFO capacity.
/// This is what lets a lightly loaded source shard free-run and batch
/// time instead of paying a rendezvous every cycle.

#ifndef ROSEBUD_SIM_SHARD_H
#define ROSEBUD_SIM_SHARD_H

#include <atomic>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "sim/kernel.h"

namespace rosebud::sim {

/// Observed-latency accounting for one cut channel, for the dynamic
/// lookahead cross-check (obs::run_shard_check): every delivery must show
/// observed latency >= the certified cut lookahead.
struct CutChannelStats {
    std::string net;
    Cycle certified = 0;     ///< certified minimum latency of the cut edge
    uint64_t pushes = 0;     ///< entries that entered the channel
    uint64_t delivered = 0;  ///< entries released to the consumer
    Cycle min_latency = 0;   ///< smallest observed release latency (0 = none yet)
    Cycle max_latency = 0;
};

/// Untyped view of a cut channel, used by the shard runner to compute
/// safe time-skip horizons without knowing the payload type.
class CutChannelBase {
 public:
    virtual ~CutChannelBase() = default;

    /// Earliest pending (undrained) push tag; false if the queue is empty.
    virtual bool earliest_pending(Cycle* tag) const = 0;

    /// Bind the producer / consumer shard progress counters (the kernel's
    /// per-shard `done` cursors). `producer_done()` lets the consumer
    /// reason "no push with tag < done can still arrive"; the producer
    /// symmetrically uses `consumer_done()` to detect lockstep (exact
    /// credit) vs free-run (conservative bound).
    void bind_producer_done(const std::atomic<Cycle>* d) { producer_done_ = d; }
    void bind_consumer_done(const std::atomic<Cycle>* d) { consumer_done_ = d; }
    Cycle producer_done() const {
        return producer_done_ ? producer_done_->load(std::memory_order_acquire) : 0;
    }
    Cycle consumer_done() const {
        return consumer_done_ ? consumer_done_->load(std::memory_order_acquire) : 0;
    }

 protected:
    const std::atomic<Cycle>* producer_done_ = nullptr;
    const std::atomic<Cycle>* consumer_done_ = nullptr;
};

/// Consistent producer-side view of the consumer's published state.
struct CutCredit {
    uint64_t bytes = 0;          ///< committed occupancy behind the cut
    uint64_t count = 0;
    uint64_t drained_bytes = 0;  ///< cumulative bytes the consumer drained
};

/// One latency-tagged cut data edge plus its mirrored credit return.
/// Single producer, single consumer; when the shards run in lockstep the
/// rendezvous on the shard `done` counters orders the two threads, and in
/// free-run the producer only relies on the conservative bound, so the
/// mutex only guards the queue memory and snapshot consistency.
template <typename T>
class CutChannel : public CutChannelBase {
 public:
    CutChannel(std::string net, Cycle latency)
        : latency_(latency) {
        stats_.net = std::move(net);
        stats_.certified = latency;
    }

    /// Producer side: stage `v` at producer-local cycle `cycle`. The entry
    /// is released to the consumer at consumer-local cycle `cycle + latency`.
    void push(Cycle cycle, T v) {
        std::lock_guard<std::mutex> lock(mu_);
        if (q_.empty()) front_tag_.store(cycle, std::memory_order_release);
        q_.push_back({cycle, std::move(v)});
        ++stats_.pushes;
    }

    /// Consumer side: integrate every entry pushed at or before `upto`
    /// (i.e. everything that must be visible to the consumer's tick at
    /// `upto + 1`). `apply` receives (push_cycle, value). Entries arrive
    /// in push order — identical to the barrier kernel's commit order for
    /// a single-writer net.
    template <typename F>
    void drain_upto(Cycle upto, F&& apply) {
        std::lock_guard<std::mutex> lock(mu_);
        while (!q_.empty() && q_.front().cycle <= upto) {
            Entry e = std::move(q_.front());
            q_.pop_front();
            Cycle lat = upto + 1 - e.cycle;
            if (stats_.min_latency == 0 || lat < stats_.min_latency)
                stats_.min_latency = lat;
            if (lat > stats_.max_latency) stats_.max_latency = lat;
            ++stats_.delivered;
            drained_bytes_ += payload_bytes(e.value);
            apply(e.cycle, std::move(e.value));
        }
        front_tag_.store(q_.empty() ? kNoTag : q_.front().cycle,
                         std::memory_order_release);
    }

    /// Consumer side: publish the committed end-of-cycle occupancy the
    /// producer's admission check may observe next cycle.
    void publish_credit(uint64_t bytes, uint64_t count) {
        std::lock_guard<std::mutex> lock(mu_);
        credit_bytes_ = bytes;
        credit_count_ = count;
    }

    /// Producer side: consistent snapshot of the consumer's published
    /// occupancy and cumulative drained bytes (one lock — the pair is
    /// what the free-run worst-case bound needs to be monotone).
    CutCredit credit_snapshot() const {
        std::lock_guard<std::mutex> lock(mu_);
        return {credit_bytes_, credit_count_, drained_bytes_};
    }

    /// Producer side, legacy view: the consumer's committed occupancy.
    std::pair<uint64_t, uint64_t> credit() const {
        std::lock_guard<std::mutex> lock(mu_);
        return {credit_bytes_, credit_count_};
    }

    /// Lock-free: the cached front tag may lag a concurrent push, but the
    /// skip-horizon reader loads the producer's `done` counter first, and a
    /// push of tag s happens-before the producer's done = s+1 store — so
    /// any push this read misses carries a tag >= that done value, which
    /// already bounds the horizon.
    bool earliest_pending(Cycle* tag) const override {
        const Cycle v = front_tag_.load(std::memory_order_acquire);
        if (v == kNoTag) return false;
        *tag = v;
        return true;
    }

    Cycle latency() const { return latency_; }
    bool empty() const {
        std::lock_guard<std::mutex> lock(mu_);
        return q_.empty();
    }
    CutChannelStats stats() const {
        std::lock_guard<std::mutex> lock(mu_);
        return stats_;
    }

 private:
    struct Entry {
        Cycle cycle;
        T value;
    };

    /// Bytes a payload contributes to the consumer-side FIFO bound.
    /// Specialized for packet pointers below; other payloads count zero
    /// (their channels do not participate in byte-credit admission).
    static uint64_t payload_bytes(const T& v) {
        if constexpr (requires { v->size(); }) {
            return v ? v->size() : 0;
        } else {
            return 0;
        }
    }

    static constexpr Cycle kNoTag = ~Cycle(0);

    const Cycle latency_;
    mutable std::mutex mu_;
    std::atomic<Cycle> front_tag_{kNoTag};
    std::deque<Entry> q_;
    uint64_t credit_bytes_ = 0;
    uint64_t credit_count_ = 0;
    uint64_t drained_bytes_ = 0;
    CutChannelStats stats_;
};

/// Executable form of a certified ShardPlan: which kernel components run
/// on which worker, and the synchronization each shard owes its peers.
/// Built by System from lint::certify_partition output — never by hand in
/// production code (the latencies are *proof obligations*; see
/// obs::ShardLatencyRecorder for the dynamic cross-check).
struct ShardSpec {
    /// A conservative-synchronization dependency: before executing local
    /// cycle T, wait until shard `shard` has completed cycle T - lookahead
    /// (its `done` counter reaches T + 1 - lookahead).
    struct Wait {
        unsigned shard = 0;
        Cycle lookahead = 1;
    };

    /// How shard execution maps onto host threads. On a multi-core host
    /// each shard gets its own thread (kThreads); on a single hardware
    /// thread the same shard programs are interleaved cooperatively on
    /// the calling thread — identical results, no rendezvous spinning —
    /// which is also where the time-skip batching pays off. kAuto picks
    /// by std::thread::hardware_concurrency().
    enum class Exec { kAuto, kThreads, kCoop };

    struct Shard {
        /// Components this shard ticks and commits, in tick order.
        std::vector<Component*> components;
        /// Lookahead waits evaluated before each local tick.
        std::vector<Wait> start_waits;
        /// Producer shards whose same-cycle pushes this shard's end hook
        /// integrates: wait for their `done` to pass the current cycle.
        std::vector<unsigned> end_waits;
        /// Inbound cut channels (this shard is the consumer). The runner
        /// uses their pending tags + producer progress to bound how far
        /// local time may skip while every component is quiescent.
        std::vector<CutChannelBase*> in_channels;
        /// Runs once, serially, before the shard threads start (seed
        /// credit snapshots from committed state).
        std::function<void()> begin_hook;
        /// Runs at the end of every *executed* local cycle T, after this
        /// shard's commits and after the end_waits: drain inbound cut
        /// channels up to T and publish credit snapshots. Skipped
        /// (quiescent) cycles never run it — the contract is that it is
        /// the identity when the shard is asleep and its channels quiet.
        std::function<void(Cycle)> end_hook;
        /// >1 partitions this shard's tick phase over that many threads
        /// (the sanctioned composition with the parallel tick executor:
        /// ticks only read committed state, so intra-shard tick order is
        /// unobservable; commits stay serial per shard). Thread mode only.
        unsigned tick_workers = 0;
    };

    std::vector<Shard> shards;
    /// Shard whose worker commits the always-clocked elements (e.g. the
    /// load balancer's CommitAdapter). Must be the shard on which every
    /// stager of those elements runs.
    unsigned primary = 0;
    Exec exec = Exec::kAuto;
};

}  // namespace rosebud::sim

#endif  // ROSEBUD_SIM_SHARD_H
