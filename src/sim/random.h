/// \file
/// Deterministic pseudo-random source (splitmix64 seeded xoshiro256**).
///
/// All randomness in experiments flows from an Rng seeded by the bench
/// harness, making every run bit-for-bit reproducible.

#ifndef ROSEBUD_SIM_RANDOM_H
#define ROSEBUD_SIM_RANDOM_H

#include <cstdint>

namespace rosebud::sim {

/// xoshiro256** PRNG with splitmix64 seeding. Fast, high quality, and —
/// unlike std::mt19937 — identical across standard library versions.
class Rng {
 public:
    explicit Rng(uint64_t seed = 0x5eedb0dULL) { reseed(seed); }

    void reseed(uint64_t seed) {
        uint64_t x = seed;
        for (auto& word : s_) word = splitmix64(x);
    }

    /// Next raw 64-bit value.
    uint64_t next() {
        uint64_t result = rotl(s_[1] * 5, 7) * 9;
        uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /// Uniform integer in [0, bound). bound must be > 0.
    uint64_t below(uint64_t bound) { return next() % bound; }

    /// Uniform integer in [lo, hi] inclusive.
    uint64_t range(uint64_t lo, uint64_t hi) { return lo + below(hi - lo + 1); }

    /// Uniform double in [0, 1).
    double uniform() { return double(next() >> 11) * (1.0 / 9007199254740992.0); }

    /// Bernoulli trial with probability p.
    bool chance(double p) { return uniform() < p; }

 private:
    static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

    static uint64_t splitmix64(uint64_t& x) {
        uint64_t z = (x += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    uint64_t s_[4];
};

}  // namespace rosebud::sim

#endif  // ROSEBUD_SIM_RANDOM_H
