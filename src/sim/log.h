/// \file
/// Minimal leveled logging for the simulator.
///
/// Mirrors the gem5 convention: `fatal` for user/config errors (throws,
/// callers may catch), `panic` for internal invariant violations (aborts),
/// `warn`/`inform` for status. Debug logging compiles away unless enabled.

#ifndef ROSEBUD_SIM_LOG_H
#define ROSEBUD_SIM_LOG_H

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace rosebud::sim {

/// Thrown by fatal(); represents an unusable user configuration.
class FatalError : public std::runtime_error {
 public:
    explicit FatalError(const std::string& what) : std::runtime_error(what) {}
};

/// Global log verbosity. 0 = quiet, 1 = inform, 2 = debug.
int log_level();
void set_log_level(int level);

/// The simulation cannot continue due to a user error (bad config,
/// invalid arguments). Throws FatalError.
[[noreturn]] void fatal(const std::string& msg);

/// Internal invariant violated — a simulator bug. Aborts.
[[noreturn]] void panic(const std::string& msg);

/// Something is off but the simulation can proceed.
void warn(const std::string& msg);

/// Status message for the user.
void inform(const std::string& msg);

/// Verbose per-event tracing; only emitted at log level >= 2.
void debug(const std::string& msg);

}  // namespace rosebud::sim

#endif  // ROSEBUD_SIM_LOG_H
