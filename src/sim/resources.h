/// \file
/// FPGA resource footprint accounting (LUTs / registers / BRAM / URAM / DSP).
///
/// Tables 1-4 of the paper report Vivado utilization per component. Without
/// a synthesis toolchain we reproduce them with a parametric model: every
/// simulated hardware component computes its footprint from its
/// architectural parameters (bus widths, FIFO depths, engine counts) using
/// coefficients calibrated against the paper's tables. Footprints add, and
/// can be printed as absolute counts or as percentages of a device.

#ifndef ROSEBUD_SIM_RESOURCES_H
#define ROSEBUD_SIM_RESOURCES_H

#include <cstdint>
#include <string>

namespace rosebud::sim {

/// One component's FPGA resource usage.
struct ResourceFootprint {
    uint64_t luts = 0;
    uint64_t regs = 0;
    uint64_t bram = 0;  ///< 36Kb block RAMs
    uint64_t uram = 0;  ///< 288Kb UltraRAMs
    uint64_t dsp = 0;

    ResourceFootprint& operator+=(const ResourceFootprint& o) {
        luts += o.luts;
        regs += o.regs;
        bram += o.bram;
        uram += o.uram;
        dsp += o.dsp;
        return *this;
    }

    friend ResourceFootprint operator+(ResourceFootprint a, const ResourceFootprint& b) {
        a += b;
        return a;
    }

    friend ResourceFootprint operator*(ResourceFootprint a, uint64_t n) {
        a.luts *= n;
        a.regs *= n;
        a.bram *= n;
        a.uram *= n;
        a.dsp *= n;
        return a;
    }

    /// Component-wise subtraction, clamped at zero (for "remaining in
    /// region" rows of the paper's tables).
    ResourceFootprint saturating_sub(const ResourceFootprint& o) const {
        auto sub = [](uint64_t a, uint64_t b) { return a > b ? a - b : 0; };
        return {sub(luts, o.luts), sub(regs, o.regs), sub(bram, o.bram), sub(uram, o.uram),
                sub(dsp, o.dsp)};
    }

    bool operator==(const ResourceFootprint&) const = default;
};

/// Device capacities: Xilinx XCVU9P (paper Tables 1-2 bottom row).
inline constexpr ResourceFootprint kXcvu9p{1182240, 2364480, 2160, 960, 6840};

/// Format a footprint as "N (P%)" columns relative to `device`;
/// device totals of zero print absolute counts only.
std::string format_footprint_row(const std::string& name, const ResourceFootprint& fp,
                                 const ResourceFootprint& device);

}  // namespace rosebud::sim

#endif  // ROSEBUD_SIM_RESOURCES_H
