#include "sim/stats.h"

#include <cmath>
#include <numeric>
#include <sstream>

namespace rosebud::sim {

namespace {

// splitmix64 step for the deterministic reservoir PRNG.
uint64_t
mix64(uint64_t& state) {
    state += 0x9e3779b97f4a7c15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

}  // namespace

void
Sampler::add(double v) {
    if (seen_ == 0) {
        exact_min_ = exact_max_ = v;
    } else {
        exact_min_ = std::min(exact_min_, v);
        exact_max_ = std::max(exact_max_, v);
    }
    sum_ += v;
    ++seen_;
    if (reservoir_cap_ == 0 || samples_.size() < reservoir_cap_) {
        samples_.push_back(v);
        return;
    }
    // Algorithm R: keep the new sample with probability cap/seen.
    uint64_t j = mix64(rng_state_) % seen_;
    if (j < reservoir_cap_) samples_[size_t(j)] = v;
}

void
Sampler::set_reservoir(size_t cap) {
    reservoir_cap_ = cap;
    if (cap != 0 && samples_.size() > cap) {
        samples_.resize(cap);
        samples_.shrink_to_fit();
    }
}

void
Sampler::reset() {
    samples_.clear();
    seen_ = 0;
    sum_ = 0;
    exact_min_ = exact_max_ = 0;
}

double
Sampler::min() const {
    return seen_ == 0 ? 0.0 : exact_min_;
}

double
Sampler::max() const {
    return seen_ == 0 ? 0.0 : exact_max_;
}

double
Sampler::mean() const {
    if (seen_ == 0) return 0.0;
    return sum_ / double(seen_);
}

double
Sampler::percentile(double p) const {
    if (samples_.empty()) return 0.0;
    if (!(p > 0.0)) p = 0.0;  // negative and NaN clamp to the minimum
    if (p > 1.0) p = 1.0;
    std::vector<double> s = samples_;
    std::sort(s.begin(), s.end());
    double idx = p * double(s.size() - 1);
    size_t lo = size_t(std::floor(idx));
    size_t hi = std::min(size_t(std::ceil(idx)), s.size() - 1);
    double frac = idx - double(lo);
    return s[lo] * (1.0 - frac) + s[hi] * frac;
}

uint64_t
Stats::get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.get();
}

void
Stats::reset_all() {
    for (auto& [_, c] : counters_) c.reset();
    for (auto& [_, s] : samplers_) s.reset();
}

std::string
Stats::to_string() const {
    std::ostringstream os;
    for (const auto& [name, c] : counters_) os << name << " = " << c.get() << "\n";
    for (const auto& [name, s] : samplers_) {
        os << name << " : n=" << s.count() << " mean=" << s.mean() << " min=" << s.min()
           << " max=" << s.max() << "\n";
    }
    return os.str();
}

namespace {

// RFC 4180 field quoting: names containing commas, quotes or newlines are
// wrapped in double quotes with embedded quotes doubled, so a dotted name
// like `lb.assigned,total` survives a round-trip through a CSV parser.
std::string
csv_field(const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"') out += '"';
        out += c;
    }
    out += '"';
    return out;
}

}  // namespace

std::string
Stats::to_csv() const {
    std::ostringstream os;
    os << "name,kind,count,mean,min,max,p50,p99\n";
    for (const auto& [name, c] : counters_) {
        os << csv_field(name) << ",counter," << c.get() << ",,,,,\n";
    }
    for (const auto& [name, s] : samplers_) {
        os << csv_field(name) << ",sampler," << s.count() << "," << s.mean() << ","
           << s.min() << "," << s.max() << "," << s.percentile(0.5) << ","
           << s.percentile(0.99) << "\n";
    }
    return os.str();
}

}  // namespace rosebud::sim
