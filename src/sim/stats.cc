#include "sim/stats.h"

#include <cmath>
#include <numeric>
#include <sstream>

namespace rosebud::sim {

double
Sampler::min() const {
    return samples_.empty() ? 0.0 : *std::min_element(samples_.begin(), samples_.end());
}

double
Sampler::max() const {
    return samples_.empty() ? 0.0 : *std::max_element(samples_.begin(), samples_.end());
}

double
Sampler::mean() const {
    if (samples_.empty()) return 0.0;
    return std::accumulate(samples_.begin(), samples_.end(), 0.0) / double(samples_.size());
}

double
Sampler::percentile(double p) const {
    if (samples_.empty()) return 0.0;
    std::vector<double> s = samples_;
    std::sort(s.begin(), s.end());
    double idx = p * double(s.size() - 1);
    size_t lo = size_t(std::floor(idx));
    size_t hi = size_t(std::ceil(idx));
    double frac = idx - double(lo);
    return s[lo] * (1.0 - frac) + s[hi] * frac;
}

uint64_t
Stats::get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.get();
}

void
Stats::reset_all() {
    for (auto& [_, c] : counters_) c.reset();
    for (auto& [_, s] : samplers_) s.reset();
}

std::string
Stats::to_string() const {
    std::ostringstream os;
    for (const auto& [name, c] : counters_) os << name << " = " << c.get() << "\n";
    for (const auto& [name, s] : samplers_) {
        os << name << " : n=" << s.count() << " mean=" << s.mean() << " min=" << s.min()
           << " max=" << s.max() << "\n";
    }
    return os.str();
}

std::string
Stats::to_csv() const {
    std::ostringstream os;
    os << "name,kind,count,mean,min,max\n";
    for (const auto& [name, c] : counters_) {
        os << name << ",counter," << c.get() << ",,,\n";
    }
    for (const auto& [name, s] : samplers_) {
        os << name << ",sampler," << s.count() << "," << s.mean() << "," << s.min()
           << "," << s.max() << "\n";
    }
    return os.str();
}

}  // namespace rosebud::sim
