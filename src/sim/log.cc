#include "sim/log.h"

namespace rosebud::sim {

namespace {
int g_log_level = 0;
}  // namespace

int log_level() { return g_log_level; }
void set_log_level(int level) { g_log_level = level; }

void
fatal(const std::string& msg) {
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    throw FatalError(msg);
}

void
panic(const std::string& msg) {
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

void
warn(const std::string& msg) {
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const std::string& msg) {
    if (g_log_level >= 1) std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
debug(const std::string& msg) {
    if (g_log_level >= 2) std::fprintf(stderr, "debug: %s\n", msg.c_str());
}

}  // namespace rosebud::sim
