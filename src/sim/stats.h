/// \file
/// Lightweight statistics registry.
///
/// Models the host-readable status counters of Section 4.3 ("number of
/// transferred bytes, frames, drops, or stalled cycles") and doubles as the
/// bench harness's measurement substrate. Counters are plain uint64 cells
/// addressed by hierarchical dotted names; Samplers accumulate value
/// distributions (min/max/mean/percentiles) for latency measurements.

#ifndef ROSEBUD_SIM_STATS_H
#define ROSEBUD_SIM_STATS_H

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rosebud::sim {

/// A monotonically increasing event/byte counter.
class Counter {
 public:
    void add(uint64_t n = 1) { value_ += n; }
    uint64_t get() const { return value_; }
    void reset() { value_ = 0; }

 private:
    uint64_t value_ = 0;
};

/// Accumulates a distribution of samples (e.g. per-packet latency in ns).
class Sampler {
 public:
    void add(double v) { samples_.push_back(v); }

    size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    double min() const;
    double max() const;
    double mean() const;

    /// p in [0,1]; e.g. 0.5 for median, 0.99 for p99.
    double percentile(double p) const;

    void reset() { samples_.clear(); }

    const std::vector<double>& samples() const { return samples_; }

 private:
    std::vector<double> samples_;
};

/// Named registry of counters and samplers. One per simulated system.
class Stats {
 public:
    /// Find-or-create a counter by dotted name.
    Counter& counter(const std::string& name) { return counters_[name]; }

    /// Find-or-create a sampler by dotted name.
    Sampler& sampler(const std::string& name) { return samplers_[name]; }

    /// Committed counter value, 0 if the counter does not exist.
    uint64_t get(const std::string& name) const;

    /// Reset every counter and sampler (e.g. after warm-up).
    void reset_all();

    /// Dump all counters to a human-readable multi-line string.
    std::string to_string() const;

    /// Dump counters and sampler summaries as CSV ("name,kind,value,...")
    /// for spreadsheet/plotting pipelines.
    std::string to_csv() const;

    const std::map<std::string, Counter>& counters() const { return counters_; }
    const std::map<std::string, Sampler>& samplers() const { return samplers_; }

 private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Sampler> samplers_;
};

}  // namespace rosebud::sim

#endif  // ROSEBUD_SIM_STATS_H
