/// \file
/// Lightweight statistics registry.
///
/// Models the host-readable status counters of Section 4.3 ("number of
/// transferred bytes, frames, drops, or stalled cycles") and doubles as the
/// bench harness's measurement substrate. Counters are plain uint64 cells
/// addressed by hierarchical dotted names; Samplers accumulate value
/// distributions (min/max/mean/percentiles) for latency measurements.

#ifndef ROSEBUD_SIM_STATS_H
#define ROSEBUD_SIM_STATS_H

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rosebud::sim {

/// A monotonically increasing event/byte counter.
class Counter {
 public:
    void add(uint64_t n = 1) { value_ += n; }
    uint64_t get() const { return value_; }
    void reset() { value_ = 0; }

 private:
    uint64_t value_ = 0;
};

/// Accumulates a distribution of samples (e.g. per-packet latency in ns).
///
/// Unbounded by default (every sample is retained). For million-packet
/// runs call set_reservoir(cap): retention switches to Vitter's algorithm R
/// with a deterministic PRNG, so memory is bounded at `cap` samples while
/// min/max/mean stay exact (they are tracked over *all* samples) and
/// percentiles become reservoir estimates. Note the retained subset depends
/// on sample arrival order, so reservoir mode is not suitable for runs that
/// must produce tick-order-independent state fingerprints; the default
/// (retain everything) remains order-independent.
class Sampler {
 public:
    void add(double v);

    /// Retained sample count (== seen() unless a reservoir cap is active).
    size_t count() const { return samples_.size(); }
    /// Total samples ever added (survives reservoir eviction, not reset()).
    uint64_t seen() const { return seen_; }
    bool empty() const { return samples_.empty(); }

    double min() const;
    double max() const;
    double mean() const;

    /// p is clamped to [0,1] (NaN maps to 0); e.g. 0.5 for median.
    double percentile(double p) const;

    /// Bound retention to `cap` samples via reservoir sampling (0 restores
    /// unbounded retention). Samples already held beyond `cap` are truncated.
    void set_reservoir(size_t cap);
    size_t reservoir() const { return reservoir_cap_; }

    void reset();

    const std::vector<double>& samples() const { return samples_; }

 private:
    std::vector<double> samples_;
    size_t reservoir_cap_ = 0;  ///< 0 = retain everything
    uint64_t seen_ = 0;
    uint64_t rng_state_ = 0x243f6a8885a308d3ull;  ///< deterministic reservoir PRNG
    double exact_min_ = 0, exact_max_ = 0, sum_ = 0;  ///< over all seen samples
};

/// Named registry of counters and samplers. One per simulated system.
class Stats {
 public:
    /// Find-or-create a counter by dotted name.
    Counter& counter(const std::string& name) { return counters_[name]; }

    /// Find-or-create a sampler by dotted name.
    Sampler& sampler(const std::string& name) { return samplers_[name]; }

    /// Committed counter value, 0 if the counter does not exist.
    uint64_t get(const std::string& name) const;

    /// Reset every counter and sampler (e.g. after warm-up).
    void reset_all();

    /// Dump all counters to a human-readable multi-line string.
    std::string to_string() const;

    /// Dump counters and sampler summaries as CSV ("name,kind,value,...")
    /// for spreadsheet/plotting pipelines.
    std::string to_csv() const;

    const std::map<std::string, Counter>& counters() const { return counters_; }
    const std::map<std::string, Sampler>& samplers() const { return samplers_; }

 private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Sampler> samplers_;
};

}  // namespace rosebud::sim

#endif  // ROSEBUD_SIM_STATS_H
