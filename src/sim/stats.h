/// \file
/// Lightweight statistics registry.
///
/// Models the host-readable status counters of Section 4.3 ("number of
/// transferred bytes, frames, drops, or stalled cycles") and doubles as the
/// bench harness's measurement substrate. Counters are plain uint64 cells
/// addressed by hierarchical dotted names; Samplers accumulate value
/// distributions (min/max/mean/percentiles) for latency measurements.

#ifndef ROSEBUD_SIM_STATS_H
#define ROSEBUD_SIM_STATS_H

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace rosebud::sim {

/// A monotonically increasing event/byte counter.
///
/// The cell is a relaxed atomic so components ticked on different threads
/// of the kernel's parallel executor may bump a shared counter (e.g. two
/// RPUs incrementing the same accelerator counter): the final sum is
/// schedule-independent because addition commutes. On the serial path a
/// relaxed fetch_add costs the same as the plain add on x86/ARM hot loops.
class Counter {
 public:
    Counter() = default;
    Counter(const Counter& o) : value_(o.get()) {}
    Counter& operator=(const Counter& o) {
        value_.store(o.get(), std::memory_order_relaxed);
        return *this;
    }

    void add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
    uint64_t get() const { return value_.load(std::memory_order_relaxed); }
    void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
    std::atomic<uint64_t> value_{0};
};

/// Accumulates a distribution of samples (e.g. per-packet latency in ns).
///
/// Unbounded by default (every sample is retained). For million-packet
/// runs call set_reservoir(cap): retention switches to Vitter's algorithm R
/// with a deterministic PRNG, so memory is bounded at `cap` samples while
/// min/max/mean stay exact (they are tracked over *all* samples) and
/// percentiles become reservoir estimates. Note the retained subset depends
/// on sample arrival order, so reservoir mode is not suitable for runs that
/// must produce tick-order-independent state fingerprints; the default
/// (retain everything) remains order-independent.
class Sampler {
 public:
    void add(double v);

    /// Retained sample count (== seen() unless a reservoir cap is active).
    size_t count() const { return samples_.size(); }
    /// Total samples ever added (survives reservoir eviction, not reset()).
    uint64_t seen() const { return seen_; }
    bool empty() const { return samples_.empty(); }

    double min() const;
    double max() const;
    double mean() const;

    /// p is clamped to [0,1] (NaN maps to 0); e.g. 0.5 for median.
    double percentile(double p) const;

    /// Bound retention to `cap` samples via reservoir sampling (0 restores
    /// unbounded retention). Samples already held beyond `cap` are truncated.
    void set_reservoir(size_t cap);
    size_t reservoir() const { return reservoir_cap_; }

    void reset();

    const std::vector<double>& samples() const { return samples_; }

 private:
    std::vector<double> samples_;
    size_t reservoir_cap_ = 0;  ///< 0 = retain everything
    uint64_t seen_ = 0;
    uint64_t rng_state_ = 0x243f6a8885a308d3ull;  ///< deterministic reservoir PRNG
    double exact_min_ = 0, exact_max_ = 0, sum_ = 0;  ///< over all seen samples
};

/// Named registry of counters and samplers. One per simulated system.
///
/// `counter()`/`sampler()` return node-stable references: components cache
/// the returned handle at elaboration time and bump it directly on the hot
/// path (no per-event string building or map walk). The find-or-create
/// lookup itself is mutex-guarded so a cold-path lookup from a parallel
/// tick partition (e.g. an accelerator lazily resolving its counters) is
/// safe; established handles need no lock.
class Stats {
 public:
    /// Find-or-create a counter by dotted name.
    Counter& counter(const std::string& name) {
        std::lock_guard<std::mutex> lock(mu_);
        return counters_[name];
    }

    /// Find-or-create a sampler by dotted name.
    Sampler& sampler(const std::string& name) {
        std::lock_guard<std::mutex> lock(mu_);
        return samplers_[name];
    }

    /// Committed counter value, 0 if the counter does not exist.
    uint64_t get(const std::string& name) const;

    /// Reset every counter and sampler (e.g. after warm-up).
    void reset_all();

    /// Dump all counters to a human-readable multi-line string.
    std::string to_string() const;

    /// Dump counters and sampler summaries as CSV ("name,kind,value,...")
    /// for spreadsheet/plotting pipelines.
    std::string to_csv() const;

    const std::map<std::string, Counter>& counters() const { return counters_; }
    const std::map<std::string, Sampler>& samplers() const { return samplers_; }

 private:
    mutable std::mutex mu_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Sampler> samplers_;
};

}  // namespace rosebud::sim

#endif  // ROSEBUD_SIM_STATS_H
