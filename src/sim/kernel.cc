#include "sim/kernel.h"

namespace rosebud::sim {

Component::Component(Kernel& kernel, std::string name)
    : kernel_(kernel), name_(std::move(name)) {
    kernel.add_component(this);
}

void
Kernel::step() {
    for (Component* c : components_) c->tick();
    for (Component* c : components_) c->commit();
    for (Clocked* c : clocked_) c->commit();
    ++now_;
}

void
Kernel::run(Cycle cycles) {
    for (Cycle i = 0; i < cycles; ++i) step();
}

}  // namespace rosebud::sim
