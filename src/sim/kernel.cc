#include "sim/kernel.h"

#include <algorithm>

namespace rosebud::sim {

Component::Component(Kernel& kernel, std::string name)
    : kernel_(kernel), name_(std::move(name)) {
    kernel.add_component(this);
}

void
Kernel::step() {
    if (!prestep_done_) {
        prestep_done_ = true;
        if (prestep_hook_) prestep_hook_(*this);
    }
    phase_ = Phase::kTick;
    for (Component* c : components_) {
        active_ = c;
        c->tick();
    }
    phase_ = Phase::kCommit;
    for (Component* c : components_) {
        active_ = c;
        c->commit();
    }
    active_ = nullptr;
    for (Clocked* c : clocked_) c->commit();
    phase_ = Phase::kIdle;
    if (telemetry_) telemetry_->end_cycle(now_);
    ++now_;
}

void
Kernel::run(Cycle cycles) {
    for (Cycle i = 0; i < cycles; ++i) step();
}

namespace {

// splitmix64: small, well-mixed PRNG for the deterministic shuffle.
uint64_t
mix64(uint64_t& state) {
    state += 0x9e3779b97f4a7c15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

}  // namespace

void
Kernel::shuffle_tick_order(uint64_t seed) {
    uint64_t state = seed;
    // Fisher-Yates over the current registration order.
    for (size_t i = components_.size(); i > 1; --i) {
        size_t j = size_t(mix64(state) % i);
        std::swap(components_[i - 1], components_[j]);
    }
}

std::vector<std::string>
Kernel::tick_order() const {
    std::vector<std::string> names;
    names.reserve(components_.size());
    for (const Component* c : components_) names.push_back(c->name());
    return names;
}

void
Kernel::declare_net(NetRecord net) {
    for (NetRecord& n : nets_) {
        if (n.name == net.name) {
            n = std::move(net);
            return;
        }
    }
    nets_.push_back(std::move(net));
}

void
Kernel::declare_port(PortRecord port) {
    for (const PortRecord& p : ports_) {
        if (p.component == port.component && p.net == port.net &&
            p.dir == port.dir && p.width_bits == port.width_bits &&
            p.depth == port.depth) {
            return;
        }
    }
    ports_.push_back(std::move(port));
}

}  // namespace rosebud::sim
