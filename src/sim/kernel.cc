#include "sim/kernel.h"

#include <algorithm>

namespace rosebud::sim {

Component::Component(Kernel& kernel, std::string name)
    : kernel_(kernel), name_(std::move(name)) {
    kernel.add_component(this);
}

Kernel::~Kernel() { stop_pool(); }

void
Kernel::note_wake(Component& c) {
    if (phase_ != Phase::kIdle) {
        // A wake during the tick (or, defensively, commit) phase defers
        // the first scheduled tick to the next cycle: the sleeper could
        // not have observed the producer's staged output anyway, and
        // deferring keeps every schedule (serial, shuffled, parallel)
        // bit-identical regardless of whether the sleeper's partition
        // slot had already been passed. The skipped window — *including*
        // the current cycle — is accounted right here, while committed
        // state is still exactly what the sleeper would have observed
        // live (the producer's effect is only staged); its commit() still
        // runs this cycle, integrating any state the producer handed over.
        if (c.unaccounted_) {
            Cycle skipped = now_ + 1 - c.sleep_since_;
            if (skipped > 0) c.on_wake(skipped);
            c.sleep_since_ = now_ + 1;
            c.unaccounted_ = false;
        }
        c.wake_at_.store(now_ + 1, std::memory_order_relaxed);
    } else {
        // Host-phase wake: the component ticks this coming cycle; its
        // accounting is flushed by the tick loop (host mutators that
        // change sleeper-visible state call flush_skipped() first).
        c.wake_at_.store(now_, std::memory_order_relaxed);
    }
    awake_count_.fetch_add(1, std::memory_order_relaxed);
}

void
Kernel::flush_wake_accounting(Component* c) {
    if (!c->unaccounted_) return;
    Cycle skipped = now_ - c->sleep_since_;
    if (skipped > 0) c->on_wake(skipped);
    c->sleep_since_ = now_;
    // A component flushed while still asleep (host-boundary sync) keeps
    // accumulating from here; a woken one is fully accounted.
    c->unaccounted_ = !c->awake_.load(std::memory_order_relaxed);
}

void
Component::flush_skipped() { kernel_.flush_wake_accounting(this); }

void
Kernel::sync_sleepers() {
    for (Component* c : components_) flush_wake_accounting(c);
}

void
Kernel::wake_all() {
    for (Component* c : components_) {
        if (!c->awake_.exchange(true, std::memory_order_relaxed)) {
            c->wake_at_.store(now_, std::memory_order_relaxed);
            awake_count_.fetch_add(1, std::memory_order_relaxed);
        }
        flush_wake_accounting(c);
    }
}

void
Kernel::set_idle_skip(bool on) {
    idle_skip_ = on;
    if (!on) wake_all();
}

void
Kernel::sleep_sweep() {
    for (Component* c : components_) {
        if (!c->awake_.load(std::memory_order_relaxed)) continue;
        // Just-woken components get one tick before they may sleep again.
        if (c->wake_at_.load(std::memory_order_relaxed) >= now_) continue;
        if (!c->quiescent()) continue;
        c->awake_.store(false, std::memory_order_relaxed);
        awake_count_.fetch_sub(1, std::memory_order_relaxed);
        if (!c->unaccounted_) {
            c->sleep_since_ = now_;  // now_ is already the next cycle here
            c->unaccounted_ = true;
        }
    }
}

void
Kernel::build_wake_map() {
    wake_readers_.clear();
    std::unordered_map<std::string, Component*> by_name;
    by_name.reserve(components_.size());
    for (Component* c : components_) by_name[c->name()] = c;
    auto add = [&](const std::string& net, const std::string& component) {
        auto it = by_name.find(component);
        if (it == by_name.end()) return;  // external endpoint (host, wire)
        auto& targets = wake_readers_[net];
        if (std::find(targets.begin(), targets.end(), it->second) == targets.end())
            targets.push_back(it->second);
    };
    // Registered-credit nets return credit with one cycle of latency: a
    // pop is an observable event for the *writer* (its can_push answer
    // changes next cycle), so the writer needs a wake edge too — a
    // producer sleeping on a full FIFO must tick again when space opens.
    std::unordered_map<std::string, bool> registered_credit;
    for (const NetRecord& n : nets_) {
        registered_credit[n.name] = n.credit == NetRecord::kCreditRegistered;
    }
    for (const PortRecord& p : ports_) {
        if (p.dir == PortRecord::kRead) {
            add(p.net, p.component);
        } else if (p.dir == PortRecord::kWrite && registered_credit[p.net]) {
            add(p.net, p.component);
        }
    }
    wake_map_built_ = true;
    ++wake_epoch_;
}

const std::vector<Component*>*
Kernel::wake_list(const std::string& net) const {
    auto it = wake_readers_.find(net);
    return it == wake_readers_.end() ? nullptr : &it->second;
}

void
Kernel::tick_partition(unsigned part, unsigned nparts) {
    const Cycle now = now_;
    for (size_t i = part; i < components_.size(); i += nparts) {
        Component* c = components_[i];
        if (!c->awake_.load(std::memory_order_relaxed)) continue;
        if (c->wake_at_.load(std::memory_order_relaxed) > now) continue;
        flush_wake_accounting(c);
        c->tick();
    }
}

void
Kernel::stop_pool() {
    if (workers_.empty()) return;
    {
        std::lock_guard<std::mutex> lock(pool_mu_);
        pool_stop_ = true;
    }
    pool_start_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
    workers_.clear();
    pool_stop_ = false;
}

void
Kernel::set_parallel_ticks(unsigned n) {
    if (n == parallel_ticks_) return;
    stop_pool();
    parallel_ticks_ = n;
    if (n <= 1) return;
    workers_.reserve(n - 1);
    for (unsigned w = 1; w < n; ++w) {
        workers_.emplace_back([this, w, n] {
            uint64_t seen = 0;
            for (;;) {
                {
                    std::unique_lock<std::mutex> lock(pool_mu_);
                    pool_start_cv_.wait(
                        lock, [&] { return pool_stop_ || pool_gen_ != seen; });
                    if (pool_stop_) return;
                    seen = pool_gen_;
                }
                tick_partition(w, n);
                {
                    std::lock_guard<std::mutex> lock(pool_mu_);
                    --pool_pending_;
                }
                pool_done_cv_.notify_one();
            }
        });
    }
}

void
Kernel::step() {
    if (!prestep_done_) {
        prestep_done_ = true;
        if (prestep_hook_) prestep_hook_(*this);
    }
    const bool skipping = idle_skip_effective();
    if (skipping && !wake_map_built_) build_wake_map();

    phase_ = Phase::kTick;
    if (parallel_effective() && !workers_.empty()) {
        // active_ stays null: parallel ticking implies race_check_ off, so
        // nothing consults the actor. The pool handshake's mutex gives the
        // needed happens-before edges in both directions.
        const unsigned nparts = unsigned(workers_.size()) + 1;
        {
            std::lock_guard<std::mutex> lock(pool_mu_);
            ++pool_gen_;
            pool_pending_ = nparts - 1;
        }
        pool_start_cv_.notify_all();
        tick_partition(0, nparts);
        {
            std::unique_lock<std::mutex> lock(pool_mu_);
            pool_done_cv_.wait(lock, [&] { return pool_pending_ == 0; });
        }
    } else {
        for (Component* c : components_) {
            if (!c->awake_.load(std::memory_order_relaxed)) continue;
            if (c->wake_at_.load(std::memory_order_relaxed) > now_) continue;
            // Set the actor before flushing: on_wake() may replay component
            // ticks that touch the component's own FIFOs.
            active_ = c;
            flush_wake_accounting(c);
            c->tick();
        }
        active_ = nullptr;
    }

    phase_ = Phase::kCommit;
    for (Component* c : components_) {
        // Commits run for every awake component — including ones woken
        // mid-tick whose first tick is next cycle: their staged input
        // (e.g. an RPU's rx_pending_) must be integrated this edge.
        if (!c->awake_.load(std::memory_order_relaxed)) continue;
        active_ = c;
        c->commit();
    }
    active_ = nullptr;
    for (Clocked* c : clocked_) c->commit();
    if (telemetry_ || commit_compat_) {
        // Telemetry needs per-cycle occupancy from every primitive, so the
        // lazy set is swept in (deterministic) registration order. The
        // baseline-compat benchmark mode sweeps for cost parity with the
        // pre-fast-path kernel.
        for (Clocked* c : lazy_clocked_) {
            c->commit_queued_.store(false, std::memory_order_relaxed);
            c->commit();
        }
        commit_queue_.clear();
    } else {
        // Index loop: commits above (e.g. a component integrating staged
        // input into one of its FIFOs) may append while we drain.
        for (size_t i = 0; i < commit_queue_.size(); ++i) {
            Clocked* c = commit_queue_[i];
            c->commit_queued_.store(false, std::memory_order_relaxed);
            c->commit();
        }
        commit_queue_.clear();
    }
    phase_ = Phase::kIdle;
    if (telemetry_) telemetry_->end_cycle(now_);
    if (health_probe_) health_probe_->on_cycle(now_);
    ++now_;
    // Sweep for sleepers every 4th cycle only: quiescent() is virtual and
    // the sweep polls every awake component. Delaying sleep is always exact
    // (a quiescent component's live ticks match its on_wake replay); it
    // only costs at most 3 extra stepped cycles per sleep transition.
    if (skipping && (now_ & 3) == 0) sleep_sweep();
}

void
Kernel::run(Cycle cycles) {
    const Cycle end = now_ + cycles;
    while (now_ < end) {
        if (prestep_done_ && idle_skip_effective() &&
            awake_count_.load(std::memory_order_relaxed) == 0) {
            // Whole-system quiescence: nothing can wake without a
            // host-side call, which cannot happen inside this loop.
            fast_forwarded_ += end - now_;
            now_ = end;
            break;
        }
        step();
    }
    sync_sleepers();
}

namespace {

// splitmix64: small, well-mixed PRNG for the deterministic shuffle.
uint64_t
mix64(uint64_t& state) {
    state += 0x9e3779b97f4a7c15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

}  // namespace

void
Kernel::shuffle_tick_order(uint64_t seed) {
    uint64_t state = seed;
    // Fisher-Yates over the current registration order.
    for (size_t i = components_.size(); i > 1; --i) {
        size_t j = size_t(mix64(state) % i);
        std::swap(components_[i - 1], components_[j]);
    }
}

std::vector<std::string>
Kernel::tick_order() const {
    std::vector<std::string> names;
    names.reserve(components_.size());
    for (const Component* c : components_) names.push_back(c->name());
    return names;
}

void
Kernel::register_occupancy_probe(std::string net, size_t capacity,
                                 const void* owner, std::function<size_t()> fn) {
    for (OccupancyProbe& p : occupancy_probes_) {
        if (p.net == net) {
            p.capacity = capacity;
            p.owner = owner;
            p.fn = std::move(fn);
            return;
        }
    }
    occupancy_probes_.push_back(
        {std::move(net), capacity, owner, std::move(fn)});
}

void
Kernel::unregister_occupancy_probe(const std::string& net, const void* owner) {
    for (auto it = occupancy_probes_.begin(); it != occupancy_probes_.end();
         ++it) {
        if (it->net == net && it->owner == owner) {
            occupancy_probes_.erase(it);
            return;
        }
    }
}

void
Kernel::declare_net(NetRecord net) {
    wake_map_built_ = false;
    for (NetRecord& n : nets_) {
        if (n.name == net.name) {
            n = std::move(net);
            return;
        }
    }
    nets_.push_back(std::move(net));
}

void
Kernel::declare_port(PortRecord port) {
    for (const PortRecord& p : ports_) {
        if (p.component == port.component && p.net == port.net &&
            p.dir == port.dir && p.width_bits == port.width_bits &&
            p.depth == port.depth) {
            return;
        }
    }
    wake_map_built_ = false;
    ports_.push_back(std::move(port));
}

}  // namespace rosebud::sim
