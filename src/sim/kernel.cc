#include "sim/kernel.h"

#include <algorithm>
#include <unordered_map>

#include "sim/log.h"
#include "sim/shard.h"

namespace rosebud::sim {

namespace {

inline void
cpu_pause() {
#if defined(__x86_64__) || defined(_M_X64)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield");
#endif
}

}  // namespace

/// Per-shard execution state for the time-decoupled executor
/// (DESIGN.md §16). `done` is the shard's published progress: the first
/// cycle it has NOT yet completed. Peers poll it with acquire loads; the
/// release store at the end of each local cycle (or skip window)
/// publishes everything the shard committed — and drained into its cut
/// channels — up to that point.
struct Kernel::ShardRun {
    unsigned index = 0;
    std::vector<Component*> comps;
    std::vector<Component*> gated;  ///< comps with the self-advance contract
    std::vector<ShardSpec::Wait> start_waits;
    std::vector<unsigned> end_waits;
    std::vector<CutChannelBase*> in_channels;
    std::function<void()> begin_hook;
    std::function<void(Cycle)> end_hook;
    unsigned tick_workers = 0;
    bool commits_always_clocked = false;

    // Runner-private cursors (touched only by the thread currently
    // advancing this shard).
    Cycle cur = 0;  ///< next local cycle to execute
    Cycle end = 0;  ///< run bound (exclusive)

    // Cumulative progress accounting (runner-private; read after a run).
    uint64_t stat_executed = 0;       ///< cycles run through tick+commit
    uint64_t stat_skipped = 0;        ///< cycles collapsed by time-skips
    uint64_t stat_skip_jumps = 0;     ///< number of time-skip jumps

    /// Heuristic: only attempt the time-skip computation after a cycle
    /// whose tick phase ran no component (a busy shard would waste a full
    /// component scan per cycle discovering skip == 0).
    bool try_skip = true;

    std::atomic<Cycle> done{0};
    std::atomic<Cycle> local_now{0};
    std::atomic<uint8_t> local_phase{0};  // Kernel::Phase
    std::vector<Clocked*> commit_queue;
    std::mutex commit_mu;

    // Intra-shard tick helper pool handshake (thread mode only).
    std::atomic<uint64_t> tick_gen{0};
    std::atomic<unsigned> tick_done{0};
    std::atomic<bool> helpers_stop{false};
    bool helpers_active = false;
};

thread_local Kernel::ShardRun* Kernel::t_shard_ = nullptr;

Component::Component(Kernel& kernel, std::string name)
    : kernel_(kernel), name_(std::move(name)) {
    kernel.add_component(this);
}

Kernel::Kernel() = default;

Kernel::~Kernel() { stop_pool(); }

void
Kernel::note_wake(Component& c) {
    // phase()/now() route to the calling shard's local clock during a
    // decoupled run (all wakes of a component happen on its own shard's
    // worker) and to the global clock in the barrier regime.
    if (phase() != Phase::kIdle) {
        // A wake during the tick (or, defensively, commit) phase defers
        // the first scheduled tick to the next cycle: the sleeper could
        // not have observed the producer's staged output anyway, and
        // deferring keeps every schedule (serial, shuffled, parallel)
        // bit-identical regardless of whether the sleeper's partition
        // slot had already been passed. The skipped window — *including*
        // the current cycle — is accounted right here, while committed
        // state is still exactly what the sleeper would have observed
        // live (the producer's effect is only staged); its commit() still
        // runs this cycle, integrating any state the producer handed over.
        const Cycle t = now();
        if (c.unaccounted_) {
            Cycle skipped = t + 1 - c.sleep_since_;
            if (skipped > 0) c.on_wake(skipped);
            c.sleep_since_ = t + 1;
            c.unaccounted_ = false;
        }
        c.wake_at_.store(t + 1, std::memory_order_relaxed);
    } else {
        // Host-phase wake: the component ticks this coming cycle; its
        // accounting is flushed by the tick loop (host mutators that
        // change sleeper-visible state call flush_skipped() first).
        c.wake_at_.store(now(), std::memory_order_relaxed);
    }
    awake_count_.fetch_add(1, std::memory_order_relaxed);
}

void
Kernel::flush_wake_accounting(Component* c) {
    if (!c->unaccounted_) return;
    // now() is the flushing shard's local clock during a decoupled run
    // (a component is only flushed by its own shard's worker) and the
    // global clock otherwise.
    const Cycle t = now();
    Cycle skipped = t - c->sleep_since_;
    if (skipped > 0) c->on_wake(skipped);
    c->sleep_since_ = t;
    // A component flushed while still asleep (host-boundary sync) keeps
    // accumulating from here; a woken one is fully accounted.
    c->unaccounted_ = !c->awake_.load(std::memory_order_relaxed);
}

void
Component::flush_skipped() { kernel_.flush_wake_accounting(this); }

void
Kernel::sync_sleepers() {
    for (Component* c : components_) flush_wake_accounting(c);
}

void
Kernel::wake_all() {
    for (Component* c : components_) {
        if (!c->awake_.exchange(true, std::memory_order_relaxed)) {
            c->wake_at_.store(now_, std::memory_order_relaxed);
            awake_count_.fetch_add(1, std::memory_order_relaxed);
        }
        flush_wake_accounting(c);
    }
}

void
Kernel::set_idle_skip(bool on) {
    idle_skip_ = on;
    if (!on) wake_all();
}

void
Kernel::sleep_sweep() {
    for (Component* c : components_) {
        if (!c->awake_.load(std::memory_order_relaxed)) continue;
        // Just-woken components get one tick before they may sleep again.
        if (c->wake_at_.load(std::memory_order_relaxed) >= now_) continue;
        if (!c->quiescent()) continue;
        c->awake_.store(false, std::memory_order_relaxed);
        awake_count_.fetch_sub(1, std::memory_order_relaxed);
        if (!c->unaccounted_) {
            c->sleep_since_ = now_;  // now_ is already the next cycle here
            c->unaccounted_ = true;
        }
    }
}

void
Kernel::build_wake_map() {
    wake_readers_.clear();
    std::unordered_map<std::string, Component*> by_name;
    by_name.reserve(components_.size());
    for (Component* c : components_) by_name[c->name()] = c;
    auto add = [&](const std::string& net, const std::string& component) {
        auto it = by_name.find(component);
        if (it == by_name.end()) return;  // external endpoint (host, wire)
        auto& targets = wake_readers_[net];
        if (std::find(targets.begin(), targets.end(), it->second) == targets.end())
            targets.push_back(it->second);
    };
    // Registered-credit nets return credit with one cycle of latency: a
    // pop is an observable event for the *writer* (its can_push answer
    // changes next cycle), so the writer needs a wake edge too — a
    // producer sleeping on a full FIFO must tick again when space opens.
    std::unordered_map<std::string, bool> registered_credit;
    for (const NetRecord& n : nets_) {
        registered_credit[n.name] = n.credit == NetRecord::kCreditRegistered;
    }
    for (const PortRecord& p : ports_) {
        if (p.dir == PortRecord::kRead) {
            add(p.net, p.component);
        } else if (p.dir == PortRecord::kWrite && registered_credit[p.net]) {
            add(p.net, p.component);
        }
    }
    wake_map_built_ = true;
    ++wake_epoch_;
}

const std::vector<Component*>*
Kernel::wake_list(const std::string& net) const {
    auto it = wake_readers_.find(net);
    return it == wake_readers_.end() ? nullptr : &it->second;
}

void
Kernel::tick_partition(unsigned part, unsigned nparts) {
    const Cycle now = now_;
    for (size_t i = part; i < components_.size(); i += nparts) {
        Component* c = components_[i];
        if (!c->awake_.load(std::memory_order_relaxed)) continue;
        if (c->wake_at_.load(std::memory_order_relaxed) > now) continue;
        flush_wake_accounting(c);
        c->tick();
    }
}

void
Kernel::stop_pool() {
    if (workers_.empty()) return;
    {
        std::lock_guard<std::mutex> lock(pool_mu_);
        pool_stop_ = true;
    }
    pool_start_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
    workers_.clear();
    pool_stop_ = false;
}

void
Kernel::set_parallel_ticks(unsigned n) {
    if (n == parallel_ticks_) return;
    stop_pool();
    parallel_ticks_ = n;
    if (n <= 1) return;
    workers_.reserve(n - 1);
    for (unsigned w = 1; w < n; ++w) {
        workers_.emplace_back([this, w, n] {
            uint64_t seen = 0;
            for (;;) {
                {
                    std::unique_lock<std::mutex> lock(pool_mu_);
                    pool_start_cv_.wait(
                        lock, [&] { return pool_stop_ || pool_gen_ != seen; });
                    if (pool_stop_) return;
                    seen = pool_gen_;
                }
                tick_partition(w, n);
                {
                    std::lock_guard<std::mutex> lock(pool_mu_);
                    --pool_pending_;
                }
                pool_done_cv_.notify_one();
            }
        });
    }
}

void
Kernel::step() {
    if (!prestep_done_) {
        prestep_done_ = true;
        if (prestep_hook_) prestep_hook_(*this);
    }
    const bool skipping = idle_skip_effective();
    if (skipping && !wake_map_built_) build_wake_map();

    phase_ = Phase::kTick;
    if (parallel_effective() && !workers_.empty()) {
        // active_ stays null: parallel ticking implies race_check_ off, so
        // nothing consults the actor. The pool handshake's mutex gives the
        // needed happens-before edges in both directions.
        const unsigned nparts = unsigned(workers_.size()) + 1;
        {
            std::lock_guard<std::mutex> lock(pool_mu_);
            ++pool_gen_;
            pool_pending_ = nparts - 1;
        }
        pool_start_cv_.notify_all();
        tick_partition(0, nparts);
        {
            std::unique_lock<std::mutex> lock(pool_mu_);
            pool_done_cv_.wait(lock, [&] { return pool_pending_ == 0; });
        }
    } else {
        for (Component* c : components_) {
            if (!c->awake_.load(std::memory_order_relaxed)) continue;
            if (c->wake_at_.load(std::memory_order_relaxed) > now_) continue;
            // Set the actor before flushing: on_wake() may replay component
            // ticks that touch the component's own FIFOs.
            active_ = c;
            flush_wake_accounting(c);
            c->tick();
        }
        active_ = nullptr;
    }

    phase_ = Phase::kCommit;
    for (Component* c : components_) {
        // Commits run for every awake component — including ones woken
        // mid-tick whose first tick is next cycle: their staged input
        // (e.g. an RPU's rx_pending_) must be integrated this edge.
        if (!c->awake_.load(std::memory_order_relaxed)) continue;
        active_ = c;
        c->commit();
    }
    active_ = nullptr;
    for (Clocked* c : clocked_) c->commit();
    if (telemetry_ || commit_compat_) {
        // Telemetry needs per-cycle occupancy from every primitive, so the
        // lazy set is swept in (deterministic) registration order. The
        // baseline-compat benchmark mode sweeps for cost parity with the
        // pre-fast-path kernel.
        for (Clocked* c : lazy_clocked_) {
            c->commit_queued_.store(false, std::memory_order_relaxed);
            c->commit();
        }
        commit_queue_.clear();
    } else {
        // Index loop: commits above (e.g. a component integrating staged
        // input into one of its FIFOs) may append while we drain.
        for (size_t i = 0; i < commit_queue_.size(); ++i) {
            Clocked* c = commit_queue_[i];
            c->commit_queued_.store(false, std::memory_order_relaxed);
            c->commit();
        }
        commit_queue_.clear();
    }
    phase_ = Phase::kIdle;
    if (telemetry_) telemetry_->end_cycle(now_);
    if (health_probe_) health_probe_->on_cycle(now_);
    ++now_;
    // Sweep for sleepers every 4th cycle only: quiescent() is virtual and
    // the sweep polls every awake component. Delaying sleep is always exact
    // (a quiescent component's live ticks match its on_wake replay); it
    // only costs at most 3 extra stepped cycles per sleep transition.
    if (skipping && (now_ & 3) == 0) sleep_sweep();
}

// --- time-decoupled execution (DESIGN.md §16) --------------------------------

std::string
Kernel::set_shard_spec(ShardSpec spec) {
    if (decoupled_live_.load(std::memory_order_relaxed))
        return "cannot install a shard spec during a decoupled run";
    if (spec.shards.size() < 2) return "shard spec needs at least 2 shards";
    if (spec.primary >= spec.shards.size())
        return "primary shard index out of range";
    std::unordered_map<const Component*, unsigned> owner;
    for (unsigned s = 0; s < spec.shards.size(); ++s) {
        const ShardSpec::Shard& sh = spec.shards[s];
        for (Component* c : sh.components) {
            if (c == nullptr) return "null component in shard spec";
            if (!owner.emplace(c, s).second)
                return "component '" + c->name() + "' appears in two shards";
        }
        for (const ShardSpec::Wait& w : sh.start_waits) {
            if (w.shard >= spec.shards.size() || w.shard == s)
                return "start wait references an invalid shard";
            if (w.lookahead == 0)
                return "start wait with zero lookahead (no safe decoupling)";
        }
        for (unsigned u : sh.end_waits) {
            if (u >= spec.shards.size() || u == s)
                return "end wait references an invalid shard";
        }
    }
    for (Component* c : components_) {
        if (owner.find(c) == owner.end())
            return "component '" + c->name() + "' not covered by any shard";
    }
    if (owner.size() != components_.size())
        return "shard spec names a component not registered with this kernel";
    spec_ = std::make_unique<ShardSpec>(std::move(spec));
    shard_runs_.clear();
    shard_runs_.reserve(spec_->shards.size());
    for (unsigned s = 0; s < spec_->shards.size(); ++s) {
        const ShardSpec::Shard& sh = spec_->shards[s];
        auto sr = std::make_unique<ShardRun>();
        sr->index = s;
        sr->comps = sh.components;
        sr->start_waits = sh.start_waits;
        sr->end_waits = sh.end_waits;
        sr->in_channels = sh.in_channels;
        sr->begin_hook = sh.begin_hook;
        sr->end_hook = sh.end_hook;
        sr->tick_workers = sh.tick_workers;
        sr->commits_always_clocked = (s == spec_->primary);
        for (Component* c : sr->comps)
            if (c->decoupled_gated_) sr->gated.push_back(c);
        shard_runs_.push_back(std::move(sr));
    }
    return {};
}

void
Kernel::clear_shard_spec() {
    spec_.reset();
    shard_runs_.clear();
}

bool
Kernel::decoupled_effective() const {
    return spec_ != nullptr && !race_check_ && telemetry_ == nullptr &&
           health_probe_ == nullptr && !commit_compat_;
}

void
Kernel::decoupled_request_commit(Clocked* c) {
    ShardRun* sr = t_shard_;
    if (sr == nullptr) {
        // Defensive: a host thread staging during a decoupled run has no
        // shard identity; park the element on the global queue, which the
        // next barrier step drains.
        std::lock_guard<std::mutex> lock(commit_queue_mu_);
        commit_queue_.push_back(c);
        return;
    }
    if (sr->helpers_active &&
        sr->local_phase.load(std::memory_order_relaxed) ==
            uint8_t(Phase::kTick)) {
        std::lock_guard<std::mutex> lock(sr->commit_mu);
        sr->commit_queue.push_back(c);
    } else {
        sr->commit_queue.push_back(c);
    }
}

Cycle
Kernel::decoupled_now() const {
    const ShardRun* sr = t_shard_;
    return sr ? sr->local_now.load(std::memory_order_relaxed) : now_;
}

Kernel::Phase
Kernel::decoupled_phase() const {
    const ShardRun* sr = t_shard_;
    return sr ? Phase(sr->local_phase.load(std::memory_order_relaxed)) : phase_;
}

const std::atomic<Cycle>*
Kernel::shard_done_ptr(unsigned shard) const {
    if (shard >= shard_runs_.size()) return nullptr;
    return &shard_runs_[shard]->done;
}

std::vector<Kernel::ShardProgress>
Kernel::decoupled_progress() const {
    std::vector<ShardProgress> out;
    out.reserve(shard_runs_.size());
    for (const auto& sr : shard_runs_)
        out.push_back({sr->stat_executed, sr->stat_skipped, sr->stat_skip_jumps});
    return out;
}

/// Put to sleep every quiescent component of `sr` (the shard-local twin
/// of sleep_sweep; `next` is the shard's next local cycle).
void
Kernel::shard_sleep_sweep(ShardRun& sr, Cycle next) {
    for (Component* c : sr.comps) {
        if (!c->awake_.load(std::memory_order_relaxed)) continue;
        if (c->wake_at_.load(std::memory_order_relaxed) >= next) continue;
        if (!c->quiescent()) continue;
        c->awake_.store(false, std::memory_order_relaxed);
        awake_count_.fetch_sub(1, std::memory_order_relaxed);
        if (!c->unaccounted_) {
            c->sleep_since_ = next;
            c->unaccounted_ = true;
        }
    }
}

/// Advance `sr` by up to `budget` local cycles, never blocking: when a
/// conservative wait is unsatisfied the function returns so the caller
/// can run a peer (cooperative mode) or spin briefly (thread mode).
/// Returns true if any progress — executed or skipped cycles — was made.
///
/// The fast path is the *time skip*: when every component of the shard is
/// either asleep or promises pure time advance (decoupled_lookahead), and
/// every inbound cut channel is provably quiet over a window (no pending
/// tag, producer progress past it), the window collapses into one cursor
/// jump. This is the payoff of local clocks: the barrier kernel can only
/// fast-forward when the *whole* system is quiescent, so a single awake
/// traffic source pins every cycle; a decoupled shard skips its own idle
/// windows regardless of what its peers are doing.
bool
Kernel::advance_shard(ShardRun& sr, Cycle budget) {
    ShardRun* prev = t_shard_;
    t_shard_ = &sr;
    bool progress = false;
    while (sr.cur < sr.end && budget > 0) {
        const Cycle t = sr.cur;

        // Conservative gates for cycle t, evaluated without blocking.
        bool blocked = false;
        for (const ShardSpec::Wait& w : sr.start_waits) {
            const Cycle target = t + 1 > w.lookahead ? t + 1 - w.lookahead : 0;
            if (shard_runs_[w.shard]->done.load(std::memory_order_acquire) <
                target) {
                blocked = true;
                break;
            }
        }
        if (!blocked) {
            for (unsigned u : sr.end_waits) {
                if (shard_runs_[u]->done.load(std::memory_order_acquire) <
                    t + 1) {
                    blocked = true;
                    break;
                }
            }
        }
        if (!blocked) {
            for (Component* c : sr.gated) {
                if (c->awake_.load(std::memory_order_relaxed) &&
                    !c->decoupled_runnable(t)) {
                    blocked = true;
                    break;
                }
            }
        }
        if (blocked) break;

        // Time-skip fast path. On a shard with no self-advancing (gated)
        // components this is attempted only out of an idle cycle — a busy
        // shard would waste a full component scan per cycle discovering
        // skip == 0, and executing is always correct. A gated component
        // (e.g. a paced source) ticks on every executed cycle yet still
        // promises lookahead windows, so its shard always attempts.
        Cycle skip = (sr.try_skip || !sr.gated.empty()) ? sr.end - t : 0;
        if (skip > budget) skip = budget;
        for (Component* c : sr.comps) {
            if (skip == 0) break;
            if (!c->awake_.load(std::memory_order_relaxed)) continue;
            const Cycle wa = c->wake_at_.load(std::memory_order_relaxed);
            const Cycle la =
                wa > t ? wa - t
                       : (c->decoupled_gated_ ? c->decoupled_lookahead() : 0);
            if (la < skip) skip = la;
        }
        for (CutChannelBase* ch : sr.in_channels) {
            if (skip == 0) break;
            // Cycles strictly before the earliest pending tag (or, with an
            // empty queue, before the producer's published progress) need
            // no drain; the first cycle that might is executed in full.
            // Read `done` BEFORE the queue: a push of tag s happens-before
            // the producer's done=s+1 store, so any push the queue read
            // misses must carry a tag >= the done value already read.
            const Cycle d = ch->producer_done();
            Cycle tag = 0;
            const Cycle lim = ch->earliest_pending(&tag) ? tag : d;
            const Cycle h = lim > t ? lim - t : 0;
            if (h < skip) skip = h;
        }
        for (const ShardSpec::Wait& w : sr.start_waits) {
            if (skip == 0) break;
            const Cycle d =
                shard_runs_[w.shard]->done.load(std::memory_order_acquire) +
                w.lookahead;
            const Cycle h = d > t ? d - t : 0;
            if (h < skip) skip = h;
        }
        for (unsigned u : sr.end_waits) {
            if (skip == 0) break;
            const Cycle d =
                shard_runs_[u]->done.load(std::memory_order_acquire);
            const Cycle h = d > t ? d - t : 0;
            if (h < skip) skip = h;
        }
        if (skip > 0) {
            for (Component* c : sr.comps) {
                if (!c->awake_.load(std::memory_order_relaxed)) continue;
                if (c->wake_at_.load(std::memory_order_relaxed) > t) continue;
                if (c->decoupled_gated_) c->decoupled_advance(skip);
            }
            sr.cur = t + skip;
            sr.local_now.store(sr.cur, std::memory_order_relaxed);
            sr.done.store(sr.cur, std::memory_order_release);
            budget -= skip;
            sr.stat_skipped += skip;
            ++sr.stat_skip_jumps;
            progress = true;
            continue;
        }

        // Full cycle.
        bool ticked_any = false;
        sr.local_now.store(t, std::memory_order_relaxed);
        sr.local_phase.store(uint8_t(Phase::kTick), std::memory_order_release);
        if (sr.helpers_active) {
            ticked_any = true;  // helpers don't report; assume busy
            const unsigned nw = sr.tick_workers;
            sr.tick_done.store(0, std::memory_order_relaxed);
            sr.tick_gen.fetch_add(1, std::memory_order_release);
            for (size_t i = 0; i < sr.comps.size(); i += nw) {
                Component* c = sr.comps[i];
                if (!c->awake_.load(std::memory_order_relaxed)) continue;
                if (c->wake_at_.load(std::memory_order_relaxed) > t) continue;
                flush_wake_accounting(c);
                c->tick();
            }
            int spins = 0;
            while (sr.tick_done.load(std::memory_order_acquire) != nw - 1) {
                if (++spins >= 256) {
                    std::this_thread::yield();
                    spins = 0;
                } else {
                    cpu_pause();
                }
            }
        } else {
            for (Component* c : sr.comps) {
                if (!c->awake_.load(std::memory_order_relaxed)) continue;
                if (c->wake_at_.load(std::memory_order_relaxed) > t) continue;
                flush_wake_accounting(c);
                c->tick();
                ticked_any = true;
            }
        }
        sr.try_skip = !ticked_any;
        sr.local_phase.store(uint8_t(Phase::kCommit), std::memory_order_relaxed);
        for (Component* c : sr.comps) {
            // Commits run for every awake component — including ones woken
            // mid-tick whose first tick is next cycle: their staged input
            // (e.g. an RPU's rx_pending_) must be integrated this edge.
            if (!c->awake_.load(std::memory_order_relaxed)) continue;
            c->commit();
        }
        if (sr.commits_always_clocked)
            for (Clocked* c : clocked_) c->commit();
        // Index loop, same thread: commits above may append to the queue
        // (local_phase is kCommit, so requests take the lock-free path).
        for (size_t i = 0; i < sr.commit_queue.size(); ++i) {
            Clocked* c = sr.commit_queue[i];
            c->commit_queued_.store(false, std::memory_order_relaxed);
            c->commit();
        }
        sr.commit_queue.clear();
        sr.local_phase.store(uint8_t(Phase::kIdle), std::memory_order_relaxed);
        // The up-front end_wait gate guaranteed every producer finished T,
        // so the end hook can integrate all same-cycle channel pushes.
        if (sr.end_hook) sr.end_hook(t);
        sr.done.store(t + 1, std::memory_order_release);
        sr.cur = t + 1;
        --budget;
        ++sr.stat_executed;
        progress = true;
        if (idle_skip_ && ((t + 1) & 3) == 0) shard_sleep_sweep(sr, t + 1);
    }
    t_shard_ = prev;
    return progress;
}

/// Thread-mode driver: one call per shard worker. Spins (with escalating
/// pauses) whenever the shard is blocked on a peer.
void
Kernel::run_shard_threaded(ShardRun& sr) {
    t_shard_ = &sr;
    const unsigned nw = sr.tick_workers > 1 ? sr.tick_workers : 1;
    std::vector<std::thread> helpers;
    helpers.reserve(nw - 1);
    if (nw > 1) {
        // Intra-shard tick helpers: the parallel tick executor scoped to
        // this shard's component slice (legal for the same reason as
        // set_parallel_ticks — ticks only read committed state).
        sr.helpers_stop.store(false, std::memory_order_relaxed);
        sr.helpers_active = true;
        for (unsigned w = 1; w < nw; ++w) {
            helpers.emplace_back([this, &sr, w, nw] {
                t_shard_ = &sr;
                uint64_t seen = 0;
                for (;;) {
                    int spins = 0;
                    while (sr.tick_gen.load(std::memory_order_acquire) ==
                           seen) {
                        if (sr.helpers_stop.load(std::memory_order_acquire))
                            return;
                        if (++spins >= 256) {
                            std::this_thread::yield();
                            spins = 0;
                        } else {
                            cpu_pause();
                        }
                    }
                    seen = sr.tick_gen.load(std::memory_order_acquire);
                    const Cycle t =
                        sr.local_now.load(std::memory_order_relaxed);
                    for (size_t i = w; i < sr.comps.size(); i += nw) {
                        Component* c = sr.comps[i];
                        if (!c->awake_.load(std::memory_order_relaxed))
                            continue;
                        if (c->wake_at_.load(std::memory_order_relaxed) > t)
                            continue;
                        flush_wake_accounting(c);
                        c->tick();
                    }
                    sr.tick_done.fetch_add(1, std::memory_order_release);
                }
            });
        }
    }

    int spins = 0;
    while (sr.cur < sr.end) {
        if (advance_shard(sr, 4096)) {
            spins = 0;
            continue;
        }
        if (++spins >= 64) {
            std::this_thread::yield();
            spins = 0;
        } else {
            cpu_pause();
        }
    }

    if (nw > 1) {
        sr.helpers_stop.store(true, std::memory_order_release);
        for (std::thread& h : helpers) h.join();
        sr.helpers_active = false;
    }
    t_shard_ = nullptr;
}

void
Kernel::run_decoupled(Cycle cycles) {
    if (!prestep_done_) {
        prestep_done_ = true;
        if (prestep_hook_) prestep_hook_(*this);
    }
    if (cycles == 0) return;
    size_t covered = 0;
    for (const auto& sr : shard_runs_) covered += sr->comps.size();
    if (covered != components_.size())
        fatal("kernel: component registered after shard spec install");
    // Sleep state carries across the run boundary (clocks agree between
    // runs), but sleeping needs the wake edges resolved.
    if (idle_skip_ && !wake_map_built_) build_wake_map();
    const Cycle start = now_;
    const Cycle end = now_ + cycles;
    for (const auto& sr : shard_runs_) {
        sr->cur = start;
        sr->end = end;
        sr->done.store(start, std::memory_order_relaxed);
        sr->local_now.store(start, std::memory_order_relaxed);
        sr->local_phase.store(uint8_t(Phase::kIdle), std::memory_order_relaxed);
        sr->commit_queue.clear();
        sr->try_skip = true;
        if (sr->begin_hook) sr->begin_hook();
    }
    decoupled_live_.store(true, std::memory_order_seq_cst);
    const bool coop =
        spec_->exec == ShardSpec::Exec::kCoop ||
        (spec_->exec == ShardSpec::Exec::kAuto &&
         std::thread::hardware_concurrency() <= 1);
    if (coop) {
        // Cooperative interleaving on the calling thread: identical
        // results, no rendezvous spinning — and on a single hardware
        // thread the only regime in which decoupling can *win* host time.
        for (;;) {
            bool any = false;
            bool all_done = true;
            for (const auto& sr : shard_runs_) {
                if (sr->cur < sr->end) any = advance_shard(*sr, 8192) || any;
                if (sr->cur < sr->end) all_done = false;
            }
            if (all_done) break;
            if (!any) {
                decoupled_live_.store(false, std::memory_order_seq_cst);
                fatal("kernel: decoupled scheduler made no progress "
                      "(deadlocked shard spec)");
            }
        }
    } else {
        std::vector<std::thread> threads;
        threads.reserve(shard_runs_.size() - 1);
        for (size_t s = 1; s < shard_runs_.size(); ++s) {
            threads.emplace_back(
                [this, s] { run_shard_threaded(*shard_runs_[s]); });
        }
        run_shard_threaded(*shard_runs_[0]);
        for (std::thread& t : threads) t.join();
    }
    decoupled_live_.store(false, std::memory_order_seq_cst);
    now_ = end;
    phase_ = Phase::kIdle;
    sync_sleepers();
}


void
Kernel::run(Cycle cycles) {
    if (decoupled_effective()) {
        run_decoupled(cycles);
        return;
    }
    const Cycle end = now_ + cycles;
    while (now_ < end) {
        if (prestep_done_ && idle_skip_effective() &&
            awake_count_.load(std::memory_order_relaxed) == 0) {
            // Whole-system quiescence: nothing can wake without a
            // host-side call, which cannot happen inside this loop.
            fast_forwarded_ += end - now_;
            now_ = end;
            break;
        }
        step();
    }
    sync_sleepers();
}

namespace {

// splitmix64: small, well-mixed PRNG for the deterministic shuffle.
uint64_t
mix64(uint64_t& state) {
    state += 0x9e3779b97f4a7c15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

}  // namespace

void
Kernel::shuffle_tick_order(uint64_t seed) {
    uint64_t state = seed;
    // Fisher-Yates over the current registration order.
    for (size_t i = components_.size(); i > 1; --i) {
        size_t j = size_t(mix64(state) % i);
        std::swap(components_[i - 1], components_[j]);
    }
}

std::vector<std::string>
Kernel::tick_order() const {
    std::vector<std::string> names;
    names.reserve(components_.size());
    for (const Component* c : components_) names.push_back(c->name());
    return names;
}

void
Kernel::register_occupancy_probe(std::string net, size_t capacity,
                                 const void* owner, std::function<size_t()> fn) {
    for (OccupancyProbe& p : occupancy_probes_) {
        if (p.net == net) {
            p.capacity = capacity;
            p.owner = owner;
            p.fn = std::move(fn);
            return;
        }
    }
    occupancy_probes_.push_back(
        {std::move(net), capacity, owner, std::move(fn)});
}

void
Kernel::unregister_occupancy_probe(const std::string& net, const void* owner) {
    for (auto it = occupancy_probes_.begin(); it != occupancy_probes_.end();
         ++it) {
        if (it->net == net && it->owner == owner) {
            occupancy_probes_.erase(it);
            return;
        }
    }
}

void
Kernel::declare_net(NetRecord net) {
    wake_map_built_ = false;
    for (NetRecord& n : nets_) {
        if (n.name == net.name) {
            n = std::move(net);
            return;
        }
    }
    nets_.push_back(std::move(net));
}

void
Kernel::declare_port(PortRecord port) {
    for (const PortRecord& p : ports_) {
        if (p.component == port.component && p.net == port.net &&
            p.dir == port.dir && p.width_bits == port.width_bits &&
            p.depth == port.depth) {
            return;
        }
    }
    wake_map_built_ = false;
    ports_.push_back(std::move(port));
}

}  // namespace rosebud::sim
