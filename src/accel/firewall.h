/// \file
/// Firewall IP-prefix matching accelerator (paper Section 7.2).
///
/// The paper generates a Verilog matcher from the ~1050-entry "emerging
/// threats" blacklist: a first-cycle check of the top 9 address bits
/// followed by a second-cycle check of the remaining bits, raising a match
/// flag readable over MMIO. This model keeps the same two-stage structure
/// (stage sets are built exactly that way, so stage-1 pruning is real), the
/// same 2-cycle latency, and the paper's register map:
///
///   IO_EXT + 0x00  ACC_SRC_IP   (W): IP to check (host byte order)
///   IO_EXT + 0x04  ACC_FW_MATCH (R): 1 if blacklisted

#ifndef ROSEBUD_ACCEL_FIREWALL_H
#define ROSEBUD_ACCEL_FIREWALL_H

#include <memory>
#include <unordered_set>

#include "net/rules.h"
#include "rpu/accelerator.h"

namespace rosebud::accel {

/// Register offsets within the IO_EXT window.
inline constexpr uint32_t kFwRegSrcIp = 0x00;
inline constexpr uint32_t kFwRegMatch = 0x04;

class FirewallMatcher : public rpu::Accelerator {
 public:
    /// "Generate the accelerator" from a blacklist (the Python-to-Verilog
    /// step of the paper, done at construction time here).
    explicit FirewallMatcher(const net::Blacklist& blacklist);

    void reset() override;
    void tick(rpu::AccelContext& ctx) override;
    bool mmio_read(uint32_t offset, uint32_t& value, rpu::AccelContext& ctx) override;
    bool mmio_write(uint32_t offset, uint32_t value, rpu::AccelContext& ctx) override;
    sim::ResourceFootprint resources() const override;
    std::string name() const override { return "firewall_ip_matcher"; }

    /// Number of compiled entries.
    size_t entry_count() const { return entry_count_; }

    /// Functional lookup (bypasses timing; used by tests).
    bool lookup(uint32_t ip) const;

 private:
    // Stage 1: 9-bit prefix presence; stage 2: full prefixes under each.
    std::unordered_set<uint32_t> stage1_;
    net::Blacklist full_;
    size_t entry_count_;

    // 2-cycle lookup pipeline.
    uint32_t pending_ip_ = 0;
    uint64_t ready_at_ = 0;
    bool busy_ = false;
    uint32_t match_flag_ = 0;
};

}  // namespace rosebud::accel

#endif  // ROSEBUD_ACCEL_FIREWALL_H
