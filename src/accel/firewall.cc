#include "accel/firewall.h"

namespace rosebud::accel {

namespace {

/// Firmware loads the source IP as a 32-bit little-endian read of the
/// packet's network-order bytes (Appendix C); the generated matcher wires
/// the bits back into host order.
uint32_t
swap32(uint32_t v) {
    return v >> 24 | (v >> 8 & 0xff00) | (v << 8 & 0xff0000) | v << 24;
}

}  // namespace

FirewallMatcher::FirewallMatcher(const net::Blacklist& blacklist)
    : full_(blacklist), entry_count_(blacklist.size()) {
    for (const auto& e : blacklist.entries()) {
        // Stage 1 looks at the top 9 bits only (entries shorter than /9
        // would match everything; fall back to marking all groups — not a
        // case the emerging-threats list contains).
        if (e.length >= 9) {
            stage1_.insert(e.prefix >> 23);
        } else {
            for (uint32_t g = 0; g < 512; ++g) stage1_.insert(g);
        }
    }
}

void
FirewallMatcher::reset() {
    busy_ = false;
    match_flag_ = 0;
    pending_ip_ = 0;
}

bool
FirewallMatcher::lookup(uint32_t ip) const {
    if (!stage1_.count(ip >> 23)) return false;  // stage-1 prune (cycle 1)
    return full_.contains(ip);                   // stage-2 confirm (cycle 2)
}

void
FirewallMatcher::tick(rpu::AccelContext& ctx) {
    if (busy_ && ctx.now_cycles >= ready_at_) {
        match_flag_ = lookup(pending_ip_) ? 1 : 0;
        busy_ = false;
    }
}

bool
FirewallMatcher::mmio_read(uint32_t offset, uint32_t& value, rpu::AccelContext& ctx) {
    (void)ctx;
    if (offset == kFwRegMatch) {
        // An MMIO read takes 3 cycles, longer than the 2-cycle lookup, so
        // firmware written like the paper's Appendix C never races this.
        if (busy_) {
            match_flag_ = lookup(pending_ip_) ? 1 : 0;
            busy_ = false;
        }
        value = match_flag_;
        return true;
    }
    if (offset == kFwRegSrcIp) {
        value = pending_ip_;
        return true;
    }
    return false;
}

bool
FirewallMatcher::mmio_write(uint32_t offset, uint32_t value, rpu::AccelContext& ctx) {
    if (offset == kFwRegSrcIp) {
        pending_ip_ = swap32(value);
        busy_ = true;
        ready_at_ = ctx.now_cycles + 2;
        return true;
    }
    return false;
}

sim::ResourceFootprint
FirewallMatcher::resources() const {
    // Generated compare tree: scales linearly with entry count; calibrated
    // to Table 4 (835 LUTs / 197 FFs at 1050 entries).
    uint64_t n = entry_count_;
    return {.luts = 200 + n * 3 / 5, .regs = 180 + n / 64};
}

}  // namespace rosebud::accel
