#include "accel/nat.h"

#include "net/headers.h"

namespace rosebud::accel {

NatEngine::NatEngine() : NatEngine(Params{}) {}

NatEngine::NatEngine(Params params) : params_(params) {}

void
NatEngine::reset() {
    queue_.clear();
    done_.clear();
    busy_ = false;
    staging_ = Job{};
    // Connection state survives partial reconfiguration only if the host
    // saves and restores it; a fresh boot starts empty.
    forward_.clear();
    reverse_.clear();
    next_port_ = 0;
}

bool
NatEngine::is_internal(uint32_t ip) const {
    uint32_t mask = params_.internal_prefix_len == 0
                        ? 0
                        : ~uint32_t(0) << (32 - params_.internal_prefix_len);
    return (ip & mask) == (params_.internal_prefix & mask);
}

uint32_t
NatEngine::translate(rpu::AccelContext& ctx, const Job& job) {
    uint32_t off = job.addr;
    if (off >= 0x01000000) off -= 0x01000000;  // full address -> PMEM offset
    if (off + job.len > ctx.pmem.size() || job.len < 34) return kNatPassThrough;

    // Read the headers straight out of packet memory.
    std::vector<uint8_t> hdr(std::min<uint32_t>(job.len, 64));
    ctx.pmem.read_block(off, hdr.data(), uint32_t(hdr.size()));
    if (net::load_be16(&hdr[12]) != net::kEtherTypeIpv4) return kNatPassThrough;
    uint8_t proto = hdr[23];
    if (proto != net::kIpProtoTcp && proto != net::kIpProtoUdp) return kNatPassThrough;

    uint32_t src_ip = net::load_be32(&hdr[26]);
    uint32_t dst_ip = net::load_be32(&hdr[30]);
    uint16_t src_port = net::load_be16(&hdr[34]);
    uint16_t dst_port = net::load_be16(&hdr[36]);
    uint16_t ip_check = net::load_be16(&hdr[24]);

    if (is_internal(src_ip)) {
        // Outbound: allocate (or reuse) an external port.
        uint64_t key = uint64_t(src_ip) << 16 | src_port;
        auto it = forward_.find(key);
        uint16_t ext_port;
        if (it != forward_.end()) {
            ext_port = it->second;
        } else {
            if (forward_.size() >= params_.port_count) {
                ctx.stats.counter("nat.table_full").add();
                return kNatDropped;
            }
            // Linear-probe this engine's slice of the port space
            // (hardware uses a CAM/hash).
            do {
                ext_port = uint16_t(params_.port_base + params_.port_offset +
                                    next_port_ * params_.port_stride);
                next_port_ = uint16_t((next_port_ + 1) % params_.port_count);
            } while (reverse_.count(ext_port));
            forward_[key] = ext_port;
            reverse_[ext_port] = key;
            ctx.stats.counter("nat.mappings_created").add();
        }
        // Rewrite src ip/port in place, with incremental checksum fixes.
        uint16_t new_check = net::checksum_fixup32(ip_check, src_ip, params_.external_ip);
        ctx.pmem.write8(off + 26, uint8_t(params_.external_ip >> 24));
        ctx.pmem.write8(off + 27, uint8_t(params_.external_ip >> 16));
        ctx.pmem.write8(off + 28, uint8_t(params_.external_ip >> 8));
        ctx.pmem.write8(off + 29, uint8_t(params_.external_ip));
        ctx.pmem.write8(off + 24, uint8_t(new_check >> 8));
        ctx.pmem.write8(off + 25, uint8_t(new_check));
        ctx.pmem.write8(off + 34, uint8_t(ext_port >> 8));
        ctx.pmem.write8(off + 35, uint8_t(ext_port));
        ctx.stats.counter("nat.translated_out").add();
        return kNatTranslated;
    }

    if (dst_ip == params_.external_ip) {
        // Inbound: reverse translation.
        auto it = reverse_.find(dst_port);
        if (it == reverse_.end()) {
            ctx.stats.counter("nat.no_mapping").add();
            return kNatDropped;
        }
        uint32_t int_ip = uint32_t(it->second >> 16);
        uint16_t int_port = uint16_t(it->second);
        uint16_t new_check = net::checksum_fixup32(ip_check, dst_ip, int_ip);
        ctx.pmem.write8(off + 30, uint8_t(int_ip >> 24));
        ctx.pmem.write8(off + 31, uint8_t(int_ip >> 16));
        ctx.pmem.write8(off + 32, uint8_t(int_ip >> 8));
        ctx.pmem.write8(off + 33, uint8_t(int_ip));
        ctx.pmem.write8(off + 24, uint8_t(new_check >> 8));
        ctx.pmem.write8(off + 25, uint8_t(new_check));
        ctx.pmem.write8(off + 36, uint8_t(int_port >> 8));
        ctx.pmem.write8(off + 37, uint8_t(int_port));
        ctx.stats.counter("nat.translated_in").add();
        return kNatTranslated;
    }
    return kNatPassThrough;
}

void
NatEngine::tick(rpu::AccelContext& ctx) {
    if (busy_) {
        if (ctx.now_cycles >= done_at_) {
            done_.push_back({active_.slot, translate(ctx, active_)});
            busy_ = false;
        }
        return;
    }
    if (!queue_.empty()) {
        active_ = queue_.front();
        queue_.pop_front();
        // Header read + table access + rewrite pipeline.
        done_at_ = ctx.now_cycles + params_.pipeline_cycles;
        busy_ = true;
    }
}

bool
NatEngine::mmio_read(uint32_t offset, uint32_t& value, rpu::AccelContext& ctx) {
    (void)ctx;
    switch (offset) {
    case kNatRegDone: value = done_.empty() ? 0 : 1; return true;
    case kNatRegSlot: value = done_.empty() ? 0 : done_.front().slot; return true;
    case kNatRegResult: value = done_.empty() ? 0 : done_.front().result; return true;
    default: return false;
    }
}

bool
NatEngine::mmio_write(uint32_t offset, uint32_t value, rpu::AccelContext& ctx) {
    (void)ctx;
    switch (offset) {
    case kNatRegCtrl:
        if (value == 1) queue_.push_back(staging_);
        return true;
    case kNatRegAddr: staging_.addr = value; return true;
    case kNatRegLen: staging_.len = value; return true;
    case kNatRegSlot: staging_.slot = uint8_t(value); return true;
    case kNatRegPop:
        if (!done_.empty()) done_.pop_front();
        return true;
    default: return false;
    }
}

sim::ResourceFootprint
NatEngine::resources() const {
    // Hash/CAM lookup + rewrite datapath; the connection table occupies
    // accelerator-local BRAM proportional to the port space.
    uint64_t table_bram = (uint64_t(params_.port_count) * 8 + 4095) / 4096;
    return {.luts = 1400, .regs = 900, .bram = 2 + table_bram};
}

}  // namespace rosebud::accel
