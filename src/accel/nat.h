/// \file
/// Source-NAT accelerator — a third middlebox built on the RPU abstraction
/// (beyond the paper's two case studies), demonstrating that new
/// accelerators reuse the same socket: MMIO job registers, a result FIFO
/// the firmware polls, and direct packet-memory access for in-place header
/// rewriting.
///
/// Outbound packets (source inside `internal_prefix`) get their source
/// IP/port rewritten to (external_ip, allocated port); inbound packets to
/// external_ip get the reverse translation. The connection table lives in
/// the accelerator's local memory, exactly where the paper puts
/// accelerator state (Figure 3, right). IPv4 header checksums are fixed
/// up incrementally, as NAT hardware does.
///
///   IO_EXT + 0x00  NAT_CTRL   (W): 1 = start job on the latched registers
///   IO_EXT + 0x00  NAT_DONE   (R): 1 if a finished job is waiting
///   IO_EXT + 0x04  NAT_ADDR   (W): packet data address in packet memory
///   IO_EXT + 0x08  NAT_LEN    (W): packet length
///   IO_EXT + 0x0c  NAT_SLOT   (W): slot tag / (R): finished job's slot
///   IO_EXT + 0x10  NAT_RESULT (R): 1 translated, 2 passed through,
///                                  3 dropped (table full / no mapping)
///   IO_EXT + 0x14  NAT_POP    (W): pop the finished-job FIFO

#ifndef ROSEBUD_ACCEL_NAT_H
#define ROSEBUD_ACCEL_NAT_H

#include <deque>
#include <unordered_map>

#include "rpu/accelerator.h"

namespace rosebud::accel {

inline constexpr uint32_t kNatRegCtrl = 0x00;
inline constexpr uint32_t kNatRegDone = 0x00;
inline constexpr uint32_t kNatRegAddr = 0x04;
inline constexpr uint32_t kNatRegLen = 0x08;
inline constexpr uint32_t kNatRegSlot = 0x0c;
inline constexpr uint32_t kNatRegResult = 0x10;
inline constexpr uint32_t kNatRegPop = 0x14;

/// Job outcome codes visible in NAT_RESULT.
enum NatResult : uint32_t {
    kNatTranslated = 1,
    kNatPassThrough = 2,
    kNatDropped = 3,
};

class NatEngine : public rpu::Accelerator {
 public:
    struct Params {
        uint32_t internal_prefix = 0x0a000000;  ///< 10.0.0.0/8
        uint8_t internal_prefix_len = 8;
        uint32_t external_ip = 0xc6336401;  ///< 198.51.100.1
        uint16_t port_base = 20000;
        uint16_t port_count = 8192;  ///< bounded like a real CGN slice
        /// Port-space partitioning across RPUs so a custom LB policy can
        /// route inbound replies to the RPU holding the mapping:
        /// this engine allocates ports base + offset + k*stride.
        uint16_t port_stride = 1;
        uint16_t port_offset = 0;
        unsigned pipeline_cycles = 6;
    };

    NatEngine();
    explicit NatEngine(Params params);

    void reset() override;
    void tick(rpu::AccelContext& ctx) override;
    bool mmio_read(uint32_t offset, uint32_t& value, rpu::AccelContext& ctx) override;
    bool mmio_write(uint32_t offset, uint32_t value, rpu::AccelContext& ctx) override;
    sim::ResourceFootprint resources() const override;
    std::string name() const override { return "nat_engine"; }
    unsigned queue_count() const override { return 1; }

    /// Active (internal ip, internal port) -> external port mappings.
    size_t mapping_count() const { return forward_.size(); }

    const Params& params() const { return params_; }

 private:
    struct Job {
        uint32_t addr = 0;
        uint32_t len = 0;
        uint8_t slot = 0;
    };
    struct Done {
        uint8_t slot = 0;
        uint32_t result = kNatPassThrough;
    };

    uint32_t translate(rpu::AccelContext& ctx, const Job& job);
    bool is_internal(uint32_t ip) const;

    Params params_;
    Job staging_;
    std::deque<Job> queue_;
    bool busy_ = false;
    Job active_;
    uint64_t done_at_ = 0;
    std::deque<Done> done_;

    std::unordered_map<uint64_t, uint16_t> forward_;  ///< (ip,port) -> ext port
    std::unordered_map<uint16_t, uint64_t> reverse_;  ///< ext port -> (ip,port)
    uint16_t next_port_ = 0;
};

}  // namespace rosebud::accel

#endif  // ROSEBUD_ACCEL_NAT_H
