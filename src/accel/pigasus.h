/// \file
/// Pigasus string/port-matching accelerator ported into an RPU (paper
/// Section 7.1, Appendix A/B).
///
/// Functional behaviour is real: rules are compiled into a fast-pattern
/// Aho-Corasick automaton (the MSPM front end), candidates are verified
/// against every content of the rule plus the port/protocol constraints
/// (the port-matcher stage), and matched rule ids are delivered through a
/// result FIFO exactly as the paper's firmware consumes them (Appendix B):
///
///   IO_EXT + 0x00  ACC_PIG_CTRL  (W): 1 = start job, 2 = pop result FIFO
///   IO_EXT + 0x00  ACC_PIG_MATCH (R): 1 if the result FIFO is non-empty
///   IO_EXT + 0x04  ACC_DMA_LEN   (W): payload length
///   IO_EXT + 0x08  ACC_DMA_ADDR  (W): payload address in packet memory
///   IO_EXT + 0x0c  ACC_PIG_PORTS (W): raw L4 port word (network order)
///   IO_EXT + 0x10  ACC_PIG_STATE_L (W)
///   IO_EXT + 0x14  ACC_PIG_STATE_H (W): 0 selects the UDP rule group
///   IO_EXT + 0x18  ACC_PIG_SLOT  (W): slot tag / (R): result head's slot
///   IO_EXT + 0x1c  ACC_PIG_RULE_ID (R): result head's rule id, 0 = end
///   IO_EXT + 0x78  ACC_DMA_STAT  (R): bit0 busy, bit8 done
///
/// Timing: the engine streams payload out of packet memory at
/// `engines` bytes/cycle (16 engines => 16 B/cycle = 32 Gbps, Section
/// 7.1.4) behind a fixed pipeline, with a small job-dequeue overhead. Jobs
/// queue in the wrapper FIFOs so firmware runs ahead of the hardware.

#ifndef ROSEBUD_ACCEL_PIGASUS_H
#define ROSEBUD_ACCEL_PIGASUS_H

#include <deque>
#include <vector>

#include "net/patmatch.h"
#include "net/rules.h"
#include "rpu/accelerator.h"

namespace rosebud::accel {

inline constexpr uint32_t kPigRegCtrl = 0x00;   ///< W: 1 start / 2 release
inline constexpr uint32_t kPigRegMatch = 0x00;  ///< R: result ready (byte)
inline constexpr uint32_t kPigRegDmaLen = 0x04;
inline constexpr uint32_t kPigRegDmaAddr = 0x08;
inline constexpr uint32_t kPigRegPorts = 0x0c;
inline constexpr uint32_t kPigRegStateL = 0x10;
inline constexpr uint32_t kPigRegStateH = 0x14;
inline constexpr uint32_t kPigRegSlot = 0x18;
inline constexpr uint32_t kPigRegRuleId = 0x1c;
inline constexpr uint32_t kPigRegDmaStat = 0x78;

class PigasusMatcher : public rpu::Accelerator {
 public:
    struct Params {
        unsigned engines = 16;         ///< string-matching engines (paper: 16/RPU)
        unsigned job_queue_depth = 33; ///< sized to the slot count: firmware
                                       ///< can never overflow the wrapper FIFO
        unsigned result_fifo_depth = 16;
        unsigned pipeline_cycles = 16;  ///< hash + reduction + packer depth
        unsigned dequeue_cycles = 4;    ///< job handshake
    };

    explicit PigasusMatcher(const net::IdsRuleSet& rules);
    PigasusMatcher(const net::IdsRuleSet& rules, Params params);

    void reset() override;
    void tick(rpu::AccelContext& ctx) override;
    bool mmio_read(uint32_t offset, uint32_t& value, rpu::AccelContext& ctx) override;
    bool mmio_write(uint32_t offset, uint32_t value, rpu::AccelContext& ctx) override;
    sim::ResourceFootprint resources() const override;
    std::string name() const override { return "pigasus_sme"; }
    unsigned stream_ports() const override { return 4; }
    unsigned queue_count() const override { return 4; }

    /// Functional scan (no timing): matched rule sids for a payload given
    /// the raw port word and TCP-ness. Used directly by tests and by the
    /// software baseline cross-check.
    std::vector<uint32_t> match_payload(const uint8_t* payload, size_t len,
                                        uint32_t raw_ports, bool is_tcp) const;

    /// Rewrite the rule tables at runtime (the capability Rosebud adds to
    /// Pigasus: runtime ruleset updates via the RPU memory subsystem).
    void load_rules(const net::IdsRuleSet& rules);

    const Params& params() const { return params_; }

 private:
    struct Job {
        uint32_t addr = 0;
        uint32_t len = 0;
        uint32_t ports = 0;
        uint32_t state_l = 0;
        uint32_t state_h = 0;
        uint8_t slot = 0;
    };

    struct Result {
        uint32_t rule_id = 0;  ///< 0 = end-of-packet marker
        uint8_t slot = 0;
    };

    void start_job();
    void finish_job(rpu::AccelContext& ctx);

    net::IdsRuleSet rules_;
    net::AhoCorasick fast_patterns_;        ///< case-sensitive fast patterns
    net::AhoCorasick fast_patterns_nocase_; ///< case-folded fast patterns
    Params params_;

    // Latched registers for the next job.
    Job staging_;

    std::deque<Job> job_queue_;
    bool busy_ = false;
    Job active_;
    uint64_t done_at_ = 0;
    bool results_pending_ = false;
    std::vector<Result> pending_results_;
    std::deque<Result> result_fifo_;
};

}  // namespace rosebud::accel

#endif  // ROSEBUD_ACCEL_PIGASUS_H
