#include "accel/pigasus.h"

#include <algorithm>

#include "sim/log.h"

namespace rosebud::accel {

namespace {

/// Decode the raw L4 port word as firmware passes it: the first four bytes
/// of the TCP/UDP header read as a little-endian 32-bit load of
/// network-order bytes.
void
decode_ports(uint32_t raw, uint16_t& src, uint16_t& dst) {
    src = uint16_t(((raw & 0xff) << 8) | ((raw >> 8) & 0xff));
    dst = uint16_t((((raw >> 16) & 0xff) << 8) | ((raw >> 24) & 0xff));
}

}  // namespace

PigasusMatcher::PigasusMatcher(const net::IdsRuleSet& rules)
    : PigasusMatcher(rules, Params{}) {}

PigasusMatcher::PigasusMatcher(const net::IdsRuleSet& rules, Params params)
    : params_(params) {
    load_rules(rules);
}

namespace {

uint8_t
fold(uint8_t b) {
    return b >= 'A' && b <= 'Z' ? uint8_t(b + 32) : b;
}

std::vector<uint8_t>
fold_bytes(const std::vector<uint8_t>& in) {
    std::vector<uint8_t> out(in.size());
    for (size_t i = 0; i < in.size(); ++i) out[i] = fold(in[i]);
    return out;
}

/// Case-insensitive substring search (the `nocase` modifier).
bool
contains_nocase(const uint8_t* hay, size_t hay_len, const std::vector<uint8_t>& needle) {
    if (needle.size() > hay_len) return false;
    auto folded = fold_bytes(needle);
    for (size_t i = 0; i + needle.size() <= hay_len; ++i) {
        size_t j = 0;
        while (j < folded.size() && fold(hay[i + j]) == folded[j]) ++j;
        if (j == folded.size()) return true;
    }
    return false;
}

}  // namespace

void
PigasusMatcher::load_rules(const net::IdsRuleSet& rules) {
    rules_ = rules;
    fast_patterns_ = net::AhoCorasick();
    fast_patterns_nocase_ = net::AhoCorasick();
    for (size_t i = 0; i < rules_.size(); ++i) {
        const auto& fp = rules_.at(i).fast_pattern();
        if (fp.nocase) {
            fast_patterns_nocase_.add_pattern(fold_bytes(fp.bytes), uint32_t(i));
        } else {
            fast_patterns_.add_pattern(fp.bytes, uint32_t(i));
        }
    }
    fast_patterns_.finalize();
    fast_patterns_nocase_.finalize();
}

void
PigasusMatcher::reset() {
    job_queue_.clear();
    result_fifo_.clear();
    pending_results_.clear();
    busy_ = false;
    results_pending_ = false;
    staging_ = Job{};
}

std::vector<uint32_t>
PigasusMatcher::match_payload(const uint8_t* payload, size_t len, uint32_t raw_ports,
                              bool is_tcp) const {
    uint16_t src_port;
    uint16_t dst_port;
    decode_ports(raw_ports, src_port, dst_port);

    std::vector<net::PatternMatch> hits;
    fast_patterns_.scan(payload, len, hits);
    if (fast_patterns_nocase_.pattern_count() > 0) {
        std::vector<uint8_t> folded(payload, payload + len);
        for (auto& b : folded) b = fold(b);
        fast_patterns_nocase_.scan(folded.data(), folded.size(), hits);
    }

    std::vector<uint32_t> sids;
    std::vector<bool> seen(rules_.size(), false);
    for (const auto& hit : hits) {
        if (hit.pattern_id >= rules_.size() || seen[hit.pattern_id]) continue;
        seen[hit.pattern_id] = true;
        const net::IdsRule& rule = rules_.at(hit.pattern_id);

        // Port-matcher stage: protocol group + destination port.
        if (rule.proto == net::RuleProto::kTcp && !is_tcp) continue;
        if (rule.proto == net::RuleProto::kUdp && is_tcp) continue;
        if (rule.dst_port && *rule.dst_port != dst_port) continue;

        // Verify every content of the rule, not just the fast pattern.
        bool all = true;
        for (const auto& c : rule.contents) {
            bool found = c.nocase
                             ? contains_nocase(payload, len, c.bytes)
                             : std::search(payload, payload + len, c.bytes.begin(),
                                           c.bytes.end()) != payload + len;
            if (!found) {
                all = false;
                break;
            }
        }
        if (all) sids.push_back(rule.sid);
    }
    std::sort(sids.begin(), sids.end());
    return sids;
}

void
PigasusMatcher::tick(rpu::AccelContext& ctx) {
    // Drain completed results into the (bounded) result FIFO.
    if (results_pending_) {
        while (!pending_results_.empty() &&
               result_fifo_.size() < params_.result_fifo_depth) {
            result_fifo_.push_back(pending_results_.front());
            pending_results_.erase(pending_results_.begin());
        }
        if (pending_results_.empty()) results_pending_ = false;
    }

    if (busy_) {
        if (ctx.now_cycles >= done_at_) {
            finish_job(ctx);
            busy_ = false;
        }
        return;
    }

    if (!job_queue_.empty() && !results_pending_) {
        active_ = job_queue_.front();
        job_queue_.pop_front();
        uint32_t stream_cycles = (active_.len + params_.engines - 1) / params_.engines;
        done_at_ = ctx.now_cycles + params_.dequeue_cycles + stream_cycles +
                   params_.pipeline_cycles;
        busy_ = true;
    }
}

void
PigasusMatcher::finish_job(rpu::AccelContext& ctx) {
    // Read the payload through the accelerator's dedicated URAM port.
    std::vector<uint8_t> payload(active_.len);
    uint32_t off = active_.addr;
    if (off >= 0x01000000) off -= 0x01000000;  // full address -> PMEM offset
    if (off + active_.len <= ctx.pmem.size()) {
        ctx.pmem.read_block(off, payload.data(), active_.len);
    } else {
        payload.clear();
    }

    bool is_tcp = active_.state_h != 0;  // firmware convention (Appendix B)
    auto sids = match_payload(payload.data(), payload.size(), active_.ports, is_tcp);

    pending_results_.clear();
    for (uint32_t sid : sids) pending_results_.push_back({sid, active_.slot});
    pending_results_.push_back({0, active_.slot});  // end-of-packet marker
    results_pending_ = true;
    ctx.stats.counter("pigasus.jobs").add();
    ctx.stats.counter("pigasus.matches").add(sids.size());
}

bool
PigasusMatcher::mmio_read(uint32_t offset, uint32_t& value, rpu::AccelContext& ctx) {
    (void)ctx;
    switch (offset) {
    case kPigRegMatch:
        value = result_fifo_.empty() ? 0 : 1;
        return true;
    case kPigRegSlot:
        value = result_fifo_.empty() ? 0 : result_fifo_.front().slot;
        return true;
    case kPigRegRuleId:
        value = result_fifo_.empty() ? 0 : result_fifo_.front().rule_id;
        return true;
    case kPigRegDmaStat:
        value = (busy_ ? 1u : 0u) | (result_fifo_.empty() ? 0u : 1u << 8);
        return true;
    default:
        return false;
    }
}

bool
PigasusMatcher::mmio_write(uint32_t offset, uint32_t value, rpu::AccelContext& ctx) {
    (void)ctx;
    switch (offset) {
    case kPigRegCtrl:
        if (value == 1) {
            if (job_queue_.size() < params_.job_queue_depth) {
                job_queue_.push_back(staging_);
            } else {
                // The wrapper FIFO bounds firmware run-ahead; a full queue
                // silently drops the kick in hardware, so model the same
                // (firmware sized to never hit this).
                ctx.stats.counter("pigasus.job_queue_overflow").add();
            }
        } else if (value == 2) {
            if (!result_fifo_.empty()) result_fifo_.pop_front();
        }
        return true;
    case kPigRegDmaLen: staging_.len = value; return true;
    case kPigRegDmaAddr: staging_.addr = value; return true;
    case kPigRegPorts: staging_.ports = value; return true;
    case kPigRegStateL: staging_.state_l = value; return true;
    case kPigRegStateH: staging_.state_h = value; return true;
    case kPigRegSlot: staging_.slot = uint8_t(value); return true;
    default:
        return false;
    }
}

sim::ResourceFootprint
PigasusMatcher::resources() const {
    // Calibrated to Table 3 at 16 engines (36012 LUTs, 49364 FFs, 56 BRAM,
    // 22 URAM, 80 DSP); scales with engine count, matching the paper's
    // observation that halving engines from 32 let the design fit.
    uint64_t e = params_.engines;
    return {.luts = 1200 + 2176 * e,
            .regs = 2500 + 2929 * e,
            .bram = 8 + 3 * e,
            .uram = 6 + e,
            .dsp = 5 * e};
}

}  // namespace rosebud::accel
