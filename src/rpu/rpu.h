/// \file
/// The Reconfigurable Packet-processing Unit (paper Sections 3-4).
///
/// An Rpu bundles a RISC-V core, the three-part memory subsystem (Figure
/// 3), the interconnect/DMA engine that exchanges packets with the
/// distribution subsystem, an accelerator socket, and the broadcast
/// messaging endpoint. It lives inside a partially reconfigurable region:
/// the host can halt it, swap firmware and accelerator, and boot it again
/// while the rest of the system keeps running.
///
/// Timing model highlights (all per DESIGN.md):
///  * the per-RPU data link is 128 bits wide (16 B/cycle = 32 Gbps), and a
///    packet is fully loaded into packet memory before the core sees its
///    descriptor (paper Section 6.2 — this is the 2/32 term of Eq. 1);
///  * the ingress DMA has a fixed per-packet setup overhead
///    (`ingress_gap_cycles`) that does not overlap the next transfer,
///    which is what keeps 8-RPU configurations from sustaining 200 Gbps
///    below ~1 KB packets (Figure 7b);
///  * the egress engine serializes at the same 16 B/cycle and then frees
///    the packet slot toward the LB.

#ifndef ROSEBUD_RPU_RPU_H
#define ROSEBUD_RPU_RPU_H

#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "mem/memory.h"
#include "net/packet.h"
#include "rpu/accelerator.h"
#include "rpu/descriptor.h"
#include "rv/core.h"
#include "sim/fifo.h"
#include "sim/kernel.h"
#include "sim/resources.h"
#include "sim/stats.h"

namespace rosebud::rpu {

/// Slot configuration announced by firmware at boot (init_slots /
/// init_hdr_slots in the paper's C library).
struct SlotConfig {
    uint32_t count = 0;
    uint32_t base = 0;  ///< data address of slot 1
    uint32_t size = 0;  ///< bytes per slot
    uint32_t hdr_base = kDefaultHdrBase;
    uint32_t hdr_size = kDefaultHdrSlotSize;
};

/// A Reconfigurable Packet-processing Unit.
class Rpu : public sim::Component {
 public:
    struct Config {
        uint8_t id = 0;
        uint32_t link_bytes_per_cycle = 16;  ///< 128-bit link at 250 MHz = 32 Gbps
        uint32_t ingress_gap_cycles = 11;    ///< per-packet DMA setup overhead
        uint32_t rx_fifo_depth = 64;
        uint32_t tx_cmd_depth = 8;
        uint32_t bcast_notify_depth = 16;
    };

    Rpu(sim::Kernel& kernel, sim::Stats& stats, const Config& config);

    // --- host-side control (used by host::HostContext) ---------------------

    /// Load an instruction image at kImemBase and set the boot PC.
    void load_firmware(const std::vector<uint32_t>& image, uint32_t entry = 0);

    /// Install/replace the accelerator (partial reconfiguration payload).
    void attach_accelerator(std::unique_ptr<Accelerator> accel);
    Accelerator* accelerator() { return accel_.get(); }

    /// Reset and start the core at the loaded entry point.
    void boot();

    /// Stop the core (it stops consuming cycles; memories stay intact).
    void halt();

    bool core_halted() const { return core_.halted(); }
    bool core_faulted() const { return core_.faulted(); }

    /// Host interrupts (paper: poke/evict). These flush skipped-cycle
    /// accounting before touching the status register (a sleeping core's
    /// catch-up replay must see the pre-poke value) and wake the RPU.
    void raise_poke();
    void raise_evict();

    uint32_t debug_low() const { return debug_low_; }
    uint32_t debug_high() const { return debug_high_; }

    /// Direct host access to RPU memories (debug dumps, table loads).
    mem::Memory& dmem() { return dmem_; }
    mem::Memory& pmem() { return pmem_; }
    mem::Memory& amem() { return amem_; }
    const std::vector<uint32_t>& imem() const { return imem_; }

    const rv::Core& core() const { return core_; }
    rv::Core& core() { return core_; }

    // --- distribution-subsystem interface -----------------------------------

    /// True if the ingress link can accept a new packet this cycle. During
    /// the tick phase this is a post-tick lookahead of the committed RX
    /// engine state, so the answer does not depend on whether this RPU has
    /// ticked yet (tick-order independence); outside the tick phase it
    /// reports the committed state directly.
    bool rx_ready() const;

    /// Begin streaming `pkt` into packet memory (dest_slot must be set).
    /// Precondition: rx_ready(). During the tick phase the transfer is
    /// staged and starts at this cycle's commit; host/test callers outside
    /// the tick phase start it immediately.
    void begin_rx(net::PacketPtr pkt);

    /// Number of packets currently buffered in this RPU (in flight +
    /// waiting for the core + being transmitted).
    uint32_t occupancy() const { return occupancy_; }

    /// The slot configuration last committed by firmware.
    const SlotConfig& slot_config() const { return slots_; }

    // --- system wiring -------------------------------------------------------

    /// Egress: called when a packet finished serializing out of the RPU.
    /// Return false to backpressure (TX engine retries next cycle).
    using EgressHandler = std::function<bool(net::PacketPtr)>;
    void set_egress_handler(EgressHandler h) { egress_ = std::move(h); }

    /// Called when a packet slot is freed (LB bookkeeping).
    using SlotFreeHandler = std::function<void(uint8_t rpu, uint8_t slot)>;
    void set_slot_free_handler(SlotFreeHandler h) { slot_free_ = std::move(h); }

    /// Called when firmware commits its slot configuration.
    using SlotConfigHandler = std::function<void(uint8_t rpu, const SlotConfig&)>;
    void set_slot_config_handler(SlotConfigHandler h) { slot_config_cb_ = std::move(h); }

    /// Broadcast TX: return false when the message FIFO is full (the
    /// core's store then blocks, as in the paper).
    using BroadcastSender = std::function<bool(uint8_t rpu, uint32_t offset, uint32_t value)>;
    void set_broadcast_sender(BroadcastSender h) { bcast_send_ = std::move(h); }

    /// Remote-slot allocation for loopback sends: the request is routed to
    /// the LB, which answers (at its commit) via slot_response(). Firmware
    /// polls kRegLbSlotResp for the answer.
    using SlotRequestHandler = std::function<void(uint8_t requester, uint8_t dst_rpu)>;
    void set_slot_request_handler(SlotRequestHandler h) { slot_req_ = std::move(h); }

    /// LB answer to a routed slot request: `slot` empty = denied.
    void slot_response(uint8_t dst_rpu, std::optional<uint8_t> slot) {
        slot_resp_ = slot ? (uint32_t(dst_rpu + 1) << 16 | *slot) : 1u;
    }

    /// Broadcast delivery from the messaging network (simultaneous on all
    /// RPUs): updates the local semi-coherent copy + notify FIFO.
    void broadcast_deliver(uint32_t offset, uint32_t value);

    /// Read a word of the local semi-coherent broadcast copy (host-side
    /// debugging; the region is not in the host-mapped memory space).
    uint32_t broadcast_word(uint32_t offset) const {
        uint32_t v = 0;
        if (offset + 4 <= kBcastSize) std::memcpy(&v, &bcast_mem_[offset], 4);
        return v;
    }

    /// Optional per-packet observation hook (core/tracer.h).
    using TraceFn = std::function<void(const char* event, const net::Packet& pkt)>;
    void set_trace(TraceFn fn) { trace_ = std::move(fn); }

    // --- simulation ----------------------------------------------------------

    void tick() override;

    /// Applies the RX-engine state transition staged by tick() plus any
    /// begin_rx/broadcast delivery staged by other components this cycle.
    void commit() override;

    /// Quiescent when every input is frozen and the core is either halted
    /// or spinning in a proven stable poll loop (rv::Core's idle-loop
    /// watcher) — see DESIGN.md §11.
    bool quiescent() const override;

    /// Footprint of the base RPU (core + memory subsystem + accelerator
    /// manager), excluding the attached accelerator.
    sim::ResourceFootprint base_resources() const;

    /// Base + attached accelerator.
    sim::ResourceFootprint resources() const;

    uint8_t id() const { return config_.id; }

 protected:
    /// Catch the core up on cycles skipped while asleep (arithmetic for
    /// whole loop periods or a halted core, tick replay for the remainder;
    /// exact because the replayed instructions see the same frozen inputs
    /// they would have seen live).
    void on_wake(sim::Cycle skipped_cycles) override;

 private:
    friend class RpuBus;

    /// rv::Bus implementation mapping the RPU address space.
    class RpuBus : public rv::Bus {
     public:
        explicit RpuBus(Rpu& rpu) : rpu_(rpu) {}
        Access load(uint32_t addr, uint32_t size) override;
        Access store(uint32_t addr, uint32_t size, uint32_t value) override;
        uint32_t fetch(uint32_t addr) override;
        bool watch_safe_read(uint32_t addr) const override;

     private:
        Rpu& rpu_;
    };

    uint32_t io_read(uint32_t offset);
    void io_write(uint32_t offset, uint32_t value);
    void apply_begin_rx(net::PacketPtr pkt);
    void finish_rx();
    void tick_tx();
    void declare_netlist(sim::Kernel& kernel);
    std::string stat(const char* suffix) const;

    /// True when no RPU engine can make progress and no input can change
    /// without an external call: the license both for arming the core's
    /// idle-loop watcher and (in quiescent()) for sleeping.
    bool inputs_frozen() const;

    Config config_;
    sim::Stats& stats_;

    // Memories.
    std::vector<uint32_t> imem_;
    mem::Memory dmem_;
    mem::Memory pmem_;
    mem::Memory amem_;

    RpuBus bus_;
    rv::Core core_;
    uint32_t entry_pc_ = 0;

    std::unique_ptr<Accelerator> accel_;

    // Slot bookkeeping.
    SlotConfig slots_;
    SlotConfig staged_slots_;  ///< being written by firmware, pre-commit
    std::vector<net::PacketPtr> slot_pkts_;

    // RX engine. `rx_remaining_`/`rx_gap_` are the committed state other
    // components may observe (through rx_ready's lookahead); tick() stages
    // the next values and commit() applies them, so the engine advances
    // identically under any component tick order.
    sim::Fifo<Desc> rx_fifo_;
    net::PacketPtr rx_pkt_;
    uint32_t rx_remaining_ = 0;  ///< cycles left in the current transfer
    uint32_t rx_gap_ = 0;        ///< post-transfer setup gap
    uint32_t rx_next_remaining_ = 0;  ///< staged by tick()
    uint32_t rx_next_gap_ = 0;        ///< staged by tick()
    net::PacketPtr rx_pending_;       ///< begin_rx staged during a tick
    /// Mirrors rx_pending_'s occupancy for cross-thread observers: under
    /// parallel ticks the fabric stages begin_rx from another worker while
    /// this RPU's tick polls inputs_frozen(). The pointer itself is only
    /// touched across the tick/commit barrier (which orders it); the flag
    /// carries the same-cycle occupancy answer race-free.
    std::atomic<bool> rx_pending_flag_{false};
    uint32_t occupancy_ = 0;

    // TX engine.
    struct TxCmd {
        Desc desc;
        uint16_t dest = 0;  ///< rpu<<8|slot for loopback sends
    };
    sim::Fifo<TxCmd> tx_fifo_;
    std::optional<TxCmd> tx_cur_;
    net::PacketPtr tx_out_;      ///< assembled packet waiting for egress space
    uint32_t tx_remaining_ = 0;
    uint32_t send_low_latch_ = 0;
    uint16_t send_dest_latch_ = 0;

    // Interconnect registers.
    uint32_t timer_cmp_ = 0;  ///< cycles until the watchdog fires (0 = off)
    uint32_t debug_low_ = 0;
    uint32_t debug_high_ = 0;
    uint32_t irq_mask_ = 0;
    uint32_t irq_status_ = 0;

    // Broadcast endpoint. Deliveries arriving during a tick are staged in
    // `bcast_pending_` and land in the semi-coherent copy at commit.
    std::vector<uint8_t> bcast_mem_;
    std::vector<std::pair<uint32_t, uint32_t>> bcast_pending_;
    sim::Fifo<std::pair<uint32_t, uint32_t>> bcast_notify_;
    uint64_t bcast_notify_drops_ = 0;

    // Loopback slot request state.
    std::optional<uint32_t> slot_resp_;
    uint32_t slot_resp_ready_cycle_ = 0;

    // Idle-loop watcher arm state (tracks inputs_frozen across ticks).
    bool idle_watching_ = false;

    // Hot-path counter handles, resolved once at construction (the tick
    // path must not build dotted names or walk the stats map per packet).
    sim::Counter* ctr_rx_packets_ = nullptr;
    sim::Counter* ctr_rx_bytes_ = nullptr;
    sim::Counter* ctr_rx_bad_slot_ = nullptr;
    sim::Counter* ctr_tx_packets_ = nullptr;
    sim::Counter* ctr_tx_bytes_ = nullptr;
    sim::Counter* ctr_tx_stall_cycles_ = nullptr;
    sim::Counter* ctr_dropped_packets_ = nullptr;

    // Reused header-mirror staging buffer (no per-packet allocation).
    std::vector<uint8_t> hdr_scratch_;

    // Wiring.
    TraceFn trace_;
    void trace(const char* event, const net::Packet& pkt) {
        if (trace_) trace_(event, pkt);
    }
    EgressHandler egress_;
    SlotFreeHandler slot_free_;
    SlotConfigHandler slot_config_cb_;
    BroadcastSender bcast_send_;
    SlotRequestHandler slot_req_;
};

}  // namespace rosebud::rpu

#endif  // ROSEBUD_RPU_RPU_H
