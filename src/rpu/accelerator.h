/// \file
/// The accelerator socket of an RPU (paper Sections 3.3, 4.1, Appendix A.2).
///
/// Accelerators plug into an RPU behind a thin wrapper that exposes their
/// registers over the IO_EXT MMIO window and gives them streaming access to
/// the shared packet memory and both ports of their local memory. The
/// firmware orchestrates them exactly as the paper's C code does: write a
/// few registers (payload pointer/length, ports, slot), kick a control
/// register, poll/drain a result FIFO.
///
/// Accelerators are the unit of partial reconfiguration: the host can swap
/// the accelerator (and firmware) of a drained RPU at runtime.

#ifndef ROSEBUD_RPU_ACCELERATOR_H
#define ROSEBUD_RPU_ACCELERATOR_H

#include <cstdint>
#include <memory>
#include <string>

#include "mem/memory.h"
#include "sim/resources.h"
#include "sim/stats.h"

namespace rosebud::rpu {

/// Everything an accelerator may touch during a cycle.
struct AccelContext {
    mem::Memory& pmem;       ///< shared packet memory (accelerator port)
    mem::Memory& local_mem;  ///< accelerator local memory (lookup tables)
    sim::Stats& stats;
    uint64_t now_cycles;     ///< current simulation time
};

/// Base class for RPU accelerators.
class Accelerator {
 public:
    virtual ~Accelerator() = default;

    /// Reset internal state (on RPU boot and after reconfiguration).
    virtual void reset() {}

    /// One clock cycle of work.
    virtual void tick(AccelContext& ctx) = 0;

    /// MMIO read at `offset` within the IO_EXT window.
    /// Returns false for unmapped offsets (reads as 0).
    virtual bool mmio_read(uint32_t offset, uint32_t& value, AccelContext& ctx) = 0;

    /// MMIO write at `offset` within the IO_EXT window.
    virtual bool mmio_write(uint32_t offset, uint32_t value, AccelContext& ctx) = 0;

    /// FPGA footprint of the accelerator logic itself (excluding the
    /// wrapper/manager, which the RPU accounts separately).
    virtual sim::ResourceFootprint resources() const = 0;

    /// Human-readable name for reports.
    virtual std::string name() const = 0;

    /// Number of packet-memory streaming ports the wrapper muxes for this
    /// accelerator (drives the memory-subsystem footprint).
    virtual unsigned stream_ports() const { return 0; }

    /// Number of hardware queues the wrapper instantiates (drives the
    /// accelerator-manager footprint).
    virtual unsigned queue_count() const { return 0; }
};

/// Footprint of the accelerator manager/wrapper (queues + address decode),
/// calibrated to Table 3's "Accel. manager" row (scales mildly with the
/// number of hardware queues the wrapper instantiates).
sim::ResourceFootprint accel_manager_footprint(unsigned queue_count);

}  // namespace rosebud::rpu

#endif  // ROSEBUD_RPU_ACCELERATOR_H
