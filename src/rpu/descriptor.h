/// \file
/// Packet descriptors and the RPU memory map.
///
/// The descriptor is the software/hardware contract of the RPU abstraction
/// (paper Section 3.1): the interconnect hands the RISC-V core a descriptor
/// for every arriving packet, and the core sends packets by writing a
/// descriptor back. The 64-bit layout is chosen so the hot firmware paths
/// are single instructions:
///
///   low word :  [3:0] port | [11:4] slot/tag | [31:16] length
///   high word:  packet data address (0 = slot default)
///
/// * toggle output port 0<->1:  xori rd, rs, 1
/// * drop (length := 0):        andi rd, rs, 0xfff
/// * extract length:            srli rd, rs, 16

#ifndef ROSEBUD_RPU_DESCRIPTOR_H
#define ROSEBUD_RPU_DESCRIPTOR_H

#include <cstdint>

namespace rosebud::rpu {

// --- RPU-local address map -------------------------------------------------

inline constexpr uint32_t kImemBase = 0x00000000;
inline constexpr uint32_t kImemSize = 64 * 1024;
inline constexpr uint32_t kDmemBase = 0x00800000;
inline constexpr uint32_t kDmemSize = 32 * 1024;
inline constexpr uint32_t kPmemBase = 0x01000000;
inline constexpr uint32_t kPmemSize = 1024 * 1024;  ///< 8 blocks of 128 KB
inline constexpr uint32_t kAmemBase = 0x01800000;
inline constexpr uint32_t kAmemSize = 256 * 1024;   ///< accelerator local memory
inline constexpr uint32_t kIoBase = 0x02000000;
inline constexpr uint32_t kIoSize = 0x10000;
inline constexpr uint32_t kIoExtBase = 0x02010000;  ///< accelerator wrapper registers
inline constexpr uint32_t kIoExtSize = 0x10000;
inline constexpr uint32_t kBcastBase = 0x02020000;  ///< broadcast (semi-coherent) region
inline constexpr uint32_t kBcastSize = 4 * 1024;

/// Default header-copy area: upper half of DMEM (paper Appendix B:
/// header_slot_base = DMEM_BASE + (DMEM_SIZE >> 1)).
inline constexpr uint32_t kDefaultHdrBase = kDmemBase + kDmemSize / 2;
inline constexpr uint32_t kDefaultHdrSlotSize = 128;

// --- interconnect MMIO registers (offsets from kIoBase) ---------------------

enum IoReg : uint32_t {
    kRegRecvLow = 0x00,      ///< R: head RX descriptor low (0 = none)
    kRegRecvHigh = 0x04,     ///< R: head RX descriptor high (data address)
    kRegRecvRelease = 0x08,  ///< W: pop the RX descriptor FIFO
    kRegSendLow = 0x10,      ///< W: latch TX descriptor low
    kRegSendHigh = 0x14,     ///< W: latch high word and enqueue the send
    kRegRxReady = 0x18,      ///< R: 1 if an RX descriptor is pending
    kRegDebugLow = 0x20,     ///< RW: host-visible debug register
    kRegDebugHigh = 0x24,    ///< RW
    kRegCycle = 0x28,        ///< R: core cycle counter (low 32 bits)
    kRegCoreId = 0x2c,       ///< R: this RPU's index
    kRegIrqMask = 0x30,      ///< W: enabled interrupt bits (set_masks)
    kRegIrqStatus = 0x34,    ///< R: pending host interrupts (poke/evict)
    kRegIrqAck = 0x38,       ///< W: clear pending bits
    kRegSlotCount = 0x40,    ///< W: packet slot configuration (init_slots)
    kRegSlotBase = 0x44,     ///< W: first slot's data address
    kRegSlotSize = 0x48,     ///< W: bytes per slot
    kRegHdrBase = 0x4c,      ///< W: header-copy base (init_hdr_slots)
    kRegHdrSize = 0x50,      ///< W: bytes per header slot
    kRegSlotCommit = 0x54,   ///< W: publish slot config to the LB
    kRegBcastAddr = 0x60,    ///< R: notify FIFO head: region offset
    kRegBcastData = 0x64,    ///< R: notify FIFO head: value
    kRegBcastReady = 0x68,   ///< R: 1 if a broadcast notification is pending
    kRegBcastPop = 0x6c,     ///< W: pop the notify FIFO
    kRegLbSlotReq = 0x70,    ///< W: request a packet slot in RPU <value> (loopback)
    kRegLbSlotResp = 0x74,   ///< R: (rpu+1)<<16 | slot when granted, 0 while pending
    kRegSendDest = 0x78,     ///< W: dest (rpu<<8|slot) latched for the next loopback send
    kRegTimerCmp = 0x7c,     ///< W: raise the timer interrupt after N cycles (0 = off)
};

/// Host interrupt bits in kRegIrqStatus/kRegIrqMask (paper: "Enable only
/// Evict + Poke" == 0x30).
inline constexpr uint32_t kIrqPoke = 1u << 4;
inline constexpr uint32_t kIrqEvict = 1u << 5;
inline constexpr uint32_t kIrqTimer = 1u << 6;  ///< internal watchdog timer

// --- descriptor ------------------------------------------------------------

/// Descriptors and broadcast messages are exchanged as two 32-bit words,
/// i.e. a 64-bit channel (used by the netlist width checks).
inline constexpr unsigned kDescWidthBits = 64;

/// Decoded descriptor. See the packing notes in the file comment.
struct Desc {
    uint16_t len = 0;
    uint8_t slot = 0;
    uint8_t port = 0;   ///< net::Iface value
    uint32_t addr = 0;  ///< packet data address; 0 = slot default

    uint32_t low() const {
        return uint32_t(port & 0xf) | uint32_t(slot) << 4 | uint32_t(len) << 16;
    }

    uint32_t high() const { return addr; }

    static Desc unpack(uint32_t low, uint32_t high) {
        Desc d;
        d.port = uint8_t(low & 0xf);
        d.slot = uint8_t((low >> 4) & 0xff);
        d.len = uint16_t(low >> 16);
        d.addr = high;
        return d;
    }
};

}  // namespace rosebud::rpu

#endif  // ROSEBUD_RPU_DESCRIPTOR_H
