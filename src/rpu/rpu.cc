#include "rpu/rpu.h"

#include <cstring>

#include "sim/log.h"

namespace rosebud::rpu {

namespace {

/// Ceiling division for transfer-cycle computation.
uint32_t
div_ceil(uint32_t a, uint32_t b) {
    return (a + b - 1) / b;
}

}  // namespace

sim::ResourceFootprint
accel_manager_footprint(unsigned queue_count) {
    return {.luts = 500 + 75ull * queue_count, .regs = 1900 + 200ull * queue_count};
}

Rpu::Rpu(sim::Kernel& kernel, sim::Stats& stats, const Config& config)
    : sim::Component(kernel, "rpu" + std::to_string(config.id)),
      config_(config),
      stats_(stats),
      imem_(kImemSize / 4, 0),
      dmem_("rpu" + std::to_string(config.id) + ".dmem", kDmemSize),
      pmem_("rpu" + std::to_string(config.id) + ".pmem", kPmemSize),
      amem_("rpu" + std::to_string(config.id) + ".amem", kAmemSize),
      bus_(*this),
      core_("rpu" + std::to_string(config.id) + ".core", bus_),
      slot_pkts_(256),
      rx_fifo_(kernel, name() + ".rx_fifo", config.rx_fifo_depth, kDescWidthBits),
      tx_fifo_(kernel, name() + ".tx_fifo", config.tx_cmd_depth, kDescWidthBits),
      bcast_mem_(kBcastSize, 0),
      // Registered credit: the broadcast network pushes while this RPU's
      // core pops, so the full/empty answer must not depend on tick order.
      bcast_notify_(kernel, name() + ".bcast_notify", config.bcast_notify_depth,
                    kDescWidthBits, 0, sim::CreditPolicy::kRegistered) {
    declare_netlist(kernel);
    // Packet-slot occupancy for the health layer's backlog census: slots
    // are not a sim::Fifo (the DMA engine scatters into slot memory), so
    // the RPU registers the probe itself. occupancy_ mirrors rx_pending_
    // race-free, so a host-phase read is always consistent.
    kernel.register_occupancy_probe(name() + ".slots", slot_pkts_.size(), this,
                                    [this] { return size_t(occupancy_); });
    ctr_rx_packets_ = &stats.counter(stat("rx_packets"));
    ctr_rx_bytes_ = &stats.counter(stat("rx_bytes"));
    ctr_rx_bad_slot_ = &stats.counter(stat("rx_bad_slot"));
    ctr_tx_packets_ = &stats.counter(stat("tx_packets"));
    ctr_tx_bytes_ = &stats.counter(stat("tx_bytes"));
    ctr_tx_stall_cycles_ = &stats.counter(stat("tx_stall_cycles"));
    ctr_dropped_packets_ = &stats.counter(stat("dropped_packets"));
}

void
Rpu::declare_netlist(sim::Kernel& kernel) {
    using sim::NetRecord;
    using sim::PortRecord;
    const unsigned link_bits = config_.link_bytes_per_cycle * 8;

    // The ingress link from the distribution fabric (written by Fabric).
    kernel.declare_net({name() + ".link_in", NetRecord::kLink, link_bits, 1, 0});
    kernel.declare_port({name(), name() + ".link_in", PortRecord::kRead, link_bits, 1});

    // Broadcast delivery lane (written by the messaging network).
    kernel.declare_net({name() + ".bcast_in", NetRecord::kLink, kDescWidthBits, 1, 0});
    kernel.declare_port({name(), name() + ".bcast_in", PortRecord::kRead, kDescWidthBits, 1});

    // Endpoints of the self-declared FIFOs (rx/tx descriptors are produced
    // and consumed inside the RPU; bcast_notify is written by broadcast).
    kernel.declare_port({name(), name() + ".rx_fifo", PortRecord::kWrite,
                         kDescWidthBits, config_.rx_fifo_depth});
    kernel.declare_port({name(), name() + ".rx_fifo", PortRecord::kRead, kDescWidthBits, 0});
    kernel.declare_port({name(), name() + ".tx_fifo", PortRecord::kWrite,
                         kDescWidthBits, config_.tx_cmd_depth});
    kernel.declare_port({name(), name() + ".tx_fifo", PortRecord::kRead, kDescWidthBits, 0});
    kernel.declare_port({name(), name() + ".bcast_notify", PortRecord::kRead,
                         kDescWidthBits, 0});

    // Memory subsystem (Figure 3).
    dmem_.declare_ports(kernel, name());
    pmem_.declare_ports(kernel, name());
    amem_.declare_ports(kernel, name());
}

std::string
Rpu::stat(const char* suffix) const {
    return name() + "." + suffix;
}

void
Rpu::load_firmware(const std::vector<uint32_t>& image, uint32_t entry) {
    if (image.size() > imem_.size()) sim::fatal("firmware image larger than IMEM");
    flush_skipped();
    std::fill(imem_.begin(), imem_.end(), 0);
    std::copy(image.begin(), image.end(), imem_.begin());
    entry_pc_ = entry;
    core_.icache_invalidate();
    wake();
}

void
Rpu::attach_accelerator(std::unique_ptr<Accelerator> accel) {
    flush_skipped();
    wake();
    accel_ = std::move(accel);
    if (accel_) {
        accel_->reset();
        // Re-elaborate the accelerator socket: declare_net is idempotent
        // by name, so a reconfiguration swap simply refreshes the record.
        kernel().declare_net(
            {name() + ".accel_link", sim::NetRecord::kLink, 32, 1, 0});
        kernel().declare_port({name(), name() + ".accel_link",
                               sim::PortRecord::kWrite, 32, 1});
        kernel().declare_port({name(), name() + ".accel_link",
                               sim::PortRecord::kRead, 32, 1});
    }
}

void
Rpu::boot() {
    flush_skipped();
    wake();
    core_.reset(entry_pc_);
    if (accel_) accel_->reset();
    slots_ = SlotConfig{};
    staged_slots_ = SlotConfig{};
    for (auto& p : slot_pkts_) p.reset();
    rx_fifo_.clear();
    tx_fifo_.clear();
    rx_pkt_.reset();
    rx_remaining_ = 0;
    rx_gap_ = 0;
    rx_next_remaining_ = 0;
    rx_next_gap_ = 0;
    rx_pending_.reset();
    rx_pending_flag_.store(false, std::memory_order_relaxed);
    bcast_pending_.clear();
    tx_cur_.reset();
    tx_out_.reset();
    tx_remaining_ = 0;
    occupancy_ = 0;
    irq_status_ = 0;
    timer_cmp_ = 0;
    slot_resp_.reset();
}

void
Rpu::halt() {
    // Stop fetching; memories and in-flight engines are left intact so the
    // host can inspect state (paper Section 3.4). Accounting is flushed
    // first so the core's cycle counter is exact at the halt point.
    flush_skipped();
    core_.stop();
}

void
Rpu::raise_poke() {
    flush_skipped();
    irq_status_ |= kIrqPoke;
    wake();
}

void
Rpu::raise_evict() {
    flush_skipped();
    irq_status_ |= kIrqEvict;
    wake();
}

bool
Rpu::rx_ready() const {
    if (!kernel().in_tick()) return rx_remaining_ == 0 && rx_gap_ == 0;
    if (rx_pending_flag_.load(std::memory_order_relaxed)) return false;
    // Post-tick lookahead: replay this cycle's RX-engine transition on the
    // committed state, so the answer is the same whether or not this RPU
    // has already ticked.
    uint32_t rem = rx_remaining_;
    uint32_t gap = rx_gap_;
    if (rem > 0) {
        if (--rem == 0) gap = config_.ingress_gap_cycles;
    } else if (gap > 0) {
        --gap;
    }
    return rem == 0 && gap == 0;
}

void
Rpu::begin_rx(net::PacketPtr pkt) {
    if (!rx_ready()) sim::panic(name() + ": begin_rx while busy");
    if (kernel().in_tick()) {
        rx_pending_ = std::move(pkt);  // transfer starts at this commit
        rx_pending_flag_.store(true, std::memory_order_relaxed);
        wake();  // staged input: a sleeping RPU resumes next cycle
        return;
    }
    flush_skipped();
    apply_begin_rx(std::move(pkt));
    wake();
}

void
Rpu::apply_begin_rx(net::PacketPtr pkt) {
    uint32_t bytes = pkt->size() + (pkt->hash_prepended ? 4 : 0);
    rx_pkt_ = std::move(pkt);
    rx_remaining_ = div_ceil(bytes == 0 ? 1 : bytes, config_.link_bytes_per_cycle);
    ++occupancy_;
}

void
Rpu::finish_rx() {
    net::PacketPtr pkt = std::move(rx_pkt_);
    uint8_t slot = pkt->dest_slot;
    if (slots_.count == 0 || slot == 0 || slot > slots_.count) {
        // The LB never dispatches before slot config; treat as a drop.
        ctr_rx_bad_slot_->add();
        --occupancy_;
        return;
    }
    uint32_t bytes = pkt->size() + (pkt->hash_prepended ? 4 : 0);
    uint32_t addr = slots_.base + (slot - 1) * slots_.size;
    uint32_t pmem_off = addr - kPmemBase;
    if (addr < kPmemBase || pmem_off + bytes > kPmemSize) {
        sim::panic(name() + ": slot data outside packet memory");
    }

    // Write packet (with optional prepended flow hash) into packet memory.
    if (pkt->hash_prepended) {
        pmem_.write32(pmem_off, pkt->lb_hash);
        pmem_.write_block(pmem_off + 4, pkt->data.data(), pkt->size());
    } else {
        pmem_.write_block(pmem_off, pkt->data.data(), pkt->size());
    }

    // Mirror the first bytes into the core's low-latency header slot.
    uint32_t hdr_bytes = std::min(bytes, slots_.hdr_size);
    uint32_t hdr_addr = slots_.hdr_base + (slot - 1) * slots_.hdr_size;
    if (hdr_addr >= kDmemBase && hdr_addr - kDmemBase + hdr_bytes <= kDmemSize) {
        if (hdr_scratch_.size() < hdr_bytes) hdr_scratch_.resize(hdr_bytes);
        pmem_.read_block(pmem_off, hdr_scratch_.data(), hdr_bytes);
        dmem_.write_block(hdr_addr - kDmemBase, hdr_scratch_.data(), hdr_bytes);
    }

    slot_pkts_[slot] = pkt;
    Desc d;
    d.len = uint16_t(bytes);
    d.slot = slot;
    d.port = uint8_t(pkt->in_iface);
    d.addr = addr;
    if (!rx_fifo_.push(d)) {
        // Cannot happen: FIFO depth >= max slot count, and each slot holds
        // at most one packet.
        sim::panic(name() + ": rx descriptor fifo overflow");
    }
    trace("rpu_rx_complete", *pkt);
    if (kernel().commit_compat()) {
        stats_.counter(stat("rx_packets")).add();
        stats_.counter(stat("rx_bytes")).add(pkt->size());
    } else {
        ctr_rx_packets_->add();
        ctr_rx_bytes_->add(pkt->size());
    }
}

bool
Rpu::inputs_frozen() const {
    // Every term is committed state: no engine mid-transfer, no staged
    // cross-component input, no pending work the core could pick up, no
    // time-driven events, no accelerator (which may act spontaneously).
    return !accel_ && timer_cmp_ == 0 &&
           !rx_pkt_ && rx_remaining_ == 0 && rx_gap_ == 0 &&
           !rx_pending_flag_.load(std::memory_order_relaxed) &&
           !tx_cur_ && !tx_out_ && tx_fifo_.size() == 0 &&
           rx_fifo_.size() == 0 && bcast_notify_.size() == 0 &&
           bcast_pending_.empty() && !slot_resp_ &&
           (irq_status_ & irq_mask_) == 0;
}

bool
Rpu::quiescent() const {
    if (core_.profile()) return false;  // the PC histogram must see every cycle
    if (!core_.halted() && !(idle_watching_ && core_.stable_loop())) return false;
    return inputs_frozen();
}

void
Rpu::on_wake(sim::Cycle skipped_cycles) {
    // Engines, timer and accelerator were provably inert for the whole
    // window (inputs_frozen); only the core's time advances.
    core_.skip_idle_cycles(skipped_cycles);
}

void
Rpu::tick() {
    // Arm/disarm the core's idle-loop watcher as the inputs freeze and
    // unfreeze. Only while the kernel may actually skip: with telemetry
    // attached every cycle runs anyway and the watcher is pure overhead.
    // While not yet watching, the (multi-FIFO) freeze probe runs every
    // 8th cycle only — arming a few cycles late just delays sleep; the
    // disarm direction stays per-cycle so a stale watch never lingers
    // once inputs move again.
    if (kernel().idle_skip_effective()) {
        if (idle_watching_ || (now() & 7) == 0) {
            const bool frozen = inputs_frozen();
            if (frozen != idle_watching_) {
                idle_watching_ = frozen;
                core_.set_idle_watch(frozen);
            }
        }
    } else if (idle_watching_) {
        idle_watching_ = false;
        core_.set_idle_watch(false);
    }

    // Internal watchdog timer (paper Section 3.4: firmware detects hangs
    // "using internal timer interrupt").
    if (timer_cmp_ > 0 && --timer_cmp_ == 0) irq_status_ |= kIrqTimer;
    core_.set_irq((irq_status_ & irq_mask_) != 0);
    core_.tick();

    if (accel_) {
        AccelContext ctx{pmem_, amem_, stats_, now()};
        accel_->tick(ctx);
    }

    // RX engine: one packet in flight, 16 B/cycle, then a setup gap. The
    // transition is staged (committed state stays observable to the fabric
    // through rx_ready's lookahead) and applied in commit().
    rx_next_remaining_ = rx_remaining_;
    rx_next_gap_ = rx_gap_;
    if (rx_next_remaining_ > 0) {
        // A flit moves on the 128-bit ingress link this cycle.
        if (sim::TelemetrySink* t = kernel().telemetry()) {
            t->net_event(name() + ".link_in", sim::TelemetrySink::NetEvent::kPop);
        }
        if (--rx_next_remaining_ == 0) {
            finish_rx();
            rx_next_gap_ = config_.ingress_gap_cycles;
        }
    } else if (rx_next_gap_ > 0) {
        --rx_next_gap_;
    }

    tick_tx();
}

void
Rpu::commit() {
    rx_remaining_ = rx_next_remaining_;
    rx_gap_ = rx_next_gap_;
    if (rx_pending_flag_.load(std::memory_order_relaxed)) {
        rx_pending_flag_.store(false, std::memory_order_relaxed);
        apply_begin_rx(std::move(rx_pending_));
    }
    for (const auto& [offset, value] : bcast_pending_) {
        std::memcpy(&bcast_mem_[offset], &value, 4);
    }
    bcast_pending_.clear();
}

void
Rpu::tick_tx() {
    // Stage 3: a fully serialized packet waiting for egress buffer space.
    if (tx_out_) {
        if (egress_ && egress_(tx_out_)) {
            uint8_t slot = tx_cur_->desc.slot;
            if (kernel().commit_compat()) {
                stats_.counter(stat("tx_packets")).add();
                stats_.counter(stat("tx_bytes")).add(tx_out_->size());
            } else {
                ctr_tx_packets_->add();
                ctr_tx_bytes_->add(tx_out_->size());
            }
            tx_out_.reset();
            tx_cur_.reset();
            slot_pkts_[slot].reset();
            --occupancy_;
            if (slot_free_) slot_free_(config_.id, slot);
        } else if (kernel().commit_compat()) {
            stats_.counter(stat("tx_stall_cycles")).add();
        } else {
            ctr_tx_stall_cycles_->add();
        }
        return;
    }

    // Stage 2: serializing out of packet memory.
    if (tx_cur_) {
        if (tx_remaining_ > 0) --tx_remaining_;
        if (tx_remaining_ == 0) {
            const Desc& d = tx_cur_->desc;
            uint32_t addr = d.addr ? d.addr
                                   : slots_.base + (d.slot - 1) * slots_.size;
            uint32_t off = addr - kPmemBase;
            if (addr < kPmemBase || off + d.len > kPmemSize) {
                sim::panic(name() + ": tx descriptor outside packet memory (addr=" +
                           std::to_string(addr) + " len=" + std::to_string(d.len) +
                           " slot=" + std::to_string(d.slot) + ")");
            }
            net::PacketPtr src = slot_pkts_[d.slot];
            auto out = std::make_shared<net::Packet>();
            out->data.resize(d.len);
            pmem_.read_block(off, out->data.data(), d.len);
            if (src) {
                out->id = src->id;
                out->tx_ns = src->tx_ns;
                out->in_iface = src->in_iface;
                out->is_attack = src->is_attack;
                out->flow_seq = src->flow_seq;
                out->lb_hash = src->lb_hash;
            }
            out->out_iface = net::Iface(d.port & 3);
            out->dest_rpu = uint8_t(tx_cur_->dest >> 8);
            out->dest_slot = uint8_t(tx_cur_->dest & 0xff);
            trace("fw_send", *out);
            tx_out_ = std::move(out);
        }
        return;
    }

    // Stage 1: accept a new send command from firmware.
    if (!tx_fifo_.empty()) {
        TxCmd cmd = tx_fifo_.pop();
        if (cmd.desc.len == 0) {
            // Drop: free the slot without transmitting.
            uint8_t slot = cmd.desc.slot;
            if (slot_pkts_[slot]) trace("fw_drop", *slot_pkts_[slot]);
            ctr_dropped_packets_->add();
            slot_pkts_[slot].reset();
            --occupancy_;
            if (slot_free_) slot_free_(config_.id, slot);
            return;
        }
        tx_cur_ = cmd;
        tx_remaining_ = div_ceil(cmd.desc.len, config_.link_bytes_per_cycle);
    }
}

void
Rpu::broadcast_deliver(uint32_t offset, uint32_t value) {
    if (offset + 4 > kBcastSize) return;
    if (kernel().in_tick()) {
        // Delivered from the broadcast network's tick: the semi-coherent
        // copy updates at commit so the core never sees a half-cycle value.
        // The notify push below wakes a sleeping RPU (and replays its
        // skipped window against the still-unmodified bcast_mem_).
        bcast_pending_.emplace_back(offset, value);
    } else {
        flush_skipped();  // replay must see the pre-delivery copy
        std::memcpy(&bcast_mem_[offset], &value, 4);
        wake();
    }
    if (!bcast_notify_.push({offset, value})) ++bcast_notify_drops_;
}

// --- MMIO -------------------------------------------------------------------

uint32_t
Rpu::io_read(uint32_t offset) {
    switch (offset & ~3u) {
    case kRegRecvLow: return rx_fifo_.empty() ? 0 : rx_fifo_.front().low();
    case kRegRecvHigh: return rx_fifo_.empty() ? 0 : rx_fifo_.front().high();
    case kRegRxReady: return rx_fifo_.empty() ? 0 : 1;
    case kRegDebugLow: return debug_low_;
    case kRegDebugHigh: return debug_high_;
    case kRegCycle: return uint32_t(core_.cycles());
    case kRegCoreId: return config_.id;
    case kRegIrqStatus: return irq_status_ & irq_mask_;
    case kRegBcastAddr: return bcast_notify_.empty() ? 0 : bcast_notify_.front().first;
    case kRegBcastData: return bcast_notify_.empty() ? 0 : bcast_notify_.front().second;
    case kRegBcastReady: return bcast_notify_.empty() ? 0 : 1;
    case kRegLbSlotResp:
        if (slot_resp_ && now() >= slot_resp_ready_cycle_) {
            uint32_t v = *slot_resp_;
            slot_resp_.reset();
            return v;
        }
        return 0;
    default: return 0;
    }
}

void
Rpu::io_write(uint32_t offset, uint32_t value) {
    switch (offset & ~3u) {
    case kRegRecvRelease:
        if (!rx_fifo_.empty()) rx_fifo_.pop();
        break;
    case kRegSendLow:
        send_low_latch_ = value;
        break;
    case kRegSendDest:
        send_dest_latch_ = uint16_t(value);
        break;
    case kRegTimerCmp:
        timer_cmp_ = value;
        irq_status_ &= ~kIrqTimer;
        break;
    case kRegDebugLow: debug_low_ = value; break;
    case kRegDebugHigh: debug_high_ = value; break;
    case kRegIrqMask: irq_mask_ = value; break;
    case kRegIrqAck: irq_status_ &= ~value; break;
    case kRegSlotCount: staged_slots_.count = value; break;
    case kRegSlotBase: staged_slots_.base = value; break;
    case kRegSlotSize: staged_slots_.size = value; break;
    case kRegHdrBase: staged_slots_.hdr_base = value; break;
    case kRegHdrSize: staged_slots_.hdr_size = value; break;
    case kRegSlotCommit:
        slots_ = staged_slots_;
        if (slots_.count > 250) sim::fatal("slot count exceeds descriptor tag range");
        if (slot_config_cb_) slot_config_cb_(config_.id, slots_);
        break;
    case kRegBcastPop:
        if (!bcast_notify_.empty()) bcast_notify_.pop();
        break;
    case kRegLbSlotReq:
        if (slot_req_) {
            // The LB answers via slot_response() at its commit; the reply
            // register only unlocks after the control-channel round trip
            // (paper Figure 4b), long after the answer has landed.
            slot_req_(config_.id, uint8_t(value));
            slot_resp_ready_cycle_ = uint32_t(now()) + 8;
        }
        break;
    default:
        break;
    }
}

// --- bus ---------------------------------------------------------------------

rv::Bus::Access
Rpu::RpuBus::load(uint32_t addr, uint32_t size) {
    Access a;
    Rpu& r = rpu_;
    if (addr + size <= kImemSize) {
        uint32_t word = r.imem_[addr >> 2];
        a.value = word >> (8 * (addr & 3));
        a.cycles = mem::kBramLoadCycles;
    } else if (addr >= kDmemBase && addr + size <= kDmemBase + kDmemSize) {
        uint32_t off = addr - kDmemBase;
        a.value = size == 1 ? r.dmem_.read8(off)
                            : (size == 2 ? r.dmem_.read16(off) : r.dmem_.read32(off));
        a.cycles = mem::kBramLoadCycles;
    } else if (addr >= kPmemBase && addr + size <= kPmemBase + kPmemSize) {
        uint32_t off = addr - kPmemBase;
        a.value = size == 1 ? r.pmem_.read8(off)
                            : (size == 2 ? r.pmem_.read16(off) : r.pmem_.read32(off));
        a.cycles = mem::kUramLoadCycles;
    } else if (addr >= kAmemBase && addr + size <= kAmemBase + kAmemSize) {
        uint32_t off = addr - kAmemBase;
        a.value = size == 1 ? r.amem_.read8(off)
                            : (size == 2 ? r.amem_.read16(off) : r.amem_.read32(off));
        a.cycles = mem::kUramLoadCycles;
    } else if (addr >= kIoBase && addr + size <= kIoBase + kIoSize) {
        uint32_t word = r.io_read(addr - kIoBase);
        a.value = word >> (8 * (addr & 3));
        a.cycles = mem::kMmioLoadCycles;
    } else if (addr >= kIoExtBase && addr + size <= kIoExtBase + kIoExtSize) {
        uint32_t word = 0;
        if (r.accel_) {
            AccelContext ctx{r.pmem_, r.amem_, r.stats_, r.now()};
            r.accel_->mmio_read((addr - kIoExtBase) & ~3u, word, ctx);
        }
        a.value = word >> (8 * (addr & 3));
        a.cycles = mem::kMmioLoadCycles;
    } else if (addr >= kBcastBase && addr + size <= kBcastBase + kBcastSize) {
        uint32_t off = addr - kBcastBase;
        uint32_t word;
        std::memcpy(&word, &r.bcast_mem_[off & ~3u], 4);
        a.value = word >> (8 * (addr & 3));
        a.cycles = mem::kBramLoadCycles;
    } else {
        a.fault = true;
    }
    return a;
}

rv::Bus::Access
Rpu::RpuBus::store(uint32_t addr, uint32_t size, uint32_t value) {
    Access a;
    Rpu& r = rpu_;
    if (addr >= kDmemBase && addr + size <= kDmemBase + kDmemSize) {
        uint32_t off = addr - kDmemBase;
        if (size == 1) {
            r.dmem_.write8(off, uint8_t(value));
        } else if (size == 2) {
            r.dmem_.write16(off, uint16_t(value));
        } else {
            r.dmem_.write32(off, value);
        }
        a.cycles = mem::kBramStoreCycles;
    } else if (addr >= kPmemBase && addr + size <= kPmemBase + kPmemSize) {
        uint32_t off = addr - kPmemBase;
        if (size == 1) {
            r.pmem_.write8(off, uint8_t(value));
        } else if (size == 2) {
            r.pmem_.write16(off, uint16_t(value));
        } else {
            r.pmem_.write32(off, value);
        }
        a.cycles = mem::kUramStoreCycles;
    } else if (addr >= kAmemBase && addr + size <= kAmemBase + kAmemSize) {
        uint32_t off = addr - kAmemBase;
        if (size == 1) {
            r.amem_.write8(off, uint8_t(value));
        } else if (size == 2) {
            r.amem_.write16(off, uint16_t(value));
        } else {
            r.amem_.write32(off, value);
        }
        a.cycles = mem::kUramStoreCycles;
    } else if (addr >= kIoBase && addr + size <= kIoBase + kIoSize) {
        uint32_t offset = addr - kIoBase;
        if ((offset & ~3u) == kRegSendHigh) {
            // Enqueue the send command; block the core when the command
            // FIFO is full.
            Rpu::TxCmd cmd;
            cmd.desc = Desc::unpack(r.send_low_latch_, value);
            cmd.dest = r.send_dest_latch_;
            if (!r.tx_fifo_.push(cmd)) {
                a.retry = true;
                return a;
            }
        } else {
            r.io_write(offset, value);
        }
        a.cycles = mem::kMmioStoreCycles;
    } else if (addr >= kIoExtBase && addr + size <= kIoExtBase + kIoExtSize) {
        if (r.accel_) {
            AccelContext ctx{r.pmem_, r.amem_, r.stats_, r.now()};
            r.accel_->mmio_write((addr - kIoExtBase) & ~3u, value, ctx);
        }
        a.cycles = mem::kMmioStoreCycles;
    } else if (addr >= kBcastBase && addr + size <= kBcastBase + kBcastSize) {
        // Semi-coherent broadcast region: the write becomes a message; it
        // blocks while the per-RPU message FIFO is full (paper Sec 6.3).
        if (!r.bcast_send_ || !r.bcast_send_(r.config_.id, addr - kBcastBase, value)) {
            a.retry = true;
            return a;
        }
        a.cycles = mem::kMmioStoreCycles;
    } else {
        a.fault = true;
    }
    return a;
}

uint32_t
Rpu::RpuBus::fetch(uint32_t addr) {
    if (addr + 4 <= kImemSize) return rpu_.imem_[addr >> 2];
    return 0x00100073;  // ebreak: running off the image halts the core
}

bool
Rpu::RpuBus::watch_safe_read(uint32_t addr) const {
    if (addr >= kIoBase && addr < kIoBase + kIoSize) {
        switch ((addr - kIoBase) & ~3u) {
        case kRegCycle:       // time keeps advancing while "idle"
        case kRegLbSlotResp:  // reading consumes the response
            return false;
        default:
            return true;  // frozen while the RPU's inputs are frozen
        }
    }
    // Accelerator MMIO may mutate on read. The watcher is only armed with
    // no accelerator attached, but classify it anyway.
    if (addr >= kIoExtBase && addr < kIoExtBase + kIoExtSize) return false;
    return true;
}

// --- resources ----------------------------------------------------------------

sim::ResourceFootprint
Rpu::base_resources() const {
    // Memory-subsystem footprint from actual memory provisioning.
    uint64_t bram = (kImemSize + kDmemSize) / 4096;
    uint64_t uram = kPmemSize / 32768;
    unsigned streams = accel_ ? accel_->stream_ports() : 0;
    sim::ResourceFootprint mem_fp{
        .luts = 400 + 55 * bram + 28 * uram + 332ull * streams,
        .regs = 450 + 12 * bram + 6 * uram + 18ull * streams,
        .bram = bram,
        .uram = uram,
    };
    sim::ResourceFootprint core_fp{.luts = 1976 + (accel_ ? 72u : 0u), .regs = 1050};
    sim::ResourceFootprint border{.regs = 1808};  // PR-region boundary registers
    sim::ResourceFootprint fp = core_fp + mem_fp + border;
    if (accel_) fp += accel_manager_footprint(accel_->queue_count());
    return fp;
}

sim::ResourceFootprint
Rpu::resources() const {
    sim::ResourceFootprint fp = base_resources();
    if (accel_) fp += accel_->resources();
    return fp;
}

}  // namespace rosebud::rpu
