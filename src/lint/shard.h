/// \file
/// Static shard-cut certifier over the elaboration netlist.
///
/// ROADMAP item 1 (multi-board cluster simulation behind a time-decoupled
/// kernel) needs cut edges with *provably* nonzero forwarding latency: a
/// conservative parallel scheduler may only advance a shard's local clock
/// by the minimum latency of its incoming cut edges (the FireSim
/// latency-bounded-channel argument). This pass derives those bounds from
/// the netlist the primitives and components already declare:
///
///  * a registered FIFO net forwards with latency >= 1 (a push at cycle T
///    is first poppable at T+1 — the two-phase commit plus the dynamic
///    race detector enforce exactly this);
///  * a `NetRecord::kCreditRegistered` feedback path returns credit with
///    latency >= 1 (admission snapshots committed+staged occupancy and
///    cannot observe same-cycle pops);
///  * everything else is conservatively combinational (latency 0): Reg
///    observations are polled with no message stream to carry a bound,
///    kLink nets are direct-call boundaries where the producer runs the
///    consumer inside its own tick, and skid-buffer credit observes
///    same-cycle pops.
///
/// Components joined by any zero-latency edge must land in the same shard
/// ("atom"); `certify_partition` condenses the graph, detects directed
/// zero-latency cycles (which make every cut through them unsound in both
/// directions), balances the atoms over the requested shard count, and
/// emits a `ShardPlan` whose every cut edge carries lookahead >= 1 *by
/// construction* — or a proven "no safe cut" verdict naming the limiting
/// zero-latency paths. The plan is validated dynamically by
/// obs::ShardLatencyRecorder (obs/shardcheck.h), which faults if any
/// instrumented run ever observes a cross-cut message undercutting its
/// certified bound.

#ifndef ROSEBUD_LINT_SHARD_H
#define ROSEBUD_LINT_SHARD_H

#include <string>
#include <vector>

#include "sim/kernel.h"

namespace rosebud::lint {

/// One directed inter-component influence edge with its provable minimum
/// latency in cycles (how long before an action by `from` can first be
/// observed by `to` through `net`).
struct LatencyEdge {
    enum Kind : uint8_t {
        kData,    ///< writer -> reader forwarding
        kCredit,  ///< reader -> writer credit/backpressure return
    };

    std::string from;
    std::string to;
    std::string net;
    Kind kind = kData;
    unsigned latency = 0;  ///< provable minimum (0 = combinational)
    std::string reason;    ///< why this latency is provable
};

/// A directed cycle made entirely of zero-latency edges: any shard cut
/// through it is unsound in both directions (neither side can lend the
/// other lookahead).
struct ZeroCycle {
    std::vector<LatencyEdge> edges;  ///< edges[i].to == edges[i+1].from, closing
    std::string path;                ///< rendered "a -[net kind]-> b -[...]-> a"
};

/// One latency edge crossing a shard boundary in a certified plan.
struct ShardCut {
    LatencyEdge edge;
    unsigned from_shard = 0;
    unsigned to_shard = 0;
};

/// A certified partition of the netlist's components into shards.
struct ShardPlan {
    unsigned requested = 0;  ///< shard count asked for
    bool sound = false;      ///< true: every cut edge has lookahead >= 1
    std::string verdict;     ///< "sound" or the no-safe-cut explanation

    /// Component names per shard (sorted; size == requested when sound).
    std::vector<std::vector<std::string>> shards;
    /// Every latency edge crossing a shard boundary.
    std::vector<ShardCut> cuts;
    /// Minimum lookahead over all cuts (0 when unsound or no cut edges).
    unsigned min_lookahead = 0;

    /// Zero-latency-condensed component groups found before partitioning.
    size_t atom_count = 0;
    /// Zero-latency edges between *distinct* components, deduplicated by
    /// net (one representative edge per net — a fabric link that fans out
    /// to 16 RPUs is one registerization decision, not 16): the exact
    /// call boundaries the kernel refactor must registerize to unlock
    /// finer cuts. blocker_multiplicity[i] counts the writer/reader pairs
    /// collapsed into blockers[i].
    std::vector<LatencyEdge> blockers;
    std::vector<unsigned> blocker_multiplicity;
    /// For a no-safe-cut verdict: the cheapest set of blocker net
    /// *families* (digit runs collapsed — "lb.resp.r#" is one RTL
    /// definition) whose registerization unlocks the requested shard
    /// count, found by backward elimination (start with every blocker
    /// family registered, re-admit any family whose return keeps the
    /// request satisfiable — robust against zero-latency cycles that
    /// stall forward-greedy), rendered "famA + famB"; unlocked_atoms is
    /// the resulting group count. Empty / 0 when the plan is sound or
    /// even registering every family cannot satisfy the request.
    std::string cheapest_registerization;
    size_t unlocked_atoms = 0;
    /// Directed zero-latency cycles (diagnostics; always inside atoms).
    std::vector<ZeroCycle> zero_cycles;
    /// What the certificate rests on — each obligation is discharged
    /// statically by construction or dynamically by the obs cross-check.
    std::vector<std::string> obligations;
};

/// Build the directed inter-component latency graph from the declared
/// nets and ports. Self-edges (writer == reader) are dropped; nets whose
/// writer or reader side is external contribute no edge on that side.
std::vector<LatencyEdge> latency_graph(const sim::Kernel& kernel);

/// Directed cycles in the zero-latency subgraph (one representative cycle
/// per strongly connected component that contains one).
std::vector<ZeroCycle> zero_latency_cycles(const std::vector<LatencyEdge>& edges);

/// Certify a partition of the kernel's components into `shards` shards:
/// condense zero-latency-connected components into atoms, reject (with the
/// limiting paths named) when fewer atoms than shards exist, otherwise
/// weight-balance the atoms greedily. Every cut edge of a sound plan has
/// latency >= 1 by construction.
ShardPlan certify_partition(const sim::Kernel& kernel, unsigned shards);

/// Internal-consistency check used by tests and the config-fuzzer oracle:
/// a sound plan must have exactly `requested` non-empty disjoint shards
/// covering every netlist component, strictly positive lookahead on every
/// cut edge, and a min_lookahead matching the cut list; an unsound plan
/// must carry a non-empty explanatory verdict. Returns true when
/// consistent; otherwise fills `why`.
bool validate_plan(const sim::Kernel& kernel, const ShardPlan& plan,
                   std::string* why = nullptr);

/// Human-readable multi-line report of a plan.
std::string plan_report(const ShardPlan& plan);

/// Machine-readable JSON rendering of a plan (the CI artifact).
std::string plan_json(const ShardPlan& plan);

/// Annotated component-level DOT dump: one cluster per shard, cut edges
/// red with their lookahead bound, zero-latency blocker edges dashed
/// orange, zero-latency-cycle edges crimson.
std::string plan_dot(const sim::Kernel& kernel, const ShardPlan& plan);

}  // namespace rosebud::lint

#endif  // ROSEBUD_LINT_SHARD_H
