/// \file
/// Elaboration-time netlist linter.
///
/// Every Fifo/Reg primitive self-declares a net at construction, and each
/// hardware component declares its directed ports (writer/reader endpoints,
/// with the width and depth it *expects*) into the owning sim::Kernel. The
/// checks here run over that graph before cycle 0 — the moral equivalent of
/// an RTL lint pass over the Verilog this model stands in for:
///
///  * kUnknownNet     — a port references a net nobody declared
///  * kDangling       — a net with no ports at all
///  * kNeverWritten   — a net with readers but no writer (and not external)
///  * kNeverRead      — a net with writers but no reader (and not external)
///  * kMultiWriter    — >1 distinct writer component without kNetMultiWriter
///  * kMultiReader    — >1 distinct reader component without kNetMultiReader
///  * kWidthMismatch  — a port's declared width differs from its net's
///  * kPaperWidth     — a net's width/depth differs from the paper's bus
///                      table (512-bit main switch, 128-bit per-RPU links…)
///  * kZeroDepth      — a FIFO net with zero depth
///  * kCreditDepth    — a port's credit depth differs from the net's depth
///  * kResourceSum    — child ResourceFootprints do not sum into the parent
///  * kResourceFit    — a design does not fit its device
///  * kWakeEdge       — a read port on a non-external net names a component
///                      the kernel has not registered: quiescence wake
///                      edges (sim/kernel.h) are routed through exactly
///                      these ports, so a push could never wake a sleeping
///                      reader declared under the wrong name
///
/// See docs/LINT.md for how components register ports and how to read the
/// DOT dump.

#ifndef ROSEBUD_LINT_NETLIST_H
#define ROSEBUD_LINT_NETLIST_H

#include <string>
#include <vector>

#include "sim/kernel.h"
#include "sim/resources.h"

namespace rosebud::lint {

enum class Check : uint8_t {
    kUnknownNet,
    kDangling,
    kNeverWritten,
    kNeverRead,
    kMultiWriter,
    kMultiReader,
    kWidthMismatch,
    kPaperWidth,
    kZeroDepth,
    kCreditDepth,
    kResourceSum,
    kResourceFit,
    kWakeEdge,
};

/// Stable short name for a check, e.g. "never-read".
const char* check_name(Check c);

/// One finding. `subject` is the net / port / resource row it concerns.
struct Violation {
    Check check;
    std::string subject;
    std::string message;
};

/// Expected width (and optionally depth) for nets whose name matches
/// `prefix`…`suffix`. Widths come from the paper's datapath table; the nets
/// carry config-derived widths, so a config that drifts from the paper's
/// bus sizing fails the check.
struct WidthRule {
    std::string prefix;
    std::string suffix;
    unsigned width_bits = 0;
    size_t depth = 0;  ///< 0 = depth not constrained
};

/// The paper's bus-width table (Sections 4-5): 512-bit stage-1 switch and
/// MAC datapaths, 128-bit per-RPU links, 64-bit descriptors and broadcast
/// messages.
std::vector<WidthRule> paper_width_table();

/// Run all netlist checks over the kernel's declared nets and ports.
std::vector<Violation> check_netlist(const sim::Kernel& kernel,
                                     const std::vector<WidthRule>& rules);

/// One child row of a resource-sum check.
struct ResourceItem {
    std::string name;
    sim::ResourceFootprint fp;
    uint64_t count = 1;
};

/// Check that `children` (each times its count) sum exactly to `total`.
std::vector<Violation> check_resource_sum(const std::string& parent,
                                          const sim::ResourceFootprint& total,
                                          const std::vector<ResourceItem>& children);

/// Check that `total` fits within `device`.
std::vector<Violation> check_resource_fit(const std::string& name,
                                          const sim::ResourceFootprint& total,
                                          const sim::ResourceFootprint& device);

/// Look up a declared net by exact name (nullptr if absent). Shared by the
/// checks above and by the telemetry layer (obs/), which sizes waveform
/// signals from the declared depth of the net it is observing.
const sim::NetRecord* find_net(const sim::Kernel& kernel, const std::string& name);

/// Owning component of a dotted net name — the prefix before the first
/// '.', e.g. "fabric" for "fabric.voq.r0.s0" ("" stays ""). This is the
/// grouping rule the lint reports and the stall-attribution rollups share.
std::string component_of(const std::string& net_name);

/// Number of distinct static checks (the Check enum), reported in the
/// JSON netlist summary.
inline constexpr unsigned kCheckCount = 13;

/// Escape a name for use inside a double-quoted DOT ID or label: doubles
/// backslashes and escapes embedded quotes, so indexed/bracketed net names
/// survive `dot -Tcanon` and GTK-style viewers.
std::string dot_escape(const std::string& s);

/// Render the netlist as a GraphViz digraph: component boxes, net ellipses,
/// write edges component->net, read edges net->component.
std::string to_dot(const sim::Kernel& kernel);

/// Human-readable multi-line report ("" when no violations).
std::string report(const std::vector<Violation>& violations);

/// Machine-readable JSON of a lint run — the netlist summary (net/port/
/// component counts per kind, number of checks) plus every violation —
/// matching the `verify --json` convention.
std::string lint_json(const sim::Kernel& kernel,
                      const std::vector<Violation>& violations);

}  // namespace rosebud::lint

#endif  // ROSEBUD_LINT_NETLIST_H
