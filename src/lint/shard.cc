#include "lint/shard.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <sstream>

#include "lint/netlist.h"
#include "obs/json.h"

namespace rosebud::lint {

using sim::NetRecord;
using sim::PortRecord;

namespace {

const char*
edge_kind_name(LatencyEdge::Kind k) {
    return k == LatencyEdge::kData ? "data" : "credit";
}

/// Net-family name: digit runs collapsed to '#', so the 16 instances of
/// one RTL definition ("rpu0.link_in".."rpu15.link_in" -> "rpu#.link_in")
/// count as one registerization decision.
std::string
family_name(const std::string& net) {
    std::string out;
    bool in_digits = false;
    for (char c : net) {
        if (c >= '0' && c <= '9') {
            if (!in_digits) out += '#';
            in_digits = true;
        } else {
            out += c;
            in_digits = false;
        }
    }
    return out;
}

std::string
render_hop(const LatencyEdge& e) {
    return e.from + " -[" + e.net + " " + edge_kind_name(e.kind) + "]-> " + e.to;
}

/// Every component the partition must cover: port endpoints plus every
/// registered (ticking) component, including ones with no declared nets.
std::set<std::string>
component_set(const sim::Kernel& kernel) {
    std::set<std::string> nodes;
    for (const PortRecord& p : kernel.ports()) nodes.insert(p.component);
    for (const std::string& c : kernel.tick_order()) nodes.insert(c);
    return nodes;
}

struct UnionFind {
    std::map<std::string, std::string> parent;

    void add(const std::string& x) { parent.emplace(x, x); }
    const std::string& find(const std::string& x) {
        std::string* p = &parent.at(x);
        if (*p == x) return *p;
        const std::string& root = find(*p);
        *p = root;
        return parent.at(x);
    }
    void unite(const std::string& a, const std::string& b) {
        std::string ra = find(a), rb = find(b);
        // Deterministic: the lexicographically smaller name becomes root.
        if (ra == rb) return;
        if (rb < ra) std::swap(ra, rb);
        parent[rb] = ra;
    }
};

}  // namespace

std::vector<LatencyEdge>
latency_graph(const sim::Kernel& kernel) {
    std::map<std::string, const NetRecord*> by_name;
    for (const NetRecord& n : kernel.nets()) by_name[n.name] = &n;

    // Writer/reader component sets per net, ordered for determinism.
    // Unknown nets are the structural linter's finding, not ours.
    std::map<std::string, std::pair<std::set<std::string>, std::set<std::string>>> ends;
    for (const PortRecord& p : kernel.ports()) {
        if (!by_name.count(p.net)) continue;
        auto& e = ends[p.net];
        (p.dir == PortRecord::kWrite ? e.first : e.second).insert(p.component);
    }

    std::vector<LatencyEdge> out;
    for (const auto& [net, wr] : ends) {
        const NetRecord& n = *by_name.at(net);
        for (const std::string& w : wr.first) {
            for (const std::string& r : wr.second) {
                if (w == r) continue;  // intra-component traffic cannot cross a cut
                LatencyEdge d;
                d.from = w;
                d.to = r;
                d.net = net;
                d.kind = LatencyEdge::kData;
                switch (n.kind) {
                case NetRecord::kFifo:
                    d.latency = 1;
                    d.reason = "registered fifo: a push at cycle T is first "
                               "poppable at T+1";
                    break;
                case NetRecord::kReg:
                    d.latency = 0;
                    d.reason = "polled register: no message stream carries the "
                               "update across a cut";
                    break;
                case NetRecord::kLink:
                    d.latency = 0;
                    d.reason = "direct-call link: the producer runs the consumer "
                               "inside its own tick";
                    break;
                }
                out.push_back(std::move(d));

                // Credit/backpressure is a real reverse influence only on
                // FIFO nets whose writer observes reader-side occupancy.
                if (n.kind != NetRecord::kFifo || n.credit == NetRecord::kCreditNone)
                    continue;
                LatencyEdge c;
                c.from = r;
                c.to = w;
                c.net = net;
                c.kind = LatencyEdge::kCredit;
                if (n.credit == NetRecord::kCreditRegistered) {
                    c.latency = 1;
                    c.reason = "registered credit return: a pop at cycle T is "
                               "first visible to admission at T+1";
                } else {
                    c.latency = 0;
                    c.reason = "skid-buffer credit: admission observes "
                               "same-cycle pops";
                }
                out.push_back(std::move(c));
            }
        }
    }
    return out;
}

std::vector<ZeroCycle>
zero_latency_cycles(const std::vector<LatencyEdge>& edges) {
    // Adjacency over the zero-latency subgraph only.
    std::map<std::string, std::vector<const LatencyEdge*>> adj;
    std::set<std::string> nodes;
    for (const LatencyEdge& e : edges) {
        if (e.latency != 0) continue;
        adj[e.from].push_back(&e);
        nodes.insert(e.from);
        nodes.insert(e.to);
    }
    for (auto& [_, v] : adj) {
        std::sort(v.begin(), v.end(), [](const LatencyEdge* a, const LatencyEdge* b) {
            if (a->to != b->to) return a->to < b->to;
            if (a->net != b->net) return a->net < b->net;
            return a->kind < b->kind;
        });
    }

    // Tarjan SCC over the zero-latency subgraph.
    std::map<std::string, int> index, low;
    std::vector<std::string> stack;
    std::set<std::string> on_stack;
    std::vector<std::set<std::string>> sccs;
    int next = 0;
    std::function<void(const std::string&)> strongconnect = [&](const std::string& v) {
        index[v] = low[v] = next++;
        stack.push_back(v);
        on_stack.insert(v);
        for (const LatencyEdge* e : adj[v]) {
            if (!index.count(e->to)) {
                strongconnect(e->to);
                low[v] = std::min(low[v], low[e->to]);
            } else if (on_stack.count(e->to)) {
                low[v] = std::min(low[v], index[e->to]);
            }
        }
        if (low[v] == index[v]) {
            std::set<std::string> scc;
            for (;;) {
                std::string w = stack.back();
                stack.pop_back();
                on_stack.erase(w);
                scc.insert(w);
                if (w == v) break;
            }
            if (scc.size() > 1) sccs.push_back(std::move(scc));
        }
    };
    for (const std::string& v : nodes)
        if (!index.count(v)) strongconnect(v);

    // One representative cycle per cyclic SCC: BFS from the smallest
    // member back to itself, restricted to the SCC (shortest, so the
    // report names the tightest offending loop).
    std::vector<ZeroCycle> out;
    for (const auto& scc : sccs) {
        const std::string& rep = *scc.begin();
        std::map<std::string, const LatencyEdge*> via;  // node -> edge we arrived by
        std::deque<std::string> q{rep};
        const LatencyEdge* closing = nullptr;
        std::set<std::string> seen{rep};
        while (!q.empty() && !closing) {
            std::string u = q.front();
            q.pop_front();
            for (const LatencyEdge* e : adj[u]) {
                if (!scc.count(e->to)) continue;
                if (e->to == rep) {
                    closing = e;
                    break;
                }
                if (!seen.insert(e->to).second) continue;
                via[e->to] = e;
                q.push_back(e->to);
            }
        }
        if (!closing) continue;  // unreachable for a true SCC
        std::vector<const LatencyEdge*> chain{closing};
        for (std::string at = closing->from; at != rep; at = chain.back()->from)
            chain.push_back(via.at(at));
        std::reverse(chain.begin(), chain.end());

        ZeroCycle zc;
        std::ostringstream path;
        path << rep;
        for (const LatencyEdge* e : chain) {
            zc.edges.push_back(*e);
            path << " -[" << e->net << " " << edge_kind_name(e->kind) << "]-> "
                 << e->to;
        }
        zc.path = path.str();
        out.push_back(std::move(zc));
    }
    return out;
}

ShardPlan
certify_partition(const sim::Kernel& kernel, unsigned shards) {
    ShardPlan plan;
    plan.requested = shards;

    std::set<std::string> nodes = component_set(kernel);
    std::vector<LatencyEdge> edges = latency_graph(kernel);
    plan.zero_cycles = zero_latency_cycles(edges);

    // Dedupe blockers by net: every writer/reader pair of one
    // combinational net is fixed by the same registerization, so the
    // report names each net once with its collapsed pair count.
    size_t zero_edges = 0;
    {
        std::map<std::string, std::pair<LatencyEdge, unsigned>> by_net;
        for (const LatencyEdge& e : edges) {
            if (e.latency != 0) continue;
            ++zero_edges;
            auto it = by_net.emplace(e.net, std::make_pair(e, 0u)).first;
            it->second.second += 1;
        }
        for (auto& [net, rep] : by_net) {
            plan.blockers.push_back(rep.first);
            plan.blocker_multiplicity.push_back(rep.second);
        }
    }

    // Condense: any zero-latency edge (in either direction) pins its two
    // endpoints into the same shard, so contract them undirected.
    UnionFind uf;
    for (const std::string& n : nodes) uf.add(n);
    for (const LatencyEdge& e : edges)
        if (e.latency == 0) uf.unite(e.from, e.to);

    std::map<std::string, std::vector<std::string>> atoms;
    for (const std::string& n : nodes) atoms[uf.find(n)].push_back(n);
    plan.atom_count = atoms.size();

    if (shards == 0) {
        plan.verdict = "invalid request: a partition needs at least one shard";
        return plan;
    }
    if (atoms.size() < shards) {
        // Cheapest registerization: which set of net families, if their
        // zero-latency edges were registered (made latency >= 1), would
        // unlock enough independent groups? A family (digit runs
        // collapsed — one RTL definition, N instances) is the unit of
        // change a designer actually makes. Greedy forward selection
        // stalls on zero-latency cycles (no single family strictly
        // improves until the whole cycle is registered), so eliminate
        // backward instead: start with every family registered, then
        // re-admit (lexicographically, for determinism) any family whose
        // return keeps the request satisfiable. The survivors are a
        // minimal-by-inclusion registerization set.
        {
            std::set<std::string> chosen;
            for (const LatencyEdge& b : plan.blockers)
                chosen.insert(family_name(b.net));

            auto roots_with = [&](const std::set<std::string>& registered) {
                UnionFind trial;
                for (const std::string& n : nodes) trial.add(n);
                for (const LatencyEdge& e : edges) {
                    if (e.latency != 0) continue;
                    if (registered.count(family_name(e.net))) continue;
                    trial.unite(e.from, e.to);
                }
                std::set<std::string> roots;
                for (const std::string& n : nodes) roots.insert(trial.find(n));
                return roots.size();
            };

            if (roots_with(chosen) >= shards) {
                for (const std::string& fam :
                     std::set<std::string>(chosen)) {
                    std::set<std::string> without = chosen;
                    without.erase(fam);
                    if (roots_with(without) >= shards) chosen = std::move(without);
                }
                plan.unlocked_atoms = roots_with(chosen);
                for (const std::string& fam : chosen) {
                    if (!plan.cheapest_registerization.empty())
                        plan.cheapest_registerization += " + ";
                    plan.cheapest_registerization += fam;
                }
            }
        }

        std::ostringstream os;
        os << "no safe " << shards << "-way cut: the zero-latency condensation "
           << "leaves only " << atoms.size() << " independent component group(s) ("
           << plan.blockers.size() << " zero-latency net(s) spanning "
           << zero_edges << " edge(s) pin components together)";
        if (!plan.zero_cycles.empty()) {
            os << "; limiting zero-latency cycle: " << plan.zero_cycles.front().path;
        } else if (!plan.blockers.empty()) {
            const LatencyEdge& b = plan.blockers.front();
            os << "; e.g. " << render_hop(b) << " (" << b.reason << ")";
        }
        if (plan.unlocked_atoms >= shards) {
            os << "; cheapest registerization: " << plan.cheapest_registerization
               << " -> " << plan.unlocked_atoms << " independent group(s)";
        } else if (!plan.cheapest_registerization.empty()) {
            os << "; best registerization found: " << plan.cheapest_registerization
               << " -> only " << plan.unlocked_atoms << " group(s)";
        } else {
            os << "; no net-family registerization unlocks more groups";
        }
        plan.verdict = os.str();
        return plan;
    }

    // Greedy balance: heaviest atom first onto the lightest shard. With
    // atoms >= shards every shard receives at least one atom.
    std::vector<std::pair<size_t, std::string>> order;
    for (const auto& [root, members] : atoms) order.emplace_back(members.size(), root);
    std::sort(order.begin(), order.end(), [](const auto& a, const auto& b) {
        if (a.first != b.first) return a.first > b.first;
        return a.second < b.second;
    });

    plan.shards.assign(shards, {});
    std::vector<size_t> load(shards, 0);
    std::map<std::string, unsigned> shard_of;
    for (const auto& [weight, root] : order) {
        unsigned s = unsigned(std::min_element(load.begin(), load.end()) - load.begin());
        for (const std::string& m : atoms.at(root)) {
            plan.shards[s].push_back(m);
            shard_of[m] = s;
        }
        load[s] += weight;
    }
    for (auto& sh : plan.shards) std::sort(sh.begin(), sh.end());

    bool any = false;
    for (const LatencyEdge& e : edges) {
        unsigned fs = shard_of.at(e.from), ts = shard_of.at(e.to);
        if (fs == ts) continue;
        plan.cuts.push_back({e, fs, ts});
        plan.min_lookahead = any ? std::min(plan.min_lookahead, e.latency) : e.latency;
        any = true;
    }
    if (!any) plan.min_lookahead = 0;

    plan.sound = true;
    plan.verdict = "sound";
    for (const ShardCut& c : plan.cuts) {
        if (c.edge.latency == 0) {  // impossible by construction; never certify it
            plan.sound = false;
            plan.verdict = "internal error: zero-latency cut edge " + render_hop(c.edge);
        }
    }

    plan.obligations.push_back(
        "two-phase commit: a push into any cut fifo at cycle T must not be "
        "poppable before T+1 (enforced by the kernel commit phase and the "
        "dynamic race detector)");
    std::set<std::string> credit_nets;
    for (const ShardCut& c : plan.cuts)
        if (c.edge.kind == LatencyEdge::kCredit) credit_nets.insert(c.edge.net);
    for (const std::string& n : credit_nets) {
        plan.obligations.push_back(
            "registered credit on '" + n + "': admission must keep snapshotting "
            "committed+staged occupancy and never observe a same-cycle pop");
    }
    plan.obligations.push_back(
        "dynamic cross-check: obs::ShardLatencyRecorder must never observe a "
        "cross-cut message latency below the certified bound");
    plan.obligations.push_back(
        "re-certification: any declare_net/declare_port after this plan was "
        "issued invalidates it");
    return plan;
}

bool
validate_plan(const sim::Kernel& kernel, const ShardPlan& plan, std::string* why) {
    auto fail = [&](const std::string& msg) {
        if (why) *why = msg;
        return false;
    };
    if (!plan.sound) {
        if (plan.verdict.empty())
            return fail("unsound plan carries no explanatory verdict");
        return true;
    }
    if (plan.requested == 0) return fail("sound plan with zero requested shards");
    if (plan.shards.size() != plan.requested)
        return fail("sound plan has " + std::to_string(plan.shards.size()) +
                    " shards, requested " + std::to_string(plan.requested));

    std::set<std::string> assigned;
    for (const auto& sh : plan.shards) {
        if (sh.empty()) return fail("sound plan contains an empty shard");
        for (const std::string& c : sh)
            if (!assigned.insert(c).second)
                return fail("component '" + c + "' assigned to more than one shard");
    }
    for (const std::string& c : component_set(kernel))
        if (!assigned.count(c))
            return fail("component '" + c + "' is not assigned to any shard");

    unsigned min_la = 0;
    bool any = false;
    for (const ShardCut& c : plan.cuts) {
        if (c.edge.latency == 0)
            return fail("sound plan certifies zero-lookahead cut edge " +
                        render_hop(c.edge));
        if (c.from_shard == c.to_shard)
            return fail("cut edge " + render_hop(c.edge) + " does not cross shards");
        min_la = any ? std::min(min_la, c.edge.latency) : c.edge.latency;
        any = true;
    }
    if (plan.min_lookahead != (any ? min_la : 0))
        return fail("min_lookahead does not match the cut list");
    return true;
}

std::string
plan_report(const ShardPlan& plan) {
    std::ostringstream os;
    os << "shard plan (" << plan.requested << "-way): " << plan.verdict << "\n";
    os << "  atoms " << plan.atom_count << ", zero-latency blocker nets "
       << plan.blockers.size() << ", zero-latency cycles "
       << plan.zero_cycles.size() << "\n";
    // Blockers grouped by net family: one line per RTL definition, not
    // one per instance.
    {
        struct Group { std::string hop; unsigned nets = 0; unsigned pairs = 0; };
        std::map<std::string, Group> fams;
        for (size_t i = 0; i < plan.blockers.size(); ++i) {
            const LatencyEdge& b = plan.blockers[i];
            LatencyEdge rep = b;
            rep.from = family_name(b.from);
            rep.to = family_name(b.to);
            rep.net = family_name(b.net);
            Group& g = fams[rep.net + "\x01" + rep.from + "\x01" + rep.to +
                            char('0' + int(rep.kind))];
            if (g.nets == 0) g.hop = render_hop(rep) + " (" + b.reason + ")";
            g.nets += 1;
            g.pairs += i < plan.blocker_multiplicity.size()
                           ? plan.blocker_multiplicity[i]
                           : 1;
        }
        for (const auto& [key, g] : fams) {
            os << "  blocker: " << g.hop;
            if (g.nets > 1) os << " [x" << g.nets << " nets]";
            if (g.pairs > g.nets) os << " [" << g.pairs << " pairs]";
            os << "\n";
        }
    }
    if (!plan.cheapest_registerization.empty()) {
        os << "  cheapest registerization: " << plan.cheapest_registerization
           << " -> " << plan.unlocked_atoms << " independent group(s)\n";
    }
    for (size_t s = 0; s < plan.shards.size(); ++s) {
        os << "  shard " << s << " (" << plan.shards[s].size() << " components):";
        for (const std::string& c : plan.shards[s]) os << " " << c;
        os << "\n";
    }
    if (plan.sound) {
        os << "  cut edges " << plan.cuts.size() << ", min lookahead "
           << plan.min_lookahead << "\n";
        for (const ShardCut& c : plan.cuts) {
            os << "    [" << c.from_shard << "->" << c.to_shard << "] "
               << render_hop(c.edge) << " lookahead " << c.edge.latency << " ("
               << c.edge.reason << ")\n";
        }
    }
    for (const ZeroCycle& z : plan.zero_cycles)
        os << "  zero-latency cycle: " << z.path << "\n";
    for (const std::string& o : plan.obligations) os << "  obligation: " << o << "\n";
    return os.str();
}

std::string
plan_json(const ShardPlan& plan) {
    obs::JsonWriter w;
    w.begin_object();
    w.key("requested").value(uint64_t(plan.requested));
    w.key("sound").value(plan.sound);
    w.key("verdict").value(plan.verdict);
    w.key("atom_count").value(uint64_t(plan.atom_count));
    w.key("min_lookahead").value(uint64_t(plan.min_lookahead));
    w.key("shards").begin_array();
    for (const auto& sh : plan.shards) {
        w.begin_array();
        for (const std::string& c : sh) w.value(c);
        w.end_array();
    }
    w.end_array();
    auto edge = [&](const LatencyEdge& e) {
        w.key("from").value(e.from);
        w.key("to").value(e.to);
        w.key("net").value(e.net);
        w.key("kind").value(edge_kind_name(e.kind));
        w.key("lookahead").value(uint64_t(e.latency));
        w.key("reason").value(e.reason);
    };
    w.key("cuts").begin_array();
    for (const ShardCut& c : plan.cuts) {
        w.begin_object();
        edge(c.edge);
        w.key("from_shard").value(uint64_t(c.from_shard));
        w.key("to_shard").value(uint64_t(c.to_shard));
        w.end_object();
    }
    w.end_array();
    w.key("blockers").begin_array();
    for (size_t i = 0; i < plan.blockers.size(); ++i) {
        w.begin_object();
        edge(plan.blockers[i]);
        w.key("pairs").value(uint64_t(i < plan.blocker_multiplicity.size()
                                          ? plan.blocker_multiplicity[i]
                                          : 1));
        w.end_object();
    }
    w.end_array();
    w.key("cheapest_registerization").value(plan.cheapest_registerization);
    w.key("unlocked_atoms").value(uint64_t(plan.unlocked_atoms));
    w.key("zero_cycles").begin_array();
    for (const ZeroCycle& z : plan.zero_cycles) {
        w.begin_object();
        w.key("length").value(uint64_t(z.edges.size()));
        w.key("path").value(z.path);
        w.end_object();
    }
    w.end_array();
    w.key("obligations").begin_array();
    for (const std::string& o : plan.obligations) w.value(o);
    w.end_array();
    w.end_object();
    return w.str();
}

std::string
plan_dot(const sim::Kernel& kernel, const ShardPlan& plan) {
    std::ostringstream os;
    os << "digraph shard_plan {\n  rankdir=LR;\n"
       << "  node [fontname=\"monospace\", fontsize=10, shape=box];\n";

    std::map<std::string, unsigned> shard_of;
    for (size_t s = 0; s < plan.shards.size(); ++s)
        for (const std::string& c : plan.shards[s]) shard_of[c] = unsigned(s);

    std::set<std::string> nodes = component_set(kernel);
    if (plan.sound) {
        for (size_t s = 0; s < plan.shards.size(); ++s) {
            os << "  subgraph cluster_shard" << s << " {\n    label=\"shard " << s
               << "\";\n    style=filled;\n    fillcolor=\"#eef4fb\";\n";
            for (const std::string& c : plan.shards[s])
                os << "    \"" << dot_escape(c) << "\";\n";
            os << "  }\n";
        }
    } else {
        for (const std::string& c : nodes) os << "  \"" << dot_escape(c) << "\";\n";
    }

    // Edge categories: cycle members crimson, other zero-latency blockers
    // dashed orange, cut edges red with their bound, in-shard registered
    // edges gray.
    auto key = [](const LatencyEdge& e) {
        return e.from + "\x01" + e.to + "\x01" + e.net + "\x01" +
               char('0' + int(e.kind));
    };
    std::set<std::string> cycle_edges;
    for (const ZeroCycle& z : plan.zero_cycles)
        for (const LatencyEdge& e : z.edges) cycle_edges.insert(key(e));
    std::set<std::string> cut_edges;
    for (const ShardCut& c : plan.cuts) cut_edges.insert(key(c.edge));

    for (const LatencyEdge& e : latency_graph(kernel)) {
        os << "  \"" << dot_escape(e.from) << "\" -> \"" << dot_escape(e.to)
           << "\" [label=\"" << dot_escape(e.net) << "\\n"
           << edge_kind_name(e.kind) << " " << e.latency << "\"";
        if (cut_edges.count(key(e))) {
            os << ", color=red, penwidth=2, fontcolor=red";
        } else if (cycle_edges.count(key(e))) {
            os << ", color=crimson, penwidth=2, style=dashed, fontcolor=crimson";
        } else if (e.latency == 0) {
            os << ", color=orange, style=dashed, fontcolor=orange";
        } else {
            os << ", color=gray50, fontcolor=gray50";
        }
        os << "];\n";
    }
    os << "}\n";
    return os.str();
}

}  // namespace rosebud::lint
