#include "lint/netlist.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "obs/json.h"

namespace rosebud::lint {

using sim::NetRecord;
using sim::PortRecord;

const char*
check_name(Check c) {
    switch (c) {
        case Check::kUnknownNet: return "unknown-net";
        case Check::kDangling: return "dangling";
        case Check::kNeverWritten: return "never-written";
        case Check::kNeverRead: return "never-read";
        case Check::kMultiWriter: return "multi-writer";
        case Check::kMultiReader: return "multi-reader";
        case Check::kWidthMismatch: return "width-mismatch";
        case Check::kPaperWidth: return "paper-width";
        case Check::kZeroDepth: return "zero-depth";
        case Check::kCreditDepth: return "credit-depth";
        case Check::kResourceSum: return "resource-sum";
        case Check::kResourceFit: return "resource-fit";
        case Check::kWakeEdge: return "wake-edge";
    }
    return "?";
}

std::vector<WidthRule>
paper_width_table() {
    // Datapath widths from the paper: the stage-1 switch and MAC run a
    // 512-bit bus at 250 MHz (Section 5), each RPU hangs off a 128-bit
    // link (Section 4.1), and descriptors / broadcast messages are 64-bit
    // words (Section 4.3).
    return {
        {"fabric.voq.", "", 512, 0},
        {"fabric.mac_rx.", "", 512, 0},
        {"fabric.mac_tx.", "", 512, 0},
        {"fabric.host_q", "", 512, 0},
        {"fabric.host_out", "", 512, 0},
        {"fabric.loopback_q", "", 512, 0},
        {"fabric.egress.", "", 128, 0},
        {"rpu", ".link_in", 128, 1},
        {"rpu", ".rx_fifo", 64, 0},
        {"rpu", ".tx_fifo", 64, 0},
        {"rpu", ".bcast_notify", 64, 0},
        {"rpu", ".bcast_in", 64, 1},
        {"broadcast.tx", "", 64, 0},
        {"lb.ctrl.", "", 64, 1},
        {"lb.resp.", "", 64, 1},
    };
}

namespace {

bool
matches(const WidthRule& r, const std::string& name) {
    if (name.size() < r.prefix.size() + r.suffix.size()) return false;
    if (name.compare(0, r.prefix.size(), r.prefix) != 0) return false;
    return name.compare(name.size() - r.suffix.size(), r.suffix.size(),
                        r.suffix) == 0;
}

std::string
fp_diff(const sim::ResourceFootprint& a, const sim::ResourceFootprint& b) {
    std::ostringstream os;
    auto col = [&](const char* n, uint64_t x, uint64_t y) {
        if (x != y) os << " " << n << " " << x << " != " << y;
    };
    col("luts", a.luts, b.luts);
    col("regs", a.regs, b.regs);
    col("bram", a.bram, b.bram);
    col("uram", a.uram, b.uram);
    col("dsp", a.dsp, b.dsp);
    return os.str();
}

}  // namespace

std::vector<Violation>
check_netlist(const sim::Kernel& kernel, const std::vector<WidthRule>& rules) {
    std::vector<Violation> out;
    const auto& nets = kernel.nets();
    const auto& ports = kernel.ports();

    std::map<std::string, const NetRecord*> by_name;
    for (const NetRecord& n : nets) by_name[n.name] = &n;

    // Registered component names: the kernel builds its quiescence
    // wake-edge map by resolving each read port's component against this
    // set, silently skipping misses (legitimate for external readers).
    std::set<std::string> registered;
    for (const std::string& c : kernel.tick_order()) registered.insert(c);

    // Group ports by net; flag references to undeclared nets.
    std::map<std::string, std::vector<const PortRecord*>> net_ports;
    for (const PortRecord& p : ports) {
        if (!by_name.count(p.net)) {
            out.push_back({Check::kUnknownNet, p.net,
                           "port '" + p.component + "' references undeclared net '" +
                               p.net + "'"});
            continue;
        }
        net_ports[p.net].push_back(&p);
    }

    for (const NetRecord& n : nets) {
        const auto& nps = net_ports[n.name];

        if (nps.empty()) {
            out.push_back({Check::kDangling, n.name,
                           "net '" + n.name + "' has no ports"});
            continue;
        }

        std::set<std::string> writers, readers;
        for (const PortRecord* p : nps) {
            (p->dir == PortRecord::kWrite ? writers : readers)
                .insert(p->component);

            if (p->width_bits != 0 && n.width_bits != 0 &&
                p->width_bits != n.width_bits) {
                out.push_back({Check::kWidthMismatch, n.name,
                               "port '" + p->component + "' expects " +
                                   std::to_string(p->width_bits) + "b on net '" +
                                   n.name + "' (" +
                                   std::to_string(n.width_bits) + "b)"});
            }
            if (p->depth != 0 && n.depth != 0 && p->depth != n.depth) {
                out.push_back({Check::kCreditDepth, n.name,
                               "port '" + p->component + "' credits depth " +
                                   std::to_string(p->depth) + " on net '" +
                                   n.name + "' (depth " +
                                   std::to_string(n.depth) + ")"});
            }
            // Wake-edge validity: a FIFO net's reader must be a registered
            // component, or pushes cannot wake it from quiescence (the
            // kernel drops unresolvable read ports when building the wake
            // map). Scoped to kFifo nets — only Fifo::push routes wakes
            // through the map; kLink nets are callback boundaries whose
            // producers wake consumers by direct wake() calls, and Reg
            // readers poll. External drains are exempt via the same flag
            // that exempts them from never-read.
            if (n.kind == NetRecord::kFifo && !registered.empty() &&
                p->dir == PortRecord::kRead &&
                !(n.flags & sim::kNetExternalSink) &&
                !registered.count(p->component)) {
                out.push_back({Check::kWakeEdge, n.name,
                               "read port on '" + n.name + "' names '" +
                                   p->component +
                                   "', which is not a registered component: "
                                   "pushes cannot wake a sleeping reader"});
            }
        }

        if (writers.empty() && !(n.flags & sim::kNetExternalSource)) {
            out.push_back({Check::kNeverWritten, n.name,
                           "net '" + n.name + "' is read but never written"});
        }
        if (readers.empty() && !(n.flags & sim::kNetExternalSink)) {
            out.push_back({Check::kNeverRead, n.name,
                           "net '" + n.name + "' is written but never read"});
        }
        if (writers.size() > 1 && !(n.flags & sim::kNetMultiWriter)) {
            std::string who;
            for (const auto& w : writers) who += (who.empty() ? "" : ", ") + w;
            out.push_back({Check::kMultiWriter, n.name,
                           "net '" + n.name + "' has " +
                               std::to_string(writers.size()) +
                               " writers without multi-writer arbitration: " + who});
        }
        if (readers.size() > 1 && !(n.flags & sim::kNetMultiReader)) {
            std::string who;
            for (const auto& r : readers) who += (who.empty() ? "" : ", ") + r;
            out.push_back({Check::kMultiReader, n.name,
                           "net '" + n.name + "' has " +
                               std::to_string(readers.size()) +
                               " readers without fan-out declaration: " + who});
        }
        if (n.kind == NetRecord::kFifo && n.depth == 0) {
            out.push_back({Check::kZeroDepth, n.name,
                           "fifo net '" + n.name + "' has zero depth"});
        }

        for (const WidthRule& r : rules) {
            if (!matches(r, n.name)) continue;
            if (n.width_bits != r.width_bits) {
                out.push_back({Check::kPaperWidth, n.name,
                               "net '" + n.name + "' is " +
                                   std::to_string(n.width_bits) +
                                   "b; paper bus table requires " +
                                   std::to_string(r.width_bits) + "b"});
            }
            if (r.depth != 0 && n.depth != r.depth) {
                out.push_back({Check::kPaperWidth, n.name,
                               "net '" + n.name + "' has depth " +
                                   std::to_string(n.depth) +
                                   "; paper bus table requires " +
                                   std::to_string(r.depth)});
            }
            break;  // first matching rule wins
        }
    }

    return out;
}

std::vector<Violation>
check_resource_sum(const std::string& parent, const sim::ResourceFootprint& total,
                   const std::vector<ResourceItem>& children) {
    sim::ResourceFootprint sum;
    for (const ResourceItem& c : children) sum += c.fp * c.count;
    if (sum == total) return {};
    return {{Check::kResourceSum, parent,
             "children of '" + parent + "' do not sum to its footprint:" +
                 fp_diff(sum, total)}};
}

std::vector<Violation>
check_resource_fit(const std::string& name, const sim::ResourceFootprint& total,
                   const sim::ResourceFootprint& device) {
    std::ostringstream over;
    auto col = [&](const char* n, uint64_t used, uint64_t cap) {
        if (used > cap) over << " " << n << " " << used << " > " << cap;
    };
    col("luts", total.luts, device.luts);
    col("regs", total.regs, device.regs);
    col("bram", total.bram, device.bram);
    col("uram", total.uram, device.uram);
    col("dsp", total.dsp, device.dsp);
    if (over.str().empty()) return {};
    return {{Check::kResourceFit, name,
             "'" + name + "' exceeds device capacity:" + over.str()}};
}

const sim::NetRecord*
find_net(const sim::Kernel& kernel, const std::string& name) {
    for (const auto& n : kernel.nets()) {
        if (n.name == name) return &n;
    }
    return nullptr;
}

std::string
component_of(const std::string& net_name) {
    size_t dot = net_name.find('.');
    return dot == std::string::npos ? net_name : net_name.substr(0, dot);
}

std::string
dot_escape(const std::string& s) {
    // Inside a double-quoted DOT ID only '"' needs escaping, but a lone
    // backslash would start an unintended escape sequence and raw
    // newlines split the ID — double the former, encode the latter.
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': break;
        default: out += c;
        }
    }
    return out;
}

std::string
to_dot(const sim::Kernel& kernel) {
    std::ostringstream os;
    os << "digraph netlist {\n  rankdir=LR;\n"
       << "  node [fontname=\"monospace\", fontsize=10];\n";

    std::set<std::string> components;
    for (const PortRecord& p : kernel.ports()) components.insert(p.component);
    for (const std::string& c : components) {
        os << "  \"" << dot_escape(c)
           << "\" [shape=box, style=filled, fillcolor=lightblue];\n";
    }
    for (const NetRecord& n : kernel.nets()) {
        const char* kind = n.kind == NetRecord::kFifo   ? "fifo"
                           : n.kind == NetRecord::kReg  ? "reg"
                                                        : "link";
        os << "  \"" << dot_escape(n.name) << "\" [shape=ellipse, label=\""
           << dot_escape(n.name) << "\\n" << kind << " " << n.width_bits
           << "b x" << n.depth << "\"];\n";
    }
    for (const PortRecord& p : kernel.ports()) {
        if (p.dir == PortRecord::kWrite) {
            os << "  \"" << dot_escape(p.component) << "\" -> \""
               << dot_escape(p.net) << "\";\n";
        } else {
            os << "  \"" << dot_escape(p.net) << "\" -> \""
               << dot_escape(p.component) << "\";\n";
        }
    }
    os << "}\n";
    return os.str();
}

std::string
lint_json(const sim::Kernel& kernel, const std::vector<Violation>& violations) {
    size_t fifo = 0, reg = 0, link = 0;
    for (const NetRecord& n : kernel.nets()) {
        switch (n.kind) {
        case NetRecord::kFifo: ++fifo; break;
        case NetRecord::kReg: ++reg; break;
        case NetRecord::kLink: ++link; break;
        }
    }
    std::set<std::string> components;
    for (const PortRecord& p : kernel.ports()) components.insert(p.component);

    obs::JsonWriter w;
    w.begin_object();
    w.key("netlist").begin_object();
    w.key("nets").value(uint64_t(kernel.nets().size()));
    w.key("fifo_nets").value(uint64_t(fifo));
    w.key("reg_nets").value(uint64_t(reg));
    w.key("link_nets").value(uint64_t(link));
    w.key("ports").value(uint64_t(kernel.ports().size()));
    w.key("components").value(uint64_t(components.size()));
    w.key("checks").value(uint64_t(kCheckCount));
    w.end_object();
    w.key("violation_count").value(uint64_t(violations.size()));
    w.key("violations").begin_array();
    for (const Violation& v : violations) {
        w.begin_object();
        w.key("check").value(check_name(v.check));
        w.key("subject").value(v.subject);
        w.key("message").value(v.message);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    return w.str();
}

std::string
report(const std::vector<Violation>& violations) {
    std::ostringstream os;
    for (const Violation& v : violations) {
        os << "[lint:" << check_name(v.check) << "] " << v.message << "\n";
    }
    return os.str();
}

}  // namespace rosebud::lint
