/// \file
/// Per-packet lifecycle tracing — the simulator's answer to "FPGA
/// developers frequently debug their designs by looking at simulation
/// waveforms" (paper Section 2.3). Attach a PacketTracer to a System and
/// every packet's path through the middlebox is recorded as a timeline of
/// (cycle, stage) events: MAC arrival, LB assignment, link dispatch, DMA
/// completion, firmware send/drop, egress, wire/host departure.

#ifndef ROSEBUD_CORE_TRACER_H
#define ROSEBUD_CORE_TRACER_H

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "core/system.h"

namespace rosebud {

/// Retention policy: the tracer keeps at most `max_packets()` distinct
/// packet timelines (default kDefaultMaxPackets). When a new packet id
/// arrives at the cap, the *oldest* packet's whole timeline is evicted —
/// a ring over packet ids, so unbounded million-packet runs hold a bounded
/// window of the most recent lifecycles. Late events for an evicted id
/// start a fresh (partial) timeline; set_max_packets(0) disables eviction.
class PacketTracer {
 public:
    struct Event {
        sim::Cycle cycle = 0;
        std::string stage;
        uint32_t size = 0;
        uint8_t rpu = 0;
    };

    /// Default retention cap (distinct packet ids).
    static constexpr size_t kDefaultMaxPackets = 1u << 18;

    /// Start recording every packet event in `sys` (registered through
    /// System::add_packet_observer, so it composes with other observers
    /// such as the oracle scoreboard). The tracer must outlive the
    /// system's remaining simulation.
    void attach(System& sys);

    /// Events recorded for one packet id, in time order.
    const std::vector<Event>& timeline(uint64_t packet_id) const;

    /// Human-readable timeline for one packet.
    std::string format_timeline(uint64_t packet_id) const;

    /// All packet ids seen.
    std::vector<uint64_t> packet_ids() const;

    /// Cycles from first to last recorded event of a packet (0 if <2
    /// events).
    sim::Cycle transit_cycles(uint64_t packet_id) const;

    /// Total events recorded (including events of since-evicted packets).
    size_t event_count() const { return event_count_; }

    /// Packets whose timelines were evicted to honor the retention cap.
    size_t evicted_packets() const { return evicted_; }

    /// Change the retention cap (0 = unbounded). Takes effect on the next
    /// record; existing timelines are trimmed oldest-first if over the cap.
    void set_max_packets(size_t cap);
    size_t max_packets() const { return max_packets_; }

    void clear() {
        events_.clear();
        order_.clear();
        event_count_ = 0;
        evicted_ = 0;
    }

 private:
    void record(const char* stage, const net::Packet& pkt, sim::Cycle cycle);
    void evict_to(size_t cap);

    std::map<uint64_t, std::vector<Event>> events_;
    std::deque<uint64_t> order_;  ///< packet ids in first-seen order
    size_t max_packets_ = kDefaultMaxPackets;
    size_t event_count_ = 0;
    size_t evicted_ = 0;
    static const std::vector<Event> kEmpty;
};

}  // namespace rosebud

#endif  // ROSEBUD_CORE_TRACER_H
