#include "core/cluster.h"

#include <chrono>
#include <memory>

#include "core/system.h"
#include "firmware/programs.h"
#include "net/flow.h"
#include "net/tracegen.h"

namespace rosebud::exp {

namespace {

double
now_s() {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/// The flow subset board `board` owns out of the global port stream: a
/// fresh TraceGenerator with the *same* seed on every board, filtered by
/// the same pure flow-hash the front-end sharder routes by. Every board
/// (and its standalone reference run) therefore sees an identical,
/// deterministic sub-stream — the bit-for-bit equivalence hinges on this.
dist::TrafficSource::GenFn
board_subset_gen(const ClusterParams& p, unsigned board, unsigned port) {
    net::TrafficSpec spec;
    spec.packet_size = p.packet_size;
    spec.seed = p.seed * 2654435761u + port;
    auto gen = std::make_shared<net::TraceGenerator>(spec, nullptr, nullptr);
    const unsigned boards = p.boards;
    return [gen, board, boards]() -> net::PacketPtr {
        for (;;) {
            net::PacketPtr pkt = gen->next();
            if (!pkt) return pkt;
            if (net::packet_flow_hash(*pkt) % boards == board) return pkt;
        }
    };
}

struct BoardRun {
    uint64_t fingerprint = 0;
    uint64_t frames = 0;
    uint64_t bytes = 0;
    double gbps = 0;
    double host_s = 0;  ///< measured over warmup+window, install excluded
    bool decoupled_active = false;
};

/// One board's full run: identical construction and cycle schedule for
/// the serial reference and the cluster (decoupled) configuration, so the
/// final fingerprints are comparable bit for bit. Host time is measured
/// after the decoupled install (run_cycles(0) retries the latent request)
/// — certification cost is a one-time setup, not simulation throughput.
BoardRun
run_board(const ClusterParams& p, unsigned board, bool decoupled) {
    SystemConfig cfg;
    cfg.rpu_count = p.rpu_count;
    System sys(cfg);
    sys.kernel().set_idle_skip(true);
    for (unsigned i = 0; i < sys.rpu_count(); ++i)
        sys.rpu(i).core().set_predecode(true);
    if (decoupled && p.decouple_shards > 1) {
        sys.set_decouple_exec(p.exec);
        sys.set_decouple_shards(p.decouple_shards, p.shard_workers);
    }

    auto fw = fwlib::forwarder();
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();
    sys.run_cycles(500);
    for (unsigned port = 0; port < p.ports; ++port) {
        sys.add_source({.port = port, .line_gbps = 100.0, .load = p.load},
                       board_subset_gen(p, board, port));
    }
    sys.run_cycles(0);  // install the decoupled executor outside the timing

    double t0 = now_s();
    sys.run_cycles(p.warmup);
    for (unsigned port = 0; port < p.ports; ++port)
        sys.sink(port).start_window();
    sys.run_cycles(p.window);

    BoardRun out;
    out.host_s = now_s() - t0;
    out.decoupled_active = sys.decoupled_active();
    out.fingerprint = sys.state_fingerprint();
    for (unsigned port = 0; port < p.ports; ++port) {
        out.frames += sys.sink(port).window_frames();
        out.bytes += sys.sink(port).window_bytes();
    }
    out.gbps = double(out.bytes) * 8.0 / (double(p.window) / sim::kClockHz) / 1e9;
    return out;
}

}  // namespace

ClusterResult
run_cluster(const ClusterParams& p) {
    ClusterResult res;
    res.boards.resize(p.boards);

    // Front-end model: replay the aggregate per-port stream through the
    // ECMP sharder and one modeled link per board. Offered arrival times
    // follow the aggregate rate (N boards x load x line per port); the
    // links never back-pressure the boards — the model answers "would the
    // interconnect have been the bottleneck, and how much latency does it
    // add" for the report.
    {
        dist::EcmpSharder sharder(p.boards);
        std::vector<dist::InterBoardLink> links(p.boards,
                                                dist::InterBoardLink(p.link));
        const double agg_bpc =
            p.boards * p.load * 100.0 * 1e9 / 8.0 / sim::kClockHz;
        const sim::Cycle horizon = p.warmup + p.window;
        const uint64_t kFrameCap = 200'000;
        // The external ports share one timeline: each board's ingress
        // link carries that board's share of *every* port, so the port
        // streams are merged in offer-time order, not replayed one after
        // the other.
        std::vector<std::unique_ptr<net::TraceGenerator>> gens;
        std::vector<double> next_t(p.ports, 0.0);
        for (unsigned port = 0; port < p.ports; ++port) {
            net::TrafficSpec spec;
            spec.packet_size = p.packet_size;
            spec.seed = p.seed * 2654435761u + port;
            gens.push_back(
                std::make_unique<net::TraceGenerator>(spec, nullptr, nullptr));
        }
        while (sharder.total_frames() < kFrameCap) {
            unsigned port = 0;
            for (unsigned q = 1; q < p.ports; ++q)
                if (next_t[q] < next_t[port]) port = q;
            if (sim::Cycle(next_t[port]) >= horizon) break;
            net::PacketPtr pkt = gens[port]->next();
            if (!pkt) break;
            unsigned b = sharder.route(*pkt);
            links[b].transfer(sim::Cycle(next_t[port]), pkt->size());
            next_t[port] += double(pkt->wire_size()) / agg_bpc;
        }
        res.sharded_frames = sharder.total_frames();
        res.sharder_imbalance = sharder.imbalance();
        for (unsigned b = 0; b < p.boards; ++b) {
            res.boards[b].link_utilization = links[b].utilization(horizon);
            res.boards[b].link_worst_latency = links[b].worst_latency();
        }
    }

    // Serial tuned references: one standalone single-board run per flow
    // subset. These are both the speedup denominator inputs and the
    // ground-truth fingerprints the cluster pass must reproduce.
    for (unsigned b = 0; b < p.boards; ++b) {
        BoardRun ref = run_board(p, b, /*decoupled=*/false);
        res.boards[b].reference_fingerprint = ref.fingerprint;
        res.boards[b].reference_host_s = ref.host_s;
        res.serial_host_s += ref.host_s;
    }

    // Cluster pass: every board as an independent time-decoupled shard
    // group. Boards run back to back on one host thread; the summed
    // simulation time (construction and one-time certification excluded on
    // both sides, identically) is the honest single-host cluster cost.
    res.fingerprints_match = true;
    res.decoupled_active = p.decouple_shards <= 1;
    for (unsigned b = 0; b < p.boards; ++b) {
        BoardRun run = run_board(p, b, /*decoupled=*/true);
        ClusterBoardResult& out = res.boards[b];
        out.fingerprint = run.fingerprint;
        out.fingerprint_match = run.fingerprint == out.reference_fingerprint;
        out.frames = run.frames;
        out.bytes = run.bytes;
        out.gbps = run.gbps;
        out.host_s = run.host_s;
        res.aggregate_gbps += run.gbps;
        res.cluster_host_s += run.host_s;
        if (p.decouple_shards > 1 && run.decoupled_active)
            res.decoupled_active = true;
        if (!out.fingerprint_match) res.fingerprints_match = false;
    }
    res.speedup =
        res.cluster_host_s > 0 ? res.serial_host_s / res.cluster_host_s : 0;
    return res;
}

}  // namespace rosebud::exp
