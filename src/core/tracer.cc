#include "core/tracer.h"

#include <cstdio>

namespace rosebud {

const std::vector<PacketTracer::Event> PacketTracer::kEmpty;

void
PacketTracer::attach(System& sys) {
    sys.add_packet_observer(
        [this](const char* stage, const net::Packet& pkt, sim::Cycle now) {
            record(stage, pkt, now);
        });
}

void
PacketTracer::record(const char* stage, const net::Packet& pkt, sim::Cycle cycle) {
    Event e;
    e.cycle = cycle;
    e.stage = stage;
    e.size = pkt.size();
    e.rpu = pkt.dest_rpu;
    auto [it, inserted] = events_.try_emplace(pkt.id);
    if (inserted) {
        order_.push_back(pkt.id);
        if (max_packets_ != 0) evict_to(max_packets_);
    }
    it->second.push_back(std::move(e));
    ++event_count_;
}

void
PacketTracer::evict_to(size_t cap) {
    while (events_.size() > cap && !order_.empty()) {
        events_.erase(order_.front());
        order_.pop_front();
        ++evicted_;
    }
}

void
PacketTracer::set_max_packets(size_t cap) {
    max_packets_ = cap;
    if (cap != 0) evict_to(cap);
}

const std::vector<PacketTracer::Event>&
PacketTracer::timeline(uint64_t packet_id) const {
    auto it = events_.find(packet_id);
    return it == events_.end() ? kEmpty : it->second;
}

std::string
PacketTracer::format_timeline(uint64_t packet_id) const {
    const auto& tl = timeline(packet_id);
    if (tl.empty()) return "packet " + std::to_string(packet_id) + ": no events\n";
    std::string out = "packet " + std::to_string(packet_id) + ":\n";
    sim::Cycle start = tl.front().cycle;
    char buf[128];
    for (const auto& e : tl) {
        std::snprintf(buf, sizeof(buf), "  +%6llu cyc (%8.1f ns)  %-20s rpu=%u size=%u\n",
                      (unsigned long long)(e.cycle - start),
                      sim::cycles_to_ns(e.cycle - start), e.stage.c_str(), e.rpu, e.size);
        out += buf;
    }
    return out;
}

std::vector<uint64_t>
PacketTracer::packet_ids() const {
    std::vector<uint64_t> out;
    out.reserve(events_.size());
    for (const auto& [id, _] : events_) out.push_back(id);
    return out;
}

sim::Cycle
PacketTracer::transit_cycles(uint64_t packet_id) const {
    const auto& tl = timeline(packet_id);
    if (tl.size() < 2) return 0;
    return tl.back().cycle - tl.front().cycle;
}

}  // namespace rosebud
