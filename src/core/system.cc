#include "core/system.h"

#include "sim/log.h"

namespace rosebud {

sim::ResourceFootprint
pr_region_capacity(unsigned rpu_count) {
    // Floorplan constants of the two shipped layouts (Figures 5-6).
    if (rpu_count > 8) return {27839, 55920, 36, 32, 168};
    return {64161, 128880, 114, 64, 384};
}

sim::ResourceFootprint
lb_region_capacity(unsigned rpu_count) {
    if (rpu_count > 8) return {78384, 158400, 144, 48, 576};
    return {114016, 230400, 180, 96, 648};
}

System::System(const SystemConfig& config) : config_(config) {
    if (config_.rpu_count == 0 || config_.rpu_count > 32 || config_.rpu_count % 4 != 0) {
        sim::fatal("System: rpu_count must be a positive multiple of 4 (<= 32)");
    }

    // RPUs first: registration order is tick order, and the per-RPU link
    // serialization must advance before the fabric hands over new packets.
    for (unsigned i = 0; i < config_.rpu_count; ++i) {
        rpu::Rpu::Config rc = config_.rpu_template;
        rc.id = uint8_t(i);
        rpus_.push_back(std::make_unique<rpu::Rpu>(kernel_, stats_, rc));
    }

    lb::LoadBalancer::Config lbc;
    lbc.rpu_count = config_.rpu_count;
    lbc.policy = config_.lb_policy;
    lbc.reassembler = config_.hw_reassembler;
    lbc.custom_steer = config_.lb_custom_steer;
    lb_ = std::make_unique<lb::LoadBalancer>(stats_, lbc);

    msg::BroadcastNetwork::Config bc = config_.broadcast;
    bc.rpu_count = config_.rpu_count;
    broadcast_ = std::make_unique<msg::BroadcastNetwork>(kernel_, stats_, bc);

    dist::FabricConfig fc = config_.fabric;
    fc.rpu_count = config_.rpu_count;
    std::vector<rpu::Rpu*> raw;
    for (auto& r : rpus_) raw.push_back(r.get());
    fabric_ = std::make_unique<dist::Fabric>(kernel_, stats_, fc, *lb_, raw);

    host_ = std::make_unique<host::HostContext>(kernel_, stats_, *lb_, *fabric_, raw);
    host_->set_firmware_check(config_.firmware_check);

    // Wire the control and data channels.
    for (unsigned i = 0; i < config_.rpu_count; ++i) {
        rpu::Rpu* r = raw[i];
        r->set_egress_handler(
            [this, i](net::PacketPtr pkt) { return fabric_->rpu_egress(uint8_t(i), pkt); });
        r->set_slot_free_handler(
            [this](uint8_t rpu, uint8_t slot) { lb_->on_slot_free(rpu, slot); });
        r->set_slot_config_handler([this](uint8_t rpu, const rpu::SlotConfig& cfg) {
            lb_->on_slot_config(rpu, cfg);
        });
        r->set_slot_request_handler(
            [this](uint8_t dst) { return lb_->request_slot(dst); });
        r->set_broadcast_sender([this](uint8_t rpu, uint32_t off, uint32_t val) {
            return broadcast_->try_send(rpu, off, val);
        });
        broadcast_->set_deliver(
            i, [r](uint32_t off, uint32_t val) { r->broadcast_deliver(off, val); });
    }

    for (unsigned port = 0; port < 2; ++port) {
        sinks_.push_back(std::make_unique<dist::TrafficSink>(
            kernel_, stats_, "sink.port" + std::to_string(port)));
        dist::TrafficSink* sink = sinks_.back().get();
        fabric_->set_mac_tx_sink(port,
                                 [sink](net::PacketPtr pkt) { sink->deliver(pkt); });
    }
}

System::~System() = default;

void
System::attach_accelerators(
    const std::function<std::unique_ptr<rpu::Accelerator>()>& factory) {
    for (auto& r : rpus_) r->attach_accelerator(factory());
}

dist::TrafficSource&
System::add_source(const dist::TrafficSource::Config& cfg, dist::TrafficSource::GenFn gen) {
    sources_.push_back(std::make_unique<dist::TrafficSource>(kernel_, stats_, cfg, *fabric_,
                                                             std::move(gen)));
    return *sources_.back();
}

uint64_t
System::add_packet_observer(PacketObserver fn) {
    if (!observer_hooks_installed_) {
        auto hook = [this](const char* stage, const net::Packet& pkt) {
            dispatch_packet_event(stage, pkt);
        };
        fabric_->set_trace(hook);
        for (auto& r : rpus_) r->set_trace(hook);
        observer_hooks_installed_ = true;
    }
    // Compact slots freed by remove_packet_observer (never during a
    // dispatch, so iteration in dispatch_packet_event stays valid).
    std::erase_if(observers_, [](const Observer& o) { return !o.fn; });
    uint64_t handle = next_observer_handle_++;
    observers_.push_back({handle, std::move(fn)});
    return handle;
}

void
System::remove_packet_observer(uint64_t handle) {
    // Null the slot instead of erasing so removal from inside a dispatch
    // does not invalidate the iteration.
    for (auto& o : observers_) {
        if (o.handle == handle) o.fn = nullptr;
    }
}

void
System::dispatch_packet_event(const char* stage, const net::Packet& pkt) {
    sim::Cycle now = kernel_.now();
    for (size_t i = 0; i < observers_.size(); ++i) {
        if (observers_[i].fn) observers_[i].fn(stage, pkt, now);
    }
}

std::vector<System::ResourceRow>
System::resource_report() const {
    std::vector<ResourceRow> rows;
    unsigned n = config_.rpu_count;

    sim::ResourceFootprint rpu_fp = rpus_.front()->base_resources();
    rows.push_back({"Single RPU", rpu_fp});
    rows.push_back({"Remaining (PR)", pr_region_capacity(n).saturating_sub(rpu_fp)});

    sim::ResourceFootprint lb_fp = lb_->resources();
    rows.push_back({"LB", lb_fp});
    rows.push_back({"Remaining", lb_region_capacity(n).saturating_sub(lb_fp)});

    sim::ResourceFootprint ic = fabric_->interconnect_resources();
    rows.push_back({"Single Interconnect", ic});

    sim::ResourceFootprint cmac{6397, 14849, 0, 18, 0};
    sim::ResourceFootprint pcie{41526, 63742, 110, 32, 0};
    rows.push_back({"CMAC", cmac});
    rows.push_back({"PCIe", pcie});

    sim::ResourceFootprint sw = fabric_->switching_resources();
    rows.push_back({"Switching", sw});

    sim::ResourceFootprint total =
        rpu_fp * n + lb_fp + ic * n + cmac + pcie + sw;
    rows.push_back({"Complete design", total});
    rows.push_back({"VU9P device", sim::kXcvu9p});
    return rows;
}

}  // namespace rosebud
