#include "core/system.h"

#include <cstring>
#include <unordered_map>

#include "sim/log.h"
#include "sim/shard.h"

namespace rosebud {

sim::ResourceFootprint
pr_region_capacity(unsigned rpu_count) {
    // Floorplan constants of the two shipped layouts (Figures 5-6).
    if (rpu_count > 8) return {27839, 55920, 36, 32, 168};
    return {64161, 128880, 114, 64, 384};
}

sim::ResourceFootprint
lb_region_capacity(unsigned rpu_count) {
    if (rpu_count > 8) return {78384, 158400, 144, 48, 576};
    return {114016, 230400, 180, 96, 648};
}

System::System(const SystemConfig& config) : config_(config) {
    if (config_.rpu_count == 0 || config_.rpu_count > 32 || config_.rpu_count % 4 != 0) {
        sim::fatal("System: rpu_count must be a positive multiple of 4 (<= 32)");
    }

    // RPUs first, then broadcast/fabric/sources: a deterministic default
    // tick order. Results must not depend on it — every cross-component
    // exchange goes through staged primitives, the race detector faults
    // same-cycle stage/read overlaps, and shuffle_tick_order() + the
    // fingerprint tests enforce bit-identical runs under any permutation.
    for (unsigned i = 0; i < config_.rpu_count; ++i) {
        rpu::Rpu::Config rc = config_.rpu_template;
        rc.id = uint8_t(i);
        rpus_.push_back(std::make_unique<rpu::Rpu>(kernel_, stats_, rc));
    }

    lb::LoadBalancer::Config lbc;
    lbc.rpu_count = config_.rpu_count;
    lbc.policy = config_.lb_policy;
    lbc.reassembler = config_.hw_reassembler;
    lbc.custom_steer = config_.lb_custom_steer;
    lb_ = std::make_unique<lb::LoadBalancer>(stats_, lbc);
    lb_->attach(kernel_);

    msg::BroadcastNetwork::Config bc = config_.broadcast;
    bc.rpu_count = config_.rpu_count;
    broadcast_ = std::make_unique<msg::BroadcastNetwork>(kernel_, stats_, bc);

    dist::FabricConfig fc = config_.fabric;
    fc.rpu_count = config_.rpu_count;
    std::vector<rpu::Rpu*> raw;
    for (auto& r : rpus_) raw.push_back(r.get());
    fabric_ = std::make_unique<dist::Fabric>(kernel_, stats_, fc, *lb_, raw);

    host_ = std::make_unique<host::HostContext>(kernel_, stats_, *lb_, *fabric_, raw);
    host_->set_firmware_check(config_.firmware_check);
    host_->set_wcet_check(config_.wcet_check);
    host_->set_wcet_budget_cycles(config_.wcet_budget_cycles);

    // Wire the control and data channels.
    for (unsigned i = 0; i < config_.rpu_count; ++i) {
        rpu::Rpu* r = raw[i];
        r->set_egress_handler(
            [this, i](net::PacketPtr pkt) { return fabric_->rpu_egress(uint8_t(i), pkt); });
        r->set_slot_free_handler(
            [this](uint8_t rpu, uint8_t slot) { lb_->on_slot_free(rpu, slot); });
        r->set_slot_config_handler([this](uint8_t rpu, const rpu::SlotConfig& cfg) {
            lb_->on_slot_config(rpu, cfg);
        });
        r->set_slot_request_handler([this](uint8_t requester, uint8_t dst) {
            lb_->request_slot_routed(requester, dst);
        });
        r->set_broadcast_sender([this](uint8_t rpu, uint32_t off, uint32_t val) {
            return broadcast_->try_send(rpu, off, val);
        });
        broadcast_->set_deliver(
            i, [r](uint32_t off, uint32_t val) { r->broadcast_deliver(off, val); });

        // System-level boundary ports: which component drives which net is
        // only known here, at wiring time.
        std::string rn = r->name();
        kernel_.declare_port({rn, "broadcast.tx" + std::to_string(i),
                              sim::PortRecord::kWrite, 64, bc.tx_fifo_depth});
        kernel_.declare_port({"broadcast", rn + ".bcast_in", sim::PortRecord::kWrite, 64, 1});
        kernel_.declare_port({"broadcast", rn + ".bcast_notify", sim::PortRecord::kWrite, 64,
                              config_.rpu_template.bcast_notify_depth});
        kernel_.declare_port(
            {rn, "lb.ctrl.r" + std::to_string(i), sim::PortRecord::kWrite, 64, 1});
        kernel_.declare_port(
            {rn, "lb.resp.r" + std::to_string(i), sim::PortRecord::kRead, 64, 1});
    }
    lb_->set_slot_response_handler(
        [this](uint8_t requester, uint8_t dst, std::optional<uint8_t> slot) {
            rpus_[requester]->slot_response(dst, slot);
        });

    for (unsigned port = 0; port < 2; ++port) {
        sinks_.push_back(std::make_unique<dist::TrafficSink>(
            kernel_, stats_, "sink.port" + std::to_string(port)));
        dist::TrafficSink* sink = sinks_.back().get();
        fabric_->set_mac_tx_sink(port,
                                 [sink](net::PacketPtr pkt) { sink->deliver(pkt); });
        kernel_.declare_port({"sink.port" + std::to_string(port),
                              "fabric.mac_tx.p" + std::to_string(port),
                              sim::PortRecord::kRead, 512, 0});
    }

    // Pre-cycle-0 gate: the static lint (and, when configured, the
    // shard-cut certifier) runs once, right before the first tick, so late
    // wiring (sources, accelerators) is already elaborated.
    if (config_.lint != LintMode::kOff || config_.certify_shards > 0) {
        kernel_.set_prestep_hook([this](sim::Kernel&) {
            if (config_.lint != LintMode::kOff) {
                auto violations = lint_check();
                if (!violations.empty()) {
                    std::string msg =
                        "netlist lint failed:\n" + lint::report(violations);
                    if (config_.lint == LintMode::kEnforce) sim::fatal(msg);
                    sim::warn(msg);
                }
            }
            if (config_.certify_shards > 0) {
                lint::ShardPlan plan = shard_plan(config_.certify_shards);
                if (!plan.sound) {
                    std::string msg = "shard-cut certification failed: " +
                                      plan.verdict;
                    if (config_.lint == LintMode::kEnforce) sim::fatal(msg);
                    sim::warn(msg);
                }
            }
        });
    }
}

System::~System() = default;

void
System::attach_accelerators(
    const std::function<std::unique_ptr<rpu::Accelerator>()>& factory) {
    for (auto& r : rpus_) r->attach_accelerator(factory());
}

dist::TrafficSource&
System::add_source(const dist::TrafficSource::Config& cfg, dist::TrafficSource::GenFn gen) {
    sources_.push_back(std::make_unique<dist::TrafficSource>(kernel_, stats_, cfg, *fabric_,
                                                             std::move(gen)));
    return *sources_.back();
}

uint64_t
System::add_packet_observer(PacketObserver fn) {
    if (!observer_hooks_installed_) {
        auto hook = [this](const char* stage, const net::Packet& pkt) {
            dispatch_packet_event(stage, pkt);
        };
        fabric_->set_trace(hook);
        for (auto& r : rpus_) r->set_trace(hook);
        observer_hooks_installed_ = true;
    }
    // Compact slots freed by remove_packet_observer (never during a
    // dispatch, so iteration in dispatch_packet_event stays valid).
    std::erase_if(observers_, [](const Observer& o) { return !o.fn; });
    uint64_t handle = next_observer_handle_++;
    observers_.push_back({handle, std::move(fn)});
    return handle;
}

void
System::remove_packet_observer(uint64_t handle) {
    // Null the slot instead of erasing so removal from inside a dispatch
    // does not invalidate the iteration.
    for (auto& o : observers_) {
        if (o.handle == handle) o.fn = nullptr;
    }
}

void
System::dispatch_packet_event(const char* stage, const net::Packet& pkt) {
    sim::Cycle now = kernel_.now();
    for (size_t i = 0; i < observers_.size(); ++i) {
        if (observers_[i].fn) observers_[i].fn(stage, pkt, now);
    }
}

std::vector<System::ResourceRow>
System::resource_report() const {
    std::vector<ResourceRow> rows;
    unsigned n = config_.rpu_count;

    sim::ResourceFootprint rpu_fp = rpus_.front()->base_resources();
    rows.push_back({"Single RPU", rpu_fp});
    rows.push_back({"Remaining (PR)", pr_region_capacity(n).saturating_sub(rpu_fp)});

    sim::ResourceFootprint lb_fp = lb_->resources();
    rows.push_back({"LB", lb_fp});
    rows.push_back({"Remaining", lb_region_capacity(n).saturating_sub(lb_fp)});

    sim::ResourceFootprint ic = fabric_->interconnect_resources();
    rows.push_back({"Single Interconnect", ic});

    sim::ResourceFootprint cmac{6397, 14849, 0, 18, 0};
    sim::ResourceFootprint pcie{41526, 63742, 110, 32, 0};
    rows.push_back({"CMAC", cmac});
    rows.push_back({"PCIe", pcie});

    sim::ResourceFootprint sw = fabric_->switching_resources();
    rows.push_back({"Switching", sw});

    sim::ResourceFootprint total =
        rpu_fp * n + lb_fp + ic * n + cmac + pcie + sw;
    rows.push_back({"Complete design", total});
    rows.push_back({"VU9P device", sim::kXcvu9p});
    return rows;
}

std::vector<lint::Violation>
System::lint_check() const {
    auto violations = lint::check_netlist(kernel_, lint::paper_width_table());

    // Resource-model consistency: the per-component rows of Tables 1-2 must
    // sum exactly into "Complete design", which must fit the VU9P, and the
    // replicated blocks must fit their pre-laid-out PR regions.
    unsigned n = config_.rpu_count;
    auto rows = resource_report();
    auto row = [&](const std::string& name) -> const sim::ResourceFootprint& {
        for (const auto& r : rows) {
            if (r.name == name) return r.fp;
        }
        sim::panic("lint_check: missing resource row " + name);
    };
    std::vector<lint::ResourceItem> children = {
        {"Single RPU", row("Single RPU"), n},
        {"LB", row("LB"), 1},
        {"Single Interconnect", row("Single Interconnect"), n},
        {"CMAC", row("CMAC"), 1},
        {"PCIe", row("PCIe"), 1},
        {"Switching", row("Switching"), 1},
    };
    auto append = [&](std::vector<lint::Violation> v) {
        violations.insert(violations.end(), std::make_move_iterator(v.begin()),
                          std::make_move_iterator(v.end()));
    };
    append(lint::check_resource_sum("Complete design", row("Complete design"), children));
    append(lint::check_resource_fit("Complete design", row("Complete design"),
                                    sim::kXcvu9p));
    append(lint::check_resource_fit("Single RPU (PR region)", row("Single RPU"),
                                    pr_region_capacity(n)));
    append(lint::check_resource_fit("LB (PR block)", row("LB"), lb_region_capacity(n)));
    return violations;
}

lint::ShardPlan
System::shard_plan(unsigned shards) const {
    return lint::certify_partition(kernel_, shards);
}

// --- time-decoupled execution (DESIGN.md §16) --------------------------------

void
System::set_decouple_shards(unsigned shards, unsigned workers) {
    decouple_request_ = shards;
    decouple_workers_ = workers;
    decouple_failed_ = false;
    if (shards <= 1) {
        // The null plan: one shard IS the barrier kernel, bit-identical to
        // a serial run by definition.
        kernel_.clear_shard_spec();
        detach_cut_channels();
        decouple_installed_ = false;
        decouple_plan_.reset();
    }
}

void
System::detach_cut_channels() {
    if (fabric_) {
        for (unsigned p = 0; p < 2; ++p) fabric_->set_cut_rx_channel(p, nullptr);
    }
    for (auto& s : sources_) s->set_cut_channel(nullptr, 0);
    cut_channels_.clear();
}

std::vector<sim::CutChannelStats>
System::decoupled_channel_report() const {
    std::vector<sim::CutChannelStats> out;
    out.reserve(cut_channels_.size());
    for (const auto& ch : cut_channels_) out.push_back(ch->stats());
    return out;
}

void
System::try_install_decoupled() {
    // Decoupling targets the tester-boundary cuts; until traffic sources
    // exist the certified plan has a single executable shard (certifying
    // during boot would see only the DUT atom), so the request stays
    // pending across boot-time runs.
    if (sources_.empty()) return;

    auto reject = [this](const std::string& why) {
        sim::warn("decouple: falling back to the barrier kernel: " + why);
        detach_cut_channels();
        kernel_.clear_shard_spec();
        decouple_failed_ = true;
    };
    if (config_.hw_reassembler)
        return reject(
            "the hardware reassembler holds cross-packet state on the mac_rx "
            "path (the cut-channel mirror requires a pass-through MAC)");
    if (observer_hooks_installed_)
        return reject("packet observers require the single-clock barrier kernel");
    if (kernel_.telemetry() != nullptr)
        return reject("a telemetry sink is attached");

    auto plan =
        std::make_unique<lint::ShardPlan>(shard_plan(decouple_request_));
    if (!plan->sound) return reject("plan unsound: " + plan->verdict);

    std::unordered_map<std::string, sim::Component*> by_name;
    for (sim::Component* c : kernel_.components()) by_name[c->name()] = c;
    auto find = [&](const std::string& n) -> sim::Component* {
        auto it = by_name.find(n);
        return it == by_name.end() ? nullptr : it->second;
    };

    // Map plan shards (which also list netlist pseudo components — the
    // LB's port-declaring name, the passive sinks) onto executable shards
    // of kernel components. Plan shards holding only pseudo components
    // are not executable; cuts touching them need no synchronization (a
    // pseudo endpoint is a passive call on the adjacent real component's
    // thread, e.g. a mac_tx sink delivery at fabric-local time).
    sim::ShardSpec spec;
    std::vector<int> exec_of(plan->shards.size(), -1);
    for (unsigned ps = 0; ps < plan->shards.size(); ++ps) {
        std::vector<sim::Component*> comps;
        for (const std::string& n : plan->shards[ps]) {
            if (sim::Component* c = find(n)) comps.push_back(c);
        }
        if (comps.empty()) continue;
        exec_of[ps] = int(spec.shards.size());
        spec.shards.push_back({});
        spec.shards.back().components = std::move(comps);
    }
    if (spec.shards.size() < 2)
        return reject("plan yields fewer than 2 executable shards");

    int fabric_exec = -1;
    for (unsigned s = 0; s < spec.shards.size(); ++s) {
        for (sim::Component* c : spec.shards[s].components) {
            if (c == fabric_.get()) fabric_exec = int(s);
        }
    }
    if (fabric_exec < 0) return reject("fabric not in any executable shard");

    // Translate the certified cuts into channels and waits. Only the
    // tester-boundary mac_rx cuts carry real->real traffic today; any
    // other real->real cut has no channel adapter yet.
    detach_cut_channels();
    std::unordered_map<std::string, sim::CutChannel<net::PacketPtr>*> by_net;
    auto add_end_wait = [&](int shard, unsigned dep) {
        for (unsigned u : spec.shards[shard].end_waits) {
            if (u == dep) return;
        }
        spec.shards[shard].end_waits.push_back(dep);
    };
    bool any_channel = false;
    // (channel, producer exec shard, consumer exec shard) — the kernel's
    // per-shard done counters are bound after set_shard_spec succeeds.
    std::vector<std::tuple<sim::CutChannelBase*, unsigned, unsigned>> binds;
    for (const lint::ShardCut& cut : plan->cuts) {
        sim::Component* from = find(cut.edge.from);
        sim::Component* to = find(cut.edge.to);
        if (!from || !to) continue;  // pseudo endpoint: no sync needed
        const bool mac_rx_net =
            cut.edge.net.rfind("fabric.mac_rx.p", 0) == 0 &&
            cut.edge.net.size() == sizeof("fabric.mac_rx.p") &&
            (cut.edge.net.back() == '0' || cut.edge.net.back() == '1');
        if (!mac_rx_net)
            return reject("no decoupled channel adapter for cut net '" +
                          cut.edge.net + "'");
        const unsigned port = unsigned(cut.edge.net.back() - '0');
        const int from_exec = exec_of[cut.from_shard];
        const int to_exec = exec_of[cut.to_shard];
        if (from_exec < 0 || to_exec < 0)
            return reject("mac_rx cut touches a non-executable shard");
        if (cut.edge.kind == lint::LatencyEdge::kData) {
            // Producer (TrafficSource) -> consumer (Fabric): replace the
            // direct call with the latency-tagged channel; the consumer's
            // end-of-cycle hook integrates same-cycle pushes, so it waits
            // for the producer to finish each cycle before closing it.
            if (to != fabric_.get())
                return reject("unexpected mac_rx data-cut consumer '" +
                              cut.edge.to + "'");
            dist::TrafficSource* src = nullptr;
            for (auto& s : sources_) {
                if (s->name() == cut.edge.from) src = s.get();
            }
            if (!src)
                return reject("mac_rx data-cut producer '" + cut.edge.from +
                              "' is not a traffic source");
            auto ch = std::make_unique<sim::CutChannel<net::PacketPtr>>(
                cut.edge.net, cut.edge.latency);
            by_net[cut.edge.net] = ch.get();
            src->set_cut_channel(ch.get(), fabric_->config().mac_rx_fifo_bytes);
            fabric_->set_cut_rx_channel(port, ch.get());
            spec.shards[to_exec].in_channels.push_back(ch.get());
            binds.emplace_back(ch.get(), unsigned(from_exec), unsigned(to_exec));
            cut_channels_.push_back(std::move(ch));
            add_end_wait(to_exec, unsigned(from_exec));
            any_channel = true;
        } else {
            // Registered credit return (Fabric -> TrafficSource, latency
            // >= 1). No conservative wait: the source's free-run gate
            // (TrafficSource::decoupled_runnable) bounds occupancy with the
            // channel's snapshot + its own undrained pushes, falling back
            // to the exact lockstep snapshot only when the bound nears the
            // FIFO capacity — that admission dominance is exactly what the
            // registered-credit certificate licenses.
        }
    }
    if (!any_channel) return reject("no mac_rx data cut in the plan");

    spec.primary = unsigned(fabric_exec);
    unsigned workers = decouple_workers_;
    if (workers == 0) {
        unsigned hw = std::thread::hardware_concurrency();
        workers = hw > 8 ? 4 : (hw >= 4 ? 2 : 1);
    }
    spec.shards[fabric_exec].tick_workers = workers;
    spec.shards[fabric_exec].begin_hook = [this] {
        fabric_->decoupled_begin_run();
    };
    spec.shards[fabric_exec].end_hook = [this](sim::Cycle t) {
        fabric_->decoupled_end_cycle(t);
    };
    spec.exec = decouple_exec_;

    std::string err = kernel_.set_shard_spec(std::move(spec));
    if (!err.empty()) return reject(err);

    // Bind the kernel's per-shard progress counters into each channel so
    // both endpoints can tell lockstep (exact credit) from free-run.
    for (auto& [ch, prod, cons] : binds) {
        ch->bind_producer_done(kernel_.shard_done_ptr(prod));
        ch->bind_consumer_done(kernel_.shard_done_ptr(cons));
    }

    // The race detector needs a single attributable actor per cycle; the
    // certified plan plus the dynamic channel-latency cross-check stand in
    // for it while decoupled.
    kernel_.set_race_check(false);
    decouple_installed_ = true;
    decouple_plan_ = std::move(plan);
    sim::inform("decouple: installed " +
                std::to_string(kernel_.components().size()) +
                " components over " + std::to_string(decouple_request_) +
                "-way certified plan (" + std::to_string(cut_channels_.size()) +
                " cut channels, " + std::to_string(workers) +
                " DUT tick workers)");
}

namespace {

void
fnv_mix(uint64_t& h, uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 0x100000001b3ull;
    }
}

void
fnv_mix(uint64_t& h, const std::string& s) {
    for (char c : s) {
        h ^= uint8_t(c);
        h *= 0x100000001b3ull;
    }
    fnv_mix(h, s.size());
}

}  // namespace

uint64_t
System::state_fingerprint() const {
    uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
    // Stats maps are ordered, so iteration itself is deterministic; the
    // per-sampler XOR absorbs any same-cycle sample reordering.
    for (const auto& [name, c] : stats_.counters()) {
        fnv_mix(h, name);
        fnv_mix(h, c.get());
    }
    for (const auto& [name, s] : stats_.samplers()) {
        fnv_mix(h, name);
        fnv_mix(h, uint64_t(s.count()));
        uint64_t bag = 0;
        for (double v : s.samples()) {
            uint64_t bits;
            std::memcpy(&bits, &v, sizeof bits);
            bag ^= bits;
        }
        fnv_mix(h, bag);
    }
    for (const auto& sink : sinks_) {
        fnv_mix(h, sink->frames());
        fnv_mix(h, sink->bytes());
    }
    for (const auto& r : rpus_) {
        fnv_mix(h, r->debug_low());
        fnv_mix(h, r->debug_high());
        fnv_mix(h, r->occupancy());
    }
    for (unsigned r = 0; r < config_.rpu_count; ++r) {
        fnv_mix(h, lb_->free_slots(uint8_t(r)));
    }
    return h;
}

}  // namespace rosebud
