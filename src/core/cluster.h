/// \file
/// Multi-board cluster simulation harness (ROADMAP item 1, DESIGN.md §16).
///
/// Simulates N Rosebud boards behind the flow-consistent ECMP front end
/// (dist::EcmpSharder) joined by modeled 100G inter-board links
/// (dist::InterBoardLink). Because the front end shards by flow and the
/// shipped dataplanes never originate board-to-board traffic, the boards
/// are *independent shard groups*: each board's architectural evolution
/// is bit-identical to a standalone single-board run fed the same flow
/// subset. run_cluster exploits exactly that — every board runs as its
/// own System (time-decoupled over the certified ShardPlan when
/// requested) and the harness proves the equivalence by fingerprinting
/// each board against a serial tuned reference run of the same subset.
///
/// The reported speedup is the honest 1-host-thread metric: the summed
/// host time of the per-board serial reference runs divided by the total
/// wall time of the cluster pass (install + decoupled runs). The
/// inter-board links are accounted offline: the front-end stream is
/// replayed through the sharder and a per-board link model, yielding
/// utilization and worst-case added latency without coupling the boards'
/// cycle loops.

#ifndef ROSEBUD_CORE_CLUSTER_H
#define ROSEBUD_CORE_CLUSTER_H

#include <cstdint>
#include <vector>

#include "dist/cluster.h"
#include "sim/shard.h"

namespace rosebud::exp {

struct ClusterParams {
    unsigned boards = 2;
    unsigned rpu_count = 16;
    /// Per-board time-decoupled shard count (0 or 1 = serial tuned kernel
    /// on every board; the cluster is still simulated board-by-board).
    unsigned decouple_shards = 4;
    unsigned shard_workers = 1;
    /// How decoupled shards map onto host threads (kAuto: coop scheduling
    /// on a single hardware thread, one thread per shard otherwise).
    sim::ShardSpec::Exec exec = sim::ShardSpec::Exec::kAuto;

    unsigned ports = 2;          ///< external 100G ports per board
    uint32_t packet_size = 256;  ///< synthetic trace frame size
    double load = 0.005;         ///< per-board per-port fraction of line
    uint64_t seed = 1;
    sim::Cycle warmup = 2'000;
    sim::Cycle window = 60'000;

    dist::InterBoardLink::Config link;  ///< front-end-to-board link model
};

struct ClusterBoardResult {
    uint64_t fingerprint = 0;            ///< decoupled (cluster) run
    uint64_t reference_fingerprint = 0;  ///< serial tuned standalone run
    bool fingerprint_match = false;
    uint64_t frames = 0;  ///< delivered over the measurement window
    uint64_t bytes = 0;
    double gbps = 0;             ///< per-board goodput over the window
    double host_s = 0;           ///< cluster-pass host time for this board
    double reference_host_s = 0; ///< serial reference host time
    double link_utilization = 0;
    sim::Cycle link_worst_latency = 0;  ///< worst modeled added latency
};

struct ClusterResult {
    std::vector<ClusterBoardResult> boards;
    double aggregate_gbps = 0;  ///< sum of per-board window goodputs
    double serial_host_s = 0;   ///< sum of per-board serial reference times
    double cluster_host_s = 0;  ///< total wall of the cluster pass
    double speedup = 0;         ///< serial_host_s / cluster_host_s
    bool fingerprints_match = false;  ///< every board bit-identical
    /// True when the time-decoupled executor actually installed on the
    /// cluster-pass boards (or when none was requested). False means the
    /// cluster ran, correctly, on the serial fallback — the speedup
    /// column is then measuring nothing.
    bool decoupled_active = false;
    uint64_t sharded_frames = 0;      ///< front-end frames routed
    double sharder_imbalance = 0;     ///< max board share vs fair share - 1
};

/// Run the cluster simulation: model the front end, then per board run a
/// serial tuned reference followed by the cluster-configuration run, and
/// gate the fingerprints against each other.
ClusterResult run_cluster(const ClusterParams& p);

}  // namespace rosebud::exp

#endif  // ROSEBUD_CORE_CLUSTER_H
