#include "core/experiments.h"

#include <chrono>
#include <memory>

#include "accel/firewall.h"
#include "accel/pigasus.h"
#include "firmware/programs.h"
#include "net/headers.h"
#include "sim/log.h"

namespace rosebud::exp {

namespace {

SimTuning g_tuning;
double g_last_host_seconds = 0.0;

/// Applies the process-wide tuning to a freshly built System. Parallel
/// ticking requires the dynamic race detector off (the detector records a
/// serial actor and would see cross-thread accesses as races); the shipped
/// configurations are shuffle-clean, so this is safe.
void
apply_tuning(System& sys) {
    sys.kernel().set_idle_skip(g_tuning.idle_skip);
    sys.kernel().set_commit_compat(g_tuning.commit_compat);
    if (g_tuning.parallel_ticks > 1) {
        sys.kernel().set_race_check(false);
        sys.kernel().set_parallel_ticks(g_tuning.parallel_ticks);
    }
    // Latent request: installs at the first run_cycles() after the traffic
    // sources exist (System::try_install_decoupled).
    if (g_tuning.shards > 1)
        sys.set_decouple_shards(g_tuning.shards, g_tuning.shard_workers);
    for (unsigned i = 0; i < sys.rpu_count(); ++i)
        sys.rpu(i).core().set_predecode(g_tuning.predecode);
}

/// RAII wall-clock timer recording into last_run_host_seconds(); one per
/// run_* harness so callers can print a host-time summary per experiment.
struct HostTimer {
    std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
    ~HostTimer() {
        g_last_host_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                .count();
    }
};

}  // namespace

void
set_sim_tuning(const SimTuning& t) { g_tuning = t; }

const SimTuning&
sim_tuning() { return g_tuning; }

double
last_run_host_seconds() { return g_last_host_seconds; }

namespace {

/// Generator that clones a prototype frame (cheap fixed-size traffic).
dist::TrafficSource::GenFn
fixed_size_gen(uint32_t size, uint64_t seed) {
    net::PacketBuilder b;
    b.ipv4(0x0a000001 + uint32_t(seed), 0x0a000002)
        .udp(uint16_t(1024 + seed), 2000)
        .frame_size(size);
    net::PacketPtr proto = b.build();
    auto next_id = std::make_shared<uint64_t>(seed << 32);
    return [proto, next_id]() {
        auto p = std::make_shared<net::Packet>(*proto);
        p->id = (*next_id)++;
        return p;
    };
}

/// Generator that streams a TraceGenerator.
dist::TrafficSource::GenFn
trace_gen(std::shared_ptr<net::TraceGenerator> gen) {
    return [gen]() { return gen->next(); };
}

uint64_t
rpu_counter_sum(System& sys, const char* suffix) {
    uint64_t total = 0;
    for (unsigned i = 0; i < sys.rpu_count(); ++i) {
        total += sys.stats().get("rpu" + std::to_string(i) + "." + suffix);
    }
    return total;
}

}  // namespace

std::vector<uint32_t>
figure7_sizes() {
    return {64, 65, 128, 256, 512, 1024, 1500, 2048, 4096, 8192, 9000};
}

ForwardingPoint
run_forwarding(const ForwardingParams& p) {
    HostTimer timer;
    SystemConfig cfg;
    cfg.rpu_count = p.rpu_count;
    System sys(cfg);
    apply_tuning(sys);
    auto fw = fwlib::forwarder();
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();
    sys.run_cycles(500);

    for (unsigned port = 0; port < p.ports; ++port) {
        sys.add_source({.port = port, .line_gbps = 100.0, .load = p.load},
                       fixed_size_gen(p.size, port + 1));
    }

    sys.run_cycles(p.warmup);
    sys.sink(0).start_window();
    sys.sink(1).start_window();
    sys.run_cycles(p.window);

    ForwardingPoint out;
    out.size = p.size;
    out.rpu_count = p.rpu_count;
    double secs = double(p.window) / sim::kClockHz;
    uint64_t frames = sys.sink(0).window_frames() + sys.sink(1).window_frames();
    uint64_t bytes = sys.sink(0).window_bytes() + sys.sink(1).window_bytes();
    out.achieved_gbps = double(bytes) * 8.0 / secs / 1e9;
    out.achieved_mpps = double(frames) / secs / 1e6;
    double total_line = 100.0 * p.ports;
    out.offered_gbps = net::line_rate_goodput_gbps(p.size, total_line) * p.load;
    out.line_gbps = net::line_rate_goodput_gbps(p.size, total_line);
    out.line_mpps = net::line_rate_pps(p.size, total_line) / 1e6;
    return out;
}

double
eq1_latency_us(uint32_t size, double fixed_us) {
    return double(size) * 8.0 * (2.0 / 100.0 + 2.0 / 32.0) / 1000.0 + fixed_us;
}

LatencyPoint
run_latency(const LatencyParams& p) {
    HostTimer timer;
    SystemConfig cfg;
    cfg.rpu_count = p.rpu_count;
    System sys(cfg);
    apply_tuning(sys);
    auto fw = fwlib::forwarder();
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();
    sys.run_cycles(500);

    for (unsigned port = 0; port < 2; ++port) {
        sys.add_source({.port = port, .line_gbps = 100.0, .load = p.load},
                       fixed_size_gen(p.size, port + 1));
    }

    sys.run_cycles(p.warmup);
    sys.sink(0).start_window();
    sys.sink(1).start_window();
    sys.run_cycles(p.window);

    LatencyPoint out;
    out.size = p.size;
    sim::Sampler all;
    for (unsigned port = 0; port < 2; ++port) {
        for (double v : sys.sink(port).latency().samples()) all.add(v);
    }
    out.mean_us = all.mean() / 1e3;
    out.min_us = all.min() / 1e3;
    out.max_us = all.max() / 1e3;
    out.p99_us = all.percentile(0.99) / 1e3;
    out.eq1_us = eq1_latency_us(p.size);
    return out;
}

LoopbackPoint
run_loopback(unsigned rpu_count, uint32_t size, sim::Cycle warmup, sim::Cycle window) {
    HostTimer timer;
    SystemConfig cfg;
    cfg.rpu_count = rpu_count;
    System sys(cfg);
    apply_tuning(sys);
    auto fw = fwlib::two_step_forwarder(rpu_count);
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();
    sys.run_cycles(500);
    // Only the first half of the RPUs receives incoming traffic.
    sys.host().set_recv_mask((1u << (rpu_count / 2)) - 1);

    sys.add_source({.port = 0, .line_gbps = 100.0, .load = 1.0}, fixed_size_gen(size, 1));

    sys.run_cycles(warmup);
    sys.sink(0).start_window();
    sys.sink(1).start_window();
    sys.run_cycles(window);

    LoopbackPoint out;
    out.size = size;
    double secs = double(window) / sim::kClockHz;
    uint64_t bytes = sys.sink(0).window_bytes() + sys.sink(1).window_bytes();
    out.achieved_gbps = double(bytes) * 8.0 / secs / 1e9;
    out.line_gbps = net::line_rate_goodput_gbps(size, 100.0);
    out.fraction_of_line = out.achieved_gbps / out.line_gbps;
    return out;
}

namespace {

/// Shared measurement body: the messages carry the sender's cycle counter
/// (== kernel cycles since boot), and the delivery probe computes
/// send-timestamp-to-simultaneous-arrival latency — the same semantics as
/// the paper's "compare the current time against the transmit time".
void
measure_broadcast(unsigned rpu_count, sim::Cycle window, const fwlib::Program& fw,
                  bool all_send, double& min_ns, double& max_ns, double& mean_ns,
                  uint64_t& messages) {
    SystemConfig cfg;
    cfg.rpu_count = rpu_count;
    System sys(cfg);
    apply_tuning(sys);
    if (all_send) {
        sys.host().load_firmware_all(fw.image, fw.entry);
    } else {
        auto sink = fwlib::broadcast_sink();
        sys.host().load_firmware(0, fw.image, fw.entry);
        for (unsigned i = 1; i < rpu_count; ++i) {
            sys.host().load_firmware(i, sink.image, sink.entry);
        }
    }
    sim::Cycle boot_cycle = sys.kernel().now();
    sys.host().boot_all();

    sim::Sampler lat;
    sim::Cycle measure_from = boot_cycle + window / 4;  // skip warm-up
    sys.broadcast().set_delivery_probe(
        [&](uint32_t /*offset*/, uint32_t value, sim::Cycle now) {
            if (now < measure_from) return;
            double cycles = double(now - boot_cycle) - double(value);
            lat.add(cycles * sim::kNsPerCycle);
        });
    sys.run_cycles(window);

    min_ns = lat.empty() ? 0 : lat.min();
    max_ns = lat.max();
    mean_ns = lat.mean();
    messages = lat.count();
}

}  // namespace

BroadcastResult
run_broadcast(unsigned rpu_count, sim::Cycle window) {
    HostTimer timer;
    BroadcastResult out;
    uint64_t n_sparse = 0;
    measure_broadcast(rpu_count, window, fwlib::broadcast_sender(2000), /*all_send=*/false,
                      out.sparse_min_ns, out.sparse_max_ns, out.sparse_mean_ns, n_sparse);
    measure_broadcast(rpu_count, window, fwlib::broadcast_sender(0), /*all_send=*/true,
                      out.saturated_min_ns, out.saturated_max_ns, out.saturated_mean_ns,
                      out.messages);
    out.messages += n_sparse;
    return out;
}

IpsPoint
run_ips(const IpsParams& p) {
    HostTimer timer;
    sim::Rng rng(p.seed);
    net::IdsRuleSet rules = net::IdsRuleSet::synthesize(p.rule_count, rng);

    SystemConfig cfg;
    cfg.rpu_count = p.rpu_count;
    if (p.mode == IpsMode::kHwReorder) {
        cfg.lb_policy = lb::Policy::kRoundRobin;
        cfg.hw_reassembler = true;
    } else {
        cfg.lb_policy = lb::Policy::kHash;
    }
    System sys(cfg);
    apply_tuning(sys);
    sys.attach_accelerators([&] { return std::make_unique<accel::PigasusMatcher>(rules); });

    auto fw = p.mode == IpsMode::kHwReorder ? fwlib::pigasus_hw_reorder()
                                            : fwlib::pigasus_sw_reorder();
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();
    sys.run_cycles(500);

    // Host receive path: matched attack packets plus (in SW-reorder mode)
    // reorder-buffer punts; count them separately via the ground truth.
    auto host_frames = std::make_shared<uint64_t>(0);
    auto host_bytes = std::make_shared<uint64_t>(0);
    auto host_attacks = std::make_shared<uint64_t>(0);
    sys.host().set_rx_handler([host_frames, host_bytes, host_attacks](net::PacketPtr pkt) {
        ++*host_frames;
        *host_bytes += pkt->size();
        if (pkt->is_attack) ++*host_attacks;
    });

    net::TrafficSpec spec;
    spec.packet_size = p.size;
    spec.attack_fraction = p.attack_fraction;
    spec.reorder_fraction = p.reorder_fraction;
    spec.udp_fraction = 0.05;
    auto attacks_offered = std::make_shared<uint64_t>(0);
    for (unsigned port = 0; port < 2; ++port) {
        net::TrafficSpec s = spec;
        s.seed = p.seed + port + 1;
        auto gen = std::make_shared<net::TraceGenerator>(s, &rules);
        sys.add_source({.port = port, .line_gbps = 100.0, .load = 1.0},
                       [gen, attacks_offered]() {
                           auto pkt = gen->next();
                           if (pkt->is_attack) ++*attacks_offered;
                           return pkt;
                       });
    }

    sys.run_cycles(p.warmup);
    sys.sink(0).start_window();
    sys.sink(1).start_window();
    uint64_t attacks_at_start = *attacks_offered;
    uint64_t host_frames_at_start = *host_frames;
    uint64_t host_bytes_at_start = *host_bytes;
    uint64_t host_attacks_at_start = *host_attacks;
    sys.run_cycles(p.window);

    IpsPoint out;
    out.size = p.size;
    out.mode = p.mode;
    double secs = double(p.window) / sim::kClockHz;
    uint64_t frames = sys.sink(0).window_frames() + sys.sink(1).window_frames() +
                      (*host_frames - host_frames_at_start);
    uint64_t bytes = sys.sink(0).window_bytes() + sys.sink(1).window_bytes() +
                     (*host_bytes - host_bytes_at_start);
    out.achieved_gbps = double(bytes) * 8.0 / secs / 1e9;
    out.achieved_mpps = double(frames) / secs / 1e6;
    out.line_gbps = net::line_rate_goodput_gbps(p.size, 200.0);
    out.cycles_per_packet =
        frames ? double(p.rpu_count) * sim::kClockHz * secs / double(frames) : 0.0;
    out.matched_to_host = *host_attacks - host_attacks_at_start;
    out.punted_to_host =
        (*host_frames - host_frames_at_start) - (*host_attacks - host_attacks_at_start);
    out.expected_attacks = *attacks_offered - attacks_at_start;
    return out;
}

FirewallPoint
run_firewall(const FirewallParams& p) {
    HostTimer timer;
    sim::Rng rng(p.seed);
    net::Blacklist blacklist = net::Blacklist::synthesize(p.blacklist_size, rng);

    SystemConfig cfg;
    cfg.rpu_count = p.rpu_count;
    System sys(cfg);
    apply_tuning(sys);
    sys.attach_accelerators([&] { return std::make_unique<accel::FirewallMatcher>(blacklist); });
    auto fw = fwlib::firewall();
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();
    sys.run_cycles(500);

    net::TrafficSpec spec;
    spec.packet_size = p.size;
    spec.attack_fraction = p.attack_fraction;
    spec.udp_fraction = 0.2;
    auto attacks_offered = std::make_shared<uint64_t>(0);
    for (unsigned port = 0; port < 2; ++port) {
        net::TrafficSpec s = spec;
        s.seed = p.seed + port + 1;
        auto gen = std::make_shared<net::TraceGenerator>(s, nullptr, &blacklist);
        sys.add_source({.port = port, .line_gbps = 100.0, .load = 1.0},
                       [gen, attacks_offered]() {
                           auto pkt = gen->next();
                           if (pkt->is_attack) ++*attacks_offered;
                           return pkt;
                       });
    }

    sys.run_cycles(p.warmup);
    sys.sink(0).start_window();
    sys.sink(1).start_window();
    uint64_t attacks_at_start = *attacks_offered;
    uint64_t drops_at_start = rpu_counter_sum(sys, "dropped_packets");
    sys.run_cycles(p.window);

    FirewallPoint out;
    out.size = p.size;
    double secs = double(p.window) / sim::kClockHz;
    uint64_t fwd_bytes = sys.sink(0).window_bytes() + sys.sink(1).window_bytes();
    out.forwarded = sys.sink(0).window_frames() + sys.sink(1).window_frames();
    out.blocked = rpu_counter_sum(sys, "dropped_packets") - drops_at_start;
    out.expected_blocked = *attacks_offered - attacks_at_start;
    // Achieved = absorbed traffic (forwarded + blocked), as the paper reads
    // "RX bytes" on the DUT.
    out.achieved_gbps =
        (double(fwd_bytes) + double(out.blocked) * p.size) * 8.0 / secs / 1e9;
    out.line_gbps = net::line_rate_goodput_gbps(p.size, 200.0);
    return out;
}

double
run_single_rpu_cycles_per_packet(const SingleRpuParams& p) {
    HostTimer timer;
    sim::Rng rng(p.seed);
    net::IdsRuleSet rules = net::IdsRuleSet::synthesize(p.rule_count, rng);

    SystemConfig cfg;
    cfg.rpu_count = 4;
    if (p.mode == IpsMode::kHwReorder) {
        cfg.lb_policy = lb::Policy::kRoundRobin;
        cfg.hw_reassembler = true;
    } else {
        cfg.lb_policy = lb::Policy::kHash;
    }
    System sys(cfg);
    apply_tuning(sys);
    sys.attach_accelerators([&] { return std::make_unique<accel::PigasusMatcher>(rules); });
    auto fw = p.mode == IpsMode::kHwReorder ? fwlib::pigasus_hw_reorder()
                                            : fwlib::pigasus_sw_reorder();
    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();
    sys.run_cycles(500);
    sys.host().set_recv_mask(1);  // single-RPU measurement
    sys.host().set_rx_handler([](net::PacketPtr) {});

    net::TrafficSpec spec;
    spec.packet_size = p.size;
    spec.attack_fraction = p.attack ? 1.0 : 0.0;
    spec.udp_fraction = p.udp ? 1.0 : 0.0;
    spec.reorder_fraction = 0.0;
    spec.seed = p.seed;
    auto gen = std::make_shared<net::TraceGenerator>(spec, &rules);
    sys.add_source({.port = 0, .line_gbps = 100.0, .load = 1.0}, trace_gen(gen));

    sys.run_cycles(20'000);
    uint64_t before = sys.stats().get("rpu0.tx_packets") +
                      sys.stats().get("rpu0.dropped_packets");
    uint64_t host_before = sys.stats().get("host.rx_frames");
    sim::Cycle window = 60'000;
    sys.run_cycles(window);
    uint64_t processed = sys.stats().get("rpu0.tx_packets") +
                         sys.stats().get("rpu0.dropped_packets") - before;
    (void)host_before;
    if (processed == 0) return 0.0;
    return double(window) / double(processed);
}

}  // namespace rosebud::exp
