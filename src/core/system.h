/// \file
/// The top-level Rosebud system (paper Figure 2): N RPUs in four clusters,
/// the customizable load balancer, the two-plane packet-distribution
/// fabric, the inter-RPU broadcast network, the host control plane, and
/// the traffic endpoints standing in for the tester FPGA.
///
/// This is the primary public entry point of the library:
///
///   rosebud::SystemConfig cfg;
///   cfg.rpu_count = 16;
///   rosebud::System sys(cfg);
///   sys.host().load_firmware_all(fwlib::forwarder().image);
///   sys.host().boot_all();
///   sys.add_source({.port = 0}, gen);
///   sys.run_cycles(100'000);

#ifndef ROSEBUD_CORE_SYSTEM_H
#define ROSEBUD_CORE_SYSTEM_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dist/fabric.h"
#include "dist/traffic.h"
#include "host/host.h"
#include "lb/load_balancer.h"
#include "lint/netlist.h"
#include "lint/shard.h"
#include "msg/broadcast.h"
#include "rpu/rpu.h"
#include "sim/kernel.h"
#include "sim/resources.h"
#include "sim/stats.h"

namespace rosebud {

/// Policy for the elaboration-time netlist lint that runs before cycle 0.
enum class LintMode {
    kEnforce,  ///< violations are fatal before the first tick (default)
    kWarn,     ///< violations are logged, simulation proceeds
    kOff,      ///< no automatic lint (explicit lint_check() still works)
};

struct SystemConfig {
    unsigned rpu_count = 16;
    lb::Policy lb_policy = lb::Policy::kRoundRobin;
    bool hw_reassembler = false;  ///< inline reorder engine in the LB
    /// Steering function for lb::Policy::kCustom (tenant pinning, etc.).
    std::function<uint32_t(const net::Packet&)> lb_custom_steer;
    /// Overrides applied on top of the derived defaults; rpu_count fields
    /// inside are filled in by System.
    dist::FabricConfig fabric{};
    rpu::Rpu::Config rpu_template{};
    msg::BroadcastNetwork::Config broadcast{};
    /// Static firmware-verifier gate policy applied to every host firmware
    /// load (kEnforce rejects provably bad images before they run).
    host::FirmwareCheck firmware_check = host::FirmwareCheck::kEnforce;
    /// Line-rate admission gate: require a finite certified WCET, a finite
    /// stack bound and the text-write-separation proof on every firmware
    /// load (off by default; the multi-tenant control plane turns it on).
    host::FirmwareCheck wcet_check = host::FirmwareCheck::kOff;
    /// Per-activation cycle budget enforced by the admission gate when
    /// non-zero (tenant QoS contract; 0 = bounded-only, no budget compare).
    uint64_t wcet_budget_cycles = 0;
    /// Elaboration-time netlist lint policy (see LintMode).
    LintMode lint = LintMode::kEnforce;
    /// When non-zero, the pre-cycle-0 gate also runs the shard-cut
    /// certifier (lint::certify_partition) for this shard count and
    /// applies the LintMode policy to an unsound verdict. Plan export
    /// only — kernel scheduling is unchanged; the time-decoupled kernel
    /// (ROADMAP item 1) is the consumer of the certified plan.
    unsigned certify_shards = 0;
};

/// PR region capacities of the pre-laid-out floorplans (paper Figures 5-6;
/// equal to the "RPU" rows of Tables 3-4).
sim::ResourceFootprint pr_region_capacity(unsigned rpu_count);

/// LB PR block capacity ("LB" + "Remaining" rows of Tables 1-2).
sim::ResourceFootprint lb_region_capacity(unsigned rpu_count);

class System {
 public:
    explicit System(const SystemConfig& config);
    ~System();

    System(const System&) = delete;
    System& operator=(const System&) = delete;

    sim::Kernel& kernel() { return kernel_; }
    sim::Stats& stats() { return stats_; }
    lb::LoadBalancer& lb() { return *lb_; }
    dist::Fabric& fabric() { return *fabric_; }
    msg::BroadcastNetwork& broadcast() { return *broadcast_; }
    host::HostContext& host() { return *host_; }
    rpu::Rpu& rpu(unsigned idx) { return *rpus_.at(idx); }
    unsigned rpu_count() const { return unsigned(rpus_.size()); }
    const SystemConfig& config() const { return config_; }

    /// Install an accelerator (from `factory`) into every RPU.
    void attach_accelerators(
        const std::function<std::unique_ptr<rpu::Accelerator>()>& factory);

    /// Tester-side sinks wired to the two physical ports.
    dist::TrafficSink& sink(unsigned port) { return *sinks_.at(port); }

    /// Add a paced traffic source feeding one physical port.
    dist::TrafficSource& add_source(const dist::TrafficSource::Config& cfg,
                                    dist::TrafficSource::GenFn gen);

    // --- packet lifecycle observation ----------------------------------------

    /// Per-packet lifecycle callback: fired at every stage boundary a
    /// packet crosses (mac_rx, lb_assign, rpu_rx_complete, fw_send,
    /// fw_drop, mac_tx, host_deliver, ...). Multiple observers may be
    /// registered concurrently; this is the API the tracing tooling
    /// (core/tracer.h) and the golden-model scoreboard (oracle/) share.
    using PacketObserver =
        std::function<void(const char* stage, const net::Packet& pkt, sim::Cycle now)>;

    /// Register an observer; returns a handle for remove_packet_observer.
    /// Registration takes over the Fabric/Rpu `set_trace` hooks — do not
    /// mix direct set_trace calls with this API on the same System.
    /// Observers that may die before the System must deregister; an
    /// observer living at least as long as the System may skip that.
    uint64_t add_packet_observer(PacketObserver fn);

    /// Deregister. Safe to call from within a dispatch.
    void remove_packet_observer(uint64_t handle);

    // --- time-decoupled execution (DESIGN.md §16) ----------------------------

    /// Request time-decoupled execution over a certified N-way ShardPlan
    /// (the runtime consumer of lint::certify_partition). The request is
    /// latent: installation happens at the next run_cycles() once the
    /// netlist includes the traffic sources (certifying during boot would
    /// see only the DUT atom). `workers` > 1 additionally partitions the
    /// DUT shard's tick phase over that many threads (the sanctioned
    /// composition with set_parallel_ticks); 0 picks a default.
    /// `shards` <= 1 is the null plan: the barrier kernel, bit-identical
    /// to a serial run by definition. Structural obstacles (an unsound
    /// plan, the hardware reassembler, packet observers, an unsupported
    /// cut net) warn once and fall back to the barrier kernel.
    void set_decouple_shards(unsigned shards, unsigned workers = 0);

    /// How decoupled shards map onto host threads (kAuto = one thread per
    /// shard on a multi-core host, cooperative interleaving on a single
    /// hardware thread). Takes effect at the next install; the equivalence
    /// tests force both modes explicitly.
    void set_decouple_exec(sim::ShardSpec::Exec e) { decouple_exec_ = e; }

    /// True once the decoupled executor is installed (after the first
    /// post-source run_cycles under a live request).
    bool decoupled_active() const { return decouple_installed_; }

    /// The certified plan backing the installed executor (null until
    /// decoupled_active()).
    const lint::ShardPlan* decoupled_plan() const { return decouple_plan_.get(); }

    /// Observed-latency stats per cut channel, for the dynamic lookahead
    /// cross-check (obs::run_shard_check): every delivery must satisfy
    /// observed latency >= certified. Empty until decoupled_active().
    std::vector<sim::CutChannelStats> decoupled_channel_report() const;

    /// Advance simulated time.
    void run_cycles(sim::Cycle n) {
        if (decouple_request_ > 1 && !decouple_installed_ && !decouple_failed_)
            try_install_decoupled();
        kernel_.run(n);
    }
    void run_us(double us) { run_cycles(sim::Cycle(us * 1e3 / sim::kNsPerCycle)); }

    /// One named row of a utilization table.
    struct ResourceRow {
        std::string name;
        sim::ResourceFootprint fp;
    };

    /// The rows of Tables 1-2 for this configuration.
    std::vector<ResourceRow> resource_report() const;

    /// Run the full static lint over the elaborated netlist: structural
    /// checks, the paper's bus-width table, and the resource-model
    /// consistency checks (component sum vs "Complete design", fit on the
    /// VU9P). Returns every violation found (empty = clean). This is what
    /// the automatic pre-cycle-0 gate runs under LintMode::kEnforce/kWarn.
    std::vector<lint::Violation> lint_check() const;

    /// Certified shard partition of the elaborated netlist (see
    /// lint/shard.h). Purely analytical: does not change scheduling.
    /// Certify after all wiring (sources, accelerators) is declared —
    /// any later declare_net/declare_port invalidates the plan.
    lint::ShardPlan shard_plan(unsigned shards) const;

    /// Order-insensitive digest of the architecturally visible state:
    /// every stats counter, sink frame/byte/latency records, per-RPU
    /// debug registers and slot occupancy, and the LB free-slot lists.
    /// Two runs of the same workload must produce the same fingerprint
    /// regardless of component tick order (kernel().shuffle_tick_order).
    uint64_t state_fingerprint() const;

 private:
    SystemConfig config_;
    sim::Kernel kernel_;
    sim::Stats stats_;
    std::vector<std::unique_ptr<rpu::Rpu>> rpus_;
    std::unique_ptr<lb::LoadBalancer> lb_;
    std::unique_ptr<msg::BroadcastNetwork> broadcast_;
    std::unique_ptr<dist::Fabric> fabric_;
    std::unique_ptr<host::HostContext> host_;
    std::vector<std::unique_ptr<dist::TrafficSink>> sinks_;
    std::vector<std::unique_ptr<dist::TrafficSource>> sources_;

    struct Observer {
        uint64_t handle = 0;
        PacketObserver fn;  ///< null = removed, compacted lazily
    };
    void dispatch_packet_event(const char* stage, const net::Packet& pkt);
    std::vector<Observer> observers_;
    uint64_t next_observer_handle_ = 1;
    bool observer_hooks_installed_ = false;

    void try_install_decoupled();
    void detach_cut_channels();
    unsigned decouple_request_ = 0;
    unsigned decouple_workers_ = 0;
    sim::ShardSpec::Exec decouple_exec_ = sim::ShardSpec::Exec::kAuto;
    bool decouple_installed_ = false;
    bool decouple_failed_ = false;
    std::unique_ptr<lint::ShardPlan> decouple_plan_;
    std::vector<std::unique_ptr<sim::CutChannel<net::PacketPtr>>> cut_channels_;
};

}  // namespace rosebud

#endif  // ROSEBUD_CORE_SYSTEM_H
