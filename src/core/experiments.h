/// \file
/// Reusable experiment harnesses for the paper's evaluation (Sections 6-7).
///
/// Each function builds a fresh System, loads the right firmware and
/// accelerators, applies the workload, and measures over a steady-state
/// window — the in-simulator equivalent of the artifact's `make do ...`
/// experiment scripts. The bench binaries in bench/ are thin wrappers that
/// sweep these and print paper-style rows; tests assert the headline
/// shapes on smaller windows.

#ifndef ROSEBUD_CORE_EXPERIMENTS_H
#define ROSEBUD_CORE_EXPERIMENTS_H

#include <cstdint>
#include <vector>

#include "core/system.h"
#include "net/rules.h"
#include "net/tracegen.h"

namespace rosebud::exp {

// --- host-speed tuning --------------------------------------------------------

/// Simulation-speed knobs applied to every run_* harness below. These change
/// only host time, never simulated results: predecoded dispatch and idle
/// skipping are exact, and the parallel executor is fingerprint-identical to
/// the serial schedule (tests/test_sim_kernel.cc proves all three).
struct SimTuning {
    bool predecode = true;      ///< rv::Core decoded-instruction cache
    bool idle_skip = true;      ///< kernel quiescence skipping
    unsigned parallel_ticks = 0;  ///< >1 = thread-pool tick executor
    /// Benchmarking only: restore the pre-fast-path per-cycle commit and
    /// scan regime (sim::Kernel::set_commit_compat) as the A/B reference.
    bool commit_compat = false;
    /// >1 = time-decoupled execution over the certified N-way ShardPlan
    /// (System::set_decouple_shards; DESIGN.md §16). Supersedes
    /// parallel_ticks at the top level; shard_workers recovers intra-DUT-
    /// shard tick parallelism (0 = auto).
    unsigned shards = 0;
    unsigned shard_workers = 0;
};

/// Install process-wide tuning for subsequent run_* calls (the bench
/// binaries and rosebud_cli set this once from flags before running).
void set_sim_tuning(const SimTuning& t);
const SimTuning& sim_tuning();

/// Host wall-clock seconds consumed by the most recent run_* call.
double last_run_host_seconds();

/// Packet sizes evaluated in Figure 7 (powers of two plus the worst-case
/// 65 B and the common MTUs).
std::vector<uint32_t> figure7_sizes();

// --- Figure 7a/7b: forwarding throughput -------------------------------------

struct ForwardingPoint {
    uint32_t size = 0;
    unsigned rpu_count = 0;
    double offered_gbps = 0;   ///< goodput offered by the tester
    double achieved_gbps = 0;  ///< goodput forwarded back
    double achieved_mpps = 0;
    double line_gbps = 0;      ///< theoretical max goodput at this size
    double line_mpps = 0;
};

struct ForwardingParams {
    unsigned rpu_count = 16;
    uint32_t size = 1024;
    unsigned ports = 2;        ///< 1 = 100 Gbps test, 2 = 200 Gbps test
    double load = 1.0;         ///< fraction of line rate per port
    sim::Cycle warmup = 30'000;
    sim::Cycle window = 120'000;
};

ForwardingPoint run_forwarding(const ForwardingParams& p);

// --- Figure 7c: round-trip latency --------------------------------------------

struct LatencyPoint {
    uint32_t size = 0;
    double mean_us = 0;
    double min_us = 0;
    double max_us = 0;
    double p99_us = 0;
    double eq1_us = 0;  ///< the paper's serialization model (Equation 1)
};

struct LatencyParams {
    unsigned rpu_count = 16;
    uint32_t size = 64;
    double load = 0.05;  ///< 0.05 = "low load"; 1.0 = "maximum load"
    sim::Cycle warmup = 40'000;
    sim::Cycle window = 150'000;
};

LatencyPoint run_latency(const LatencyParams& p);

/// Equation 1 of the paper: est. latency (us) for a packet size, given the
/// measured fixed floor (0.765 us on the paper's hardware).
double eq1_latency_us(uint32_t size, double fixed_us = 0.765);

// --- Section 6.3: inter-RPU messaging -----------------------------------------

struct LoopbackPoint {
    uint32_t size = 0;
    double achieved_gbps = 0;
    double line_gbps = 0;
    double fraction_of_line = 0;
};

/// Two-step forwarding through the loopback channel (100 Gbps offered on
/// one port; half the RPUs relay to the other half).
LoopbackPoint run_loopback(unsigned rpu_count, uint32_t size,
                           sim::Cycle warmup = 30'000, sim::Cycle window = 120'000);

struct BroadcastResult {
    double sparse_min_ns = 0;
    double sparse_max_ns = 0;
    double sparse_mean_ns = 0;
    double saturated_min_ns = 0;
    double saturated_max_ns = 0;
    double saturated_mean_ns = 0;
    uint64_t messages = 0;
};

BroadcastResult run_broadcast(unsigned rpu_count, sim::Cycle window = 100'000);

// --- Section 7.1: IPS case study ------------------------------------------------

enum class IpsMode {
    kHwReorder,  ///< reassembler in the LB, RR policy (pigasus2)
    kSwReorder,  ///< hash LB + software flow table (pigasus)
};

struct IpsPoint {
    uint32_t size = 0;
    IpsMode mode = IpsMode::kHwReorder;
    double achieved_gbps = 0;
    double achieved_mpps = 0;
    double line_gbps = 0;
    double cycles_per_packet = 0;  ///< Figure 9: rpus * clock / rate
    uint64_t matched_to_host = 0;  ///< ground-truth attacks delivered to the host
    uint64_t punted_to_host = 0;   ///< safe packets punted (SW reorder overflow)
    uint64_t expected_attacks = 0; ///< ground truth offered in the same window
};

struct IpsParams {
    IpsMode mode = IpsMode::kHwReorder;
    unsigned rpu_count = 8;
    uint32_t size = 1024;
    double attack_fraction = 0.01;
    double reorder_fraction = 0.003;
    unsigned rule_count = 64;
    uint64_t seed = 42;
    sim::Cycle warmup = 40'000;
    sim::Cycle window = 120'000;
};

IpsPoint run_ips(const IpsParams& p);

// --- Section 7.2: firewall case study --------------------------------------------

struct FirewallPoint {
    uint32_t size = 0;
    double achieved_gbps = 0;
    double line_gbps = 0;
    uint64_t blocked = 0;           ///< packets dropped by the blacklist
    uint64_t expected_blocked = 0;  ///< ground truth
    uint64_t forwarded = 0;
};

struct FirewallParams {
    unsigned rpu_count = 16;
    uint32_t size = 1024;
    double attack_fraction = 0.01;
    size_t blacklist_size = 1050;
    uint64_t seed = 7;
    sim::Cycle warmup = 30'000;
    sim::Cycle window = 120'000;
};

FirewallPoint run_firewall(const FirewallParams& p);

// --- Section 7.1.4: single-RPU cycle accounting ------------------------------------

/// Run one packet type through a single-RPU system at saturation and
/// report the steady-state core cycles consumed per packet (the paper's
/// "simulation results": 61 safe-TCP / 59 safe-UDP / 82 attack).
struct SingleRpuParams {
    IpsMode mode = IpsMode::kHwReorder;
    uint32_t size = 1024;
    bool udp = false;
    bool attack = false;
    unsigned rule_count = 64;
    uint64_t seed = 3;
};

double run_single_rpu_cycles_per_packet(const SingleRpuParams& p);

}  // namespace rosebud::exp

#endif  // ROSEBUD_CORE_EXPERIMENTS_H
