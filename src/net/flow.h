/// \file
/// Five-tuple flows and the flow hash used by the hash-based load balancer.
///
/// The paper's hash LB (Section 7.1.2) computes a 32-bit flow hash inline,
/// steers the flow by 3 bits of it (8 RPUs), and pads the 4-byte hash to
/// the front of the packet so firmware can reuse it. We use a CRC32C hash
/// over the canonicalized 5-tuple — real enough to exhibit the "non-perfect
/// load balancing among the RPUs due to non-uniformity of the flow hash"
/// the paper observes.

#ifndef ROSEBUD_NET_FLOW_H
#define ROSEBUD_NET_FLOW_H

#include <cstdint>
#include <functional>

#include "net/headers.h"
#include "net/packet.h"

namespace rosebud::net {

/// The classic connection 5-tuple.
struct FiveTuple {
    uint32_t src_ip = 0;
    uint32_t dst_ip = 0;
    uint16_t src_port = 0;
    uint16_t dst_port = 0;
    uint8_t protocol = 0;

    bool operator==(const FiveTuple&) const = default;
};

/// CRC32C (Castagnoli) over a byte buffer; table-driven, bit-reflected.
uint32_t crc32c(const uint8_t* data, size_t len, uint32_t seed = 0);

/// 32-bit flow hash of a 5-tuple (symmetric in direction: a flow and its
/// reverse hash identically, as middlebox LBs require).
uint32_t flow_hash(const FiveTuple& t);

/// Extract the 5-tuple from a parsed packet. Ports are 0 for non-TCP/UDP.
FiveTuple extract_five_tuple(const ParsedPacket& p);

/// Convenience: parse + extract + hash. Returns 0 for non-IP frames.
uint32_t packet_flow_hash(const Packet& pkt);

}  // namespace rosebud::net

template <>
struct std::hash<rosebud::net::FiveTuple> {
    size_t operator()(const rosebud::net::FiveTuple& t) const noexcept {
        return rosebud::net::flow_hash(t);
    }
};

#endif  // ROSEBUD_NET_FLOW_H
