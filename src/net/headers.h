/// \file
/// Ethernet / IPv4 / TCP / UDP header structures with big-endian
/// parse/serialize, the internet checksum, and a packet builder.
///
/// This is the substrate the RPU firmware, accelerators, trace generators
/// and the software-IDS baseline all share: real header bytes, real
/// checksums, so parsing in firmware exercises the same fields the paper's
/// RISC-V C code reads (Appendix B/C).

#ifndef ROSEBUD_NET_HEADERS_H
#define ROSEBUD_NET_HEADERS_H

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/packet.h"

namespace rosebud::net {

inline constexpr uint32_t kEthHeaderSize = 14;
inline constexpr uint32_t kIpv4HeaderSize = 20;  ///< without options
inline constexpr uint32_t kTcpHeaderSize = 20;   ///< without options
inline constexpr uint32_t kUdpHeaderSize = 8;

inline constexpr uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr uint16_t kEtherTypeArp = 0x0806;

inline constexpr uint8_t kIpProtoTcp = 6;
inline constexpr uint8_t kIpProtoUdp = 17;

/// Read a big-endian 16-bit value at `p`.
uint16_t load_be16(const uint8_t* p);
/// Read a big-endian 32-bit value at `p`.
uint32_t load_be32(const uint8_t* p);
/// Store a big-endian 16-bit value at `p`.
void store_be16(uint8_t* p, uint16_t v);
/// Store a big-endian 32-bit value at `p`.
void store_be32(uint8_t* p, uint32_t v);

/// RFC 1071 internet checksum over `len` bytes.
uint16_t internet_checksum(const uint8_t* data, size_t len);

/// RFC 1624 incremental checksum update: the checksum `check` of a header
/// in which 16-bit word `old_w` is replaced by `new_w`.
uint16_t checksum_fixup16(uint16_t check, uint16_t old_w, uint16_t new_w);

/// Incremental update for a 32-bit field replacement (two 16-bit fixups),
/// e.g. rewriting an IPv4 address, as NAT hardware does.
uint16_t checksum_fixup32(uint16_t check, uint32_t old_v, uint32_t new_v);

struct EthHeader {
    std::array<uint8_t, 6> dst{};
    std::array<uint8_t, 6> src{};
    uint16_t ether_type = 0;

    static EthHeader parse(const uint8_t* p);
    void serialize(uint8_t* p) const;
};

struct Ipv4Header {
    uint8_t version_ihl = 0x45;
    uint8_t dscp_ecn = 0;
    uint16_t total_length = 0;
    uint16_t identification = 0;
    uint16_t flags_fragment = 0;
    uint8_t ttl = 64;
    uint8_t protocol = 0;
    uint16_t checksum = 0;
    uint32_t src_ip = 0;
    uint32_t dst_ip = 0;

    uint32_t header_len() const { return uint32_t(version_ihl & 0x0f) * 4; }

    static Ipv4Header parse(const uint8_t* p);
    /// Serializes and fills in the header checksum.
    void serialize(uint8_t* p) const;
};

struct TcpHeader {
    uint16_t src_port = 0;
    uint16_t dst_port = 0;
    uint32_t seq = 0;
    uint32_t ack = 0;
    uint8_t data_offset = 5;  ///< in 32-bit words
    uint8_t flags = 0x10;     ///< ACK
    uint16_t window = 0xffff;
    uint16_t checksum = 0;
    uint16_t urgent = 0;

    uint32_t header_len() const { return uint32_t(data_offset) * 4; }

    static TcpHeader parse(const uint8_t* p);
    void serialize(uint8_t* p) const;
};

struct UdpHeader {
    uint16_t src_port = 0;
    uint16_t dst_port = 0;
    uint16_t length = 0;
    uint16_t checksum = 0;

    static UdpHeader parse(const uint8_t* p);
    void serialize(uint8_t* p) const;
};

/// A decoded view of a packet; offsets index into Packet::data.
struct ParsedPacket {
    EthHeader eth;
    bool has_ipv4 = false;
    Ipv4Header ipv4;
    bool has_tcp = false;
    TcpHeader tcp;
    bool has_udp = false;
    UdpHeader udp;
    uint32_t l3_offset = 0;
    uint32_t l4_offset = 0;
    uint32_t payload_offset = 0;  ///< 0 when no recognized L4
    uint32_t payload_len = 0;
};

/// Parse a frame. Returns nullopt for truncated/garbled packets.
std::optional<ParsedPacket> parse_packet(const Packet& pkt);

/// Dotted-quad to host-order uint32 ("10.1.2.3"). Throws sim::FatalError
/// on malformed input.
uint32_t parse_ipv4_addr(const std::string& s);

/// Host-order uint32 to dotted-quad.
std::string format_ipv4_addr(uint32_t ip);

/// Fluent builder that produces well-formed frames with valid lengths and
/// checksums, padding the payload to reach an exact frame size.
class PacketBuilder {
 public:
    PacketBuilder& eth_src(const std::array<uint8_t, 6>& mac);
    PacketBuilder& eth_dst(const std::array<uint8_t, 6>& mac);
    PacketBuilder& ipv4(uint32_t src_ip, uint32_t dst_ip);
    PacketBuilder& tcp(uint16_t sport, uint16_t dport, uint32_t seq = 0);
    PacketBuilder& tcp_flags(uint8_t flags);
    PacketBuilder& udp(uint16_t sport, uint16_t dport);
    PacketBuilder& payload(std::vector<uint8_t> bytes);
    PacketBuilder& payload_str(const std::string& s);

    /// Total frame size (headers + payload, no FCS). Payload is padded
    /// with a deterministic byte pattern to reach it; fatal if smaller
    /// than the headers + payload already supplied.
    PacketBuilder& frame_size(uint32_t size);

    /// Assemble the frame. May be called repeatedly (e.g. varying seq).
    PacketPtr build() const;

 private:
    EthHeader eth_{};
    bool has_ip_ = false;
    Ipv4Header ip_{};
    bool has_tcp_ = false;
    TcpHeader tcp_{};
    bool has_udp_ = false;
    UdpHeader udp_{};
    std::vector<uint8_t> payload_;
    uint32_t frame_size_ = 0;  ///< 0 = natural size
};

}  // namespace rosebud::net

#endif  // ROSEBUD_NET_HEADERS_H
