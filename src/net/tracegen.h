/// \file
/// Deterministic workload generation for all experiments.
///
/// Replaces the paper's tcpreplay + tester-FPGA injection scripts: a
/// TraceGenerator produces fixed-size TCP/UDP flows with a configurable
/// attack fraction (packets crafted to match IDS rules or firewall
/// blacklist entries) and a configurable TCP reordering fraction (the paper
/// uses 1% attack, 0.3% reordering).

#ifndef ROSEBUD_NET_TRACEGEN_H
#define ROSEBUD_NET_TRACEGEN_H

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "net/flow.h"
#include "net/headers.h"
#include "net/packet.h"
#include "net/rules.h"
#include "sim/random.h"

namespace rosebud::net {

/// Workload parameters (paper Sections 6-7).
struct TrafficSpec {
    /// Frame size in bytes excluding FCS (64..9000 in the paper).
    uint32_t packet_size = 1024;

    /// Fraction of packets crafted to match a rule / blacklist entry.
    double attack_fraction = 0.0;

    /// Fraction of consecutive same-flow TCP pairs delivered out of order.
    double reorder_fraction = 0.0;

    /// Number of concurrent flows.
    size_t flow_count = 512;

    /// Fraction of UDP flows (the rest are TCP).
    double udp_fraction = 0.1;

    /// PRNG seed; same seed => identical trace.
    uint64_t seed = 1;
};

/// State of one synthetic flow.
struct FlowState {
    FiveTuple tuple;
    bool is_udp = false;
    uint32_t next_seq = 1;      ///< TCP sequence number
    uint64_t packets_sent = 0;  ///< ground-truth per-flow ordering counter
    uint32_t attack_sid = 0;    ///< nonzero: this flow carries this rule's pattern
};

/// Streaming generator of a deterministic packet sequence.
///
/// If `rules` is set, attack packets embed the fast pattern of a
/// (deterministically chosen) rule in their payload and honor the rule's
/// protocol/port constraints. If `blacklist` is set, attack packets use a
/// blacklisted source IP instead. Both may be null for pure forwarding
/// workloads.
class TraceGenerator {
 public:
    TraceGenerator(const TrafficSpec& spec, const IdsRuleSet* rules = nullptr,
                   const Blacklist* blacklist = nullptr);

    /// Produce the next packet of the trace.
    PacketPtr next();

    /// Produce `n` packets.
    std::vector<PacketPtr> make(size_t n);

    /// Packets generated so far.
    uint64_t count() const { return next_id_; }

    const TrafficSpec& spec() const { return spec_; }

 private:
    PacketPtr craft(FlowState& flow, bool attack);

    TrafficSpec spec_;
    const IdsRuleSet* rules_;
    const Blacklist* blacklist_;
    sim::Rng rng_;
    std::vector<FlowState> flows_;
    std::deque<PacketPtr> pending_;  ///< reorder holding buffer
    uint64_t next_id_ = 0;
};

}  // namespace rosebud::net

#endif  // ROSEBUD_NET_TRACEGEN_H
