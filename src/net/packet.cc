#include "net/packet.h"

namespace rosebud::net {

PacketPtr
make_packet(uint32_t size) {
    auto p = std::make_shared<Packet>();
    p->data.assign(size, 0);
    return p;
}

double
line_rate_pps(uint32_t size, double gbps) {
    return gbps * 1e9 / (double(size + kWireOverhead) * 8.0);
}

double
line_rate_goodput_gbps(uint32_t size, double gbps) {
    return line_rate_pps(size, gbps) * double(size) * 8.0 / 1e9;
}

}  // namespace rosebud::net
