/// \file
/// Rule substrates for the two case studies.
///
/// * IdsRuleSet — a simplified Snort rule format (the subset Pigasus's
///   fast-pattern matcher consumes: protocol, optional destination port,
///   one or more `content` byte patterns, an `sid`). Parsed from text or
///   synthesized deterministically for experiments, mirroring the paper's
///   "packet trace based on the ruleset used for the generation of the
///   Pigasus accelerator".
/// * Blacklist — the firewall case study's IP blacklist (1050 entries from
///   the "emerging threats" rules in the paper), stored as prefixes and
///   queried in the same 9-bit-then-15-bit two-stage split the generated
///   Verilog used.

#ifndef ROSEBUD_NET_RULES_H
#define ROSEBUD_NET_RULES_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/random.h"

namespace rosebud::net {

/// Protocol selector in a rule header.
enum class RuleProto : uint8_t { kAny, kTcp, kUdp };

/// One content pattern within a rule (already de-hexed).
struct ContentPattern {
    std::vector<uint8_t> bytes;
    bool nocase = false;
};

/// A simplified Snort rule.
struct IdsRule {
    uint32_t sid = 0;
    RuleProto proto = RuleProto::kAny;
    std::optional<uint16_t> dst_port;  ///< nullopt = any
    std::vector<ContentPattern> contents;
    std::string msg;

    /// The "fast pattern": the longest content, which the hardware
    /// fast-pattern matcher keys on (as Pigasus/Snort do).
    const ContentPattern& fast_pattern() const;
};

/// A parsed/synthesized collection of IDS rules.
class IdsRuleSet {
 public:
    /// Parse rules in the simplified Snort syntax, e.g.
    ///   alert tcp any any -> any 80 (msg:"exploit"; content:"evil"; sid:7;)
    /// Unknown options are ignored; lines starting with '#' are comments.
    /// Throws sim::FatalError on malformed rules.
    static IdsRuleSet parse(const std::string& text);

    /// Deterministically synthesize `count` rules with random printable
    /// patterns of length [min_len, max_len] (default mirrors typical
    /// Snort fast patterns).
    static IdsRuleSet synthesize(size_t count, sim::Rng& rng, size_t min_len = 6,
                                 size_t max_len = 16);

    const std::vector<IdsRule>& rules() const { return rules_; }
    size_t size() const { return rules_.size(); }
    const IdsRule& at(size_t i) const { return rules_[i]; }

    /// Look up a rule by sid; nullptr if absent.
    const IdsRule* find_sid(uint32_t sid) const;

    void add(IdsRule r) { rules_.push_back(std::move(r)); }

 private:
    std::vector<IdsRule> rules_;
};

/// The firewall blacklist: a set of IPv4 prefixes.
class Blacklist {
 public:
    struct Entry {
        uint32_t prefix = 0;  ///< host order, low bits zeroed
        uint8_t length = 32;  ///< prefix length in bits
    };

    /// Parse one entry per line: "1.2.3.4", "1.2.3.0/24", or the
    /// emerging-threats style "block drop from 1.2.3.4 to any".
    /// '#' comments and blank lines are skipped.
    static Blacklist parse(const std::string& text);

    /// Synthesize `count` deterministic /32 entries (the paper's list has
    /// 1050 host entries).
    static Blacklist synthesize(size_t count, sim::Rng& rng);

    void add(uint32_t prefix, uint8_t length = 32);

    /// Reference (software) lookup: does `ip` match any entry?
    bool contains(uint32_t ip) const;

    const std::vector<Entry>& entries() const { return entries_; }
    size_t size() const { return entries_.size(); }

 private:
    std::vector<Entry> entries_;
};

}  // namespace rosebud::net

#endif  // ROSEBUD_NET_RULES_H
