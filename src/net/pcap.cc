#include "net/pcap.h"

#include <cstdio>
#include <cstring>

#include "sim/log.h"

namespace rosebud::net {

namespace {

constexpr uint32_t kMagicMicro = 0xa1b2c3d4;
constexpr uint32_t kMagicNano = 0xa1b23c4d;
constexpr uint32_t kLinkTypeEthernet = 1;

void
put32(std::vector<uint8_t>& out, uint32_t v) {
    out.push_back(uint8_t(v));
    out.push_back(uint8_t(v >> 8));
    out.push_back(uint8_t(v >> 16));
    out.push_back(uint8_t(v >> 24));
}

void
put16(std::vector<uint8_t>& out, uint16_t v) {
    out.push_back(uint8_t(v));
    out.push_back(uint8_t(v >> 8));
}

class Reader {
 public:
    Reader(const std::vector<uint8_t>& bytes) : bytes_(bytes) {}

    uint32_t u32() {
        if (pos_ + 4 > bytes_.size()) sim::fatal("pcap: truncated file");
        uint32_t v;
        std::memcpy(&v, &bytes_[pos_], 4);
        pos_ += 4;
        return swap_ ? __builtin_bswap32(v) : v;
    }

    uint16_t u16() {
        if (pos_ + 2 > bytes_.size()) sim::fatal("pcap: truncated file");
        uint16_t v;
        std::memcpy(&v, &bytes_[pos_], 2);
        pos_ += 2;
        return swap_ ? __builtin_bswap16(v) : v;
    }

    std::vector<uint8_t> blob(uint32_t len) {
        if (pos_ + len > bytes_.size()) sim::fatal("pcap: truncated record");
        std::vector<uint8_t> out(bytes_.begin() + long(pos_),
                                 bytes_.begin() + long(pos_ + len));
        pos_ += len;
        return out;
    }

    bool eof() const { return pos_ >= bytes_.size(); }
    void set_swap(bool s) { swap_ = s; }

 private:
    const std::vector<uint8_t>& bytes_;
    size_t pos_ = 0;
    bool swap_ = false;
};

}  // namespace

std::vector<uint8_t>
pcap_serialize(const std::vector<PcapRecord>& records, uint32_t snaplen) {
    std::vector<uint8_t> out;
    put32(out, kMagicNano);
    put16(out, 2);  // version 2.4
    put16(out, 4);
    put32(out, 0);  // thiszone
    put32(out, 0);  // sigfigs
    put32(out, snaplen);
    put32(out, kLinkTypeEthernet);
    for (const auto& rec : records) {
        uint64_t total_ns = uint64_t(rec.ts_ns < 0 ? 0 : rec.ts_ns);
        put32(out, uint32_t(total_ns / 1000000000ull));
        put32(out, uint32_t(total_ns % 1000000000ull));
        uint32_t caplen = uint32_t(std::min<size_t>(rec.data.size(), snaplen));
        put32(out, caplen);
        put32(out, uint32_t(rec.data.size()));
        out.insert(out.end(), rec.data.begin(), rec.data.begin() + caplen);
    }
    return out;
}

std::vector<PcapRecord>
pcap_parse(const std::vector<uint8_t>& bytes) {
    Reader r(bytes);
    uint32_t magic = r.u32();
    bool nano = false;
    if (magic == kMagicNano) {
        nano = true;
    } else if (magic == kMagicMicro) {
        nano = false;
    } else if (magic == __builtin_bswap32(kMagicNano)) {
        r.set_swap(true);
        nano = true;
    } else if (magic == __builtin_bswap32(kMagicMicro)) {
        r.set_swap(true);
        nano = false;
    } else {
        sim::fatal("pcap: bad magic");
    }
    uint16_t major = r.u16();
    r.u16();  // minor
    if (major != 2) sim::fatal("pcap: unsupported version");
    r.u32();  // thiszone
    r.u32();  // sigfigs
    r.u32();  // snaplen
    uint32_t linktype = r.u32();
    if (linktype != kLinkTypeEthernet) sim::fatal("pcap: only Ethernet linktype supported");

    std::vector<PcapRecord> out;
    while (!r.eof()) {
        PcapRecord rec;
        uint32_t sec = r.u32();
        uint32_t frac = r.u32();
        uint32_t caplen = r.u32();
        uint32_t origlen = r.u32();
        (void)origlen;
        rec.ts_ns = double(sec) * 1e9 + double(frac) * (nano ? 1.0 : 1e3);
        rec.data = r.blob(caplen);
        out.push_back(std::move(rec));
    }
    return out;
}

void
pcap_write_file(const std::string& path, const std::vector<PacketPtr>& packets) {
    std::vector<PcapRecord> records;
    records.reserve(packets.size());
    for (const auto& p : packets) records.push_back({p->tx_ns, p->data});
    auto bytes = pcap_serialize(records);
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (!f) sim::fatal("pcap: cannot open " + path + " for writing");
    size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    if (written != bytes.size()) sim::fatal("pcap: short write to " + path);
}

std::vector<PacketPtr>
pcap_read_file(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f) sim::fatal("pcap: cannot open " + path);
    std::fseek(f, 0, SEEK_END);
    long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<uint8_t> bytes(static_cast<size_t>(size), 0);
    size_t got = std::fread(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
    if (got != bytes.size()) sim::fatal("pcap: short read from " + path);

    std::vector<PacketPtr> out;
    uint64_t id = 0;
    for (auto& rec : pcap_parse(bytes)) {
        auto p = std::make_shared<Packet>();
        p->data = std::move(rec.data);
        p->tx_ns = rec.ts_ns;
        p->id = id++;
        out.push_back(std::move(p));
    }
    return out;
}

}  // namespace rosebud::net
