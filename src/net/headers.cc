#include "net/headers.h"

#include <cstring>
#include <sstream>

#include "sim/log.h"

namespace rosebud::net {

uint16_t
load_be16(const uint8_t* p) {
    return uint16_t(uint16_t(p[0]) << 8 | p[1]);
}

uint32_t
load_be32(const uint8_t* p) {
    return uint32_t(p[0]) << 24 | uint32_t(p[1]) << 16 | uint32_t(p[2]) << 8 | uint32_t(p[3]);
}

void
store_be16(uint8_t* p, uint16_t v) {
    p[0] = uint8_t(v >> 8);
    p[1] = uint8_t(v);
}

void
store_be32(uint8_t* p, uint32_t v) {
    p[0] = uint8_t(v >> 24);
    p[1] = uint8_t(v >> 16);
    p[2] = uint8_t(v >> 8);
    p[3] = uint8_t(v);
}

uint16_t
internet_checksum(const uint8_t* data, size_t len) {
    uint64_t sum = 0;
    size_t i = 0;
    for (; i + 1 < len; i += 2) sum += load_be16(data + i);
    if (i < len) sum += uint16_t(data[i]) << 8;
    while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
    return uint16_t(~sum);
}

uint16_t
checksum_fixup16(uint16_t check, uint16_t old_w, uint16_t new_w) {
    uint32_t sum = uint32_t(uint16_t(~check)) + uint32_t(uint16_t(~old_w)) + new_w;
    while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
    return uint16_t(~sum);
}

uint16_t
checksum_fixup32(uint16_t check, uint32_t old_v, uint32_t new_v) {
    check = checksum_fixup16(check, uint16_t(old_v >> 16), uint16_t(new_v >> 16));
    return checksum_fixup16(check, uint16_t(old_v), uint16_t(new_v));
}

EthHeader
EthHeader::parse(const uint8_t* p) {
    EthHeader h;
    std::memcpy(h.dst.data(), p, 6);
    std::memcpy(h.src.data(), p + 6, 6);
    h.ether_type = load_be16(p + 12);
    return h;
}

void
EthHeader::serialize(uint8_t* p) const {
    std::memcpy(p, dst.data(), 6);
    std::memcpy(p + 6, src.data(), 6);
    store_be16(p + 12, ether_type);
}

Ipv4Header
Ipv4Header::parse(const uint8_t* p) {
    Ipv4Header h;
    h.version_ihl = p[0];
    h.dscp_ecn = p[1];
    h.total_length = load_be16(p + 2);
    h.identification = load_be16(p + 4);
    h.flags_fragment = load_be16(p + 6);
    h.ttl = p[8];
    h.protocol = p[9];
    h.checksum = load_be16(p + 10);
    h.src_ip = load_be32(p + 12);
    h.dst_ip = load_be32(p + 16);
    return h;
}

void
Ipv4Header::serialize(uint8_t* p) const {
    p[0] = version_ihl;
    p[1] = dscp_ecn;
    store_be16(p + 2, total_length);
    store_be16(p + 4, identification);
    store_be16(p + 6, flags_fragment);
    p[8] = ttl;
    p[9] = protocol;
    store_be16(p + 10, 0);
    store_be32(p + 12, src_ip);
    store_be32(p + 16, dst_ip);
    store_be16(p + 10, internet_checksum(p, kIpv4HeaderSize));
}

TcpHeader
TcpHeader::parse(const uint8_t* p) {
    TcpHeader h;
    h.src_port = load_be16(p);
    h.dst_port = load_be16(p + 2);
    h.seq = load_be32(p + 4);
    h.ack = load_be32(p + 8);
    h.data_offset = p[12] >> 4;
    h.flags = p[13];
    h.window = load_be16(p + 14);
    h.checksum = load_be16(p + 16);
    h.urgent = load_be16(p + 18);
    return h;
}

void
TcpHeader::serialize(uint8_t* p) const {
    store_be16(p, src_port);
    store_be16(p + 2, dst_port);
    store_be32(p + 4, seq);
    store_be32(p + 8, ack);
    p[12] = uint8_t(data_offset << 4);
    p[13] = flags;
    store_be16(p + 14, window);
    store_be16(p + 16, checksum);
    store_be16(p + 18, urgent);
}

UdpHeader
UdpHeader::parse(const uint8_t* p) {
    UdpHeader h;
    h.src_port = load_be16(p);
    h.dst_port = load_be16(p + 2);
    h.length = load_be16(p + 4);
    h.checksum = load_be16(p + 6);
    return h;
}

void
UdpHeader::serialize(uint8_t* p) const {
    store_be16(p, src_port);
    store_be16(p + 2, dst_port);
    store_be16(p + 4, length);
    store_be16(p + 6, checksum);
}

std::optional<ParsedPacket>
parse_packet(const Packet& pkt) {
    const auto& d = pkt.data;
    if (d.size() < kEthHeaderSize) return std::nullopt;
    ParsedPacket out;
    out.eth = EthHeader::parse(d.data());
    out.l3_offset = kEthHeaderSize;
    if (out.eth.ether_type != kEtherTypeIpv4) return out;
    if (d.size() < out.l3_offset + kIpv4HeaderSize) return std::nullopt;
    out.has_ipv4 = true;
    out.ipv4 = Ipv4Header::parse(d.data() + out.l3_offset);
    if (out.ipv4.header_len() < kIpv4HeaderSize) return std::nullopt;
    out.l4_offset = out.l3_offset + out.ipv4.header_len();
    if (out.ipv4.protocol == kIpProtoTcp) {
        if (d.size() < out.l4_offset + kTcpHeaderSize) return std::nullopt;
        out.has_tcp = true;
        out.tcp = TcpHeader::parse(d.data() + out.l4_offset);
        out.payload_offset = out.l4_offset + out.tcp.header_len();
    } else if (out.ipv4.protocol == kIpProtoUdp) {
        if (d.size() < out.l4_offset + kUdpHeaderSize) return std::nullopt;
        out.has_udp = true;
        out.udp = UdpHeader::parse(d.data() + out.l4_offset);
        out.payload_offset = out.l4_offset + kUdpHeaderSize;
    }
    if (out.payload_offset != 0 && out.payload_offset <= d.size()) {
        out.payload_len = uint32_t(d.size()) - out.payload_offset;
    }
    return out;
}

uint32_t
parse_ipv4_addr(const std::string& s) {
    uint32_t parts[4];
    int n = 0;
    std::istringstream is(s);
    std::string tok;
    while (std::getline(is, tok, '.')) {
        if (n >= 4 || tok.empty() || tok.size() > 3) sim::fatal("bad IPv4 address: " + s);
        unsigned long v = 0;
        for (char c : tok) {
            if (c < '0' || c > '9') sim::fatal("bad IPv4 address: " + s);
            v = v * 10 + unsigned(c - '0');
        }
        if (v > 255) sim::fatal("bad IPv4 address: " + s);
        parts[n++] = uint32_t(v);
    }
    if (n != 4) sim::fatal("bad IPv4 address: " + s);
    return parts[0] << 24 | parts[1] << 16 | parts[2] << 8 | parts[3];
}

std::string
format_ipv4_addr(uint32_t ip) {
    std::ostringstream os;
    os << (ip >> 24) << "." << ((ip >> 16) & 0xff) << "." << ((ip >> 8) & 0xff) << "."
       << (ip & 0xff);
    return os.str();
}

PacketBuilder&
PacketBuilder::eth_src(const std::array<uint8_t, 6>& mac) {
    eth_.src = mac;
    return *this;
}

PacketBuilder&
PacketBuilder::eth_dst(const std::array<uint8_t, 6>& mac) {
    eth_.dst = mac;
    return *this;
}

PacketBuilder&
PacketBuilder::ipv4(uint32_t src_ip, uint32_t dst_ip) {
    has_ip_ = true;
    eth_.ether_type = kEtherTypeIpv4;
    ip_.src_ip = src_ip;
    ip_.dst_ip = dst_ip;
    return *this;
}

PacketBuilder&
PacketBuilder::tcp(uint16_t sport, uint16_t dport, uint32_t seq) {
    has_tcp_ = true;
    has_udp_ = false;
    ip_.protocol = kIpProtoTcp;
    tcp_.src_port = sport;
    tcp_.dst_port = dport;
    tcp_.seq = seq;
    return *this;
}

PacketBuilder&
PacketBuilder::tcp_flags(uint8_t flags) {
    tcp_.flags = flags;
    return *this;
}

PacketBuilder&
PacketBuilder::udp(uint16_t sport, uint16_t dport) {
    has_udp_ = true;
    has_tcp_ = false;
    ip_.protocol = kIpProtoUdp;
    udp_.src_port = sport;
    udp_.dst_port = dport;
    return *this;
}

PacketBuilder&
PacketBuilder::payload(std::vector<uint8_t> bytes) {
    payload_ = std::move(bytes);
    return *this;
}

PacketBuilder&
PacketBuilder::payload_str(const std::string& s) {
    payload_.assign(s.begin(), s.end());
    return *this;
}

PacketBuilder&
PacketBuilder::frame_size(uint32_t size) {
    frame_size_ = size;
    return *this;
}

PacketPtr
PacketBuilder::build() const {
    uint32_t hdr = kEthHeaderSize;
    if (has_ip_) hdr += kIpv4HeaderSize;
    if (has_tcp_) hdr += kTcpHeaderSize;
    if (has_udp_) hdr += kUdpHeaderSize;

    std::vector<uint8_t> pl = payload_;
    uint32_t size = frame_size_ ? frame_size_ : hdr + uint32_t(pl.size());
    if (size < hdr + pl.size()) {
        sim::fatal("frame_size smaller than headers + payload");
    }
    // Pad the payload deterministically (0xa5 then incrementing) so padded
    // bytes never accidentally form rule patterns.
    while (hdr + pl.size() < size) pl.push_back(uint8_t(0xa5 + pl.size()));

    auto p = make_packet(size);
    uint8_t* d = p->data.data();
    EthHeader eth = eth_;
    eth.serialize(d);
    uint32_t off = kEthHeaderSize;
    if (has_ip_) {
        Ipv4Header ip = ip_;
        ip.total_length = uint16_t(size - kEthHeaderSize);
        uint8_t* ip_at = d + off;
        off += kIpv4HeaderSize;
        if (has_tcp_) {
            TcpHeader t = tcp_;
            t.serialize(d + off);
            off += kTcpHeaderSize;
        } else if (has_udp_) {
            UdpHeader u = udp_;
            u.length = uint16_t(kUdpHeaderSize + pl.size());
            u.serialize(d + off);
            off += kUdpHeaderSize;
        }
        ip.serialize(ip_at);
    }
    std::memcpy(d + off, pl.data(), pl.size());
    return p;
}

}  // namespace rosebud::net
