/// \file
/// Packet buffer and simulation metadata.
///
/// A Packet carries the frame bytes (FCS excluded, as in the paper's size
/// conventions) plus out-of-band simulation metadata: generator timestamps
/// for latency measurement, the ingress interface, the load balancer's
/// destination assignment, and IDS match results appended by accelerators.

#ifndef ROSEBUD_NET_PACKET_H
#define ROSEBUD_NET_PACKET_H

#include <cstdint>
#include <memory>
#include <vector>

namespace rosebud::net {

/// Per-frame wire overhead in bytes: 4 FCS + 8 preamble/SFD + 12 IFG.
/// Paper packet sizes exclude the FCS, so a size-S packet occupies
/// S + kWireOverhead bytes of line time.
inline constexpr uint32_t kWireOverhead = 24;

/// Interface identifiers used in descriptors (paper Section 4.3): two
/// physical 100G ports, the host (virtual Ethernet / DRAM), and loopback.
enum class Iface : uint8_t {
    kPort0 = 0,
    kPort1 = 1,
    kHost = 2,
    kLoopback = 3,
};

/// A network packet plus simulation metadata.
struct Packet {
    /// Frame bytes starting at the Ethernet destination MAC; no FCS.
    std::vector<uint8_t> data;

    /// Monotonic id assigned by the generator (debug/tracking).
    uint64_t id = 0;

    /// Generator timestamp in simulated ns (latency measurement).
    double tx_ns = 0.0;

    /// Ingress interface at the DUT.
    Iface in_iface = Iface::kPort0;

    /// Egress interface chosen by firmware (descriptor "port" field).
    Iface out_iface = Iface::kPort0;

    /// Destination RPU chosen by the load balancer.
    uint8_t dest_rpu = 0;

    /// Packet-memory slot within the destination RPU (LB-assigned).
    uint8_t dest_slot = 0;

    /// Flow hash prepended by the hash-based LB (0 when unused).
    uint32_t lb_hash = 0;

    /// True when the hash LB padded the 4-byte hash in front of the frame.
    bool hash_prepended = false;

    /// IDS rule ids appended to the packet by the matcher accelerator.
    std::vector<uint32_t> matched_rules;

    /// True for packets the trace generator crafted to match a rule
    /// (ground truth for verification, not visible to the DUT).
    bool is_attack = false;

    /// Ground-truth flow sequence number used to verify reordering logic.
    uint64_t flow_seq = 0;

    uint32_t size() const { return uint32_t(data.size()); }

    /// Line occupancy in bytes, including FCS + preamble + IFG.
    uint32_t wire_size() const { return size() + kWireOverhead; }
};

using PacketPtr = std::shared_ptr<Packet>;

/// Convenience factory for an empty packet of `size` zero bytes.
PacketPtr make_packet(uint32_t size);

/// Theoretical maximum packet rate (packets/s) for `size`-byte packets on a
/// link of `gbps` (the dotted lines in Figures 7 and 8).
double line_rate_pps(uint32_t size, double gbps);

/// Effective data rate (Gbps of frame bytes) when `size`-byte packets fully
/// occupy a `gbps` link; accounts for wire overhead.
double line_rate_goodput_gbps(uint32_t size, double gbps);

}  // namespace rosebud::net

#endif  // ROSEBUD_NET_PACKET_H
