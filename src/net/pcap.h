/// \file
/// Classic libpcap (.pcap) file reading and writing.
///
/// The paper's experiment workflow generates attack traces as pcap files
/// and replays them with tcpreplay; this module gives the simulator the
/// same interchange format: traces generated here can be inspected with
/// tcpdump/Wireshark, and externally captured pcaps can be replayed into
/// the simulated middlebox.
///
/// Supports the classic format (magic 0xa1b2c3d4, microsecond timestamps)
/// in either byte order plus the nanosecond variant (0xa1b23c4d), LINKTYPE
/// Ethernet.

#ifndef ROSEBUD_NET_PCAP_H
#define ROSEBUD_NET_PCAP_H

#include <cstdint>
#include <string>
#include <vector>

#include "net/packet.h"

namespace rosebud::net {

/// One captured record: frame bytes + capture timestamp.
struct PcapRecord {
    double ts_ns = 0;  ///< capture timestamp in nanoseconds
    std::vector<uint8_t> data;
};

/// Serialize records into pcap file bytes (classic format, little-endian,
/// nanosecond timestamps).
std::vector<uint8_t> pcap_serialize(const std::vector<PcapRecord>& records,
                                    uint32_t snaplen = 65535);

/// Parse pcap file bytes. Throws sim::FatalError on malformed input.
/// Handles both byte orders and both microsecond/nanosecond magics.
std::vector<PcapRecord> pcap_parse(const std::vector<uint8_t>& bytes);

/// Write packets (with their simulation timestamps) to a pcap file on disk.
void pcap_write_file(const std::string& path, const std::vector<PacketPtr>& packets);

/// Load a pcap file from disk into packets (tx_ns = capture timestamp).
std::vector<PacketPtr> pcap_read_file(const std::string& path);

}  // namespace rosebud::net

#endif  // ROSEBUD_NET_PCAP_H
