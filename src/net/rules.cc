#include "net/rules.h"

#include <cctype>
#include <sstream>

#include "net/headers.h"
#include "sim/log.h"

namespace rosebud::net {

namespace {

/// Split "content" option payload, handling |AB CD| hex escapes.
std::vector<uint8_t>
decode_content(const std::string& s) {
    std::vector<uint8_t> out;
    size_t i = 0;
    while (i < s.size()) {
        if (s[i] == '|') {
            size_t end = s.find('|', i + 1);
            if (end == std::string::npos) sim::fatal("unterminated hex in content: " + s);
            std::string hex = s.substr(i + 1, end - i - 1);
            std::istringstream hs(hex);
            std::string byte;
            while (hs >> byte) {
                out.push_back(uint8_t(std::stoul(byte, nullptr, 16)));
            }
            i = end + 1;
        } else {
            out.push_back(uint8_t(s[i++]));
        }
    }
    return out;
}

/// Extract the quoted or bare value of `option:` from a rule body.
std::vector<std::pair<std::string, std::string>>
split_options(const std::string& body) {
    std::vector<std::pair<std::string, std::string>> opts;
    size_t i = 0;
    while (i < body.size()) {
        while (i < body.size() && (body[i] == ' ' || body[i] == ';')) ++i;
        if (i >= body.size()) break;
        size_t colon = body.find(':', i);
        size_t semi = body.find(';', i);
        if (semi == std::string::npos) semi = body.size();
        if (colon == std::string::npos || colon > semi) {
            // Flag option with no value (e.g. "nocase").
            opts.emplace_back(body.substr(i, semi - i), "");
            i = semi + 1;
            continue;
        }
        std::string key = body.substr(i, colon - i);
        // The value may contain quoted ';', so respect quotes.
        size_t v = colon + 1;
        std::string val;
        if (v < body.size() && body[v] == '"') {
            size_t endq = body.find('"', v + 1);
            if (endq == std::string::npos) sim::fatal("unterminated quote in rule: " + body);
            val = body.substr(v + 1, endq - v - 1);
            semi = body.find(';', endq);
            if (semi == std::string::npos) semi = body.size();
        } else {
            val = body.substr(v, semi - v);
        }
        opts.emplace_back(key, val);
        i = semi + 1;
    }
    return opts;
}

}  // namespace

const ContentPattern&
IdsRule::fast_pattern() const {
    if (contents.empty()) sim::fatal("rule has no content patterns");
    const ContentPattern* best = &contents[0];
    for (const auto& c : contents) {
        if (c.bytes.size() > best->bytes.size()) best = &c;
    }
    return *best;
}

IdsRuleSet
IdsRuleSet::parse(const std::string& text) {
    IdsRuleSet set;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        // Trim and skip comments/blank lines.
        size_t start = line.find_first_not_of(" \t\r");
        if (start == std::string::npos || line[start] == '#') continue;
        line = line.substr(start);

        size_t open = line.find('(');
        size_t close = line.rfind(')');
        if (open == std::string::npos || close == std::string::npos || close < open) {
            sim::fatal("malformed rule (missing body): " + line);
        }
        std::istringstream hdr(line.substr(0, open));
        std::string action, proto, src_ip, src_port, arrow, dst_ip, dst_port;
        hdr >> action >> proto >> src_ip >> src_port >> arrow >> dst_ip >> dst_port;
        if (action != "alert" && action != "drop" && action != "block") {
            sim::fatal("unsupported rule action: " + action);
        }

        IdsRule r;
        if (proto == "tcp") {
            r.proto = RuleProto::kTcp;
        } else if (proto == "udp") {
            r.proto = RuleProto::kUdp;
        } else if (proto == "ip" || proto == "any") {
            r.proto = RuleProto::kAny;
        } else {
            sim::fatal("unsupported rule protocol: " + proto);
        }
        if (!dst_port.empty() && dst_port != "any") {
            r.dst_port = uint16_t(std::stoul(dst_port));
        }

        for (auto& [key, val] : split_options(line.substr(open + 1, close - open - 1))) {
            if (key == "content") {
                ContentPattern p;
                p.bytes = decode_content(val);
                r.contents.push_back(std::move(p));
            } else if (key == "nocase" && !r.contents.empty()) {
                r.contents.back().nocase = true;
            } else if (key == "sid") {
                r.sid = uint32_t(std::stoul(val));
            } else if (key == "msg") {
                r.msg = val;
            }
            // Other options (rev, classtype, ...) are ignored.
        }
        if (r.contents.empty()) sim::fatal("rule without content: " + line);
        if (r.sid == 0) sim::fatal("rule without sid: " + line);
        set.add(std::move(r));
    }
    return set;
}

IdsRuleSet
IdsRuleSet::synthesize(size_t count, sim::Rng& rng, size_t min_len, size_t max_len) {
    IdsRuleSet set;
    static const char kAlphabet[] = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
                                    "0123456789_/-.";
    for (size_t i = 0; i < count; ++i) {
        IdsRule r;
        r.sid = uint32_t(1000 + i);
        double which = rng.uniform();
        r.proto = which < 0.7 ? RuleProto::kTcp : (which < 0.9 ? RuleProto::kUdp : RuleProto::kAny);
        if (rng.chance(0.5)) r.dst_port = uint16_t(rng.range(1, 65535));
        size_t n_contents = rng.chance(0.2) ? 2 : 1;
        for (size_t c = 0; c < n_contents; ++c) {
            ContentPattern p;
            size_t len = rng.range(min_len, max_len);
            for (size_t b = 0; b < len; ++b) {
                p.bytes.push_back(uint8_t(kAlphabet[rng.below(sizeof(kAlphabet) - 1)]));
            }
            r.contents.push_back(std::move(p));
        }
        r.msg = "synthetic rule " + std::to_string(r.sid);
        set.add(std::move(r));
    }
    return set;
}

const IdsRule*
IdsRuleSet::find_sid(uint32_t sid) const {
    for (const auto& r : rules_) {
        if (r.sid == sid) return &r;
    }
    return nullptr;
}

Blacklist
Blacklist::parse(const std::string& text) {
    Blacklist bl;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        size_t start = line.find_first_not_of(" \t\r");
        if (start == std::string::npos || line[start] == '#') continue;
        std::istringstream ls(line);
        std::string tok;
        std::string addr;
        // Accept "1.2.3.4", "1.2.3.0/24", or "block drop from 1.2.3.4 to any".
        while (ls >> tok) {
            if (!tok.empty() && std::isdigit(uint8_t(tok[0]))) {
                addr = tok;
                break;
            }
        }
        if (addr.empty()) continue;
        uint8_t len = 32;
        size_t slash = addr.find('/');
        if (slash != std::string::npos) {
            len = uint8_t(std::stoul(addr.substr(slash + 1)));
            addr = addr.substr(0, slash);
        }
        bl.add(parse_ipv4_addr(addr), len);
    }
    return bl;
}

Blacklist
Blacklist::synthesize(size_t count, sim::Rng& rng) {
    Blacklist bl;
    while (bl.size() < count) {
        // Public-ish address space, avoiding 10/8 used for safe traffic.
        uint32_t ip = uint32_t(rng.range(0x0b000000, 0xdfffffff));
        if (!bl.contains(ip)) bl.add(ip, 32);
    }
    return bl;
}

void
Blacklist::add(uint32_t prefix, uint8_t length) {
    if (length > 32) sim::fatal("bad prefix length");
    uint32_t mask = length == 0 ? 0 : ~uint32_t(0) << (32 - length);
    entries_.push_back(Entry{prefix & mask, length});
}

bool
Blacklist::contains(uint32_t ip) const {
    for (const auto& e : entries_) {
        uint32_t mask = e.length == 0 ? 0 : ~uint32_t(0) << (32 - e.length);
        if ((ip & mask) == e.prefix) return true;
    }
    return false;
}

}  // namespace rosebud::net
