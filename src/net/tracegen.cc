#include "net/tracegen.h"

#include <algorithm>

#include "sim/log.h"

namespace rosebud::net {

TraceGenerator::TraceGenerator(const TrafficSpec& spec, const IdsRuleSet* rules,
                               const Blacklist* blacklist)
    : spec_(spec), rules_(rules), blacklist_(blacklist), rng_(spec.seed) {
    if (spec_.flow_count == 0) sim::fatal("flow_count must be > 0");
    flows_.reserve(spec_.flow_count);
    for (size_t i = 0; i < spec_.flow_count; ++i) {
        FlowState f;
        // Safe traffic lives in 10/8; the synthesized blacklist avoids it.
        f.tuple.src_ip = 0x0a000000 | uint32_t(rng_.below(1 << 24));
        f.tuple.dst_ip = 0x0a000000 | uint32_t(rng_.below(1 << 24));
        f.tuple.src_port = uint16_t(rng_.range(1024, 65535));
        f.tuple.dst_port = uint16_t(rng_.range(1, 65535));
        f.is_udp = rng_.chance(spec_.udp_fraction);
        f.tuple.protocol = f.is_udp ? kIpProtoUdp : kIpProtoTcp;
        // A subset of flows is designated to carry attack packets; their
        // port/protocol must satisfy the chosen rule so the pattern
        // actually triggers (mirrors idstools-crafted attack pcaps).
        if (rules_ && !rules_->rules().empty() && rng_.chance(0.25)) {
            const IdsRule& r = rules_->at(rng_.below(rules_->size()));
            f.attack_sid = r.sid;
            if (r.proto == RuleProto::kUdp) {
                f.is_udp = true;
                f.tuple.protocol = kIpProtoUdp;
            } else if (r.proto == RuleProto::kTcp) {
                f.is_udp = false;
                f.tuple.protocol = kIpProtoTcp;
            }
            if (r.dst_port) f.tuple.dst_port = *r.dst_port;
        }
        flows_.push_back(f);
    }
}

PacketPtr
TraceGenerator::craft(FlowState& flow, bool attack) {
    uint32_t hdr = kEthHeaderSize + kIpv4HeaderSize +
                   (flow.is_udp ? kUdpHeaderSize : kTcpHeaderSize);
    uint32_t size = std::max(spec_.packet_size, hdr + 8);
    uint32_t payload_len = size - hdr;

    std::vector<uint8_t> payload(payload_len, 0);
    for (uint32_t i = 0; i < payload_len; ++i) payload[i] = uint8_t(0x80 | (i * 7));

    uint32_t src_ip = flow.tuple.src_ip;
    bool attack_effective = false;
    if (attack) {
        if (blacklist_ && !blacklist_->entries().empty()) {
            const auto& e = blacklist_->entries()[rng_.below(blacklist_->size())];
            src_ip = e.prefix | (e.length < 32
                                     ? uint32_t(rng_.below(1ull << (32 - e.length)))
                                     : 0);
            attack_effective = true;
        }
        // Only flows set up to satisfy a rule's protocol/port constraints
        // can carry that rule's pattern (idstools crafts matching flows).
        if (rules_ && flow.attack_sid != 0) {
            const IdsRule* rule = rules_->find_sid(flow.attack_sid);
            if (rule) {
                // Embed *every* content of the rule back-to-back so the
                // verification stage also fires.
                size_t total = 0;
                for (const auto& c : rule->contents) total += c.bytes.size();
                if (total <= payload_len) {
                    size_t off = rng_.below(payload_len - total + 1);
                    for (const auto& c : rule->contents) {
                        std::copy(c.bytes.begin(), c.bytes.end(), payload.begin() + off);
                        off += c.bytes.size();
                    }
                    attack_effective = true;
                }
            }
        }
    }

    PacketBuilder b;
    b.eth_src({0x02, 0, 0, 0, 0, 1}).eth_dst({0x02, 0, 0, 0, 0, 2});
    b.ipv4(src_ip, flow.tuple.dst_ip);
    if (flow.is_udp) {
        b.udp(flow.tuple.src_port, flow.tuple.dst_port);
    } else {
        b.tcp(flow.tuple.src_port, flow.tuple.dst_port, flow.next_seq);
        flow.next_seq += payload_len;
    }
    b.payload(std::move(payload));
    b.frame_size(size);

    PacketPtr p = b.build();
    p->id = next_id_++;
    p->is_attack = attack_effective;
    p->flow_seq = flow.packets_sent++;
    return p;
}

PacketPtr
TraceGenerator::next() {
    if (!pending_.empty()) {
        PacketPtr p = pending_.front();
        pending_.pop_front();
        return p;
    }

    bool attack = rng_.chance(spec_.attack_fraction);
    FlowState* flow = &flows_[rng_.below(flows_.size())];
    if (attack && rules_ && !blacklist_ && flow->attack_sid == 0) {
        // Attacks ride flows crafted to satisfy their rule; redraw among
        // the attack-capable flows (falls back to safe if none exist).
        FlowState* candidate = nullptr;
        for (size_t tries = 0; tries < 8 && !candidate; ++tries) {
            FlowState& f = flows_[rng_.below(flows_.size())];
            if (f.attack_sid != 0) candidate = &f;
        }
        if (candidate) {
            flow = candidate;
        } else {
            attack = false;
        }
    }
    PacketPtr p = craft(*flow, attack);

    // Reordering: emit the *next* packet of the same flow first, holding
    // this one back — a one-slot swap, the typical middlebox reordering
    // pattern the paper injects at 0.3%.
    if (!flow->is_udp && spec_.reorder_fraction > 0 && rng_.chance(spec_.reorder_fraction)) {
        PacketPtr later = craft(*flow, false);
        pending_.push_back(p);
        return later;
    }
    return p;
}

std::vector<PacketPtr>
TraceGenerator::make(size_t n) {
    std::vector<PacketPtr> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) out.push_back(next());
    return out;
}

}  // namespace rosebud::net
