/// \file
/// Multi-pattern string matching (Aho-Corasick automaton).
///
/// This is the functional heart shared by three components: the Pigasus
/// string-matching-engine accelerator model (which matches for real, with
/// FPGA streaming timing layered on top), the Snort-like software baseline,
/// and trace-verification in tests. Building the automaton corresponds to
/// the rule-compilation step of the paper's workflow.

#ifndef ROSEBUD_NET_PATMATCH_H
#define ROSEBUD_NET_PATMATCH_H

#include <cstdint>
#include <string>
#include <vector>

namespace rosebud::net {

/// A match emitted by the automaton.
struct PatternMatch {
    uint32_t pattern_id = 0;  ///< index passed at add_pattern time
    uint32_t end_offset = 0;  ///< offset one past the last matched byte
};

/// Aho-Corasick automaton over raw bytes. Build once, scan many.
class AhoCorasick {
 public:
    AhoCorasick() = default;

    /// Register a pattern; `id` is reported on match. Empty patterns are
    /// ignored. Must be called before finalize().
    void add_pattern(const std::vector<uint8_t>& bytes, uint32_t id);

    /// Build failure links. Scanning before finalize() is invalid.
    void finalize();

    /// Scan `len` bytes; append every match to `out`. Returns the number
    /// of matches found.
    size_t scan(const uint8_t* data, size_t len, std::vector<PatternMatch>& out) const;

    /// True if any pattern matches (early-exit scan).
    bool matches_any(const uint8_t* data, size_t len) const;

    size_t pattern_count() const { return pattern_count_; }
    size_t node_count() const { return nodes_.size(); }
    bool finalized() const { return finalized_; }

 private:
    struct Node {
        int next[256];
        std::vector<uint32_t> outputs;
        Node() { for (int& n : next) n = -1; }
    };

    std::vector<Node> nodes_{1};
    size_t pattern_count_ = 0;
    bool finalized_ = false;
};

}  // namespace rosebud::net

#endif  // ROSEBUD_NET_PATMATCH_H
