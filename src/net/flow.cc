#include "net/flow.h"

#include <algorithm>
#include <array>

namespace rosebud::net {

namespace {

std::array<uint32_t, 256>
make_crc32c_table() {
    std::array<uint32_t, 256> table{};
    constexpr uint32_t poly = 0x82f63b78;  // reflected CRC32C
    for (uint32_t i = 0; i < 256; ++i) {
        uint32_t crc = i;
        for (int b = 0; b < 8; ++b) crc = (crc >> 1) ^ (poly & (0u - (crc & 1)));
        table[i] = crc;
    }
    return table;
}

const std::array<uint32_t, 256> kCrcTable = make_crc32c_table();

}  // namespace

uint32_t
crc32c(const uint8_t* data, size_t len, uint32_t seed) {
    uint32_t crc = ~seed;
    for (size_t i = 0; i < len; ++i) crc = (crc >> 8) ^ kCrcTable[(crc ^ data[i]) & 0xff];
    return ~crc;
}

uint32_t
flow_hash(const FiveTuple& t) {
    // Canonicalize direction so that (a->b) and (b->a) hash identically.
    uint32_t ip_lo = std::min(t.src_ip, t.dst_ip);
    uint32_t ip_hi = std::max(t.src_ip, t.dst_ip);
    uint16_t port_lo;
    uint16_t port_hi;
    if (t.src_ip < t.dst_ip || (t.src_ip == t.dst_ip && t.src_port <= t.dst_port)) {
        port_lo = t.src_port;
        port_hi = t.dst_port;
    } else {
        port_lo = t.dst_port;
        port_hi = t.src_port;
    }
    uint8_t buf[13];
    store_be32(buf, ip_lo);
    store_be32(buf + 4, ip_hi);
    store_be16(buf + 8, port_lo);
    store_be16(buf + 10, port_hi);
    buf[12] = t.protocol;
    return crc32c(buf, sizeof(buf));
}

FiveTuple
extract_five_tuple(const ParsedPacket& p) {
    FiveTuple t;
    if (!p.has_ipv4) return t;
    t.src_ip = p.ipv4.src_ip;
    t.dst_ip = p.ipv4.dst_ip;
    t.protocol = p.ipv4.protocol;
    if (p.has_tcp) {
        t.src_port = p.tcp.src_port;
        t.dst_port = p.tcp.dst_port;
    } else if (p.has_udp) {
        t.src_port = p.udp.src_port;
        t.dst_port = p.udp.dst_port;
    }
    return t;
}

uint32_t
packet_flow_hash(const Packet& pkt) {
    auto parsed = parse_packet(pkt);
    if (!parsed || !parsed->has_ipv4) return 0;
    return flow_hash(extract_five_tuple(*parsed));
}

}  // namespace rosebud::net
