#include "net/patmatch.h"

#include <queue>

#include "sim/log.h"

namespace rosebud::net {

void
AhoCorasick::add_pattern(const std::vector<uint8_t>& bytes, uint32_t id) {
    if (finalized_) sim::panic("AhoCorasick: add_pattern after finalize");
    if (bytes.empty()) return;
    int cur = 0;
    for (uint8_t b : bytes) {
        if (nodes_[cur].next[b] < 0) {
            nodes_[cur].next[b] = int(nodes_.size());
            nodes_.emplace_back();
        }
        cur = nodes_[cur].next[b];
    }
    nodes_[cur].outputs.push_back(id);
    ++pattern_count_;
}

void
AhoCorasick::finalize() {
    // Convert the trie into a DFA with failure links folded into `next`
    // (goto function totalization), BFS order.
    std::vector<int> fail(nodes_.size(), 0);
    std::queue<int> q;
    for (int b = 0; b < 256; ++b) {
        int v = nodes_[0].next[b];
        if (v < 0) {
            nodes_[0].next[b] = 0;
        } else {
            fail[v] = 0;
            q.push(v);
        }
    }
    while (!q.empty()) {
        int u = q.front();
        q.pop();
        for (uint32_t id : nodes_[fail[u]].outputs) nodes_[u].outputs.push_back(id);
        for (int b = 0; b < 256; ++b) {
            int v = nodes_[u].next[b];
            if (v < 0) {
                nodes_[u].next[b] = nodes_[fail[u]].next[b];
            } else {
                fail[v] = nodes_[fail[u]].next[b];
                q.push(v);
            }
        }
    }
    finalized_ = true;
}

size_t
AhoCorasick::scan(const uint8_t* data, size_t len, std::vector<PatternMatch>& out) const {
    if (!finalized_) sim::panic("AhoCorasick: scan before finalize");
    size_t found = 0;
    int state = 0;
    for (size_t i = 0; i < len; ++i) {
        state = nodes_[state].next[data[i]];
        for (uint32_t id : nodes_[state].outputs) {
            out.push_back({id, uint32_t(i + 1)});
            ++found;
        }
    }
    return found;
}

bool
AhoCorasick::matches_any(const uint8_t* data, size_t len) const {
    if (!finalized_) sim::panic("AhoCorasick: scan before finalize");
    int state = 0;
    for (size_t i = 0; i < len; ++i) {
        state = nodes_[state].next[data[i]];
        if (!nodes_[state].outputs.empty()) return true;
    }
    return false;
}

}  // namespace rosebud::net
