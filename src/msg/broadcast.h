/// \file
/// Inter-RPU broadcast messaging (paper Section 4.4, evaluated in 6.3).
///
/// A write to an RPU's broadcast region becomes a message in that RPU's
/// 18-deep TX FIFO (16 FIFO entries + 2 PR-boundary registers). A central
/// work-conserving round-robin arbiter drains one message per grant
/// period; every drained message is delivered to ALL RPUs simultaneously
/// after a distribution-pipeline delay. Under saturation each of N cores
/// gets a grant every N cycles, which is exactly the paper's observed
/// 16 x 18 cycles (1152 ns) of queueing in the 16-RPU design; sparse
/// messages see only the pipeline (72-92 ns).

#ifndef ROSEBUD_MSG_BROADCAST_H
#define ROSEBUD_MSG_BROADCAST_H

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "sim/fifo.h"
#include "sim/kernel.h"
#include "sim/resources.h"
#include "sim/stats.h"

namespace rosebud::msg {

class BroadcastNetwork : public sim::Component {
 public:
    struct Config {
        unsigned rpu_count = 16;
        unsigned tx_fifo_depth = 18;       ///< 16 FIFO + 2 PR border registers
        unsigned pipeline_min_cycles = 17; ///< distribution pipe
        unsigned pipeline_jitter = 6;      ///< deterministic path-length spread
        /// Sustained grant cost in tenths of a cycle: the arbiter issues at
        /// most 10/grant_interval_tenths grants per cycle. Models the
        /// control-channel FIFO/register bubbles the paper attributes the
        /// above-1152ns residual latency to (Section 6.3).
        unsigned grant_interval_tenths = 13;
    };

    /// Delivery callback: (offset, value) fanned out to one RPU.
    using DeliverFn = std::function<void(uint32_t offset, uint32_t value)>;

    BroadcastNetwork(sim::Kernel& kernel, sim::Stats& stats, const Config& config);

    /// Register RPU `i`'s delivery sink (System wiring).
    void set_deliver(unsigned rpu, DeliverFn fn);

    /// Called from an RPU's blocked-store path. Returns false when the
    /// sender's FIFO is full (the core's store retries).
    bool try_send(uint8_t rpu, uint32_t offset, uint32_t value);

    /// Observation hook fired once per message at delivery time (used by
    /// the Section 6.3 latency measurement): (offset, value, now).
    using DeliveryProbe = std::function<void(uint32_t, uint32_t, sim::Cycle)>;
    void set_delivery_probe(DeliveryProbe fn) { probe_ = std::move(fn); }

    void tick() override;

    /// Idle when nothing is queued or in flight and the grant credit has
    /// saturated (the only per-tick state left). The TX FIFOs' wake edges
    /// (we declared kRead ports on them) re-arm the arbiter on a push.
    bool quiescent() const override;

    /// Messages delivered so far.
    uint64_t delivered() const { return delivered_; }

    sim::ResourceFootprint resources() const;

 private:
    struct Msg {
        uint32_t offset;
        uint32_t value;
    };
    struct InFlight {
        Msg msg;
        sim::Cycle deliver_at;
    };

    Config config_;
    sim::Stats& stats_;
    /// Per-sender registered TX FIFOs: the sending RPU pushes while this
    /// component pops, so they use registered (order-independent) credit.
    std::vector<std::unique_ptr<sim::Fifo<Msg>>> tx_fifos_;
    std::vector<DeliverFn> sinks_;
    std::deque<InFlight> in_flight_;
    unsigned rr_ = 0;
    unsigned grant_credit_ = 0;
    uint64_t delivered_ = 0;
    DeliveryProbe probe_;
    sim::Counter* ctr_tx_blocked_;
    sim::Counter* ctr_granted_;
};

}  // namespace rosebud::msg

#endif  // ROSEBUD_MSG_BROADCAST_H
