#include "msg/broadcast.h"

namespace rosebud::msg {

BroadcastNetwork::BroadcastNetwork(sim::Kernel& kernel, sim::Stats& stats,
                                   const Config& config)
    : sim::Component(kernel, "broadcast"),
      config_(config),
      stats_(stats),
      sinks_(config.rpu_count),
      ctr_tx_blocked_(&stats.counter("broadcast.tx_blocked")),
      ctr_granted_(&stats.counter("broadcast.granted")) {
    tx_fifos_.reserve(config.rpu_count);
    for (unsigned i = 0; i < config.rpu_count; ++i) {
        std::string net = "broadcast.tx" + std::to_string(i);
        tx_fifos_.push_back(std::make_unique<sim::Fifo<Msg>>(
            kernel, net, config.tx_fifo_depth, 64u, 0u,
            sim::CreditPolicy::kRegistered));
        kernel.declare_port({name(), net, sim::PortRecord::kRead, 64, 0});
    }
}

void
BroadcastNetwork::set_deliver(unsigned rpu, DeliverFn fn) {
    if (rpu < sinks_.size()) sinks_[rpu] = std::move(fn);
}

bool
BroadcastNetwork::try_send(uint8_t rpu, uint32_t offset, uint32_t value) {
    if (rpu >= tx_fifos_.size()) return false;
    if (!tx_fifos_[rpu]->push({offset, value})) {
        ctr_tx_blocked_->add();
        return false;
    }
    return true;
}

bool
BroadcastNetwork::quiescent() const {
    if (!in_flight_.empty()) return false;
    // The grant credit accrues 10/cycle up to interval+10; once saturated
    // an idle tick is the identity, so sleeping is exact.
    if (grant_credit_ < config_.grant_interval_tenths + 10) return false;
    for (const auto& f : tx_fifos_)
        if (f->size() != 0) return false;
    return true;
}

void
BroadcastNetwork::tick() {
    // Arbitration: in saturation every core is granted once per rpu_count
    // cycles (strict rotation); when only some cores have traffic the
    // rotation still advances one position per cycle, so a lone sender is
    // granted within at most rpu_count cycles — matching the paper's
    // "sent out every 16 cycles due to round-robin arbitration".
    grant_credit_ = std::min(grant_credit_ + 10, config_.grant_interval_tenths + 10);
    if (grant_credit_ >= config_.grant_interval_tenths) {
        for (unsigned i = 0; i < config_.rpu_count; ++i) {
            unsigned cand = (rr_ + i) % config_.rpu_count;
            if (tx_fifos_[cand]->empty()) continue;
            Msg m = tx_fifos_[cand]->pop();
            // Deterministic path-length spread across the distribution pipe.
            sim::Cycle delay =
                config_.pipeline_min_cycles +
                (now() + cand) % (config_.pipeline_jitter ? config_.pipeline_jitter : 1);
            in_flight_.push_back({m, now() + delay});
            ctr_granted_->add();
            rr_ = (cand + 1) % config_.rpu_count;
            grant_credit_ -= config_.grant_interval_tenths;
            break;
        }
    }

    while (!in_flight_.empty() && in_flight_.front().deliver_at <= now()) {
        const Msg& m = in_flight_.front().msg;
        for (auto& sink : sinks_) {
            if (sink) sink(m.offset, m.value);
        }
        if (probe_) probe_(m.offset, m.value, now());
        ++delivered_;
        in_flight_.pop_front();
    }
}

sim::ResourceFootprint
BroadcastNetwork::resources() const {
    // Part of the "Switching" row in Tables 1-2 (control channels).
    uint64_t n = config_.rpu_count;
    return {.luts = 120 * n, .regs = 300 * n};
}

}  // namespace rosebud::msg
