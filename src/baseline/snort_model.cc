#include "baseline/snort_model.h"

#include <algorithm>

#include "net/headers.h"

namespace rosebud::baseline {

SnortModel::SnortModel(const net::IdsRuleSet& rules) : SnortModel(rules, Config{}) {}

namespace {

uint8_t
fold(uint8_t b) {
    return b >= 'A' && b <= 'Z' ? uint8_t(b + 32) : b;
}

bool
contains_nocase(const uint8_t* hay, size_t hay_len, const std::vector<uint8_t>& needle) {
    if (needle.size() > hay_len) return false;
    for (size_t i = 0; i + needle.size() <= hay_len; ++i) {
        size_t j = 0;
        while (j < needle.size() && fold(hay[i + j]) == fold(needle[j])) ++j;
        if (j == needle.size()) return true;
    }
    return false;
}

}  // namespace

SnortModel::SnortModel(const net::IdsRuleSet& rules, Config config)
    : rules_(rules), config_(config) {
    for (size_t i = 0; i < rules_.size(); ++i) {
        const auto& fp = rules_.at(i).fast_pattern();
        std::vector<uint8_t> bytes = fp.bytes;
        if (fp.nocase) {
            for (auto& b : bytes) b = fold(b);
            fast_patterns_nocase_.add_pattern(bytes, uint32_t(i));
        } else {
            fast_patterns_.add_pattern(bytes, uint32_t(i));
        }
    }
    fast_patterns_.finalize();
    fast_patterns_nocase_.finalize();
}

bool
SnortModel::packet_matches(const net::Packet& pkt) const {
    auto parsed = net::parse_packet(pkt);
    if (!parsed || parsed->payload_offset == 0) return false;
    const uint8_t* payload = pkt.data.data() + parsed->payload_offset;
    size_t len = parsed->payload_len;

    std::vector<net::PatternMatch> hits;
    fast_patterns_.scan(payload, len, hits);
    if (fast_patterns_nocase_.pattern_count() > 0) {
        std::vector<uint8_t> folded(payload, payload + len);
        for (auto& b : folded) b = fold(b);
        fast_patterns_nocase_.scan(folded.data(), folded.size(), hits);
    }
    for (const auto& hit : hits) {
        const net::IdsRule& rule = rules_.at(hit.pattern_id);
        if (rule.proto == net::RuleProto::kTcp && !parsed->has_tcp) continue;
        if (rule.proto == net::RuleProto::kUdp && !parsed->has_udp) continue;
        uint16_t dst = parsed->has_tcp ? parsed->tcp.dst_port
                                       : (parsed->has_udp ? parsed->udp.dst_port : 0);
        if (rule.dst_port && *rule.dst_port != dst) continue;
        bool all = true;
        for (const auto& c : rule.contents) {
            bool found = c.nocase
                             ? contains_nocase(payload, len, c.bytes)
                             : std::search(payload, payload + len, c.bytes.begin(),
                                           c.bytes.end()) != payload + len;
            if (!found) {
                all = false;
                break;
            }
        }
        if (all) return true;
    }
    return false;
}

double
SnortModel::mpps_for_size(uint32_t frame_size) const {
    double per_packet_us = config_.per_packet_us;
    if (!config_.use_afpacket) per_packet_us -= 0.0;  // AF_PACKET already included
    // The ramdisk experiment (Section 7.1.3) removes the NIC path:
    double overhead = config_.use_afpacket
                          ? per_packet_us
                          : per_packet_us - config_.afpacket_share_us;
    double t_us = overhead + double(frame_size) * config_.scan_ns_per_byte / 1e3;
    return double(config_.cores) / t_us;  // cores / us => MPPS
}

SnortModel::Result
SnortModel::run(net::TraceGenerator& gen, size_t packets) const {
    Result r;
    uint32_t size = gen.spec().packet_size;
    for (size_t i = 0; i < packets; ++i) {
        net::PacketPtr p = gen.next();
        if (packet_matches(*p)) ++r.matched;
        ++r.packets;
    }
    r.mpps = mpps_for_size(size);
    double offered = net::line_rate_pps(size, 200.0) / 1e6;
    r.mpps = std::min(r.mpps, offered);
    r.gbps = r.mpps * 1e6 * double(size) * 8.0 / 1e9;
    return r;
}

double
pigasus_original_gbps(uint32_t frame_size) {
    return net::line_rate_goodput_gbps(frame_size, 100.0);
}

}  // namespace rosebud::baseline
