/// \file
/// Software baselines for the IPS comparison (paper Section 7.1.3).
///
/// SnortModel reproduces the paper's Snort 3 + Hyperscan + AF_PACKET
/// configuration on a Xeon 6130 (32 cores): pattern matching is performed
/// *for real* with the same rule set (Aho-Corasick multi-pattern scan, the
/// same functional semantics Hyperscan provides for literal patterns),
/// while throughput comes from a calibrated multicore cost model — a fixed
/// per-packet software overhead (parse, flow lookup, AF_PACKET descriptor
/// handling) plus a per-byte scan cost. The paper's measured plateau is
/// 4.7-5.6 MPPS across packet sizes; the calibration reproduces both the
/// plateau and its cause (per-packet overhead dominating scan time).
///
/// `pigasus_original_gbps` is the 100 Gbps line-rate reference of the
/// original single-FPGA Pigasus design.

#ifndef ROSEBUD_BASELINE_SNORT_MODEL_H
#define ROSEBUD_BASELINE_SNORT_MODEL_H

#include <cstdint>

#include "net/packet.h"
#include "net/patmatch.h"
#include "net/rules.h"
#include "net/tracegen.h"

namespace rosebud::baseline {

class SnortModel {
 public:
    struct Config {
        unsigned cores = 32;          ///< physical cores (Xeon 6130)
        double per_packet_us = 5.68;  ///< parse + flow + AF_PACKET per packet
        double scan_ns_per_byte = 0.55;  ///< Hyperscan effective literal scan
        double afpacket_share_us = 1.0;  ///< removable via ramdisk replay
        bool use_afpacket = true;
    };

    explicit SnortModel(const net::IdsRuleSet& rules);
    SnortModel(const net::IdsRuleSet& rules, Config config);

    struct Result {
        double mpps = 0;        ///< sustained packet rate, millions/s
        double gbps = 0;        ///< corresponding goodput
        uint64_t packets = 0;   ///< packets functionally scanned
        uint64_t matched = 0;   ///< packets with at least one rule hit
    };

    /// Scan `packets` packets from `gen` (functional matching) and report
    /// the modeled sustained throughput for that packet size.
    Result run(net::TraceGenerator& gen, size_t packets) const;

    /// Modeled packet rate (MPPS) for a given frame size.
    double mpps_for_size(uint32_t frame_size) const;

    /// Functional check: does this packet match any rule?
    bool packet_matches(const net::Packet& pkt) const;

    const Config& config() const { return config_; }

 private:
    net::IdsRuleSet rules_;
    net::AhoCorasick fast_patterns_;
    net::AhoCorasick fast_patterns_nocase_;
    Config config_;
};

/// Throughput of the original (100 Gbps, single FPGA) Pigasus for a frame
/// size — the reference line Rosebud doubles.
double pigasus_original_gbps(uint32_t frame_size);

}  // namespace rosebud::baseline

#endif  // ROSEBUD_BASELINE_SNORT_MODEL_H
