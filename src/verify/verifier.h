/// \file
/// Static firmware verifier for RPU images (eBPF-verifier style).
///
/// The paper's hardware memory protection and debug subsystem catch a
/// misbehaving RPU at *runtime*; this module moves the common failure
/// classes to *load time*. Given an assembled RV32IM image it decodes every
/// reachable instruction, builds a basic-block control-flow graph, and runs
/// a small abstract interpreter (an interval domain over the 31 general
/// registers plus a must-initialized bit) to prove the absence of:
///
///   * undecodable instructions on any reachable path;
///   * jump/branch targets outside the image or off instruction boundaries;
///   * loads/stores provably outside the RPU memory map (DMEM, PMEM slot
///     windows, AMEM, interconnect/accelerator MMIO, broadcast region);
///   * accesses to reserved interconnect MMIO offsets or reserved CSRs;
///   * reads of registers that are never written on some path;
///   * code that falls off the end of the image;
///   * busy loops with no exit edge and no observable side effect.
///
/// The analysis is *sound for rejection*: it only reports a memory error
/// when every concrete execution reaching the instruction would be out of
/// bounds, so correct firmware with data-dependent addressing (descriptor
/// slot indices, hash-table probes) is never rejected. Firmware that
/// installs an interrupt vector gets the handler analyzed as an extra CFG
/// root, and the infinite-loop check is relaxed (a watchdog can rescue any
/// loop once interrupts are live — exactly the paper's debug story).
///
/// Used as a load-time gate by host::HostContext (hard error by default,
/// warn-only for experiments) and by the `verify` rosebud_cli experiment.

#ifndef ROSEBUD_VERIFY_VERIFIER_H
#define ROSEBUD_VERIFY_VERIFIER_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "rpu/descriptor.h"

namespace rosebud::verify {

/// Check categories, one per verifier pass.
enum class Check {
    kDecode,       ///< reachable instruction does not decode as RV32IM
    kCfg,          ///< bad jump/branch target or fall-off-the-end
    kMemory,       ///< load/store provably outside the RPU memory map
    kMmio,         ///< access to a reserved interconnect MMIO offset
    kCsr,          ///< access to a CSR the core does not implement
    kUninit,       ///< read of a register never written on some path
    kUnreachable,  ///< code that no path from any root reaches
    kLoop,         ///< busy loop with no exit edge and no side effect
    kSlots,        ///< slot provisioning does not fit packet memory
};

enum class Severity { kError, kWarning };

const char* check_name(Check c);

struct Diagnostic {
    Check check = Check::kDecode;
    Severity severity = Severity::kError;
    uint32_t pc = 0;  ///< byte address of the offending instruction/block
    std::string message;
};

/// One CFG node: a maximal straight-line run of reachable instructions.
struct BasicBlock {
    uint32_t first = 0;           ///< address of the first instruction
    uint32_t last = 0;            ///< address of the last instruction
    std::vector<uint32_t> succs;  ///< successor block start addresses
};

/// Expected packet-slot provisioning (mirrors fwlib::SlotParams); when
/// `count` is non-zero the verifier checks the window fits packet memory.
struct SlotWindow {
    uint32_t count = 0;
    uint32_t size = 0;
    uint32_t base = rpu::kPmemBase;
};

struct Options {
    uint32_t entry = 0;        ///< boot pc of the image
    SlotWindow slots{};        ///< optional slot-provisioning cross-check
    bool check_uninit = true;  ///< enable the never-written-register pass
    bool check_loops = true;   ///< enable the busy-loop pass
};

// --- line-rate certificate ---------------------------------------------------
//
// Beyond the safety checks above, the verifier emits a *certificate* of
// quantitative facts about the image. Where the safety checks are sound for
// rejection (a diagnostic means every concrete execution misbehaves), the
// certificate is sound in the opposite direction: every number is an upper
// bound over all concrete executions, and every proof flag is only set when
// the property holds on all executions. The host admission gate, the JIT
// plans (ROADMAP item 2), and the multi-tenant control plane (item 4) all
// consume these facts.

/// Inferred trip bound for one CFG cycle (a nontrivial SCC).
struct LoopBound {
    uint32_t header = 0;    ///< entry block of the loop (lowest address)
    bool bounded = false;   ///< trip count proven finite
    uint64_t max_trips = 0; ///< iteration bound when `bounded`
    bool observable = false;///< touches MMIO/broadcast (service/poll loop)
    uint32_t blocks = 0;    ///< SCC size in basic blocks
};

/// Worst case for one CFG root (boot entry or interrupt handler), measured
/// per *handler activation*: an unbounded loop that polls MMIO (the main
/// packet-service loop, accelerator-done polls) contributes one traversal —
/// the per-packet handler path — while an unbounded loop with no observable
/// side effect poisons the bound to unbounded.
struct RootWcet {
    uint32_t root = 0;
    bool bounded = false;      ///< finite per-activation WCET
    uint64_t instructions = 0; ///< worst-case retired instructions
    uint64_t cycles = 0;       ///< worst-case cycles (worst memory latency)
};

/// Tightest byte range a reachable store may touch inside one region.
struct RegionWrites {
    std::string region;
    uint32_t lo = 0;
    uint32_t hi = 0;  ///< inclusive
};

/// Static cost of one basic block (for the DOT dump and timing debug).
struct BlockCost {
    uint32_t instructions = 0;
    uint32_t cycles = 0;
    bool critical = false;  ///< on some root's worst-case path
};

struct Certificate {
    std::vector<LoopBound> loops;  ///< every CFG cycle, header order
    std::vector<RootWcet> roots;   ///< per-root worst cases

    bool wcet_bounded = false;       ///< every root has a finite WCET
    uint64_t wcet_instructions = 0;  ///< max over roots
    uint64_t wcet_cycles = 0;        ///< max over roots

    bool stack_bounded = false;  ///< sp writes span a finite range (or none)
    uint32_t stack_bytes = 0;    ///< span of all values ever written to sp

    /// Proof that no reachable store can land in the text segment (IMEM).
    /// Sound for *acceptance*: granted only when every reachable store's
    /// address interval is finite and disjoint from IMEM — the exact fact
    /// that lets a JIT/DBT elide code-invalidation checks.
    bool text_write_separation = false;
    uint32_t unproven_stores = 0;  ///< stores whose target could not be bounded

    std::vector<RegionWrites> writes;         ///< store footprint per region
    std::map<uint32_t, BlockCost> block_costs;///< block first-addr -> cost
};

struct Report {
    std::vector<Diagnostic> diags;
    std::vector<BasicBlock> blocks;  ///< reachable blocks, address order
    std::vector<uint32_t> roots;     ///< entry + discovered interrupt vectors
    uint32_t instructions = 0;       ///< reachable decoded instructions
    bool interrupts_possible = false;
    Certificate cert;                ///< line-rate certificate (always computed)

    bool ok() const { return errors() == 0; }
    size_t errors() const;
    size_t warnings() const;
    bool check_passed(Check c) const;

    /// One line per diagnostic: "error[memory] pc=0x14: ...".
    std::string summary() const;
};

/// Verify an assembled image (words at byte address 0, as loaded into IMEM).
Report verify_image(const std::vector<uint32_t>& image, const Options& opts = {});

/// Render the CFG as Graphviz DOT, one record node per basic block with
/// the disassembly of its instructions, annotated with the certificate's
/// per-block cost and inferred loop bounds; blocks on the worst-case
/// (WCET-critical) path are highlighted.
std::string cfg_dot(const std::vector<uint32_t>& image, const Report& report,
                    const std::string& name = "firmware");

/// JSON rendering of the certificate (plus check verdicts) for one image,
/// as uploaded by the CI `wcet-report` step and `rosebud_cli verify --wcet`.
std::string certificate_json(const Report& report, const std::string& name);

}  // namespace rosebud::verify

#endif  // ROSEBUD_VERIFY_VERIFIER_H
