/// \file
/// Static firmware verifier for RPU images (eBPF-verifier style).
///
/// The paper's hardware memory protection and debug subsystem catch a
/// misbehaving RPU at *runtime*; this module moves the common failure
/// classes to *load time*. Given an assembled RV32IM image it decodes every
/// reachable instruction, builds a basic-block control-flow graph, and runs
/// a small abstract interpreter (an interval domain over the 31 general
/// registers plus a must-initialized bit) to prove the absence of:
///
///   * undecodable instructions on any reachable path;
///   * jump/branch targets outside the image or off instruction boundaries;
///   * loads/stores provably outside the RPU memory map (DMEM, PMEM slot
///     windows, AMEM, interconnect/accelerator MMIO, broadcast region);
///   * accesses to reserved interconnect MMIO offsets or reserved CSRs;
///   * reads of registers that are never written on some path;
///   * code that falls off the end of the image;
///   * busy loops with no exit edge and no observable side effect.
///
/// The analysis is *sound for rejection*: it only reports a memory error
/// when every concrete execution reaching the instruction would be out of
/// bounds, so correct firmware with data-dependent addressing (descriptor
/// slot indices, hash-table probes) is never rejected. Firmware that
/// installs an interrupt vector gets the handler analyzed as an extra CFG
/// root, and the infinite-loop check is relaxed (a watchdog can rescue any
/// loop once interrupts are live — exactly the paper's debug story).
///
/// Used as a load-time gate by host::HostContext (hard error by default,
/// warn-only for experiments) and by the `verify` rosebud_cli experiment.

#ifndef ROSEBUD_VERIFY_VERIFIER_H
#define ROSEBUD_VERIFY_VERIFIER_H

#include <cstdint>
#include <string>
#include <vector>

#include "rpu/descriptor.h"

namespace rosebud::verify {

/// Check categories, one per verifier pass.
enum class Check {
    kDecode,       ///< reachable instruction does not decode as RV32IM
    kCfg,          ///< bad jump/branch target or fall-off-the-end
    kMemory,       ///< load/store provably outside the RPU memory map
    kMmio,         ///< access to a reserved interconnect MMIO offset
    kCsr,          ///< access to a CSR the core does not implement
    kUninit,       ///< read of a register never written on some path
    kUnreachable,  ///< code that no path from any root reaches
    kLoop,         ///< busy loop with no exit edge and no side effect
    kSlots,        ///< slot provisioning does not fit packet memory
};

enum class Severity { kError, kWarning };

const char* check_name(Check c);

struct Diagnostic {
    Check check = Check::kDecode;
    Severity severity = Severity::kError;
    uint32_t pc = 0;  ///< byte address of the offending instruction/block
    std::string message;
};

/// One CFG node: a maximal straight-line run of reachable instructions.
struct BasicBlock {
    uint32_t first = 0;           ///< address of the first instruction
    uint32_t last = 0;            ///< address of the last instruction
    std::vector<uint32_t> succs;  ///< successor block start addresses
};

/// Expected packet-slot provisioning (mirrors fwlib::SlotParams); when
/// `count` is non-zero the verifier checks the window fits packet memory.
struct SlotWindow {
    uint32_t count = 0;
    uint32_t size = 0;
    uint32_t base = rpu::kPmemBase;
};

struct Options {
    uint32_t entry = 0;        ///< boot pc of the image
    SlotWindow slots{};        ///< optional slot-provisioning cross-check
    bool check_uninit = true;  ///< enable the never-written-register pass
    bool check_loops = true;   ///< enable the busy-loop pass
};

struct Report {
    std::vector<Diagnostic> diags;
    std::vector<BasicBlock> blocks;  ///< reachable blocks, address order
    std::vector<uint32_t> roots;     ///< entry + discovered interrupt vectors
    uint32_t instructions = 0;       ///< reachable decoded instructions
    bool interrupts_possible = false;

    bool ok() const { return errors() == 0; }
    size_t errors() const;
    size_t warnings() const;
    bool check_passed(Check c) const;

    /// One line per diagnostic: "error[memory] pc=0x14: ...".
    std::string summary() const;
};

/// Verify an assembled image (words at byte address 0, as loaded into IMEM).
Report verify_image(const std::vector<uint32_t>& image, const Options& opts = {});

/// Render the CFG as Graphviz DOT, one record node per basic block with
/// the disassembly of its instructions.
std::string cfg_dot(const std::vector<uint32_t>& image, const Report& report,
                    const std::string& name = "firmware");

}  // namespace rosebud::verify

#endif  // ROSEBUD_VERIFY_VERIFIER_H
