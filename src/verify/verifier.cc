#include "verify/verifier.h"

#include <algorithm>
#include <array>
#include <cinttypes>
#include <cstdio>
#include <deque>
#include <map>
#include <set>

#include "mem/memory.h"
#include "obs/json.h"
#include "rv/disasm.h"
#include "rv/isa.h"

namespace rosebud::verify {

namespace {

using rv::Reg;

// --- decoding ---------------------------------------------------------------

/// Strict RV32IM decode classes. The interpreter in rv/core.cc is lenient
/// in places (it executes some malformed encodings); the verifier follows
/// the unprivileged spec so firmware stays portable to a real VexRiscv.
enum class Op {
    kIllegal,
    kLui,
    kAuipc,
    kJal,
    kJalr,
    kBranch,
    kLoad,
    kStore,
    kAluImm,
    kAluReg,
    kFence,
    kEcall,
    kEbreak,
    kMret,
    kCsr,
};

struct Insn {
    Op op = Op::kIllegal;
    Reg rd{};
    Reg rs1{};
    Reg rs2{};
    int32_t imm = 0;
    uint32_t funct3 = 0;
    uint32_t funct7 = 0;
    uint32_t csr = 0;
};

Insn
decode(uint32_t w) {
    Insn d;
    d.rd = rv::dec_rd(w);
    d.rs1 = rv::dec_rs1(w);
    d.rs2 = rv::dec_rs2(w);
    d.funct3 = rv::dec_funct3(w);
    d.funct7 = rv::dec_funct7(w);
    switch (rv::dec_opcode(w)) {
    case rv::kOpLui:
        d.op = Op::kLui;
        d.imm = rv::dec_imm_u(w);
        break;
    case rv::kOpAuipc:
        d.op = Op::kAuipc;
        d.imm = rv::dec_imm_u(w);
        break;
    case rv::kOpJal:
        d.op = Op::kJal;
        d.imm = rv::dec_imm_j(w);
        break;
    case rv::kOpJalr:
        if (d.funct3 != 0) break;
        d.op = Op::kJalr;
        d.imm = rv::dec_imm_i(w);
        break;
    case rv::kOpBranch:
        if (d.funct3 == 2 || d.funct3 == 3) break;
        d.op = Op::kBranch;
        d.imm = rv::dec_imm_b(w);
        break;
    case rv::kOpLoad:
        if (d.funct3 == 3 || d.funct3 > 5) break;
        d.op = Op::kLoad;
        d.imm = rv::dec_imm_i(w);
        break;
    case rv::kOpStore:
        if (d.funct3 > 2) break;
        d.op = Op::kStore;
        d.imm = rv::dec_imm_s(w);
        break;
    case rv::kOpImm:
        d.imm = rv::dec_imm_i(w);
        if (d.funct3 == 1 && d.funct7 != 0) break;
        if (d.funct3 == 5 && d.funct7 != 0 && d.funct7 != 0x20) break;
        d.op = Op::kAluImm;
        break;
    case rv::kOpReg:
        if (d.funct7 == 0x01 || d.funct7 == 0x00 ||
            (d.funct7 == 0x20 && (d.funct3 == 0 || d.funct3 == 5))) {
            d.op = Op::kAluReg;
        }
        break;
    case rv::kOpMiscMem:
        if (d.funct3 == 0) d.op = Op::kFence;
        break;
    case rv::kOpSystem:
        if (w == 0x00000073) {
            d.op = Op::kEcall;
        } else if (w == 0x00100073) {
            d.op = Op::kEbreak;
        } else if (w == 0x30200073) {
            d.op = Op::kMret;
        } else if (d.funct3 >= 1 && d.funct3 <= 3) {
            d.op = Op::kCsr;
            d.csr = w >> 20;
        }
        break;
    default:
        break;
    }
    return d;
}

bool
reads_rs1(const Insn& d) {
    switch (d.op) {
    case Op::kJalr:
    case Op::kBranch:
    case Op::kLoad:
    case Op::kStore:
    case Op::kAluImm:
    case Op::kAluReg:
    case Op::kCsr:
        return true;
    default:
        return false;
    }
}

bool
reads_rs2(const Insn& d) {
    return d.op == Op::kBranch || d.op == Op::kStore || d.op == Op::kAluReg;
}

bool
writes_rd(const Insn& d) {
    switch (d.op) {
    case Op::kLui:
    case Op::kAuipc:
    case Op::kJal:
    case Op::kJalr:
    case Op::kLoad:
    case Op::kAluImm:
    case Op::kAluReg:
    case Op::kCsr:
        return d.rd != rv::zero;
    default:
        return false;
    }
}

/// True if control cannot continue to pc+4 after this instruction.
bool
is_terminator(const Insn& d) {
    switch (d.op) {
    case Op::kJal:
    case Op::kJalr:
    case Op::kEcall:
    case Op::kEbreak:
    case Op::kMret:
    case Op::kIllegal:
        return true;
    default:
        return false;
    }
}

// --- abstract domain --------------------------------------------------------

/// Interval bound large enough to hold any sum/shift of 32-bit values the
/// transfer functions produce without overflowing int64.
constexpr int64_t kClamp = int64_t(1) << 40;
constexpr int64_t kWordMax = (int64_t(1) << 32) - 1;
constexpr int64_t kI32Min = -(int64_t(1) << 31);
constexpr int64_t kI32Max = (int64_t(1) << 31) - 1;

int64_t
mag64(int64_t v) {
    return v < 0 ? -v : v;
}

/// Abstract register: a signed interval plus a must-initialized bit.
struct AbsVal {
    bool init = false;
    int64_t lo = -kClamp;
    int64_t hi = kClamp;

    static AbsVal top(bool initialized) { return {initialized, -kClamp, kClamp}; }
    static AbsVal constant(int64_t v) { return {true, v, v}; }
    static AbsVal range(int64_t lo, int64_t hi) {
        return {true, std::max(lo, -kClamp), std::min(hi, kClamp)};
    }

    bool is_const() const { return lo == hi; }
    bool is_top() const { return lo <= -kClamp && hi >= kClamp; }
    /// The interval maps 1:1 onto unsigned 32-bit values (usable as an
    /// address range without worrying about wraparound).
    bool is_word_range() const { return lo >= 0 && hi <= kWordMax; }
};

struct RegState {
    std::array<AbsVal, 32> r{};
    bool bottom = true;  ///< no path reaches this point yet
};

RegState
make_root_state(bool regs_initialized) {
    RegState s;
    s.bottom = false;
    for (auto& v : s.r) v = AbsVal::top(regs_initialized);
    s.r[0] = AbsVal::constant(0);
    return s;
}

/// Widening thresholds: 0, ±1, ± powers of two through 2^32, the memory-map
/// region boundaries, and the clamp. Widening a bound to the next threshold
/// (instead of straight to top) keeps loop counters, occupancy counts and
/// table indices on a finite ladder — the loop-bound inference and the WCET
/// pass below depend on it. The ladder is finite, so fixpoints still
/// terminate (each widening step strictly climbs the ladder).
const std::vector<int64_t>&
widen_thresholds() {
    static const std::vector<int64_t> kThresholds = [] {
        std::vector<int64_t> t{0, -kClamp, kClamp};
        for (int s = 0; s <= 32; ++s) {
            t.push_back(int64_t(1) << s);
            t.push_back((int64_t(1) << s) - 1);
            t.push_back(-(int64_t(1) << s));
        }
        for (uint32_t edge : {rpu::kImemBase + rpu::kImemSize, rpu::kDmemBase,
                              rpu::kDmemBase + rpu::kDmemSize, rpu::kPmemBase,
                              rpu::kPmemBase + rpu::kPmemSize, rpu::kAmemBase,
                              rpu::kAmemBase + rpu::kAmemSize, rpu::kIoBase,
                              rpu::kIoExtBase, rpu::kBcastBase,
                              rpu::kBcastBase + rpu::kBcastSize}) {
            t.push_back(int64_t(edge));
            t.push_back(int64_t(edge) - 1);
        }
        std::sort(t.begin(), t.end());
        t.erase(std::unique(t.begin(), t.end()), t.end());
        return t;
    }();
    return kThresholds;
}

/// Largest threshold <= v (for widening a sinking lower bound).
int64_t
widen_down(int64_t v) {
    const auto& t = widen_thresholds();
    auto it = std::upper_bound(t.begin(), t.end(), v);
    return it == t.begin() ? -kClamp : *(it - 1);
}

/// Smallest threshold >= v (for widening a rising upper bound).
int64_t
widen_up(int64_t v) {
    const auto& t = widen_thresholds();
    auto it = std::lower_bound(t.begin(), t.end(), v);
    return it == t.end() ? kClamp : *it;
}

/// Join `src` into `dst`. When `widen`, a bound that would grow jumps to
/// the next widening threshold so loop counters converge without going
/// straight to top. Returns true on change.
bool
join_into(RegState& dst, const RegState& src, bool widen) {
    if (src.bottom) return false;
    if (dst.bottom) {
        dst = src;
        return true;
    }
    bool changed = false;
    for (int i = 0; i < 32; ++i) {
        AbsVal& d = dst.r[i];
        const AbsVal& s = src.r[i];
        bool init = d.init && s.init;
        int64_t lo = std::min(d.lo, s.lo);
        int64_t hi = std::max(d.hi, s.hi);
        if (widen) {
            if (lo < d.lo) lo = widen_down(lo);
            if (hi > d.hi) hi = widen_up(hi);
        }
        if (init != d.init || lo != d.lo || hi != d.hi) {
            d = {init, lo, hi};
            changed = true;
        }
    }
    return changed;
}

int64_t
clamp64(int64_t v) {
    return std::max(-kClamp, std::min(kClamp, v));
}

AbsVal
abs_add(const AbsVal& a, int64_t blo, int64_t bhi, bool binit) {
    return {a.init && binit, clamp64(a.lo + blo), clamp64(a.hi + bhi)};
}

/// Smallest (2^k - 1) covering `v` — the sound upper bound for or/xor of
/// non-negative operands.
int64_t
pow2_mask(int64_t v) {
    int64_t m = 1;
    while (m - 1 < v) m <<= 1;
    return m - 1;
}

/// Transfer function for one instruction; interval semantics of the ops
/// firmware uses for address formation are exact, the rest go to top.
AbsVal
eval_alu(const Insn& d, const AbsVal& a, const AbsVal& b, uint32_t pc) {
    const bool imm_form = d.op == Op::kAluImm;
    const bool init = a.init && (imm_form || b.init);
    auto top = [&] { return AbsVal::top(init); };
    switch (d.op) {
    case Op::kLui:
        return AbsVal::constant(int32_t(d.imm));
    case Op::kAuipc:
        return AbsVal::constant(int64_t(uint32_t(pc + uint32_t(d.imm))));
    case Op::kJal:
    case Op::kJalr:
        return AbsVal::constant(pc + 4);
    case Op::kCsr:
        return AbsVal::top(true);
    default:
        break;
    }
    const int64_t blo = imm_form ? d.imm : b.lo;
    const int64_t bhi = imm_form ? d.imm : b.hi;
    switch (d.funct3) {
    case 0:  // add/addi/sub
        if (d.op == Op::kAluReg && d.funct7 == 0x20) {
            return {init, clamp64(a.lo - bhi), clamp64(a.hi - blo)};
        }
        if (d.op == Op::kAluReg && d.funct7 == 0x01) return top();  // mul
        return abs_add(a, blo, bhi, init);
    case 1: {  // sll/slli (mulh as reg form funct7=1)
        if (d.op == Op::kAluReg && d.funct7 == 0x01) return top();
        // Bounded — not necessarily constant — shift amounts: left shift is
        // monotone for a non-negative value, so any s in [slo, shi] keeps
        // the result within [a.lo << slo, a.hi << shi].
        const int64_t slo = imm_form ? (d.imm & 0x1f) : blo;
        const int64_t shi = imm_form ? (d.imm & 0x1f) : bhi;
        if (slo >= 0 && shi <= 31 && a.lo >= 0 && a.hi <= (kWordMax >> shi)) {
            return {init, a.lo << slo, a.hi << shi};
        }
        return top();
    }
    case 2:  // slt family (mulhsu)
        if (d.op == Op::kAluReg && d.funct7 == 0x01) return top();
        return {init, 0, 1};
    case 3:  // sltu family (mulhu)
        if (d.op == Op::kAluReg && d.funct7 == 0x01) return top();
        return {init, 0, 1};
    case 4:  // xor/xori (div)
        if (d.op == Op::kAluReg && d.funct7 == 0x01) {
            // div. RISC-V M: x/0 = -1 and INT_MIN/-1 = INT_MIN, so both
            // special cases stay within [-max|a|, max|a|] for |b| >= 0.
            // An unknown dividend is still a 32-bit word: [i32min, i32max].
            if (b.lo < kI32Min || b.hi > kI32Max) return top();
            const bool aw = a.lo >= kI32Min && a.hi <= kI32Max;
            const int64_t alo = aw ? a.lo : kI32Min;
            const int64_t ahi = aw ? a.hi : kI32Max;
            if (blo == 0 && bhi == 0) return {init, -1, -1};
            if (blo >= 1 && alo >= 0) return {init, alo / bhi, ahi / blo};
            const int64_t m = std::max({mag64(alo), mag64(ahi), int64_t(1)});
            return {init, -m, m};
        }
        if (a.is_const() && blo == bhi) {
            return {init, int64_t(uint32_t(a.lo) ^ uint32_t(blo)),
                    int64_t(uint32_t(a.lo) ^ uint32_t(blo))};
        }
        if (a.lo >= 0 && blo >= 0 && a.hi <= kWordMax && bhi <= kWordMax) {
            return {init, 0, pow2_mask(std::max(a.hi, bhi))};
        }
        return top();
    case 5:  // srl/sra/srli/srai (divu)
        if (d.op == Op::kAluReg && d.funct7 == 0x01) {
            // divu. RISC-V M: x/0 = 2^32-1; otherwise the quotient shrinks
            // monotonically with the divisor, so the corners are exact.
            // An unknown dividend is still a 32-bit word: [0, 2^32-1].
            if (b.lo < 0 || b.hi > kWordMax) return top();
            const bool aw = a.lo >= 0 && a.hi <= kWordMax;
            const int64_t alo = aw ? a.lo : 0;
            const int64_t ahi = aw ? a.hi : kWordMax;
            if (bhi == 0) return {init, kWordMax, kWordMax};
            return {init, alo / bhi, blo >= 1 ? ahi / blo : kWordMax};
        }
        {
            // Bounded — not necessarily constant — shift amounts: right
            // shift is monotone, so the corners are [a.lo >> shi, a.hi >> slo].
            const bool arith = d.funct7 == 0x20 || (imm_form && (d.imm & 0x400));
            const int64_t slo = imm_form ? (d.imm & 0x1f) : blo;
            const int64_t shi = imm_form ? (d.imm & 0x1f) : bhi;
            if (slo >= 0 && shi <= 31) {
                if (a.is_word_range() && (!arith || a.hi < (int64_t(1) << 31))) {
                    return {init, a.lo >> shi, a.hi >> slo};
                }
                // Unknown operand: the result is still a 32-bit word (srl)
                // or a sign-extended one (sra) narrowed by the shift.
                if (!arith) return {init, 0, kWordMax >> slo};
                return {init, kI32Min >> slo, kI32Max >> slo};
            }
        }
        return top();
    case 6:  // or/ori (rem)
        if (d.op == Op::kAluReg && d.funct7 == 0x01) {
            // rem. RISC-V M: x%0 = x and INT_MIN%-1 = 0; otherwise
            // |r| < |b|, |r| <= |a|, and r takes the dividend's sign.
            // An unknown dividend is still a 32-bit word: [i32min, i32max].
            if (b.lo < kI32Min || b.hi > kI32Max) return top();
            const bool aw = a.lo >= kI32Min && a.hi <= kI32Max;
            const int64_t alo = aw ? a.lo : kI32Min;
            const int64_t ahi = aw ? a.hi : kI32Max;
            if (blo >= 1 && alo >= 0) return {init, 0, std::min(bhi - 1, ahi)};
            const int64_t m = std::max(mag64(alo), mag64(ahi));
            return {init, alo >= 0 ? 0 : -m, ahi <= 0 ? 0 : m};
        }
        if (a.is_const() && blo == bhi) {
            return AbsVal::constant(int64_t(uint32_t(a.lo) | uint32_t(blo)));
        }
        if (a.lo >= 0 && blo >= 0 && a.hi <= kWordMax && bhi <= kWordMax) {
            return {init, std::max(a.lo, blo), pow2_mask(std::max(a.hi, bhi))};
        }
        return top();
    case 7:  // and/andi (remu)
        if (d.op == Op::kAluReg && d.funct7 == 0x01) {
            // remu. RISC-V M: x%0 = x; otherwise r < b and r <= a.
            // An unknown dividend is still a 32-bit word: [0, 2^32-1].
            if (b.lo < 0 || b.hi > kWordMax) return top();
            const bool aw = a.lo >= 0 && a.hi <= kWordMax;
            const int64_t alo = aw ? a.lo : 0;
            const int64_t ahi = aw ? a.hi : kWordMax;
            if (bhi == 0) return {init, alo, ahi};
            if (blo >= 1) return {init, 0, std::min(bhi - 1, ahi)};
            return {init, 0, std::max(ahi, bhi - 1)};
        }
        if (a.is_const() && blo == bhi) {
            return AbsVal::constant(int64_t(uint32_t(a.lo) & uint32_t(blo)));
        }
        if (imm_form && d.imm >= 0) {
            return {init, 0, a.lo >= 0 ? std::min<int64_t>(a.hi, d.imm) : d.imm};
        }
        // Mask with high bits set (e.g. andi rd, rs, -16) clears low bits:
        // x & m = x - (x & ~m) >= x - ~m, so a non-negative operand keeps
        // its lower bound up to the cleared-bit budget (alignment masks
        // preserve address ranges almost exactly).
        if (imm_form && d.imm < 0 && a.lo >= 0 && a.hi <= kWordMax) {
            const int64_t clear = int64_t(uint32_t(~uint32_t(d.imm)));
            return {init, std::max<int64_t>(0, a.lo - clear), a.hi};
        }
        if (a.lo >= 0 && a.hi <= kWordMax && (imm_form || b.init)) {
            if (imm_form || blo >= 0) return {init, 0, a.hi};
        }
        return top();
    default:
        return top();
    }
}

// --- memory map -------------------------------------------------------------

struct Region {
    uint32_t base;
    uint32_t size;
    const char* name;
};

constexpr Region kLoadRegions[] = {
    {rpu::kImemBase, rpu::kImemSize, "IMEM"},
    {rpu::kDmemBase, rpu::kDmemSize, "DMEM"},
    {rpu::kPmemBase, rpu::kPmemSize, "PMEM"},
    {rpu::kAmemBase, rpu::kAmemSize, "AMEM"},
    {rpu::kIoBase, rpu::kIoSize, "IO"},
    {rpu::kIoExtBase, rpu::kIoExtSize, "IO_EXT"},
    {rpu::kBcastBase, rpu::kBcastSize, "BCAST"},
};

/// Stores may not target instruction memory (the bus faults).
constexpr Region kStoreRegions[] = {
    {rpu::kDmemBase, rpu::kDmemSize, "DMEM"},
    {rpu::kPmemBase, rpu::kPmemSize, "PMEM"},
    {rpu::kAmemBase, rpu::kAmemSize, "AMEM"},
    {rpu::kIoBase, rpu::kIoSize, "IO"},
    {rpu::kIoExtBase, rpu::kIoExtSize, "IO_EXT"},
    {rpu::kBcastBase, rpu::kBcastSize, "BCAST"},
};

/// Interconnect registers with read side effects or values (io_read).
constexpr uint32_t kReadableIo[] = {
    rpu::kRegRecvLow,   rpu::kRegRecvHigh,  rpu::kRegRxReady,   rpu::kRegDebugLow,
    rpu::kRegDebugHigh, rpu::kRegCycle,     rpu::kRegCoreId,    rpu::kRegIrqStatus,
    rpu::kRegBcastAddr, rpu::kRegBcastData, rpu::kRegBcastReady, rpu::kRegLbSlotResp,
};

/// Interconnect registers accepted by io_write (plus the TX doorbell).
constexpr uint32_t kWritableIo[] = {
    rpu::kRegRecvRelease, rpu::kRegSendLow,  rpu::kRegSendHigh, rpu::kRegSendDest,
    rpu::kRegTimerCmp,    rpu::kRegDebugLow, rpu::kRegDebugHigh, rpu::kRegIrqMask,
    rpu::kRegIrqAck,      rpu::kRegSlotCount, rpu::kRegSlotBase, rpu::kRegSlotSize,
    rpu::kRegHdrBase,     rpu::kRegHdrSize,  rpu::kRegSlotCommit, rpu::kRegBcastPop,
    rpu::kRegLbSlotReq,
};

constexpr uint32_t kAllowedCsrs[] = {
    rv::kCsrMstatus, rv::kCsrMtvec,    rv::kCsrMepc,  rv::kCsrMcause, rv::kCsrCycle,
    rv::kCsrTime,    rv::kCsrInstret,  rv::kCsrCycleH, rv::kCsrTimeH, rv::kCsrInstretH,
};

template <typename C, typename V>
bool
contains(const C& c, V v) {
    return std::find(std::begin(c), std::end(c), v) != std::end(c);
}

bool
intersects_any_region(const Region* regions, size_t n, int64_t lo, int64_t hi) {
    for (size_t i = 0; i < n; ++i) {
        int64_t rlo = regions[i].base;
        int64_t rhi = rlo + regions[i].size - 1;
        if (lo <= rhi && hi >= rlo) return true;
    }
    return false;
}

bool
region_contains(const Region& r, int64_t lo, int64_t hi) {
    return lo >= r.base && hi < int64_t(r.base) + r.size;
}

constexpr const char* kRegNames[32] = {
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0",
    "a1",   "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5",
    "s6",   "s7", "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
};

std::string
hex(uint32_t v) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "0x%x", v);
    return buf;
}

// --- verifier ---------------------------------------------------------------

class Verifier {
 public:
    Verifier(const std::vector<uint32_t>& image, const Options& opts)
        : image_(image), opts_(opts), insns_(image.size()), reachable_(image.size(), 0) {}

    Report run();

 private:
    uint32_t end_addr() const { return uint32_t(image_.size()) * 4; }

    void diag(Check c, Severity sev, uint32_t pc, std::string msg) {
        // Deduplicate: the final pass walks blocks whose states were
        // already explored during the fixpoint.
        if (!seen_.insert({pc, int(c), msg}).second) return;
        report_.diags.push_back({c, sev, pc, std::move(msg)});
    }

    void discover_from_roots();
    void build_blocks();
    std::vector<uint32_t> successors(uint32_t pc, const Insn& d, bool emit_diags);
    void fixpoint();
    RegState transfer(size_t block_idx, RegState state, bool emit);
    RegState refine_edge(size_t b, RegState out, uint32_t succ) const;
    void check_instruction(uint32_t pc, const Insn& d, const RegState& state);
    void check_memory(uint32_t pc, const Insn& d, const RegState& state);
    void scan_unreachable();
    void find_busy_loops();
    void check_slot_window();

    // --- certification -------------------------------------------------------
    static constexpr uint64_t kUnboundedTrips = UINT64_MAX;
    uint32_t insn_cycles(const Insn& d, const RegState& state) const;
    void note_store(const Insn& d, const RegState& state);
    void certify();
    uint64_t infer_loop_trips(const std::set<size_t>& scc, size_t header);
    /// Worst-case cost of the subgraph induced by `nodes`, entered at
    /// `entries`, ignoring `removed` edges (back edges of enclosing loops).
    struct PathCost {
        bool bounded = true;
        uint64_t instrs = 0;
        uint64_t cycles = 0;
        std::vector<size_t> path;  ///< blocks on the worst-case path
    };
    PathCost wcet_subgraph(const std::set<size_t>& nodes,
                           const std::set<size_t>& entries,
                           std::set<std::pair<size_t, size_t>> removed, int depth);

    const std::vector<uint32_t>& image_;
    Options opts_;
    std::vector<Insn> insns_;
    std::vector<uint8_t> reachable_;
    std::set<uint32_t> leaders_;
    std::set<uint32_t> roots_;
    std::set<uint32_t> handler_roots_;
    Report report_;

    // Blocks + per-block analysis state.
    std::vector<BasicBlock> blocks_;
    std::map<uint32_t, size_t> block_at_;  ///< first-insn addr -> block index
    std::vector<RegState> in_states_;
    std::vector<int> join_counts_;
    std::vector<uint8_t> observable_;  ///< block may touch MMIO/broadcast
    std::vector<std::vector<size_t>> adj_;  ///< successor block indices

    // Facts accumulated by the final (emit) pass for the certificate.
    std::vector<uint32_t> cost_instrs_;  ///< per-block retired instructions
    std::vector<uint32_t> cost_cycles_;  ///< per-block worst-case cycles
    bool sp_written_ = false, sp_top_ = false;
    int64_t sp_lo_ = 0, sp_hi_ = 0;
    struct RegionAcc {
        bool any = false;
        int64_t lo = 0, hi = 0;
    };
    std::array<RegionAcc, std::size(kStoreRegions)> region_writes_{};
    uint32_t unproven_stores_ = 0;
    bool store_may_hit_text_ = false;
    bool has_indirect_jump_ = false;
    std::map<uint32_t, LoopBound> loops_found_;  ///< header pc -> bound

    std::set<std::tuple<uint32_t, int, std::string>> seen_;
    static constexpr int kWidenAfter = 24;
};

void
Verifier::discover_from_roots() {
    std::fill(reachable_.begin(), reachable_.end(), 0);
    leaders_.clear();
    std::deque<uint32_t> work(roots_.begin(), roots_.end());
    for (uint32_t r : roots_) leaders_.insert(r);
    while (!work.empty()) {
        uint32_t pc = work.front();
        work.pop_front();
        if (pc >= end_addr() || (pc & 3)) continue;  // diagnosed at the edge
        size_t idx = pc / 4;
        if (reachable_[idx]) continue;
        reachable_[idx] = 1;
        insns_[idx] = decode(image_[idx]);
        for (uint32_t s : successors(pc, insns_[idx], /*emit_diags=*/false)) {
            work.push_back(s);
        }
    }
}

/// Successor pcs of the instruction at `pc`; with `emit_diags`, report bad
/// targets and fall-off-the-end instead of following them.
std::vector<uint32_t>
Verifier::successors(uint32_t pc, const Insn& d, bool emit_diags) {
    std::vector<uint32_t> out;
    auto add_target = [&](uint32_t target, const char* what) {
        if (target & 3) {
            if (emit_diags) {
                diag(Check::kCfg, Severity::kError, pc,
                     std::string(what) + " target " + hex(target) +
                         " is not on an instruction boundary");
            }
            return;
        }
        if (target >= end_addr()) {
            if (emit_diags) {
                const char* where =
                    target >= rpu::kImemSize ? "outside IMEM" : "past the end of the image";
                diag(Check::kCfg, Severity::kError, pc,
                     std::string(what) + " target " + hex(target) + " lands " + where +
                         " (image ends at " + hex(end_addr()) + ")");
            }
            return;
        }
        out.push_back(target);
    };
    auto add_fallthrough = [&] {
        if (pc + 4 >= end_addr() && pc + 4 == end_addr()) {
            if (emit_diags) {
                diag(Check::kCfg, Severity::kError, pc,
                     "control falls off the end of the image after " + hex(pc));
            }
            return;
        }
        out.push_back(pc + 4);
    };
    switch (d.op) {
    case Op::kJal:
        add_target(pc + uint32_t(d.imm), "jal");
        break;
    case Op::kBranch:
        add_target(pc + uint32_t(d.imm), "branch");
        add_fallthrough();
        break;
    case Op::kJalr:
    case Op::kEcall:
    case Op::kEbreak:
    case Op::kMret:
    case Op::kIllegal:
        break;  // terminators with no static successor
    default:
        add_fallthrough();
        break;
    }
    return out;
}

void
Verifier::build_blocks() {
    blocks_.clear();
    block_at_.clear();
    // Every jump/branch target and every fall-through after a branch
    // starts a block.
    for (size_t i = 0; i < image_.size(); ++i) {
        if (!reachable_[i]) continue;
        uint32_t pc = uint32_t(i) * 4;
        const Insn& d = insns_[i];
        if (d.op == Op::kBranch || d.op == Op::kJal || is_terminator(d)) {
            for (uint32_t s : successors(pc, d, false)) leaders_.insert(s);
        }
    }
    BasicBlock cur;
    bool open = false;
    for (size_t i = 0; i < image_.size(); ++i) {
        if (!reachable_[i]) {
            open = false;
            continue;
        }
        uint32_t pc = uint32_t(i) * 4;
        if (!open || leaders_.count(pc)) {
            if (open) {
                cur.succs = {pc};
                blocks_.push_back(cur);
            }
            cur = BasicBlock{pc, pc, {}};
            open = true;
        }
        cur.last = pc;
        const Insn& d = insns_[i];
        if (d.op == Op::kBranch || is_terminator(d)) {
            cur.succs = successors(pc, d, false);
            blocks_.push_back(cur);
            open = false;
        }
    }
    if (open) {
        cur.succs = successors(cur.last, insns_[cur.last / 4], false);
        blocks_.push_back(cur);
    }
    for (size_t b = 0; b < blocks_.size(); ++b) block_at_[blocks_[b].first] = b;
    in_states_.assign(blocks_.size(), RegState{});
    join_counts_.assign(blocks_.size(), 0);
    observable_.assign(blocks_.size(), 0);
    cost_instrs_.assign(blocks_.size(), 0);
    cost_cycles_.assign(blocks_.size(), 0);
    adj_.assign(blocks_.size(), {});
    for (size_t b = 0; b < blocks_.size(); ++b) {
        for (uint32_t s : blocks_[b].succs) {
            auto it = block_at_.find(s);
            if (it != block_at_.end()) adj_[b].push_back(it->second);
        }
    }
}

/// Worst-case cycles one instruction can take on rv::Core (CostModel plus
/// the bus latencies in mem/memory.h). Loads/stores are classified by the
/// region their address interval provably stays in; an unknown address gets
/// the worst latency of any region. Bus `retry` (backpressure) cycles are
/// excluded by construction: the WCET bounds *executed* work per handler
/// activation — waiting on a full TX queue is stall time, attributed by the
/// observability layer, not compute.
uint32_t
Verifier::insn_cycles(const Insn& d, const RegState& state) const {
    switch (d.op) {
    case Op::kBranch:
        return 2;  // CostModel.branch_taken (worst of taken/not-taken)
    case Op::kJal:
    case Op::kJalr:
    case Op::kEcall:
    case Op::kEbreak:
    case Op::kMret:
        return 2;  // CostModel.jump / trap redirect
    case Op::kCsr:
        return 1;
    case Op::kAluReg:
        if (d.funct7 == 0x01) return d.funct3 < 4 ? 5 : 35;  // mul / div
        return 1;
    case Op::kLoad:
    case Op::kStore: {
        const bool is_store = d.op == Op::kStore;
        uint32_t worst = is_store
                             ? std::max({mem::kBramStoreCycles, mem::kUramStoreCycles,
                                         mem::kMmioStoreCycles})
                             : std::max({mem::kBramLoadCycles, mem::kUramLoadCycles,
                                         mem::kMmioLoadCycles});
        const AbsVal& base = state.r[d.rs1];
        int64_t lo = 0;
        int64_t hi = -1;
        const uint32_t size = 1U << (d.funct3 & 3);
        if (base.init && base.is_const()) {
            const uint32_t addr = uint32_t(int64_t(base.lo) + d.imm);
            lo = addr;
            hi = int64_t(addr) + size - 1;
        } else if (base.init && base.is_word_range()) {
            lo = base.lo + d.imm;
            hi = base.hi + d.imm + size - 1;
        } else {
            return worst;
        }
        auto in = [&](uint32_t rbase, uint32_t rsize) {
            return region_contains({rbase, rsize, ""}, lo, hi);
        };
        if (in(rpu::kDmemBase, rpu::kDmemSize) || in(rpu::kImemBase, rpu::kImemSize)) {
            return is_store ? mem::kBramStoreCycles : mem::kBramLoadCycles;
        }
        if (in(rpu::kPmemBase, rpu::kPmemSize) || in(rpu::kAmemBase, rpu::kAmemSize)) {
            return is_store ? mem::kUramStoreCycles : mem::kUramLoadCycles;
        }
        if (in(rpu::kIoBase, rpu::kIoSize) || in(rpu::kIoExtBase, rpu::kIoExtSize) ||
            in(rpu::kBcastBase, rpu::kBcastSize)) {
            return is_store ? mem::kMmioStoreCycles : mem::kMmioLoadCycles;
        }
        return worst;
    }
    default:
        return 1;  // CostModel.alu (lui/auipc/alu/fence)
    }
}

/// Record one reachable store's provable address range for the footprint
/// summary and the text-segment write-separation proof.
void
Verifier::note_store(const Insn& d, const RegState& state) {
    const AbsVal& base = state.r[d.rs1];
    const uint32_t size = 1U << (d.funct3 & 3);
    int64_t lo = 0;
    int64_t hi = -1;
    if (base.init && base.is_const()) {
        const uint32_t addr = uint32_t(int64_t(base.lo) + d.imm);
        lo = addr;
        hi = int64_t(addr) + size - 1;
    } else if (base.init && base.is_word_range()) {
        lo = base.lo + d.imm;
        hi = base.hi + d.imm + size - 1;
    }
    if (hi < lo || lo < 0 || hi > kWordMax) {
        ++unproven_stores_;
        return;
    }
    if (lo < int64_t(rpu::kImemBase) + rpu::kImemSize &&
        hi >= int64_t(rpu::kImemBase)) {
        store_may_hit_text_ = true;
    }
    for (size_t i = 0; i < std::size(kStoreRegions); ++i) {
        const Region& r = kStoreRegions[i];
        int64_t clo = std::max<int64_t>(lo, r.base);
        int64_t chi = std::min<int64_t>(hi, int64_t(r.base) + r.size - 1);
        if (clo > chi) continue;
        RegionAcc& acc = region_writes_[i];
        if (!acc.any) {
            acc = {true, clo, chi};
        } else {
            acc.lo = std::min(acc.lo, clo);
            acc.hi = std::max(acc.hi, chi);
        }
    }
}

RegState
Verifier::transfer(size_t block_idx, RegState state, bool emit) {
    const BasicBlock& bb = blocks_[block_idx];
    for (uint32_t pc = bb.first; pc <= bb.last; pc += 4) {
        const Insn& d = insns_[pc / 4];
        if (emit) {
            check_instruction(pc, d, state);
            // Certificate facts: per-block worst-case cost, the store
            // footprint, and indirect-jump presence (which defeats the
            // longest-path WCET: the CFG has no edge for the target).
            cost_instrs_[block_idx] += 1;
            cost_cycles_[block_idx] += insn_cycles(d, state);
            if (d.op == Op::kStore) note_store(d, state);
            if (d.op == Op::kJalr) has_indirect_jump_ = true;
        }

        // Track whether this block can touch MMIO or the broadcast region
        // (an observable side effect for the busy-loop check).
        if (d.op == Op::kLoad || d.op == Op::kStore) {
            const AbsVal& base = state.r[d.rs1];
            constexpr Region kObservable[] = {
                {rpu::kIoBase, rpu::kIoSize, "IO"},
                {rpu::kIoExtBase, rpu::kIoExtSize, "IO_EXT"},
                {rpu::kBcastBase, rpu::kBcastSize, "BCAST"},
            };
            if (!base.is_word_range() ||
                intersects_any_region(kObservable, 3, base.lo + d.imm,
                                      base.hi + d.imm + (1 << (d.funct3 & 3)) - 1)) {
                observable_[block_idx] = 1;
            }
        }

        // Discover interrupt vectors / interrupt enables.
        if (d.op == Op::kCsr && d.rs1 != rv::zero && d.funct3 <= 2) {
            if (d.csr == rv::kCsrMtvec && state.r[d.rs1].is_const()) {
                handler_roots_.insert(uint32_t(state.r[d.rs1].lo) & ~3u);
            }
            if (d.csr == rv::kCsrMstatus) report_.interrupts_possible = true;
        }

        AbsVal result = AbsVal::top(true);
        switch (d.op) {
        case Op::kLui:
        case Op::kAuipc:
        case Op::kJal:
        case Op::kJalr:
        case Op::kCsr:
            result = eval_alu(d, state.r[d.rs1], state.r[d.rs2], pc);
            break;
        case Op::kAluImm:
        case Op::kAluReg:
            result = eval_alu(d, state.r[d.rs1], state.r[d.rs2], pc);
            break;
        case Op::kLoad:
            // Memory contents are unknown, but the load width still bounds
            // the value: sub-word loads are zero/sign-extended by the core.
            switch (d.funct3) {
            case 0: result = AbsVal::range(-128, 127); break;       // lb
            case 1: result = AbsVal::range(-32768, 32767); break;   // lh
            case 4: result = AbsVal::range(0, 255); break;          // lbu
            case 5: result = AbsVal::range(0, 65535); break;        // lhu
            default: result = AbsVal::top(true); break;             // lw
            }
            break;
        default:
            break;
        }
        if (writes_rd(d)) state.r[d.rd] = result;
        if (emit && writes_rd(d) && d.rd == rv::sp) {
            // Stack-depth bound: the span of every value ever written to sp.
            if (!sp_written_) {
                sp_lo_ = kClamp;
                sp_hi_ = -kClamp;
            }
            sp_written_ = true;
            if (!result.init || result.lo <= -kClamp || result.hi >= kClamp) {
                sp_top_ = true;
            } else {
                sp_lo_ = std::min(sp_lo_, result.lo);
                sp_hi_ = std::max(sp_hi_, result.hi);
            }
        }
        state.r[0] = AbsVal::constant(0);
    }
    return state;
}

// Interval intersection / endpoint trimming used by the edge refinement.
// A refinement that would empty an interval is dropped: the edge is
// infeasible, but keeping the unrefined superset is sound and keeps every
// BFS-reachable block analyzed (no silent dead-code suppression).
namespace refine {

void
intersect(AbsVal& x, const AbsVal& y) {
    int64_t lo = std::max(x.lo, y.lo);
    int64_t hi = std::min(x.hi, y.hi);
    if (lo <= hi) {
        x.lo = lo;
        x.hi = hi;
    }
}

void
trim_ne(AbsVal& x, const AbsVal& c) {
    if (!c.is_const()) return;
    if (x.lo == c.lo && x.lo < x.hi) ++x.lo;
    if (x.hi == c.lo && x.hi > x.lo) --x.hi;
}

/// Refine with the fact a < b (`truth`) or a >= b (`!truth`).
void
less(AbsVal& a, AbsVal& b, bool truth) {
    if (truth) {
        int64_t ahi = std::min(a.hi, b.hi - 1);
        int64_t blo = std::max(b.lo, a.lo + 1);
        if (ahi >= a.lo) a.hi = ahi;
        if (blo <= b.hi) b.lo = blo;
    } else {
        int64_t alo = std::max(a.lo, b.lo);
        int64_t bhi = std::min(b.hi, a.hi);
        if (alo <= a.hi) a.lo = alo;
        if (bhi >= b.lo) b.hi = bhi;
    }
}

}  // namespace refine

/// Narrow the out-state of block `b` along the edge to `succ` using the
/// block's terminating branch. Handles the direct blt/bge/bltu/bgeu/beq/bne
/// comparisons and the slt-family guard idiom (`slti t, s, K` followed by
/// `beqz/bnez t`) so counted loops and capacity guards carry their bounds
/// into the loop body. This is what keeps, e.g., a reorder-buffer occupancy
/// count below its `slti`-checked cap in the abstract state.
RegState
Verifier::refine_edge(size_t b, RegState out, uint32_t succ) const {
    const BasicBlock& bb = blocks_[b];
    const Insn& t = insns_[bb.last / 4];
    if (t.op != Op::kBranch || out.bottom) return out;
    const uint32_t taken = bb.last + uint32_t(t.imm);
    const uint32_t fall = bb.last + 4;
    if (taken == fall || (succ != taken && succ != fall)) return out;
    const bool is_taken = succ == taken;

    Reg lhs = t.rs1;
    Reg rhs = t.rs2;
    uint32_t f3 = t.funct3;
    bool truth = is_taken;
    bool rhs_is_imm = false;
    int64_t imm_rhs = 0;

    if ((f3 == 0 || f3 == 1) && t.rs2 == rv::zero && t.rs1 != rv::zero) {
        // beqz/bnez of a value produced by slt/slti/sltu/sltiu earlier in
        // this block, with neither the result nor the compared operands
        // clobbered in between.
        const Insn* def = nullptr;
        for (uint32_t pc = bb.first; pc < bb.last; pc += 4) {
            const Insn& d = insns_[pc / 4];
            if (!writes_rd(d)) continue;
            if (d.rd == t.rs1) {
                def = &d;
            } else if (def != nullptr &&
                       (d.rd == def->rs1 ||
                        (def->op == Op::kAluReg && d.rd == def->rs2))) {
                def = nullptr;
            }
        }
        const bool is_slt =
            def != nullptr && (def->op == Op::kAluImm || def->op == Op::kAluReg) &&
            (def->funct3 == 2 || def->funct3 == 3) &&
            (def->op == Op::kAluImm || def->funct7 == 0) && def->rs1 != def->rd &&
            (def->op == Op::kAluImm || def->rs2 != def->rd);
        if (is_slt) {
            truth = (f3 == 1) == is_taken;  // bnez(slt) <=> comparison holds
            lhs = def->rs1;
            f3 = def->funct3 == 2 ? 4U : 6U;  // slt -> blt, sltu -> bltu
            if (def->op == Op::kAluImm) {
                rhs_is_imm = true;
                imm_rhs = def->imm;
            } else {
                rhs = def->rs2;
            }
        }
    }

    AbsVal a = out.r[lhs];
    AbsVal bv = rhs_is_imm ? AbsVal::constant(imm_rhs) : out.r[rhs];
    switch (f3) {
    case 0:  // beq: taken <=> equal
        if (truth) {
            AbsVal a0 = a;
            refine::intersect(a, bv);
            refine::intersect(bv, a0);
        } else {
            refine::trim_ne(a, bv);
            refine::trim_ne(bv, a);
        }
        break;
    case 1:  // bne: taken <=> not equal
        if (truth) {
            refine::trim_ne(a, bv);
            refine::trim_ne(bv, a);
        } else {
            AbsVal a0 = a;
            refine::intersect(a, bv);
            refine::intersect(bv, a0);
        }
        break;
    case 4:  // blt
        refine::less(a, bv, truth);
        break;
    case 5:  // bge: taken <=> !(a < b)
        refine::less(a, bv, !truth);
        break;
    case 6:  // bltu: valid on the unsigned number line only
        if (a.is_word_range() && bv.is_word_range()) refine::less(a, bv, truth);
        break;
    case 7:  // bgeu
        if (a.is_word_range() && bv.is_word_range()) refine::less(a, bv, !truth);
        break;
    default:
        break;
    }
    if (lhs != rv::zero) out.r[lhs] = a;
    if (!rhs_is_imm && rhs != rv::zero) out.r[rhs] = bv;
    return out;
}

void
Verifier::fixpoint() {
    std::deque<size_t> work;
    for (uint32_t root : roots_) {
        auto it = block_at_.find(root);
        if (it == block_at_.end()) continue;
        bool handler = handler_roots_.count(root) && root != opts_.entry;
        join_into(in_states_[it->second], make_root_state(handler), false);
        work.push_back(it->second);
    }
    while (!work.empty()) {
        size_t b = work.front();
        work.pop_front();
        RegState out = transfer(b, in_states_[b], /*emit=*/false);
        for (uint32_t succ : blocks_[b].succs) {
            auto it = block_at_.find(succ);
            if (it == block_at_.end()) continue;
            size_t sb = it->second;
            bool widen = ++join_counts_[sb] > kWidenAfter;
            if (join_into(in_states_[sb], refine_edge(b, out, succ), widen)) {
                work.push_back(sb);
            }
        }
    }
}

void
Verifier::check_instruction(uint32_t pc, const Insn& d, const RegState& state) {
    if (d.op == Op::kIllegal) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "illegal instruction 0x%08x on a reachable path",
                      image_[pc / 4]);
        diag(Check::kDecode, Severity::kError, pc, buf);
        return;
    }
    if (opts_.check_uninit) {
        auto check_read = [&](Reg r) {
            if (r != rv::zero && !state.r[r].init) {
                diag(Check::kUninit, Severity::kError, pc,
                     "register " + std::string(kRegNames[r]) +
                         " is read but never written on some path to " + hex(pc));
            }
        };
        if (reads_rs1(d)) check_read(d.rs1);
        if (reads_rs2(d)) check_read(d.rs2);
    }
    if (d.op == Op::kCsr && !contains(kAllowedCsrs, d.csr)) {
        diag(Check::kCsr, Severity::kError, pc,
             "access to reserved CSR " + hex(d.csr) +
                 " (core implements mstatus/mtvec/mepc/mcause and the counters)");
    }
    if (d.op == Op::kJalr) {
        const AbsVal& base = state.r[d.rs1];
        if (base.is_const()) {
            uint32_t target = uint32_t(base.lo + d.imm) & ~1u;
            if ((target & 3) || target >= end_addr()) {
                diag(Check::kCfg, Severity::kError, pc,
                     "jalr target " + hex(target) + " is outside the image");
            }
        } else {
            diag(Check::kCfg, Severity::kWarning, pc,
                 "indirect jump with a statically unknown target is not verified");
        }
    }
    if (d.op == Op::kLoad || d.op == Op::kStore) check_memory(pc, d, state);
}

void
Verifier::check_memory(uint32_t pc, const Insn& d, const RegState& state) {
    const AbsVal& base = state.r[d.rs1];
    if (!base.init) return;  // already reported as an uninitialized read
    const uint32_t size = 1u << (d.funct3 & 3);
    const bool is_store = d.op == Op::kStore;
    const Region* regions = is_store ? kStoreRegions : kLoadRegions;
    const size_t nregions =
        is_store ? std::size(kStoreRegions) : std::size(kLoadRegions);
    const char* verb = is_store ? "store" : "load";

    if (base.is_const()) {
        // Exact address: check with 32-bit wraparound semantics.
        const uint32_t addr = uint32_t(int64_t(base.lo) + d.imm);
        const int64_t lo = addr, hi = int64_t(addr) + size - 1;
        if (!intersects_any_region(regions, nregions, lo, hi)) {
            diag(Check::kMemory, Severity::kError, pc,
                 std::string(verb) + " of " + std::to_string(size) + " bytes at " +
                     hex(addr) + " is outside every mapped region");
            return;
        }
        const Region io{rpu::kIoBase, rpu::kIoSize, "IO"};
        if (region_contains(io, lo, hi)) {
            const uint32_t offset = (addr - rpu::kIoBase) & ~3u;
            const bool known = is_store ? contains(kWritableIo, offset)
                                        : contains(kReadableIo, offset);
            if (!known) {
                diag(Check::kMmio, Severity::kError, pc,
                     std::string(verb) + " touches reserved interconnect register offset " +
                         hex(offset));
            }
        }
        return;
    }
    if (!base.is_word_range()) return;  // unknown: cannot prove a violation
    const int64_t lo = base.lo + d.imm;
    const int64_t hi = base.hi + d.imm + size - 1;
    if (lo >= 0 && hi <= kWordMax && !intersects_any_region(regions, nregions, lo, hi)) {
        diag(Check::kMemory, Severity::kError, pc,
             std::string(verb) + " range [" + hex(uint32_t(lo)) + ", " + hex(uint32_t(hi)) +
                 "] is provably outside every mapped region");
    }
}

void
Verifier::scan_unreachable() {
    size_t i = 0;
    while (i < image_.size()) {
        if (reachable_[i] || image_[i] == 0) {
            ++i;
            continue;
        }
        size_t start = i;
        while (i < image_.size() && !reachable_[i] && image_[i] != 0) ++i;
        diag(Check::kUnreachable, Severity::kWarning, uint32_t(start) * 4,
             "unreachable code: " + std::to_string(i - start) + " word(s) at " +
                 hex(uint32_t(start) * 4) + ".." + hex(uint32_t(i) * 4 - 4) +
                 " are never executed");
    }
}

/// Iterative Tarjan over an adjacency list (stack-safe on big images).
/// Returns the component count; `comp[v]` ids come out reverse-topological:
/// for every edge u -> v across components, comp[u] > comp[v].
int
tarjan_scc(const std::vector<std::vector<size_t>>& adj, std::vector<int>& comp) {
    const size_t n = adj.size();
    std::vector<int> index(n, -1), low(n, 0), on_stack(n, 0);
    comp.assign(n, -1);
    std::vector<size_t> stack;
    int next_index = 0, next_comp = 0;

    struct Frame {
        size_t v;
        size_t child = 0;
    };
    for (size_t start = 0; start < n; ++start) {
        if (index[start] != -1) continue;
        std::vector<Frame> frames{{start}};
        while (!frames.empty()) {
            Frame& f = frames.back();
            size_t v = f.v;
            if (f.child == 0) {
                index[v] = low[v] = next_index++;
                stack.push_back(v);
                on_stack[v] = 1;
            }
            bool descended = false;
            while (f.child < adj[v].size()) {
                size_t w = adj[v][f.child];
                ++f.child;
                if (index[w] == -1) {
                    frames.push_back({w});
                    descended = true;
                    break;
                }
                if (on_stack[w]) low[v] = std::min(low[v], index[w]);
            }
            if (descended) continue;
            if (low[v] == index[v]) {
                while (true) {
                    size_t w = stack.back();
                    stack.pop_back();
                    on_stack[w] = 0;
                    comp[w] = next_comp;
                    if (w == v) break;
                }
                ++next_comp;
            }
            frames.pop_back();
            if (!frames.empty()) {
                size_t parent = frames.back().v;
                low[parent] = std::min(low[parent], low[v]);
            }
        }
    }
    return next_comp;
}

/// Tarjan SCC over the block graph; flag cycles with no exit edge and no
/// observable effect (unless an interrupt could rescue them, or the bound
/// inference already proved the loop finite).
void
Verifier::find_busy_loops() {
    const size_t n = blocks_.size();
    std::vector<int> comp;
    const int next_comp = tarjan_scc(adj_, comp);

    for (int c = 0; c < next_comp; ++c) {
        bool cyclic = false, has_exit = false, observable = false;
        uint32_t first_pc = ~0u;
        size_t members = 0;
        for (size_t b = 0; b < n; ++b) {
            if (comp[b] != c) continue;
            ++members;
            first_pc = std::min(first_pc, blocks_[b].first);
            if (observable_[b]) observable = true;
            for (uint32_t s : blocks_[b].succs) {
                auto it = block_at_.find(s);
                if (it == block_at_.end()) continue;
                if (comp[it->second] == c) {
                    cyclic = true;
                } else {
                    has_exit = true;
                }
            }
        }
        if (members > 1) cyclic = true;
        // A loop the bound inference proved finite terminates by that very
        // proof — exempt it even when the side-effect heuristic sees nothing
        // (counted delay loops). A finitely-bounded loop always has an exit
        // edge, so this is belt-and-braces, but it decouples the two passes.
        bool proven_finite = false;
        for (size_t b = 0; b < n; ++b) {
            if (comp[b] != c) continue;
            auto lit = loops_found_.find(blocks_[b].first);
            if (lit != loops_found_.end() && lit->second.bounded) proven_finite = true;
        }
        if (cyclic && !has_exit && !observable && !proven_finite &&
            !report_.interrupts_possible) {
            diag(Check::kLoop, Severity::kError, first_pc,
                 "busy loop at " + hex(first_pc) +
                     " has no exit edge and no observable side effect "
                     "(provably infinite)");
        }
    }
}

// --- certification ----------------------------------------------------------

/// Saturation cap for certificate arithmetic: large enough that any real
/// firmware bound fits, small enough that trips * cost never overflows.
constexpr uint64_t kCostCap = uint64_t(1) << 50;

uint64_t
sat_add(uint64_t a, uint64_t b) {
    return a > kCostCap - std::min(b, kCostCap) ? kCostCap : a + b;
}

uint64_t
sat_mul(uint64_t a, uint64_t b) {
    if (a == 0 || b == 0) return 0;
    return a > kCostCap / b ? kCostCap : a * b;
}

/// Ceil division for non-negative int64 operands.
uint64_t
ceil_div(int64_t num, int64_t den) {
    if (num <= 0) return 0;
    return uint64_t((num + den - 1) / den);
}

/// Trip-count inference for one counted loop: the SCC `C` entered at
/// `header`. Looks for a counter register written exactly once in the SCC
/// by `addi c, c, step`, where the counter's block lies on every cycle
/// through the header and on no inner cycle avoiding it — so every
/// iteration steps the counter exactly once, monotonically. Two bounds are
/// derived and the tighter wins:
///
///   * exit-test formulas: if an exit branch compares the counter against
///     x0 or a loop-invariant register, the continue condition plus the
///     counter's *entry* interval (join over loop-entering edges only)
///     yields a closed-form bound, with wraparound guards per form;
///   * interval width: the counter's fixpoint interval at its step block
///     already covers every iteration; a monotone step of |s| inside a
///     finite interval of width W can fire at most W/|s| times.
///
/// All bounds carry +2 slack (head-vs-latch test position, the final
/// failing test). Returns kUnboundedTrips when nothing matches.
uint64_t
Verifier::infer_loop_trips(const std::set<size_t>& C, size_t header) {
    // Census of registers written inside the SCC.
    struct WriteInfo {
        int count = 0;
        bool is_step = false;
        int64_t step = 0;
        size_t block = 0;
    };
    std::array<WriteInfo, 32> writes{};
    for (size_t b : C) {
        const BasicBlock& bb = blocks_[b];
        for (uint32_t pc = bb.first; pc <= bb.last; pc += 4) {
            const Insn& d = insns_[pc / 4];
            if (!writes_rd(d)) continue;
            WriteInfo& w = writes[d.rd];
            ++w.count;
            w.is_step =
                d.op == Op::kAluImm && d.funct3 == 0 && d.rs1 == d.rd && d.imm != 0;
            w.step = d.imm;
            w.block = b;
        }
    }

    // True if every cycle through `header` passes through `blk`
    // (no header-cycle avoids it).
    auto on_every_cycle = [&](size_t blk) {
        if (blk == header) return true;
        std::set<size_t> seen;
        std::deque<size_t> work;
        auto push = [&](size_t s) -> bool {
            if (!C.count(s) || s == blk) return false;
            if (s == header) return true;  // found a cycle avoiding blk
            if (seen.insert(s).second) work.push_back(s);
            return false;
        };
        for (size_t s : adj_[header]) {
            if (push(s)) return false;
        }
        while (!work.empty()) {
            size_t v = work.front();
            work.pop_front();
            for (size_t s : adj_[v]) {
                if (push(s)) return false;
            }
        }
        return true;
    };
    // True if `blk` is on no inner cycle (cannot reach itself within
    // C minus the header) — so it executes at most once per iteration.
    auto not_on_inner_cycle = [&](size_t blk) {
        if (blk == header) return true;
        std::set<size_t> seen;
        std::deque<size_t> work;
        auto push = [&](size_t s) -> bool {
            if (!C.count(s) || s == header) return false;
            if (s == blk) return true;
            if (seen.insert(s).second) work.push_back(s);
            return false;
        };
        for (size_t s : adj_[blk]) {
            if (push(s)) return false;
        }
        while (!work.empty()) {
            size_t v = work.front();
            work.pop_front();
            for (size_t s : adj_[v]) {
                if (push(s)) return false;
            }
        }
        return true;
    };

    // Join of a register's value over all loop-*entering* edges (global
    // predecessors outside the SCC, refined along the edge into the header).
    auto entry_interval = [&](int reg) -> AbsVal {
        AbsVal acc{};
        bool any = false;
        auto take = [&](const AbsVal& v) {
            AbsVal w = v.init ? v : AbsVal::top(true);
            if (!any) {
                acc = w;
                any = true;
            } else {
                acc.lo = std::min(acc.lo, w.lo);
                acc.hi = std::max(acc.hi, w.hi);
            }
        };
        if (roots_.count(blocks_[header].first)) take(AbsVal::top(true));
        for (size_t p = 0; p < blocks_.size(); ++p) {
            if (C.count(p) || in_states_[p].bottom) continue;
            bool edge = false;
            for (size_t s : adj_[p]) edge = edge || s == header;
            if (!edge) continue;
            RegState out =
                refine_edge(p, transfer(p, in_states_[p], false), blocks_[header].first);
            take(out.r[reg]);
        }
        return any ? acc : AbsVal::top(true);
    };

    uint64_t best = kUnboundedTrips;

    for (int c = 1; c < 32; ++c) {
        const WriteInfo& w = writes[c];
        if (w.count != 1 || !w.is_step) continue;
        if (!on_every_cycle(w.block) || !not_on_inner_cycle(w.block)) continue;
        const int64_t s = w.step;

        // Interval-width fallback: the fixpoint interval of c at the step
        // block covers all iterations; monotone stepping bounds the count.
        const AbsVal& fix = in_states_[w.block].r[c];
        if (fix.init && fix.lo > -kClamp && fix.hi < kClamp) {
            best = std::min(best, ceil_div(fix.hi - fix.lo, mag64(s)) + 2);
        }

        const AbsVal entry = entry_interval(c);
        const int64_t ilo = entry.lo, ihi = entry.hi;

        // Exit-test formulas: scan exit branches comparing c against a
        // loop-invariant bound.
        for (size_t b : C) {
            const Insn& t = insns_[blocks_[b].last / 4];
            if (t.op != Op::kBranch) continue;
            if (!on_every_cycle(b) || !not_on_inner_cycle(b)) continue;
            // Exactly one in-SCC successor (the continue edge) and at
            // least one exit edge.
            std::set<size_t> in_scc, out_scc;
            for (size_t sb : adj_[b]) (C.count(sb) ? in_scc : out_scc).insert(sb);
            if (in_scc.size() != 1 || out_scc.empty()) continue;
            const uint32_t taken = uint32_t(int64_t(blocks_[b].last) + t.imm);
            const uint32_t fall = blocks_[b].last + 4;
            if (taken == fall) continue;
            const bool cont_taken = blocks_[*in_scc.begin()].first == taken;

            int other = -1;
            bool swapped = false;  // counter is rs2
            if (t.rs1 == c && t.rs2 != c) {
                other = t.rs2;
            } else if (t.rs2 == c && t.rs1 != c) {
                other = t.rs1;
                swapped = true;
            } else {
                continue;
            }
            if (other != 0 && writes[other].count != 0) continue;  // not invariant

            // Normalize to a continue-condition on (c ? K).
            enum Cmp { kNe, kLt, kLe, kGt, kGe, kLtu, kLeu, kGtu, kGeu, kBad };
            Cmp cc = kBad;
            switch (t.funct3) {
            case 0: cc = cont_taken ? kBad : kNe; break;  // beq: continue on !=
            case 1: cc = cont_taken ? kNe : kBad; break;  // bne: continue on !=
            case 4: cc = cont_taken ? kLt : kGe; break;
            case 5: cc = cont_taken ? kGe : kLt; break;
            case 6: cc = cont_taken ? kLtu : kGeu; break;
            case 7: cc = cont_taken ? kGeu : kLtu; break;
            default: break;
            }
            if (cc == kBad) continue;
            if (swapped) {
                switch (cc) {
                case kLt: cc = kGt; break;
                case kGe: cc = kLe; break;
                case kLtu: cc = kGtu; break;
                case kGeu: cc = kLeu; break;
                default: break;  // kNe symmetric
                }
            }

            const AbsVal kv = other == 0 ? AbsVal::constant(0) : entry_interval(other);
            const int64_t Klo = kv.lo, Khi = kv.hi;
            const bool i32s = ilo >= kI32Min && ihi <= kI32Max && Klo >= kI32Min &&
                              Khi <= kI32Max;
            const bool wordu = ilo >= 0 && ihi <= kWordMax && Klo >= 0 && Khi <= kWordMax;

            uint64_t trips = kUnboundedTrips;
            switch (cc) {
            case kNe:
                // Equality exit needs an exact hit: only |step| == 1 with
                // the counter provably on the right side of K = 0.
                if (other != 0 || !i32s) break;
                if (s == -1 && ilo >= 1) trips = uint64_t(ihi) + 2;
                if (s == 1 && ihi <= -1) trips = uint64_t(-ilo) + 2;
                break;
            case kLt:
                if (s > 0 && i32s && Khi + s <= kI32Max + 1) {
                    trips = ceil_div(Khi - ilo, s) + 2;
                }
                break;
            case kLe:
                if (s > 0 && i32s && Khi + s <= kI32Max) {
                    trips = ceil_div(Khi + 1 - ilo, s) + 2;
                }
                break;
            case kGe:
                if (s < 0 && i32s && Klo + s >= kI32Min) {
                    trips = ceil_div(ihi - Klo + 1, -s) + 2;
                }
                break;
            case kGt:
                if (s < 0 && i32s && Klo + s >= kI32Min) {
                    trips = ceil_div(ihi - Klo, -s) + 2;
                }
                break;
            case kLtu:
                if (s > 0 && wordu && Khi + s <= kWordMax + 1) {
                    trips = ceil_div(Khi - ilo, s) + 2;
                }
                break;
            case kLeu:
                if (s > 0 && wordu && Khi + s <= kWordMax) {
                    trips = ceil_div(Khi + 1 - ilo, s) + 2;
                }
                break;
            case kGeu:
                // Decrement must not wrap below zero past the exit window.
                if (s < 0 && wordu && -s <= Klo) {
                    trips = ceil_div(ihi - Klo + 1, -s) + 2;
                }
                break;
            case kGtu:
                if (s < 0 && wordu && -s <= Klo + 1) {
                    trips = ceil_div(ihi - Klo, -s) + 2;
                }
                break;
            default:
                break;
            }
            best = std::min(best, trips);
        }
    }
    return best;
}

/// Worst-case cost of the subgraph induced by `nodes` entered at `entries`,
/// with `removed` edges deleted (back edges of enclosing loops). Condenses
/// the subgraph into SCCs, bounds each nontrivial SCC (trip count times the
/// worst path through one iteration body, computed recursively with the
/// header's back edges removed), then takes the longest path over the
/// condensation DAG. An unbounded SCC that touches MMIO counts one
/// traversal — the per-packet handler path of a service/poll loop — while
/// an unbounded SCC with no observable effect poisons the cost.
Verifier::PathCost
Verifier::wcet_subgraph(const std::set<size_t>& nodes, const std::set<size_t>& entries,
                        std::set<std::pair<size_t, size_t>> removed, int depth) {
    PathCost result;
    if (nodes.empty()) return result;
    if (depth > 64) {
        result.bounded = false;
        return result;
    }

    // Induced subgraph under local indices.
    std::vector<size_t> order(nodes.begin(), nodes.end());
    std::map<size_t, size_t> local;
    for (size_t i = 0; i < order.size(); ++i) local[order[i]] = i;
    std::vector<std::vector<size_t>> adj(order.size());
    for (size_t i = 0; i < order.size(); ++i) {
        for (size_t s : adj_[order[i]]) {
            if (nodes.count(s) && !removed.count({order[i], s})) {
                adj[i].push_back(local[s]);
            }
        }
    }
    std::vector<int> comp;
    const int ncomp = tarjan_scc(adj, comp);

    // Per-component members and self-loop detection.
    std::vector<std::vector<size_t>> members(ncomp);  // local indices
    for (size_t i = 0; i < order.size(); ++i) members[comp[i]].push_back(i);
    std::vector<uint8_t> self_edge(ncomp, 0);
    for (size_t i = 0; i < order.size(); ++i) {
        for (size_t s : adj[i]) {
            if (s == i) self_edge[comp[i]] = 1;
        }
    }

    // Cost one component: either a single block or a bounded loop.
    std::vector<PathCost> cost(ncomp);
    for (int c = 0; c < ncomp; ++c) {
        const bool nontrivial = members[c].size() > 1 || self_edge[c];
        if (!nontrivial) {
            const size_t g = order[members[c][0]];
            cost[c].instrs = cost_instrs_[g];
            cost[c].cycles = cost_cycles_[g];
            cost[c].path = {g};
            continue;
        }
        std::set<size_t> scc;  // global ids
        for (size_t m : members[c]) scc.insert(order[m]);

        // Headers: entry blocks of the loop (named entries, or targets of
        // edges from outside the SCC). Irreducible (multi-header) loops are
        // not bounded.
        std::set<size_t> headers;
        for (size_t m : members[c]) {
            const size_t g = order[m];
            if (entries.count(g)) headers.insert(g);
        }
        for (size_t i = 0; i < order.size(); ++i) {
            if (comp[i] == c) continue;
            for (size_t s : adj[i]) {
                if (comp[s] == c) headers.insert(order[s]);
            }
        }
        bool observable = false;
        uint32_t lowest_pc = ~0u;
        for (size_t g : scc) {
            observable = observable || observable_[g];
            lowest_pc = std::min(lowest_pc, blocks_[g].first);
        }

        uint64_t trips = kUnboundedTrips;
        PathCost body;
        uint32_t header_pc = lowest_pc;
        if (headers.size() == 1) {
            const size_t h = *headers.begin();
            header_pc = blocks_[h].first;
            trips = infer_loop_trips(scc, h);
            auto inner_removed = removed;
            for (size_t g : scc) {
                for (size_t s : adj_[g]) {
                    if (s == h) inner_removed.insert({g, h});
                }
            }
            body = wcet_subgraph(scc, {h}, std::move(inner_removed), depth + 1);
        } else {
            body.bounded = false;  // irreducible: no single iteration body
        }

        // Record the loop in the certificate (dedup by header; keep the
        // tighter verdict when several roots reach the same loop).
        LoopBound lb{header_pc, trips != kUnboundedTrips,
                     trips == kUnboundedTrips ? 0 : trips, observable,
                     uint32_t(scc.size())};
        auto fit = loops_found_.find(header_pc);
        if (fit == loops_found_.end()) {
            loops_found_[header_pc] = lb;
        } else if (lb.bounded &&
                   (!fit->second.bounded || lb.max_trips < fit->second.max_trips)) {
            fit->second = lb;
        }

        if (trips != kUnboundedTrips && body.bounded) {
            cost[c].instrs = sat_mul(trips, body.instrs);
            cost[c].cycles = sat_mul(trips, body.cycles);
            cost[c].path = body.path;
        } else if (observable && body.bounded) {
            // Service/poll loop: per handler activation, one traversal.
            cost[c] = body;
        } else {
            cost[c].bounded = false;
        }
    }

    // Longest path over the condensation DAG. Tarjan ids are
    // reverse-topological (successor components get smaller ids), so a
    // single ascending sweep sees every successor before its predecessors.
    std::vector<std::vector<int>> csucc(ncomp);
    for (size_t i = 0; i < order.size(); ++i) {
        for (size_t s : adj[i]) {
            if (comp[s] != comp[i]) csucc[comp[i]].push_back(comp[s]);
        }
    }
    std::vector<uint64_t> dist_i(ncomp, 0), dist_c(ncomp, 0);
    std::vector<uint8_t> dist_bounded(ncomp, 1);
    std::vector<int> best_succ(ncomp, -1);
    for (int c = 0; c < ncomp; ++c) {
        uint64_t bi = 0, bc = 0;
        int bs = -1;
        bool ok = true;
        for (int s : csucc[c]) {
            if (!dist_bounded[s]) ok = false;
            if (dist_i[s] > bi || (dist_i[s] == bi && bs == -1)) {
                bi = dist_i[s];
                bc = dist_c[s];
                bs = s;
            }
        }
        dist_bounded[c] = ok && cost[c].bounded;
        dist_i[c] = sat_add(cost[c].instrs, bi);
        dist_c[c] = sat_add(cost[c].cycles, bc);
        best_succ[c] = bs;
    }

    // Answer: worst entry component.
    int start = -1;
    for (size_t g : entries) {
        auto it = local.find(g);
        if (it == local.end()) continue;
        const int c = comp[it->second];
        if (start == -1 || !dist_bounded[c] ||
            (dist_bounded[start] && dist_i[c] > dist_i[start])) {
            start = c;
        }
        if (!dist_bounded[c]) break;  // unbounded dominates
    }
    if (start == -1) return result;
    result.bounded = dist_bounded[start];
    result.instrs = dist_i[start];
    result.cycles = dist_c[start];
    for (int c = start; c != -1; c = best_succ[c]) {
        result.path.insert(result.path.end(), cost[c].path.begin(), cost[c].path.end());
    }
    return result;
}

/// Compute the line-rate certificate after the final analysis pass: per-root
/// WCET over the loop-bounded CFG, the loop table, per-block costs with the
/// critical path marked, the stack-depth bound, and the store-footprint /
/// text-write-separation facts accumulated during the emit pass.
void
Verifier::certify() {
    Certificate& cert = report_.cert;
    std::set<size_t> all;
    for (size_t b = 0; b < blocks_.size(); ++b) all.insert(b);

    std::set<size_t> critical;
    uint64_t worst_i = 0, worst_c = 0;
    bool all_bounded = true;
    for (uint32_t r : roots_) {
        auto it = block_at_.find(r);
        if (it == block_at_.end()) continue;
        PathCost pc = wcet_subgraph(all, {it->second}, {}, 0);
        // A reachable indirect jump defeats the longest-path bound: the
        // CFG carries no edge for the target.
        const bool bounded = pc.bounded && !has_indirect_jump_;
        cert.roots.push_back({r, bounded, pc.instrs, pc.cycles});
        all_bounded = all_bounded && bounded;
        if (bounded && pc.instrs >= worst_i) {
            worst_i = pc.instrs;
            worst_c = std::max(worst_c, pc.cycles);
            critical.clear();
            critical.insert(pc.path.begin(), pc.path.end());
        }
    }
    cert.wcet_bounded = all_bounded && !cert.roots.empty();
    cert.wcet_instructions = cert.wcet_bounded ? worst_i : 0;
    cert.wcet_cycles = cert.wcet_bounded ? worst_c : 0;

    for (const auto& [pc, lb] : loops_found_) cert.loops.push_back(lb);
    for (size_t b = 0; b < blocks_.size(); ++b) {
        cert.block_costs[blocks_[b].first] = {cost_instrs_[b], cost_cycles_[b],
                                              cert.wcet_bounded && critical.count(b) > 0};
    }

    cert.stack_bounded = !sp_written_ || !sp_top_;
    cert.stack_bytes =
        sp_written_ && !sp_top_ ? uint32_t(sp_hi_ - sp_lo_) : 0;

    cert.text_write_separation = !store_may_hit_text_ && unproven_stores_ == 0;
    cert.unproven_stores = unproven_stores_;
    for (size_t i = 0; i < std::size(kStoreRegions); ++i) {
        const RegionAcc& acc = region_writes_[i];
        if (!acc.any) continue;
        cert.writes.push_back(
            {kStoreRegions[i].name, uint32_t(acc.lo), uint32_t(acc.hi)});
    }
}

void
Verifier::check_slot_window() {
    const SlotWindow& s = opts_.slots;
    if (s.count == 0) return;
    const uint64_t end = uint64_t(s.base) + uint64_t(s.count) * s.size;
    if (s.base < rpu::kPmemBase || end > uint64_t(rpu::kPmemBase) + rpu::kPmemSize) {
        diag(Check::kSlots, Severity::kError, 0,
             "slot window [" + hex(s.base) + ", " + hex(uint32_t(end)) + ") — " +
                 std::to_string(s.count) + " slots of " + std::to_string(s.size) +
                 " bytes — does not fit packet memory");
    }
    if (s.count > 250) {
        diag(Check::kSlots, Severity::kError, 0,
             "slot count " + std::to_string(s.count) +
                 " exceeds the descriptor tag range (250)");
    }
}

Report
Verifier::run() {
    if (image_.empty()) {
        diag(Check::kCfg, Severity::kError, 0, "empty firmware image");
        return std::move(report_);
    }
    if ((opts_.entry & 3) || opts_.entry >= end_addr()) {
        diag(Check::kCfg, Severity::kError, opts_.entry,
             "entry point " + hex(opts_.entry) + " is not a valid instruction address");
        return std::move(report_);
    }
    check_slot_window();

    // Interrupt handlers discovered through constant mtvec writes become
    // extra CFG roots; iterate until the root set is stable.
    roots_ = {opts_.entry};
    for (int iter = 0; iter < 4; ++iter) {
        discover_from_roots();
        build_blocks();
        fixpoint();
        size_t before = roots_.size();
        for (uint32_t h : handler_roots_) {
            if (h < end_addr() && (h & 3) == 0) roots_.insert(h);
        }
        if (roots_.size() == before) break;
    }

    // Final pass: walk every reachable block once with diagnostics on.
    for (size_t b = 0; b < blocks_.size(); ++b) {
        if (in_states_[b].bottom) continue;
        transfer(b, in_states_[b], /*emit=*/true);
        // Edge diagnostics (bad targets, fall-off-the-end).
        successors(blocks_[b].last, insns_[blocks_[b].last / 4], /*emit_diags=*/true);
    }
    certify();  // before find_busy_loops: proven-finite loops are exempt
    if (opts_.check_loops) find_busy_loops();
    scan_unreachable();

    report_.blocks = blocks_;
    report_.roots.assign(roots_.begin(), roots_.end());
    for (uint8_t r : reachable_) report_.instructions += r;
    std::sort(report_.diags.begin(), report_.diags.end(),
              [](const Diagnostic& a, const Diagnostic& b) { return a.pc < b.pc; });
    return std::move(report_);
}

}  // namespace

// --- public API -------------------------------------------------------------

const char*
check_name(Check c) {
    switch (c) {
    case Check::kDecode: return "decode";
    case Check::kCfg: return "cfg";
    case Check::kMemory: return "memory";
    case Check::kMmio: return "mmio";
    case Check::kCsr: return "csr";
    case Check::kUninit: return "uninit";
    case Check::kUnreachable: return "unreachable";
    case Check::kLoop: return "loop";
    case Check::kSlots: return "slots";
    }
    return "?";
}

size_t
Report::errors() const {
    size_t n = 0;
    for (const auto& d : diags) n += d.severity == Severity::kError;
    return n;
}

size_t
Report::warnings() const {
    return diags.size() - errors();
}

bool
Report::check_passed(Check c) const {
    for (const auto& d : diags) {
        if (d.check == c) return false;
    }
    return true;
}

std::string
Report::summary() const {
    std::string out;
    for (const auto& d : diags) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%s[%s] pc=0x%x: ",
                      d.severity == Severity::kError ? "error" : "warning",
                      check_name(d.check), d.pc);
        out += buf;
        out += d.message;
        out += "\n";
    }
    return out;
}

Report
verify_image(const std::vector<uint32_t>& image, const Options& opts) {
    return Verifier(image, opts).run();
}

std::string
cfg_dot(const std::vector<uint32_t>& image, const Report& report, const std::string& name) {
    // Loop headers by address for the per-block annotation.
    std::map<uint32_t, const LoopBound*> loops;
    for (const auto& lb : report.cert.loops) loops[lb.header] = &lb;

    std::string out = "digraph \"" + name + "\" {\n";
    out += "  node [shape=box, fontname=\"monospace\", fontsize=9];\n";
    for (const auto& bb : report.blocks) {
        char buf[96];
        std::snprintf(buf, sizeof(buf), "  \"%x\" [label=\"", bb.first);
        out += buf;
        for (uint32_t pc = bb.first; pc <= bb.last && pc / 4 < image.size(); pc += 4) {
            std::snprintf(buf, sizeof(buf), "%04x: ", pc);
            out += buf;
            out += rv::disassemble(image[pc / 4], pc);
            out += "\\l";
        }
        // Certificate annotations: per-block static cost, loop bound at
        // headers, critical (WCET) path highlighted.
        auto cit = report.cert.block_costs.find(bb.first);
        if (cit != report.cert.block_costs.end()) {
            std::snprintf(buf, sizeof(buf), "[%u insns / %u cyc]\\l",
                          cit->second.instructions, cit->second.cycles);
            out += buf;
        }
        auto lit = loops.find(bb.first);
        if (lit != loops.end()) {
            const LoopBound& lb = *lit->second;
            if (lb.bounded) {
                std::snprintf(buf, sizeof(buf), "loop <= %llu trips\\l",
                              static_cast<unsigned long long>(lb.max_trips));
                out += buf;
            } else {
                out += lb.observable ? "service loop\\l" : "unbounded loop\\l";
            }
        }
        out += "\"";
        if (cit != report.cert.block_costs.end() && cit->second.critical) {
            out += ", color=red, penwidth=2";
        }
        out += "];\n";
        for (uint32_t s : bb.succs) {
            std::snprintf(buf, sizeof(buf), "  \"%x\" -> \"%x\";\n", bb.first, s);
            out += buf;
        }
    }
    out += "}\n";
    return out;
}

std::string
certificate_json(const Report& report, const std::string& name) {
    const Certificate& c = report.cert;
    obs::JsonWriter w;
    w.begin_object();
    w.key("name").value(name);
    w.key("ok").value(report.ok());
    w.key("errors").value(uint64_t(report.errors()));
    w.key("warnings").value(uint64_t(report.warnings()));
    w.key("instructions").value(uint64_t(report.instructions));
    w.key("blocks").value(uint64_t(report.blocks.size()));

    w.key("wcet").begin_object();
    w.key("bounded").value(c.wcet_bounded);
    w.key("instructions").value(c.wcet_instructions);
    w.key("cycles").value(c.wcet_cycles);
    w.key("roots").begin_array();
    for (const auto& r : c.roots) {
        w.begin_object();
        w.key("root").value(uint64_t(r.root));
        w.key("bounded").value(r.bounded);
        w.key("instructions").value(r.instructions);
        w.key("cycles").value(r.cycles);
        w.end_object();
    }
    w.end_array();
    w.end_object();

    w.key("loops").begin_array();
    for (const auto& lb : c.loops) {
        w.begin_object();
        w.key("header").value(uint64_t(lb.header));
        w.key("bounded").value(lb.bounded);
        w.key("max_trips").value(lb.max_trips);
        w.key("observable").value(lb.observable);
        w.key("blocks").value(uint64_t(lb.blocks));
        w.end_object();
    }
    w.end_array();

    w.key("stack").begin_object();
    w.key("bounded").value(c.stack_bounded);
    w.key("bytes").value(uint64_t(c.stack_bytes));
    w.end_object();

    w.key("text_write_separation").value(c.text_write_separation);
    w.key("unproven_stores").value(uint64_t(c.unproven_stores));
    w.key("writes").begin_array();
    for (const auto& rw : c.writes) {
        w.begin_object();
        w.key("region").value(rw.region);
        w.key("lo").value(uint64_t(rw.lo));
        w.key("hi").value(uint64_t(rw.hi));
        w.end_object();
    }
    w.end_array();
    w.end_object();
    return w.str();
}

}  // namespace rosebud::verify
