#include "verify/verifier.h"

#include <algorithm>
#include <array>
#include <cinttypes>
#include <cstdio>
#include <deque>
#include <map>
#include <set>

#include "rv/disasm.h"
#include "rv/isa.h"

namespace rosebud::verify {

namespace {

using rv::Reg;

// --- decoding ---------------------------------------------------------------

/// Strict RV32IM decode classes. The interpreter in rv/core.cc is lenient
/// in places (it executes some malformed encodings); the verifier follows
/// the unprivileged spec so firmware stays portable to a real VexRiscv.
enum class Op {
    kIllegal,
    kLui,
    kAuipc,
    kJal,
    kJalr,
    kBranch,
    kLoad,
    kStore,
    kAluImm,
    kAluReg,
    kFence,
    kEcall,
    kEbreak,
    kMret,
    kCsr,
};

struct Insn {
    Op op = Op::kIllegal;
    Reg rd{};
    Reg rs1{};
    Reg rs2{};
    int32_t imm = 0;
    uint32_t funct3 = 0;
    uint32_t funct7 = 0;
    uint32_t csr = 0;
};

Insn
decode(uint32_t w) {
    Insn d;
    d.rd = rv::dec_rd(w);
    d.rs1 = rv::dec_rs1(w);
    d.rs2 = rv::dec_rs2(w);
    d.funct3 = rv::dec_funct3(w);
    d.funct7 = rv::dec_funct7(w);
    switch (rv::dec_opcode(w)) {
    case rv::kOpLui:
        d.op = Op::kLui;
        d.imm = rv::dec_imm_u(w);
        break;
    case rv::kOpAuipc:
        d.op = Op::kAuipc;
        d.imm = rv::dec_imm_u(w);
        break;
    case rv::kOpJal:
        d.op = Op::kJal;
        d.imm = rv::dec_imm_j(w);
        break;
    case rv::kOpJalr:
        if (d.funct3 != 0) break;
        d.op = Op::kJalr;
        d.imm = rv::dec_imm_i(w);
        break;
    case rv::kOpBranch:
        if (d.funct3 == 2 || d.funct3 == 3) break;
        d.op = Op::kBranch;
        d.imm = rv::dec_imm_b(w);
        break;
    case rv::kOpLoad:
        if (d.funct3 == 3 || d.funct3 > 5) break;
        d.op = Op::kLoad;
        d.imm = rv::dec_imm_i(w);
        break;
    case rv::kOpStore:
        if (d.funct3 > 2) break;
        d.op = Op::kStore;
        d.imm = rv::dec_imm_s(w);
        break;
    case rv::kOpImm:
        d.imm = rv::dec_imm_i(w);
        if (d.funct3 == 1 && d.funct7 != 0) break;
        if (d.funct3 == 5 && d.funct7 != 0 && d.funct7 != 0x20) break;
        d.op = Op::kAluImm;
        break;
    case rv::kOpReg:
        if (d.funct7 == 0x01 || d.funct7 == 0x00 ||
            (d.funct7 == 0x20 && (d.funct3 == 0 || d.funct3 == 5))) {
            d.op = Op::kAluReg;
        }
        break;
    case rv::kOpMiscMem:
        if (d.funct3 == 0) d.op = Op::kFence;
        break;
    case rv::kOpSystem:
        if (w == 0x00000073) {
            d.op = Op::kEcall;
        } else if (w == 0x00100073) {
            d.op = Op::kEbreak;
        } else if (w == 0x30200073) {
            d.op = Op::kMret;
        } else if (d.funct3 >= 1 && d.funct3 <= 3) {
            d.op = Op::kCsr;
            d.csr = w >> 20;
        }
        break;
    default:
        break;
    }
    return d;
}

bool
reads_rs1(const Insn& d) {
    switch (d.op) {
    case Op::kJalr:
    case Op::kBranch:
    case Op::kLoad:
    case Op::kStore:
    case Op::kAluImm:
    case Op::kAluReg:
    case Op::kCsr:
        return true;
    default:
        return false;
    }
}

bool
reads_rs2(const Insn& d) {
    return d.op == Op::kBranch || d.op == Op::kStore || d.op == Op::kAluReg;
}

bool
writes_rd(const Insn& d) {
    switch (d.op) {
    case Op::kLui:
    case Op::kAuipc:
    case Op::kJal:
    case Op::kJalr:
    case Op::kLoad:
    case Op::kAluImm:
    case Op::kAluReg:
    case Op::kCsr:
        return d.rd != rv::zero;
    default:
        return false;
    }
}

/// True if control cannot continue to pc+4 after this instruction.
bool
is_terminator(const Insn& d) {
    switch (d.op) {
    case Op::kJal:
    case Op::kJalr:
    case Op::kEcall:
    case Op::kEbreak:
    case Op::kMret:
    case Op::kIllegal:
        return true;
    default:
        return false;
    }
}

// --- abstract domain --------------------------------------------------------

/// Interval bound large enough to hold any sum/shift of 32-bit values the
/// transfer functions produce without overflowing int64.
constexpr int64_t kClamp = int64_t(1) << 40;
constexpr int64_t kWordMax = (int64_t(1) << 32) - 1;
constexpr int64_t kI32Min = -(int64_t(1) << 31);
constexpr int64_t kI32Max = (int64_t(1) << 31) - 1;

int64_t
mag64(int64_t v) {
    return v < 0 ? -v : v;
}

/// Abstract register: a signed interval plus a must-initialized bit.
struct AbsVal {
    bool init = false;
    int64_t lo = -kClamp;
    int64_t hi = kClamp;

    static AbsVal top(bool initialized) { return {initialized, -kClamp, kClamp}; }
    static AbsVal constant(int64_t v) { return {true, v, v}; }
    static AbsVal range(int64_t lo, int64_t hi) {
        return {true, std::max(lo, -kClamp), std::min(hi, kClamp)};
    }

    bool is_const() const { return lo == hi; }
    bool is_top() const { return lo <= -kClamp && hi >= kClamp; }
    /// The interval maps 1:1 onto unsigned 32-bit values (usable as an
    /// address range without worrying about wraparound).
    bool is_word_range() const { return lo >= 0 && hi <= kWordMax; }
};

struct RegState {
    std::array<AbsVal, 32> r{};
    bool bottom = true;  ///< no path reaches this point yet
};

RegState
make_root_state(bool regs_initialized) {
    RegState s;
    s.bottom = false;
    for (auto& v : s.r) v = AbsVal::top(regs_initialized);
    s.r[0] = AbsVal::constant(0);
    return s;
}

/// Join `src` into `dst`. When `widen`, any interval that would grow goes
/// straight to top so loop counters converge. Returns true on change.
bool
join_into(RegState& dst, const RegState& src, bool widen) {
    if (src.bottom) return false;
    if (dst.bottom) {
        dst = src;
        return true;
    }
    bool changed = false;
    for (int i = 0; i < 32; ++i) {
        AbsVal& d = dst.r[i];
        const AbsVal& s = src.r[i];
        bool init = d.init && s.init;
        int64_t lo = std::min(d.lo, s.lo);
        int64_t hi = std::max(d.hi, s.hi);
        if (widen && (lo != d.lo || hi != d.hi)) {
            lo = -kClamp;
            hi = kClamp;
        }
        if (init != d.init || lo != d.lo || hi != d.hi) {
            d = {init, lo, hi};
            changed = true;
        }
    }
    return changed;
}

int64_t
clamp64(int64_t v) {
    return std::max(-kClamp, std::min(kClamp, v));
}

AbsVal
abs_add(const AbsVal& a, int64_t blo, int64_t bhi, bool binit) {
    return {a.init && binit, clamp64(a.lo + blo), clamp64(a.hi + bhi)};
}

/// Smallest (2^k - 1) covering `v` — the sound upper bound for or/xor of
/// non-negative operands.
int64_t
pow2_mask(int64_t v) {
    int64_t m = 1;
    while (m - 1 < v) m <<= 1;
    return m - 1;
}

/// Transfer function for one instruction; interval semantics of the ops
/// firmware uses for address formation are exact, the rest go to top.
AbsVal
eval_alu(const Insn& d, const AbsVal& a, const AbsVal& b, uint32_t pc) {
    const bool imm_form = d.op == Op::kAluImm;
    const bool init = a.init && (imm_form || b.init);
    auto top = [&] { return AbsVal::top(init); };
    switch (d.op) {
    case Op::kLui:
        return AbsVal::constant(int32_t(d.imm));
    case Op::kAuipc:
        return AbsVal::constant(int64_t(uint32_t(pc + uint32_t(d.imm))));
    case Op::kJal:
    case Op::kJalr:
        return AbsVal::constant(pc + 4);
    case Op::kCsr:
        return AbsVal::top(true);
    default:
        break;
    }
    const int64_t blo = imm_form ? d.imm : b.lo;
    const int64_t bhi = imm_form ? d.imm : b.hi;
    switch (d.funct3) {
    case 0:  // add/addi/sub
        if (d.op == Op::kAluReg && d.funct7 == 0x20) {
            return {init, clamp64(a.lo - bhi), clamp64(a.hi - blo)};
        }
        if (d.op == Op::kAluReg && d.funct7 == 0x01) return top();  // mul
        return abs_add(a, blo, bhi, init);
    case 1:  // sll/slli (mulh as reg form funct7=1)
        if (d.op == Op::kAluReg && d.funct7 == 0x01) return top();
        if (blo == bhi && a.lo >= 0 && (a.hi << blo) <= kWordMax) {
            return {init, a.lo << blo, a.hi << blo};
        }
        return top();
    case 2:  // slt family (mulhsu)
        if (d.op == Op::kAluReg && d.funct7 == 0x01) return top();
        return {init, 0, 1};
    case 3:  // sltu family (mulhu)
        if (d.op == Op::kAluReg && d.funct7 == 0x01) return top();
        return {init, 0, 1};
    case 4:  // xor/xori (div)
        if (d.op == Op::kAluReg && d.funct7 == 0x01) {
            // div. RISC-V M: x/0 = -1 and INT_MIN/-1 = INT_MIN, so both
            // special cases stay within [-max|a|, max|a|] for |b| >= 0.
            // An unknown dividend is still a 32-bit word: [i32min, i32max].
            if (b.lo < kI32Min || b.hi > kI32Max) return top();
            const bool aw = a.lo >= kI32Min && a.hi <= kI32Max;
            const int64_t alo = aw ? a.lo : kI32Min;
            const int64_t ahi = aw ? a.hi : kI32Max;
            if (blo == 0 && bhi == 0) return {init, -1, -1};
            if (blo >= 1 && alo >= 0) return {init, alo / bhi, ahi / blo};
            const int64_t m = std::max({mag64(alo), mag64(ahi), int64_t(1)});
            return {init, -m, m};
        }
        if (a.is_const() && blo == bhi) {
            return {init, int64_t(uint32_t(a.lo) ^ uint32_t(blo)),
                    int64_t(uint32_t(a.lo) ^ uint32_t(blo))};
        }
        if (a.lo >= 0 && blo >= 0 && a.hi <= kWordMax && bhi <= kWordMax) {
            return {init, 0, pow2_mask(std::max(a.hi, bhi))};
        }
        return top();
    case 5:  // srl/sra/srli/srai (divu)
        if (d.op == Op::kAluReg && d.funct7 == 0x01) {
            // divu. RISC-V M: x/0 = 2^32-1; otherwise the quotient shrinks
            // monotonically with the divisor, so the corners are exact.
            // An unknown dividend is still a 32-bit word: [0, 2^32-1].
            if (b.lo < 0 || b.hi > kWordMax) return top();
            const bool aw = a.lo >= 0 && a.hi <= kWordMax;
            const int64_t alo = aw ? a.lo : 0;
            const int64_t ahi = aw ? a.hi : kWordMax;
            if (bhi == 0) return {init, kWordMax, kWordMax};
            return {init, alo / bhi, blo >= 1 ? ahi / blo : kWordMax};
        }
        if (blo == bhi) {
            const int64_t s = blo & 0x1f;
            const bool arith = d.funct7 == 0x20 || (imm_form && (d.imm & 0x400));
            if (a.is_word_range() && (!arith || a.hi < (int64_t(1) << 31))) {
                return {init, a.lo >> s, a.hi >> s};
            }
            if (!arith && s > 0) return {init, 0, kWordMax >> s};
        }
        return top();
    case 6:  // or/ori (rem)
        if (d.op == Op::kAluReg && d.funct7 == 0x01) {
            // rem. RISC-V M: x%0 = x and INT_MIN%-1 = 0; otherwise
            // |r| < |b|, |r| <= |a|, and r takes the dividend's sign.
            // An unknown dividend is still a 32-bit word: [i32min, i32max].
            if (b.lo < kI32Min || b.hi > kI32Max) return top();
            const bool aw = a.lo >= kI32Min && a.hi <= kI32Max;
            const int64_t alo = aw ? a.lo : kI32Min;
            const int64_t ahi = aw ? a.hi : kI32Max;
            if (blo >= 1 && alo >= 0) return {init, 0, std::min(bhi - 1, ahi)};
            const int64_t m = std::max(mag64(alo), mag64(ahi));
            return {init, alo >= 0 ? 0 : -m, ahi <= 0 ? 0 : m};
        }
        if (a.is_const() && blo == bhi) {
            return AbsVal::constant(int64_t(uint32_t(a.lo) | uint32_t(blo)));
        }
        if (a.lo >= 0 && blo >= 0 && a.hi <= kWordMax && bhi <= kWordMax) {
            return {init, std::max(a.lo, blo), pow2_mask(std::max(a.hi, bhi))};
        }
        return top();
    case 7:  // and/andi (remu)
        if (d.op == Op::kAluReg && d.funct7 == 0x01) {
            // remu. RISC-V M: x%0 = x; otherwise r < b and r <= a.
            // An unknown dividend is still a 32-bit word: [0, 2^32-1].
            if (b.lo < 0 || b.hi > kWordMax) return top();
            const bool aw = a.lo >= 0 && a.hi <= kWordMax;
            const int64_t alo = aw ? a.lo : 0;
            const int64_t ahi = aw ? a.hi : kWordMax;
            if (bhi == 0) return {init, alo, ahi};
            if (blo >= 1) return {init, 0, std::min(bhi - 1, ahi)};
            return {init, 0, std::max(ahi, bhi - 1)};
        }
        if (a.is_const() && blo == bhi) {
            return AbsVal::constant(int64_t(uint32_t(a.lo) & uint32_t(blo)));
        }
        if (imm_form && d.imm >= 0) {
            return {init, 0, a.lo >= 0 ? std::min<int64_t>(a.hi, d.imm) : d.imm};
        }
        // Mask with high bits set (e.g. andi rd, rs, -16) clears low bits:
        // for a non-negative operand the result stays within [0, hi].
        if (a.lo >= 0 && a.hi <= kWordMax && (imm_form || b.init)) {
            if (imm_form || blo >= 0) return {init, 0, a.hi};
        }
        return top();
    default:
        return top();
    }
}

// --- memory map -------------------------------------------------------------

struct Region {
    uint32_t base;
    uint32_t size;
    const char* name;
};

constexpr Region kLoadRegions[] = {
    {rpu::kImemBase, rpu::kImemSize, "IMEM"},
    {rpu::kDmemBase, rpu::kDmemSize, "DMEM"},
    {rpu::kPmemBase, rpu::kPmemSize, "PMEM"},
    {rpu::kAmemBase, rpu::kAmemSize, "AMEM"},
    {rpu::kIoBase, rpu::kIoSize, "IO"},
    {rpu::kIoExtBase, rpu::kIoExtSize, "IO_EXT"},
    {rpu::kBcastBase, rpu::kBcastSize, "BCAST"},
};

/// Stores may not target instruction memory (the bus faults).
constexpr Region kStoreRegions[] = {
    {rpu::kDmemBase, rpu::kDmemSize, "DMEM"},
    {rpu::kPmemBase, rpu::kPmemSize, "PMEM"},
    {rpu::kAmemBase, rpu::kAmemSize, "AMEM"},
    {rpu::kIoBase, rpu::kIoSize, "IO"},
    {rpu::kIoExtBase, rpu::kIoExtSize, "IO_EXT"},
    {rpu::kBcastBase, rpu::kBcastSize, "BCAST"},
};

/// Interconnect registers with read side effects or values (io_read).
constexpr uint32_t kReadableIo[] = {
    rpu::kRegRecvLow,   rpu::kRegRecvHigh,  rpu::kRegRxReady,   rpu::kRegDebugLow,
    rpu::kRegDebugHigh, rpu::kRegCycle,     rpu::kRegCoreId,    rpu::kRegIrqStatus,
    rpu::kRegBcastAddr, rpu::kRegBcastData, rpu::kRegBcastReady, rpu::kRegLbSlotResp,
};

/// Interconnect registers accepted by io_write (plus the TX doorbell).
constexpr uint32_t kWritableIo[] = {
    rpu::kRegRecvRelease, rpu::kRegSendLow,  rpu::kRegSendHigh, rpu::kRegSendDest,
    rpu::kRegTimerCmp,    rpu::kRegDebugLow, rpu::kRegDebugHigh, rpu::kRegIrqMask,
    rpu::kRegIrqAck,      rpu::kRegSlotCount, rpu::kRegSlotBase, rpu::kRegSlotSize,
    rpu::kRegHdrBase,     rpu::kRegHdrSize,  rpu::kRegSlotCommit, rpu::kRegBcastPop,
    rpu::kRegLbSlotReq,
};

constexpr uint32_t kAllowedCsrs[] = {
    rv::kCsrMstatus, rv::kCsrMtvec,    rv::kCsrMepc,  rv::kCsrMcause, rv::kCsrCycle,
    rv::kCsrTime,    rv::kCsrInstret,  rv::kCsrCycleH, rv::kCsrTimeH, rv::kCsrInstretH,
};

template <typename C, typename V>
bool
contains(const C& c, V v) {
    return std::find(std::begin(c), std::end(c), v) != std::end(c);
}

bool
intersects_any_region(const Region* regions, size_t n, int64_t lo, int64_t hi) {
    for (size_t i = 0; i < n; ++i) {
        int64_t rlo = regions[i].base;
        int64_t rhi = rlo + regions[i].size - 1;
        if (lo <= rhi && hi >= rlo) return true;
    }
    return false;
}

bool
region_contains(const Region& r, int64_t lo, int64_t hi) {
    return lo >= r.base && hi < int64_t(r.base) + r.size;
}

constexpr const char* kRegNames[32] = {
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0",
    "a1",   "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5",
    "s6",   "s7", "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
};

std::string
hex(uint32_t v) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "0x%x", v);
    return buf;
}

// --- verifier ---------------------------------------------------------------

class Verifier {
 public:
    Verifier(const std::vector<uint32_t>& image, const Options& opts)
        : image_(image), opts_(opts), insns_(image.size()), reachable_(image.size(), 0) {}

    Report run();

 private:
    uint32_t end_addr() const { return uint32_t(image_.size()) * 4; }

    void diag(Check c, Severity sev, uint32_t pc, std::string msg) {
        // Deduplicate: the final pass walks blocks whose states were
        // already explored during the fixpoint.
        if (!seen_.insert({pc, int(c), msg}).second) return;
        report_.diags.push_back({c, sev, pc, std::move(msg)});
    }

    void discover_from_roots();
    void build_blocks();
    std::vector<uint32_t> successors(uint32_t pc, const Insn& d, bool emit_diags);
    void fixpoint();
    RegState transfer(size_t block_idx, RegState state, bool emit);
    void check_instruction(uint32_t pc, const Insn& d, const RegState& state);
    void check_memory(uint32_t pc, const Insn& d, const RegState& state);
    void scan_unreachable();
    void find_busy_loops();
    void check_slot_window();

    const std::vector<uint32_t>& image_;
    Options opts_;
    std::vector<Insn> insns_;
    std::vector<uint8_t> reachable_;
    std::set<uint32_t> leaders_;
    std::set<uint32_t> roots_;
    std::set<uint32_t> handler_roots_;
    Report report_;

    // Blocks + per-block analysis state.
    std::vector<BasicBlock> blocks_;
    std::map<uint32_t, size_t> block_at_;  ///< first-insn addr -> block index
    std::vector<RegState> in_states_;
    std::vector<int> join_counts_;
    std::vector<uint8_t> observable_;  ///< block may touch MMIO/broadcast

    std::set<std::tuple<uint32_t, int, std::string>> seen_;
    static constexpr int kWidenAfter = 24;
};

void
Verifier::discover_from_roots() {
    std::fill(reachable_.begin(), reachable_.end(), 0);
    leaders_.clear();
    std::deque<uint32_t> work(roots_.begin(), roots_.end());
    for (uint32_t r : roots_) leaders_.insert(r);
    while (!work.empty()) {
        uint32_t pc = work.front();
        work.pop_front();
        if (pc >= end_addr() || (pc & 3)) continue;  // diagnosed at the edge
        size_t idx = pc / 4;
        if (reachable_[idx]) continue;
        reachable_[idx] = 1;
        insns_[idx] = decode(image_[idx]);
        for (uint32_t s : successors(pc, insns_[idx], /*emit_diags=*/false)) {
            work.push_back(s);
        }
    }
}

/// Successor pcs of the instruction at `pc`; with `emit_diags`, report bad
/// targets and fall-off-the-end instead of following them.
std::vector<uint32_t>
Verifier::successors(uint32_t pc, const Insn& d, bool emit_diags) {
    std::vector<uint32_t> out;
    auto add_target = [&](uint32_t target, const char* what) {
        if (target & 3) {
            if (emit_diags) {
                diag(Check::kCfg, Severity::kError, pc,
                     std::string(what) + " target " + hex(target) +
                         " is not on an instruction boundary");
            }
            return;
        }
        if (target >= end_addr()) {
            if (emit_diags) {
                const char* where =
                    target >= rpu::kImemSize ? "outside IMEM" : "past the end of the image";
                diag(Check::kCfg, Severity::kError, pc,
                     std::string(what) + " target " + hex(target) + " lands " + where +
                         " (image ends at " + hex(end_addr()) + ")");
            }
            return;
        }
        out.push_back(target);
    };
    auto add_fallthrough = [&] {
        if (pc + 4 >= end_addr() && pc + 4 == end_addr()) {
            if (emit_diags) {
                diag(Check::kCfg, Severity::kError, pc,
                     "control falls off the end of the image after " + hex(pc));
            }
            return;
        }
        out.push_back(pc + 4);
    };
    switch (d.op) {
    case Op::kJal:
        add_target(pc + uint32_t(d.imm), "jal");
        break;
    case Op::kBranch:
        add_target(pc + uint32_t(d.imm), "branch");
        add_fallthrough();
        break;
    case Op::kJalr:
    case Op::kEcall:
    case Op::kEbreak:
    case Op::kMret:
    case Op::kIllegal:
        break;  // terminators with no static successor
    default:
        add_fallthrough();
        break;
    }
    return out;
}

void
Verifier::build_blocks() {
    blocks_.clear();
    block_at_.clear();
    // Every jump/branch target and every fall-through after a branch
    // starts a block.
    for (size_t i = 0; i < image_.size(); ++i) {
        if (!reachable_[i]) continue;
        uint32_t pc = uint32_t(i) * 4;
        const Insn& d = insns_[i];
        if (d.op == Op::kBranch || d.op == Op::kJal || is_terminator(d)) {
            for (uint32_t s : successors(pc, d, false)) leaders_.insert(s);
        }
    }
    BasicBlock cur;
    bool open = false;
    for (size_t i = 0; i < image_.size(); ++i) {
        if (!reachable_[i]) {
            open = false;
            continue;
        }
        uint32_t pc = uint32_t(i) * 4;
        if (!open || leaders_.count(pc)) {
            if (open) {
                cur.succs = {pc};
                blocks_.push_back(cur);
            }
            cur = BasicBlock{pc, pc, {}};
            open = true;
        }
        cur.last = pc;
        const Insn& d = insns_[i];
        if (d.op == Op::kBranch || is_terminator(d)) {
            cur.succs = successors(pc, d, false);
            blocks_.push_back(cur);
            open = false;
        }
    }
    if (open) {
        cur.succs = successors(cur.last, insns_[cur.last / 4], false);
        blocks_.push_back(cur);
    }
    for (size_t b = 0; b < blocks_.size(); ++b) block_at_[blocks_[b].first] = b;
    in_states_.assign(blocks_.size(), RegState{});
    join_counts_.assign(blocks_.size(), 0);
    observable_.assign(blocks_.size(), 0);
}

RegState
Verifier::transfer(size_t block_idx, RegState state, bool emit) {
    const BasicBlock& bb = blocks_[block_idx];
    for (uint32_t pc = bb.first; pc <= bb.last; pc += 4) {
        const Insn& d = insns_[pc / 4];
        if (emit) check_instruction(pc, d, state);

        // Track whether this block can touch MMIO or the broadcast region
        // (an observable side effect for the busy-loop check).
        if (d.op == Op::kLoad || d.op == Op::kStore) {
            const AbsVal& base = state.r[d.rs1];
            constexpr Region kObservable[] = {
                {rpu::kIoBase, rpu::kIoSize, "IO"},
                {rpu::kIoExtBase, rpu::kIoExtSize, "IO_EXT"},
                {rpu::kBcastBase, rpu::kBcastSize, "BCAST"},
            };
            if (!base.is_word_range() ||
                intersects_any_region(kObservable, 3, base.lo + d.imm,
                                      base.hi + d.imm + (1 << (d.funct3 & 3)) - 1)) {
                observable_[block_idx] = 1;
            }
        }

        // Discover interrupt vectors / interrupt enables.
        if (d.op == Op::kCsr && d.rs1 != rv::zero && d.funct3 <= 2) {
            if (d.csr == rv::kCsrMtvec && state.r[d.rs1].is_const()) {
                handler_roots_.insert(uint32_t(state.r[d.rs1].lo) & ~3u);
            }
            if (d.csr == rv::kCsrMstatus) report_.interrupts_possible = true;
        }

        AbsVal result = AbsVal::top(true);
        switch (d.op) {
        case Op::kLui:
        case Op::kAuipc:
        case Op::kJal:
        case Op::kJalr:
        case Op::kCsr:
            result = eval_alu(d, state.r[d.rs1], state.r[d.rs2], pc);
            break;
        case Op::kAluImm:
        case Op::kAluReg:
            result = eval_alu(d, state.r[d.rs1], state.r[d.rs2], pc);
            break;
        case Op::kLoad:
            result = AbsVal::top(true);
            break;
        default:
            break;
        }
        if (writes_rd(d)) state.r[d.rd] = result;
        state.r[0] = AbsVal::constant(0);
    }
    return state;
}

void
Verifier::fixpoint() {
    std::deque<size_t> work;
    for (uint32_t root : roots_) {
        auto it = block_at_.find(root);
        if (it == block_at_.end()) continue;
        bool handler = handler_roots_.count(root) && root != opts_.entry;
        join_into(in_states_[it->second], make_root_state(handler), false);
        work.push_back(it->second);
    }
    while (!work.empty()) {
        size_t b = work.front();
        work.pop_front();
        RegState out = transfer(b, in_states_[b], /*emit=*/false);
        for (uint32_t succ : blocks_[b].succs) {
            auto it = block_at_.find(succ);
            if (it == block_at_.end()) continue;
            size_t sb = it->second;
            bool widen = ++join_counts_[sb] > kWidenAfter;
            if (join_into(in_states_[sb], out, widen)) work.push_back(sb);
        }
    }
}

void
Verifier::check_instruction(uint32_t pc, const Insn& d, const RegState& state) {
    if (d.op == Op::kIllegal) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "illegal instruction 0x%08x on a reachable path",
                      image_[pc / 4]);
        diag(Check::kDecode, Severity::kError, pc, buf);
        return;
    }
    if (opts_.check_uninit) {
        auto check_read = [&](Reg r) {
            if (r != rv::zero && !state.r[r].init) {
                diag(Check::kUninit, Severity::kError, pc,
                     "register " + std::string(kRegNames[r]) +
                         " is read but never written on some path to " + hex(pc));
            }
        };
        if (reads_rs1(d)) check_read(d.rs1);
        if (reads_rs2(d)) check_read(d.rs2);
    }
    if (d.op == Op::kCsr && !contains(kAllowedCsrs, d.csr)) {
        diag(Check::kCsr, Severity::kError, pc,
             "access to reserved CSR " + hex(d.csr) +
                 " (core implements mstatus/mtvec/mepc/mcause and the counters)");
    }
    if (d.op == Op::kJalr) {
        const AbsVal& base = state.r[d.rs1];
        if (base.is_const()) {
            uint32_t target = uint32_t(base.lo + d.imm) & ~1u;
            if ((target & 3) || target >= end_addr()) {
                diag(Check::kCfg, Severity::kError, pc,
                     "jalr target " + hex(target) + " is outside the image");
            }
        } else {
            diag(Check::kCfg, Severity::kWarning, pc,
                 "indirect jump with a statically unknown target is not verified");
        }
    }
    if (d.op == Op::kLoad || d.op == Op::kStore) check_memory(pc, d, state);
}

void
Verifier::check_memory(uint32_t pc, const Insn& d, const RegState& state) {
    const AbsVal& base = state.r[d.rs1];
    if (!base.init) return;  // already reported as an uninitialized read
    const uint32_t size = 1u << (d.funct3 & 3);
    const bool is_store = d.op == Op::kStore;
    const Region* regions = is_store ? kStoreRegions : kLoadRegions;
    const size_t nregions =
        is_store ? std::size(kStoreRegions) : std::size(kLoadRegions);
    const char* verb = is_store ? "store" : "load";

    if (base.is_const()) {
        // Exact address: check with 32-bit wraparound semantics.
        const uint32_t addr = uint32_t(int64_t(base.lo) + d.imm);
        const int64_t lo = addr, hi = int64_t(addr) + size - 1;
        if (!intersects_any_region(regions, nregions, lo, hi)) {
            diag(Check::kMemory, Severity::kError, pc,
                 std::string(verb) + " of " + std::to_string(size) + " bytes at " +
                     hex(addr) + " is outside every mapped region");
            return;
        }
        const Region io{rpu::kIoBase, rpu::kIoSize, "IO"};
        if (region_contains(io, lo, hi)) {
            const uint32_t offset = (addr - rpu::kIoBase) & ~3u;
            const bool known = is_store ? contains(kWritableIo, offset)
                                        : contains(kReadableIo, offset);
            if (!known) {
                diag(Check::kMmio, Severity::kError, pc,
                     std::string(verb) + " touches reserved interconnect register offset " +
                         hex(offset));
            }
        }
        return;
    }
    if (!base.is_word_range()) return;  // unknown: cannot prove a violation
    const int64_t lo = base.lo + d.imm;
    const int64_t hi = base.hi + d.imm + size - 1;
    if (lo >= 0 && hi <= kWordMax && !intersects_any_region(regions, nregions, lo, hi)) {
        diag(Check::kMemory, Severity::kError, pc,
             std::string(verb) + " range [" + hex(uint32_t(lo)) + ", " + hex(uint32_t(hi)) +
                 "] is provably outside every mapped region");
    }
}

void
Verifier::scan_unreachable() {
    size_t i = 0;
    while (i < image_.size()) {
        if (reachable_[i] || image_[i] == 0) {
            ++i;
            continue;
        }
        size_t start = i;
        while (i < image_.size() && !reachable_[i] && image_[i] != 0) ++i;
        diag(Check::kUnreachable, Severity::kWarning, uint32_t(start) * 4,
             "unreachable code: " + std::to_string(i - start) + " word(s) at " +
                 hex(uint32_t(start) * 4) + ".." + hex(uint32_t(i) * 4 - 4) +
                 " are never executed");
    }
}

/// Tarjan SCC over the block graph; flag cycles with no exit edge and no
/// observable effect (unless an interrupt could rescue them).
void
Verifier::find_busy_loops() {
    const size_t n = blocks_.size();
    std::vector<int> index(n, -1), low(n, 0), on_stack(n, 0), comp(n, -1);
    std::vector<size_t> stack;
    int next_index = 0, next_comp = 0;

    // Iterative Tarjan to keep the verifier stack-safe on big images.
    struct Frame {
        size_t v;
        size_t child = 0;
    };
    for (size_t start = 0; start < n; ++start) {
        if (index[start] != -1) continue;
        std::vector<Frame> frames{{start}};
        while (!frames.empty()) {
            Frame& f = frames.back();
            size_t v = f.v;
            if (f.child == 0) {
                index[v] = low[v] = next_index++;
                stack.push_back(v);
                on_stack[v] = 1;
            }
            bool descended = false;
            while (f.child < blocks_[v].succs.size()) {
                auto it = block_at_.find(blocks_[v].succs[f.child]);
                ++f.child;
                if (it == block_at_.end()) continue;
                size_t w = it->second;
                if (index[w] == -1) {
                    frames.push_back({w});
                    descended = true;
                    break;
                }
                if (on_stack[w]) low[v] = std::min(low[v], index[w]);
            }
            if (descended) continue;
            if (low[v] == index[v]) {
                while (true) {
                    size_t w = stack.back();
                    stack.pop_back();
                    on_stack[w] = 0;
                    comp[w] = next_comp;
                    if (w == v) break;
                }
                ++next_comp;
            }
            frames.pop_back();
            if (!frames.empty()) {
                size_t parent = frames.back().v;
                low[parent] = std::min(low[parent], low[v]);
            }
        }
    }

    for (int c = 0; c < next_comp; ++c) {
        bool cyclic = false, has_exit = false, observable = false;
        uint32_t first_pc = ~0u;
        size_t members = 0;
        for (size_t b = 0; b < n; ++b) {
            if (comp[b] != c) continue;
            ++members;
            first_pc = std::min(first_pc, blocks_[b].first);
            if (observable_[b]) observable = true;
            for (uint32_t s : blocks_[b].succs) {
                auto it = block_at_.find(s);
                if (it == block_at_.end()) continue;
                if (comp[it->second] == c) {
                    cyclic = true;
                } else {
                    has_exit = true;
                }
            }
        }
        if (members > 1) cyclic = true;
        if (cyclic && !has_exit && !observable && !report_.interrupts_possible) {
            diag(Check::kLoop, Severity::kError, first_pc,
                 "busy loop at " + hex(first_pc) +
                     " has no exit edge and no observable side effect "
                     "(provably infinite)");
        }
    }
}

void
Verifier::check_slot_window() {
    const SlotWindow& s = opts_.slots;
    if (s.count == 0) return;
    const uint64_t end = uint64_t(s.base) + uint64_t(s.count) * s.size;
    if (s.base < rpu::kPmemBase || end > uint64_t(rpu::kPmemBase) + rpu::kPmemSize) {
        diag(Check::kSlots, Severity::kError, 0,
             "slot window [" + hex(s.base) + ", " + hex(uint32_t(end)) + ") — " +
                 std::to_string(s.count) + " slots of " + std::to_string(s.size) +
                 " bytes — does not fit packet memory");
    }
    if (s.count > 250) {
        diag(Check::kSlots, Severity::kError, 0,
             "slot count " + std::to_string(s.count) +
                 " exceeds the descriptor tag range (250)");
    }
}

Report
Verifier::run() {
    if (image_.empty()) {
        diag(Check::kCfg, Severity::kError, 0, "empty firmware image");
        return std::move(report_);
    }
    if ((opts_.entry & 3) || opts_.entry >= end_addr()) {
        diag(Check::kCfg, Severity::kError, opts_.entry,
             "entry point " + hex(opts_.entry) + " is not a valid instruction address");
        return std::move(report_);
    }
    check_slot_window();

    // Interrupt handlers discovered through constant mtvec writes become
    // extra CFG roots; iterate until the root set is stable.
    roots_ = {opts_.entry};
    for (int iter = 0; iter < 4; ++iter) {
        discover_from_roots();
        build_blocks();
        fixpoint();
        size_t before = roots_.size();
        for (uint32_t h : handler_roots_) {
            if (h < end_addr() && (h & 3) == 0) roots_.insert(h);
        }
        if (roots_.size() == before) break;
    }

    // Final pass: walk every reachable block once with diagnostics on.
    for (size_t b = 0; b < blocks_.size(); ++b) {
        if (in_states_[b].bottom) continue;
        transfer(b, in_states_[b], /*emit=*/true);
        // Edge diagnostics (bad targets, fall-off-the-end).
        successors(blocks_[b].last, insns_[blocks_[b].last / 4], /*emit_diags=*/true);
    }
    if (opts_.check_loops) find_busy_loops();
    scan_unreachable();

    report_.blocks = blocks_;
    report_.roots.assign(roots_.begin(), roots_.end());
    for (uint8_t r : reachable_) report_.instructions += r;
    std::sort(report_.diags.begin(), report_.diags.end(),
              [](const Diagnostic& a, const Diagnostic& b) { return a.pc < b.pc; });
    return std::move(report_);
}

}  // namespace

// --- public API -------------------------------------------------------------

const char*
check_name(Check c) {
    switch (c) {
    case Check::kDecode: return "decode";
    case Check::kCfg: return "cfg";
    case Check::kMemory: return "memory";
    case Check::kMmio: return "mmio";
    case Check::kCsr: return "csr";
    case Check::kUninit: return "uninit";
    case Check::kUnreachable: return "unreachable";
    case Check::kLoop: return "loop";
    case Check::kSlots: return "slots";
    }
    return "?";
}

size_t
Report::errors() const {
    size_t n = 0;
    for (const auto& d : diags) n += d.severity == Severity::kError;
    return n;
}

size_t
Report::warnings() const {
    return diags.size() - errors();
}

bool
Report::check_passed(Check c) const {
    for (const auto& d : diags) {
        if (d.check == c) return false;
    }
    return true;
}

std::string
Report::summary() const {
    std::string out;
    for (const auto& d : diags) {
        char buf[48];
        std::snprintf(buf, sizeof(buf), "%s[%s] pc=0x%x: ",
                      d.severity == Severity::kError ? "error" : "warning",
                      check_name(d.check), d.pc);
        out += buf;
        out += d.message;
        out += "\n";
    }
    return out;
}

Report
verify_image(const std::vector<uint32_t>& image, const Options& opts) {
    return Verifier(image, opts).run();
}

std::string
cfg_dot(const std::vector<uint32_t>& image, const Report& report, const std::string& name) {
    std::string out = "digraph \"" + name + "\" {\n";
    out += "  node [shape=box, fontname=\"monospace\", fontsize=9];\n";
    for (const auto& bb : report.blocks) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "  \"%x\" [label=\"", bb.first);
        out += buf;
        for (uint32_t pc = bb.first; pc <= bb.last && pc / 4 < image.size(); pc += 4) {
            std::snprintf(buf, sizeof(buf), "%04x: ", pc);
            out += buf;
            out += rv::disassemble(image[pc / 4], pc);
            out += "\\l";
        }
        out += "\"];\n";
        for (uint32_t s : bb.succs) {
            std::snprintf(buf, sizeof(buf), "  \"%x\" -> \"%x\";\n", bb.first, s);
            out += buf;
        }
    }
    out += "}\n";
    return out;
}

}  // namespace rosebud::verify
