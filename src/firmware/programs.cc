#include "firmware/programs.h"

#include "rpu/descriptor.h"
#include "rv/assembler.h"

namespace rosebud::fwlib {

using namespace rosebud::rv;
namespace rp = rosebud::rpu;

namespace {

/// Boot-time slot configuration: announce packet slots (init_slots) and
/// header slots (init_hdr_slots) to the interconnect/LB, enable only the
/// Evict and Poke interrupts (set_masks(0x30)), leave gp = IO base.
void
emit_prologue(Assembler& a, const SlotParams& slots) {
    a.lui(gp, 0x2000);  // IO base 0x02000000
    a.li(t0, int32_t(slots.count));
    a.sw(t0, rp::kRegSlotCount, gp);
    a.lui(t0, 0x1000);  // packet slots start at PMEM base
    a.sw(t0, rp::kRegSlotBase, gp);
    a.li(t0, int32_t(slots.size));
    a.sw(t0, rp::kRegSlotSize, gp);
    a.lui(t0, 0x804);  // header slots at DMEM_BASE + DMEM_SIZE/2
    a.sw(t0, rp::kRegHdrBase, gp);
    a.li(t0, 128);
    a.sw(t0, rp::kRegHdrSize, gp);
    a.li(t0, 0x30);  // enable only Evict + Poke
    a.sw(t0, rp::kRegIrqMask, gp);
    a.sw(zero, rp::kRegSlotCommit, gp);
}

}  // namespace

Program
forwarder(const SlotParams& slots) {
    Assembler a;
    emit_prologue(a, slots);
    // The minimal descriptor loop: 8 instructions, 16 cycles when a
    // descriptor is always pending (Section 6.1).
    a.label("loop");
    a.lw(a0, rp::kRegRecvLow, gp);      // 3 cycles (MMIO load)
    a.beqz(a0, "loop");                 // 1 cycle not taken
    a.lw(a1, rp::kRegRecvHigh, gp);     // 3
    a.sw(zero, rp::kRegRecvRelease, gp);// 2
    a.xori(a0, a0, 1);                  // 1: swap output port 0 <-> 1
    a.sw(a0, rp::kRegSendLow, gp);      // 2
    a.sw(zero, rp::kRegSendHigh, gp);   // 2: slot-default address
    a.j("loop");                        // 2
    return {a.assemble(), 0};
}

Program
two_step_forwarder(unsigned rpu_count, const SlotParams& slots) {
    Assembler a;
    emit_prologue(a, slots);
    unsigned half = rpu_count / 2;

    a.lw(t2, rp::kRegCoreId, gp);
    a.li(t3, int32_t(half));
    a.bltu(t2, t3, "first_stage");

    // --- second stage: return loopback packets to the wire -----------------
    a.andi(s4, t2, 1);  // spread across both physical ports
    a.label("loop2");
    a.lw(a0, rp::kRegRecvLow, gp);
    a.beqz(a0, "loop2");
    a.sw(zero, rp::kRegRecvRelease, gp);
    a.andi(a0, a0, -16);  // clear port
    a.or_(a0, a0, s4);
    a.sw(a0, rp::kRegSendLow, gp);
    a.sw(zero, rp::kRegSendHigh, gp);
    a.j("loop2");

    // --- first stage: relay to the partner RPU over loopback ----------------
    a.label("first_stage");
    a.add(t4, t2, t3);   // partner id
    a.slli(s3, t4, 8);   // partner << 8 for SEND_DEST
    a.li(t6, 1);         // "denied" response code
    a.sw(t4, rp::kRegLbSlotReq, gp);  // prefetch the first remote slot
    a.label("loop1");
    a.lw(a0, rp::kRegRecvLow, gp);
    a.beqz(a0, "loop1");
    a.sw(zero, rp::kRegRecvRelease, gp);
    a.label("poll_slot");
    a.lw(t5, rp::kRegLbSlotResp, gp);
    a.beqz(t5, "poll_slot");
    a.bne(t5, t6, "got_slot");
    a.sw(t4, rp::kRegLbSlotReq, gp);  // denied (partner full): retry
    a.j("poll_slot");
    a.label("got_slot");
    a.andi(s2, t5, 0xff);
    a.or_(s2, s2, s3);
    a.sw(s2, rp::kRegSendDest, gp);
    a.ori(a0, a0, 3);  // port bits (0 or 1) -> 3 = loopback
    a.sw(a0, rp::kRegSendLow, gp);
    a.sw(zero, rp::kRegSendHigh, gp);
    a.sw(t4, rp::kRegLbSlotReq, gp);  // prefetch the next remote slot
    a.j("loop1");
    return {a.assemble(), 0};
}

Program
firewall(const SlotParams& slots) {
    Assembler a;
    emit_prologue(a, slots);
    a.lui(s5, 0x2010);  // IO_EXT (accelerator wrapper)
    a.lui(s6, 0x804);   // header slots

    a.label("loop");
    a.lw(a0, rp::kRegRecvLow, gp);       // 3
    a.beqz(a0, "loop");                  // 1
    a.sw(zero, rp::kRegRecvRelease, gp); // 2
    // Header-slot address from the descriptor's slot field.
    a.srli(t0, a0, 4);                   // 1
    a.andi(t0, t0, 0xff);                // 1
    a.addi(t0, t0, -1);                  // 1
    a.slli(t0, t0, 7);                   // 1
    a.add(t0, t0, s6);                   // 1
    // EtherType == IPv4? (bytes are network order; lhu gives 0x0008)
    a.lhu(t1, 12, t0);                   // 2
    a.li(t2, 8);                         // 1
    a.bne(t1, t2, "drop");               // 1
    // Source IP (raw bytes) -> accelerator, read the match flag.
    a.lw(t3, 26, t0);                    // 2
    a.sw(t3, 0x00, s5);                  // 2: ACC_SRC_IP
    a.lbu(t4, 0x04, s5);                 // 3: ACC_FW_MATCH
    a.bnez(t4, "drop");                  // 1
    a.xori(a0, a0, 1);                   // 1: forward out the other port
    a.label("send");
    a.sw(a0, rp::kRegSendLow, gp);       // 2
    a.sw(zero, rp::kRegSendHigh, gp);    // 2
    a.j("loop");                         // 2
    a.label("drop");
    a.slli(a0, a0, 20);  // length := 0 (keep slot and port bits)
    a.srli(a0, a0, 20);
    a.j("send");
    return {a.assemble(), 0};
}

namespace {

/// Offsets into the header copy; shifted by 4 when the hash LB prepends
/// the flow hash.
struct HdrOffsets {
    int32_t eth_type;
    int32_t protocol;
    int32_t ports;
    int32_t tcp_seq;
    int32_t tcp_payload;
    int32_t udp_payload;
};

constexpr HdrOffsets kPlain{12, 23, 34, 38, 54, 42};
constexpr HdrOffsets kHashed{16, 27, 38, 42, 58, 46};

/// Pigasus accelerator register offsets (paper Appendix B).
constexpr int32_t kAccCtrl = 0x00;
constexpr int32_t kAccDmaLen = 0x04;
constexpr int32_t kAccDmaAddr = 0x08;
constexpr int32_t kAccPorts = 0x0c;
constexpr int32_t kAccStateH = 0x14;
constexpr int32_t kAccSlot = 0x18;
constexpr int32_t kAccRuleId = 0x1c;

/// Emit the shared match-drain path ("chkmatch"): forwards safe packets at
/// end-of-packet, appends rule ids and redirects matches to the host.
/// Expects: gp=IO, s5=IO_EXT, s7=ctx base, s8=PMEM base, s9=1, s10=2.
/// `strip_hash` removes the 4-byte prepended hash before wire forwarding.
void
emit_match_drain(Assembler& a, bool strip_hash) {
    a.label("chkmatch");
    a.lbu(t0, kAccCtrl, s5);  // ACC_PIG_MATCH
    a.beqz(t0, "main");
    a.lw(t1, kAccRuleId, s5);
    a.bnez(t1, "havematch");

    // End of packet: release the marker and send the packet on.
    a.lbu(t2, kAccSlot, s5);
    a.sw(s10, kAccCtrl, s5);  // CTRL = 2 (release)
    a.slli(t4, t2, 3);
    a.add(t4, t4, s7);
    a.lw(a0, 0, t4);
    if (strip_hash) {
        a.lw(a1, 4, t4);
        a.addi(a1, a1, 4);     // skip the prepended hash
        a.srli(t5, a0, 16);    // len -= 4
        a.addi(t5, t5, -4);
        a.slli(t5, t5, 16);
        a.slli(a0, a0, 20);
        a.srli(a0, a0, 20);
        a.or_(a0, a0, t5);
        a.xori(a0, a0, 1);
        a.sw(a0, rp::kRegSendLow, gp);
        a.sw(a1, rp::kRegSendHigh, gp);
    } else {
        a.xori(a0, a0, 1);
        a.sw(a0, rp::kRegSendLow, gp);
        a.sw(zero, rp::kRegSendHigh, gp);
    }
    a.j("main");

    // Match: append the rule id after the payload, mark for the host.
    a.label("havematch");
    a.lbu(t2, kAccSlot, s5);
    a.slli(t4, t2, 3);
    a.add(t4, t4, s7);
    a.lw(a0, 0, t4);   // ctx desc low
    a.lw(t3, 4, t4);   // ctx data address
    // Rebase the data address into packet memory: the context always holds
    // a PMEM slot address (low 20 bits = offset), and spelling that out
    // lets the static certifier bound the rule-id append below (the
    // text-write-separation proof). Runtime no-op.
    a.slli(t3, t3, 12);
    a.srli(t3, t3, 12);
    a.add(t3, t3, s8);
    a.srli(t5, a0, 16);
    a.add(t6, t3, t5);  // data + len
    a.addi(t6, t6, 3);  // align up to 4
    a.andi(t6, t6, -4);
    a.sw(t1, 0, t6);    // append rule id (packet memory)
    a.sub(t5, t6, t3);
    a.addi(t5, t5, 4);  // new length
    a.slli(a0, a0, 20);
    a.srli(a0, a0, 20);
    a.andi(a0, a0, -16);
    // The end-of-packet send path XORs the port bit; store 3 so the final
    // descriptor reads port 2 = host.
    a.ori(a0, a0, 3);
    a.slli(t5, t5, 16);
    a.or_(a0, a0, t5);
    a.sw(a0, 0, t4);    // update ctx
    a.sw(s10, kAccCtrl, s5);  // release this match
    a.j("chkmatch");
}

/// Emit the accelerator submit path. Expects a0=desc, a1=data addr,
/// t0=slot, t5=payload offset, t6=raw port word, s2=STATE_H value.
/// Falls through to `next_label` via jump.
void
emit_submit(Assembler& a, const char* next_label) {
    a.label("submit");
    a.add(s3, a1, t5);
    a.sw(s3, kAccDmaAddr, s5);
    a.srli(s4, a0, 16);
    a.sub(s4, s4, t5);
    a.sw(s4, kAccDmaLen, s5);
    a.sw(t6, kAccPorts, s5);
    a.sw(s2, kAccStateH, s5);
    a.sw(t0, kAccSlot, s5);
    a.sw(s9, kAccCtrl, s5);  // CTRL = 1 (start)
    a.j(next_label);
}

}  // namespace

Program
pigasus_hw_reorder(const SlotParams& slots) {
    Assembler a;
    emit_prologue(a, slots);
    const HdrOffsets& off = kPlain;
    a.lui(s5, 0x2010);  // IO_EXT
    a.lui(s6, 0x804);   // header slots
    a.lui(s7, 0x800);   // slot contexts in DMEM
    a.lui(s8, 0x1000);  // PMEM base
    a.li(s9, 1);
    a.li(s10, 2);
    a.li(s11, 0x01ffffff);  // TCP state word (Appendix B)

    a.label("main");
    a.lw(a0, rp::kRegRecvLow, gp);
    a.beqz(a0, "chkmatch");
    a.lw(a1, rp::kRegRecvHigh, gp);
    a.sw(zero, rp::kRegRecvRelease, gp);
    // Slot index and context save.
    a.srli(t0, a0, 4);
    a.andi(t0, t0, 0xff);
    a.slli(t1, t0, 3);
    a.add(t1, t1, s7);
    a.sw(a0, 0, t1);
    a.sw(a1, 4, t1);
    // Header-slot address.
    a.addi(t2, t0, -1);
    a.slli(t2, t2, 7);
    a.add(t2, t2, s6);
    // EtherType.
    a.lhu(t3, off.eth_type, t2);
    a.li(t4, 8);
    a.bne(t3, t4, "nonip");
    // Protocol.
    a.lbu(t3, off.protocol, t2);
    a.addi(t4, t3, -6);
    a.bnez(t4, "maybe_udp");
    // TCP.
    a.li(t5, off.tcp_payload);
    a.lw(t6, off.ports, t2);
    a.mv(s2, s11);
    a.j("submit");
    a.label("maybe_udp");
    a.addi(t4, t4, -11);  // protocol == 17?
    a.bnez(t4, "nonip");
    a.li(t5, off.udp_payload);
    a.lw(t6, off.ports, t2);
    a.mv(s2, zero);
    a.j("submit");
    a.label("nonip");
    a.slli(a0, a0, 20);  // length := 0, drop
    a.srli(a0, a0, 20);
    a.sw(a0, rp::kRegSendLow, gp);
    a.sw(zero, rp::kRegSendHigh, gp);
    a.j("main");

    emit_submit(a, "chkmatch");
    emit_match_drain(a, /*strip_hash=*/false);
    return {a.assemble(), 0};
}

Program
pigasus_sw_reorder(const SlotParams& slots, unsigned reorder_cap) {
    // The held-packet list below has 16 word slots (indices masked with
    // andi 15 so the verifier can bound every access).
    if (reorder_cap > 16) reorder_cap = 16;
    Assembler a;
    emit_prologue(a, slots);
    const HdrOffsets& off = kHashed;

    // Remove flow-table entry a3 from the held-packet list (swap the last
    // element into the hole) and drop the occupancy count. The list lives
    // at DMEM 0x1000 (above the slot-context table), one word per held
    // packet: the flow-table entry's address. Clobbers t4/t5/t6.
    auto emit_unheld = [&](const std::string& tag) {
        a.lui(t5, 0x801);
        a.mv(t4, zero);
        a.label("unh_" + tag);
        a.andi(t6, t4, 15);
        a.slli(t6, t6, 2);
        a.add(t6, t6, t5);
        a.lw(t6, 0, t6);
        a.beq(t6, a3, "unf_" + tag);
        a.addi(t4, t4, 1);
        a.blt(t4, s0, "unh_" + tag);
        a.j("und_" + tag);  // not listed (cannot happen; keep the count)
        a.label("unf_" + tag);
        a.addi(s0, s0, -1);
        a.andi(t6, s0, 15);
        a.slli(t6, t6, 2);
        a.add(t6, t6, t5);
        a.lw(t6, 0, t6);  // last element
        a.andi(t4, t4, 15);
        a.slli(t4, t4, 2);
        a.add(t4, t4, t5);
        a.sw(t6, 0, t4);  // fills the hole
        a.label("und_" + tag);
    };
    a.lui(s5, 0x2010);   // IO_EXT
    a.lui(s6, 0x804);    // header slots
    a.lui(s7, 0x800);    // slot contexts in DMEM
    a.lui(s8, 0x1000);   // PMEM base
    a.li(s9, 1);
    a.li(s10, 2);
    a.li(s11, 0x01ffffff);
    a.lui(a7, 0x1080);   // flow table: PMEM scratchpad above the slots
    a.lui(a6, 0x10);     // 0xff00 (bswap mask)
    a.addi(a6, a6, -256);
    a.lui(s1, 0xff0);    // 0xff0000 (bswap mask)
    a.mv(s0, zero);      // held-packet count (reorder buffer occupancy)

    a.label("main");
    a.lw(a0, rp::kRegRecvLow, gp);
    a.beqz(a0, "sweep");
    a.lw(a1, rp::kRegRecvHigh, gp);
    a.sw(zero, rp::kRegRecvRelease, gp);
    a.srli(t0, a0, 4);
    a.andi(t0, t0, 0xff);
    a.slli(t1, t0, 3);
    a.add(t1, t1, s7);
    a.sw(a0, 0, t1);
    a.sw(a1, 4, t1);
    a.addi(t2, t0, -1);
    a.slli(t2, t2, 7);
    a.add(t2, t2, s6);
    a.label("parse");  // held-packet reentry point (t0/a0/a1/t2 set up)
    a.lhu(t3, off.eth_type, t2);
    a.li(t4, 8);
    a.bne(t3, t4, "nonip");
    a.lbu(t3, off.protocol, t2);
    a.addi(t4, t3, -6);
    a.bnez(t4, "maybe_udp");

    // --- TCP: software flow reordering (Section 7.1.2) ----------------------
    // The LB prepended the 4-byte flow hash; reuse it (no recomputation).
    a.lw(a2, 0, t2);       // flow hash
    // Entry index: hash bits [17:3] — the LB already consumed the low 3
    // bits to pick the RPU, so together 18 hash bits are covered (paper
    // Section 7.1.2). 16-byte entry stride.
    a.slli(a3, a2, 14);
    a.srli(a3, a3, 13);
    a.andi(a3, a3, -16);
    a.add(a3, a3, a7);
    a.lw(a4, 0, a3);       // entry: stored hash
    // Sequence number (network order) -> t3 (host order).
    a.lw(a5, off.tcp_seq, t2);
    a.srli(t3, a5, 24);
    a.srli(t4, a5, 8);
    a.and_(t4, t4, a6);
    a.or_(t3, t3, t4);
    a.slli(t4, a5, 8);
    a.and_(t4, t4, s1);
    a.or_(t3, t3, t4);
    a.slli(t4, a5, 24);
    a.or_(t3, t3, t4);
    a.bne(a4, a2, "fresh_or_collision");
    a.lw(a4, 4, a3);       // expected sequence
    a.bne(a4, t3, "out_of_order");

    a.label("in_order");
    // next_expected = seq + payload; stamp the entry with the cycle time.
    a.srli(t4, a0, 16);
    a.addi(t4, t4, -int32_t(off.tcp_payload));
    a.add(t4, t4, t3);
    a.sw(t4, 4, a3);
    a.rdcycle(t4);
    a.sw(t4, 8, a3);
    a.lw(a2, 12, a3);      // held descriptor for this flow (0 = none)
    a.beqz(a2, "io_nohold");
    emit_unheld("io");
    a.label("io_nohold");
    a.sw(zero, 12, a3);
    a.li(t5, off.tcp_payload);
    a.lw(t6, off.ports, t2);
    a.mv(s2, s11);
    a.j("submit");

    a.label("out_of_order");
    a.bltu(t3, a4, "stale_segment");
    // Future segment: hold it (one per flow) until the gap fills. The
    // paper dedicates at most half of the packet slots (16) to reorder
    // buffering; beyond that, punt to the host.
    a.lw(t4, 12, a3);
    a.bnez(t4, "punt_held_resync");
    a.slti(t4, s0, int32_t(reorder_cap));
    a.beqz(t4, "to_host");
    a.lui(t4, 0x801);     // held list: record this flow entry
    a.andi(t5, s0, 15);
    a.slli(t5, t5, 2);
    a.add(t5, t5, t4);
    a.sw(a3, 0, t5);
    a.addi(s0, s0, 1);
    a.sw(a0, 12, a3);
    a.rdcycle(t4);
    a.sw(t4, 8, a3);
    a.j("chkmatch");

    // Reorder buffer already busy: the gap was packet loss, not
    // reordering. Punt the stale held packet to the host (paper: "in the
    // rare case of ... running out of reordering buffers, we forward the
    // corresponding packets to the host") and resynchronize the window at
    // the current packet.
    a.label("punt_held_resync");
    a.andi(t4, t4, -16);
    a.ori(t4, t4, 2);  // port = host
    a.sw(t4, rp::kRegSendLow, gp);
    a.sw(zero, rp::kRegSendHigh, gp);
    a.sw(zero, 12, a3);
    emit_unheld("ph");
    a.j("in_order");

    a.label("stale_segment");
    // Retransmission/duplicate: scan it but do not move the window.
    a.mv(a2, zero);
    a.li(t5, off.tcp_payload);
    a.lw(t6, off.ports, t2);
    a.mv(s2, s11);
    a.j("submit");

    a.label("fresh_or_collision");
    a.beqz(a4, "take_over");  // empty entry: claim it
    a.lw(t4, 8, a3);       // last touch time
    a.rdcycle(t5);
    a.sub(t5, t5, t4);
    a.lui(t4, 0x4);        // ~65 us timeout: older entries are reclaimable
    a.bltu(t5, t4, "to_host");  // live collision -> punt to host
    a.label("take_over");
    // Flush a stale held packet of the evicted flow to the host so its
    // packet slot is never leaked.
    a.lw(t4, 12, a3);
    a.beqz(t4, "tk_claim");
    a.andi(t4, t4, -16);
    a.ori(t4, t4, 2);
    a.sw(t4, rp::kRegSendLow, gp);
    a.sw(zero, rp::kRegSendHigh, gp);
    emit_unheld("tk");
    a.label("tk_claim");
    a.sw(a2, 0, a3);       // take the entry over
    a.sw(zero, 12, a3);
    a.j("in_order");

    a.label("to_host");
    a.andi(a0, a0, -16);
    a.ori(a0, a0, 2);
    a.sw(a0, rp::kRegSendLow, gp);
    a.sw(a1, rp::kRegSendHigh, gp);
    a.j("main");

    // Idle-loop timeout sweep: a held packet whose gap never fills (the
    // missing segment was punted on a collision, or the flow simply
    // ended) must not sit in its packet slot forever. Check one held
    // entry per idle iteration; past the collision timeout, punt it to
    // the host and invalidate the flow entry so a new flow can claim it.
    // Surfaced by the packet conformance fuzzer (src/fuzz/pkt_fuzz.cc)
    // as end-of-traffic stuck-packet divergences.
    a.label("sweep");
    a.beqz(s0, "chkmatch");
    a.lui(t5, 0x801);
    a.lw(a3, 0, t5);       // first held flow entry (pointer from memory...
    a.slli(a3, a3, 13);    // ...re-bounded: the flow table spans 512 KiB
    a.srli(a3, a3, 13);    //    at 0x01080000, so low 19 bits + base)
    a.andi(a3, a3, -16);
    a.add(a3, a3, a7);
    a.lw(t4, 8, a3);       // last touch time
    a.rdcycle(t6);
    a.sub(t6, t6, t4);
    a.lui(t4, 0x4);        // same ~65 us horizon as collision reclaim
    a.bltu(t6, t4, "chkmatch");
    a.lw(t4, 12, a3);
    a.beqz(t4, "swp_unlist");
    a.andi(t4, t4, -16);
    a.ori(t4, t4, 2);      // port = host
    a.sw(t4, rp::kRegSendLow, gp);
    a.sw(zero, rp::kRegSendHigh, gp);
    a.label("swp_unlist");
    a.sw(zero, 12, a3);
    a.sw(zero, 0, a3);     // entry empty: the next segment starts fresh
    emit_unheld("swp");
    a.j("chkmatch");

    a.label("maybe_udp");
    a.addi(t4, t4, -11);
    a.bnez(t4, "nonip");
    a.mv(a2, zero);
    a.li(t5, off.udp_payload);
    a.lw(t6, off.ports, t2);
    a.mv(s2, zero);
    a.j("submit");

    a.label("nonip");
    a.slli(a0, a0, 20);
    a.srli(a0, a0, 20);
    a.sw(a0, rp::kRegSendLow, gp);
    a.sw(zero, rp::kRegSendHigh, gp);
    a.j("main");

    // Submit, then release a held packet if this one filled its gap.
    a.label("submit");
    a.add(s3, a1, t5);
    a.sw(s3, kAccDmaAddr, s5);
    a.srli(s4, a0, 16);
    a.sub(s4, s4, t5);
    a.sw(s4, kAccDmaLen, s5);
    a.sw(t6, kAccPorts, s5);
    a.sw(s2, kAccStateH, s5);
    a.sw(t0, kAccSlot, s5);
    a.sw(s9, kAccCtrl, s5);
    a.bnez(a2, "process_held");
    a.j("chkmatch");

    a.label("process_held");
    // Re-enter the parse path for the held descriptor (the pickup site
    // already dropped it from the held list).
    a.mv(a0, a2);
    a.srli(t0, a0, 4);
    a.andi(t0, t0, 0xff);
    a.slli(t1, t0, 3);
    a.add(t1, t1, s7);
    a.lw(a1, 4, t1);      // its data address from the context table
    a.addi(t2, t0, -1);
    a.slli(t2, t2, 7);
    a.add(t2, t2, s6);
    a.j("parse");

    emit_match_drain(a, /*strip_hash=*/true);
    return {a.assemble(), 0};
}

Program
nat(const SlotParams& slots, bool hash_prepended) {
    // NAT accelerator register offsets (accel/nat.h).
    constexpr int32_t kNatCtrl = 0x00;   // W: 1 = start / R: done pending
    constexpr int32_t kNatAddr = 0x04;
    constexpr int32_t kNatLen = 0x08;
    constexpr int32_t kNatSlot = 0x0c;
    constexpr int32_t kNatResult = 0x10;
    constexpr int32_t kNatPop = 0x14;

    Assembler a;
    emit_prologue(a, slots);
    a.lui(s5, 0x2010);  // NAT engine registers
    a.lui(s7, 0x800);   // slot contexts in DMEM
    a.li(s9, 1);

    a.label("main");
    a.lw(a0, rp::kRegRecvLow, gp);
    a.beqz(a0, "chkdone");
    a.lw(a1, rp::kRegRecvHigh, gp);
    a.sw(zero, rp::kRegRecvRelease, gp);
    a.srli(t0, a0, 4);
    a.andi(t0, t0, 0xff);
    a.slli(t1, t0, 3);
    a.add(t1, t1, s7);
    a.sw(a0, 0, t1);  // save the descriptor until the engine finishes
    a.sw(a1, 4, t1);
    // With the hash LB, 4 prepended bytes precede the frame proper.
    const int32_t skip = hash_prepended ? 4 : 0;
    a.addi(t2, a1, skip);
    a.sw(t2, kNatAddr, s5);
    a.srli(t2, a0, 16);
    a.addi(t2, t2, -skip);
    a.sw(t2, kNatLen, s5);
    a.sw(t0, kNatSlot, s5);
    a.sw(s9, kNatCtrl, s5);
    // Fall through into the completion check.
    a.label("chkdone");
    a.lbu(t0, kNatCtrl, s5);  // done FIFO non-empty?
    a.beqz(t0, "main");
    a.lbu(t1, kNatSlot, s5);
    a.lw(t2, kNatResult, s5);
    a.sw(zero, kNatPop, s5);
    a.slli(t3, t1, 3);
    a.add(t3, t3, s7);
    a.lw(a0, 0, t3);
    a.lw(a1, 4, t3);
    a.addi(t4, t2, -3);  // kNatDropped?
    a.beqz(t4, "drop");
    // Send the frame (without the prepended hash when present).
    a.addi(a1, a1, skip);
    a.srli(t5, a0, 16);
    a.addi(t5, t5, -skip);
    a.slli(t5, t5, 16);
    a.slli(a0, a0, 20);
    a.srli(a0, a0, 20);
    a.or_(a0, a0, t5);
    a.xori(a0, a0, 1);  // translated or pass-through: out the other port
    a.sw(a0, rp::kRegSendLow, gp);
    a.sw(a1, rp::kRegSendHigh, gp);
    a.j("main");
    a.label("drop");
    a.slli(a0, a0, 20);
    a.srli(a0, a0, 20);
    a.sw(a0, rp::kRegSendLow, gp);
    a.sw(zero, rp::kRegSendHigh, gp);
    a.j("main");
    return {a.assemble(), 0};
}

Program
chained_firewall(unsigned rpu_count, const SlotParams& slots) {
    Assembler a;
    emit_prologue(a, slots);
    a.lui(s5, 0x2010);  // firewall accelerator registers
    a.lui(s6, 0x804);   // header slots
    a.lw(t2, rp::kRegCoreId, gp);
    a.li(t3, int32_t(rpu_count / 2));
    a.add(t4, t2, t3);   // partner RPU in the second half
    a.slli(s3, t4, 8);
    a.li(s4, 1);         // "denied" response code
    a.sw(t4, rp::kRegLbSlotReq, gp);  // prefetch the first remote slot

    a.label("loop");
    a.lw(a0, rp::kRegRecvLow, gp);
    a.beqz(a0, "loop");
    a.sw(zero, rp::kRegRecvRelease, gp);
    // Firewall stage: parse the header copy, check the source IP.
    a.srli(t0, a0, 4);
    a.andi(t0, t0, 0xff);
    a.addi(t0, t0, -1);
    a.slli(t0, t0, 7);
    a.add(t0, t0, s6);
    a.lhu(t1, 12, t0);
    a.li(t5, 8);
    a.bne(t1, t5, "drop");
    a.lw(t6, 26, t0);
    a.sw(t6, 0x00, s5);   // ACC_SRC_IP
    a.lbu(t6, 0x04, s5);  // ACC_FW_MATCH
    a.bnez(t6, "drop");
    // Survivors continue down the chain over loopback.
    a.label("poll_slot");
    a.lw(t5, rp::kRegLbSlotResp, gp);
    a.beqz(t5, "poll_slot");
    a.bne(t5, s4, "got_slot");
    a.sw(t4, rp::kRegLbSlotReq, gp);
    a.j("poll_slot");
    a.label("got_slot");
    a.andi(s2, t5, 0xff);
    a.or_(s2, s2, s3);
    a.sw(s2, rp::kRegSendDest, gp);
    a.ori(a0, a0, 3);  // port -> loopback
    a.sw(a0, rp::kRegSendLow, gp);
    a.sw(zero, rp::kRegSendHigh, gp);
    a.sw(t4, rp::kRegLbSlotReq, gp);  // prefetch the next remote slot
    a.j("loop");
    a.label("drop");
    a.slli(a0, a0, 20);
    a.srli(a0, a0, 20);
    a.sw(a0, rp::kRegSendLow, gp);
    a.sw(zero, rp::kRegSendHigh, gp);
    a.j("loop");
    return {a.assemble(), 0};
}

Program
busy_loop(const SlotParams& slots) {
    Assembler a;
    emit_prologue(a, slots);
    // Announce slots like a healthy image, then wedge: never read RECV,
    // never release a descriptor. Assigned packets pile up in the RPU
    // until the forward-progress watchdog notices the silence.
    a.label("spin");
    a.j("spin");
    return {a.assemble(), 0};
}

Program
broadcast_sender(uint32_t period_cycles) {
    Assembler a;
    emit_prologue(a, SlotParams{4, 16 * 1024});
    a.lui(s5, 0x2020);  // broadcast region
    a.label("loop");
    a.rdcycle(t0);
    a.sw(t0, 0, s5);  // blocks while the 18-deep message FIFO is full
    if (period_cycles > 0) {
        a.li(t1, int32_t(period_cycles / 3));  // ~3 cycles per wait iteration
        a.label("wait");
        a.addi(t1, t1, -1);
        a.bnez(t1, "wait");
    }
    a.j("loop");
    return {a.assemble(), 0};
}

Program
broadcast_sink() {
    Assembler a;
    emit_prologue(a, SlotParams{4, 16 * 1024});
    // Accumulate {latency sum, count} into the host-visible debug regs.
    a.mv(s2, zero);
    a.mv(s3, zero);
    a.label("loop");
    a.lw(t0, rp::kRegBcastReady, gp);
    a.beqz(t0, "loop");
    a.lw(t1, rp::kRegBcastData, gp);
    a.sw(zero, rp::kRegBcastPop, gp);
    a.rdcycle(t2);
    a.sub(t2, t2, t1);
    a.add(s2, s2, t2);
    a.addi(s3, s3, 1);
    a.sw(s2, rp::kRegDebugLow, gp);
    a.sw(s3, rp::kRegDebugHigh, gp);
    a.j("loop");
    return {a.assemble(), 0};
}

Program
broadcast_stress() {
    Assembler a;
    emit_prologue(a, SlotParams{4, 16 * 1024});
    a.lui(s5, 0x2020);
    a.mv(s2, zero);  // latency sum
    a.mv(s3, zero);  // sample count
    a.label("loop");
    a.rdcycle(t0);
    a.sw(t0, 0, s5);  // blocking send: stalls while the 18-deep FIFO is full
    a.label("drain");
    a.lw(t3, rp::kRegBcastReady, gp);
    a.beqz(t3, "loop");
    a.lw(t1, rp::kRegBcastData, gp);
    a.sw(zero, rp::kRegBcastPop, gp);
    a.rdcycle(t2);
    a.sub(t2, t2, t1);
    a.add(s2, s2, t2);
    a.addi(s3, s3, 1);
    a.sw(s2, rp::kRegDebugLow, gp);
    a.sw(s3, rp::kRegDebugHigh, gp);
    a.j("drain");
    return {a.assemble(), 0};
}

}  // namespace rosebud::fwlib
