/// \file
/// Firmware programs for the RISC-V cores (paper Appendices B and C).
///
/// Each function assembles a real RV32IM program via rv::Assembler; no
/// cross-compiler is needed. The programs mirror the paper's C firmware:
///
///  * forwarder            — the minimal receive/release/send loop whose
///                           16-cycle cost sets the 250/125 MPPS caps of
///                           Section 6.1;
///  * two_step_forwarder   — the loopback benchmark of Section 6.3: half
///                           the RPUs relay packets to a partner RPU over
///                           the loopback channel, the partner returns
///                           them to the wire;
///  * firewall             — Appendix C: parse Ethernet/IPv4, look the
///                           source IP up in the blacklist accelerator,
///                           drop on match, forward otherwise;
///  * pigasus_hw_reorder   — Appendix B: parse headers, feed the Pigasus
///                           accelerator, drain matches (to host) and
///                           end-of-packet markers (forward);
///  * pigasus_sw_reorder   — the Section 7.1.2 variant: TCP flow
///                           reordering in software using a 32K-entry
///                           x 16 B flow table in the packet-memory
///                           scratchpad, keyed by the LB-prepended hash;
///  * broadcast_sender/broadcast_sink — Section 6.3 messaging benchmarks:
///                           timestamped writes into the broadcast region,
///                           latency accumulated in debug registers.

#ifndef ROSEBUD_FIRMWARE_PROGRAMS_H
#define ROSEBUD_FIRMWARE_PROGRAMS_H

#include <cstdint>
#include <vector>

namespace rosebud::fwlib {

/// An assembled firmware image.
struct Program {
    std::vector<uint32_t> image;
    uint32_t entry = 0;
};

/// Slot provisioning shared by the programs (paper default: 32 slots of
/// 16 KB, headers in the upper half of DMEM, 128 B each).
struct SlotParams {
    uint32_t count = 32;
    uint32_t size = 16 * 1024;
};

Program forwarder(const SlotParams& slots = {});

/// `rpu_count` determines the partner mapping (i <-> i + rpu_count/2).
Program two_step_forwarder(unsigned rpu_count, const SlotParams& slots = {});

Program firewall(const SlotParams& slots = SlotParams{16, 16 * 1024});

Program pigasus_hw_reorder(const SlotParams& slots = {});

/// `reorder_cap` bounds how many packet slots may sit in the software
/// reorder buffer (paper: "up to half of our packet slots (e.g., 16)").
Program pigasus_sw_reorder(const SlotParams& slots = {}, unsigned reorder_cap = 16);

/// NAT middlebox firmware: parse, hand the packet to the NAT engine for
/// in-place header rewriting, forward translated/pass-through packets out
/// the other port, drop unmappable ones. A third middlebox built on the
/// same firmware skeleton as the paper's two case studies.
/// `hash_prepended` must match the LB configuration: the hash policy
/// prepends a 4-byte flow hash that the firmware strips before the
/// engine sees the frame and before wire forwarding.
Program nat(const SlotParams& slots = SlotParams{16, 16 * 1024},
            bool hash_prepended = false);

/// First stage of a heterogeneous middlebox chain (paper Section 4.4:
/// "a processing chain of heterogeneous RPUs with different accelerators
/// and capabilities"): runs the firewall check and relays surviving
/// packets to the partner RPU (id + rpu_count/2) over the loopback
/// channel, where a different accelerator (e.g. the Pigasus matcher with
/// its own firmware) takes over.
Program chained_firewall(unsigned rpu_count, const SlotParams& slots = {});

/// Fault-injection fixture for the forward-progress watchdog: announces
/// its packet slots like a healthy image (so the LB keeps assigning
/// traffic to it) and then spins forever without ever reading RECV or
/// releasing a descriptor — a firmware busy-loop wedge. The static
/// verifier flags the unbounded loop, so loading it requires
/// FirmwareCheck::kWarn/kOff (the same gate-lowering idiom as the other
/// failure-injection tests).
Program busy_loop(const SlotParams& slots = {});

/// Broadcast sender: writes its cycle counter into the broadcast region
/// every `period_cycles` (0 = as fast as possible). The receiver side of
/// the measurement is in every program below: broadcast_sink accumulates
/// {sum of latencies, count} into DEBUG_LOW/DEBUG_HIGH.
Program broadcast_sender(uint32_t period_cycles);

Program broadcast_sink();

/// Combined sender+sink for the saturated-broadcast measurement: every
/// iteration issues a (blocking) timestamped broadcast write, then drains
/// pending notifications, accumulating latency into the debug registers.
Program broadcast_stress();

}  // namespace rosebud::fwlib

#endif  // ROSEBUD_FIRMWARE_PROGRAMS_H
