#include "obs/shardcheck.h"

#include <algorithm>
#include <memory>
#include <sstream>

#include "core/system.h"
#include "firmware/programs.h"
#include "net/tracegen.h"
#include "sim/log.h"

namespace rosebud::obs {

ShardLatencyRecorder::ShardLatencyRecorder(const sim::Kernel& kernel,
                                           const lint::ShardPlan& plan,
                                           sim::TelemetrySink* next,
                                           bool fault_on_undercut)
    : kernel_(kernel), next_(next), fault_on_undercut_(fault_on_undercut) {
    for (const lint::ShardCut& c : plan.cuts) {
        if (c.edge.kind != lint::LatencyEdge::kData) continue;
        NetState& st = nets_[c.edge.net];
        st.certified = st.certified == 0
                           ? c.edge.latency
                           : std::min(st.certified, c.edge.latency);
    }
}

void
ShardLatencyRecorder::net_event(const std::string& net, NetEvent ev) {
    if (next_) next_->net_event(net, ev);
    auto it = nets_.find(net);
    if (it == nets_.end()) return;
    NetState& st = it->second;

    const sim::Kernel::Phase phase = kernel_.phase();
    if (ev == NetEvent::kPushOk) {
        if (phase != sim::Kernel::Phase::kTick) {
            // Host-phase injection bypasses the registered staging the
            // certificate reasons about; resync rather than measure.
            st.pending.clear();
            return;
        }
        st.pending.push_back(kernel_.now());
        // A net whose pops we never see (e.g. a drain the emitter does not
        // instrument) must not grow without bound; losing the oldest
        // entries only ever over-states latency, never under-states it.
        if (st.pending.size() > (1u << 16)) st.pending.pop_front();
    } else if (ev == NetEvent::kPop) {
        if (st.pending.empty()) return;  // resynced or pre-attach push
        if (phase == sim::Kernel::Phase::kIdle) {
            st.pending.pop_front();  // host drain: consume, claim nothing
            return;
        }
        uint64_t pushed = st.pending.front();
        st.pending.pop_front();
        uint64_t lat = kernel_.now() - pushed;
        ++st.messages;
        st.min_latency = std::min(st.min_latency, lat);
        if (lat < st.certified) {
            st.undercut = true;
            undercut_seen_ = true;
            if (fault_on_undercut_) {
                sim::fatal("shard-cut certificate violated on net '" + net +
                           "': observed cross-cut latency " + std::to_string(lat) +
                           " < certified bound " + std::to_string(st.certified) +
                           " @cycle " + std::to_string(kernel_.now()));
            }
        }
    }
}

void
ShardLatencyRecorder::net_occupancy(const std::string& net, size_t occupancy,
                                    size_t capacity) {
    if (next_) next_->net_occupancy(net, occupancy, capacity);
}

void
ShardLatencyRecorder::end_cycle(uint64_t completed) {
    if (next_) next_->end_cycle(completed);
}

std::vector<CutLatency>
ShardLatencyRecorder::observations() const {
    std::vector<CutLatency> out;
    for (const auto& [net, st] : nets_) {
        CutLatency c;
        c.net = net;
        c.certified = st.certified;
        c.messages = st.messages;
        c.min_latency = st.messages ? st.min_latency : 0;
        c.undercut = st.undercut;
        out.push_back(std::move(c));
    }
    return out;
}

std::string
ShardLatencyRecorder::report() const {
    std::ostringstream os;
    os << "shard-cut latency cross-check (" << nets_.size() << " cut nets)\n";
    for (const CutLatency& c : observations()) {
        os << "  " << c.net << ": certified >= " << c.certified << ", ";
        if (c.messages == 0) {
            os << "no messages observed\n";
        } else {
            os << "observed min " << c.min_latency << " over " << c.messages
               << " messages" << (c.undercut ? " [UNDERCUT]" : " [ok]") << "\n";
        }
    }
    return os.str();
}

namespace {

/// The check workload, built identically for the barrier and decoupled
/// passes so their final fingerprints are comparable bit for bit.
std::unique_ptr<System>
build_check_system(const ShardCheckSpec& spec) {
    SystemConfig scfg;
    scfg.rpu_count = spec.rpu_count;
    auto sys = std::make_unique<System>(scfg);

    fwlib::Program fw = fwlib::forwarder();
    sys->host().load_firmware_all(fw.image, fw.entry);
    sys->host().boot_all();

    // Two-port traffic so both MAC boundaries carry cross-cut messages.
    for (unsigned port = 0; port < 2; ++port) {
        net::TrafficSpec tspec;
        tspec.packet_size = spec.packet_size;
        tspec.seed = spec.seed * 2654435761u + port;
        auto gen = std::make_shared<net::TraceGenerator>(tspec, nullptr, nullptr);
        dist::TrafficSource::Config src;
        src.port = port;
        src.load = spec.load;
        sys->add_source(src, [gen] { return gen->next(); });
    }
    return sys;
}

}  // namespace

ShardCheckResult
run_shard_check(const ShardCheckSpec& spec) {
    std::unique_ptr<System> sys = build_check_system(spec);

    ShardCheckResult res;
    res.plan = sys->shard_plan(spec.shards);
    std::string why;
    bool plan_ok = lint::validate_plan(sys->kernel(), res.plan, &why);

    ShardLatencyRecorder rec(sys->kernel(), res.plan, nullptr,
                             spec.fault_on_undercut);
    sys->kernel().set_telemetry(&rec);
    sys->run_cycles(spec.run_cycles);
    sys->kernel().set_telemetry(nullptr);

    res.cuts = rec.observations();
    res.cycles = spec.run_cycles;
    for (const CutLatency& c : res.cuts) res.messages += c.messages;
    res.ok = plan_ok && rec.ok();
    res.barrier_fingerprint = sys->state_fingerprint();

    // Decoupled pass: the cut channels replace the instrumented nets, so
    // the cross-check moves with them — each channel records its own
    // observed release latencies, and an undercut there would mean the
    // decoupled executor released a message earlier than the certified
    // lookahead permits (the exact unsoundness the recorder hunts on the
    // barrier kernel).
    if (spec.decouple > 1) {
        res.decoupled_ran = true;
        std::unique_ptr<System> dec = build_check_system(spec);
        dec->set_decouple_shards(spec.decouple);
        dec->run_cycles(spec.run_cycles);
        res.decoupled_fingerprint = dec->state_fingerprint();
        res.channels = dec->decoupled_channel_report();
        if (!dec->decoupled_active()) res.decoupled_ok = false;
        for (const sim::CutChannelStats& ch : res.channels) {
            if (ch.delivered > 0 && ch.min_latency < ch.certified)
                res.decoupled_ok = false;
        }
        if (res.decoupled_fingerprint != res.barrier_fingerprint)
            res.decoupled_ok = false;
        res.ok = res.ok && res.decoupled_ok;
    }
    return res;
}

}  // namespace rosebud::obs
