/// \file
/// Dynamic cross-check of the static shard-cut certificate (lint/shard.h).
///
/// The certifier proves a *minimum* forwarding latency for every net whose
/// data edge crosses a shard boundary. This recorder validates that proof
/// against reality, V&V-in-the-loop style: during an instrumented run it
/// matches every kPushOk on a cut net FIFO-order against the kPop that
/// consumes it and tracks the minimum observed pop-minus-push latency per
/// net. An observation *below* the certified bound means the static model
/// is unsound for this netlist (a combinational path was declared
/// registered) and — when `fault_on_undercut` is set — faults immediately
/// via sim::fatal, exactly like the race detector.
///
/// Host-phase events are sync actions, not cross-shard messages: a push
/// outside the tick phase resets the net's pending queue (the injection
/// bypasses the registered staging the proof is about), and a pop outside
/// tick/commit consumes its entry without a latency claim.

#ifndef ROSEBUD_OBS_SHARDCHECK_H
#define ROSEBUD_OBS_SHARDCHECK_H

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "lint/shard.h"
#include "sim/kernel.h"
#include "sim/shard.h"
#include "sim/telemetry.h"

namespace rosebud::obs {

/// One cut net's observed-vs-certified latency record.
struct CutLatency {
    std::string net;
    unsigned certified = 0;    ///< certified minimum lookahead (cycles)
    uint64_t messages = 0;     ///< matched push->pop pairs
    uint64_t min_latency = 0;  ///< minimum observed (valid when messages > 0)
    bool undercut = false;     ///< observed < certified at least once
};

class ShardLatencyRecorder : public sim::TelemetrySink {
 public:
    /// Watch every net with a cut *data* edge in `plan`. Events for other
    /// nets are ignored (and forwarded to `next` when chaining under a
    /// full obs::Telemetry stack).
    ShardLatencyRecorder(const sim::Kernel& kernel, const lint::ShardPlan& plan,
                         sim::TelemetrySink* next = nullptr,
                         bool fault_on_undercut = true);

    void net_event(const std::string& net, NetEvent ev) override;
    void net_occupancy(const std::string& net, size_t occupancy,
                       size_t capacity) override;
    void end_cycle(uint64_t completed) override;

    /// Per-net observations, sorted by net name.
    std::vector<CutLatency> observations() const;

    /// True while no observation has undercut its certified bound.
    bool ok() const { return !undercut_seen_; }

    size_t watched_nets() const { return nets_.size(); }

    /// Human-readable observed-vs-certified table.
    std::string report() const;

 private:
    struct NetState {
        unsigned certified = 0;
        std::deque<uint64_t> pending;  ///< push cycles awaiting their pop
        uint64_t messages = 0;
        uint64_t min_latency = ~uint64_t(0);
        bool undercut = false;
    };

    const sim::Kernel& kernel_;
    sim::TelemetrySink* next_;
    bool fault_on_undercut_;
    bool undercut_seen_ = false;
    std::map<std::string, NetState> nets_;
};

/// One-call harness behind `ctest` and the CI gate: build a forwarder
/// System, certify a partition, run seeded two-port traffic with the
/// recorder attached, and report the plan plus every cut-net observation.
struct ShardCheckSpec {
    unsigned rpu_count = 8;
    unsigned shards = 2;
    uint64_t seed = 1;
    uint32_t packet_size = 256;
    double load = 0.7;
    sim::Cycle run_cycles = 20'000;
    bool fault_on_undercut = true;
    /// >1: additionally run the *same* workload time-decoupled over a
    /// certified plan with that many shards and cross-check the cut
    /// channels themselves — every decoupled channel with deliveries must
    /// show observed latency >= its certified lookahead, and the
    /// decoupled fingerprint must equal the barrier run's. (The telemetry
    /// recorder cannot ride along decoupled — attaching a sink forces the
    /// barrier kernel — so this pass reads the channels' own stats via
    /// System::decoupled_channel_report.)
    unsigned decouple = 0;
};

struct ShardCheckResult {
    lint::ShardPlan plan;
    std::vector<CutLatency> cuts;
    bool ok = false;  ///< plan internally consistent and no undercuts
    uint64_t cycles = 0;
    uint64_t messages = 0;  ///< total matched cross-cut messages

    // Decoupled pass (spec.decouple > 1); folded into `ok`.
    bool decoupled_ran = false;
    bool decoupled_ok = true;  ///< channels respected bounds, fingerprints equal
    uint64_t barrier_fingerprint = 0;
    uint64_t decoupled_fingerprint = 0;
    std::vector<sim::CutChannelStats> channels;  ///< decoupled cut channels
};

ShardCheckResult run_shard_check(const ShardCheckSpec& spec);

}  // namespace rosebud::obs

#endif  // ROSEBUD_OBS_SHARDCHECK_H
