#include "obs/metrics.h"

#include <cmath>
#include <cstdio>

#include "obs/json.h"
#include "sim/kernel.h"
#include "sim/stats.h"

namespace rosebud::obs {

uint64_t
Histogram::percentile(double p) const {
    if (count_ == 0) return 0;
    if (std::isnan(p) || p < 0.0) p = 0.0;
    if (p > 1.0) p = 1.0;
    uint64_t target = uint64_t(std::ceil(p * double(count_)));
    if (target == 0) target = 1;
    uint64_t cum = 0;
    for (unsigned i = 0; i < kBuckets; ++i) {
        cum += buckets_[i];
        if (cum >= target) return bucket_upper(i);
    }
    return max_;
}

void
Histogram::clear() {
    for (uint64_t& b : buckets_) b = 0;
    count_ = sum_ = min_ = max_ = 0;
}

void
Histogram::merge(const Histogram& o) {
    if (o.count_ == 0) return;
    for (unsigned i = 0; i < kBuckets; ++i) buckets_[i] += o.buckets_[i];
    if (count_ == 0 || o.min_ < min_) min_ = o.min_;
    if (o.max_ > max_) max_ = o.max_;
    count_ += o.count_;
    sum_ += o.sum_;
}

std::string
prom_name(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 1);
    for (char c : s) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == ':';
        out += ok ? c : '_';
    }
    // Names may not start with a digit; prepend rather than substitute so
    // "9lives" stays recognizable as "_9lives".
    if (out.empty()) out.push_back('_');
    else if (out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
    return out;
}

std::string
prom_label_value(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '\\': out += "\\\\"; break;
        case '"': out += "\\\""; break;
        case '\n': out += "\\n"; break;
        default: out += c;
        }
    }
    return out;
}

void
MetricsRegistry::add_counter(std::string name, std::string help,
                             std::string labels, IntGetter fn) {
    entries_.push_back({Kind::kCounter, prom_name(name), std::move(help),
                        std::move(labels), std::move(fn), nullptr, 1.0});
}

void
MetricsRegistry::add_gauge(std::string name, std::string help,
                           std::string labels, IntGetter fn) {
    entries_.push_back({Kind::kGauge, prom_name(name), std::move(help),
                        std::move(labels), std::move(fn), nullptr, 1.0});
}

void
MetricsRegistry::add_histogram(std::string name, std::string help,
                               std::string labels, const Histogram* h,
                               double scale) {
    entries_.push_back({Kind::kHistogram, prom_name(name), std::move(help),
                        std::move(labels), IntGetter(), h, scale});
}

namespace {

std::string
fmt_double(double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

void
prom_series(std::string& out, const std::string& name,
            const std::string& labels, const std::string& value) {
    out += name;
    if (!labels.empty()) {
        out += '{';
        out += labels;
        out += '}';
    }
    out += ' ';
    out += value;
    out += '\n';
}

}  // namespace

std::string
MetricsRegistry::prometheus_text() const {
    std::string out;
    out.reserve(4096);
    std::string prev_family;
    for (const Entry& e : entries_) {
        if (e.name != prev_family) {
            out += "# HELP " + e.name + " " + e.help + "\n";
            out += "# TYPE " + e.name + " ";
            out += e.kind == Kind::kCounter
                       ? "counter"
                       : e.kind == Kind::kGauge ? "gauge" : "histogram";
            out += "\n";
            prev_family = e.name;
        }
        if (e.kind == Kind::kHistogram) {
            uint64_t cum = 0;
            const Histogram& h = *e.hist;
            h.for_each_nonzero([&](uint64_t upper, uint64_t n) {
                cum += n;
                std::string l = "le=\"" + fmt_double(double(upper) * e.scale) + "\"";
                if (!e.labels.empty()) l = e.labels + "," + l;
                prom_series(out, e.name + "_bucket", l, std::to_string(cum));
            });
            std::string linf = "le=\"+Inf\"";
            if (!e.labels.empty()) linf = e.labels + "," + linf;
            prom_series(out, e.name + "_bucket", linf, std::to_string(h.count()));
            prom_series(out, e.name + "_sum", e.labels,
                        fmt_double(double(h.sum()) * e.scale));
            prom_series(out, e.name + "_count", e.labels,
                        std::to_string(h.count()));
        } else {
            prom_series(out, e.name, e.labels, std::to_string(e.fn ? e.fn() : 0));
        }
    }
    if (stats_) {
        out += "# HELP rosebud_stat_total Simulator stats-registry counter (paper sec. 4.3 status counters).\n";
        out += "# TYPE rosebud_stat_total counter\n";
        for (const auto& [name, ctr] : stats_->counters()) {
            prom_series(out, "rosebud_stat_total",
                        "name=\"" + prom_label_value(name) + "\"",
                        std::to_string(ctr.get()));
        }
        out += "# HELP rosebud_stat_sampler_count Samples accumulated by a stats-registry sampler.\n";
        out += "# TYPE rosebud_stat_sampler_count counter\n";
        for (const auto& [name, s] : stats_->samplers()) {
            prom_series(out, "rosebud_stat_sampler_count",
                        "name=\"" + prom_label_value(name) + "\"",
                        std::to_string(s.seen()));
        }
    }
    if (kernel_) {
        out += "# HELP rosebud_net_occupancy Committed occupancy of a registered net (entries).\n";
        out += "# TYPE rosebud_net_occupancy gauge\n";
        for (const auto& p : kernel_->occupancy_probes()) {
            prom_series(out, "rosebud_net_occupancy",
                        "net=\"" + prom_label_value(p.net) + "\"",
                        std::to_string(p.fn()));
        }
        out += "# HELP rosebud_sim_cycles Simulated cycles since reset.\n";
        out += "# TYPE rosebud_sim_cycles gauge\n";
        prom_series(out, "rosebud_sim_cycles", "", std::to_string(kernel_->now()));
        out += "# HELP rosebud_awake_components Components in the kernel's active set.\n";
        out += "# TYPE rosebud_awake_components gauge\n";
        prom_series(out, "rosebud_awake_components", "",
                    std::to_string(kernel_->awake_count()));
    }
    return out;
}

std::string
MetricsRegistry::json() const {
    JsonWriter w;
    w.begin_object();
    w.key("metrics").begin_array();
    for (const Entry& e : entries_) {
        w.begin_object();
        w.key("name").value(e.name);
        if (!e.labels.empty()) w.key("labels").value(e.labels);
        if (e.kind == Kind::kHistogram) {
            const Histogram& h = *e.hist;
            w.key("kind").value("histogram");
            w.key("count").value(h.count());
            w.key("sum").value(double(h.sum()) * e.scale);
            w.key("mean").value(h.mean() * e.scale);
            w.key("min").value(double(h.min()) * e.scale);
            w.key("max").value(double(h.max()) * e.scale);
            w.key("p50").value(double(h.percentile(0.50)) * e.scale);
            w.key("p99").value(double(h.percentile(0.99)) * e.scale);
            w.key("p999").value(double(h.percentile(0.999)) * e.scale);
            w.key("buckets").begin_array();
            uint64_t cum = 0;
            h.for_each_nonzero([&](uint64_t upper, uint64_t n) {
                cum += n;
                w.begin_object();
                w.key("le").value(double(upper) * e.scale);
                w.key("count").value(cum);
                w.end_object();
            });
            w.end_array();
        } else {
            w.key("kind").value(e.kind == Kind::kCounter ? "counter" : "gauge");
            w.key("value").value(e.fn ? e.fn() : 0);
        }
        w.end_object();
    }
    w.end_array();
    if (stats_) {
        w.key("stats").begin_object();
        for (const auto& [name, ctr] : stats_->counters())
            w.key(name).value(ctr.get());
        w.end_object();
    }
    if (kernel_) {
        w.key("nets").begin_array();
        for (const auto& p : kernel_->occupancy_probes()) {
            w.begin_object();
            w.key("net").value(p.net);
            w.key("occupancy").value(uint64_t(p.fn()));
            w.key("capacity").value(uint64_t(p.capacity));
            w.end_object();
        }
        w.end_array();
        w.key("cycles").value(kernel_->now());
        w.key("awake_components").value(uint64_t(kernel_->awake_count()));
    }
    w.end_object();
    return w.str();
}

std::string
MetricsRegistry::snapshot(MetricsFormat fmt) const {
    return fmt == MetricsFormat::kPrometheus ? prometheus_text() : json();
}

}  // namespace rosebud::obs
