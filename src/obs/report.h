/// \file
/// Bottleneck attribution report — turns the Telemetry aggregator's per-net
/// cycle classification into a ranked answer to "where is the pipeline
/// losing throughput?". Links are ranked by stalled (backpressure) cycles;
/// component rollups show which subsystem — LB, fabric, RPUs, MACs,
/// broadcast — dominates. Renders as a fixed-width table for terminals and
/// as JSON for tooling.

#ifndef ROSEBUD_OBS_REPORT_H
#define ROSEBUD_OBS_REPORT_H

#include <cstdint>
#include <string>
#include <vector>

#include "obs/telemetry.h"

namespace rosebud::obs {

/// One link's lifetime classification. busy+stalled+starved+idle == cycles.
struct LinkStall {
    std::string net;
    uint64_t busy = 0;
    uint64_t stalled = 0;
    uint64_t starved = 0;
    uint64_t idle = 0;
    uint64_t cycles = 0;
    uint64_t pushes = 0;
    uint64_t pops = 0;
    uint64_t blocked = 0;
    size_t peak_occ = 0;
    size_t capacity = 0;
    double stall_frac() const { return cycles ? double(stalled) / double(cycles) : 0.0; }
    double busy_frac() const { return cycles ? double(busy) / double(cycles) : 0.0; }
};

/// Per-component rollup (sums over the component's nets).
struct ComponentStall {
    std::string component;
    size_t net_count = 0;
    uint64_t busy = 0;
    uint64_t stalled = 0;
    uint64_t starved = 0;
    uint64_t idle = 0;
};

struct StallReport {
    uint64_t cycles = 0;  ///< cycles observed by the telemetry
    std::vector<LinkStall> links;            ///< ranked: stalled desc, then busy desc
    std::vector<ComponentStall> components;  ///< ranked: stalled desc
};

/// Build the ranked report from a (still attached or detached) Telemetry.
StallReport build_stall_report(const Telemetry& telem);

/// Fixed-width human-readable rendering of the top `top_n` links plus the
/// component rollup.
std::string format_stall_report(const StallReport& report, size_t top_n = 12);

/// JSON rendering (full link list) for machine consumption.
std::string stall_report_json(const StallReport& report);

}  // namespace rosebud::obs

#endif  // ROSEBUD_OBS_REPORT_H
