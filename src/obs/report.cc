#include "obs/report.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

#include "lint/netlist.h"
#include "obs/json.h"

namespace rosebud::obs {

StallReport
build_stall_report(const Telemetry& telem) {
    StallReport rep;
    rep.cycles = telem.cycles_observed();
    std::map<std::string, ComponentStall> comps;
    for (const auto& [name, ns] : telem.nets()) {
        LinkStall l;
        l.net = name;
        l.busy = ns.busy;
        l.stalled = ns.stalled;
        l.starved = ns.starved;
        l.idle = ns.idle;
        l.cycles = ns.cycles();
        l.pushes = ns.pushes;
        l.pops = ns.pops;
        l.blocked = ns.blocked;
        l.peak_occ = ns.peak_occ;
        l.capacity = ns.capacity;
        rep.links.push_back(std::move(l));

        ComponentStall& c = comps[lint::component_of(name)];
        c.component = lint::component_of(name);
        c.net_count += 1;
        c.busy += ns.busy;
        c.stalled += ns.stalled;
        c.starved += ns.starved;
        c.idle += ns.idle;
    }
    std::stable_sort(rep.links.begin(), rep.links.end(),
                     [](const LinkStall& a, const LinkStall& b) {
                         if (a.stalled != b.stalled) return a.stalled > b.stalled;
                         return a.busy > b.busy;
                     });
    for (auto& [_, c] : comps) rep.components.push_back(std::move(c));
    std::stable_sort(rep.components.begin(), rep.components.end(),
                     [](const ComponentStall& a, const ComponentStall& b) {
                         return a.stalled > b.stalled;
                     });
    return rep;
}

std::string
format_stall_report(const StallReport& report, size_t top_n) {
    std::ostringstream os;
    char buf[256];
    os << "stall attribution over " << report.cycles << " cycles ("
       << report.links.size() << " nets)\n\n";
    os << "  top links by backpressure:\n";
    std::snprintf(buf, sizeof(buf), "    %-28s %8s %8s %8s %8s %9s %7s\n", "net",
                  "stall%", "busy%", "starve%", "idle%", "blocked", "peak");
    os << buf;
    size_t shown = 0;
    for (const auto& l : report.links) {
        if (shown++ >= top_n) break;
        const double cy = l.cycles ? double(l.cycles) : 1.0;
        std::snprintf(buf, sizeof(buf),
                      "    %-28s %7.2f%% %7.2f%% %7.2f%% %7.2f%% %9llu %4zu/%zu\n",
                      l.net.c_str(), 100.0 * double(l.stalled) / cy,
                      100.0 * double(l.busy) / cy, 100.0 * double(l.starved) / cy,
                      100.0 * double(l.idle) / cy, (unsigned long long)l.blocked,
                      l.peak_occ, l.capacity);
        os << buf;
    }
    os << "\n  component rollup:\n";
    std::snprintf(buf, sizeof(buf), "    %-12s %6s %8s %8s %8s %8s\n", "component",
                  "nets", "stall%", "busy%", "starve%", "idle%");
    os << buf;
    for (const auto& c : report.components) {
        const double total = double(c.busy + c.stalled + c.starved + c.idle);
        const double cy = total > 0 ? total : 1.0;
        std::snprintf(buf, sizeof(buf),
                      "    %-12s %6zu %7.2f%% %7.2f%% %7.2f%% %7.2f%%\n",
                      c.component.c_str(), c.net_count, 100.0 * double(c.stalled) / cy,
                      100.0 * double(c.busy) / cy, 100.0 * double(c.starved) / cy,
                      100.0 * double(c.idle) / cy);
        os << buf;
    }
    return os.str();
}

std::string
stall_report_json(const StallReport& report) {
    JsonWriter w;
    w.begin_object();
    w.key("cycles").value(report.cycles);
    w.key("links").begin_array();
    for (const auto& l : report.links) {
        w.begin_object();
        w.key("net").value(l.net);
        w.key("busy").value(l.busy);
        w.key("stalled").value(l.stalled);
        w.key("starved").value(l.starved);
        w.key("idle").value(l.idle);
        w.key("cycles").value(l.cycles);
        w.key("pushes").value(l.pushes);
        w.key("pops").value(l.pops);
        w.key("blocked").value(l.blocked);
        w.key("peak_occ").value(uint64_t(l.peak_occ));
        w.key("capacity").value(uint64_t(l.capacity));
        w.end_object();
    }
    w.end_array();
    w.key("components").begin_array();
    for (const auto& c : report.components) {
        w.begin_object();
        w.key("component").value(c.component);
        w.key("nets").value(uint64_t(c.net_count));
        w.key("busy").value(c.busy);
        w.key("stalled").value(c.stalled);
        w.key("starved").value(c.starved);
        w.key("idle").value(c.idle);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    return w.str();
}

}  // namespace rosebud::obs
