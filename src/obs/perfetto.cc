#include "obs/perfetto.h"

#include "core/tracer.h"
#include "obs/json.h"
#include "obs/telemetry.h"
#include "sim/kernel.h"

namespace rosebud::obs {

namespace {

constexpr int kPacketPid = 1;
constexpr int kUtilPid = 2;

double
cycle_us(uint64_t cycle) {
    return sim::cycles_to_ns(sim::Cycle(cycle)) / 1e3;
}

void
emit_meta(JsonWriter& w, int pid, const char* name) {
    w.begin_object();
    w.key("ph").value("M");
    w.key("name").value("process_name");
    w.key("pid").value(pid);
    w.key("args").begin_object().key("name").value(name).end_object();
    w.end_object();
}

}  // namespace

std::string
trace_json(const PacketTracer& tracer, const Telemetry* telem, size_t max_packets) {
    JsonWriter w;
    w.begin_object();
    w.key("displayTimeUnit").value("ns");
    w.key("traceEvents").begin_array();
    emit_meta(w, kPacketPid, "packets");
    if (telem) emit_meta(w, kUtilPid, "utilization");

    size_t emitted = 0;
    for (uint64_t id : tracer.packet_ids()) {
        if (emitted++ >= max_packets) break;
        const auto& tl = tracer.timeline(id);
        // Each consecutive stage pair becomes one async span named after
        // the stage the packet was *in*; the final event gets an instant
        // marker so drops/departures are visible.
        for (size_t i = 0; i + 1 < tl.size(); ++i) {
            const auto& a = tl[i];
            const auto& b = tl[i + 1];
            w.begin_object();
            w.key("ph").value("b");
            w.key("cat").value("packet");
            w.key("id").value(id);
            w.key("name").value(a.stage);
            w.key("pid").value(kPacketPid);
            w.key("tid").value(uint64_t(a.rpu));
            w.key("ts").value(cycle_us(a.cycle));
            w.key("args").begin_object();
            w.key("size").value(uint64_t(a.size));
            w.end_object();
            w.end_object();

            w.begin_object();
            w.key("ph").value("e");
            w.key("cat").value("packet");
            w.key("id").value(id);
            w.key("name").value(a.stage);
            w.key("pid").value(kPacketPid);
            w.key("tid").value(uint64_t(a.rpu));
            w.key("ts").value(cycle_us(b.cycle));
            w.end_object();
        }
        if (!tl.empty()) {
            const auto& last = tl.back();
            w.begin_object();
            w.key("ph").value("i");
            w.key("s").value("t");
            w.key("cat").value("packet");
            w.key("name").value(last.stage);
            w.key("pid").value(kPacketPid);
            w.key("tid").value(uint64_t(last.rpu));
            w.key("ts").value(cycle_us(last.cycle));
            w.end_object();
        }
    }

    if (telem) {
        for (const auto& ep : telem->epochs()) {
            for (const auto& [comp, busy] : ep.busy_frac) {
                w.begin_object();
                w.key("ph").value("C");
                w.key("name").value("util." + comp);
                w.key("pid").value(kUtilPid);
                w.key("ts").value(cycle_us(ep.end_cycle));
                w.key("args").begin_object();
                w.key("busy").value(busy);
                auto it = ep.stall_frac.find(comp);
                w.key("stalled").value(it == ep.stall_frac.end() ? 0.0 : it->second);
                w.end_object();
                w.end_object();
            }
        }
    }

    w.end_array();
    w.end_object();
    return w.str();
}

}  // namespace rosebud::obs
