/// \file
/// Flight recorder — a fixed-capacity, zero-allocation ring of compact
/// typed events for post-mortem debugging (DESIGN.md §15).
///
/// The production story this serves: a run wedges or blows an SLA at cycle
/// 40M, and we need the story *without* re-running under a tracer. The
/// health layer (obs/health.h) feeds the recorder from the per-packet
/// observer and watchdog hooks; on a fault, a watchdog trip, or an explicit
/// dump() the ring is rendered as JSON plus a human-readable timeline.
///
/// Recording is write-one-POD-struct-into-a-preallocated-ring — no strings,
/// no allocation, no branches beyond the wrap check — so it is legal on the
/// hot path under the zero-allocation proof of tests/test_perf_hotpath.cc.
/// Rare events (trips, faults, reconfig phases, SLO violations) may carry a
/// short detail string; those intern into a bounded side table and only
/// those events pay for it.

#ifndef ROSEBUD_OBS_RECORDER_H
#define ROSEBUD_OBS_RECORDER_H

#include <cstdint>
#include <string>
#include <vector>

namespace rosebud::obs {

/// Event types held by the flight recorder. Keep this enum dense — the
/// dump code indexes a name table by it.
enum class FlightEventType : uint8_t {
    kIngress = 0,      ///< packet entered at a MAC/host port (a = port, b = size, c = id)
    kEgress,           ///< packet left (a = port/stage, b = size, c = id, d = latency cycles)
    kDrop,             ///< packet dropped (a = where, b = size, c = id)
    kFault,            ///< component fault observed (a = rpu, note)
    kReconfigPhase,    ///< host PR flow phase (a = rpu, note = phase)
    kWatchdogTrip,     ///< forward-progress watchdog fired (note = summary)
    kSloViolation,     ///< per-epoch SLO check failed (note = verdict)
    kStallWarn,        ///< per-component liveness stall attributed (a = rpu, note)
    kTypeCount,
};

/// Drop sites for FlightEventType::kDrop's `a` argument.
enum class DropSite : uint8_t { kMacRxFifo = 0, kFirmware, kSiteCount };

/// One recorded event: 32 bytes, POD, no ownership.
struct FlightEvent {
    uint64_t cycle = 0;
    uint64_t c = 0;       ///< packet id or wide argument
    uint32_t d = 0;       ///< extra argument (e.g. latency in cycles)
    uint16_t b = 0;       ///< size or small argument
    uint8_t a = 0;        ///< port / rpu / site
    FlightEventType type = FlightEventType::kIngress;
    int32_t note = -1;    ///< index into the note table, -1 = none
};

/// Fixed-capacity event ring. Construction sizes the ring (the only
/// allocation); record() never allocates. When full, the oldest events are
/// overwritten — a flight recorder keeps the *recent* past.
class FlightRecorder {
 public:
    explicit FlightRecorder(size_t capacity = 4096);

    /// Record a hot-path event (no note). Never allocates.
    void record(FlightEventType type, uint64_t cycle, uint8_t a = 0,
                uint16_t b = 0, uint64_t c = 0, uint32_t d = 0) {
        FlightEvent& e = ring_[head_];
        e.cycle = cycle;
        e.c = c;
        e.d = d;
        e.b = b;
        e.a = a;
        e.type = type;
        e.note = -1;
        advance();
    }

    /// Record a rare event carrying a detail string. The note interns into
    /// a bounded table (allocates; never call from the per-packet path).
    void record_note(FlightEventType type, uint64_t cycle, std::string note,
                     uint8_t a = 0, uint16_t b = 0, uint64_t c = 0,
                     uint32_t d = 0);

    /// Events currently held, oldest first.
    size_t size() const { return count_; }
    size_t capacity() const { return ring_.size(); }

    /// Total events ever recorded (so dumps report how much history the
    /// ring has already shed).
    uint64_t recorded() const { return recorded_; }
    uint64_t overwritten() const { return recorded_ - count_; }

    /// Visit held events oldest-first.
    template <typename Fn>
    void for_each(Fn&& fn) const {
        size_t start = (head_ + ring_.size() - count_) % ring_.size();
        for (size_t i = 0; i < count_; ++i)
            fn(ring_[(start + i) % ring_.size()]);
    }

    /// Resolve a FlightEvent::note index ("" for -1 / out of range).
    const std::string& note(int32_t idx) const;

    /// Human-readable name of an event type.
    static const char* type_name(FlightEventType t);

    /// Drop the ring contents (capacity and notes are kept).
    void clear();

    /// Render the held events as a JSON object (schema in
    /// docs/OBSERVABILITY.md, "Production health").
    std::string dump_json() const;

    /// Render the held events as an aligned, human-readable timeline.
    std::string dump_text() const;

 private:
    void advance() {
        ++recorded_;
        head_ = (head_ + 1) % ring_.size();
        if (count_ < ring_.size()) ++count_;
    }

    std::vector<FlightEvent> ring_;
    size_t head_ = 0;   ///< next write position
    size_t count_ = 0;
    uint64_t recorded_ = 0;
    /// Interned detail strings for rare events. Bounded: once full, new
    /// notes all collapse onto a final "<note table full>" entry.
    std::vector<std::string> notes_;
    static constexpr size_t kMaxNotes = 1024;
};

}  // namespace rosebud::obs

#endif  // ROSEBUD_OBS_RECORDER_H
