/// \file
/// Value-change-dump writer — renders telemetry signals (net occupancy,
/// per-net flow state) into the standard VCD format so runs can be
/// inspected in GTKWave exactly like an RTL simulation, answering the
/// paper's observation that "FPGA developers frequently debug their
/// designs by looking at simulation waveforms" without leaving the C++
/// model.
///
/// Dotted signal names ("rpu3.rx_fifo.occ") become nested $scope modules.
/// Time is in nanoseconds ($timescale 1 ns); callers convert cycles with
/// sim::cycles_to_ns (4 ns/cycle at the paper's 250 MHz).

#ifndef ROSEBUD_OBS_VCD_H
#define ROSEBUD_OBS_VCD_H

#include <cstdint>
#include <string>
#include <vector>

namespace rosebud::obs {

class VcdWriter {
 public:
    /// Register a signal; returns its handle. `hier_name` is dotted
    /// ("fabric.voq.r0.s0.occ"); the last component is the var name, the
    /// rest become nested scopes. Width 1 renders as a scalar.
    int add_signal(const std::string& hier_name, unsigned width_bits);

    /// Record a value change at `time_ns`. Changes may be recorded out of
    /// (signal) order; rendering sorts by time and drops no-op repeats.
    void change(uint64_t time_ns, int sig, uint64_t value);

    size_t signal_count() const { return signals_.size(); }
    size_t change_count() const { return changes_.size(); }

    /// Render the complete VCD document (header, scope tree, $dumpvars
    /// with every signal initialized to x, then the change stream).
    std::string str() const;

 private:
    struct Signal {
        std::string path;  ///< full dotted name
        unsigned width;
        std::string id;  ///< base-94 identifier code
    };
    struct Change {
        uint64_t t;
        int sig;
        uint64_t value;
    };

    std::vector<Signal> signals_;
    std::vector<Change> changes_;
};

}  // namespace rosebud::obs

#endif  // ROSEBUD_OBS_VCD_H
