#include "obs/harness.h"

#include <memory>

#include "accel/firewall.h"
#include "accel/nat.h"
#include "accel/pigasus.h"
#include "core/tracer.h"
#include "net/tracegen.h"
#include "obs/perfetto.h"
#include "obs/telemetry.h"

namespace rosebud::obs {

PipelineFixture
build_pipeline(const PipelineSpec& spec) {
    PipelineFixture fx;

    SystemConfig scfg;
    scfg.rpu_count = spec.rpu_count;
    scfg.lb_policy = spec.policy;
    // The HW-reorder IDS firmware expects the inline reassembler in the LB.
    scfg.hw_reassembler = spec.pipeline == oracle::Pipeline::kPigasusHwReorder;
    fx.sys = std::make_unique<System>(scfg);
    System& sys = *fx.sys;

    sim::Rng rng(spec.seed);
    accel::NatEngine::Params nat_params{};

    switch (spec.pipeline) {
    case oracle::Pipeline::kForwarder:
        fx.firmware = fwlib::forwarder();
        break;
    case oracle::Pipeline::kFirewall:
        fx.blacklist = std::make_unique<net::Blacklist>(
            net::Blacklist::synthesize(spec.blacklist_count, rng));
        sys.attach_accelerators(
            [&] { return std::make_unique<accel::FirewallMatcher>(*fx.blacklist); });
        fx.firmware = fwlib::firewall();
        fx.gen_blacklist = fx.blacklist.get();
        break;
    case oracle::Pipeline::kPigasusHwReorder:
    case oracle::Pipeline::kPigasusSwReorder:
        fx.rules = std::make_unique<net::IdsRuleSet>(
            net::IdsRuleSet::synthesize(spec.rule_count, rng));
        sys.attach_accelerators(
            [&] { return std::make_unique<accel::PigasusMatcher>(*fx.rules); });
        fx.firmware = spec.pipeline == oracle::Pipeline::kPigasusHwReorder
                          ? fwlib::pigasus_hw_reorder()
                          : fwlib::pigasus_sw_reorder();
        fx.gen_rules = fx.rules.get();
        break;
    case oracle::Pipeline::kNat:
        fx.blacklist = std::make_unique<net::Blacklist>(
            net::Blacklist::synthesize(spec.blacklist_count, rng));
        sys.attach_accelerators(
            [&] { return std::make_unique<accel::NatEngine>(nat_params); });
        fx.firmware = fwlib::nat(fwlib::SlotParams{16, 16 * 1024},
                                 spec.policy == lb::Policy::kHash);
        fx.gen_blacklist = fx.blacklist.get();
        break;
    }

    sys.host().load_firmware_all(fx.firmware.image, fx.firmware.entry);
    sys.host().boot_all();
    return fx;
}

void
add_traffic(PipelineFixture& fx, const TrafficParams& traffic) {
    net::TrafficSpec tspec;
    tspec.packet_size = traffic.packet_size;
    tspec.attack_fraction = traffic.attack_fraction;
    tspec.flow_count = traffic.flow_count;
    tspec.udp_fraction = traffic.udp_fraction;
    tspec.seed = traffic.seed * 2654435761u + 1;
    auto gen = std::make_shared<net::TraceGenerator>(tspec, fx.gen_rules,
                                                     fx.gen_blacklist);

    dist::TrafficSource::Config src;
    src.port = 0;
    src.load = traffic.load;
    src.max_packets = traffic.max_packets;
    fx.system().add_source(src, [gen] { return gen->next(); });
}

ProfileResult
run_profile(const ProfileSpec& spec) {
    PipelineSpec pspec;
    pspec.pipeline = spec.pipeline;
    pspec.rpu_count = spec.rpu_count;
    pspec.policy = spec.policy;
    pspec.seed = spec.seed;
    pspec.rule_count = spec.rule_count;
    pspec.blacklist_count = spec.blacklist_count;
    PipelineFixture fx = build_pipeline(pspec);
    System& sys = fx.system();

    // The full observability stack, attached before the first cycle so the
    // per-net cycle classification covers the entire run.
    Telemetry::Config tcfg;
    tcfg.epoch_cycles = spec.epoch_cycles;
    tcfg.capture_vcd = spec.capture_vcd;
    tcfg.watch_counters = {"lb.assign_stall", "fabric.voq_stall"};
    Telemetry telem(tcfg);
    telem.attach(sys);

    PacketTracer tracer;
    tracer.set_max_packets(spec.trace_max_packets);
    tracer.attach(sys);

    for (unsigned i = 0; i < sys.rpu_count(); ++i) sys.rpu(i).core().set_profile(true);

    TrafficParams traffic;
    traffic.packet_size = spec.packet_size;
    traffic.load = spec.load;
    traffic.max_packets = spec.max_packets;
    traffic.attack_fraction = spec.attack_fraction;
    traffic.udp_fraction = spec.udp_fraction;
    traffic.flow_count = spec.flow_count;
    traffic.seed = spec.seed;
    add_traffic(fx, traffic);

    sys.run_cycles(spec.run_cycles);

    ProfileResult res;
    res.cycles = telem.cycles_observed();
    res.stalls = build_stall_report(telem);
    res.cores = collect_profiles(sys);
    res.aggregate = aggregate_profiles(res.cores);
    res.firmware = fx.firmware;
    res.trace = trace_json(tracer, &telem, spec.trace_max_packets);
    if (spec.capture_vcd) res.vcd = telem.vcd().str();
    for (unsigned p = 0; p < 2; ++p) {
        res.rx_frames += sys.sink(p).frames();
        res.rx_bytes += sys.sink(p).bytes();
    }
    res.stats_csv = sys.stats().to_csv();
    telem.detach();
    return res;
}

}  // namespace rosebud::obs
