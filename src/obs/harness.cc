#include "obs/harness.h"

#include <memory>

#include "accel/firewall.h"
#include "accel/nat.h"
#include "accel/pigasus.h"
#include "core/tracer.h"
#include "net/tracegen.h"
#include "obs/perfetto.h"
#include "obs/telemetry.h"

namespace rosebud::obs {

ProfileResult
run_profile(const ProfileSpec& spec) {
    SystemConfig scfg;
    scfg.rpu_count = spec.rpu_count;
    scfg.lb_policy = spec.policy;
    // The HW-reorder IDS firmware expects the inline reassembler in the LB.
    scfg.hw_reassembler = spec.pipeline == oracle::Pipeline::kPigasusHwReorder;
    System sys(scfg);

    sim::Rng rng(spec.seed);
    net::IdsRuleSet rules;
    net::Blacklist blacklist;
    accel::NatEngine::Params nat_params{};
    const net::IdsRuleSet* gen_rules = nullptr;
    const net::Blacklist* gen_blacklist = nullptr;

    fwlib::Program fw;
    switch (spec.pipeline) {
    case oracle::Pipeline::kForwarder:
        fw = fwlib::forwarder();
        break;
    case oracle::Pipeline::kFirewall:
        blacklist = net::Blacklist::synthesize(spec.blacklist_count, rng);
        sys.attach_accelerators(
            [&] { return std::make_unique<accel::FirewallMatcher>(blacklist); });
        fw = fwlib::firewall();
        gen_blacklist = &blacklist;
        break;
    case oracle::Pipeline::kPigasusHwReorder:
    case oracle::Pipeline::kPigasusSwReorder:
        rules = net::IdsRuleSet::synthesize(spec.rule_count, rng);
        sys.attach_accelerators(
            [&] { return std::make_unique<accel::PigasusMatcher>(rules); });
        fw = spec.pipeline == oracle::Pipeline::kPigasusHwReorder
                 ? fwlib::pigasus_hw_reorder()
                 : fwlib::pigasus_sw_reorder();
        gen_rules = &rules;
        break;
    case oracle::Pipeline::kNat:
        blacklist = net::Blacklist::synthesize(spec.blacklist_count, rng);
        sys.attach_accelerators(
            [&] { return std::make_unique<accel::NatEngine>(nat_params); });
        fw = fwlib::nat(fwlib::SlotParams{16, 16 * 1024},
                        spec.policy == lb::Policy::kHash);
        gen_blacklist = &blacklist;
        break;
    }

    sys.host().load_firmware_all(fw.image, fw.entry);
    sys.host().boot_all();

    // The full observability stack, attached before the first cycle so the
    // per-net cycle classification covers the entire run.
    Telemetry::Config tcfg;
    tcfg.epoch_cycles = spec.epoch_cycles;
    tcfg.capture_vcd = spec.capture_vcd;
    tcfg.watch_counters = {"lb.assign_stall", "fabric.voq_stall"};
    Telemetry telem(tcfg);
    telem.attach(sys);

    PacketTracer tracer;
    tracer.set_max_packets(spec.trace_max_packets);
    tracer.attach(sys);

    for (unsigned i = 0; i < sys.rpu_count(); ++i) sys.rpu(i).core().set_profile(true);

    net::TrafficSpec tspec;
    tspec.packet_size = spec.packet_size;
    tspec.attack_fraction = spec.attack_fraction;
    tspec.flow_count = spec.flow_count;
    tspec.udp_fraction = spec.udp_fraction;
    tspec.seed = spec.seed * 2654435761u + 1;
    auto gen = std::make_shared<net::TraceGenerator>(tspec, gen_rules, gen_blacklist);

    dist::TrafficSource::Config src;
    src.port = 0;
    src.load = spec.load;
    src.max_packets = spec.max_packets;
    sys.add_source(src, [gen] { return gen->next(); });

    sys.run_cycles(spec.run_cycles);

    ProfileResult res;
    res.cycles = telem.cycles_observed();
    res.stalls = build_stall_report(telem);
    res.cores = collect_profiles(sys);
    res.aggregate = aggregate_profiles(res.cores);
    res.firmware = fw;
    res.trace = trace_json(tracer, &telem, spec.trace_max_packets);
    if (spec.capture_vcd) res.vcd = telem.vcd().str();
    for (unsigned p = 0; p < 2; ++p) {
        res.rx_frames += sys.sink(p).frames();
        res.rx_bytes += sys.sink(p).bytes();
    }
    res.stats_csv = sys.stats().to_csv();
    telem.detach();
    return res;
}

}  // namespace rosebud::obs
