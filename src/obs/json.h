/// \file
/// Minimal JSON emitter shared by the observability exporters (Perfetto
/// traces, stall reports, bench result files). Not a parser — the
/// simulator only ever *produces* JSON for external tooling.

#ifndef ROSEBUD_OBS_JSON_H
#define ROSEBUD_OBS_JSON_H

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace rosebud::obs {

/// Escape a string for inclusion inside JSON double quotes.
inline std::string
json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (uint8_t(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/// Streaming writer with automatic comma placement. Usage:
///
///   JsonWriter w;
///   w.begin_object();
///   w.key("cycles").value(uint64_t(100));
///   w.key("links").begin_array();
///   ... w.end_array();
///   w.end_object();
///   std::string text = w.str();
class JsonWriter {
 public:
    JsonWriter& begin_object() {
        sep();
        os_ << '{';
        first_.push_back(true);
        return *this;
    }
    JsonWriter& end_object() {
        os_ << '}';
        first_.pop_back();
        return *this;
    }
    JsonWriter& begin_array() {
        sep();
        os_ << '[';
        first_.push_back(true);
        return *this;
    }
    JsonWriter& end_array() {
        os_ << ']';
        first_.pop_back();
        return *this;
    }
    JsonWriter& key(const std::string& k) {
        sep();
        os_ << '"' << json_escape(k) << "\":";
        pending_value_ = true;
        return *this;
    }
    JsonWriter& value(const std::string& v) {
        sep();
        os_ << '"' << json_escape(v) << '"';
        return *this;
    }
    JsonWriter& value(const char* v) { return value(std::string(v)); }
    JsonWriter& value(uint64_t v) {
        sep();
        os_ << v;
        return *this;
    }
    JsonWriter& value(int v) { return value(uint64_t(v)); }
    JsonWriter& value(double v) {
        sep();
        // Fixed notation keeps Perfetto timestamps exact and parseable.
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.6f", v);
        os_ << buf;
        return *this;
    }
    JsonWriter& value(bool v) {
        sep();
        os_ << (v ? "true" : "false");
        return *this;
    }

    /// Splice pre-rendered JSON (e.g. another writer's output) in value
    /// position. The caller is responsible for its validity.
    JsonWriter& raw(const std::string& json) {
        sep();
        os_ << json;
        return *this;
    }

    std::string str() const { return os_.str(); }

 private:
    // Emit "," before any element that is not the first in its container;
    // a value directly after key() never takes a comma.
    void sep() {
        if (pending_value_) {
            pending_value_ = false;
            return;
        }
        if (!first_.empty()) {
            if (!first_.back()) os_ << ',';
            first_.back() = false;
        }
    }

    std::ostringstream os_;
    std::vector<bool> first_;
    bool pending_value_ = false;
};

}  // namespace rosebud::obs

#endif  // ROSEBUD_OBS_JSON_H
