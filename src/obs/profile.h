/// \file
/// Firmware PC-sampling profiler reporting — collects the per-PC cycle
/// histograms kept by rv::Core (see rv/core.h, set_profile) and renders
/// them `perf annotate`-style over the disassembled firmware image: every
/// instruction line carries its cycle count and share, hot lines are
/// flagged. Works on single cores and on the aggregate across all RPUs
/// running the same image.

#ifndef ROSEBUD_OBS_PROFILE_H
#define ROSEBUD_OBS_PROFILE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "verify/verifier.h"

namespace rosebud {
class System;
namespace rv {
class Core;
}
}  // namespace rosebud

namespace rosebud::obs {

/// One core's (or an aggregate's) PC-cycle histogram.
struct CoreProfile {
    std::string name;
    uint64_t cycles = 0;  ///< == sum of pc_cycles values
    uint64_t instret = 0;  ///< retired instructions (for the WCET cross-check)
    bool halted = false;   ///< core ran to completion (ebreak/stop)
    std::map<uint32_t, uint64_t> pc_cycles;
};

/// Snapshot one core's histogram (empty if profiling was never enabled).
CoreProfile collect_profile(const rv::Core& core);

/// Snapshot every RPU core in the system.
std::vector<CoreProfile> collect_profiles(System& sys);

/// Sum per-core histograms into one profile named `name` (the cores run
/// identical firmware, so PCs are directly comparable).
CoreProfile aggregate_profiles(const std::vector<CoreProfile>& profiles,
                               const std::string& name = "all-rpus");

/// Top-N hottest PCs with their cycle share.
struct HotSpot {
    uint32_t pc = 0;
    uint64_t cycles = 0;
    double frac = 0.0;
};
std::vector<HotSpot> hot_spots(const CoreProfile& profile, size_t top_n = 8);

/// `perf annotate`-style listing: each image word disassembled with its
/// cycle count and share; lines at or above `hot_frac` of total cycles are
/// marked with '*'. PCs outside the image (e.g. trap handlers placed
/// elsewhere) are appended as raw address lines.
std::string annotate(const std::vector<uint32_t>& image, const CoreProfile& profile,
                     uint32_t base = 0, double hot_frac = 0.10);

/// JSON rendering of a profile (pc -> cycles, plus totals).
std::string profile_json(const CoreProfile& profile);

/// One core's verdict from the static-vs-observed WCET cross-check.
struct WcetCrossCheck {
    std::string core;
    uint64_t observed = 0;  ///< retired instructions the core executed
    uint64_t bound = 0;     ///< certified static bound
    bool applicable = false;  ///< core ran to completion and the bound is finite
    bool ok = true;           ///< applicable implies observed <= bound
};

/// Validate the line-rate certificate against observed execution (the
/// FireSim-style calibration loop): a core that ran to completion must have
/// retired no more instructions than the certified single-activation WCET
/// bound. Only applicable to halted cores — a live service loop activates
/// per packet and legitimately exceeds any single-activation bound. A
/// failed check means the certifier is *unsound* for this image; the fuzz
/// campaign enforces the same oracle over random programs.
std::vector<WcetCrossCheck> wcet_cross_check(const std::vector<CoreProfile>& profiles,
                                             const verify::Certificate& cert);

}  // namespace rosebud::obs

#endif  // ROSEBUD_OBS_PROFILE_H
