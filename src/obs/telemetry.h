/// \file
/// Telemetry aggregator — the concrete sim::TelemetrySink.
///
/// Attached to a System, it observes every instrumented net (sim::Fifo
/// primitives plus the abstract fabric/LB links) and classifies each net's
/// every cycle into exactly one of four states:
///
///   stalled  — a producer tried to push and was refused (backpressure)
///   busy     — data moved (a push or a pop landed) and nothing blocked
///   starved  — a consumer polled an empty net and nothing moved
///   idle     — no activity at all
///
/// Priority is stalled > busy > starved > idle, evaluated once per cycle
/// from monotonic per-cycle flags, so the classification is independent of
/// intra-cycle event order (and therefore of kernel tick-order shuffling).
/// For every net, busy + stalled + starved + idle == cycles_observed():
/// nets that first appear mid-run are backfilled with idle cycles.
///
/// On top of the per-net totals the aggregator keeps:
///  * epoch time series — every `epoch_cycles` it rolls up per-component
///    busy/stall fractions and deltas of watched sim::Stats counters;
///  * an optional VCD capture — per-net occupancy and 2-bit flow state
///    signals, viewable in GTKWave (see obs/vcd.h).
///
/// The aggregator never creates sim::Stats counters, so attaching it
/// leaves System::state_fingerprint() bit-identical.

#ifndef ROSEBUD_OBS_TELEMETRY_H
#define ROSEBUD_OBS_TELEMETRY_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/vcd.h"
#include "sim/telemetry.h"

namespace rosebud {
class System;
namespace sim {
class Kernel;
class Stats;
}  // namespace sim
}  // namespace rosebud

namespace rosebud::obs {

/// Per-net flow state encoded into the 2-bit VCD `state` signal.
enum class NetState : uint8_t { kIdle = 0, kBusy = 1, kStalled = 2, kStarved = 3 };

class Telemetry : public sim::TelemetrySink {
 public:
    struct Config {
        /// Epoch length for the utilization time series (0 = no epochs).
        uint64_t epoch_cycles = 2048;
        /// Capture per-net occupancy/state waveforms (costs memory
        /// proportional to activity; off for pure stall attribution).
        bool capture_vcd = false;
        /// sim::Stats counters sampled (as per-epoch deltas) into the
        /// epoch series.
        std::vector<std::string> watch_counters;
        /// Bound on retained epochs (0 = unbounded). When the series would
        /// exceed it, adjacent epochs merge pairwise — fractions average
        /// weighted by span, counter deltas sum — so an arbitrarily long
        /// run keeps a fixed-size series at progressively coarser (but
        /// conserved) resolution.
        size_t max_epochs = 0;
    };

    /// Lifetime totals for one net.
    struct NetStats {
        uint64_t busy = 0;
        uint64_t stalled = 0;
        uint64_t starved = 0;
        uint64_t idle = 0;

        uint64_t pushes = 0;       ///< accepted pushes
        uint64_t pops = 0;
        uint64_t blocked = 0;      ///< refused pushes (may exceed stalled)
        uint64_t polls_empty = 0;  ///< empty-poll events

        size_t occ = 0;       ///< latest committed occupancy
        size_t peak_occ = 0;
        size_t capacity = 0;  ///< declared/observed capacity (0 = eventless link)

        uint64_t cycles() const { return busy + stalled + starved + idle; }

        // Per-cycle flags, cleared by end_cycle().
        bool f_moved = false;
        bool f_blocked = false;
        bool f_polled = false;

        // Current-epoch accumulators.
        uint64_t e_busy = 0;
        uint64_t e_stalled = 0;

        // Waveform state.
        int sig_occ = -1;
        int sig_state = -1;
        unsigned last_state = 255;   ///< 255 = never emitted
        uint64_t last_occ = ~0ull;
    };

    /// One closed epoch of the utilization time series.
    struct Epoch {
        uint64_t end_cycle = 0;  ///< cycles_observed() when the epoch closed
        /// Base epochs folded into this entry (1 until Config::max_epochs
        /// coarsening kicks in; an odd-length series merges its tail into
        /// non-power-of-two spans, but the spans always sum to the number
        /// of base epochs closed).
        uint64_t span = 1;
        /// Per-component fraction of net-cycles spent busy / stalled
        /// (averaged over the component's instrumented nets).
        std::map<std::string, double> busy_frac;
        std::map<std::string, double> stall_frac;
        /// Watched counter deltas over this epoch.
        std::map<std::string, uint64_t> counter_delta;
    };

    Telemetry();
    explicit Telemetry(Config cfg);
    ~Telemetry() override;

    /// Start observing: registers with the System's kernel (replacing any
    /// previous sink) and pre-seeds one NetStats per declared net so fully
    /// idle nets still appear in reports with exact idle counts. The
    /// Telemetry must outlive the system's remaining simulation or call
    /// detach() first.
    void attach(System& sys);
    void detach();

    // sim::TelemetrySink interface.
    void net_event(const std::string& net, NetEvent ev) override;
    void net_occupancy(const std::string& net, size_t occupancy, size_t capacity) override;
    void end_cycle(uint64_t completed) override;

    /// Cycles classified so far (== every net's four-bucket sum).
    uint64_t cycles_observed() const { return cycles_observed_; }

    const std::map<std::string, NetStats>& nets() const { return nets_; }
    const std::vector<Epoch>& epochs() const { return epochs_; }

    /// Waveform capture (empty unless Config::capture_vcd).
    const VcdWriter& vcd() const { return vcd_; }

 private:
    NetStats& net(const std::string& name);
    void close_epoch();
    void coarsen_epochs();
    void capture_net(const std::string& name, NetStats& ns, NetState state,
                     uint64_t completed_cycle);

    Config cfg_;
    sim::Kernel* kernel_ = nullptr;
    sim::Stats* stats_ = nullptr;
    std::map<std::string, NetStats> nets_;
    std::vector<Epoch> epochs_;
    std::map<std::string, uint64_t> counter_prev_;
    uint64_t cycles_observed_ = 0;
    VcdWriter vcd_;
};

}  // namespace rosebud::obs

#endif  // ROSEBUD_OBS_TELEMETRY_H
