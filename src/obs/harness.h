/// \file
/// One-call profiling harness: build a full System for a named pipeline
/// (same setup path as the oracle differential harness), attach the whole
/// observability stack — telemetry/stall attribution, packet tracing,
/// firmware PC sampling, optional VCD capture — run seeded traffic, and
/// return every artifact. This is the engine behind `rosebud_cli profile`.

#ifndef ROSEBUD_OBS_HARNESS_H
#define ROSEBUD_OBS_HARNESS_H

#include <memory>
#include <string>
#include <vector>

#include "firmware/programs.h"
#include "oracle/harness.h"
#include "obs/profile.h"
#include "obs/report.h"

namespace rosebud::obs {

/// The pipeline-construction subset shared by run_profile and run_health:
/// which middlebox, how big, how the LB spreads flows, how the synthetic
/// rule tables are seeded.
struct PipelineSpec {
    oracle::Pipeline pipeline = oracle::Pipeline::kForwarder;
    unsigned rpu_count = 8;
    lb::Policy policy = lb::Policy::kRoundRobin;
    uint64_t seed = 1;
    size_t rule_count = 24;
    size_t blacklist_count = 48;
};

/// A built-and-booted System plus the synthesized tables the traffic
/// generator needs. The fixture owns the tables behind stable pointers
/// (TraceGenerator keeps raw pointers into them), so it is safe to move.
struct PipelineFixture {
    std::unique_ptr<System> sys;
    fwlib::Program firmware;
    std::unique_ptr<net::IdsRuleSet> rules;      ///< null unless IDS pipeline
    std::unique_ptr<net::Blacklist> blacklist;   ///< null unless firewall/NAT
    const net::IdsRuleSet* gen_rules = nullptr;
    const net::Blacklist* gen_blacklist = nullptr;

    System& system() { return *sys; }
};

/// Traffic-shape knobs for add_traffic().
struct TrafficParams {
    uint32_t packet_size = 256;
    double load = 0.7;
    uint64_t max_packets = 0;  ///< 0 = unlimited
    double attack_fraction = 0.1;
    double udp_fraction = 0.2;
    size_t flow_count = 64;
    uint64_t seed = 1;
};

/// Build the System for a named pipeline (accelerators attached, firmware
/// loaded and booted). Fatals on unknown configurations.
PipelineFixture build_pipeline(const PipelineSpec& spec);

/// Wire a seeded TraceGenerator-backed TrafficSource into port 0.
void add_traffic(PipelineFixture& fx, const TrafficParams& traffic);

struct ProfileSpec {
    oracle::Pipeline pipeline = oracle::Pipeline::kForwarder;
    unsigned rpu_count = 8;
    lb::Policy policy = lb::Policy::kRoundRobin;
    uint64_t seed = 1;

    // Traffic shape (unlimited by default: profiling wants steady state).
    uint32_t packet_size = 256;
    double load = 0.7;
    uint64_t max_packets = 0;  ///< 0 = unlimited
    double attack_fraction = 0.1;
    double udp_fraction = 0.2;
    size_t flow_count = 64;
    size_t rule_count = 24;
    size_t blacklist_count = 48;

    sim::Cycle run_cycles = 50'000;

    // Observability knobs.
    uint64_t epoch_cycles = 2048;
    bool capture_vcd = true;
    size_t trace_max_packets = 4096;
};

struct ProfileResult {
    StallReport stalls;
    std::vector<CoreProfile> cores;  ///< one per RPU
    CoreProfile aggregate;           ///< summed across RPUs
    fwlib::Program firmware;         ///< the image the annotation refers to
    std::string vcd;                 ///< "" unless ProfileSpec::capture_vcd
    std::string trace;               ///< Perfetto/Chrome trace JSON
    uint64_t cycles = 0;
    uint64_t rx_frames = 0;  ///< frames delivered to the tester sinks
    uint64_t rx_bytes = 0;
    std::string stats_csv;   ///< full sim::Stats dump (counters + samplers)
};

/// Build, instrument, run, collect. Fatals on unknown configurations
/// (same rules as oracle::run_differential).
ProfileResult run_profile(const ProfileSpec& spec);

}  // namespace rosebud::obs

#endif  // ROSEBUD_OBS_HARNESS_H
