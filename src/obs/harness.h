/// \file
/// One-call profiling harness: build a full System for a named pipeline
/// (same setup path as the oracle differential harness), attach the whole
/// observability stack — telemetry/stall attribution, packet tracing,
/// firmware PC sampling, optional VCD capture — run seeded traffic, and
/// return every artifact. This is the engine behind `rosebud_cli profile`.

#ifndef ROSEBUD_OBS_HARNESS_H
#define ROSEBUD_OBS_HARNESS_H

#include <string>
#include <vector>

#include "firmware/programs.h"
#include "oracle/harness.h"
#include "obs/profile.h"
#include "obs/report.h"

namespace rosebud::obs {

struct ProfileSpec {
    oracle::Pipeline pipeline = oracle::Pipeline::kForwarder;
    unsigned rpu_count = 8;
    lb::Policy policy = lb::Policy::kRoundRobin;
    uint64_t seed = 1;

    // Traffic shape (unlimited by default: profiling wants steady state).
    uint32_t packet_size = 256;
    double load = 0.7;
    uint64_t max_packets = 0;  ///< 0 = unlimited
    double attack_fraction = 0.1;
    double udp_fraction = 0.2;
    size_t flow_count = 64;
    size_t rule_count = 24;
    size_t blacklist_count = 48;

    sim::Cycle run_cycles = 50'000;

    // Observability knobs.
    uint64_t epoch_cycles = 2048;
    bool capture_vcd = true;
    size_t trace_max_packets = 4096;
};

struct ProfileResult {
    StallReport stalls;
    std::vector<CoreProfile> cores;  ///< one per RPU
    CoreProfile aggregate;           ///< summed across RPUs
    fwlib::Program firmware;         ///< the image the annotation refers to
    std::string vcd;                 ///< "" unless ProfileSpec::capture_vcd
    std::string trace;               ///< Perfetto/Chrome trace JSON
    uint64_t cycles = 0;
    uint64_t rx_frames = 0;  ///< frames delivered to the tester sinks
    uint64_t rx_bytes = 0;
    std::string stats_csv;   ///< full sim::Stats dump (counters + samplers)
};

/// Build, instrument, run, collect. Fatals on unknown configurations
/// (same rules as oracle::run_differential).
ProfileResult run_profile(const ProfileSpec& spec);

}  // namespace rosebud::obs

#endif  // ROSEBUD_OBS_HARNESS_H
