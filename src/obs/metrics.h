/// \file
/// Metrics registry and HDR-style histograms — the export surface of the
/// production health layer (DESIGN.md §15).
///
/// Two pieces:
///  * Histogram — a log-bucketed value distribution with fixed storage.
///    Recording is a few shifts and one array increment (no allocation,
///    ever), which is what lets the health layer account per-packet latency
///    on production sweeps without breaking the zero-allocation hot-path
///    proof. Relative error is bounded by the sub-bucket resolution
///    (2^-kSubBits ≈ 12.5%); values below 2^kSubBits are exact.
///  * MetricsRegistry — named counters/gauges/histograms registered by the
///    subsystems (fabric/LB/RPU/host counters arrive via the sim::Stats
///    mirror; the health layer adds its own gauges and histograms), with
///    snapshot export as Prometheus text exposition format and JSON.
///
/// Registration happens at attach/elaboration time (cold path, may
/// allocate); export is host-phase only. Nothing here touches sim::Stats
/// *creation* — the registry only reads — so attaching never perturbs
/// System::state_fingerprint.

#ifndef ROSEBUD_OBS_METRICS_H
#define ROSEBUD_OBS_METRICS_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace rosebud::sim {
class Kernel;
class Stats;
}  // namespace rosebud::sim

namespace rosebud::obs {

/// Log-bucketed histogram with fixed, allocation-free recording.
///
/// Layout: values < 2^kSubBits land in exact unit buckets; above that each
/// power-of-two octave is split into 2^kSubBits sub-buckets keyed by the
/// bits just below the leading one (the classic HDR scheme). Percentiles
/// report the *upper bound* of the bucket containing the target rank, so a
/// reported p99 never understates the true p99.
class Histogram {
 public:
    static constexpr unsigned kSubBits = 3;
    static constexpr unsigned kSubBuckets = 1u << kSubBits;
    static constexpr unsigned kOctaves = 64 - kSubBits + 1;
    static constexpr unsigned kBuckets = kOctaves << kSubBits;

    /// Record `n` occurrences of value `v`. Never allocates.
    void record(uint64_t v, uint64_t n = 1) {
        buckets_[bucket_index(v)] += n;
        count_ += n;
        sum_ += v * n;
        if (count_ == n || v < min_) min_ = v;
        if (v > max_) max_ = v;
    }

    uint64_t count() const { return count_; }
    uint64_t sum() const { return sum_; }
    uint64_t min() const { return count_ ? min_ : 0; }
    uint64_t max() const { return max_; }
    double mean() const { return count_ ? double(sum_) / double(count_) : 0.0; }

    /// Upper bound of the bucket holding the p-quantile (p clamped to
    /// [0,1]); 0 on an empty histogram.
    uint64_t percentile(double p) const;

    /// Zero every bucket and the summary stats.
    void clear();

    /// Add another histogram's buckets into this one (same layout).
    void merge(const Histogram& o);

    /// Visit every non-empty bucket in value order as (upper_bound, count).
    template <typename Fn>
    void for_each_nonzero(Fn&& fn) const {
        for (unsigned i = 0; i < kBuckets; ++i)
            if (buckets_[i]) fn(bucket_upper(i), buckets_[i]);
    }

    /// Index of the bucket containing `v`.
    static unsigned bucket_index(uint64_t v) {
        if (v < kSubBuckets) return unsigned(v);
        unsigned msb = 63u - unsigned(__builtin_clzll(v));
        unsigned sub = unsigned(v >> (msb - kSubBits)) & (kSubBuckets - 1);
        return ((msb - kSubBits + 1) << kSubBits) | sub;
    }

    /// Largest value mapping to bucket `i`.
    static uint64_t bucket_upper(unsigned i) {
        uint64_t octave = i >> kSubBits;
        uint64_t sub = i & (kSubBuckets - 1);
        if (octave == 0) return sub;
        return ((kSubBuckets + sub + 1) << (octave - 1)) - 1;
    }

 private:
    uint64_t buckets_[kBuckets] = {};
    uint64_t count_ = 0;
    uint64_t sum_ = 0;
    uint64_t min_ = 0;
    uint64_t max_ = 0;
};

/// Snapshot export format (mirrored by host::MetricsFormat so the host
/// layer can expose the query without depending on obs).
enum class MetricsFormat : uint8_t { kPrometheus, kJson };

/// Sanitize a dotted/system name into a legal Prometheus metric name
/// ([a-zA-Z_:][a-zA-Z0-9_:]*): every illegal character becomes '_'.
std::string prom_name(const std::string& s);

/// Escape a Prometheus label value (backslash, quote, newline).
std::string prom_label_value(const std::string& s);

/// Named registry of exportable metrics. Not thread safe; registration and
/// export are host-phase operations.
class MetricsRegistry {
 public:
    using IntGetter = std::function<uint64_t()>;

    /// Register a monotonically increasing counter. `labels` is the inner
    /// text of the label set (e.g. `cls="tcp"`), already escaped via
    /// prom_label_value; empty for none. Series of one family (same name)
    /// should be registered consecutively.
    void add_counter(std::string name, std::string help, std::string labels,
                     IntGetter fn);

    /// Register a point-in-time gauge.
    void add_gauge(std::string name, std::string help, std::string labels,
                   IntGetter fn);

    /// Register a histogram. `scale` converts recorded units to the
    /// exported unit (e.g. cycles -> microseconds) in le/sum values.
    void add_histogram(std::string name, std::string help, std::string labels,
                       const Histogram* h, double scale = 1.0);

    /// Mirror every counter and sampler of the stats registry on export
    /// (the fabric/LB/RPU/host counters of paper §4.3), as
    /// rosebud_stat_total{name="..."} / rosebud_stat_sampler_*{name="..."}.
    void set_stats(const sim::Stats* stats) { stats_ = stats; }

    /// Export the kernel's occupancy probes as per-net backlog gauges
    /// (rosebud_net_occupancy / rosebud_net_capacity) and the active-set /
    /// cycle gauges.
    void set_kernel(const sim::Kernel* kernel) { kernel_ = kernel; }

    /// Point-in-time snapshot in the requested format.
    std::string snapshot(MetricsFormat fmt) const;

    /// Prometheus text exposition format (version 0.0.4).
    std::string prometheus_text() const;

    /// The same snapshot as a JSON object.
    std::string json() const;

    size_t size() const { return entries_.size(); }

 private:
    enum class Kind : uint8_t { kCounter, kGauge, kHistogram };

    struct Entry {
        Kind kind;
        std::string name;    ///< already a legal Prometheus name
        std::string help;
        std::string labels;  ///< inner label text, may be empty
        IntGetter fn;        ///< counters/gauges
        const Histogram* hist = nullptr;
        double scale = 1.0;
    };

    std::vector<Entry> entries_;
    const sim::Stats* stats_ = nullptr;
    const sim::Kernel* kernel_ = nullptr;
};

}  // namespace rosebud::obs

#endif  // ROSEBUD_OBS_METRICS_H
