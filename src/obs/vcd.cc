#include "obs/vcd.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace rosebud::obs {

namespace {

// VCD identifier codes: base-94 strings over the printable ASCII range
// '!' (33) .. '~' (126), shortest-first ("!", "\"", ... "!!", "!\"" ...).
std::string
id_code(size_t index) {
    std::string id;
    do {
        id += char('!' + index % 94);
        index /= 94;
    } while (index-- > 0);
    return id;
}

// Scope/var names land verbatim in "$scope module <name> $end" and
// "$var wire <w> <id> <name> $end" lines, where whitespace, '$', or
// brackets would corrupt the declaration stream (net names are
// user/test-controlled strings, not a trusted vocabulary). Map every
// character outside [A-Za-z0-9_] to '_' and keep the first character
// non-numeric; empty segments become "_".
std::string
sanitize_name(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 1);
    for (char c : s) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_';
        out += ok ? c : '_';
    }
    if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(out.begin(), '_');
    return out;
}

std::vector<std::string>
split_dots(const std::string& s) {
    std::vector<std::string> parts;
    size_t start = 0;
    for (size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == '.') {
            parts.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return parts;
}

// Nested scope node: child scopes by name plus the vars declared directly
// inside this scope.
struct ScopeNode {
    std::map<std::string, ScopeNode> children;
    std::vector<size_t> vars;  ///< indices into signals_
};

void
emit_scope(std::ostringstream& os, const ScopeNode& node,
           const std::vector<std::pair<std::string, unsigned>>& vars,
           const std::vector<std::string>& ids, int depth) {
    std::string ind(size_t(depth) * 2, ' ');
    for (size_t v : node.vars) {
        os << ind << "$var wire " << vars[v].second << " " << ids[v] << " "
           << vars[v].first;
        if (vars[v].second > 1) os << " [" << (vars[v].second - 1) << ":0]";
        os << " $end\n";
    }
    for (const auto& [name, child] : node.children) {
        os << ind << "$scope module " << name << " $end\n";
        emit_scope(os, child, vars, ids, depth + 1);
        os << ind << "$upscope $end\n";
    }
}

void
emit_value(std::ostringstream& os, unsigned width, uint64_t value,
           const std::string& id) {
    if (width == 1) {
        os << (value ? '1' : '0') << id << "\n";
        return;
    }
    std::string bits;
    for (unsigned b = width; b-- > 0;) bits += char('0' + ((value >> b) & 1));
    os << 'b' << bits << ' ' << id << "\n";
}

}  // namespace

int
VcdWriter::add_signal(const std::string& hier_name, unsigned width_bits) {
    Signal s;
    s.path = hier_name;
    s.width = width_bits == 0 ? 1 : width_bits;
    s.id = id_code(signals_.size());
    signals_.push_back(std::move(s));
    return int(signals_.size()) - 1;
}

void
VcdWriter::change(uint64_t time_ns, int sig, uint64_t value) {
    if (sig < 0 || size_t(sig) >= signals_.size()) return;
    changes_.push_back(Change{time_ns, sig, value});
}

std::string
VcdWriter::str() const {
    std::ostringstream os;
    os << "$date\n  rosebud simulation\n$end\n";
    os << "$version\n  rosebud telemetry vcd writer\n$end\n";
    os << "$timescale 1 ns $end\n";

    // Scope tree: "a.b.sig" => module a / module b / var sig.
    ScopeNode root;
    std::vector<std::pair<std::string, unsigned>> vars;  // leaf name, width
    std::vector<std::string> ids;
    for (size_t i = 0; i < signals_.size(); ++i) {
        auto parts = split_dots(signals_[i].path);
        ScopeNode* node = &root;
        for (size_t p = 0; p + 1 < parts.size(); ++p)
            node = &node->children[sanitize_name(parts[p])];
        node->vars.push_back(i);
        vars.emplace_back(sanitize_name(parts.back()), signals_[i].width);
        ids.push_back(signals_[i].id);
    }
    emit_scope(os, root, vars, ids, 0);
    os << "$enddefinitions $end\n";

    // Every signal starts undefined until its first recorded change.
    os << "$dumpvars\n";
    for (const auto& s : signals_) {
        if (s.width == 1) {
            os << "x" << s.id << "\n";
        } else {
            os << "bx " << s.id << "\n";
        }
    }
    os << "$end\n";

    std::vector<Change> sorted = changes_;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Change& a, const Change& b) { return a.t < b.t; });

    std::vector<uint64_t> last(signals_.size());
    std::vector<bool> seen(signals_.size(), false);
    uint64_t cur_t = 0;
    bool have_t = false;
    for (const auto& c : sorted) {
        if (seen[size_t(c.sig)] && last[size_t(c.sig)] == c.value) continue;
        if (!have_t || c.t != cur_t) {
            os << "#" << c.t << "\n";
            cur_t = c.t;
            have_t = true;
        }
        emit_value(os, signals_[size_t(c.sig)].width, c.value, signals_[size_t(c.sig)].id);
        seen[size_t(c.sig)] = true;
        last[size_t(c.sig)] = c.value;
    }
    return os.str();
}

}  // namespace rosebud::obs
